// CSV wire form: the data-only view for spreadsheets and plotting scripts.
// One header record of column names followed by one record per row; numeric
// cells are emitted at full precision (Cell.Raw — shortest float form that
// round-trips), not at display precision. Notes and provenance are
// intentionally dropped: they live in the json emitter, and comment lines
// would break strict CSV consumers. Field order is the column order, pinned
// by the dataset schema.
package results

import (
	"encoding/csv"
	"io"
)

// csvEmitter writes the dataset's rows as RFC-4180 CSV.
type csvEmitter struct{}

// Name implements Emitter.
func (csvEmitter) Name() string { return "csv" }

// ContentType implements Emitter.
func (csvEmitter) ContentType() string { return "text/csv; charset=utf-8" }

// Emit implements Emitter.
func (csvEmitter) Emit(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.Headers()); err != nil {
		return err
	}
	for _, row := range d.Rows {
		rec := make([]string, len(row))
		for i, c := range row {
			rec[i] = c.Raw()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
