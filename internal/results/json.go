// JSON wire form: the lossless emitter. Field order is pinned by struct
// declaration order (encoding/json emits struct fields in order, never
// map-sorted), so the emitted bytes are stable across runs and Go versions —
// the golden files under internal/experiments/testdata pin them. ParseJSON
// inverts the emitter exactly; the round-trip property test asserts
// Dataset -> json -> Dataset -> text equals the original text for every
// registered experiment.
package results

import (
	"encoding/json"
	"fmt"
	"io"
)

// wireColumn is the pinned JSON form of a Column.
type wireColumn struct {
	Name string `json:"name"`
	Unit string `json:"unit"`
}

// wireProvenance is the pinned JSON form of a Provenance.
type wireProvenance struct {
	Experiment string `json:"experiment"`
	Platform   string `json:"platform"`
	Scenario   string `json:"scenario"`
	Quick      bool   `json:"quick"`
	FastWarmup bool   `json:"fastwarmup"`
	Seed       uint64 `json:"seed"`
	// Fidelity is omitted when empty (exact), keeping exact-run wire bytes
	// identical to the pre-fidelity schema.
	Fidelity string `json:"fidelity,omitempty"`
}

// wireDataset is the pinned top-level JSON form of a Dataset.
type wireDataset struct {
	Schema     int            `json:"schema"`
	ID         string         `json:"id"`
	Title      string         `json:"title"`
	Columns    []wireColumn   `json:"columns"`
	Rows       [][]Cell       `json:"rows"`
	Notes      []string       `json:"notes"`
	Provenance wireProvenance `json:"provenance"`
}

// jsonSchemaVersion is bumped whenever the wire form changes shape.
const jsonSchemaVersion = 1

// MarshalJSON encodes the cell as a single-kind object: {"s":…} for strings,
// {"i":…} for ints, {"f":…,"prec":…} for floats, {"pct":…,"prec":…} for
// percents (value in percent points). Numbers keep Go's shortest
// round-trippable float encoding, so nothing is lost to display precision.
func (c Cell) MarshalJSON() ([]byte, error) {
	switch c.Kind {
	case KindInt:
		return json.Marshal(struct {
			I int64 `json:"i"`
		}{c.Int})
	case KindFloat:
		return json.Marshal(struct {
			F    float64 `json:"f"`
			Prec int     `json:"prec"`
		}{c.Float, c.Prec})
	case KindPercent:
		return json.Marshal(struct {
			Pct  float64 `json:"pct"`
			Prec int     `json:"prec"`
		}{c.Float, c.Prec})
	}
	return json.Marshal(struct {
		S string `json:"s"`
	}{c.Str})
}

// UnmarshalJSON inverts MarshalJSON; exactly one of the kind keys must be
// present.
func (c *Cell) UnmarshalJSON(data []byte) error {
	var w struct {
		S    *string  `json:"s"`
		I    *int64   `json:"i"`
		F    *float64 `json:"f"`
		Pct  *float64 `json:"pct"`
		Prec int      `json:"prec"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	set := 0
	for _, ok := range []bool{w.S != nil, w.I != nil, w.F != nil, w.Pct != nil} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("results: cell %s must carry exactly one of s/i/f/pct", data)
	}
	switch {
	case w.S != nil:
		*c = Cell{Kind: KindString, Str: *w.S}
	case w.I != nil:
		*c = Cell{Kind: KindInt, Int: *w.I}
	case w.F != nil:
		*c = Cell{Kind: KindFloat, Float: *w.F, Prec: w.Prec}
	default:
		*c = Cell{Kind: KindPercent, Float: *w.Pct, Prec: w.Prec}
	}
	return nil
}

// wire converts the dataset to its pinned JSON shape, normalizing nil slices
// to empty ones so the emitted bytes never flip between null and [].
func (d *Dataset) wire() wireDataset {
	w := wireDataset{
		Schema:  jsonSchemaVersion,
		ID:      d.ID,
		Title:   d.Title,
		Columns: make([]wireColumn, len(d.Columns)),
		Rows:    d.Rows,
		Notes:   d.Notes,
		Provenance: wireProvenance{
			Experiment: d.Prov.ExperimentID,
			Platform:   d.Prov.Platform,
			Scenario:   d.Prov.Scenario,
			Quick:      d.Prov.Quick,
			FastWarmup: d.Prov.FastWarmup,
			Seed:       d.Prov.Seed,
			Fidelity:   d.Prov.Fidelity,
		},
	}
	for i, c := range d.Columns {
		w.Columns[i] = wireColumn{Name: c.Name, Unit: c.Unit}
	}
	if w.Rows == nil {
		w.Rows = [][]Cell{}
	}
	if w.Notes == nil {
		w.Notes = []string{}
	}
	return w
}

// jsonEmitter writes the dataset's pinned, indented JSON wire form.
type jsonEmitter struct{}

// Name implements Emitter.
func (jsonEmitter) Name() string { return "json" }

// ContentType implements Emitter.
func (jsonEmitter) ContentType() string { return "application/json" }

// Emit implements Emitter.
func (jsonEmitter) Emit(w io.Writer, d *Dataset) error {
	out, err := json.MarshalIndent(d.wire(), "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// ParseJSON decodes a dataset from its JSON wire form — the inverse of the
// json emitter, used by downstream consumers (and the round-trip tests) to
// recover typed cells from served results.
func ParseJSON(data []byte) (*Dataset, error) {
	var w wireDataset
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("results: bad dataset JSON: %w", err)
	}
	if w.Schema != jsonSchemaVersion {
		return nil, fmt.Errorf("results: unsupported dataset schema %d (want %d)", w.Schema, jsonSchemaVersion)
	}
	d := New(w.ID, w.Title)
	for _, c := range w.Columns {
		d.Columns = append(d.Columns, Column{Name: c.Name, Unit: c.Unit})
	}
	d.Rows = w.Rows
	d.Notes = w.Notes
	d.Prov = Provenance{
		ExperimentID: w.Provenance.Experiment,
		Platform:     w.Provenance.Platform,
		Scenario:     w.Provenance.Scenario,
		Quick:        w.Provenance.Quick,
		FastWarmup:   w.Provenance.FastWarmup,
		Seed:         w.Provenance.Seed,
		Fidelity:     w.Provenance.Fidelity,
	}
	return d, nil
}
