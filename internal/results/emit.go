// Pluggable emitters: rendering is a consumer concern, not something the
// experiment drivers bake into their rows. The registry is fixed at compile
// time — text (legacy-identical), json (lossless wire form, see json.go) and
// csv (data-only full-precision view, see csv.go).
package results

import (
	"fmt"
	"io"
	"strings"
)

// Emitter renders a Dataset onto a writer in one output format.
type Emitter interface {
	// Name is the format key accepted by Lookup/Emit ("text", "json", "csv").
	Name() string
	// ContentType is the HTTP media type of the emitted bytes.
	ContentType() string
	// Emit writes the dataset's rendering. Emit must not mutate d — cached
	// datasets are emitted concurrently.
	Emit(w io.Writer, d *Dataset) error
}

// emitters is the fixed registry in presentation order: the default format
// first.
var emitters = []Emitter{textEmitter{}, jsonEmitter{}, csvEmitter{}}

// Formats lists the registered emitter names, default first.
func Formats() []string {
	out := make([]string, len(emitters))
	for i, e := range emitters {
		out[i] = e.Name()
	}
	return out
}

// Lookup resolves a format name to its emitter; the empty name selects the
// default (text).
func Lookup(format string) (Emitter, error) {
	if format == "" {
		return emitters[0], nil
	}
	for _, e := range emitters {
		if e.Name() == format {
			return e, nil
		}
	}
	return nil, fmt.Errorf("results: unknown format %q (have %s)", format, strings.Join(Formats(), ", "))
}

// Emit renders the dataset in the named format and returns it as a string.
func Emit(d *Dataset, format string) (string, error) {
	e, err := Lookup(format)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if err := e.Emit(&b, d); err != nil {
		return "", err
	}
	return b.String(), nil
}

// textEmitter reproduces the legacy aligned-table rendering byte-for-byte:
// "== id: title ==", padded header, dashed rule, padded rows, "note:" lines.
type textEmitter struct{}

// Name implements Emitter.
func (textEmitter) Name() string { return "text" }

// ContentType implements Emitter.
func (textEmitter) ContentType() string { return "text/plain; charset=utf-8" }

// Emit implements Emitter.
func (textEmitter) Emit(w io.Writer, d *Dataset) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", d.ID, d.Title)
	headers := d.Headers()
	rows := d.TextRows()
	widths := ColumnWidths(headers, rows)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, width := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", width))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	for _, n := range d.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
