package results

import (
	"encoding/csv"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// sample builds a dataset exercising every cell kind, notes and provenance.
func sample() *Dataset {
	d := New("fig-test", "A synthetic dataset",
		Column{Name: "Device"}, Column{Name: "Latency (ns)", Unit: "ns"},
		Column{Name: "Eff", Unit: "%"}, Column{Name: "Chan"})
	d.AddRow(Str("DDR5-L"), Num(41.03125, 1), Pct(0.701), Int(8))
	d.AddRow(Str("CXL-A"), Num(176.5, 1), Pct(0.4603), Int(1))
	d.AddNote("a note with = signs and %d digits", 42)
	d.Prov = Provenance{ExperimentID: "fig-test", Platform: "table1", Scenario: "dlrm/policy=cxl", Quick: true, FastWarmup: false, Seed: 7}
	return d
}

// TestCellText pins the text rendering of every kind against the legacy
// fmt verbs the pre-formatted tables used.
func TestCellText(t *testing.T) {
	cases := []struct {
		cell Cell
		want string
	}{
		{Str("x y"), "x y"},
		{Int(1234), "1234"},
		{Int(0), "0"},
		{Num(3.14159, 2), fmt.Sprintf("%.2f", 3.14159)},
		{Num(85000, 0), fmt.Sprintf("%.0f", 85000.0)},
		{Pct(0.4567), fmt.Sprintf("%.1f%%", 0.4567*100)},
		{PctPoints(33.4, 0), fmt.Sprintf("%.0f%%", 33.4)},
	}
	for _, c := range cases {
		if got := c.cell.Text(); got != c.want {
			t.Errorf("Text(%+v) = %q, want %q", c.cell, got, c.want)
		}
	}
}

// TestCellValue checks the numeric view used by the csv emitter and tests.
func TestCellValue(t *testing.T) {
	if v, ok := Num(1.5, 2).Value(); !ok || v != 1.5 {
		t.Errorf("Num value = %v, %v", v, ok)
	}
	if v, ok := Int(9).Value(); !ok || v != 9 {
		t.Errorf("Int value = %v, %v", v, ok)
	}
	if v, ok := Pct(0.25).Value(); !ok || v != 25 {
		t.Errorf("Pct value = %v, %v (want percent points)", v, ok)
	}
	if _, ok := Str("x").Value(); ok {
		t.Error("string cells must not be numeric")
	}
}

// TestColumnWidths pins the shared width pass: max of header and cells per
// column, ragged rows tolerated.
func TestColumnWidths(t *testing.T) {
	got := ColumnWidths([]string{"ab", "c"}, [][]string{{"x", "longer"}, {"wide-cell"}})
	want := []int{9, 6}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("widths = %v, want %v", got, want)
	}
}

// TestFormats pins the emitter registry: text is the default, json and csv
// are registered, unknown names fail with a helpful error.
func TestFormats(t *testing.T) {
	if got := Formats(); !reflect.DeepEqual(got, []string{"text", "json", "csv"}) {
		t.Errorf("Formats() = %v", got)
	}
	e, err := Lookup("")
	if err != nil || e.Name() != "text" {
		t.Errorf("empty format should resolve to text: %v, %v", e, err)
	}
	if _, err := Lookup("yaml"); err == nil || !strings.Contains(err.Error(), "yaml") {
		t.Errorf("unknown format error = %v", err)
	}
	for _, f := range Formats() {
		e, err := Lookup(f)
		if err != nil || e.ContentType() == "" {
			t.Errorf("emitter %s: %v content-type %q", f, err, e.ContentType())
		}
	}
}

// TestTextEmitterShape checks the aligned text form's frame (header line,
// dashed rule, note lines) without re-pinning the full corpus — the
// experiments package's golden and property tests do that.
func TestTextEmitterShape(t *testing.T) {
	out := sample().Render()
	lines := strings.Split(out, "\n")
	if lines[0] != "== fig-test: A synthetic dataset ==" {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("rule line = %q", lines[2])
	}
	if !strings.Contains(out, "note: a note with = signs and 42 digits") {
		t.Error("note missing from text emission")
	}
	if !strings.Contains(out, "70.1%") {
		t.Error("percent cell missing from text emission")
	}
}

// TestJSONRoundTrip asserts the lossless contract: emit -> parse recovers a
// deeply equal dataset whose text rendering is byte-identical.
func TestJSONRoundTrip(t *testing.T) {
	d := sample()
	out, err := Emit(d, "json")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Errorf("round trip diverges:\n%+v\nvs\n%+v", d, back)
	}
	if back.Render() != d.Render() {
		t.Error("round-tripped text rendering diverges")
	}
	// Field order is pinned: the wire form leads with schema, then id.
	if !strings.HasPrefix(out, "{\n  \"schema\": 1,\n  \"id\": \"fig-test\"") {
		t.Errorf("pinned field order broken:\n%s", out[:80])
	}
}

// TestJSONEmptyDataset pins that empty rows/notes emit as [] (never null),
// keeping the wire shape stable.
func TestJSONEmptyDataset(t *testing.T) {
	d := New("empty", "no rows", Column{Name: "A"})
	out, err := Emit(d, "json")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "null") {
		t.Errorf("empty dataset emits null:\n%s", out)
	}
	back, err := ParseJSON([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != "empty" || len(back.Rows) != 0 {
		t.Errorf("round trip of empty dataset = %+v", back)
	}
}

// TestParseJSONErrors rejects garbage, wrong schema versions and ambiguous
// cells.
func TestParseJSONErrors(t *testing.T) {
	if _, err := ParseJSON([]byte("{")); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := ParseJSON([]byte(`{"schema": 99, "id": "x"}`)); err == nil {
		t.Error("unknown schema version should fail")
	}
	var c Cell
	if err := c.UnmarshalJSON([]byte(`{}`)); err == nil {
		t.Error("kindless cell should fail")
	}
	if err := c.UnmarshalJSON([]byte(`{"s": "x", "i": 3}`)); err == nil {
		t.Error("two-kind cell should fail")
	}
}

// TestCSVEmitter checks the data-only contract: header + rows, strings
// quoted only when needed, numbers at full precision (shortest round-trip
// form), notes dropped.
func TestCSVEmitter(t *testing.T) {
	d := sample()
	out, err := Emit(d, "csv")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("csv has %d records, want header + 2 rows", len(recs))
	}
	if !reflect.DeepEqual(recs[0], []string{"Device", "Latency (ns)", "Eff", "Chan"}) {
		t.Errorf("csv header = %v", recs[0])
	}
	// Full precision: the stored 41.03125 survives, not the displayed 41.0.
	v, err := strconv.ParseFloat(recs[1][1], 64)
	if err != nil || v != 41.03125 {
		t.Errorf("csv float = %q (parsed %v, %v), want full-precision 41.03125", recs[1][1], v, err)
	}
	if strings.Contains(out, "note:") {
		t.Error("csv must not carry note lines")
	}
}
