// Package results is the structured-results core (DESIGN.md §10): every
// experiment and scenario run produces a typed Dataset — named, unit-carrying
// columns over numeric/string cells — instead of pre-formatted text, and a
// pluggable emitter layer (emit.go: text, json, csv) renders it on demand.
//
// The contract that makes the refactor safe is byte-identity: the text
// emitter reproduces the legacy table rendering exactly (the golden corpus
// under internal/experiments/testdata pins it), while the json and csv
// emitters expose the underlying full-precision values. Datasets returned by
// shared caches are treated as immutable; nothing in this package mutates a
// Dataset after it is built, so concurrent emitters are race-free.
package results

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the value a Cell carries.
type Kind uint8

const (
	// KindString is a label or other non-numeric cell.
	KindString Kind = iota
	// KindInt is an integer count (channels, migrations, intervals).
	KindInt
	// KindFloat is a fixed-point measurement rendered with Prec decimals.
	KindFloat
	// KindPercent is a percentage in percent points, rendered with Prec
	// decimals and a trailing '%'.
	KindPercent
)

// String names the kind for diagnostics and the JSON wire form.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindPercent:
		return "percent"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Cell is one value of a dataset row. Numeric cells keep the computed
// number; how many decimals the *text* rendering shows is carried in Prec,
// while the json/csv emitters see the full value.
type Cell struct {
	// Kind selects which of the value fields below is meaningful.
	Kind Kind
	// Str is the value of a KindString cell.
	Str string
	// Int is the value of a KindInt cell.
	Int int64
	// Float is the value of a KindFloat cell, or the percent points of a
	// KindPercent cell.
	Float float64
	// Prec is the decimal count of the text rendering of float/percent
	// cells.
	Prec int
}

// Str builds a string cell.
func Str(s string) Cell { return Cell{Kind: KindString, Str: s} }

// Int builds an integer cell.
func Int(n int64) Cell { return Cell{Kind: KindInt, Int: n} }

// Num builds a fixed-point numeric cell rendered with prec decimals.
func Num(v float64, prec int) Cell { return Cell{Kind: KindFloat, Float: v, Prec: prec} }

// Pct builds a percentage cell from a fraction: Pct(0.421) renders as
// "42.1%". The fraction is scaled to percent points at construction — the
// same v*100 the legacy formatter computed — so the text rendering is
// byte-identical to the historical fmt.Sprintf("%.1f%%", v*100).
func Pct(frac float64) Cell { return Cell{Kind: KindPercent, Float: frac * 100, Prec: 1} }

// PctPoints builds a percentage cell from a value already in percent points
// (e.g. a 0–100 allocation ratio), rendered with prec decimals.
func PctPoints(points float64, prec int) Cell {
	return Cell{Kind: KindPercent, Float: points, Prec: prec}
}

// Text is the human rendering of the cell — exactly the string the legacy
// pre-formatted tables held, which is what keeps the text emitter
// byte-identical to the golden corpus.
func (c Cell) Text() string {
	switch c.Kind {
	case KindInt:
		return strconv.FormatInt(c.Int, 10)
	case KindFloat:
		return fmt.Sprintf("%.*f", c.Prec, c.Float)
	case KindPercent:
		return fmt.Sprintf("%.*f%%", c.Prec, c.Float)
	}
	return c.Str
}

// Raw is the full-precision machine rendering used by the csv emitter:
// shortest float form that round-trips, so no precision is lost to display
// rounding.
func (c Cell) Raw() string {
	switch c.Kind {
	case KindInt:
		return strconv.FormatInt(c.Int, 10)
	case KindFloat, KindPercent:
		return strconv.FormatFloat(c.Float, 'g', -1, 64)
	}
	return c.Str
}

// Value returns the cell's numeric value (percent cells in percent points)
// and whether the cell is numeric at all.
func (c Cell) Value() (float64, bool) {
	switch c.Kind {
	case KindInt:
		return float64(c.Int), true
	case KindFloat, KindPercent:
		return c.Float, true
	}
	return 0, false
}

// Column describes one dataset column.
type Column struct {
	// Name is the header label, rendered verbatim by the text emitter (it
	// may embed a display unit, e.g. "Avg latency (ns)").
	Name string
	// Unit is the machine-readable unit of the column's numeric cells
	// ("ns", "GB/s", "%"); empty for labels and unitless ratios.
	Unit string
}

// Provenance records where a dataset came from: the experiment or scenario
// that produced it plus the option knobs that change its numbers. Emitters
// carry it as metadata; the text emitter omits it to stay byte-identical
// with the legacy rendering.
type Provenance struct {
	// ExperimentID is the registry ID of the producing experiment, or
	// "scenario" for a single-cell scenario run.
	ExperimentID string
	// Platform is the options-level platform profile the run defaulted to;
	// empty means the Table-1 machine.
	Platform string
	// Scenario is the canonical scenario spec for single-cell datasets.
	Scenario string
	// Quick records reduced-sample mode.
	Quick bool
	// FastWarmup records convergence-based cache warmup.
	FastWarmup bool
	// Seed is the stochastic seed the run used.
	Seed uint64
	// Fidelity records a non-exact measurement tier ("auto" or "fast");
	// empty means exact simulation, so pre-fidelity datasets and the wire
	// bytes of every exact run are unchanged.
	Fidelity string
}

// Dataset is one experiment's structured result: a schema of typed columns,
// rows of Cell values, free-form notes, and provenance. Build it with New /
// AddRow / AddNote; once published (returned from a run, stored in a cache)
// it is immutable by convention.
type Dataset struct {
	// ID is the experiment identifier ("fig3", "matrix-apps", "scenario").
	ID string
	// Title describes the experiment.
	Title string
	// Columns is the typed schema; len(Columns) bounds every row.
	Columns []Column
	// Rows holds the data as typed cells, not pre-formatted text.
	Rows [][]Cell
	// Notes carries qualitative checks and paper references.
	Notes []string
	// Prov records the producing run.
	Prov Provenance
}

// New starts a dataset with the given schema.
func New(id, title string, cols ...Column) *Dataset {
	return &Dataset{ID: id, Title: title, Columns: cols}
}

// AddRow appends one row of typed cells.
func (d *Dataset) AddRow(cells ...Cell) { d.Rows = append(d.Rows, cells) }

// AddNote appends a formatted note line.
func (d *Dataset) AddNote(format string, args ...any) {
	d.Notes = append(d.Notes, fmt.Sprintf(format, args...))
}

// Headers returns the column names in order.
func (d *Dataset) Headers() []string {
	out := make([]string, len(d.Columns))
	for i, c := range d.Columns {
		out[i] = c.Name
	}
	return out
}

// TextRows renders every cell through Cell.Text — the legacy [][]string
// form, used by the text emitter and the emitter-equivalence property test.
func (d *Dataset) TextRows() [][]string {
	out := make([][]string, len(d.Rows))
	for i, row := range d.Rows {
		r := make([]string, len(row))
		for j, c := range row {
			r[j] = c.Text()
		}
		out[i] = r
	}
	return out
}

// Render returns the aligned text rendering — the text emitter's output,
// byte-identical to the legacy Table.Render.
func (d *Dataset) Render() string {
	var b strings.Builder
	if err := (textEmitter{}).Emit(&b, d); err != nil {
		// The text emitter only fails on writer errors, and Builder never
		// errors.
		panic(err)
	}
	return b.String()
}

// ColumnWidths computes the per-column display width of a header row plus
// data rows: the maximum cell width per column index. It is the one shared
// width pass used by both the text emitter and the legacy Table.Render
// (historically each walked the rows with its own near-identical loop).
func ColumnWidths(headers []string, rows [][]string) []int {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	return widths
}
