package experiments

import (
	"strings"
	"testing"

	"cxlmem/internal/memo"
	"cxlmem/internal/workloads"
)

// TestMatrixEquivalenceFreshCache re-asserts the serial-vs-parallel
// byte-identity contract for the matrix cells with a fresh cell cache per
// run: the generic TestSerialParallelEquivalence fills the process-wide
// cache on its serial pass, which would otherwise let memoization serve —
// and so mask — a racy parallel evaluation.
func TestMatrixEquivalenceFreshCache(t *testing.T) {
	serial := DefaultOptions()
	serial.Quick = true
	serial.Parallel = 1
	parallel := serial
	parallel.Parallel = 8
	scs := AllMatrixScenarios()
	want, err := scenarioTableCached(memo.NewCache(), serial, "matrix-all", "x", scs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scenarioTableCached(memo.NewCache(), parallel, "matrix-all", "x", scs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() {
		t.Errorf("fresh-cache parallel matrix diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			want.Render(), got.Render())
	}
}

// TestRunScenarioMemoized asserts the cell cache makes a repeated matrix
// cell free: the second evaluation is a hit, and the metrics are identical.
func TestRunScenarioMemoized(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	sc, err := workloads.ParseScenario("fluid/policy=interleave/size=64M/seed=41")
	if err != nil {
		t.Fatal(err)
	}
	hits0 := cellCache.Hits()
	a, err := RunScenario(o, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(o, sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := cellCache.Hits() - hits0; got < 1 {
		t.Errorf("second evaluation missed the cache (hits delta %d)", got)
	}
	if len(a.Items) == 0 || len(a.Items) != len(b.Items) {
		t.Fatalf("metric shapes differ: %d vs %d", len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Errorf("memoized metric %d differs: %+v vs %+v", i, a.Items[i], b.Items[i])
		}
	}
}

// TestCellKeyDistinguishesOptions pins that quick/fastwarm/seed all
// fingerprint the cell key — cached values must never leak across modes.
func TestCellKeyDistinguishesOptions(t *testing.T) {
	sc, err := workloads.ParseScenario("dlrm")
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultOptions()
	quick := base
	quick.Quick = true
	warm := base
	warm.FastWarmup = true
	seeded := base
	seeded.Seed = 99
	parallel := base
	parallel.Parallel = 7
	keys := map[string]bool{}
	for _, o := range []Options{base, quick, warm, seeded} {
		keys[o.cellKey(sc)] = true
	}
	if len(keys) != 4 {
		t.Errorf("options collapse onto %d keys, want 4", len(keys))
	}
	if base.cellKey(sc) != parallel.cellKey(sc) {
		t.Error("worker count must not change the cell key")
	}
}

// TestScenarioTableErrors surfaces a broken cell as an error, not a panic.
func TestScenarioTableErrors(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	sc, err := workloads.ParseScenario("ycsb/device=CXL-Z")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScenarioTable(o, "x", "x", []workloads.Scenario{sc}); err == nil {
		t.Error("bad device cell should fail the table")
	}
}

// TestAllMatrixScenarios checks the -scenario all cross product: every
// registered workload appears, specs are unique, and each cell runs.
func TestAllMatrixScenarios(t *testing.T) {
	all := AllMatrixScenarios()
	seen := map[string]bool{}
	covered := map[string]bool{}
	for _, sc := range all {
		key := sc.String()
		if seen[key] {
			t.Errorf("duplicate cell %q", key)
		}
		seen[key] = true
		covered[sc.Workload] = true
	}
	for _, name := range workloads.Names() {
		if !covered[name] {
			t.Errorf("matrix misses workload %s", name)
		}
	}
	o := DefaultOptions()
	o.Quick = true
	tbl, err := ScenarioTable(o, "matrix-all", "full matrix", all)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(all) {
		t.Errorf("table has %d rows for %d cells", len(tbl.Rows), len(all))
	}
	if !strings.Contains(tbl.Render(), "ycsb:a/policy=weighted:85,15") {
		t.Error("rendered matrix missing an expected cell spec")
	}
}
