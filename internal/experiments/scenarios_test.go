package experiments

import (
	"strings"
	"testing"

	"cxlmem/internal/memo"
	"cxlmem/internal/workloads"
)

// TestMatrixEquivalenceFreshCache re-asserts the serial-vs-parallel
// byte-identity contract for the matrix cells with a fresh cell cache per
// run: the generic TestSerialParallelEquivalence fills the process-wide
// cache on its serial pass, which would otherwise let memoization serve —
// and so mask — a racy parallel evaluation.
func TestMatrixEquivalenceFreshCache(t *testing.T) {
	serial := DefaultOptions()
	serial.Quick = true
	serial.Parallel = 1
	parallel := serial
	parallel.Parallel = 8
	scs := AllMatrixScenarios()
	want, err := scenarioDatasetCached(memo.NewCache(), serial, "matrix-all", "x", scs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scenarioDatasetCached(memo.NewCache(), parallel, "matrix-all", "x", scs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() {
		t.Errorf("fresh-cache parallel matrix diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			want.Render(), got.Render())
	}
}

// TestRunScenarioMemoized asserts the cell cache makes a repeated matrix
// cell free: the second evaluation is a hit, and the metrics are identical.
func TestRunScenarioMemoized(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	sc, err := workloads.ParseScenario("fluid/policy=interleave/size=64M/seed=41")
	if err != nil {
		t.Fatal(err)
	}
	hits0 := cellCache.Hits()
	a, err := RunScenario(o, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(o, sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := cellCache.Hits() - hits0; got < 1 {
		t.Errorf("second evaluation missed the cache (hits delta %d)", got)
	}
	if len(a.Items) == 0 || len(a.Items) != len(b.Items) {
		t.Fatalf("metric shapes differ: %d vs %d", len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Errorf("memoized metric %d differs: %+v vs %+v", i, a.Items[i], b.Items[i])
		}
	}
}

// TestCellKeyDistinguishesOptions pins that quick/fastwarm/seed/platform all
// fingerprint the cell key — cached values must never leak across modes or
// machines.
func TestCellKeyDistinguishesOptions(t *testing.T) {
	sc, err := workloads.ParseScenario("dlrm")
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultOptions()
	quick := base
	quick.Quick = true
	warm := base
	warm.FastWarmup = true
	seeded := base
	seeded.Seed = 99
	platformed := base
	platformed.Platform = "snc-off"
	parallel := base
	parallel.Parallel = 7
	keys := map[string]bool{}
	for _, o := range []Options{base, quick, warm, seeded, platformed} {
		keys[o.cellKey(sc)] = true
	}
	if len(keys) != 5 {
		t.Errorf("options collapse onto %d keys, want 5", len(keys))
	}
	if base.cellKey(sc) != parallel.cellKey(sc) {
		t.Error("worker count must not change the cell key")
	}
}

// TestOptionsPlatform covers the options-level platform default: cells run
// on the named machine, an unknown name surfaces as an error, and a cell's
// own platform= key beats the option.
func TestOptionsPlatform(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	o.Platform = "fpga-degraded"
	sc, err := workloads.ParseScenario("fluid")
	if err != nil {
		t.Fatal(err)
	}
	onF, err := runScenarioCached(memo.NewCache(), o, sc)
	if err != nil {
		t.Fatal(err)
	}
	base := o
	base.Platform = ""
	onTable1, err := runScenarioCached(memo.NewCache(), base, sc)
	if err != nil {
		t.Fatal(err)
	}
	fBW, _ := onF.Get("system_bw")
	tBW, _ := onTable1.Get("system_bw")
	if fBW >= tBW {
		t.Errorf("degraded FPGA bandwidth %.2f should trail Table 1's %.2f", fBW, tBW)
	}
	// A cell's own platform= key wins over the options' default.
	pinned, err := workloads.ParseScenario("fluid/platform=table1")
	if err != nil {
		t.Fatal(err)
	}
	onPinned, err := runScenarioCached(memo.NewCache(), o, pinned)
	if err != nil {
		t.Fatal(err)
	}
	if pBW, _ := onPinned.Get("system_bw"); pBW != tBW {
		t.Errorf("cell-level platform should override the option: %.2f vs %.2f", pBW, tBW)
	}
	bad := o
	bad.Platform = "atari2600"
	if _, err := runScenarioCached(memo.NewCache(), bad, sc); err == nil {
		t.Error("unknown options platform should fail the cell")
	}
}

// TestOptionsValidate accepts registered (and empty) platforms and rejects
// unknown ones — the pre-dispatch check that keeps a bad -platform out of
// the panic-on-failure matrix drivers.
func TestOptionsValidate(t *testing.T) {
	o := DefaultOptions()
	if err := o.Validate(); err != nil {
		t.Errorf("default options: %v", err)
	}
	o.Platform = "x16-quad"
	if err := o.Validate(); err != nil {
		t.Errorf("registered platform: %v", err)
	}
	o.Platform = "atari2600"
	if err := o.Validate(); err == nil {
		t.Error("unknown platform should fail validation")
	}
}

// TestScenarioEnvBuildsCellPlatform pins the one-System-per-cell contract:
// the env handed to a platformed cell is already on the cell's platform, so
// Scenario.Run's ForPlatform resolves to the identity.
func TestScenarioEnvBuildsCellPlatform(t *testing.T) {
	o := DefaultOptions()
	o.Platform = "snc-off"
	env, err := o.scenarioEnv("fpga-degraded")
	if err != nil {
		t.Fatal(err)
	}
	if env.Platform != "fpga-degraded" {
		t.Errorf("cell platform should beat the option: %q", env.Platform)
	}
	same, err := env.ForPlatform("fpga-degraded")
	if err != nil || same != env {
		t.Error("ForPlatform on the cell's platform should be the identity")
	}
	env, err = o.scenarioEnv("")
	if err != nil {
		t.Fatal(err)
	}
	if env.Platform != "snc-off" {
		t.Errorf("platformless cell should inherit the option: %q", env.Platform)
	}
}

// TestMatrixPlatformShape pins the headline matrix's coverage contract:
// at least 3 workloads crossed with every registered platform (>= 4).
func TestMatrixPlatformShape(t *testing.T) {
	specs := matrixPlatformSpecs()
	wls := map[string]bool{}
	plats := map[string]bool{}
	for _, s := range specs {
		sc, err := workloads.ParseScenario(s)
		if err != nil {
			t.Fatalf("matrix-platform spec %q: %v", s, err)
		}
		wls[sc.Workload] = true
		plats[sc.Platform] = true
	}
	if len(wls) < 3 {
		t.Errorf("matrix-platform crosses %d workloads, want >= 3", len(wls))
	}
	if len(plats) < 4 {
		t.Errorf("matrix-platform crosses %d platforms, want >= 4", len(plats))
	}
	if len(specs) != len(wls)*len(plats) {
		t.Errorf("%d cells for a %dx%d cross", len(specs), len(wls), len(plats))
	}
}

// TestScenarioTableErrors surfaces a broken cell as an error, not a panic.
func TestScenarioTableErrors(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	sc, err := workloads.ParseScenario("ycsb/device=CXL-Z")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScenarioDataset(o, "x", "x", []workloads.Scenario{sc}); err == nil {
		t.Error("bad device cell should fail the dataset")
	}
}

// TestAllMatrixScenarios checks the -scenario all cross product: every
// registered workload appears, specs are unique, and each cell runs.
func TestAllMatrixScenarios(t *testing.T) {
	all := AllMatrixScenarios()
	seen := map[string]bool{}
	covered := map[string]bool{}
	for _, sc := range all {
		key := sc.String()
		if seen[key] {
			t.Errorf("duplicate cell %q", key)
		}
		seen[key] = true
		covered[sc.Workload] = true
	}
	for _, name := range workloads.Names() {
		w, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if workloads.IsEventDriven(w) {
			// Event-driven workloads are excluded from the steady-state
			// matrices by design; they have dedicated timeline experiments.
			if covered[name] {
				t.Errorf("event-driven workload %s leaked into the matrix", name)
			}
			continue
		}
		if !covered[name] {
			t.Errorf("matrix misses workload %s", name)
		}
	}
	o := DefaultOptions()
	o.Quick = true
	tbl, err := ScenarioDataset(o, "matrix-all", "full matrix", all)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(all) {
		t.Errorf("table has %d rows for %d cells", len(tbl.Rows), len(all))
	}
	if !strings.Contains(tbl.Render(), "ycsb:a/policy=weighted:85,15") {
		t.Error("rendered matrix missing an expected cell spec")
	}
}
