package experiments

import (
	"fmt"

	"cxlmem/internal/mem"
	"cxlmem/internal/memo"
	"cxlmem/internal/mlc"
	"cxlmem/internal/topo"
)

func init() {
	register("table1", "system and CXL device configurations (Table 1)", runTable1)
	register("fig3", "random access latency, MLC + memo, normalized to DDR5-L (Fig. 3)", runFig3)
	register("fig4a", "MLC bandwidth efficiency across R/W mixes (Fig. 4a)", runFig4a)
	register("fig4b", "memo bandwidth efficiency per instruction type (Fig. 4b)", runFig4b)
	register("fig5", "SNC/LLC interaction: 32MB buffer latency (Fig. 5 / §4.3)", runFig5)
}

func runTable1(o Options) *Table {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	t := &Table{
		ID:      "table1",
		Title:   "System configurations",
		Headers: []string{"Device", "CXL IP", "Memory technology", "Channels", "Peak GB/s", "Capacity GiB"},
	}
	for _, p := range sys.Paths() {
		d := p.Device
		t.AddRow(d.Name, d.Ctrl.Kind.String(), d.Tech.Name,
			fmt.Sprintf("%d", d.Channels), f1(d.PeakGBs()),
			fmt.Sprintf("%d", d.CapacityBytes>>30))
	}
	t.AddNote("2x Intel Xeon 6430 (SPR) model: 32 cores, 60 MB LLC, SNC-4 capable, 2.1 GHz")
	return t
}

func runFig3(o Options) *Table {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	cfg := memo.DefaultConfig()
	cfg.Trials = o.scale(cfg.Trials)

	// Baselines: DDR5-L measured by each tool.
	mlcBase := sys.DDRLocal.SerialLatency(mem.Load).Nanoseconds()
	memoBase := map[mem.InstrType]float64{}
	for _, ty := range mem.InstrTypes() {
		memoBase[ty] = memo.InstrLatency(sys.DDRLocal, ty, cfg).Nanoseconds()
	}

	t := &Table{
		ID:      "fig3",
		Title:   "Random access latency normalized to DDR5-L (per measurement tool)",
		Headers: []string{"Device", "MLC", "memo ld", "memo nt-ld", "memo st", "memo nt-st"},
	}
	paths := sys.ComparisonPaths()
	rows := sweepPoints(o, len(paths), func(i int) []string {
		p := paths[i]
		row := []string{p.Name, f2(p.SerialLatency(mem.Load).Nanoseconds() / mlcBase)}
		for _, ty := range mem.InstrTypes() {
			v := memo.InstrLatency(p, ty, cfg).Nanoseconds()
			row = append(row, f2(v/memoBase[ty]))
		}
		return row
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("absolute DDR5-L: MLC %.1f ns; memo ld %.1f ns", mlcBase, memoBase[mem.Load])
	t.AddNote("paper: memo cuts DDR5-R latency 76%% and CXL-A 79%% vs MLC; CXL-A ld ~1.35x DDR5-R; CXL-B ~2x, CXL-C ~3x")
	return t
}

func runFig4a(o Options) *Table {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	t := &Table{
		ID:      "fig4a",
		Title:   "MLC bandwidth efficiency (fraction of theoretical peak)",
		Headers: []string{"Device", "All read", "3:1-RW", "2:1-RW", "1:1-RW"},
	}
	paths := sys.ComparisonPaths()
	rows := sweepPoints(o, len(paths), func(i int) []string {
		sweep := mlc.MixSweep(paths[i])
		row := []string{paths[i].Name}
		for _, m := range mem.MixPoints() {
			row = append(row, pct(sweep[m].Efficiency))
		}
		return row
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("paper O4: all-read 70/46/47/20%%; CXL-A overtakes DDR5-R as the write share grows (+23 pts at 2:1)")
	return t
}

func runFig4b(o Options) *Table {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	t := &Table{
		ID:      "fig4b",
		Title:   "memo bandwidth efficiency per instruction type",
		Headers: []string{"Device", "ld", "nt-ld", "st", "nt-st"},
	}
	paths := sys.ComparisonPaths()
	rows := sweepPoints(o, len(paths), func(i int) []string {
		bw := memo.AllBandwidths(paths[i])
		row := []string{paths[i].Name}
		for _, ty := range mem.InstrTypes() {
			row = append(row, pct(bw[ty].Efficiency))
		}
		return row
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("paper O5: st drops vs ld by 74/31/59/15%%; CXL-A st beats DDR5-R st by ~12 pts; nt-st gap shrinks to ~6 pts")
	return t
}

func runFig5(o Options) *Table {
	const buf = 32 << 20
	samples := o.scale(200000)
	// Each measurement mutates its system's cache state, so every sweep
	// point builds a private System.
	devices := []string{"DDR5-L", "CXL-A"}
	lats := sweepPoints(o, len(devices), func(i int) float64 {
		sys := topo.NewSystem(topo.DefaultConfig()) // SNC on
		return mlc.BufferLatencyWarm(sys, sys.Path(devices[i]), buf, samples, o.Seed+3, o.warmup()).Nanoseconds()
	})
	ddr, cxl := lats[0], lats[1]

	t := &Table{
		ID:      "fig5",
		Title:   "SNC mode: average latency of a 32 MB random buffer",
		Headers: []string{"Placement", "Avg latency (ns)", "Effective LLC"},
	}
	t.AddRow("DDR5-L (SNC-confined)", f1(ddr), "15 MB (node slices)")
	t.AddRow("CXL-A (isolation broken)", f1(cxl), "60 MB (all slices)")
	t.AddNote("paper §4.3: 76.8 ns vs 41 ns — CXL-homed data enjoys 2-4x the LLC in SNC mode (O6)")
	return t
}
