package experiments

import (
	"cxlmem/internal/mem"
	"cxlmem/internal/memo"
	"cxlmem/internal/mlc"
	"cxlmem/internal/results"
	"cxlmem/internal/topo"
)

func init() {
	register("table1", "system and CXL device configurations (Table 1)", runTable1)
	register("fig3", "random access latency, MLC + memo, normalized to DDR5-L (Fig. 3)", runFig3)
	register("fig4a", "MLC bandwidth efficiency across R/W mixes (Fig. 4a)", runFig4a)
	register("fig4b", "memo bandwidth efficiency per instruction type (Fig. 4b)", runFig4b)
	register("fig5", "SNC/LLC interaction: 32MB buffer latency (Fig. 5 / §4.3)", runFig5)
	markFidelity("fig5")
}

func runTable1(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	d := newDataset(o, "table1", "System configurations",
		col("Device", ""), col("CXL IP", ""), col("Memory technology", ""),
		col("Channels", ""), col("Peak GB/s", "GB/s"), col("Capacity GiB", "GiB"))
	for _, p := range sys.Paths() {
		dev := p.Device
		d.AddRow(results.Str(dev.Name), results.Str(dev.Ctrl.Kind.String()), results.Str(dev.Tech.Name),
			results.Int(int64(dev.Channels)), results.Num(dev.PeakGBs(), 1),
			results.Int(dev.CapacityBytes>>30))
	}
	d.AddNote("2x Intel Xeon 6430 (SPR) model: 32 cores, 60 MB LLC, SNC-4 capable, 2.1 GHz")
	return d
}

func runFig3(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	cfg := memo.DefaultConfig()
	cfg.Trials = o.scale(cfg.Trials)

	// Baselines: DDR5-L measured by each tool.
	mlcBase := sys.DDRLocal.SerialLatency(mem.Load).Nanoseconds()
	memoBase := map[mem.InstrType]float64{}
	for _, ty := range mem.InstrTypes() {
		memoBase[ty] = memo.InstrLatency(sys.DDRLocal, ty, cfg).Nanoseconds()
	}

	d := newDataset(o, "fig3", "Random access latency normalized to DDR5-L (per measurement tool)",
		col("Device", ""), col("MLC", "x DDR5-L"), col("memo ld", "x DDR5-L"),
		col("memo nt-ld", "x DDR5-L"), col("memo st", "x DDR5-L"), col("memo nt-st", "x DDR5-L"))
	paths := sys.ComparisonPaths()
	rows := sweepPoints(o, len(paths), func(i int) []results.Cell {
		p := paths[i]
		row := []results.Cell{results.Str(p.Name), results.Num(p.SerialLatency(mem.Load).Nanoseconds()/mlcBase, 2)}
		for _, ty := range mem.InstrTypes() {
			v := memo.InstrLatency(p, ty, cfg).Nanoseconds()
			row = append(row, results.Num(v/memoBase[ty], 2))
		}
		return row
	})
	for _, row := range rows {
		d.AddRow(row...)
	}
	d.AddNote("absolute DDR5-L: MLC %.1f ns; memo ld %.1f ns", mlcBase, memoBase[mem.Load])
	d.AddNote("paper: memo cuts DDR5-R latency 76%% and CXL-A 79%% vs MLC; CXL-A ld ~1.35x DDR5-R; CXL-B ~2x, CXL-C ~3x")
	return d
}

func runFig4a(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	d := newDataset(o, "fig4a", "MLC bandwidth efficiency (fraction of theoretical peak)",
		col("Device", ""), col("All read", "%"), col("3:1-RW", "%"), col("2:1-RW", "%"), col("1:1-RW", "%"))
	paths := sys.ComparisonPaths()
	rows := sweepPoints(o, len(paths), func(i int) []results.Cell {
		sweep := mlc.MixSweep(paths[i])
		row := []results.Cell{results.Str(paths[i].Name)}
		for _, m := range mem.MixPoints() {
			row = append(row, results.Pct(sweep[m].Efficiency))
		}
		return row
	})
	for _, row := range rows {
		d.AddRow(row...)
	}
	d.AddNote("paper O4: all-read 70/46/47/20%%; CXL-A overtakes DDR5-R as the write share grows (+23 pts at 2:1)")
	return d
}

func runFig4b(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	d := newDataset(o, "fig4b", "memo bandwidth efficiency per instruction type",
		col("Device", ""), col("ld", "%"), col("nt-ld", "%"), col("st", "%"), col("nt-st", "%"))
	paths := sys.ComparisonPaths()
	rows := sweepPoints(o, len(paths), func(i int) []results.Cell {
		bw := memo.AllBandwidths(paths[i])
		row := []results.Cell{results.Str(paths[i].Name)}
		for _, ty := range mem.InstrTypes() {
			row = append(row, results.Pct(bw[ty].Efficiency))
		}
		return row
	})
	for _, row := range rows {
		d.AddRow(row...)
	}
	d.AddNote("paper O5: st drops vs ld by 74/31/59/15%%; CXL-A st beats DDR5-R st by ~12 pts; nt-st gap shrinks to ~6 pts")
	return d
}

func runFig5(o Options) *results.Dataset {
	const buf = 32 << 20
	samples := o.scale(200000)
	// Each measurement mutates its system's cache state, so every sweep
	// point builds a private System.
	devices := []string{"DDR5-L", "CXL-A"}
	lats := sweepPoints(o, len(devices), func(i int) float64 {
		sys := topo.NewSystem(topo.DefaultConfig()) // SNC on
		return o.bufferLatencyNs(sys, sys.Path(devices[i]), buf, samples)
	})
	ddr, cxl := lats[0], lats[1]

	d := newDataset(o, "fig5", "SNC mode: average latency of a 32 MB random buffer",
		col("Placement", ""), col("Avg latency (ns)", "ns"), col("Effective LLC", ""))
	d.AddRow(results.Str("DDR5-L (SNC-confined)"), results.Num(ddr, 1), results.Str("15 MB (node slices)"))
	d.AddRow(results.Str("CXL-A (isolation broken)"), results.Num(cxl, 1), results.Str("60 MB (all slices)"))
	d.AddNote("paper §4.3: 76.8 ns vs 41 ns — CXL-homed data enjoys 2-4x the LLC in SNC mode (O6)")
	return d
}
