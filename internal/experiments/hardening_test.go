package experiments

// Hardening tests for the cancellation and cache-invalidation paths
// (DESIGN.md §11). This test binary must never register platform profiles:
// the golden corpus for matrix-platform enumerates the registry, so a test
// registration would corrupt every sibling test. Registration→hook
// integration lives in the topo package; here the invalidation hook is
// exercised directly.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"cxlmem/internal/memo"
	"cxlmem/internal/workloads"
)

// TestSweepCancelStopsWork proves a canceled sweep stops claiming points:
// with 4 workers over 10k points and a context canceled almost immediately,
// the evaluated count must stay far below the grid size and the sweep must
// panic sweepCancel for the dispatcher to translate.
func TestSweepCancelStopsWork(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	o := Options{Parallel: 4, Ctx: ctx}
	var evaluated atomic.Int64
	const n = 10000
	func() {
		defer func() {
			r := recover()
			sc, ok := r.(sweepCancel)
			if !ok {
				t.Fatalf("sweep panicked %v, want sweepCancel", r)
			}
			if !errors.Is(sc.err, context.Canceled) {
				t.Errorf("sweepCancel carries %v, want context.Canceled", sc.err)
			}
		}()
		forEachPoint(o, n, func(i int) {
			if evaluated.Add(1) == 2 {
				cancel()
			}
		})
		t.Fatal("canceled sweep returned normally")
	}()
	if got := evaluated.Load(); got >= n/10 {
		t.Errorf("canceled sweep still evaluated %d of %d points", got, n)
	}
}

// TestSerialSweepCancel covers the single-worker path of the same contract.
func TestSerialSweepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	o := Options{Parallel: 1, Ctx: ctx}
	var evaluated int
	defer func() {
		if _, ok := recover().(sweepCancel); !ok {
			t.Fatal("serial sweep did not panic sweepCancel")
		}
		if evaluated != 3 {
			t.Errorf("evaluated %d points after cancel at 3", evaluated)
		}
	}()
	forEachPoint(o, 100, func(i int) {
		evaluated++
		if evaluated == 3 {
			cancel()
		}
	})
}

// TestRunDatasetCanceledNotCached checks the full dispatch path: a canceled
// request surfaces its context error, nothing is cached under the key, and
// the identical query afterward succeeds from a fresh evaluation.
func TestRunDatasetCanceledNotCached(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	o.Parallel = 2
	o.Seed = 990101 // unique seed: a fresh dataset-cache key for this test
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o.Ctx = ctx
	before, _ := CacheStats()
	if _, err := RunDataset("matrix-size", o); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled RunDataset err = %v, want context.Canceled", err)
	}
	o.Ctx = nil
	d, err := RunDataset("matrix-size", o)
	if err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	if len(d.Rows) == 0 {
		t.Error("retry produced an empty dataset")
	}
	after, _ := CacheStats()
	if after.Misses <= before.Misses {
		t.Error("retry should have recomputed (cache miss), not served a canceled result")
	}
}

// TestCanceledErrorMapsToStatus pins the sentinel wrapping the serve layer
// depends on: unknown IDs wrap ErrNotFound, driver panics wrap ErrInternal.
func TestCanceledErrorMapsToStatus(t *testing.T) {
	if _, err := Get("fig99"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(fig99) = %v, want ErrNotFound", err)
	}
	var err error
	func() {
		defer recoverAsErr("probe", &err)
		panic("driver bug")
	}()
	if !errors.Is(err, ErrInternal) || !strings.Contains(err.Error(), "driver bug") {
		t.Errorf("recovered panic = %v, want ErrInternal wrapping the panic value", err)
	}
	func() {
		err = nil
		defer recoverAsErr("probe", &err)
		panic(fmt.Errorf("cell: %w", context.DeadlineExceeded))
	}()
	if !errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrInternal) {
		t.Errorf("deadline panic = %v, want the context error, not ErrInternal", err)
	}
}

// TestKeyDependsOnPlatform pins the delimiter-boundary matching that keeps
// invalidation from hitting platforms sharing a name prefix.
func TestKeyDependsOnPlatform(t *testing.T) {
	for _, tc := range []struct {
		key, name string
		want      bool
	}{
		{"experiment|matrix-platform|quick=true", "anything", true},
		{"kvstore/platform=table1|seed=1", "table1", true},
		{"kvstore/platform=table1", "table1", true},
		{"experiment|fig4a|platform=table1/quick", "table1", true},
		{"kvstore/platform=table1x|seed=1", "table1", false},
		{"kvstore/platform=table1x/platform=table1|s", "table1", true},
		{"kvstore/size=64M|seed=1", "table1", false},
		{"", "table1", false},
	} {
		if got := keyDependsOnPlatform(tc.key, tc.name); got != tc.want {
			t.Errorf("keyDependsOnPlatform(%q, %q) = %v, want %v", tc.key, tc.name, got, tc.want)
		}
	}
}

// TestPlatformInvalidation exercises the invalidation hook directly (no
// registration — see the package comment): cells pinned to a platform are
// dropped and recomputed after invalidatePlatform, cells on other platforms
// survive.
func TestPlatformInvalidation(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	o.Parallel = 1
	o.Seed = 990102 // unique seed: fresh cell keys for this test
	run := func(spec string) {
		t.Helper()
		sc, err := workloads.ParseScenario(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunScenario(o, sc); err != nil {
			t.Fatal(err)
		}
	}
	const victim = "kvstore/platform=x16-quad"
	const bystander = "kvstore/platform=snc-off"
	run(victim)
	run(bystander)
	_, mid := CacheStats()
	run(victim) // warm: a hit
	if _, after := CacheStats(); after.Hits <= mid.Hits {
		t.Fatal("repeat cell was not a cache hit")
	}

	invalidatePlatform("x16-quad")
	_, st := CacheStats()
	if st.Invalidations == 0 {
		t.Fatal("invalidatePlatform dropped nothing")
	}
	preMisses := st.Misses
	run(victim) // must recompute
	run(bystander)
	_, st = CacheStats()
	if st.Misses != preMisses+1 {
		t.Errorf("misses advanced by %d after invalidation (victim should recompute, bystander should not)",
			st.Misses-preMisses)
	}
}

// TestGoldenStableUnderEviction is the churn acceptance test: with both
// process caches squeezed to a 4-entry budget (a tenth of the golden
// corpus), two full passes over every registered experiment must still
// render byte-identical to the committed goldens while evictions churn
// underneath.
func TestGoldenStableUnderEviction(t *testing.T) {
	ConfigureCaches(memo.CacheConfig{MaxEntries: 4})
	defer ConfigureCaches(memo.CacheConfig{})
	dsBefore, cellBefore := CacheStats()
	o := DefaultOptions()
	o.Quick = true
	o.Parallel = 4 // sweeps fan out; rendered bytes are worker-count-invariant
	for pass := 1; pass <= 2; pass++ {
		for _, e := range All() {
			d, err := RunDataset(e.ID, o)
			if err != nil {
				t.Fatalf("pass %d: %s: %v", pass, e.ID, err)
			}
			want, err := os.ReadFile(goldenPath(e.ID))
			if err != nil {
				t.Fatal(err)
			}
			if got := d.Render(); got != string(want) {
				t.Errorf("pass %d: %s diverges from golden under eviction", pass, e.ID)
			}
		}
	}
	dsAfter, cellAfter := CacheStats()
	if dsAfter.Evictions <= dsBefore.Evictions {
		t.Error("dataset cache never evicted under a 4-entry budget")
	}
	if cellAfter.Evictions <= cellBefore.Evictions {
		t.Error("cell cache never evicted under a 4-entry budget")
	}
	if dsAfter.Size > 4 || cellAfter.Size > 4 {
		t.Errorf("cache sizes %d/%d exceed the 4-entry budget", dsAfter.Size, cellAfter.Size)
	}
}
