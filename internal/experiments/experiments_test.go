package experiments

import (
	"strconv"
	"strings"
	"testing"

	"cxlmem/internal/results"
)

// quick runs every experiment in quick mode once; the dataset contents
// carry the assertions below.
func runQuick(t *testing.T, id string) *results.Dataset {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Quick = true
	d := e.Run(opts)
	if d.ID != id {
		t.Fatalf("dataset id %q != %q", d.ID, id)
	}
	if len(d.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return d
}

func cell(t *testing.T, d *results.Dataset, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(d.Rows[row][col].Text(), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, d.Rows[row][col].Text())
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4",
		"fig3", "fig4a", "fig4b", "fig5",
		"fig6a", "fig6b", "fig6c", "fig6d",
		"fig7", "fig8", "fig9a", "fig9b",
		"fig11a", "fig11b", "fig12a", "fig12b", "fig13",
	}
	want = append(want, "ablation-llc", "ablation-coherence", "ablation-estimator")
	want = append(want, "matrix-apps", "matrix-policy", "matrix-size", "matrix-platform")
	want = append(want, "tpp-timeline")
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
	for _, id := range want {
		if _, err := Get(id); err != nil {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := Get("fig99"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestRenderShape(t *testing.T) {
	tbl := runQuick(t, "table1")
	out := tbl.Render()
	if !strings.Contains(out, "CXL-A") || !strings.Contains(out, "DDR5-R") {
		t.Error("render missing device rows")
	}
	if !strings.Contains(out, "== table1") {
		t.Error("render missing header")
	}
}

func TestFig3Table(t *testing.T) {
	tbl := runQuick(t, "fig3")
	// Row order: DDR5-R, CXL-A, CXL-B, CXL-C. MLC column ascends.
	prev := 0.0
	for r := 0; r < 4; r++ {
		v := cell(t, tbl, r, 1)
		if v <= prev {
			t.Errorf("MLC ratios not ascending at row %d: %v", r, v)
		}
		prev = v
	}
	// memo ld: CXL-A / DDR5-R ≈ 1.35.
	ratio := cell(t, tbl, 1, 2) / cell(t, tbl, 0, 2)
	if ratio < 1.2 || ratio > 1.5 {
		t.Errorf("memo ld CXL-A/DDR5-R = %.2f", ratio)
	}
}

func TestFig4aTable(t *testing.T) {
	tbl := runQuick(t, "fig4a")
	// All-read column matches the paper: 70/46/47/20.
	want := []float64{70, 46, 47, 20}
	for r, w := range want {
		if v := cell(t, tbl, r, 1); v < w-1 || v > w+1 {
			t.Errorf("all-read row %d = %v, want ~%v", r, v, w)
		}
	}
	// CXL-A (row 1) exceeds DDR5-R (row 0) at 2:1.
	if cell(t, tbl, 1, 3) <= cell(t, tbl, 0, 3) {
		t.Error("CXL-A should beat DDR5-R at 2:1")
	}
}

func TestFig5Table(t *testing.T) {
	tbl := runQuick(t, "fig5")
	ddr := cell(t, tbl, 0, 1)
	cxl := cell(t, tbl, 1, 1)
	if cxl >= ddr {
		t.Errorf("CXL buffer latency %v should beat DDR %v", cxl, ddr)
	}
}

func TestFig6aTable(t *testing.T) {
	tbl := runQuick(t, "fig6a")
	// p99 monotone across ratios in the highest-QPS row.
	last := len(tbl.Rows) - 1
	prev := 0.0
	for c := 1; c <= 5; c++ {
		v := cell(t, tbl, last, c)
		if v < prev*0.9 {
			t.Errorf("fig6a: p99 not growing with CXL share at col %d", c)
		}
		if v > prev {
			prev = v
		}
	}
	if cell(t, tbl, last, 5) < 1.3*cell(t, tbl, last, 1) {
		t.Error("fig6a: CXL100 should be well above DDR100 at peak load")
	}
}

func TestFig7Table(t *testing.T) {
	tbl := runQuick(t, "fig7")
	// p99 row: TPP > static.
	if cell(t, tbl, 2, 1) <= cell(t, tbl, 2, 2) {
		t.Error("fig7: TPP p99 should exceed static p99")
	}
}

func TestFig8Table(t *testing.T) {
	tbl := runQuick(t, "fig8")
	for r := range tbl.Rows {
		if cell(t, tbl, r, 2) < cell(t, tbl, r, 1) {
			t.Errorf("fig8 row %d: CXL p99 below DDR", r)
		}
	}
}

func TestFig9aTable(t *testing.T) {
	tbl := runQuick(t, "fig9a")
	// At 32 threads (last row), some CXL ratio beats DDR-only.
	last := len(tbl.Rows) - 1
	ddr := cell(t, tbl, last, 1)
	best := ddr
	for c := 2; c <= 7; c++ {
		if v := cell(t, tbl, last, c); v > best {
			best = v
		}
	}
	if best < 1.3*ddr {
		t.Errorf("fig9a: best ratio (%.2f) should clearly beat DDR-only (%.2f)", best, ddr)
	}
}

func TestFig9bTable(t *testing.T) {
	tbl := runQuick(t, "fig9b")
	// Workload A row: normalized QPS decreasing with CXL share.
	for r := range tbl.Rows {
		prev := 2.0
		for c := 1; c <= 5; c++ {
			v := cell(t, tbl, r, c)
			if v > prev+0.02 {
				t.Errorf("fig9b row %d: normalized QPS not non-increasing", r)
			}
			prev = v
		}
	}
}

func TestTable3Values(t *testing.T) {
	tbl := runQuick(t, "table3")
	cxlAlone := cell(t, tbl, 0, 2)
	cxlCont := cell(t, tbl, 1, 2)
	if cxlAlone < 0.85 || cxlAlone > 1.05 {
		t.Errorf("table3 alone = %v, paper 0.947", cxlAlone)
	}
	if cxlCont < 0.3 || cxlCont > 0.7 {
		t.Errorf("table3 contended = %v, paper 0.504", cxlCont)
	}
}

func TestFig11bInverseCorrelation(t *testing.T) {
	tbl := runQuick(t, "fig11b")
	if len(tbl.Notes) == 0 || !strings.Contains(tbl.Notes[0], "Pearson") {
		t.Fatal("fig11b should report a Pearson value")
	}
	// The note embeds the coefficient; it must be negative.
	var v float64
	if _, err := fmtSscan(tbl.Notes[0], &v); err != nil {
		t.Fatalf("cannot parse Pearson from %q", tbl.Notes[0])
	}
	if v >= 0 {
		t.Errorf("fig11b Pearson = %v, want negative (inverse relation)", v)
	}
}

// fmtSscan extracts the first float after the '=' sign in a string.
func fmtSscan(s string, out *float64) (int, error) {
	if eq := strings.IndexByte(s, '='); eq >= 0 {
		s = s[eq+1:]
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '-' || (s[i] >= '0' && s[i] <= '9') {
			j := i
			for j < len(s) && (s[j] == '-' || s[j] == '.' || (s[j] >= '0' && s[j] <= '9')) {
				j++
			}
			v, err := strconv.ParseFloat(s[i:j], 64)
			if err == nil {
				*out = v
				return 1, nil
			}
		}
	}
	return 0, strconv.ErrSyntax
}

func TestFig12aPositiveSynchrony(t *testing.T) {
	tbl := runQuick(t, "fig12a")
	var v float64
	if _, err := fmtSscan(tbl.Notes[0], &v); err != nil {
		t.Fatal("cannot parse Pearson")
	}
	if v <= 0.3 {
		t.Errorf("fig12a final Pearson = %v, want clearly positive", v)
	}
}

func TestFig13CaptionCompetitive(t *testing.T) {
	tbl := runQuick(t, "fig13")
	for r := range tbl.Rows {
		name := tbl.Rows[r][0].Text()
		ddr := cell(t, tbl, r, 1)
		half := cell(t, tbl, r, 2)
		caption := cell(t, tbl, r, 3)
		best := ddr
		if half > best {
			best = half
		}
		if caption < 0.95*best {
			t.Errorf("fig13 %s: Caption %.2f falls >5%% below best static %.2f", name, caption, best)
		}
	}
}

func TestOptionsScale(t *testing.T) {
	o := DefaultOptions()
	if o.scale(5000) != 5000 {
		t.Error("full mode should not scale")
	}
	o.Quick = true
	if got := o.scale(5000); got != 500 {
		t.Errorf("quick scale = %d", got)
	}
	if got := o.scale(200); got != 100 {
		t.Errorf("quick floor = %d", got)
	}
}
