// Scenario-matrix engine (DESIGN.md §8).
//
// The matrix experiments take the cross product of {workload × interleaving
// policy × working-set size × platform profile} from the internal/workloads
// and internal/topo registries and
// dispatch every cell through the parallel sweep engine (sweep.go). Cells
// are memoized process-wide in a memo.Cache keyed by the canonical scenario
// spec plus an options fingerprint, so cells shared between matrices — and
// the serial/parallel double runs of the equivalence tests — are computed
// once. Cell values are structured workloads.Metrics; formatting happens
// only at the emitter layer (DESIGN.md §10).
package experiments

import (
	"context"
	"fmt"
	"strings"

	"cxlmem/internal/memo"
	"cxlmem/internal/results"
	"cxlmem/internal/topo"
	"cxlmem/internal/workloads"
)

func init() {
	registerMatrix("matrix-apps", "scenario matrix: every registered workload x DDR/interleave/CXL placement", runMatrixApps)
	registerMatrix("matrix-policy", "scenario matrix: throughput workloads x 5 interleaving policies", runMatrixPolicy)
	registerMatrix("matrix-size", "scenario matrix: size-aware workloads x working-set sizes", runMatrixSize)
	registerMatrix("matrix-platform", "scenario matrix: representative workloads x every registered platform profile", runMatrixPlatform)
}

// cellCache memoizes evaluated matrix cells for the lifetime of the
// process. Cell values depend only on the canonical spec and the options
// fingerprint — never on the worker count — so caching preserves the
// byte-identical serial-vs-parallel contract.
var cellCache = memo.NewCache()

// Validate reports option errors a dispatching caller can surface cleanly —
// currently an unregistered platform name, which would otherwise fail (or,
// inside the code-defined matrix drivers, panic) only once a cell runs.
func (o Options) Validate() error {
	if o.Platform != "" {
		if _, err := topo.PlatformByName(o.Platform); err != nil {
			return err
		}
	}
	if _, err := ParseFidelity(string(o.Fidelity)); err != nil {
		return err
	}
	return nil
}

// cellKey is the memoization key of one (scenario, options) cell. The
// options' platform joins the fingerprint because a cell without its own
// platform= key inherits it — cached values must never leak across machines.
func (o Options) cellKey(sc workloads.Scenario) string {
	return sc.String() + "|" + o.fingerprint()
}

// ScenarioKey returns the canonical memo key of one (scenario, options)
// cell — the unit of distribution for cache sharding (DESIGN.md §14), with
// the same fidelity blanking the scenario dispatchers apply before caching:
// scenario cells never simulate the buffer-latency hot path, so the tier
// cannot fork their keys.
func ScenarioKey(o Options, sc workloads.Scenario) string {
	o.Fidelity = ""
	return o.cellKey(sc)
}

// scenarioEnv builds the workload environment for one cell: the cell's own
// platform when it names one (so Scenario.Run's ForPlatform is a no-op and
// each cell builds exactly one System), the options' platform otherwise,
// Table 1 when neither is set — with the cross-cutting run knobs. The
// default experiment seed keeps each workload's calibrated seed; an
// explicit -seed override perturbs every cell.
func (o Options) scenarioEnv(cellPlatform string) (*workloads.Env, error) {
	platform := cellPlatform
	if platform == "" {
		platform = o.Platform
	}
	env, err := workloads.NewEnvOn(platform)
	if err != nil {
		return nil, err
	}
	env.Quick = o.Quick
	env.FastWarmup = o.FastWarmup
	if o.Seed != DefaultOptions().Seed {
		env.Seed = o.Seed
	}
	return env, nil
}

// RunScenario evaluates one scenario cell under the options, memoized in
// the process-wide cell cache. Each fresh evaluation builds a private
// system, so concurrent cells never share mutable state. Options.Ctx bounds
// the caller's wait; a canceled cell is never cached.
func RunScenario(o Options, sc workloads.Scenario) (workloads.Metrics, error) {
	return runScenarioCached(cellCache, o, sc)
}

// runScenarioCached is RunScenario against an explicit cache — the
// serial-vs-parallel test passes fresh caches so memoization cannot mask a
// concurrency bug in cell evaluation.
func runScenarioCached(cache *memo.Cache, o Options, sc workloads.Scenario) (workloads.Metrics, error) {
	v, err := cache.DoCtx(o.context(), o.cellKey(sc), func(ctx context.Context) (any, error) {
		// Cells are the sweep engine's unit of work: a cell that lost every
		// waiter before starting is skipped, a started one runs to completion.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		env, err := o.scenarioEnv(sc.Platform)
		if err != nil {
			return nil, err
		}
		return sc.Run(env)
	})
	if err != nil {
		return workloads.Metrics{}, err
	}
	return v.(workloads.Metrics), nil
}

// ScenarioResult evaluates one scenario cell (memoized) and returns its
// full metric list as a typed dataset — one row per metric, the scenario's
// canonical spec in the provenance. This is the single-cell structured form
// served by cxlserve's /v1/scenario and the facade's RunScenario.
func ScenarioResult(o Options, sc workloads.Scenario) (*results.Dataset, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	// Scenario cells never simulate the buffer-latency hot path, so the
	// fidelity knob cannot shape them: blank it (post-validation) to keep
	// one cell-cache entry and an unlabeled provenance.
	o.Fidelity = ""
	m, err := RunScenario(o, sc)
	if err != nil {
		return nil, err
	}
	return ScenarioResultFromCell(o, sc, m), nil
}

// ScenarioResultFromCell assembles the single-cell dataset ScenarioResult
// returns from an already-evaluated cell — the assembly half, shared with
// the cluster coordinator so a remotely fetched cell renders byte-identical
// to a local run.
func ScenarioResultFromCell(o Options, sc workloads.Scenario, m workloads.Metrics) *results.Dataset {
	d := m.Dataset("scenario", "scenario "+sc.String())
	d.Prov = results.Provenance{
		ExperimentID: "scenario",
		Platform:     o.Platform,
		Scenario:     sc.String(),
		Quick:        o.Quick,
		FastWarmup:   o.FastWarmup,
		Seed:         o.Seed,
	}
	return d
}

// ParseScenarios parses a list of spec strings, failing on the first bad one.
func ParseScenarios(specs []string) ([]workloads.Scenario, error) {
	out := make([]workloads.Scenario, len(specs))
	for i, s := range specs {
		sc, err := workloads.ParseScenario(s)
		if err != nil {
			return nil, err
		}
		out[i] = sc
	}
	return out, nil
}

// ScenarioDataset evaluates the scenarios across the options' worker pool
// and returns them as one dataset, one row per cell in input order: the
// headline metric plus the remaining metrics compacted into a detail column.
func ScenarioDataset(o Options, id, title string, scs []workloads.Scenario) (*results.Dataset, error) {
	return scenarioDatasetCached(cellCache, o, id, title, scs)
}

// scenarioDatasetCached is ScenarioDataset against an explicit cell cache.
func scenarioDatasetCached(cache *memo.Cache, o Options, id, title string, scs []workloads.Scenario) (*results.Dataset, error) {
	// As in ScenarioResult: fidelity cannot shape scenario cells, so it
	// must not fork their cache entries or label their provenance.
	o.Fidelity = ""
	type cell struct {
		m   workloads.Metrics
		err error
	}
	cells := sweepPoints(o, len(scs), func(i int) cell {
		m, err := runScenarioCached(cache, o, scs[i])
		return cell{m, err}
	})
	metrics := make([]workloads.Metrics, len(cells))
	for i, c := range cells {
		if c.err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", scs[i], c.err)
		}
		metrics[i] = c.m
	}
	return ScenarioDatasetFromCells(o, id, title, scs, metrics), nil
}

// ScenarioDatasetFromCells assembles the scenario-list dataset from
// already-evaluated cell metrics, cells[i] belonging to scs[i]. It is the
// assembly half of ScenarioDataset, shared with the cluster coordinator:
// cells fetched from remote replicas merge through the exact same row
// construction, which is what makes a distributed matrix run byte-identical
// to local serial execution (remote values arrive through the lossless JSON
// wire form, so no precision is lost on the way).
func ScenarioDatasetFromCells(o Options, id, title string, scs []workloads.Scenario, cells []workloads.Metrics) *results.Dataset {
	o.Fidelity = ""
	d := newDataset(o, id, title,
		col("Scenario", ""), col("Metric", ""), col("Value", ""), col("Unit", ""), col("Detail", ""))
	for i, m := range cells {
		p := m.Primary()
		var detail []string
		if len(m.Items) > 1 {
			for _, it := range m.Items[1:] {
				detail = append(detail, fmt.Sprintf("%s=%s%s", it.Name, f2(it.Value), it.Unit))
			}
		}
		d.AddRow(results.Str(scs[i].String()), results.Str(p.Name), results.Num(p.Value, 2),
			results.Str(p.Unit), results.Str(strings.Join(detail, " ")))
	}
	return d
}

// mustScenarios parses code-defined matrix specs; a bad literal is a
// programming error.
func mustScenarios(specs []string) []workloads.Scenario {
	scs, err := ParseScenarios(specs)
	if err != nil {
		panic(err)
	}
	return scs
}

// mustScenarioDataset is ScenarioDataset for registered matrix experiments,
// whose code-defined cells cannot legitimately fail.
func mustScenarioDataset(o Options, id, title string, specs []string) *results.Dataset {
	d, err := ScenarioDataset(o, id, title, mustScenarios(specs))
	if err != nil {
		panic(err)
	}
	return d
}

// matrixPlacements are the coarse placement policies of matrix-apps.
var matrixPlacements = []string{"ddr", "interleave", "cxl"}

// matrixAppsSpecs crosses every registered steady-state workload with the
// coarse placements at default size. Event-driven workloads are skipped:
// their output is a timeline, not a placement-comparable scalar, and they
// have their own dedicated experiment (tpp-timeline) — skipping them also
// keeps this matrix's golden invariant as event-driven workloads register.
func matrixAppsSpecs() []string {
	var specs []string
	for _, w := range workloads.All() {
		if workloads.IsEventDriven(w) {
			continue
		}
		for _, p := range matrixPlacements {
			specs = append(specs, fmt.Sprintf("%s/policy=%s", w.Name(), p))
		}
	}
	return specs
}

func runMatrixApps(o Options) *results.Dataset {
	d := mustScenarioDataset(o, "matrix-apps",
		"every registered workload under DDR-only, 50:50 interleave, and CXL-only placement",
		matrixAppsSpecs())
	d.AddNote("latency workloads (kvstore, dsb, fio) degrade toward cxl; bandwidth-bound dlrm/fluid peak at an interior split (F1/F4)")
	return d
}

// matrixPolicySpecs sweeps the paper's weighted-interleave knob across the
// throughput-oriented workloads (the Fig. 9/13 axis).
func matrixPolicySpecs() []string {
	policies := []string{"ddr", "weighted:85,15", "interleave", "weighted:25,75", "cxl"}
	heads := []string{"ycsb:a", "dlrm", "spec:mix"}
	var specs []string
	for _, h := range heads {
		for _, p := range policies {
			specs = append(specs, fmt.Sprintf("%s/policy=%s", h, p))
		}
	}
	return specs
}

func runMatrixPolicy(o Options) *results.Dataset {
	d := mustScenarioDataset(o, "matrix-policy",
		"weighted-interleave sweep over the throughput workloads",
		matrixPolicySpecs())
	d.AddNote("paper F4: the best ratio is interior and workload-dependent — the knob Caption tunes at runtime (fig13)")
	return d
}

// matrixSizeSpecs sweeps working-set size over the size-aware workloads at
// a fixed 50:50 interleave.
func matrixSizeSpecs() []string {
	sizes := []string{"64M", "256M", "1G"}
	heads := []string{"kvstore", "fluid", "dlrm"}
	var specs []string
	for _, h := range heads {
		for _, s := range sizes {
			specs = append(specs, fmt.Sprintf("%s/policy=interleave/size=%s", h, s))
		}
	}
	return specs
}

func runMatrixSize(o Options) *results.Dataset {
	d := mustScenarioDataset(o, "matrix-size",
		"working-set size sweep at 50:50 interleave",
		matrixSizeSpecs())
	d.AddNote("size moves the LLC-resident share: small sets hide the CXL latency, large sets expose device bandwidth (O6)")
	return d
}

// matrixPlatformSpecs crosses a latency-, a bandwidth- and a
// stream-oriented workload with every registered platform profile, each
// cell running against the platform's default far device.
func matrixPlatformSpecs() []string {
	heads := []string{"kvstore", "dlrm", "fluid"}
	var specs []string
	for _, h := range heads {
		for _, p := range topo.PlatformNames() {
			specs = append(specs, fmt.Sprintf("%s/platform=%s", h, p))
		}
	}
	return specs
}

func runMatrixPlatform(o Options) *results.Dataset {
	d := mustScenarioDataset(o, "matrix-platform",
		"representative workloads across every registered platform profile",
		matrixPlatformSpecs())
	d.AddNote("the machine moves the numbers as much as the policy: ASIC x16 expanders close on DDR while the degraded FPGA collapses throughput (O2)")
	return d
}

// AllMatrixScenarios returns the union of every matrix experiment's cells
// in deterministic order, deduplicated by canonical spec — the -scenario
// all cross product.
func AllMatrixScenarios() []workloads.Scenario {
	var specs []string
	specs = append(specs, matrixAppsSpecs()...)
	specs = append(specs, matrixPolicySpecs()...)
	specs = append(specs, matrixSizeSpecs()...)
	specs = append(specs, matrixPlatformSpecs()...)
	seen := make(map[string]bool, len(specs))
	var uniq []string
	for _, s := range specs {
		sc := mustScenarios([]string{s})[0]
		if key := sc.String(); !seen[key] {
			seen[key] = true
			uniq = append(uniq, s)
		}
	}
	return mustScenarios(uniq)
}
