// Parallel sweep engine (DESIGN.md §5).
//
// Almost every experiment evaluates a grid of independent operating points —
// ratio × threads × QPS × device. Each point builds its own workload
// instance and RNG from Options.Seed and reads only immutable topology (the
// mlc experiments that mutate cache state build a private System per point),
// so points can fan out across a worker pool. Results are written into
// index-addressed slots and rows are assembled serially afterwards, making
// the rendered table byte-identical for every worker count — the
// serial-vs-parallel equivalence test asserts exactly that for every
// registered experiment.
package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves the sweep fan-out: Options.Parallel if positive,
// otherwise every available CPU.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// sweepCancel carries a context error out of a canceled sweep as a panic
// value: drivers have no error return, so cancellation unwinds like a point
// panic and the dispatcher (recoverAsErr) converts it back into the
// request's context error — which the memo layer never retains.
type sweepCancel struct{ err error }

// ctxErr reports the options' context error, nil when no context is set.
func (o Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// context returns the options' context, Background when none is set.
func (o Options) context() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// forEachPoint evaluates eval(0..n-1) across the options' worker pool.
// eval must not share mutable state between indices. A panicking point is
// re-panicked on the caller's goroutine after the pool drains, matching the
// serial failure mode. When the options carry a context, cancellation stops
// workers from claiming further points and the sweep panics sweepCancel —
// in-flight points finish, queued ones never start, and the worker pool is
// freed for other requests.
func forEachPoint(o Options, n int, eval func(i int)) {
	workers := o.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := o.ctxErr(); err != nil {
				panic(sweepCancel{err})
			}
			eval(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := o.ctxErr(); err != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = sweepCancel{err}
					}
					panicMu.Unlock()
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					eval(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// sweepPoints maps the n independent operating points through eval and
// returns the results in index order regardless of completion order.
func sweepPoints[T any](o Options, n int, eval func(i int) T) []T {
	out := make([]T, n)
	forEachPoint(o, n, func(i int) {
		out[i] = eval(i)
	})
	return out
}
