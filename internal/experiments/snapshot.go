// Warm-start snapshots of the dataset memo cache (DESIGN.md §14).
//
// Every cached dataset is a pure function of its canonical memo key, and
// the results JSON emitter is lossless, so the whole cache can travel as
// (key, wire-form) pairs: ExportDatasetCache serializes the resident
// datasets through the same emitter that answers format=json requests, and
// ImportDatasetCache inverts it with results.ParseJSON. A replica restarted
// from a snapshot therefore serves byte-identical responses for every
// restored key with zero recompute — the property the warm-start tests pin
// against the golden corpus.
//
// Only the dataset cache is snapshotted. Scenario cells are cheap relative
// to whole experiments, carry non-serializable workload state in some
// models, and are themselves re-memoized on first touch; the dataset layer
// is where a cold boot hurts.
package experiments

import (
	"encoding/json"
	"fmt"

	"cxlmem/internal/memo"
	"cxlmem/internal/results"
)

// snapshotSchemaVersion is bumped whenever the snapshot envelope or the
// entry encoding changes shape; ImportDatasetCache rejects other versions.
const snapshotSchemaVersion = 1

// snapshotFile is the on-disk/wire envelope of a dataset-cache snapshot.
type snapshotFile struct {
	// Schema is the snapshot format version.
	Schema int `json:"schema"`
	// Cache names the snapshotted cache ("dataset").
	Cache string `json:"cache"`
	// Entries holds the serialized cache entries, most-recently-used first.
	Entries []memo.SnapshotEntry `json:"entries"`
}

// encodeDataset serializes one cached dataset through the lossless JSON
// emitter — exactly the bytes a format=json response carries.
func encodeDataset(key string, v any) ([]byte, error) {
	d, ok := v.(*results.Dataset)
	if !ok {
		return nil, fmt.Errorf("experiments: cache entry %q is not a dataset", key)
	}
	out, err := results.Emit(d, "json")
	if err != nil {
		return nil, fmt.Errorf("experiments: encoding %q: %w", key, err)
	}
	return []byte(out), nil
}

// decodeDataset inverts encodeDataset via results.ParseJSON.
func decodeDataset(key string, data []byte) (any, error) {
	d, err := results.ParseJSON(data)
	if err != nil {
		return nil, fmt.Errorf("experiments: decoding %q: %w", key, err)
	}
	return d, nil
}

// ExportDatasetCache serializes the process-wide dataset cache — every
// settled, successful entry with its key and hotness metadata — as the
// schema-versioned snapshot JSON cxlserve's /v1/snapshot serves and its
// -snapshot-save flag writes.
func ExportDatasetCache() ([]byte, error) {
	entries, err := datasetCache.Snapshot(encodeDataset)
	if err != nil {
		return nil, err
	}
	if entries == nil {
		entries = []memo.SnapshotEntry{}
	}
	out, err := json.MarshalIndent(snapshotFile{Schema: snapshotSchemaVersion, Cache: "dataset", Entries: entries}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ImportDatasetCache restores a snapshot produced by ExportDatasetCache
// into the process-wide dataset cache and reports how many entries were
// restored. Keys already resident are left untouched, and the configured
// entry budget still applies — an oversized snapshot restores cold-first
// evicted like any other overflow.
func ImportDatasetCache(data []byte) (int, error) {
	return ImportDatasetCacheInto(datasetCache, data)
}

// ImportDatasetCacheInto is ImportDatasetCache against an explicit cache —
// the snapshot tests (here and in the serve layer) restore into a fresh
// process-shape cache so the global one cannot mask a serialization bug.
func ImportDatasetCacheInto(c *memo.Cache, data []byte) (int, error) {
	var f snapshotFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("experiments: bad snapshot: %w", err)
	}
	if f.Schema != snapshotSchemaVersion {
		return 0, fmt.Errorf("experiments: unsupported snapshot schema %d (want %d)", f.Schema, snapshotSchemaVersion)
	}
	if f.Cache != "dataset" {
		return 0, fmt.Errorf("experiments: snapshot is of cache %q, want %q", f.Cache, "dataset")
	}
	return c.Restore(f.Entries, decodeDataset)
}
