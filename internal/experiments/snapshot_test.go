package experiments

// Warm-start snapshot tests (DESIGN.md §14): the dataset cache must survive
// a serialize/deserialize round trip with byte-identical emissions in every
// format, including while eviction churns the cache underneath — the
// process-restart story cxlserve's -snapshot-load flag implements.

import (
	"os"
	"strings"
	"testing"

	"cxlmem/internal/memo"
	"cxlmem/internal/results"
	"cxlmem/internal/workloads"
)

// TestSnapshotRoundTripUnderEviction is the warm-start acceptance test:
// with the process caches squeezed to a 4-entry budget (a fraction of the
// golden corpus), every registered experiment is run, exported through
// ExportDatasetCache, and restored into a fresh process-shape cache — where
// the just-run dataset must be resident (it was MRU at export), must serve
// without recompute, and must emit byte-identically in every format, text
// matching the committed golden.
func TestSnapshotRoundTripUnderEviction(t *testing.T) {
	ConfigureCaches(memo.CacheConfig{MaxEntries: 4})
	defer ConfigureCaches(memo.CacheConfig{})
	o := DefaultOptions()
	o.Quick = true
	o.Parallel = 2
	covered := 0
	for _, e := range All() {
		d, err := RunDataset(e.ID, o)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		data, err := ExportDatasetCache()
		if err != nil {
			t.Fatalf("%s: export: %v", e.ID, err)
		}
		fresh := memo.NewCache()
		n, err := ImportDatasetCacheInto(fresh, data)
		if err != nil {
			t.Fatalf("%s: import: %v", e.ID, err)
		}
		if n == 0 || n > 4 {
			t.Fatalf("%s: restored %d entries, want 1..4 under a 4-entry budget", e.ID, n)
		}
		key, err := DatasetKey(e.ID, o)
		if err != nil {
			t.Fatal(err)
		}
		recomputed := false
		v, err := fresh.Do(key, func() (any, error) { recomputed = true; return nil, nil })
		if err != nil {
			t.Fatalf("%s: restored lookup: %v", e.ID, err)
		}
		if recomputed {
			t.Fatalf("%s: just-run dataset missing from its own snapshot (key %s)", e.ID, key)
		}
		rd := v.(*results.Dataset)
		for _, format := range []string{"text", "json", "csv"} {
			want, err := results.Emit(d, format)
			if err != nil {
				t.Fatal(err)
			}
			got, err := results.Emit(rd, format)
			if err != nil {
				t.Fatalf("%s: emitting restored dataset as %s: %v", e.ID, format, err)
			}
			if got != want {
				t.Errorf("%s: restored %s emission diverges from the original", e.ID, format)
			}
		}
		golden, err := os.ReadFile(goldenPath(e.ID))
		if err != nil {
			t.Fatal(err)
		}
		if got := rd.Render(); got != string(golden) {
			t.Errorf("%s: restored text rendering diverges from the committed golden", e.ID)
		}
		covered++
	}
	if covered < 27 {
		t.Errorf("round-tripped %d experiments, want the full corpus (>= 27)", covered)
	}
	ds, _ := CacheStats()
	if ds.Evictions == 0 {
		t.Error("dataset cache never evicted under the 4-entry budget — the test lost its pressure")
	}
}

// TestImportRejectsBadSnapshots pins the failure envelope of the restore
// path: corrupt JSON, a wrong schema version, and a foreign cache name all
// fail cleanly without touching the cache.
func TestImportRejectsBadSnapshots(t *testing.T) {
	for _, tc := range []struct {
		name, data string
	}{
		{"corrupt", "{not json"},
		{"schema", `{"schema": 99, "cache": "dataset", "entries": []}`},
		{"cache", `{"schema": 1, "cache": "cell", "entries": []}`},
	} {
		fresh := memo.NewCache()
		if _, err := ImportDatasetCacheInto(fresh, []byte(tc.data)); err == nil {
			t.Errorf("%s snapshot imported without error", tc.name)
		}
		if fresh.Len() != 0 {
			t.Errorf("%s snapshot left %d entries resident", tc.name, fresh.Len())
		}
	}
}

// TestDatasetKeyMatchesCacheBehavior pins the routing contract: DatasetKey
// applies the same knob blanking RunDataset does, so two option sets that
// share a cache entry also share a routing key.
func TestDatasetKeyMatchesCacheBehavior(t *testing.T) {
	o := DefaultOptions()
	o.Quick = true
	// fig3 ignores platform and fidelity: blanked knobs must not fork keys.
	base, err := DatasetKey("fig3", o)
	if err != nil {
		t.Fatal(err)
	}
	op := o
	op.Platform = "x16-quad"
	op.Fidelity = FidelityFast
	forked, err := DatasetKey("fig3", op)
	if err != nil {
		t.Fatal(err)
	}
	if base != forked {
		t.Errorf("fig3 keys fork on blanked knobs:\n%s\n%s", base, forked)
	}
	// matrix-platform consumes the platform knob: keys must fork.
	mBase, err := DatasetKey("matrix-platform", o)
	if err != nil {
		t.Fatal(err)
	}
	mPlat, err := DatasetKey("matrix-platform", op)
	if err != nil {
		t.Fatal(err)
	}
	if mBase == mPlat {
		t.Error("matrix-platform keys do not fork on platform")
	}
	// Parallel never forks any key: a cached value is valid across fan-outs.
	o2 := o
	o2.Parallel = 7
	k2, err := DatasetKey("fig3", o2)
	if err != nil {
		t.Fatal(err)
	}
	if k2 != base {
		t.Error("fig3 key forks on worker count")
	}
	if _, err := DatasetKey("fig99", o); err == nil {
		t.Error("DatasetKey accepted an unknown experiment")
	}
}

// TestScenarioKeyBlanksFidelity pins the scenario half of the routing
// contract: fidelity never forks a cell key, everything else does.
func TestScenarioKeyBlanksFidelity(t *testing.T) {
	sc, err := workloads.ParseScenario("kvstore/policy=cxl")
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	base := ScenarioKey(o, sc)
	if !strings.HasPrefix(base, sc.String()+"|") {
		t.Errorf("cell key %q does not start with the canonical spec", base)
	}
	of := o
	of.Fidelity = FidelityFast
	if ScenarioKey(of, sc) != base {
		t.Error("scenario key forks on fidelity")
	}
	oq := o
	oq.Quick = true
	if ScenarioKey(oq, sc) == base {
		t.Error("scenario key does not fork on quick")
	}
}

// TestMetricsFromDatasetRoundTrip proves the coordinator's parse direction:
// Metrics -> Dataset -> JSON wire -> Dataset -> Metrics is lossless.
func TestMetricsFromDatasetRoundTrip(t *testing.T) {
	var m workloads.Metrics
	m.Add("max_qps", 123456.789012345, "qps")
	m.Add("p99_us", 7.000000000000001, "us")
	m.Add("dram_share", 0.625, "")
	d := m.Dataset("scenario", "probe")
	wire, err := results.Emit(d, "json")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := results.ParseJSON([]byte(wire))
	if err != nil {
		t.Fatal(err)
	}
	got, err := workloads.MetricsFromDataset(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(m.Items) {
		t.Fatalf("round trip has %d metrics, want %d", len(got.Items), len(m.Items))
	}
	for i, it := range got.Items {
		if it != m.Items[i] {
			t.Errorf("metric %d = %+v, want %+v (bit-exact)", i, it, m.Items[i])
		}
	}
	if _, err := workloads.MetricsFromDataset(results.New("x", "bad", results.Column{Name: "only"})); err != nil {
		// Zero-row dataset round-trips as empty metrics; only malformed rows fail.
		t.Errorf("empty dataset should parse to empty metrics, got %v", err)
	}
	bad := results.New("x", "bad")
	bad.AddRow(results.Str("a"), results.Str("b"))
	if _, err := workloads.MetricsFromDataset(bad); err == nil {
		t.Error("two-cell row parsed as a metric")
	}
}
