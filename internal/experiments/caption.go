package experiments

import (
	"cxlmem/internal/core"
	"cxlmem/internal/results"
	"cxlmem/internal/stats"
	"cxlmem/internal/telemetry"
	"cxlmem/internal/topo"
	"cxlmem/internal/workloads/dlrm"
	"cxlmem/internal/workloads/kvstore"
	"cxlmem/internal/workloads/spec"
	"cxlmem/internal/workloads/ycsb"
)

func init() {
	register("table4", "PMU counters Caption monitors (Table 4)", runTable4)
	register("fig11a", "DLRM throughput vs consumed system bandwidth (Fig. 11a)", runFig11a)
	register("fig11b", "DLRM throughput vs L1 miss latency (Fig. 11b)", runFig11b)
	register("fig12a", "Caption estimator vs DLRM throughput over a ratio sweep (Fig. 12a)", runFig12a)
	register("fig12b", "Caption autotuning SPEC-Mix: timeline and synchrony (Fig. 12b)", runFig12b)
	register("fig13", "Caption vs static 100:0 and 50:50 across benchmarks (Fig. 13)", runFig13)
}

func runTable4(o Options) *results.Dataset {
	d := newDataset(o, "table4", "CPU counters pertinent to memory-subsystem performance",
		col("Metric", ""), col("Tool", ""), col("Description", ""))
	d.AddRow(results.Str("L1 miss latency"), results.Str("pcm-latency"), results.Str("Average L1 miss latency (ns)"))
	d.AddRow(results.Str("DDR read latency"), results.Str("pcm-latency"), results.Str("DDR read latency (ns)"))
	d.AddRow(results.Str("IPC"), results.Str("pcm"), results.Str("Instructions per cycle"))
	d.AddNote("simulated equivalents are computed by the workload models (internal/telemetry)")
	return d
}

// dlrmOperatingPoints sweeps the allocation ratio and returns samples plus
// normalized throughput — the calibration data Caption's estimator is
// fitted on (§6.1 M2: "we collect CPU counter values at various DDR:CXL
// ratios while running DLRM with 24 threads").
func dlrmOperatingPoints(o Options, sys *topo.System, step float64) (samples []telemetry.Sample, thr []float64) {
	cfg := dlrm.DefaultConfig()
	var ratios []float64
	for r := 0.0; r <= 100; r += step {
		ratios = append(ratios, r)
	}
	res := sweepPoints(o, len(ratios), func(i int) dlrm.Result {
		return dlrm.Run(sys, cfg, "CXL-A", ratios[i], 24, dlrm.SNCAlone)
	})
	base := res[0].QueriesPerSec // ratios[0] == 0: the DDR-only baseline
	for _, r := range res {
		samples = append(samples, r.Sample)
		thr = append(thr, r.QueriesPerSec/base)
	}
	return samples, thr
}

// fitDLRMEstimator builds the paper's estimator.
func fitDLRMEstimator(o Options, sys *topo.System) *core.Estimator {
	samples, thr := dlrmOperatingPoints(o, sys, 5)
	est, err := core.FitEstimator(samples, thr)
	if err != nil {
		panic(err)
	}
	return est
}

func runFig11a(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.DefaultConfig())
	samples, thr := dlrmOperatingPoints(o, sys, 10)
	d := newDataset(o, "fig11a", "DLRM normalized throughput vs consumed system bandwidth",
		col("CXL %", "%"), col("System BW (GB/s)", "GB/s"), col("Norm. throughput", "x DDR100"))
	for i, s := range samples {
		d.AddRow(results.Num(s.CXLPercent, 0), results.Num(s.SystemBandwidthGBs, 1), results.Num(thr[i], 2))
	}
	d.AddNote("paper: throughput rises with consumed bandwidth until queueing at the controllers reverses it")
	return d
}

func runFig11b(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.DefaultConfig())
	samples, thr := dlrmOperatingPoints(o, sys, 10)
	d := newDataset(o, "fig11b", "DLRM normalized throughput vs L1 miss latency",
		col("CXL %", "%"), col("L1 miss latency (ns)", "ns"), col("Norm. throughput", "x DDR100"))
	var lats []float64
	for i, s := range samples {
		d.AddRow(results.Num(s.CXLPercent, 0), results.Num(s.L1MissLatencyNS, 1), results.Num(thr[i], 2))
		lats = append(lats, s.L1MissLatencyNS)
	}
	d.AddNote("Pearson(L1 miss latency, throughput) = %.2f (paper: strongly inverse)", stats.Pearson(lats, thr))
	return d
}

func runFig12a(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.DefaultConfig())
	est := fitDLRMEstimator(o, sys)
	cfg := dlrm.DefaultConfig()
	base := dlrm.Run(sys, cfg, "CXL-A", 0, 24, dlrm.SNCAlone).QueriesPerSec

	// The paper sweeps the ratio as a staircase (9/23/33/41/47%) and plots
	// measured throughput against the estimator's output.
	stair := []float64{9, 23, 33, 41, 47}
	const perStep = 6
	var thr, model []float64
	d := newDataset(o, "fig12a", "DLRM: measured throughput vs Caption model output over a ratio staircase",
		col("Interval", ""), col("CXL %", "%"), col("Norm. throughput", "x DDR100"),
		col("Model output", ""), col("Pearson so far", ""))
	// The staircase steps are independent operating points; only the
	// smoothing sampler below is sequential.
	stairRes := sweepPoints(o, len(stair), func(i int) dlrm.Result {
		return dlrm.Run(sys, cfg, "CXL-A", stair[i], 24, dlrm.SNCAlone)
	})
	sampler := telemetry.NewSampler(core.MonitorWindow)
	i := 0
	for si, r := range stair {
		res := stairRes[si]
		for k := 0; k < perStep; k++ {
			smoothed := sampler.Add(res.Sample)
			m := est.Estimate(smoothed)
			thr = append(thr, res.QueriesPerSec/base)
			model = append(model, m)
			pear := 0.0
			if len(thr) > 2 {
				pear = stats.Pearson(model, thr)
			}
			d.AddRow(results.Int(int64(i)), results.Num(r, 0), results.Num(thr[len(thr)-1], 2),
				results.Num(m, 2), results.Num(pear, 2))
			i++
		}
	}
	d.AddNote("final Pearson = %.2f (paper: mostly positive — direction is what Algorithm 1 needs)", stats.Pearson(model, thr))
	return d
}

// captionTimeline drives a Caption controller against a workload evaluated
// at the controller's ratio each interval. eval returns the measured
// throughput (any consistent unit) and the raw counter sample.
func captionTimeline(est *core.Estimator, eval func(ratio float64) (float64, telemetry.Sample), intervals int) (ratios, thr, model []float64) {
	ctl := core.NewController(est, core.DefaultTunerConfig(), func(float64) error { return nil })
	ratio := ctl.Ratio()
	for i := 0; i < intervals; i++ {
		m, s := eval(ratio)
		state, next, err := ctl.Step(s)
		if err != nil {
			panic(err)
		}
		ratios = append(ratios, ratio)
		thr = append(thr, m)
		model = append(model, state)
		ratio = next
	}
	return ratios, thr, model
}

func steadyMean(xs []float64) float64 {
	tail := xs[len(xs)/2:]
	return stats.Mean(tail)
}

func runFig12b(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.DefaultConfig())
	est := fitDLRMEstimator(o, sys)
	mix := []spec.Member{{Profile: spec.Roms, Instances: 8}, {Profile: spec.Mcf, Instances: 8}}
	base := spec.Run(sys, mix, "CXL-A", 0).GIPS

	ratios, thr, model := captionTimeline(est, func(r float64) (float64, telemetry.Sample) {
		res := spec.Run(sys, mix, "CXL-A", r)
		return res.GIPS / base, res.Sample
	}, 40)

	d := newDataset(o, "fig12b", "Caption autotuning SPEC-Mix (roms+mcf): ratio, throughput, model output",
		col("Interval", ""), col("CXL %", "%"), col("Norm. throughput", "x DDR100"), col("Model output", ""))
	for i := range ratios {
		d.AddRow(results.Int(int64(i)), results.Num(ratios[i], 0), results.Num(thr[i], 2), results.Num(model[i], 2))
	}
	d.AddNote("Pearson(model, throughput) = %.2f; steady-state ratio %.0f%% (paper converges to 29-41%%)",
		stats.Pearson(model, thr), steadyMean(ratios))
	return d
}

// fig13Case evaluates one benchmark/mix at a ratio: returns throughput in
// its own unit plus the counter sample.
type fig13Case struct {
	name string
	eval func(ratio float64) (float64, telemetry.Sample)
}

func fig13Cases(sys *topo.System, o Options) []fig13Case {
	specCase := func(name string, members []spec.Member) fig13Case {
		return fig13Case{name: name, eval: func(r float64) (float64, telemetry.Sample) {
			res := spec.Run(sys, members, "CXL-A", r)
			return res.GIPS, res.Sample
		}}
	}
	cases := []fig13Case{
		specCase("fotonik3d", []spec.Member{{Profile: spec.Fotonik3d, Instances: 16}}),
		specCase("mcf", []spec.Member{{Profile: spec.Mcf, Instances: 16}}),
		specCase("cactuBSSN", []spec.Member{{Profile: spec.CactuBSSN, Instances: 16}}),
		specCase("roms", []spec.Member{{Profile: spec.Roms, Instances: 16}}),
		specCase("roms+mcf", []spec.Member{{Profile: spec.Roms, Instances: 8}, {Profile: spec.Mcf, Instances: 8}}),
		specCase("roms+cactu", []spec.Member{{Profile: spec.Roms, Instances: 8}, {Profile: spec.CactuBSSN, Instances: 8}}),
	}

	// Redis+DLRM: geometric mean of each component's normalized throughput
	// (the paper's combined metric), with DLRM's counters dominating the
	// sample (it is the bandwidth-intensive partner).
	kvCfg := kvConfig(o)
	samples := o.scale(8000)
	dlrmCfg := dlrm.DefaultConfig()
	redisBase := kvstore.New(sys, kvCfg, "CXL-A", 0).MaxQPS(ycsb.WorkloadA, ycsb.Uniform, samples)
	dlrmBase := dlrm.Run(sys, dlrmCfg, "CXL-A", 0, 16, dlrm.SNCAlone).QueriesPerSec
	cases = append(cases, fig13Case{name: "Redis+DLRM", eval: func(r float64) (float64, telemetry.Sample) {
		redis := kvstore.New(sys, kvCfg, "CXL-A", r).MaxQPS(ycsb.WorkloadA, ycsb.Uniform, samples)
		dres := dlrm.Run(sys, dlrmCfg, "CXL-A", r, 16, dlrm.SNCAlone)
		g := stats.GeoMean([]float64{redis / redisBase, dres.QueriesPerSec / dlrmBase})
		return g, dres.Sample
	}})
	return cases
}

func runFig13(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.DefaultConfig())
	est := fitDLRMEstimator(o, sys)

	d := newDataset(o, "fig13", "Throughput normalized to the default 50:50 static policy",
		col("Benchmark", ""), col("DDR 100:0", "x 50:50"), col("50:50", "x 50:50"),
		col("Caption", "x 50:50"), col("Caption ratio", "%"))
	// Each benchmark row — two static policies plus a 40-interval Caption
	// timeline — is an independent sweep point; only the timeline's control
	// loop is inherently sequential.
	cases := fig13Cases(sys, o)
	rows := sweepPoints(o, len(cases), func(i int) []results.Cell {
		c := cases[i]
		ddr, _ := c.eval(0)
		half, _ := c.eval(50)
		ratios, thr, _ := captionTimeline(est, c.eval, 40)
		capThr := steadyMean(thr)
		capRatio := steadyMean(ratios)
		return []results.Cell{results.Str(c.name), results.Num(ddr/half, 2), results.Num(half/half, 2),
			results.Num(capThr/half, 2), results.PctPoints(capRatio, 0)}
	})
	for _, row := range rows {
		d.AddRow(row...)
	}
	d.AddNote("paper: Caption beats the best static policy by 19/18/8/20%% (singles) and 24/1/4%% (mixes), allocating 29-41%% to CXL")
	return d
}
