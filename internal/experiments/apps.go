package experiments

import (
	"fmt"

	"cxlmem/internal/results"
	"cxlmem/internal/stats"
	"cxlmem/internal/topo"
	"cxlmem/internal/workloads/dlrm"
	"cxlmem/internal/workloads/dsb"
	"cxlmem/internal/workloads/fio"
	"cxlmem/internal/workloads/kvstore"
	"cxlmem/internal/workloads/ycsb"
)

func init() {
	register("fig6a", "Redis YCSB-A p99 vs target QPS for 5 DDR:CXL ratios (Fig. 6a)", runFig6a)
	register("fig6b", "DSB compose-posts p99: caching tier on DDR vs CXL (Fig. 6b)", dsbRunner("fig6b", dsb.ComposePosts, []float64{1000, 2000, 3000, 4000, 5000}))
	register("fig6c", "DSB read-user-timelines p99 (Fig. 6c)", dsbRunner("fig6c", dsb.ReadUserTimelines, []float64{5000, 15000, 25000, 35000, 40000}))
	register("fig6d", "DSB mixed-workload p99, incl. the CXL-wins window (Fig. 6d)", dsbRunner("fig6d", dsb.Mixed, []float64{2000, 5000, 8000, 9500, 11000}))
	register("fig7", "Redis: TPP vs static 25% interleave latency distribution (Fig. 7)", runFig7)
	register("fig8", "FIO p99 vs block size with page cache on DDR vs CXL (Fig. 8)", runFig8)
	register("fig9a", "DLRM throughput vs threads for 7 allocation ratios (Fig. 9a)", runFig9a)
	register("fig9b", "Redis max QPS, YCSB A/B/C/D/F x 5 ratios, normalized (Fig. 9b)", runFig9b)
	register("table2", "DSB component working sets and placement (Table 2)", runTable2)
	register("table3", "DLRM: 1 vs 4 SNC nodes, DDR vs CXL 100% (Table 3)", runTable3)
}

func kvConfig(o Options) kvstore.Config {
	cfg := kvstore.DefaultConfig()
	if o.Quick {
		cfg.Keys = 100_000
	}
	return cfg
}

func runFig6a(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := kvConfig(o)
	ops := o.scale(40000)
	ratios := []float64{0, 25, 50, 75, 100}
	qpss := []float64{25000, 45000, 65000, 85000}

	d := newDataset(o, "fig6a", "Redis YCSB-A (uniform keys) p99 latency (us)",
		col("Target QPS", "qps"), col("DDR 100%", "us"), col("CXL 25%", "us"),
		col("CXL 50%", "us"), col("CXL 75%", "us"), col("CXL 100%", "us"))
	p99s := sweepPoints(o, len(qpss)*len(ratios), func(i int) float64 {
		q, r := qpss[i/len(ratios)], ratios[i%len(ratios)]
		s := kvstore.New(sys, cfg, "CXL-A", r)
		return s.RunOpenLoop(ycsb.WorkloadA, ycsb.Uniform, q, ops).P99.Microseconds()
	})
	for qi, q := range qpss {
		row := []results.Cell{results.Num(q, 0)}
		for ri := range ratios {
			row = append(row, results.Num(p99s[qi*len(ratios)+ri], 1))
		}
		d.AddRow(row...)
	}
	d.AddNote("paper F1: p99 grows proportionally with the CXL share; CXL 100%% is +10%%/+73%%/+105%% at 25/45/85 kQPS")
	return d
}

func dsbRunner(id string, w dsb.Workload, qpss []float64) func(Options) *results.Dataset {
	return func(o Options) *results.Dataset {
		sys := topo.NewSystem(topo.DefaultConfig())
		reqs := o.scale(20000)
		d := newDataset(o, id, fmt.Sprintf("DSB %s p99 latency (ms)", w),
			col("Target QPS", "qps"), col("DDR 100%", "ms"), col("CXL 100%", "ms"))
		p99s := sweepPoints(o, len(qpss)*2, func(i int) float64 {
			q, onCXL := qpss[i/2], i%2 == 1
			return dsb.Run(sys, w, "CXL-A", onCXL, q, reqs, o.Seed).P99.Milliseconds()
		})
		for qi, q := range qpss {
			d.AddRow(results.Num(q, 0), results.Num(p99s[qi*2], 2), results.Num(p99s[qi*2+1], 2))
		}
		d.AddNote("paper F3: ms-scale services barely notice CXL latency; the mixed workload flips in its 5-11 kQPS window")
		return d
	}
}

func runFig7(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := kvConfig(o)
	cfg.Keys = 50_000
	// The measured window must span several TPP scan intervals (100 ms each
	// at 40 kQPS) for the migration churn to show, so the op count has a
	// floor even in quick mode.
	ops := o.scale(40000)
	if ops < 20000 {
		ops = 20000
	}
	res := kvstore.RunWithTPP(sys, cfg, "CXL-A", 40000, ops)

	d := newDataset(o, "fig7", "Redis latency: TPP vs statically interleaving 25% of pages to CXL",
		col("Percentile", ""), col("TPP (us)", "us"), col("Static 25% (us)", "us"))
	for _, p := range []float64{50, 90, 99} {
		d.AddRow(results.Str(fmt.Sprintf("p%.0f", p)),
			results.Num(stats.Percentile(res.TPP.Latencies, p)/1000, 1),
			results.Num(stats.Percentile(res.Static.Latencies, p)/1000, 1))
	}
	d.AddRow(results.Str("migrations"), results.Int(int64(res.Migrations)), results.Int(0))
	ratio := float64(res.TPP.P99) / float64(res.Static.P99)
	d.AddNote("TPP/static p99 = %.2fx (paper: 2.74x / +174%%) — migration stalls hurt us-scale apps (F2)", ratio)
	return d
}

func runFig8(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.DefaultConfig())
	blocks := fio.BlockSizes()
	ios := o.scale(40000)
	res := sweepPoints(o, len(blocks)*2, func(i int) fio.Result {
		path := sys.DDRLocal
		if i%2 == 1 {
			path = sys.Path("CXL-A")
		}
		return fio.Run(sys, path, fio.DefaultConfig(), blocks[i/2], ios)
	})
	var ddr, cxl []fio.Result
	for i := range blocks {
		ddr = append(ddr, res[i*2])
		cxl = append(cxl, res[i*2+1])
	}
	d := newDataset(o, "fig8", "FIO p99 latency by block size, page cache on DDR vs CXL",
		col("Block", ""), col("DDR p99 (us)", "us"), col("CXL p99 (us)", "us"),
		col("Increase", "%"), col("Hit rate", "%"))
	for i := range ddr {
		inc := (float64(cxl[i].P99)/float64(ddr[i].P99) - 1)
		d.AddRow(results.Str(fmt.Sprintf("%dK", ddr[i].BlockBytes>>10)),
			results.Num(ddr[i].P99.Microseconds(), 1), results.Num(cxl[i].P99.Microseconds(), 1),
			results.Pct(inc), results.Pct(ddr[i].HitRate))
	}
	d.AddNote("paper: ~3%% at 4K, ~4.5%% at 8K, shrinking mid-range, rising again past 128K")
	return d
}

func runFig9a(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := dlrm.DefaultConfig()
	ratios := []float64{0, 17, 38, 50, 63, 83, 100}
	d := newDataset(o, "fig9a", "DLRM embedding-reduction throughput (M queries/s)",
		col("Threads", ""), col("DDR100", "Mq/s"), col("CXL17", "Mq/s"), col("CXL38", "Mq/s"),
		col("CXL50", "Mq/s"), col("CXL63", "Mq/s"), col("CXL83", "Mq/s"), col("CXL100", "Mq/s"))
	threads := []int{4, 8, 12, 16, 20, 24, 28, 32}
	qps := sweepPoints(o, len(threads)*len(ratios), func(i int) float64 {
		th, r := threads[i/len(ratios)], ratios[i%len(ratios)]
		return dlrm.Run(sys, cfg, "CXL-A", r, th, dlrm.SNCAlone).QueriesPerSec
	})
	for ti, th := range threads {
		row := []results.Cell{results.Int(int64(th))}
		for ri := range ratios {
			row = append(row, results.Num(qps[ti*len(ratios)+ri]/1e6, 2))
		}
		d.AddRow(row...)
	}
	best, bestQ := dlrm.BestRatio(sys, cfg, "CXL-A", 32, dlrm.SNCAlone, 1)
	base := dlrm.Run(sys, cfg, "CXL-A", 0, 32, dlrm.SNCAlone).QueriesPerSec
	d.AddNote("optimum at 32 threads: %.0f%% CXL, +%.0f%% vs DDR-only (paper: 63%%, +88%%)", best, (bestQ/base-1)*100)
	return d
}

func runFig9b(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := kvConfig(o)
	samples := o.scale(20000)
	ratios := []float64{0, 25, 50, 75, 100}
	d := newDataset(o, "fig9b", "Redis max sustainable QPS normalized to DDR 100%",
		col("Workload", ""), col("DDR100", "x DDR100"), col("CXL25", "x DDR100"),
		col("CXL50", "x DDR100"), col("CXL75", "x DDR100"), col("CXL100", "x DDR100"))
	ws := ycsb.Workloads()
	qs := sweepPoints(o, len(ws)*len(ratios), func(i int) float64 {
		w, r := ws[i/len(ratios)], ratios[i%len(ratios)]
		return kvstore.New(sys, cfg, "CXL-A", r).MaxQPS(w, ycsb.Uniform, samples)
	})
	for wi, w := range ws {
		// ratios[0] is the DDR-100% point — the normalization base.
		base := qs[wi*len(ratios)]
		row := []results.Cell{results.Str(w.Name)}
		for ri := range ratios {
			row = append(row, results.Num(qs[wi*len(ratios)+ri]/base, 2))
		}
		d.AddRow(row...)
	}
	d.AddNote("paper: YCSB-A loses 8/15/22/30%% at 25/50/75/100%% CXL; read-only C is least sensitive")
	return d
}

func runTable2(o Options) *results.Dataset {
	d := newDataset(o, "table2", "DSB social-network components (Table 2)",
		col("Component", ""), col("Working set", ""), col("Intensiveness", ""), col("Allocated memory", ""))
	d.AddRow(results.Str("Frontend"), results.Str("83 MB"), results.Str("Compute"), results.Str("DDR memory"))
	d.AddRow(results.Str("Logic"), results.Str("208 MB"), results.Str("Compute"), results.Str("DDR memory"))
	d.AddRow(results.Str("Caching & Storage"), results.Str("628 MB"), results.Str("Memory"), results.Str("CXL memory"))
	return d
}

func runTable3(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := dlrm.DefaultConfig()
	const threads = 8
	ddrAlone := dlrm.Run(sys, cfg, "CXL-A", 0, threads, dlrm.SNCAlone).QueriesPerSec
	cxlAlone := dlrm.Run(sys, cfg, "CXL-A", 100, threads, dlrm.SNCAlone).QueriesPerSec
	ddrCont := dlrm.Run(sys, cfg, "CXL-A", 0, threads, dlrm.SNCContended).QueriesPerSec
	cxlCont := dlrm.Run(sys, cfg, "CXL-A", 100, threads, dlrm.SNCContended).QueriesPerSec

	d := newDataset(o, "table3", "DLRM throughput, normalized to 1-SNC-node DDR 100%",
		col("Scenario", ""), col("DDR 100%", "x base"), col("CXL 100%", "x base"))
	d.AddRow(results.Str("1 SNC node"), results.Num(ddrAlone/ddrAlone, 2), results.Num(cxlAlone/ddrAlone, 2))
	d.AddRow(results.Str("4 SNC nodes"), results.Num(ddrCont/ddrAlone, 2), results.Num(cxlCont/ddrAlone, 2))
	d.AddNote("paper: 1 / 0.947 / 1 / 0.504 — contention for the shared slices erases the CXL LLC bonus")
	return d
}
