package experiments

import (
	"cxlmem/internal/core"
	"cxlmem/internal/mem"
	"cxlmem/internal/results"
	"cxlmem/internal/stats"
	"cxlmem/internal/telemetry"
	"cxlmem/internal/topo"
	"cxlmem/internal/workloads/dlrm"
	"cxlmem/internal/workloads/spec"
)

// Ablation experiments (DESIGN.md §6): each one disables a single modeled
// mechanism to show that it — and nothing else — produces the corresponding
// observation of the paper.
func init() {
	register("ablation-llc", "disable the SNC LLC-isolation break for CXL lines (isolates O6)", runAblationLLC)
	register("ablation-coherence", "disable remote-directory burst congestion (isolates O3)", runAblationCoherence)
	register("ablation-estimator", "Caption with the full counter set vs IPC only", runAblationEstimator)
	markFidelity("ablation-llc")
}

func runAblationLLC(o Options) *results.Dataset {
	samples := o.scale(200000)
	// Cache-mutating measurements: a private System per sweep point.
	lats := sweepPoints(o, 2, func(i int) float64 {
		cfg := topo.DefaultConfig()
		cfg.CXLBreaksSNCIsolation = i == 0
		sys := topo.NewSystem(cfg)
		return o.bufferLatencyNs(sys, sys.Path("CXL-A"), 32<<20, samples)
	})
	withBreak, without := lats[0], lats[1]

	// The same flag propagates into the DLRM LLC model via the hierarchy.
	cfgOn := topo.DefaultConfig()
	sysOn := topo.NewSystem(cfgOn)
	cfgOff := cfgOn
	cfgOff.CXLBreaksSNCIsolation = false
	sysOff := topo.NewSystem(cfgOff)
	dcfg := dlrm.DefaultConfig()
	ddr := dlrm.Run(sysOn, dcfg, "CXL-A", 0, 8, dlrm.SNCAlone).QueriesPerSec
	cxlOn := dlrm.Run(sysOn, dcfg, "CXL-A", 100, 8, dlrm.SNCAlone).QueriesPerSec
	cxlOff := dlrm.Run(sysOff, dcfg, "CXL-A", 100, 8, dlrm.SNCAlone).QueriesPerSec

	d := newDataset(o, "ablation-llc", "O6 ablation: CXL victims confined to the accessor's SNC node",
		col("Metric", ""), col("Isolation broken (hardware)", ""), col("Isolation kept (ablation)", ""))
	d.AddRow(results.Str("32MB buffer latency (ns)"), results.Num(withBreak, 1), results.Num(without, 1))
	d.AddRow(results.Str("DLRM CXL100 vs DDR100"), results.Num(cxlOn/ddr, 2), results.Num(cxlOff/ddr, 2))
	d.AddNote("without the isolation break, CXL memory loses its LLC bonus: Table 3's 0.947 parity disappears")
	return d
}

func runAblationCoherence(o Options) *results.Dataset {
	withCong := topo.NewSystem(topo.MicrobenchConfig())
	cfg := topo.MicrobenchConfig()
	cfg.CoherenceCongestion = false
	without := topo.NewSystem(cfg)

	d := newDataset(o, "ablation-coherence", "O3 ablation: remote-directory burst congestion on the UPI path",
		col("Metric", ""), col("Congestion on (hardware)", ""), col("Congestion off (ablation)", ""))
	rOn := withCong.Path("DDR5-R")
	rOff := without.Path("DDR5-R")
	aOn := withCong.Path("CXL-A")
	d.AddRow(results.Str("DDR5-R memo ld (ns)"),
		results.Num(rOn.ParallelLatency(mem.Load).Nanoseconds(), 1),
		results.Num(rOff.ParallelLatency(mem.Load).Nanoseconds(), 1))
	d.AddRow(results.Str("parallel reduction vs MLC"),
		results.Pct(1-rOn.ParallelLatency(mem.Load).Nanoseconds()/rOn.SerialLatency(mem.Load).Nanoseconds()),
		results.Pct(1-rOff.ParallelLatency(mem.Load).Nanoseconds()/rOff.SerialLatency(mem.Load).Nanoseconds()))
	d.AddRow(results.Str("CXL-A / DDR5-R memo ld"),
		results.Num(aOn.ParallelLatency(mem.Load).Nanoseconds()/rOn.ParallelLatency(mem.Load).Nanoseconds(), 2),
		results.Num(aOn.ParallelLatency(mem.Load).Nanoseconds()/rOff.ParallelLatency(mem.Load).Nanoseconds(), 2))
	d.AddNote("without congestion, emulated CXL amortizes as well as true CXL — the 76%% vs 79%% asymmetry (O3) vanishes")
	return d
}

func runAblationEstimator(o Options) *results.Dataset {
	sys := topo.NewSystem(topo.DefaultConfig())
	mix := []spec.Member{{Profile: spec.Roms, Instances: 8}, {Profile: spec.Mcf, Instances: 8}}
	base := spec.Run(sys, mix, "CXL-A", 0).GIPS
	eval := func(r float64) (float64, telemetry.Sample) {
		res := spec.Run(sys, mix, "CXL-A", r)
		return res.GIPS / base, res.Sample
	}

	// One DLRM calibration sweep feeds both estimators.
	samples, thr := dlrmOperatingPoints(o, sys, 5)
	// Full Table-4 estimator.
	full, err := core.FitEstimator(samples, thr)
	if err != nil {
		panic(err)
	}
	// IPC-only estimator: zero out the latency features by refitting on the
	// same sweep with the latency counters suppressed.
	ipcOnly := make([]telemetry.Sample, len(samples))
	for i, s := range samples {
		ipcOnly[i] = telemetry.Sample{IPC: s.IPC,
			L1MissLatencyNS:  1, // constant features are excluded from the fit
			DDRReadLatencyNS: 1}
	}
	// A constant feature makes the system singular, so perturb minimally.
	for i := range ipcOnly {
		ipcOnly[i].L1MissLatencyNS = 1 + 1e-9*float64(i)
		ipcOnly[i].DDRReadLatencyNS = 1 + 1e-9*float64(i*i)
	}
	ipcEst, err := core.FitEstimator(ipcOnly, thr)
	if err != nil {
		panic(err)
	}

	run := func(est *core.Estimator, strip bool) (float64, float64) {
		eval2 := eval
		if strip {
			eval2 = func(r float64) (float64, telemetry.Sample) {
				m, s := eval(r)
				s.L1MissLatencyNS = 1
				s.DDRReadLatencyNS = 1
				return m, s
			}
		}
		_, thr, model := captionTimeline(est, eval2, 40)
		return steadyMean(thr), stats.Pearson(model, thr)
	}
	type outcome struct{ thr, pear float64 }
	outcomes := sweepPoints(o, 2, func(i int) outcome {
		if i == 0 {
			thr, pear := run(full, false)
			return outcome{thr, pear}
		}
		thr, pear := run(ipcEst, true)
		return outcome{thr, pear}
	})
	fullThr, fullPear := outcomes[0].thr, outcomes[0].pear
	ipcThr, ipcPear := outcomes[1].thr, outcomes[1].pear

	d := newDataset(o, "ablation-estimator", "Caption estimator: full Table-4 counters vs IPC only (roms+mcf)",
		col("Estimator", ""), col("Steady throughput (norm.)", "x DDR100"), col("Pearson(model, throughput)", ""))
	d.AddRow(results.Str("L1 lat + DDR lat + IPC"), results.Num(fullThr, 2), results.Num(fullPear, 2))
	d.AddRow(results.Str("IPC only"), results.Num(ipcThr, 2), results.Num(ipcPear, 2))
	d.AddNote("the latency counters capture queueing at the controllers; IPC alone is a weaker, noisier signal (§6.1)")
	return d
}
