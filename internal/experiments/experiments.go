// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated system. Each experiment is a named driver
// returning a typed results.Dataset whose rows mirror what the paper plots;
// rendering is a consumer concern handled by the results emitters (text,
// json, csv), and the cxlbench command, the cxlserve daemon and the
// repository-level benchmarks run drivers by ID.
//
// See DESIGN.md §3 for the experiment index, DESIGN.md §10 for the
// structured-results core, and EXPERIMENTS.md for the paper-vs-measured
// record.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"cxlmem/internal/memo"
	"cxlmem/internal/mlc"
	"cxlmem/internal/results"
	"cxlmem/internal/topo"
)

// Typed sentinel errors: dispatch failures callers branch on with errors.Is
// (the cxlserve status mapping) instead of matching message substrings.
var (
	// ErrNotFound marks a lookup of an unregistered experiment ID.
	ErrNotFound = errors.New("unknown experiment id")
	// ErrInternal marks a recovered driver panic — an internal failure of
	// the experiment, not a bad request.
	ErrInternal = errors.New("driver panicked")
)

// Options tune an experiment run.
type Options struct {
	// Quick reduces sample counts so benchmarks stay fast; the full runs
	// are the defaults.
	Quick bool
	// Seed perturbs the stochastic components.
	Seed uint64
	// Parallel is the worker count for independent sweep points; 0 uses
	// every available CPU. Any value produces byte-identical tables — the
	// sweep engine orders results by operating-point index.
	Parallel int
	// FastWarmup switches the cache-simulating measurements (fig5,
	// ablation-llc) from the exact fixed six-pass warmup to the
	// convergence-based one (mlc.WarmupConverged). Faster, but the rendered
	// values can shift in the last digit, so the default stays exact —
	// the golden-table corpus pins the exact-mode rendering.
	FastWarmup bool
	// Platform selects the registered platform profile scenario cells run
	// on by default (a cell's own platform= key wins); empty keeps the
	// Table-1 default. The paper's fixed figures always run on Table 1 and
	// ignore it.
	Platform string
	// Fidelity selects the measurement tier of the cache-simulating
	// experiments (fig5, ablation-llc): exact simulation (default), the CHE
	// analytic estimate (fast), or analytic-off-knee/exact-at-knee (auto).
	// Experiments without a simulated hot path ignore it.
	Fidelity Fidelity
	// Ctx, when non-nil, bounds the run: the sweep engine stops claiming
	// operating points once it is done and the dispatchers return the
	// context's error instead of a dataset. It is excluded from the memo
	// fingerprint — a deadline shapes *whether* a result arrives, never its
	// bytes — and canceled computations are not cached.
	Ctx context.Context
}

// warmup resolves the options' warmup policy for mlc buffer measurements.
func (o Options) warmup() mlc.Warmup {
	if o.FastWarmup {
		return mlc.WarmupConverged
	}
	return mlc.WarmupExact
}

// DefaultOptions returns the full-fidelity settings.
func DefaultOptions() Options { return Options{Seed: 1} }

// scale returns n, or a reduced count in quick mode.
func (o Options) scale(n int) int {
	if o.Quick {
		n /= 10
		if n < 100 {
			n = 100
		}
	}
	return n
}

// fingerprint is the options part of every memo key: exactly the knobs that
// change a result's numbers. Parallel is excluded by design — results are
// byte-identical for every worker count (the serial-vs-parallel equivalence
// test pins it), so a cached value is valid across fan-outs.
func (o Options) fingerprint() string {
	return fmt.Sprintf("quick=%t|fastwarm=%t|seed=%d|platform=%s|fidelity=%s",
		o.Quick, o.FastWarmup, o.Seed, o.Platform, o.fidelity())
}

// Table is the legacy pre-formatted rendering path: rows of already
// formatted strings. Drivers no longer build Tables — they return typed
// results.Datasets — but the type and its Render stay as the reference
// implementation the emitter-equivalence property test compares the text
// emitter against (and as a conversion target via LegacyTable).
type Table struct {
	// ID is the experiment identifier ("fig3", "table1", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Headers labels the columns.
	Headers []string
	// Rows holds the data, already formatted.
	Rows [][]string
	// Notes carries qualitative checks and paper references.
	Notes []string
}

// LegacyTable formats a dataset down to the legacy pre-formatted Table —
// the lossy direction: cells become display strings.
func LegacyTable(d *results.Dataset) *Table {
	return &Table{ID: d.ID, Title: d.Title, Headers: d.Headers(), Rows: d.TextRows(), Notes: d.Notes}
}

// Render returns an aligned text rendering. The column-width pass is the
// shared results.ColumnWidths helper — the same one the text emitter uses —
// so the two renderers cannot drift.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := results.ColumnWidths(t.Headers, t.Rows)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered driver.
type Experiment struct {
	// ID is the registry key.
	ID string
	// Desc is a one-line description.
	Desc string
	// Run executes the experiment and returns its typed dataset. The
	// returned dataset may be cached and emitted concurrently — callers and
	// drivers treat it as immutable once returned.
	Run func(Options) *results.Dataset
	// UsesPlatform marks drivers whose cells consume Options.Platform (the
	// matrix experiments). The paper's fixed figures measure the Table-1
	// machine and ignore the knob by construction, so for them RunDataset
	// blanks the platform before caching and provenance-stamping — the wire
	// form must never label Table-1 numbers with another machine.
	UsesPlatform bool
	// UsesFidelity marks drivers whose hot path consumes Options.Fidelity
	// (the buffer-latency sweeps). For every other experiment RunDataset
	// blanks the knob before caching and provenance-stamping, for the same
	// reason UsesPlatform blanks Platform.
	UsesFidelity bool
}

var registry = map[string]Experiment{}

func register(id, desc string, run func(Options) *results.Dataset) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = Experiment{ID: id, Desc: desc, Run: run}
}

// registerMatrix registers a platform-sensitive scenario-matrix driver.
func registerMatrix(id, desc string, run func(Options) *results.Dataset) {
	register(id, desc, run)
	e := registry[id]
	e.UsesPlatform = true
	registry[id] = e
}

// Get returns the experiment with the given ID; the failure wraps
// ErrNotFound.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: %w %q (try 'list')", ErrNotFound, id)
	}
	return e, nil
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns the sorted registry keys.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// datasetCache memoizes whole experiment datasets process-wide, so repeated
// RunDataset calls — a cxlserve daemon answering the same query, or the
// emitters re-rendering one run as text/json/csv — evaluate each
// (experiment, options) pair once. Keys exclude the worker count
// (Options.fingerprint), matching the byte-identity contract.
var datasetCache = memo.NewCache()

func init() {
	// A platform-registry change invalidates every cached result that
	// depends on the mutated profile or enumerates the registry (DESIGN.md
	// §11) — the epoch bump topo publishes on RegisterPlatform.
	topo.OnPlatformChange(invalidatePlatform)
}

// ConfigureCaches applies the same bounds (entry budget, TTL) to both
// process-wide memo caches — the dataset cache and the scenario cell cache.
// cxlserve calls it from its -cache-entries/-cache-ttl flags; a zero config
// restores the unbounded default.
func ConfigureCaches(cfg memo.CacheConfig) {
	datasetCache.Configure(cfg)
	cellCache.Configure(cfg)
}

// CacheStats snapshots both process-wide memo caches for the cxlserve
// /metrics endpoint.
func CacheStats() (dataset, cell memo.CacheStats) {
	return datasetCache.Stats(), cellCache.Stats()
}

// invalidatePlatform drops every cached dataset and scenario cell that
// depends on the named platform profile, plus the matrix-platform datasets
// (they enumerate the whole registry, so any registration changes them).
func invalidatePlatform(name string) {
	pred := func(key string) bool { return keyDependsOnPlatform(key, name) }
	datasetCache.InvalidateFunc(pred)
	cellCache.InvalidateFunc(pred)
}

// keyDependsOnPlatform reports whether a memo key (cell or dataset) names
// the platform — as a scenario /platform= key or an options fingerprint —
// or belongs to a registry-enumerating matrix.
func keyDependsOnPlatform(key, name string) bool {
	if strings.HasPrefix(key, "experiment|matrix-platform|") {
		return true
	}
	needle := "platform=" + name
	for idx := strings.Index(key, needle); idx >= 0; {
		end := idx + len(needle)
		// A real reference ends the key or runs into the next delimiter;
		// anything else is a longer platform name sharing a prefix.
		if end == len(key) || key[end] == '|' || key[end] == '/' {
			return true
		}
		next := strings.Index(key[idx+1:], needle)
		if next < 0 {
			break
		}
		idx += 1 + next
	}
	return false
}

// recoverAsErr converts a recovered driver panic into the dispatcher's
// error: sweep cancellations become the request's context error (which the
// memo layer never retains), anything else wraps ErrInternal.
func recoverAsErr(id string, err *error) {
	r := recover()
	if r == nil {
		return
	}
	switch v := r.(type) {
	case sweepCancel:
		*err = fmt.Errorf("experiments: %s: %w", id, v.err)
	case error:
		if errors.Is(v, context.Canceled) || errors.Is(v, context.DeadlineExceeded) {
			*err = fmt.Errorf("experiments: %s: %w", id, v)
			return
		}
		*err = fmt.Errorf("experiments: %s %w: %v", id, ErrInternal, v)
	default:
		*err = fmt.Errorf("experiments: %s %w: %v", id, ErrInternal, r)
	}
}

// canonicalOptions blanks the option knobs that cannot shape this
// experiment's bytes, so equivalent runs share one cache entry and an
// honest provenance. Fixed figures ignore the platform knob (they always
// measure the Table-1 machine); experiments that never simulate the
// buffer-latency hot path produce identical bytes at any fidelity.
func (e Experiment) canonicalOptions(o Options) Options {
	if !e.UsesPlatform {
		o.Platform = ""
	}
	if !e.UsesFidelity {
		o.Fidelity = ""
	}
	return o
}

// datasetKey is the dataset cache's memoization key for a canonicalized
// (experiment, options) pair.
func datasetKey(id string, o Options) string {
	return "experiment|" + id + "|" + o.fingerprint()
}

// DatasetKey returns the canonical memo key of one (experiment, options)
// dataset — the unit of distribution for cache sharding (DESIGN.md §14).
// It applies the same knob-blanking RunDataset does before caching, so a
// routing ring and the memo layer can never disagree about which replica
// owns a result. Unknown IDs wrap ErrNotFound.
func DatasetKey(id string, o Options) (string, error) {
	e, err := Get(id)
	if err != nil {
		return "", err
	}
	return datasetKey(id, e.canonicalOptions(o)), nil
}

// RunDataset runs the experiment with the given ID under the options and
// returns its dataset, memoized process-wide. The returned dataset is shared
// between callers: treat it as immutable and render it through the results
// emitters. When the options carry a context, its cancellation aborts the
// run's sweep work (unless another caller still waits on the same key) and
// returns the context's error uncached.
func RunDataset(id string, o Options) (*results.Dataset, error) {
	e, err := Get(id)
	if err != nil {
		return nil, err
	}
	// Registered drivers treat cell failures as programming errors (panic),
	// so reject bad user-supplied options before dispatching.
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = e.canonicalOptions(o)
	v, err := datasetCache.DoCtx(o.context(), datasetKey(id, o), func(cctx context.Context) (out any, err error) {
		// A panicking driver must become an error, not a poisoned entry;
		// recoverAsErr also turns sweep cancellation back into ctx.Err().
		defer recoverAsErr(id, &err)
		ro := o
		ro.Ctx = cctx // the single-flight context: canceled when every waiter leaves
		return e.Run(ro), nil
	})
	if err != nil {
		return nil, err
	}
	d, ok := v.(*results.Dataset)
	if !ok {
		return nil, fmt.Errorf("experiments: %s produced no dataset", id)
	}
	return d, nil
}

// newDataset starts a driver's dataset, stamping the run's provenance from
// the options.
func newDataset(o Options, id, title string, cols ...results.Column) *results.Dataset {
	d := results.New(id, title, cols...)
	d.Prov = results.Provenance{
		ExperimentID: id,
		Platform:     o.Platform,
		Quick:        o.Quick,
		FastWarmup:   o.FastWarmup,
		Seed:         o.Seed,
		Fidelity:     o.provFidelity(),
	}
	return d
}

// col builds a dataset column: the display header (rendered verbatim) plus
// the machine-readable unit of its numeric cells.
func col(name, unit string) results.Column { return results.Column{Name: name, Unit: unit} }

// f2 formats a float at two decimals for compacted detail strings; tabular
// cells carry typed results.Num values instead.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
