// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated system. Each experiment is a named driver
// returning a Table whose rows mirror what the paper plots; the cxlbench
// command and the repository-level benchmarks run them by ID.
//
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cxlmem/internal/mlc"
)

// Options tune an experiment run.
type Options struct {
	// Quick reduces sample counts so benchmarks stay fast; the full runs
	// are the defaults.
	Quick bool
	// Seed perturbs the stochastic components.
	Seed uint64
	// Parallel is the worker count for independent sweep points; 0 uses
	// every available CPU. Any value produces byte-identical tables — the
	// sweep engine orders results by operating-point index.
	Parallel int
	// FastWarmup switches the cache-simulating measurements (fig5,
	// ablation-llc) from the exact fixed six-pass warmup to the
	// convergence-based one (mlc.WarmupConverged). Faster, but the rendered
	// values can shift in the last digit, so the default stays exact —
	// the golden-table corpus pins the exact-mode rendering.
	FastWarmup bool
	// Platform selects the registered platform profile scenario cells run
	// on by default (a cell's own platform= key wins); empty keeps the
	// Table-1 default. The paper's fixed figures always run on Table 1 and
	// ignore it.
	Platform string
}

// warmup resolves the options' warmup policy for mlc buffer measurements.
func (o Options) warmup() mlc.Warmup {
	if o.FastWarmup {
		return mlc.WarmupConverged
	}
	return mlc.WarmupExact
}

// DefaultOptions returns the full-fidelity settings.
func DefaultOptions() Options { return Options{Seed: 1} }

// scale returns n, or a reduced count in quick mode.
func (o Options) scale(n int) int {
	if o.Quick {
		n /= 10
		if n < 100 {
			n = 100
		}
	}
	return n
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier ("fig3", "table1", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Headers labels the columns.
	Headers []string
	// Rows holds the data, already formatted.
	Rows [][]string
	// Notes carries qualitative checks and paper references.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render returns an aligned text rendering.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered driver.
type Experiment struct {
	// ID is the registry key.
	ID string
	// Desc is a one-line description.
	Desc string
	// Run executes the experiment.
	Run func(Options) *Table
}

var registry = map[string]Experiment{}

func register(id, desc string, run func(Options) *Table) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = Experiment{ID: id, Desc: desc, Run: run}
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (try 'list')", id)
	}
	return e, nil
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns the sorted registry keys.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
