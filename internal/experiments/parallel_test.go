package experiments

import "testing"

// TestSerialParallelEquivalence asserts the sweep engine's core contract:
// for every registered experiment, the rendered table is byte-identical
// whether the operating points run on one worker or many.
func TestSerialParallelEquivalence(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			serial := DefaultOptions()
			serial.Quick = true
			serial.Parallel = 1
			parallel := serial
			parallel.Parallel = 4

			want := e.Run(serial).Render()
			got := e.Run(parallel).Render()
			if got != want {
				t.Errorf("parallel output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
			}
		})
	}
}

// TestSweepPointsOrdering pins the index-addressed result contract directly.
func TestSweepPointsOrdering(t *testing.T) {
	o := Options{Parallel: 8}
	got := sweepPoints(o, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d holds %d, want %d", i, v, i*i)
		}
	}
}

// TestSweepPanicPropagates keeps the serial failure mode: a panicking
// operating point fails the whole experiment, not just one worker.
func TestSweepPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected the point's panic to propagate")
		}
	}()
	forEachPoint(Options{Parallel: 4}, 16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}
