package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden corpus pins the rendered output of every registered experiment
// in quick mode. It exists so engine rewrites (like the packed-tag cache
// engine) can prove byte-identical tables: regenerate the corpus with
//
//	go test ./internal/experiments -run TestGoldenTables -update
//
// only when a model change is *intended* to move the numbers, and say so in
// the commit.
var updateGolden = flag.Bool("update", false, "rewrite the golden experiment tables")

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".txt")
}

// TestGoldenTables renders each experiment with the default (exact-warmup)
// options and compares it byte-for-byte against the committed golden file.
func TestGoldenTables(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			o := DefaultOptions()
			o.Quick = true
			o.Parallel = 1
			got := e.Run(o).Render()

			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(goldenPath(e.ID)), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(e.ID), []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath(e.ID))
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("rendered table diverges from golden %s:\n--- golden ---\n%s\n--- got ---\n%s",
					goldenPath(e.ID), want, got)
			}
		})
	}
}
