package experiments

import (
	"math"
	"strings"
	"testing"

	"cxlmem/internal/results"
)

func TestParseFidelity(t *testing.T) {
	for in, want := range map[string]Fidelity{
		"": FidelityExact, "exact": FidelityExact, "EXACT": FidelityExact,
		"auto": FidelityAuto, "Fast": FidelityFast,
	} {
		got, err := ParseFidelity(in)
		if err != nil || got != want {
			t.Errorf("ParseFidelity(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseFidelity("cheap"); err == nil ||
		!strings.Contains(err.Error(), "unknown fidelity") {
		t.Errorf("ParseFidelity(\"cheap\") error = %v, want unknown-fidelity", err)
	}
}

func TestRunDatasetRejectsBadFidelity(t *testing.T) {
	o := DefaultOptions()
	o.Fidelity = "approximate"
	if _, err := RunDataset("fig5", o); err == nil {
		t.Fatal("bad fidelity should fail validation")
	}
}

// TestFidelityCaching pins the memo-key honesty rules: a fidelity-consuming
// experiment caches exact and auto runs separately, while one that ignores
// the knob shares a single entry (and a single dataset pointer) across
// fidelities, exactly as platform blanking works for the fixed figures.
func TestFidelityCaching(t *testing.T) {
	exact := DefaultOptions()
	exact.Quick = true
	auto := exact
	auto.Fidelity = FidelityAuto

	f5exact, err := RunDataset("fig5", exact)
	if err != nil {
		t.Fatal(err)
	}
	f5auto, err := RunDataset("fig5", auto)
	if err != nil {
		t.Fatal(err)
	}
	if f5exact == f5auto {
		t.Error("fig5 exact and auto runs share one cache entry; fidelity must fork the key")
	}
	if f5exact.Prov.Fidelity != "" {
		t.Errorf("exact fig5 provenance fidelity = %q, want empty", f5exact.Prov.Fidelity)
	}
	if f5auto.Prov.Fidelity != "auto" {
		t.Errorf("auto fig5 provenance fidelity = %q, want auto", f5auto.Prov.Fidelity)
	}

	f3exact, err := RunDataset("fig3", exact)
	if err != nil {
		t.Fatal(err)
	}
	f3auto, err := RunDataset("fig3", auto)
	if err != nil {
		t.Fatal(err)
	}
	if f3exact != f3auto {
		t.Error("fig3 ignores fidelity but forked its cache entry anyway")
	}
	if f3auto.Prov.Fidelity != "" {
		t.Errorf("fig3 provenance fidelity = %q, want empty (knob blanked)", f3auto.Prov.Fidelity)
	}
}

// TestAutoFidelityTracksExact bounds the rendered divergence of the analytic
// tier on the real operating points: both fig5 placements and both
// ablation-llc configurations sit off-knee (that is what makes auto >= 10x
// there), and mlc's property test guarantees 10% off-knee accuracy — checked
// here end to end through the experiment drivers.
func TestAutoFidelityTracksExact(t *testing.T) {
	for _, id := range []string{"fig5", "ablation-llc"} {
		exact := DefaultOptions()
		exact.Quick = true
		auto := exact
		auto.Fidelity = FidelityAuto
		de, err := RunDataset(id, exact)
		if err != nil {
			t.Fatal(err)
		}
		da, err := RunDataset(id, auto)
		if err != nil {
			t.Fatal(err)
		}
		// fig5's latencies are one Num per row; ablation-llc's first row
		// holds both of its measured latencies (its second row is the DLRM
		// app model, which never touches the hot path and stays identical).
		rows := []int{0, 1}
		if id == "ablation-llc" {
			rows = []int{0}
		}
		for _, row := range rows {
			for c, cell := range de.Rows[row] {
				if cell.Kind != results.KindFloat || cell.Float <= 0 {
					continue
				}
				rel := math.Abs(da.Rows[row][c].Float-cell.Float) / cell.Float
				if rel > 0.10 {
					t.Errorf("%s row %d col %d: auto %.2f vs exact %.2f (%.1f%% off)",
						id, row, c, da.Rows[row][c].Float, cell.Float, rel*100)
				}
			}
		}
	}
}
