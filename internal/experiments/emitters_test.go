package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"cxlmem/internal/results"
	"cxlmem/internal/workloads"
)

// quickOpts are the options of the golden corpus: quick, serial, exact
// warmup.
func quickOpts() Options {
	o := DefaultOptions()
	o.Quick = true
	o.Parallel = 1
	return o
}

// TestTextEmitterMatchesLegacyRender is the emitter-equivalence property
// test: for every registered experiment ID in quick mode, the text emitter's
// rendering of the typed dataset is byte-identical to the legacy
// Table.Render over the same formatted cells. Together with TestGoldenTables
// this proves the structured-results refactor changed no rendered byte.
func TestTextEmitterMatchesLegacyRender(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			d := e.Run(quickOpts())
			emitted, err := results.Emit(d, "text")
			if err != nil {
				t.Fatal(err)
			}
			legacy := LegacyTable(d).Render()
			if emitted != legacy {
				t.Errorf("text emitter diverges from legacy render:\n--- legacy ---\n%s\n--- emitter ---\n%s", legacy, emitted)
			}
		})
	}
}

// TestDatasetJSONRoundTripAllExperiments asserts losslessness end to end:
// every registered experiment's dataset survives Dataset -> json -> Dataset
// with deep equality of the re-rendered text.
func TestDatasetJSONRoundTripAllExperiments(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			d := e.Run(quickOpts())
			out, err := results.Emit(d, "json")
			if err != nil {
				t.Fatal(err)
			}
			back, err := results.ParseJSON([]byte(out))
			if err != nil {
				t.Fatal(err)
			}
			if back.Render() != d.Render() {
				t.Error("JSON round trip changed the text rendering")
			}
			if len(back.Rows) != len(d.Rows) || len(back.Columns) != len(d.Columns) {
				t.Errorf("JSON round trip changed the shape: %dx%d vs %dx%d",
					len(back.Rows), len(back.Columns), len(d.Rows), len(d.Columns))
			}
		})
	}
}

// TestDatasetCSVFidelityAllExperiments parses every experiment's csv
// emission back and checks each numeric cell survived at full precision.
func TestDatasetCSVFidelityAllExperiments(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			d := e.Run(quickOpts())
			out, err := results.Emit(d, "csv")
			if err != nil {
				t.Fatal(err)
			}
			recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != len(d.Rows)+1 {
				t.Fatalf("csv has %d records for %d rows", len(recs), len(d.Rows))
			}
			for i, row := range d.Rows {
				for j, c := range row {
					want, numeric := c.Value()
					if !numeric {
						continue
					}
					got, err := strconv.ParseFloat(recs[i+1][j], 64)
					if err != nil || got != want {
						t.Fatalf("cell (%d,%d): csv %q != value %v (%v)", i, j, recs[i+1][j], want, err)
					}
				}
			}
		})
	}
}

// goldenEmitPath locates the pinned json/csv emissions next to the text
// corpus.
func goldenEmitPath(name, format string) string {
	return filepath.Join("testdata", "golden", name+"."+format)
}

// checkGoldenEmit compares one emission against its committed golden file,
// rewriting it under -update (shared with TestGoldenTables' flag).
func checkGoldenEmit(t *testing.T, d *results.Dataset, name, format string) {
	t.Helper()
	got, err := results.Emit(d, format)
	if err != nil {
		t.Fatal(err)
	}
	path := goldenEmitPath(name, format)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s emission diverges from golden %s:\n--- golden ---\n%s\n--- got ---\n%s", format, path, want, got)
	}
}

// TestGoldenEmitters pins the json and csv emissions of a latency figure
// (fig5), a scenario matrix (matrix-platform) and a single scenario cell —
// the wire forms downstream dashboards consume must stay byte-stable.
func TestGoldenEmitters(t *testing.T) {
	o := quickOpts()
	fig5, err := RunDataset("fig5", o)
	if err != nil {
		t.Fatal(err)
	}
	matrix, err := RunDataset("matrix-platform", o)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := workloads.ParseScenario("dlrm/policy=cxl:63/threads=32")
	if err != nil {
		t.Fatal(err)
	}
	cell, err := ScenarioResult(o, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		d    *results.Dataset
	}{
		{"fig5", fig5},
		{"matrix-platform", matrix},
		{"scenario-cell", cell},
	} {
		for _, format := range []string{"json", "csv"} {
			t.Run(tc.name+"/"+format, func(t *testing.T) {
				checkGoldenEmit(t, tc.d, tc.name, format)
			})
		}
	}
}

// TestRunDatasetMemoized pins the dataset-level cache: the second RunDataset
// for the same (id, options) returns the same shared dataset without
// re-running the driver, and the worker count does not fork the key.
func TestRunDatasetMemoized(t *testing.T) {
	o := quickOpts()
	a, err := RunDataset("table2", o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDataset("table2", o)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second RunDataset should return the cached dataset pointer")
	}
	par := o
	par.Parallel = 8
	c, err := RunDataset("table2", par)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Error("worker count must not fork the dataset cache key")
	}
	quick := o
	quick.Quick = false
	d2, err := RunDataset("table2", quick)
	if err != nil {
		t.Fatal(err)
	}
	if a == d2 {
		t.Error("quick mode must fork the dataset cache key")
	}
	if _, err := RunDataset("fig99", o); err == nil {
		t.Error("unknown id should error")
	}
	bad := o
	bad.Platform = "atari2600"
	if _, err := RunDataset("matrix-apps", bad); err == nil {
		t.Error("unknown platform should fail before dispatch")
	}
}

// TestRunDatasetPlatformScope pins the platform-knob scoping: fixed figures
// ignore Options.Platform (one cache entry, provenance never labeled with
// another machine), while matrix experiments consume it.
func TestRunDatasetPlatformScope(t *testing.T) {
	o := quickOpts()
	base, err := RunDataset("table2", o)
	if err != nil {
		t.Fatal(err)
	}
	plat := o
	plat.Platform = "x16-quad"
	onPlat, err := RunDataset("table2", plat)
	if err != nil {
		t.Fatal(err)
	}
	if onPlat != base {
		t.Error("platform option must not fork a fixed figure's cache entry")
	}
	if onPlat.Prov.Platform != "" {
		t.Errorf("fixed figure labeled with platform %q", onPlat.Prov.Platform)
	}
	// A matrix experiment is platform-sensitive: distinct datasets, honest
	// provenance.
	mBase, err := RunDataset("matrix-apps", o)
	if err != nil {
		t.Fatal(err)
	}
	mPlat, err := RunDataset("matrix-apps", plat)
	if err != nil {
		t.Fatal(err)
	}
	if mBase == mPlat {
		t.Error("platform option must fork a matrix experiment's cache entry")
	}
	if mPlat.Prov.Platform != "x16-quad" {
		t.Errorf("matrix provenance platform = %q, want x16-quad", mPlat.Prov.Platform)
	}
	if mBase.Render() == mPlat.Render() {
		t.Error("matrix cells should move with the platform")
	}
}

// TestRunDatasetPanicRecovered pins the cache-poisoning fix: a panicking
// driver becomes a cached error that reports the same way on every revisit
// instead of a done-but-empty memo entry.
func TestRunDatasetPanicRecovered(t *testing.T) {
	// Safe to mutate: top-level tests run sequentially and the registry is
	// only read during their serial phases.
	register("test-panic", "panicking driver (test only)", func(Options) *results.Dataset {
		panic("boom")
	})
	defer delete(registry, "test-panic")
	o := quickOpts()
	for i := 0; i < 2; i++ {
		if _, err := RunDataset("test-panic", o); err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("attempt %d: err = %v, want the recovered panic", i, err)
		}
	}
}

// TestScenarioResultDataset checks the single-cell structured form: one row
// per metric, provenance carrying the canonical spec.
func TestScenarioResultDataset(t *testing.T) {
	o := quickOpts()
	sc, err := workloads.ParseScenario("fluid/policy=interleave/size=64M")
	if err != nil {
		t.Fatal(err)
	}
	d, err := ScenarioResult(o, sc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunScenario(o, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != len(m.Items) {
		t.Fatalf("dataset has %d rows for %d metrics", len(d.Rows), len(m.Items))
	}
	if d.Rows[0][0].Text() != m.Primary().Name {
		t.Errorf("first row %q should be the primary metric %q", d.Rows[0][0].Text(), m.Primary().Name)
	}
	if v, ok := d.Rows[0][1].Value(); !ok || v != m.Primary().Value {
		t.Errorf("primary value %v != metric %v", v, m.Primary().Value)
	}
	if d.Prov.Scenario != sc.String() {
		t.Errorf("provenance scenario = %q, want %q", d.Prov.Scenario, sc.String())
	}
	bad := o
	bad.Platform = "atari2600"
	if _, err := ScenarioResult(bad, sc); err == nil {
		t.Error("unknown platform should fail scenario results")
	}
}
