package experiments

import (
	"testing"

	"cxlmem/internal/sim"
	"cxlmem/internal/workloads"
)

// TestScenarioFuzzMemoKeys guards memo-key stability across the fuzzer's
// valid-spec space: a scenario and its canonical re-parse must map to the
// same cell-cache key (or identical cells silently fork and the cache
// degrades), and option knobs that cannot change cell bytes (Parallel, Ctx)
// must not fork the key either.
func TestScenarioFuzzMemoKeys(t *testing.T) {
	rng := sim.NewRng(4242)
	o := DefaultOptions()
	o.Quick = true
	for i := 0; i < 200; i++ {
		sc := workloads.RandomScenario(rng)
		canon := sc.String()
		re, err := workloads.ParseScenario(canon)
		if err != nil {
			t.Fatalf("canonical spec %q does not re-parse: %v", canon, err)
		}
		if got, want := o.cellKey(re), o.cellKey(sc); got != want {
			t.Fatalf("re-parsed scenario forks the memo key: %q vs %q", got, want)
		}
		op := o
		op.Parallel = 8
		if op.cellKey(sc) != o.cellKey(sc) {
			t.Fatalf("Parallel forks the memo key for %q", canon)
		}
		oq := o
		oq.Quick = false
		if oq.cellKey(sc) == o.cellKey(sc) {
			t.Fatalf("Quick does not fork the memo key for %q (it changes the bytes)", canon)
		}
	}
}
