// The tpp-timeline experiment: the first event-driven driver, rendering the
// tpptimeline workload's per-epoch time series as a dataset (DESIGN.md §13).
package experiments

import (
	"cxlmem/internal/results"
	"cxlmem/internal/workloads"
	"cxlmem/internal/workloads/tpptimeline"
)

func init() {
	register("tpp-timeline",
		"event-driven TPP migration timeline: per-epoch residency, migration throughput and latency under bursty load",
		runTppTimeline)
}

// timelineCell pairs a timeline result with its error through the sweep
// engine's value slot.
type timelineCell struct {
	r   tpptimeline.Result
	err error
}

// runTppTimeline executes the event-driven model once (a single scheduler is
// inherently serial, so any Options.Parallel setting produces the same
// bytes; the sweep engine wraps the run only for cancellation plumbing) and
// lays the timeline out one row per epoch.
func runTppTimeline(o Options) *results.Dataset {
	env, err := o.scenarioEnv("")
	if err != nil {
		panic(err)
	}
	w, err := workloads.Get("tpp-timeline")
	if err != nil {
		panic(err)
	}
	cfg := w.DefaultConfig()
	res := sweepPoints(o, 1, func(int) timelineCell {
		r, rerr := workloads.RunTimeline(env, cfg)
		return timelineCell{r: r, err: rerr}
	})[0]
	if res.err != nil {
		panic(res.err)
	}
	d := newDataset(o, "tpp-timeline",
		"TPP promotion/demotion timeline under bursty open-loop load (event-driven engine)",
		col("Epoch", ""), col("t", "ms"), col("DDR pages", "pages"), col("CXL pages", "pages"),
		col("Promo", "pages"), col("Demo", "pages"), col("Migr/s", "1/s"),
		col("Accesses", "ops"), col("p99", "us"), col("mean", "us"))
	for _, es := range res.r.Epochs {
		d.AddRow(
			results.Int(int64(es.Index)),
			results.Num(es.Start.Milliseconds(), 1),
			results.Int(es.LocalPages),
			results.Int(es.FarPages),
			results.Int(es.Promotions),
			results.Int(es.Demotions),
			results.Num(es.MigrationsPerSec, 0),
			results.Int(es.Accesses),
			results.Num(es.P99, 2),
			results.Num(es.Mean, 2),
		)
	}
	d.AddNote("cold start: all pages far; TPP promotes toward its 75%% DDR target while bursts stress the M/G/1 tail (Fig. 7 mechanism over time)")
	return d
}
