package experiments

import (
	"fmt"
	"strings"

	"cxlmem/internal/mlc"
	"cxlmem/internal/topo"
)

// Fidelity selects how the cache-simulating measurements (the fig5 and
// ablation-llc buffer-latency sweeps) are computed. It is orthogonal to
// Quick (sample counts) and FastWarmup (warmup policy): fidelity decides
// whether a point is simulated at all.
type Fidelity string

const (
	// FidelityExact simulates every operating point through the streamed
	// cache replay — the default, and the mode the golden corpus pins.
	FidelityExact Fidelity = "exact"
	// FidelityAuto simulates operating points near a capacity knee
	// (mlc.BufferKneeDistance < mlc.KneeMargin) and uses the CHE analytic
	// estimate everywhere else, where the property-tested divergence bound
	// applies (mlc.BufferLatencyEstimate).
	FidelityAuto Fidelity = "auto"
	// FidelityFast uses the analytic estimate for every point.
	FidelityFast Fidelity = "fast"
)

// ParseFidelity parses a user-supplied fidelity name, case-insensitively;
// empty means exact.
func ParseFidelity(s string) (Fidelity, error) {
	switch f := Fidelity(strings.ToLower(s)); f {
	case "", FidelityExact:
		return FidelityExact, nil
	case FidelityAuto, FidelityFast:
		return f, nil
	default:
		return "", fmt.Errorf("unknown fidelity %q (want exact, auto or fast)", s)
	}
}

// fidelity resolves the options' fidelity tier, normalizing empty to exact
// so the memo fingerprint cannot fork identical runs.
func (o Options) fidelity() Fidelity {
	if o.Fidelity == "" {
		return FidelityExact
	}
	return o.Fidelity
}

// provFidelity is the provenance form: empty for exact, so the wire bytes
// of every pre-fidelity dataset — and the pinned JSON goldens — are
// unchanged, and only estimated datasets carry the label.
func (o Options) provFidelity() string {
	if f := o.fidelity(); f != FidelityExact {
		return string(f)
	}
	return ""
}

// bufferLatencyNs measures (or estimates, per the fidelity tier) the average
// buffer latency of one operating point — the shared hot path of fig5 and
// ablation-llc. Exact simulation keeps the historical seed offset and RNG
// stream, so exact fidelity is byte-identical to the golden corpus; auto
// falls back to exact simulation whenever the point sits within
// mlc.KneeMargin of a capacity knee.
func (o Options) bufferLatencyNs(sys *topo.System, path *topo.Path, bufBytes int64, samples int) float64 {
	switch o.fidelity() {
	case FidelityFast:
		return mlc.BufferLatencyEstimate(sys, path, bufBytes).Nanoseconds()
	case FidelityAuto:
		if mlc.BufferKneeDistance(sys, path, bufBytes) >= mlc.KneeMargin {
			return mlc.BufferLatencyEstimate(sys, path, bufBytes).Nanoseconds()
		}
	}
	return mlc.BufferLatencyOpt(sys, path, bufBytes, samples, o.Seed+3,
		mlc.StreamOptions{Warm: o.warmup(), Workers: o.workers(), Ctx: o.Ctx}).Nanoseconds()
}

// markFidelity flags a registered experiment as consuming Options.Fidelity.
// Every other experiment has RunDataset blank the knob, exactly as
// UsesPlatform does for Platform: a dataset must never be labeled with a
// fidelity that could not have shaped its numbers.
func markFidelity(id string) {
	e, ok := registry[id]
	if !ok {
		panic("experiments: markFidelity on unregistered id " + id)
	}
	e.UsesFidelity = true
	registry[id] = e
}
