// Package serve implements the cxlserve HTTP API (DESIGN.md §10): a query
// daemon over the structured-results core. Every response is a
// results.Dataset rendered by a pluggable emitter, and every computation
// flows through the process-wide memo caches — the experiment dataset cache
// and the scenario cell cache — so concurrent requests for the same result
// share one evaluation (single-flight) and repeats are free.
//
// Endpoints (all GET):
//
//	/v1/experiments                         registry listing (JSON)
//	/v1/run?id=fig3&format=json             one experiment, emitted
//	/v1/scenario?spec=dlrm/policy=cxl:63    one scenario cell, emitted
//
// Shared query parameters on /v1/run and /v1/scenario: format (text|json|
// csv, default json — it is a query daemon), platform, quick, fastwarm,
// seed. Request knobs override the server's base options; the sweep worker
// count stays a server-side setting so clients cannot oversubscribe the
// host.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"cxlmem/internal/experiments"
	"cxlmem/internal/results"
	"cxlmem/internal/topo"
	"cxlmem/internal/workloads"
)

// defaultFormat is the emitter used when a request names none: JSON, the
// machine-readable form a query daemon exists to serve.
const defaultFormat = "json"

// Handler returns the cxlserve HTTP API. base supplies the option defaults
// every request starts from (quick mode for a staging daemon, a pinned seed,
// the sweep worker budget); requests may override the result-shaping knobs
// but not the worker count.
func Handler(base experiments.Options) http.Handler {
	mux := http.NewServeMux()
	s := &server{base: base}
	mux.HandleFunc("/v1/experiments", s.experiments)
	mux.HandleFunc("/v1/run", s.run)
	mux.HandleFunc("/v1/scenario", s.scenario)
	return recoverMiddleware(mux)
}

// server carries the base options shared by every request.
type server struct {
	base experiments.Options
}

// recoverMiddleware converts a panicking handler (experiment drivers treat
// internal failures as programming errors) into a 500 instead of killing
// the daemon's connection goroutine silently.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				http.Error(w, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// experimentInfo is one row of the /v1/experiments listing.
type experimentInfo struct {
	ID   string `json:"id"`
	Desc string `json:"desc"`
}

// catalog is the /v1/experiments response shape: the runnable experiment
// IDs plus the accepted format and platform values for /v1/run.
type catalog struct {
	Experiments []experimentInfo `json:"experiments"`
	Formats     []string         `json:"formats"`
	Platforms   []string         `json:"platforms"`
}

func (s *server) experiments(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	c := catalog{Formats: results.Formats(), Platforms: topo.PlatformNames()}
	for _, e := range experiments.All() {
		c.Experiments = append(c.Experiments, experimentInfo{ID: e.ID, Desc: e.Desc})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(c)
}

func (s *server) run(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id parameter (see /v1/experiments)", http.StatusBadRequest)
		return
	}
	opts, em, ok := s.requestOptions(w, r)
	if !ok {
		return
	}
	d, err := experiments.RunDataset(id, opts)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case strings.Contains(err.Error(), "unknown id"):
			status = http.StatusNotFound
		case strings.Contains(err.Error(), "panicked"):
			// A recovered driver panic is an internal failure, not a bad
			// request.
			status = http.StatusInternalServerError
		}
		http.Error(w, err.Error(), status)
		return
	}
	emit(w, em, d)
}

func (s *server) scenario(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	spec := r.URL.Query().Get("spec")
	if spec == "" {
		http.Error(w, "missing spec parameter (e.g. spec=dlrm/policy=cxl:63)", http.StatusBadRequest)
		return
	}
	opts, em, ok := s.requestOptions(w, r)
	if !ok {
		return
	}
	sc, err := workloads.ParseScenario(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	d, err := experiments.ScenarioResult(opts, sc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	emit(w, em, d)
}

// requestOptions resolves the request's option overrides and emitter on top
// of the server base; on failure it writes a 400 and returns ok=false.
func (s *server) requestOptions(w http.ResponseWriter, r *http.Request) (experiments.Options, results.Emitter, bool) {
	opts := s.base
	q := r.URL.Query()
	if v := q.Get("platform"); v != "" {
		// Platform names are lowercase in the registry; accept the same
		// spellings the -platform flag does.
		opts.Platform = strings.ToLower(v)
	}
	for name, dst := range map[string]*bool{"quick": &opts.Quick, "fastwarm": &opts.FastWarmup} {
		v := q.Get(name)
		if v == "" {
			continue
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad %s parameter %q", name, v), http.StatusBadRequest)
			return opts, nil, false
		}
		*dst = b
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad seed parameter %q", v), http.StatusBadRequest)
			return opts, nil, false
		}
		opts.Seed = seed
	}
	format := q.Get("format")
	if format == "" {
		format = defaultFormat
	}
	em, err := results.Lookup(format)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return opts, nil, false
	}
	return opts, em, true
}

// emit renders the dataset through the chosen emitter and writes it with
// its content type. The rendering is buffered first so an emitter failure
// (e.g. a NaN cell the JSON encoder rejects) becomes a 500 instead of a
// silent 200 with an empty body.
func emit(w http.ResponseWriter, em results.Emitter, d *results.Dataset) {
	// The dataset is shared with the memo cache; emitters never mutate it.
	var b strings.Builder
	if err := em.Emit(&b, d); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", em.ContentType())
	_, _ = io.WriteString(w, b.String())
}

// methodGet rejects non-GET requests with 405.
func methodGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}
