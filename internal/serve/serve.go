// Package serve implements the cxlserve HTTP API (DESIGN.md §10–§11): a
// query daemon over the structured-results core. Every response is a
// results.Dataset rendered by a pluggable emitter, and every computation
// flows through the process-wide memo caches — the experiment dataset cache
// and the scenario cell cache — so concurrent requests for the same result
// share one evaluation (single-flight) and repeats are free.
//
// The serving path is hardened for sustained mixed load: compute endpoints
// pass an admission gate (a bounded in-flight semaphore with a small wait
// queue; excess load is shed with 429/503 + Retry-After, never a hung
// connection), every request carries a context deadline (the server's
// -timeout flag, lowerable per request with timeout=) whose expiry cancels
// in-flight sweep work, and a draining server rejects new compute work
// while in-flight requests finish.
//
// Endpoints (all GET):
//
//	/v1/experiments                         registry listing (JSON)
//	/v1/run?id=fig3&format=json             one experiment, emitted
//	/v1/scenario?spec=dlrm/policy=cxl:63    one scenario cell, emitted
//	/v1/trace?limit=100                     discrete-event trace ring (JSON)
//	/metrics                                cache/admission/latency counters
//	/healthz                                liveness ("ok", or 503 draining)
//
// Shared query parameters on /v1/run and /v1/scenario: format (text|json|
// csv, default json — it is a query daemon), platform, quick, fastwarm,
// fidelity (exact|auto|fast, the measurement tier of the cache-simulating
// experiments), seed, timeout. Request knobs override the server's base
// options; the sweep worker count stays a server-side setting so clients
// cannot oversubscribe the host, and a request timeout can only lower the
// server's deadline, never raise it.
//
// With Config.EnablePprof (the -pprof flag), the standard net/http/pprof
// profiling handlers are additionally served under /debug/pprof/. They
// bypass the admission gate by design — profiling an overloaded daemon is
// exactly when the gate would shed them — so the flag must only be enabled
// on instances that are not exposed to untrusted clients.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"strings"
	"time"

	"cxlmem/internal/cluster"
	"cxlmem/internal/experiments"
	"cxlmem/internal/results"
	"cxlmem/internal/topo"
	"cxlmem/internal/workloads"
)

// defaultFormat is the emitter used when a request names none: JSON, the
// machine-readable form a query daemon exists to serve.
const defaultFormat = "json"

// retryAfter is the Retry-After value (seconds) attached to every shed
// response: overload here is compute-bound and drains quickly once the
// in-flight requests complete.
const retryAfter = "1"

// Config tunes a Server. The zero value (no admission bound, no deadline)
// reproduces the PR-5 prototype behavior.
type Config struct {
	// Base supplies the option defaults every request starts from (quick
	// mode for a staging daemon, a pinned seed, the sweep worker budget).
	Base experiments.Options
	// Timeout bounds each compute request's evaluation when positive; a
	// request's timeout= parameter may lower it but never raise it. An
	// expired deadline cancels the request's in-flight sweep work (unless
	// another request waits on the same cached key) and answers 504.
	Timeout time.Duration
	// MaxInflight caps concurrently admitted compute requests (/v1/run,
	// /v1/scenario) when positive; 0 admits everything.
	MaxInflight int
	// MaxQueue is how many requests beyond MaxInflight may wait for a slot
	// before new arrivals are shed with 429. Waiting requests that hit
	// their deadline are shed with 503. Only meaningful with MaxInflight.
	MaxQueue int
	// EnablePprof serves the net/http/pprof handlers under /debug/pprof/,
	// outside the admission gate (see the package doc's security note).
	EnablePprof bool
	// Ring, when non-nil, shards the compute endpoints across a replica
	// fleet by canonical memo key: a request whose key this replica owns is
	// served locally, anything else is forwarded one hop to its owner (see
	// DESIGN.md §14). Replicas in one ring must share base options, or an
	// unpinned request resolves to different keys on different members.
	Ring *cluster.Ring
	// ProxyClient is the HTTP client used for the single proxy hop; nil
	// uses a default with a 5-minute timeout matching the coordinator's.
	ProxyClient *http.Client
	// SnapshotRestored is the number of dataset-cache entries restored from
	// a warm-start snapshot at boot, exported on /metrics so operators (and
	// the CI smoke test) can verify a restart actually warm-started.
	SnapshotRestored int
}

// Server is the hardened cxlserve request handler: admission gate, request
// deadlines, metrics. Build one with NewServer, serve its Handler, and call
// Drain when shutting down.
type Server struct {
	cfg     Config
	sem     chan struct{} // admission slots; nil = unbounded
	drainCh chan struct{} // closed by Drain
	metrics *serverMetrics
}

// NewServer builds a Server over the given config.
func NewServer(cfg Config) *Server {
	s := &Server{cfg: cfg, drainCh: make(chan struct{}), metrics: newServerMetrics()}
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	return s
}

// Handler returns the cxlserve HTTP API over this server's gates.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/experiments", s.instrument("/v1/experiments", s.experiments))
	mux.HandleFunc("/v1/trace", s.instrument("/v1/trace", s.trace))
	mux.HandleFunc("/v1/run", s.instrument("/v1/run", s.admit(s.run)))
	mux.HandleFunc("/v1/scenario", s.instrument("/v1/scenario", s.admit(s.scenario)))
	// Outside admit: the snapshot is a read of already-computed cache state
	// (no evaluation to gate), and a draining replica must still be able to
	// hand its warm cache to whoever restarts it.
	mux.HandleFunc("/v1/snapshot", s.instrument("/v1/snapshot", s.snapshot))
	mux.HandleFunc("/metrics", s.metricsHandler)
	mux.HandleFunc("/healthz", s.healthz)
	if s.cfg.EnablePprof {
		// Deliberately outside admit: profiling must stay reachable while
		// the compute gate is shedding, and pprof's own handlers bound
		// their work. Index covers the /debug/pprof/{heap,goroutine,...}
		// lookups; the four fixed handlers are not plain profiles.
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	return recoverMiddleware(mux)
}

// Handler returns the cxlserve HTTP API with no admission bound or deadline
// — the PR-5 construction, kept for callers that harden elsewhere.
func Handler(base experiments.Options) http.Handler {
	return NewServer(Config{Base: base}).Handler()
}

// Drain moves the server into shutdown mode: /healthz turns 503 so load
// balancers stop routing here, queued compute requests are released with a
// shed response, and new compute requests are shed immediately. In-flight
// requests run to completion — pair Drain with http.Server.Shutdown.
func (s *Server) Drain() {
	if s.metrics.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
}

// recoverMiddleware converts a panicking handler (experiment drivers treat
// internal failures as programming errors) into a 500 instead of killing
// the daemon's connection goroutine silently. The instrument wrapper
// already recovers compute handlers — this is the backstop for everything
// else.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				http.Error(w, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// instrument wraps a handler with per-endpoint telemetry: status capture,
// latency observation, and panic recovery (so the recorded status is the
// 500 actually sent).
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				if !rec.wrote {
					http.Error(rec, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
				}
			}
			s.metrics.observe(endpoint, rec.status(), time.Since(start))
		}()
		h(rec, r)
	}
}

// admit is the load-shedding gate in front of the compute endpoints. A free
// slot admits immediately; otherwise the request waits in a bounded queue
// until a slot frees, its deadline fires (503), or the queue is already
// full on arrival (429). A draining server sheds everything. Shed responses
// always carry Retry-After and are counted.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.metrics.draining.Load() {
			s.shed(w, http.StatusServiceUnavailable, "draining: retry against another replica")
			return
		}
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}: // fast path: free slot
			default:
				if int(s.metrics.queued.Add(1)) > s.cfg.MaxQueue {
					s.metrics.queued.Add(-1)
					s.shed(w, http.StatusTooManyRequests, "overloaded: in-flight and queue budgets exhausted")
					return
				}
				select {
				case s.sem <- struct{}{}:
					s.metrics.queued.Add(-1)
				case <-r.Context().Done():
					s.metrics.queued.Add(-1)
					s.shed(w, http.StatusServiceUnavailable, "overloaded: gave up waiting for an admission slot")
					return
				case <-s.drainCh:
					s.metrics.queued.Add(-1)
					s.shed(w, http.StatusServiceUnavailable, "draining: retry against another replica")
					return
				}
			}
			defer func() { <-s.sem }()
		}
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		h(w, r)
	}
}

// shed writes one load-shedding response with its Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, status int, msg string) {
	s.metrics.shed.Add(1)
	w.Header().Set("Retry-After", retryAfter)
	http.Error(w, msg, status)
}

// experimentInfo is one row of the /v1/experiments listing.
type experimentInfo struct {
	ID   string `json:"id"`
	Desc string `json:"desc"`
}

// catalog is the /v1/experiments response shape: the runnable experiment
// IDs plus the accepted format and platform values for /v1/run.
type catalog struct {
	Experiments []experimentInfo `json:"experiments"`
	Formats     []string         `json:"formats"`
	Platforms   []string         `json:"platforms"`
}

func (s *Server) experiments(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	c := catalog{Formats: results.Formats(), Platforms: topo.PlatformNames()}
	for _, e := range experiments.All() {
		c.Experiments = append(c.Experiments, experimentInfo{ID: e.ID, Desc: e.Desc})
	}
	writeBuffered(w, "application/json", func(wr io.Writer) error {
		enc := json.NewEncoder(wr)
		enc.SetIndent("", "  ")
		return enc.Encode(c)
	})
}

func (s *Server) run(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id parameter (see /v1/experiments)", http.StatusBadRequest)
		return
	}
	opts, em, ok := s.requestOptions(w, r)
	if !ok {
		return
	}
	// An unknown id falls through to the local path, which answers the 404.
	if key, err := experiments.DatasetKey(id, opts); err == nil && s.proxy(w, r, key) {
		return
	}
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	opts.Ctx = ctx
	d, err := experiments.RunDataset(id, opts)
	if err != nil {
		writeError(w, err)
		return
	}
	emit(w, em, d)
}

func (s *Server) scenario(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	spec := r.URL.Query().Get("spec")
	if spec == "" {
		http.Error(w, "missing spec parameter (e.g. spec=dlrm/policy=cxl:63)", http.StatusBadRequest)
		return
	}
	opts, em, ok := s.requestOptions(w, r)
	if !ok {
		return
	}
	sc, err := workloads.ParseScenario(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.proxy(w, r, experiments.ScenarioKey(opts, sc)) {
		return
	}
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	opts.Ctx = ctx
	d, err := experiments.ScenarioResult(opts, sc)
	if err != nil {
		writeError(w, err)
		return
	}
	emit(w, em, d)
}

// writeError maps a dispatch failure onto its HTTP status through the typed
// sentinels exported by internal/experiments — 404 for unknown IDs, 500 for
// recovered driver panics, 504 for an expired request deadline — with 400
// (a bad request: spec, platform, parameter) as the default.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, experiments.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, experiments.ErrInternal):
		status = http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		// The request's deadline fired mid-evaluation; the work was
		// canceled (or survives for another waiter) and nothing was cached.
		w.Header().Set("Retry-After", retryAfter)
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is best-effort.
		status = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), status)
}

// requestContext derives the request's evaluation context: the server
// deadline, lowered (never raised) by a timeout= parameter. On a malformed
// parameter it writes a 400 and returns ok=false.
func (s *Server) requestContext(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	limit := s.cfg.Timeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			http.Error(w, fmt.Sprintf("bad timeout parameter %q (want a positive duration, e.g. 500ms)", v), http.StatusBadRequest)
			return nil, nil, false
		}
		if limit == 0 || d < limit {
			limit = d
		}
	}
	if limit <= 0 {
		return r.Context(), func() {}, true
	}
	ctx, cancel := context.WithTimeout(r.Context(), limit)
	return ctx, cancel, true
}

// requestOptions resolves the request's option overrides and emitter on top
// of the server base; on failure it writes a 400 and returns ok=false.
func (s *Server) requestOptions(w http.ResponseWriter, r *http.Request) (experiments.Options, results.Emitter, bool) {
	opts := s.cfg.Base
	q := r.URL.Query()
	if q.Has("platform") {
		// Platform names are lowercase in the registry; accept the same
		// spellings the -platform flag does. Presence (not non-emptiness)
		// triggers the override so a coordinator can pin the default
		// Table-1 machine with platform= over a replica's -platform base —
		// the canonical key distinguishes the two.
		opts.Platform = strings.ToLower(q.Get("platform"))
	}
	if v := q.Get("fidelity"); v != "" {
		f, err := experiments.ParseFidelity(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return opts, nil, false
		}
		opts.Fidelity = f
	}
	for name, dst := range map[string]*bool{"quick": &opts.Quick, "fastwarm": &opts.FastWarmup} {
		v := q.Get(name)
		if v == "" {
			continue
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad %s parameter %q", name, v), http.StatusBadRequest)
			return opts, nil, false
		}
		*dst = b
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad seed parameter %q", v), http.StatusBadRequest)
			return opts, nil, false
		}
		opts.Seed = seed
	}
	format := q.Get("format")
	if format == "" {
		format = defaultFormat
	}
	em, err := results.Lookup(format)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return opts, nil, false
	}
	return opts, em, true
}

// writeBuffered renders through render into a buffer first, so a rendering
// failure becomes a 500 instead of a silent 200 with a partial body, and
// the Content-Type is only set once the bytes exist.
func writeBuffered(w http.ResponseWriter, contentType string, render func(io.Writer) error) {
	var b bytes.Buffer
	if err := render(&b); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = w.Write(b.Bytes())
}

// emit renders the dataset through the chosen emitter and writes it with
// its content type, via the buffered path (e.g. a NaN cell the JSON encoder
// rejects must 500, not 200-empty).
func emit(w http.ResponseWriter, em results.Emitter, d *results.Dataset) {
	// The dataset is shared with the memo cache; emitters never mutate it.
	writeBuffered(w, em.ContentType(), func(wr io.Writer) error { return em.Emit(wr, d) })
}

// methodGet rejects non-GET requests with 405.
func methodGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}
