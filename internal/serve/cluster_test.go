package serve

// Two-replica sharding tests (DESIGN.md §14): proxy routing with the
// single-hop loop guard, local fallback when the owner is down (the
// zero-5xx envelope), the warm-start snapshot endpoint, and the coordinator
// merge's byte-identity against local serial execution. The replicas here
// are two Servers in one process — they share the process-wide memo caches,
// so these tests pin the routing and wire-form properties; the CI smoke
// test exercises two real processes with genuinely disjoint caches.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"cxlmem/internal/cluster"
	"cxlmem/internal/experiments"
	"cxlmem/internal/memo"
	"cxlmem/internal/results"
	"cxlmem/internal/workloads"
)

// replicaPair is a two-member ring of in-process servers.
type replicaPair struct {
	a, b   *httptest.Server
	sa, sb *Server
}

// newReplicaPair boots two replicas whose rings reference each other. The
// handlers delegate through a late-bound pointer because each ring needs
// the other server's URL, which only exists after httptest.NewServer.
func newReplicaPair(t *testing.T) *replicaPair {
	t.Helper()
	base := experiments.DefaultOptions()
	base.Quick = true
	base.Parallel = 1
	var (
		mu     sync.Mutex
		ha, hb http.Handler
	)
	late := func(h *http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			hh := *h
			mu.Unlock()
			hh.ServeHTTP(w, r)
		})
	}
	tsa := httptest.NewServer(late(&ha))
	t.Cleanup(tsa.Close)
	tsb := httptest.NewServer(late(&hb))
	t.Cleanup(tsb.Close)
	ra, err := cluster.NewRing(tsa.URL, []string{tsb.URL})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := cluster.NewRing(tsb.URL, []string{tsa.URL})
	if err != nil {
		t.Fatal(err)
	}
	sa := NewServer(Config{Base: base, Ring: ra})
	sb := NewServer(Config{Base: base, Ring: rb})
	mu.Lock()
	ha, hb = sa.Handler(), sb.Handler()
	mu.Unlock()
	return &replicaPair{a: tsa, b: tsb, sa: sa, sb: sb}
}

// testCells returns a handful of matrix cells guaranteed to split across a
// two-member ring (skipped if the hash happens to one-side them — it does
// not for the committed corpus, and TestRingBalance pins the spread).
func testCells(t *testing.T, p *replicaPair, n int) []workloads.Scenario {
	t.Helper()
	o := experiments.DefaultOptions()
	o.Quick = true
	ring, err := cluster.NewRing("", []string{p.a.URL, p.b.URL})
	if err != nil {
		t.Fatal(err)
	}
	all := experiments.AllMatrixScenarios()
	if len(all) < n {
		t.Fatalf("matrix has %d cells, want >= %d", len(all), n)
	}
	cells := all[:n]
	owners := map[string]bool{}
	for _, sc := range cells {
		owners[ring.Owner(experiments.ScenarioKey(o, sc))] = true
	}
	if len(owners) < 2 {
		t.Fatalf("first %d matrix cells all hash to one replica; widen the slice", n)
	}
	return cells
}

// metricValue extracts one counter value from a /metrics scrape.
func metricValue(t *testing.T, body, name string) string {
	t.Helper()
	m := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(name) + " (\\d+)$").FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s missing from scrape:\n%s", name, body)
	}
	return m[1]
}

// TestShardedProxyServesEveryCell pins the sharded serving path: every cell
// fetched through one replica answers 200 with bytes identical to fetching
// it from the other replica, non-owned cells are forwarded exactly one hop,
// and the proxy counters account for the traffic.
func TestShardedProxyServesEveryCell(t *testing.T) {
	p := newReplicaPair(t)
	cells := testCells(t, p, 8)
	for _, sc := range cells {
		path := "/v1/scenario?spec=" + sc.String() + "&quick=true"
		sa, _, ba := get(t, p.a, path)
		sb, _, bb := get(t, p.b, path)
		if sa != http.StatusOK || sb != http.StatusOK {
			t.Fatalf("%s: status %d via a, %d via b", sc, sa, sb)
		}
		if ba != bb {
			t.Errorf("%s: replicas serve different bytes", sc)
		}
	}
	_, _, ma := get(t, p.a, "/metrics")
	_, _, mb := get(t, p.b, "/metrics")
	fwdA := metricValue(t, ma, `cxlserve_proxy_requests_total{result="forwarded"}`)
	fwdB := metricValue(t, mb, `cxlserve_proxy_requests_total{result="forwarded"}`)
	rcvA := metricValue(t, ma, `cxlserve_proxy_requests_total{result="received"}`)
	rcvB := metricValue(t, mb, `cxlserve_proxy_requests_total{result="received"}`)
	if fwdA == "0" || fwdB == "0" {
		t.Errorf("both replicas should forward their non-owned cells (a=%s b=%s)", fwdA, fwdB)
	}
	if fwdA != rcvB || fwdB != rcvA {
		t.Errorf("hop accounting mismatch: a fwd=%s/rcv=%s, b fwd=%s/rcv=%s", fwdA, rcvA, fwdB, rcvB)
	}
	if errA := metricValue(t, ma, `cxlserve_proxy_requests_total{result="error"}`); errA != "0" {
		t.Errorf("replica a recorded %s proxy errors with both replicas up", errA)
	}
}

// TestProxyLoopGuard pins the single-hop contract: a request already
// carrying the proxy header is served where it lands even when this replica
// does not own its key.
func TestProxyLoopGuard(t *testing.T) {
	p := newReplicaPair(t)
	o := experiments.DefaultOptions()
	o.Quick = true
	ring, err := cluster.NewRing("", []string{p.a.URL, p.b.URL})
	if err != nil {
		t.Fatal(err)
	}
	// Find a cell replica a does NOT own, then hand it to a pre-stamped.
	var sc workloads.Scenario
	found := false
	for _, c := range experiments.AllMatrixScenarios() {
		if ring.Owner(experiments.ScenarioKey(o, c)) == p.b.URL {
			sc, found = c, true
			break
		}
	}
	if !found {
		t.Fatal("no cell owned by replica b")
	}
	req, err := http.NewRequest(http.MethodGet, p.a.URL+"/v1/scenario?spec="+sc.String()+"&quick=true", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(proxyHeader, "test-origin")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("guarded request answered %d", resp.StatusCode)
	}
	_, _, m := get(t, p.a, "/metrics")
	if metricValue(t, m, `cxlserve_proxy_requests_total{result="received"}`) == "0" {
		t.Error("loop-guarded request not counted as received")
	}
	if metricValue(t, m, `cxlserve_proxy_requests_total{result="forwarded"}`) != "0" {
		t.Error("loop-guarded request was re-forwarded")
	}
}

// TestProxyFallbackOnDeadPeer pins the robustness envelope: with the owning
// replica down, every request still answers 200 from local computation and
// the failures surface only as error-result proxy counters — never a 5xx.
func TestProxyFallbackOnDeadPeer(t *testing.T) {
	base := experiments.DefaultOptions()
	base.Quick = true
	base.Parallel = 1
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // the address is now refused: a crashed peer
	var (
		mu sync.Mutex
		h  http.Handler
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hh := h
		mu.Unlock()
		hh.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	ring, err := cluster.NewRing(ts.URL, []string{deadURL})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(Config{Base: base, Ring: ring})
	mu.Lock()
	h = s.Handler()
	mu.Unlock()
	for _, sc := range experiments.AllMatrixScenarios()[:6] {
		status, _, _ := get(t, ts, "/v1/scenario?spec="+sc.String()+"&quick=true")
		if status != http.StatusOK {
			t.Fatalf("%s: status %d with the peer down; fallback must keep serving", sc, status)
		}
	}
	_, _, m := get(t, ts, "/metrics")
	if metricValue(t, m, `cxlserve_proxy_requests_total{result="error"}`) == "0" {
		t.Error("dead-peer hops not counted as proxy errors")
	}
}

// TestCoordinatorMatrixByteIdentical is the fan-out acceptance test: the
// coordinator's distributed matrix dataset must emit byte-identically to
// local serial execution in every format — the property that makes remote
// dispatch a pure performance decision.
func TestCoordinatorMatrixByteIdentical(t *testing.T) {
	p := newReplicaPair(t)
	o := experiments.DefaultOptions()
	o.Quick = true
	o.Parallel = 1
	cells := testCells(t, p, 10)
	const id, title = "matrix-all", "full scenario matrix: workload x policy x size"
	local, err := experiments.ScenarioDataset(o, id, title, cells)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := cluster.NewRing("", []string{p.a.URL, p.b.URL})
	if err != nil {
		t.Fatal(err)
	}
	co := &cluster.Coordinator{Ring: ring}
	remote, err := co.ScenarioDataset(context.Background(), o, id, title, cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"text", "json", "csv"} {
		want, err := results.Emit(local, format)
		if err != nil {
			t.Fatal(err)
		}
		got, err := results.Emit(remote, format)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("remote %s emission diverges from local serial execution:\n--- local ---\n%s\n--- remote ---\n%s", format, want, got)
		}
	}
	// Single-cell dispatch must match ScenarioResult the same way.
	localOne, err := experiments.ScenarioResult(o, cells[0])
	if err != nil {
		t.Fatal(err)
	}
	remoteOne, err := co.ScenarioResult(context.Background(), o, cells[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := results.Emit(localOne, "json")
	if err != nil {
		t.Fatal(err)
	}
	got, err := results.Emit(remoteOne, "json")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("remote single-cell result diverges from local ScenarioResult")
	}
}

// TestSnapshotEndpoint pins the warm-start wire: after computing one
// experiment, GET /v1/snapshot returns a snapshot a fresh cache restores
// the dataset from, and the restored-entries gauge surfaces on /metrics.
func TestSnapshotEndpoint(t *testing.T) {
	base := experiments.DefaultOptions()
	base.Quick = true
	base.Parallel = 1
	s := NewServer(Config{Base: base, SnapshotRestored: 3})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if status, _, _ := get(t, ts, "/v1/run?id=table2"); status != http.StatusOK {
		t.Fatalf("priming run answered %d", status)
	}
	status, ctype, body := get(t, ts, "/v1/snapshot")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("snapshot: status %d, content-type %s", status, ctype)
	}
	n, err := experiments.ImportDatasetCacheInto(memo.NewCache(), []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("snapshot restored no entries after a priming run")
	}
	_, _, m := get(t, ts, "/metrics")
	if got := metricValue(t, m, "cxlserve_snapshot_restored_entries"); got != "3" {
		t.Errorf("cxlserve_snapshot_restored_entries = %s, want 3", got)
	}
}
