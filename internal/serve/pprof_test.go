package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cxlmem/internal/experiments"
	"cxlmem/internal/results"
)

// TestPprofDisabledByDefault: without EnablePprof the profiling routes do
// not exist — the default daemon exposes no introspection surface.
func TestPprofDisabledByDefault(t *testing.T) {
	ts := testServer(t)
	if status, _, _ := get(t, ts, "/debug/pprof/"); status != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without -pprof = %d, want 404", status)
	}
}

// TestPprofEnabledBypassesAdmission: with EnablePprof the handlers are
// served, and they stay reachable on a draining server whose compute gate
// is shedding everything — the whole point of keeping them outside admit.
func TestPprofEnabledBypassesAdmission(t *testing.T) {
	base := experiments.DefaultOptions()
	base.Quick = true
	base.Parallel = 1
	s := NewServer(Config{Base: base, MaxInflight: 1, EnablePprof: true})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		if status, _, body := get(t, ts, path); status != http.StatusOK {
			t.Errorf("GET %s = %d (%s), want 200", path, status, strings.TrimSpace(body))
		}
	}

	s.Drain()
	if status, _, _ := get(t, ts, "/v1/run?id=table2"); status == http.StatusOK {
		t.Fatal("draining server should shed compute requests")
	}
	if status, _, _ := get(t, ts, "/debug/pprof/"); status != http.StatusOK {
		t.Errorf("draining server must still serve pprof, got %d", status)
	}
}

// TestFidelityParameter pins the fidelity= request knob: it reaches the
// experiment layer (provenance label on a fidelity-consuming experiment)
// and rejects unknown tiers with a 400.
func TestFidelityParameter(t *testing.T) {
	ts := testServer(t)
	status, _, body := get(t, ts, "/v1/run?id=fig5&fidelity=auto")
	if status != http.StatusOK {
		t.Fatalf("fidelity=auto: status %d (%s)", status, strings.TrimSpace(body))
	}
	d, err := results.ParseJSON([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if d.Prov.Fidelity != "auto" {
		t.Errorf("served provenance fidelity = %q, want auto", d.Prov.Fidelity)
	}

	if status, _, body := get(t, ts, "/v1/run?id=fig5&fidelity=approximate"); status != http.StatusBadRequest {
		t.Errorf("bad fidelity: status %d (%s), want 400", status, strings.TrimSpace(body))
	}
}
