package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cxlmem/internal/experiments"
	"cxlmem/internal/results"
)

// testServer starts the handler over quick, serial base options.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	base := experiments.DefaultOptions()
	base.Quick = true
	base.Parallel = 1
	ts := httptest.NewServer(Handler(base))
	t.Cleanup(ts.Close)
	return ts
}

// get fetches a path and returns status, content type and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestExperimentsEndpoint checks the catalog: every registered ID, the
// emitter formats and the platform registry.
func TestExperimentsEndpoint(t *testing.T) {
	ts := testServer(t)
	status, ctype, body := get(t, ts, "/v1/experiments")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("status %d, content-type %s", status, ctype)
	}
	var c struct {
		Experiments []struct{ ID, Desc string } `json:"experiments"`
		Formats     []string                    `json:"formats"`
		Platforms   []string                    `json:"platforms"`
	}
	if err := json.Unmarshal([]byte(body), &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Experiments) != len(experiments.IDs()) {
		t.Errorf("catalog lists %d experiments, registry has %d", len(c.Experiments), len(experiments.IDs()))
	}
	if len(c.Formats) != 3 || c.Formats[0] != "text" {
		t.Errorf("formats = %v", c.Formats)
	}
	if len(c.Platforms) < 4 {
		t.Errorf("platforms = %v", c.Platforms)
	}
}

// TestRunEndpoint fetches one experiment in every format and checks the
// JSON decodes back to a typed dataset.
func TestRunEndpoint(t *testing.T) {
	ts := testServer(t)
	status, ctype, body := get(t, ts, "/v1/run?id=table2")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("default format: status %d, content-type %s", status, ctype)
	}
	d, err := results.ParseJSON([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != "table2" || len(d.Rows) == 0 {
		t.Errorf("served dataset = %s with %d rows", d.ID, len(d.Rows))
	}
	if !d.Prov.Quick {
		t.Error("server base options should stamp quick provenance")
	}

	status, ctype, body = get(t, ts, "/v1/run?id=table2&format=text")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("text format: status %d, content-type %s", status, ctype)
	}
	if !strings.HasPrefix(body, "== table2:") {
		t.Errorf("text body = %q", body[:40])
	}

	status, ctype, _ = get(t, ts, "/v1/run?id=table2&format=csv")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "text/csv") {
		t.Fatalf("csv format: status %d, content-type %s", status, ctype)
	}
}

// TestRunEndpointErrors pins the failure modes: missing/unknown id, bad
// format, bad platform, bad boolean, wrong method.
func TestRunEndpointErrors(t *testing.T) {
	ts := testServer(t)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/run", http.StatusBadRequest},
		{"/v1/run?id=fig99", http.StatusNotFound},
		{"/v1/run?id=table2&format=yaml", http.StatusBadRequest},
		{"/v1/run?id=matrix-apps&platform=atari2600", http.StatusBadRequest},
		{"/v1/run?id=table2&quick=maybe", http.StatusBadRequest},
		{"/v1/run?id=table2&seed=banana", http.StatusBadRequest},
		{"/v1/scenario", http.StatusBadRequest},
		{"/v1/scenario?spec=nope", http.StatusBadRequest},
		{"/v1/scenario?spec=ycsb/flavor=mild", http.StatusBadRequest},
	} {
		if status, _, body := get(t, ts, tc.path); status != tc.want {
			t.Errorf("GET %s = %d (%s), want %d", tc.path, status, strings.TrimSpace(body), tc.want)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/run?id=table2", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
}

// TestScenarioEndpoint fetches one scenario cell and checks the metric
// dataset shape and provenance.
func TestScenarioEndpoint(t *testing.T) {
	ts := testServer(t)
	status, _, body := get(t, ts, "/v1/scenario?spec=fluid/policy=interleave/size=64M")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	d, err := results.ParseJSON([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if d.Prov.Scenario == "" || len(d.Rows) == 0 {
		t.Errorf("scenario dataset = %+v", d)
	}
	if d.Rows[0][0].Text() != "system_bw" {
		t.Errorf("primary metric = %q", d.Rows[0][0].Text())
	}
}

// TestConcurrentRequests exercises the race-tested path of the acceptance
// criteria: 16 concurrent requests — the same experiment in several
// formats, a matrix experiment and scenario cells — all funneling into the
// shared dataset and cell memo caches. Run under -race in CI; the test also
// asserts all same-query responses are byte-identical.
func TestConcurrentRequests(t *testing.T) {
	ts := testServer(t)
	paths := []string{
		"/v1/run?id=fig4a",
		"/v1/run?id=fig4a&format=text",
		"/v1/run?id=fig4a&format=csv",
		"/v1/run?id=matrix-size",
		"/v1/scenario?spec=fluid/policy=interleave/size=64M",
		"/v1/scenario?spec=kvstore/policy=cxl",
		"/v1/experiments",
		"/v1/run?id=table3",
	}
	const perPath = 2 // 16 concurrent requests over 8 distinct queries
	type result struct {
		path   string
		status int
		body   string
	}
	out := make([]result, len(paths)*perPath)
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := paths[i%len(paths)]
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				out[i] = result{path: path, status: -1, body: err.Error()}
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			out[i] = result{path: path, status: resp.StatusCode, body: string(body)}
		}(i)
	}
	wg.Wait()
	first := make(map[string]string)
	for _, r := range out {
		if r.status != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", r.path, r.status, r.body)
		}
		if prev, ok := first[r.path]; ok && prev != r.body {
			t.Errorf("concurrent responses for %s diverge", r.path)
		}
		first[r.path] = r.body
	}
}
