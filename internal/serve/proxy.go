// The sharded-cache proxy hop and the warm-start snapshot endpoint
// (DESIGN.md §14). With Config.Ring set, each compute request resolves its
// canonical memo key and is either served locally (this replica owns the
// key, or a peer already forwarded it here) or forwarded exactly one hop to
// the owning replica. The single-hop guarantee comes from the loop-guard
// header: a forwarded request is always served where it lands, even if ring
// views disagree mid-rollout, so misconfigured peer sets degrade to extra
// computation, never to a forwarding loop. A transport failure on the hop
// falls back to local computation — any replica can compute any key with
// byte-identical results, so the fleet keeps its zero-5xx envelope while a
// peer is down.
package serve

import (
	"io"
	"net/http"
	"strings"
	"time"

	"cxlmem/internal/experiments"
)

// proxyHeader is the loop-guard header stamped on every forwarded request.
// Its value is the forwarding replica's advertised address, which makes the
// hop visible in access logs; its presence alone disarms re-forwarding.
const proxyHeader = "X-Cxlserve-Proxy"

// defaultProxyTimeout bounds the proxy hop when Config.ProxyClient is nil,
// matching the coordinator's cell-fetch budget.
const defaultProxyTimeout = 5 * time.Minute

// proxyClient resolves the HTTP client for the proxy hop.
func (s *Server) proxyClient() *http.Client {
	if s.cfg.ProxyClient != nil {
		return s.cfg.ProxyClient
	}
	return &http.Client{Timeout: defaultProxyTimeout}
}

// proxy routes one compute request by its canonical key. It returns true if
// the response was fully written (the request was forwarded to the owning
// replica); false means the caller must serve locally — because sharding is
// off, this replica owns the key, a peer already forwarded the request here
// (loop guard), or the hop failed and local computation is the fallback.
func (s *Server) proxy(w http.ResponseWriter, r *http.Request, key string) bool {
	if s.cfg.Ring == nil {
		return false
	}
	if r.Header.Get(proxyHeader) != "" {
		// One hop only: a forwarded request is served where it lands.
		s.metrics.proxyReceived.Add(1)
		return false
	}
	if s.cfg.Ring.Owns(key) {
		return false
	}
	owner := s.cfg.Ring.Owner(key)
	target := strings.TrimSuffix(owner, "/") + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target, nil)
	if err != nil {
		s.metrics.proxyErrors.Add(1)
		return false
	}
	self := s.cfg.Ring.Self()
	if self == "" {
		self = "1"
	}
	req.Header.Set(proxyHeader, self)
	resp, err := s.proxyClient().Do(req)
	if err != nil {
		// The owner is unreachable; compute locally rather than surface a
		// 5xx — correctness never depended on where the key runs.
		s.metrics.proxyErrors.Add(1)
		return false
	}
	defer resp.Body.Close()
	s.metrics.proxyForwarded.Add(1)
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// snapshot serves GET /v1/snapshot: the dataset cache's warm-start snapshot
// in the schema internal/experiments.ImportDatasetCache accepts, so an
// operator can seed a fresh replica from a warm one with two curls.
func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	data, err := experiments.ExportDatasetCache()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}
