package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cxlmem/internal/experiments"
	"cxlmem/internal/results"
)

// hardenedServer builds a Server (not just its handler) so tests can reach
// Drain and the metrics gauges.
func hardenedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Base.Seed == 0 {
		cfg.Base = experiments.DefaultOptions()
		cfg.Base.Quick = true
		cfg.Base.Parallel = 1
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestOverloadShed saturates a MaxInflight=1, MaxQueue=0 gate: the second
// concurrent request must shed with 429 + Retry-After immediately (never
// hang), and after the slot frees the endpoint serves again.
func TestOverloadShed(t *testing.T) {
	s := NewServer(Config{MaxInflight: 1})
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	h := s.admit(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release // a closed channel admits every later request instantly
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("blocked request finished %d, want 200", resp.StatusCode)
			}
		}
		errc <- err
	}()
	<-entered // slot taken

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated gate = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if got := s.metrics.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release = %d, want 200", resp.StatusCode)
	}
	if got := s.metrics.inflight.Load(); got != 0 {
		t.Errorf("inflight gauge = %d after all requests done, want 0", got)
	}
}

// TestAdmitQueue checks the bounded wait queue: with MaxInflight=1 and
// MaxQueue=1, a second request waits (and eventually serves) while a third
// sheds 429; a drained queue releases its waiter with 503.
func TestAdmitQueue(t *testing.T) {
	s := NewServer(Config{MaxInflight: 1, MaxQueue: 1})
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	h := s.admit(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	get := func(c chan int) {
		resp, err := http.Get(ts.URL)
		if err != nil {
			c <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		c <- resp.StatusCode
	}
	c1, c2 := make(chan int, 1), make(chan int, 1)
	go get(c1)
	<-entered // request 1 holds the slot
	go get(c2)
	waitGauge(t, func() int64 { return s.metrics.queued.Load() }, 1, "queued")

	// Queue full: request 3 sheds immediately.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request = %d, want 429", resp.StatusCode)
	}

	// Freeing the slot admits the queued request.
	release <- struct{}{}
	<-entered
	release <- struct{}{}
	if got := <-c1; got != http.StatusOK {
		t.Errorf("request 1 = %d, want 200", got)
	}
	if got := <-c2; got != http.StatusOK {
		t.Errorf("queued request = %d, want 200", got)
	}
	waitGauge(t, func() int64 { return s.metrics.queued.Load() }, 0, "queued")
}

// TestDrainReleasesQueued checks that Drain sheds a waiter stuck in the
// admission queue instead of leaving its connection hanging.
func TestDrainReleasesQueued(t *testing.T) {
	s := NewServer(Config{MaxInflight: 1, MaxQueue: 4})
	entered := make(chan struct{})
	release := make(chan struct{})
	h := s.admit(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	go http.Get(ts.URL) //nolint:errcheck — released below
	<-entered
	c := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL)
		if err != nil {
			c <- -1
			return
		}
		resp.Body.Close()
		c <- resp.StatusCode
	}()
	waitGauge(t, func() int64 { return s.metrics.queued.Load() }, 1, "queued")

	s.Drain()
	s.Drain() // idempotent
	if got := <-c; got != http.StatusServiceUnavailable {
		t.Errorf("queued request after Drain = %d, want 503", got)
	}
	close(release) // in-flight request still completes
}

// waitGauge polls an atomic gauge until it reaches want or the deadline
// expires.
func waitGauge(t *testing.T, load func() int64, want int64, name string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s gauge = %d, want %d", name, load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrainHealthz checks the shutdown surface: a draining server flips
// /healthz to 503 and sheds new compute requests with Retry-After, while
// /metrics and /v1/experiments stay reachable for a final scrape.
func TestDrainHealthz(t *testing.T) {
	s, ts := hardenedServer(t, Config{})
	if status, _, body := get(t, ts, "/healthz"); status != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %d %q", status, body)
	}
	s.Drain()
	if status, _, _ := get(t, ts, "/healthz"); status != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", status)
	}
	resp, err := http.Get(ts.URL + "/v1/run?id=table2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("draining run = %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if status, _, _ := get(t, ts, "/metrics"); status != http.StatusOK {
		t.Errorf("draining metrics = %d, want 200 (final scrape must work)", status)
	}
}

// TestMetricsEndpoint drives traffic and asserts the exported counters
// move: request counts by endpoint and code, latency count, cache hits
// (the repeated query is a dataset-cache hit), and the draining gauge.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := hardenedServer(t, Config{})
	for i := 0; i < 2; i++ {
		if status, _, body := get(t, ts, "/v1/run?id=table2"); status != http.StatusOK {
			t.Fatalf("run %d = %d: %s", i, status, body)
		}
	}
	get(t, ts, "/v1/run?id=fig99") // a 404 to diversify the code label

	status, ctype, body := get(t, ts, "/metrics")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("metrics = %d, content-type %s", status, ctype)
	}
	for _, want := range []string{
		`cxlserve_requests_total{endpoint="/v1/run",code="200"} 2`,
		`cxlserve_requests_total{endpoint="/v1/run",code="404"} 1`,
		`cxlserve_request_latency_seconds_count{endpoint="/v1/run"} 3`,
		`cxlserve_request_latency_seconds{endpoint="/v1/run",quantile="0.99"}`,
		`cxlserve_cache_misses_total{cache="dataset"}`,
		`cxlserve_cache_hits_total{cache="warmstate"}`,
		`cxlserve_cache_entries{cache="warmstate"}`,
		`cxlserve_inflight 0`,
		`cxlserve_shed_total 0`,
		`cxlserve_draining 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
	// The second identical run query must have hit the dataset cache:
	// hits_total{cache="dataset"} is a process-wide counter so other tests
	// contribute, but it must be strictly positive here.
	if strings.Contains(body, `cxlserve_cache_hits_total{cache="dataset"} 0`+"\n") {
		t.Error("dataset cache hits = 0 after a repeated query")
	}
}

// TestRequestTimeout proves the deadline path end to end: a request with a
// vanishing timeout is canceled mid-sweep and answers 504, and the identical
// query afterward (no timeout) succeeds — the canceled evaluation was not
// cached and did not poison the key.
func TestRequestTimeout(t *testing.T) {
	_, ts := hardenedServer(t, Config{})
	// A unique seed gives this test a fresh cache key.
	const q = "/v1/run?id=matrix-size&seed=990001"
	resp, err := http.Get(ts.URL + q + "&timeout=1ns")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out request = %d (%s), want 504", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("504 missing Retry-After")
	}
	if status, _, body := get(t, ts, q); status != http.StatusOK {
		t.Fatalf("retry after timeout = %d (%s), want 200 — canceled result must not be cached",
			status, strings.TrimSpace(body))
	}
}

// TestBadTimeout pins the timeout parameter's failure modes.
func TestBadTimeout(t *testing.T) {
	_, ts := hardenedServer(t, Config{})
	for _, path := range []string{
		"/v1/run?id=table2&timeout=banana",
		"/v1/run?id=table2&timeout=-5s",
		"/v1/scenario?spec=kvstore/policy=cxl&timeout=0s",
	} {
		if status, _, _ := get(t, ts, path); status != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, status)
		}
	}
}

// TestMethodNotAllowed posts to every endpoint.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := hardenedServer(t, Config{})
	for _, path := range []string{
		"/v1/experiments", "/v1/run?id=table2",
		"/v1/scenario?spec=kvstore/policy=cxl", "/metrics", "/healthz",
	} {
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, resp.StatusCode)
		}
	}
}

// failingEmitter always fails mid-render.
type failingEmitter struct{}

// Name implements results.Emitter.
func (failingEmitter) Name() string { return "failing" }

// ContentType implements results.Emitter.
func (failingEmitter) ContentType() string { return "application/x-fail" }

// Emit implements results.Emitter by writing half a body, then failing.
func (failingEmitter) Emit(w io.Writer, d *results.Dataset) error {
	fmt.Fprint(w, "partial")
	return errors.New("emitter exploded")
}

// TestEmitFailure checks the buffered-emit contract: an emitter error
// becomes a clean 500 with no partial body and no emitter content type.
func TestEmitFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	emit(rec, failingEmitter{}, &results.Dataset{ID: "x"})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("emit failure = %d, want 500", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "partial") {
		t.Error("partial emitter output leaked into the response body")
	}
	if ct := rec.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/x-fail") {
		t.Errorf("failed emit set the emitter content type %q", ct)
	}
}

// TestSustainedLoad is the in-process load test: 200 concurrent mixed
// queries against a bounded gate with a queue deep enough to hold them all.
// Every request must answer 200 (no sheds, no 5xx, no hangs) and the
// admission gauges must return to zero.
func TestSustainedLoad(t *testing.T) {
	base := experiments.DefaultOptions()
	base.Quick = true
	base.Parallel = 2
	s, ts := hardenedServer(t, Config{
		Base:        base,
		Timeout:     time.Minute,
		MaxInflight: 8,
		MaxQueue:    256,
	})
	paths := []string{
		"/v1/run?id=table2",
		"/v1/run?id=fig4a&format=text",
		"/v1/run?id=matrix-size",
		"/v1/scenario?spec=fluid/policy=interleave/size=64M",
		"/v1/scenario?spec=kvstore/policy=cxl",
		"/v1/experiments",
	}
	const n = 200
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + paths[i%len(paths)])
			if err != nil {
				codes[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d (%s) = %d, want 200", i, paths[i%len(paths)], code)
		}
	}
	if got := s.metrics.inflight.Load(); got != 0 {
		t.Errorf("inflight = %d after load, want 0", got)
	}
	if got := s.metrics.queued.Load(); got != 0 {
		t.Errorf("queued = %d after load, want 0", got)
	}
	if got := s.metrics.shed.Load(); got != 0 {
		t.Errorf("shed = %d with a deep queue, want 0", got)
	}
}
