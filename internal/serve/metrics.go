// The cxlserve observability surface: a small hand-rolled metrics registry
// (no client library — the repo carries zero dependencies) rendered as
// Prometheus-style text exposition on /metrics, plus the /healthz liveness
// probe. The metric catalog is documented in DESIGN.md §11.
package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cxlmem/internal/experiments"
	"cxlmem/internal/memo"
	"cxlmem/internal/mlc"
	"cxlmem/internal/stats"
)

// serverMetrics is the per-Server telemetry state. Counters on the hot path
// (inflight, queued, shed) are atomics; the per-endpoint latency histograms
// and status counts share one mutex — they are touched once per request,
// after the response is written.
type serverMetrics struct {
	inflight atomic.Int64 // admitted compute requests currently running
	queued   atomic.Int64 // requests waiting for an admission slot
	shed     atomic.Int64 // requests rejected by the admission gate
	draining atomic.Bool  // set by Drain, never cleared

	proxyErrors    atomic.Int64 // proxy hops that failed and fell back local
	proxyForwarded atomic.Int64 // requests forwarded to their owning replica
	proxyReceived  atomic.Int64 // forwarded requests served here (loop guard)

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

// endpointMetrics aggregates one endpoint's request outcomes.
type endpointMetrics struct {
	latency  *stats.Histogram
	statuses map[int]int64
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{endpoints: map[string]*endpointMetrics{}}
}

// observe records one finished request.
func (m *serverMetrics) observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.endpoints[endpoint]
	if ep == nil {
		ep = &endpointMetrics{latency: stats.NewHistogram(stats.LatencyBounds()), statuses: map[int]int64{}}
		m.endpoints[endpoint] = ep
	}
	ep.latency.Observe(d.Seconds())
	ep.statuses[code]++
}

// statusRecorder captures the status code a handler writes so instrument
// can attribute the request to it; an unset status is the implicit 200.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

// WriteHeader records the explicit status and forwards it.
func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write marks the implicit 200 on a body written without WriteHeader.
func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.code = http.StatusOK
		r.wrote = true
	}
	return r.ResponseWriter.Write(b)
}

// status returns the recorded status, defaulting to 200 for a handler that
// wrote nothing.
func (r *statusRecorder) status() int {
	if !r.wrote {
		return http.StatusOK
	}
	return r.code
}

// metricsQuantiles are the latency quantiles exported per endpoint.
var metricsQuantiles = []float64{0.5, 0.9, 0.99}

// metricsHandler renders the metric catalog as Prometheus-style text:
// process-wide memo-cache counters (from internal/experiments), the
// admission gate's gauges and shed count, and per-endpoint request counts
// and latency quantiles. Output order is deterministic so tests and humans
// can diff two scrapes.
func (s *Server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	writeBuffered(w, "text/plain; version=0.0.4; charset=utf-8", func(wr io.Writer) error {
		dataset, cell := experiments.CacheStats()
		for _, c := range []struct {
			name string
			st   memo.CacheStats
		}{{"dataset", dataset}, {"cell", cell}, {"warmstate", mlc.WarmStateStats()}} {
			fmt.Fprintf(wr, "cxlserve_cache_hits_total{cache=%q} %d\n", c.name, c.st.Hits)
			fmt.Fprintf(wr, "cxlserve_cache_misses_total{cache=%q} %d\n", c.name, c.st.Misses)
			fmt.Fprintf(wr, "cxlserve_cache_evictions_total{cache=%q} %d\n", c.name, c.st.Evictions)
			fmt.Fprintf(wr, "cxlserve_cache_expirations_total{cache=%q} %d\n", c.name, c.st.Expirations)
			fmt.Fprintf(wr, "cxlserve_cache_invalidations_total{cache=%q} %d\n", c.name, c.st.Invalidations)
			fmt.Fprintf(wr, "cxlserve_cache_entries{cache=%q} %d\n", c.name, c.st.Size)
			fmt.Fprintf(wr, "cxlserve_cache_inflight{cache=%q} %d\n", c.name, c.st.InFlight)
		}
		counts, buffered := simTraceCounts()
		fmt.Fprintf(wr, "cxlserve_sim_events_total{phase=\"enqueue\"} %d\n", counts.Enqueued)
		fmt.Fprintf(wr, "cxlserve_sim_events_total{phase=\"dispatch\"} %d\n", counts.Dispatched)
		fmt.Fprintf(wr, "cxlserve_sim_events_total{phase=\"complete\"} %d\n", counts.Completed)
		fmt.Fprintf(wr, "cxlserve_sim_trace_buffered %d\n", buffered)
		fmt.Fprintf(wr, "cxlserve_inflight %d\n", s.metrics.inflight.Load())
		fmt.Fprintf(wr, "cxlserve_queued %d\n", s.metrics.queued.Load())
		fmt.Fprintf(wr, "cxlserve_shed_total %d\n", s.metrics.shed.Load())
		fmt.Fprintf(wr, "cxlserve_draining %d\n", boolGauge(s.metrics.draining.Load()))
		// Sorted by result label, matching the deterministic-order contract.
		fmt.Fprintf(wr, "cxlserve_proxy_requests_total{result=\"error\"} %d\n", s.metrics.proxyErrors.Load())
		fmt.Fprintf(wr, "cxlserve_proxy_requests_total{result=\"forwarded\"} %d\n", s.metrics.proxyForwarded.Load())
		fmt.Fprintf(wr, "cxlserve_proxy_requests_total{result=\"received\"} %d\n", s.metrics.proxyReceived.Load())
		fmt.Fprintf(wr, "cxlserve_snapshot_restored_entries %d\n", s.cfg.SnapshotRestored)

		s.metrics.mu.Lock()
		defer s.metrics.mu.Unlock()
		names := make([]string, 0, len(s.metrics.endpoints))
		for name := range s.metrics.endpoints {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ep := s.metrics.endpoints[name]
			codes := make([]int, 0, len(ep.statuses))
			for code := range ep.statuses {
				codes = append(codes, code)
			}
			sort.Ints(codes)
			for _, code := range codes {
				fmt.Fprintf(wr, "cxlserve_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, code, ep.statuses[code])
			}
			for _, q := range metricsQuantiles {
				fmt.Fprintf(wr, "cxlserve_request_latency_seconds{endpoint=%q,quantile=\"%g\"} %g\n",
					name, q, ep.latency.Quantile(q))
			}
			fmt.Fprintf(wr, "cxlserve_request_latency_seconds_count{endpoint=%q} %d\n", name, ep.latency.Count())
			fmt.Fprintf(wr, "cxlserve_request_latency_seconds_sum{endpoint=%q} %g\n", name, ep.latency.Sum())
		}
		return nil
	})
}

// healthz answers the liveness probe: 200 "ok" while serving, 503
// "draining" once Drain has run so load balancers stop routing here.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	if s.metrics.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// boolGauge renders a bool as the conventional 0/1 gauge value.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
