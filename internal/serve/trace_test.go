package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"cxlmem/internal/telemetry"
)

// traceBody decodes one /v1/trace response.
func traceBody(t *testing.T, body string) traceResponse {
	t.Helper()
	var resp traceResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("trace body does not decode: %v\n%s", err, body)
	}
	return resp
}

// TestTraceEndpoint runs the event-driven tpp-timeline experiment through
// /v1/run and then reads the scheduler's event stream back through /v1/trace:
// the ring must be non-empty, phase-consistent, ordered, and — because the
// engine is deterministic and nothing runs in between — two consecutive
// snapshots must be byte-identical.
func TestTraceEndpoint(t *testing.T) {
	telemetry.Sim.Reset()
	ts := testServer(t)
	if status, _, body := get(t, ts, "/v1/run?id=tpp-timeline"); status != http.StatusOK {
		t.Fatalf("priming run = %d: %s", status, body)
	}

	status, ctype, body := get(t, ts, "/v1/trace")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("status %d, content-type %s", status, ctype)
	}
	resp := traceBody(t, body)
	if resp.Enqueued == 0 || resp.Dispatched == 0 || resp.Completed == 0 {
		t.Fatalf("totals = %+v, want all phases non-zero after a run", resp)
	}
	if resp.Buffered == 0 || len(resp.Events) != resp.Buffered {
		t.Fatalf("buffered = %d but %d events returned", resp.Buffered, len(resp.Events))
	}
	if resp.Capacity != telemetry.Sim.Cap() {
		t.Errorf("capacity = %d, want %d", resp.Capacity, telemetry.Sim.Cap())
	}
	for i, ev := range resp.Events {
		if ev.Phase != "enqueue" && ev.Phase != "dispatch" && ev.Phase != "complete" {
			t.Fatalf("event %d has phase %q", i, ev.Phase)
		}
		if ev.Actor == "" || ev.Kind == "" {
			t.Fatalf("event %d lacks actor/kind: %+v", i, ev)
		}
		if i > 0 && ev.NowPS < resp.Events[i-1].NowPS {
			t.Fatalf("observation time goes backwards at event %d", i)
		}
	}

	// Determinism at the HTTP surface: the ring is quiescent, so a second
	// snapshot must be byte-identical to the first.
	if _, _, again := get(t, ts, "/v1/trace"); again != body {
		t.Error("consecutive /v1/trace snapshots diverge on a quiescent ring")
	}

	// limit= caps the events to the most recent N; the totals still cover
	// the whole run.
	_, _, limited := get(t, ts, "/v1/trace?limit=5")
	lresp := traceBody(t, limited)
	if len(lresp.Events) != 5 || lresp.Enqueued != resp.Enqueued {
		t.Fatalf("limit=5 returned %d events, totals %d (want 5, %d)", len(lresp.Events), lresp.Enqueued, resp.Enqueued)
	}
	if lresp.Events[4] != resp.Events[len(resp.Events)-1] {
		t.Error("limit= does not keep the most recent events")
	}
}

// TestTraceEndpointErrors pins the failure modes: malformed limit and wrong
// method.
func TestTraceEndpointErrors(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{"/v1/trace?limit=-1", "/v1/trace?limit=banana"} {
		if status, _, _ := get(t, ts, path); status != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, status)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/trace", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
}

// TestTraceMetrics checks the /metrics exposition carries the sim counters
// after an event-driven run.
func TestTraceMetrics(t *testing.T) {
	telemetry.Sim.Reset()
	ts := testServer(t)
	if status, _, body := get(t, ts, "/v1/run?id=tpp-timeline&seed=5"); status != http.StatusOK {
		t.Fatalf("priming run = %d: %s", status, body)
	}
	status, _, body := get(t, ts, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics = %d", status)
	}
	for _, phase := range []string{"enqueue", "dispatch", "complete"} {
		prefix := fmt.Sprintf("cxlserve_sim_events_total{phase=%q} ", phase)
		found := false
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, prefix) {
				found = true
				if strings.TrimPrefix(line, prefix) == "0" {
					t.Errorf("%s is zero after an event-driven run", strings.TrimSpace(line))
				}
			}
		}
		if !found {
			t.Errorf("metrics lack %s", prefix)
		}
	}
	if !strings.Contains(body, "cxlserve_sim_trace_buffered ") {
		t.Error("metrics lack cxlserve_sim_trace_buffered")
	}
}

// TestTraceConcurrentWithRuns is the race exercise from the acceptance
// criteria: /v1/trace snapshots race event-driven /v1/run compute (distinct
// seeds defeat the memo cache so the scheduler really runs) plus /metrics
// scrapes. Run under -race in CI; everything must return 200 and every trace
// body must decode.
func TestTraceConcurrentWithRuns(t *testing.T) {
	telemetry.Sim.Reset()
	ts := testServer(t)
	paths := make([]string, 0, 16)
	for i := 0; i < 4; i++ {
		paths = append(paths,
			fmt.Sprintf("/v1/run?id=tpp-timeline&seed=%d", 100+i),
			"/v1/trace",
			"/v1/trace?limit=10",
			"/metrics",
		)
	}
	var wg sync.WaitGroup
	errs := make([]string, len(paths))
	for i, path := range paths {
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				errs[i] = fmt.Sprintf("GET %s: %v", path, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Sprintf("GET %s = %d", path, resp.StatusCode)
			}
		}(i, path)
	}
	wg.Wait()
	for _, e := range errs {
		if e != "" {
			t.Error(e)
		}
	}
	// After the dust settles the ring must hold a full, decodable stream.
	_, _, body := get(t, ts, "/v1/trace")
	if resp := traceBody(t, body); resp.Enqueued == 0 || resp.Buffered == 0 {
		t.Errorf("post-race trace is empty: %+v", resp)
	}
}
