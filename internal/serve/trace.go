// The /v1/trace endpoint: cxlserve's window into the discrete-event engine
// (DESIGN.md §13). Event-driven workload runs tap their scheduler into the
// process-wide telemetry.Sim ring; this endpoint snapshots that ring as
// JSON, so a client can run `/v1/run?id=tpp-timeline` and immediately read
// back the event stream that produced the dataset.
package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"

	"cxlmem/internal/sim"
	"cxlmem/internal/telemetry"
)

// traceEventJSON is the wire form of one sim.TraceEvent. Times are exported
// in integer picoseconds — the engine's native unit — so the stream stays
// lossless and byte-stable.
type traceEventJSON struct {
	Phase string `json:"phase"`
	Seq   uint64 `json:"seq"`
	AtPS  int64  `json:"at_ps"`
	NowPS int64  `json:"now_ps"`
	Actor string `json:"actor"`
	Kind  string `json:"kind"`
}

// traceResponse is the /v1/trace response shape: cumulative per-phase
// totals, the ring occupancy, and the retained events oldest-first.
type traceResponse struct {
	Enqueued   uint64           `json:"enqueued"`
	Dispatched uint64           `json:"dispatched"`
	Completed  uint64           `json:"completed"`
	Buffered   int              `json:"buffered"`
	Capacity   int              `json:"capacity"`
	Events     []traceEventJSON `json:"events"`
}

// trace answers GET /v1/trace. An optional limit= parameter caps the
// returned events to the most recent N (the totals still cover everything).
// Like /v1/experiments it stays outside the admission gate: it only
// snapshots a ring buffer, and observability must stay reachable while the
// compute gate sheds.
func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	if !methodGet(w, r) {
		return
	}
	limit := -1
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit parameter "+strconv.Quote(v)+" (want a non-negative integer)", http.StatusBadRequest)
			return
		}
		limit = n
	}
	events := telemetry.Sim.Snapshot()
	totals := telemetry.Sim.Totals()
	resp := traceResponse{
		Enqueued:   totals.Enqueued,
		Dispatched: totals.Dispatched,
		Completed:  totals.Completed,
		Buffered:   len(events),
		Capacity:   telemetry.Sim.Cap(),
	}
	if limit >= 0 && len(events) > limit {
		events = events[len(events)-limit:]
	}
	resp.Events = make([]traceEventJSON, len(events))
	for i, te := range events {
		resp.Events[i] = traceEventJSON{
			Phase: te.Phase.String(),
			Seq:   te.Seq,
			AtPS:  int64(te.At),
			NowPS: int64(te.Now),
			Actor: te.Actor,
			Kind:  te.Kind,
		}
	}
	writeBuffered(w, "application/json", func(wr io.Writer) error {
		enc := json.NewEncoder(wr)
		enc.SetIndent("", "  ")
		return enc.Encode(resp)
	})
}

// simTraceCounts fetches the per-phase totals for the /metrics exposition.
func simTraceCounts() (sim.TraceCounts, int) {
	return telemetry.Sim.Totals(), telemetry.Sim.Len()
}
