package mlc

import (
	"math"
	"testing"

	"cxlmem/internal/mem"
	"cxlmem/internal/topo"
)

// TestBufferLatencyWorkersInvariant pins the sharded driver's promise at the
// measurement level: the worker count is throughput-only, the returned
// latency is bit-identical for any setting.
func TestBufferLatencyWorkersInvariant(t *testing.T) {
	const buf = 4 << 20
	measure := func(workers int) [2]int64 {
		var out [2]int64
		for i, name := range []string{"DDR5-L", "CXL-A"} {
			sys := topo.NewSystem(topo.DefaultConfig())
			got := BufferLatencyOpt(sys, sys.Path(name), buf, 20000, 3, StreamOptions{Workers: workers})
			out[i] = int64(got)
		}
		return out
	}
	want := measure(1)
	for _, workers := range []int{2, 4} {
		if got := measure(workers); got != want {
			t.Errorf("workers=%d: latencies %v, want %v", workers, got, want)
		}
	}
}

// TestIdleLatencyChainsOneMatchesSerial pins the chain-partition scheme's
// compatibility contract: at Chains <= 1 the permutation build consumes the
// base RNG stream exactly as the historical single-chain chase did, so the
// measurement is bit-identical regardless of worker count.
func TestIdleLatencyChainsOneMatchesSerial(t *testing.T) {
	measure := func(o StreamOptions) int64 {
		sys := topo.NewSystem(topo.MicrobenchConfig())
		return int64(IdleLatencyOpt(sys, sys.Path("CXL-A"), 20000, 1, o))
	}
	want := measure(StreamOptions{})
	for _, o := range []StreamOptions{{Chains: 1}, {Workers: 4}, {Chains: 1, Workers: 3}} {
		if got := measure(o); got != want {
			t.Errorf("options %+v: latency %d, want %d", o, got, want)
		}
	}
}

// TestIdleLatencyMultiChain checks the concurrent-chain chase: chains touch
// disjoint line ranges of a buffer twice the LLC with fewer steps than
// lines, so — exactly like the single chain — every access is a compulsory
// miss and the measured latency equals the serial path latency. It is also
// deterministic run to run.
func TestIdleLatencyMultiChain(t *testing.T) {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	p := sys.Path("CXL-A")
	got := IdleLatencyOpt(sys, p, 20000, 1, StreamOptions{Chains: 4})
	if want := p.SerialLatency(mem.Load); got != want {
		t.Errorf("4-chain chase idle latency %v, want exactly serial %v", got, want)
	}
	sys2 := topo.NewSystem(topo.MicrobenchConfig())
	if again := IdleLatencyOpt(sys2, sys2.Path("CXL-A"), 20000, 1, StreamOptions{Chains: 4}); again != got {
		t.Errorf("4-chain chase not deterministic: %v then %v", got, again)
	}
}

// TestBufferLatencyEstimateTracksExact is the divergence property test the
// auto fidelity tier rests on: wherever BufferKneeDistance clears KneeMargin
// the analytic estimate must stay within 10% of exact simulation, and well
// clear of every knee (two doublings) within 5%. The 32 MB points are the
// fig5 operating points themselves.
func TestBufferLatencyEstimateTracksExact(t *testing.T) {
	for _, tc := range []struct {
		name string
		buf  int64
	}{
		{"DDR5-L", 256 << 10},
		{"CXL-A", 256 << 10},
		{"DDR5-L", 4 << 20},
		{"CXL-A", 4 << 20},
		{"DDR5-L", 32 << 20},
		{"CXL-A", 32 << 20},
	} {
		sys := topo.NewSystem(topo.DefaultConfig())
		p := sys.Path(tc.name)
		dist := BufferKneeDistance(sys, p, tc.buf)
		exact := BufferLatency(sys, p, tc.buf, 50000, 3).Nanoseconds()
		est := BufferLatencyEstimate(sys, p, tc.buf).Nanoseconds()
		rel := math.Abs(est-exact) / exact
		t.Logf("%s %d MB: exact %.1f ns, estimate %.1f ns (%.1f%% off, knee distance %.2f)",
			tc.name, tc.buf>>20, exact, est, rel*100, dist)
		if dist >= 2 && rel > 0.05 {
			t.Errorf("%s buf=%d: estimate %.1f ns vs exact %.1f ns (%.1f%% off) at knee distance %.2f >= 2",
				tc.name, tc.buf, est, exact, rel*100, dist)
		}
		if dist >= KneeMargin && rel > 0.10 {
			t.Errorf("%s buf=%d: estimate %.1f ns vs exact %.1f ns (%.1f%% off) at knee distance %.2f >= KneeMargin",
				tc.name, tc.buf, est, exact, rel*100, dist)
		}
	}
}

// TestBufferKneeDistanceAtKnee pins the dial itself: a buffer equal to a
// capacity knee reports distance 0, and doubling the buffer moves the
// distance by at most one.
func TestBufferKneeDistanceAtKnee(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	p := sys.Path("CXL-A")
	l1Lines, _ := sys.Hier.PrivateLines(0)
	atKnee := BufferKneeDistance(sys, p, int64(l1Lines)*64)
	if atKnee != 0 {
		t.Errorf("distance at the L1 knee = %v, want 0", atKnee)
	}
	prev := atKnee
	for buf := int64(l1Lines) * 64 * 2; buf <= 256<<20; buf *= 2 {
		d := BufferKneeDistance(sys, p, buf)
		if math.Abs(d-prev) > 1+1e-9 {
			t.Errorf("knee distance jumped %v -> %v on one doubling (buf=%d)", prev, d, buf)
		}
		prev = d
	}
}
