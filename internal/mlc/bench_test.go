package mlc

// End-to-end benchmarks of the streamed measurement loops — the code paths
// that dominate fig5 and ablation-llc. Together with internal/cache's
// per-operation benchmarks these give the engine a tracked baseline.

import (
	"testing"

	"cxlmem/internal/topo"
)

// benchBuffer regenerates one 32 MB buffer-latency measurement (the fig5
// inner loop) at the quick-mode sample count.
func benchBuffer(b *testing.B, device string, warm Warmup) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sys := topo.NewSystem(topo.DefaultConfig())
		sink += BufferLatencyWarm(sys, sys.Path(device), 32<<20, 20000, 3, warm).Nanoseconds()
	}
	if sink == 0 {
		b.Fatal("zero latency")
	}
}

func BenchmarkBufferLatencyDDRExact(b *testing.B)     { benchBuffer(b, "DDR5-L", WarmupExact) }
func BenchmarkBufferLatencyDDRConverged(b *testing.B) { benchBuffer(b, "DDR5-L", WarmupConverged) }
func BenchmarkBufferLatencyCXLExact(b *testing.B)     { benchBuffer(b, "CXL-A", WarmupExact) }
func BenchmarkBufferLatencyCXLConverged(b *testing.B) { benchBuffer(b, "CXL-A", WarmupConverged) }

// BenchmarkIdleLatency measures the pointer-chase loop, permutation build
// included (it is part of every real call).
func BenchmarkIdleLatency(b *testing.B) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sys := topo.NewSystem(topo.MicrobenchConfig())
		sink += IdleLatency(sys, sys.Path("CXL-A"), 20000, 1).Nanoseconds()
	}
	if sink == 0 {
		b.Fatal("zero latency")
	}
}
