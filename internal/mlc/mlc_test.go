package mlc

import (
	"math"
	"testing"

	"cxlmem/internal/mem"
	"cxlmem/internal/topo"
)

func TestIdleLatencyApproachesSerialPath(t *testing.T) {
	for _, name := range []string{"DDR5-L", "DDR5-R", "CXL-A", "CXL-B", "CXL-C"} {
		// Fresh system per device: a shared hierarchy would replay the same
		// pseudo-random address sequence into warm caches.
		sys := topo.NewSystem(topo.MicrobenchConfig())
		p := sys.Path(name)
		got := IdleLatency(sys, p, 20000, 1).Nanoseconds()
		want := p.SerialLatency(mem.Load).Nanoseconds()
		// A large random buffer still hits caches occasionally; the
		// average should be within 15% of the pure memory latency and
		// never exceed it.
		if got > want || got < 0.85*want {
			t.Errorf("%s: idle latency %.1f ns vs serial %.1f ns", p.Name, got, want)
		}
	}
}

func TestIdleLatencyOrderingMatchesFig3(t *testing.T) {
	measure := func(name string) float64 {
		sys := topo.NewSystem(topo.MicrobenchConfig())
		return IdleLatency(sys, sys.Path(name), 10000, 2).Nanoseconds()
	}
	l := measure("DDR5-L")
	r := measure("DDR5-R")
	a := measure("CXL-A")
	b := measure("CXL-B")
	c := measure("CXL-C")
	if !(l < r && r < a && a < b && b < c) {
		t.Errorf("MLC ordering broken: L=%v R=%v A=%v B=%v C=%v", l, r, a, b, c)
	}
}

// TestFig5BufferLatency reproduces §4.3's headline numbers: in SNC mode a
// 32 MB random buffer averages ~41 ns from CXL-A (fits the 60 MB socket LLC)
// vs ~76.8 ns from local DDR (overflows the 15 MB node slices).
func TestFig5BufferLatency(t *testing.T) {
	cfg := topo.DefaultConfig() // SNC on
	const buf = 32 << 20
	// Separate systems so the two runs don't share cache state.
	sysD := topo.NewSystem(cfg)
	ddr := BufferLatency(sysD, sysD.DDRLocal, buf, 200000, 3)
	sysC := topo.NewSystem(cfg)
	cxl := BufferLatency(sysC, sysC.Path("CXL-A"), buf, 200000, 3)

	if cxl.Nanoseconds() >= ddr.Nanoseconds() {
		t.Fatalf("CXL-A buffer latency %.1f should beat DDR5-L %.1f (O6)", cxl.Nanoseconds(), ddr.Nanoseconds())
	}
	if got := cxl.Nanoseconds(); got < 30 || got > 55 {
		t.Errorf("CXL-A 32MB buffer latency = %.1f ns, paper ~41", got)
	}
	if got := ddr.Nanoseconds(); got < 62 || got > 92 {
		t.Errorf("DDR5-L 32MB buffer latency = %.1f ns, paper ~76.8", got)
	}
}

// TestIdleLatencyIsDependentChase pins the pointer-chase semantics: with a
// chase buffer twice the LLC and fewer steps than buffer lines, every access
// is a compulsory miss, so the idle latency equals the serial path latency
// exactly — an independent-random loop would hit warm lines and fall below.
func TestIdleLatencyIsDependentChase(t *testing.T) {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	p := sys.Path("CXL-A")
	got := IdleLatency(sys, p, 20000, 1)
	if want := p.SerialLatency(mem.Load); got != want {
		t.Errorf("chase idle latency %v, want exactly serial %v", got, want)
	}
}

// TestBufferLatencyConvergedTracksExact verifies the epoch-wise warmup lands
// on the same steady state as the fixed six-pass warmup (within noise) and
// never simulates more warm accesses. A DDR-homed buffer overflows its node
// slices and plateaus after two passes, so there it must stop early; a
// CXL-homed buffer genuinely needs the full fill of the 60 MB socket LLC and
// may legitimately run to the cap.
func TestBufferLatencyConvergedTracksExact(t *testing.T) {
	const buf = 32 << 20
	for _, name := range []string{"DDR5-L", "CXL-A"} {
		sysE := topo.NewSystem(topo.DefaultConfig())
		exact := BufferLatencyWarm(sysE, sysE.Path(name), buf, 50000, 3, WarmupExact)
		sysC := topo.NewSystem(topo.DefaultConfig())
		conv := BufferLatencyWarm(sysC, sysC.Path(name), buf, 50000, 3, WarmupConverged)
		accE := sysE.Hier.LLCHits + sysE.Hier.LLCMisses
		accC := sysC.Hier.LLCHits + sysC.Hier.LLCMisses

		rel := (conv.Nanoseconds() - exact.Nanoseconds()) / exact.Nanoseconds()
		if rel < -0.05 || rel > 0.05 {
			t.Errorf("%s: converged %v vs exact %v (%.1f%% off)", name, conv, exact, rel*100)
		}
		if accC > accE {
			t.Errorf("%s: converged warmup simulated %d LLC-level accesses, exact %d", name, accC, accE)
		}
		if name == "DDR5-L" && accC >= accE*3/4 {
			t.Errorf("DDR5-L: converged warmup should stop well early (%d vs %d accesses)", accC, accE)
		}
	}
}

func TestLoadedBandwidthEfficiencyMatchesTable(t *testing.T) {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	for _, p := range sys.ComparisonPaths() {
		for _, m := range mem.MixPoints() {
			got := LoadedBandwidth(p, m)
			want := p.Device.EffMix(m)
			if math.Abs(got.Efficiency-want) > 1e-6 {
				t.Errorf("%s %v: efficiency %v, want %v", p.Name, m, got.Efficiency, want)
			}
			if gbs := got.AchievedGBs; math.Abs(gbs-want*p.Device.PeakGBs()) > 1e-6 {
				t.Errorf("%s %v: achieved %v GB/s inconsistent", p.Name, m, gbs)
			}
		}
	}
}

func TestMixSweepCoversAllPoints(t *testing.T) {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	sweep := MixSweep(sys.Path("CXL-A"))
	if len(sweep) != 4 {
		t.Fatalf("sweep has %d points", len(sweep))
	}
	// O4 shape: CXL-A's efficiency *rises* with writes; DDR5-R's falls.
	a := MixSweep(sys.Path("CXL-A"))
	r := MixSweep(sys.Path("DDR5-R"))
	if a[mem.RW21].Efficiency <= a[mem.AllRead].Efficiency {
		t.Error("CXL-A efficiency should rise from all-read to 2:1")
	}
	if r[mem.RW21].Efficiency >= r[mem.AllRead].Efficiency {
		t.Error("DDR5-R efficiency should fall from all-read to 2:1")
	}
}

func TestPanics(t *testing.T) {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	for name, fn := range map[string]func(){
		"idle steps":  func() { IdleLatency(sys, sys.DDRLocal, 0, 1) },
		"buf samples": func() { BufferLatency(sys, sys.DDRLocal, 1<<20, 0, 1) },
		"buf size":    func() { BufferLatency(sys, sys.DDRLocal, 1, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
