package mlc

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"cxlmem/internal/cache"
	"cxlmem/internal/memo"
	"cxlmem/internal/sim"
)

// Warm-state snapshot cache (DESIGN.md §15).
//
// BufferLatency's warmup dominates its cost: bringing the hierarchy to
// steady state streams WarmMaxPasses buffer passes of random touches —
// millions of simulated accesses — before the first measured sample. But the
// post-warmup state is a pure function of (hierarchy configuration, home,
// buffer size, seed, warmup policy): the same operating point re-measured —
// a re-run, fig5 and ablation-llc sharing their CXL-A baseline row, a
// cxlserve cold-cache miss — re-simulates an identical warmup. warmStates
// memoizes the warmed state: a bounded, single-flight cache mapping the
// warmup key to a hierarchy Snapshot plus the RNG state at the end of the
// warmup stream. A hit restores the snapshot and resumes the RNG where the
// warmup left it, so the measurement pass consumes exactly the stream it
// would have after a cold warmup — byte-identical results, pinned by
// TestWarmStateByteIdentical and the golden corpus.
//
// Keying deliberately excludes sample counts, worker counts and chain
// counts: none of them shape the warmup stream. Canceled warmups are never
// retained (memo drops context-canceled results), and the cache only
// engages for hierarchies that have never simulated an access — anything
// else warms inline, exactly as before.

// DefaultWarmStateEntries is the warm-state cache's default entry budget.
// Each entry holds a full hierarchy snapshot (~19 MB for the SPR model), so
// the budget is small; ConfigureWarmStates resizes or disables it.
const DefaultWarmStateEntries = 4

var (
	warmStates    = memo.NewCacheWith(memo.CacheConfig{MaxEntries: DefaultWarmStateEntries})
	warmStatesOff atomic.Bool

	// errWarmStateUnavailable marks a warmup whose hierarchy could not be
	// snapshotted (slabs not arena-complete); callers warm inline instead.
	errWarmStateUnavailable = errors.New("mlc: hierarchy state is not snapshotable")
)

// ConfigureWarmStates resizes the warm-state cache's entry budget: positive
// bounds it, 0 makes it unbounded, negative disables warm-state caching
// entirely (every measurement warms inline). Resident entries above a
// lowered budget are evicted immediately.
func ConfigureWarmStates(maxEntries int) {
	warmStatesOff.Store(maxEntries < 0)
	if maxEntries >= 0 {
		warmStates.Configure(memo.CacheConfig{MaxEntries: maxEntries})
	}
}

// WarmStateStats snapshots the warm-state cache's counters — hits are
// measurements that restored a memoized warmup instead of re-simulating it.
// cxlserve exposes these on /metrics.
func WarmStateStats() memo.CacheStats { return warmStates.Stats() }

// warmKey canonicalizes everything that shapes a warmup: the hierarchy
// configuration (HierConfig is a flat value, so %+v is canonical), the
// home's routing class and node, the buffer's line count, the RNG seed and
// the warmup policy.
func warmKey(cfg cache.HierConfig, home cache.Home, lines int64, seed uint64, warm Warmup) string {
	return fmt.Sprintf("%+v|home=%d:%d|lines=%d|seed=%d|warm=%d",
		cfg, home.Kind, home.Node, lines, seed, warm)
}

// warmState is one memoized warmup: the warmed hierarchy and the RNG state
// at the end of the warmup stream.
type warmState struct {
	snap *cache.Snapshot
	rng  uint64 // sim.Rng state; NewRng(rng) resumes the measurement stream
}

// canceled reports whether err is a context cancellation.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// warmBuffer brings the hierarchy to the buffer measurement's steady state
// and returns the RNG positioned at the start of the measurement stream. A
// pristine hierarchy goes through the warm-state cache: a hit restores the
// memoized snapshot, a miss runs the warmup on this hierarchy and memoizes
// the result for the next caller. Hierarchies with prior simulated state —
// and any cache failure — warm inline, byte-identical either way. A context
// cancellation unwinds as a panic carrying ctx's error, matching the sweep
// engine's cancellation convention (experiments.recoverAsErr restores it).
func warmBuffer(ctx context.Context, hier *cache.Hierarchy, home cache.Home, lines int64, seed uint64, o StreamOptions) *sim.Rng {
	warm := o.Warm
	if !warmStatesOff.Load() && hier.Pristine() {
		key := warmKey(hier.Config(), home, lines, seed, warm)
		warmedHere := false
		v, err := warmStates.DoCtx(ctx, key, func(cctx context.Context) (any, error) {
			// The computation warms this caller's own hierarchy — the result
			// is wanted there anyway, so a miss costs no extra simulation. A
			// defensive re-invocation (the entry was invalidated mid-flight)
			// must not re-warm the now-dirty hierarchy; it warms a scratch one.
			h := hier
			if warmedHere {
				h = cache.NewHierarchy(hier.Config())
			}
			warmedHere = h == hier
			r := sim.NewRng(seed)
			if err := runWarmup(cctx, h, home, lines, r, warm, o.Workers); err != nil {
				return nil, err
			}
			snap, ok := h.Capture()
			if !ok {
				return nil, errWarmStateUnavailable
			}
			return &warmState{snap: snap, rng: r.State()}, nil
		})
		if err == nil {
			if ws, ok := v.(*warmState); ok {
				if warmedHere {
					// The warmup above ran on this very hierarchy: it is
					// already in the snapshot's state.
					return sim.NewRng(ws.rng)
				}
				if hier.Restore(ws.snap) {
					return sim.NewRng(ws.rng)
				}
			}
		}
		if canceled(err) || warmedHere {
			// A cancellation unwinds as a panic (the sweep convention). A
			// hierarchy the closure already warmed must never fall through
			// to a second inline warmup — unreachable in practice (the
			// closure only fails on cancellation), but fail loudly rather
			// than corrupt the measurement.
			if err == nil {
				err = errWarmStateUnavailable
			}
			panic(err)
		}
		// This hierarchy was never touched (the closure ran elsewhere or not
		// at all) and the failure was not a cancellation: warm inline below.
	}
	rng := sim.NewRng(seed)
	if err := runWarmup(ctx, hier, home, lines, rng, warm, o.Workers); err != nil {
		panic(err)
	}
	return rng
}
