package mlc

import (
	"math"

	"cxlmem/internal/cache"
	"cxlmem/internal/sim"
	"cxlmem/internal/topo"
)

// Analytic buffer-latency fast path (DESIGN.md §12).
//
// Far from a capacity knee, BufferLatency's answer is fully determined by
// which levels the buffer fits in: a 32 MB uniform-random working set either
// fits the effective LLC or it doesn't, and the per-level hit fractions
// follow from the CHE working-set model in internal/cache/che.go without
// simulating a single access. The estimator below composes those fractions
// with the same per-level path.HitLatency the streamed loops charge, so off
// the knee it converges to the exact measurement (the divergence bound is
// property-tested in analytic_test.go). Near a knee — buffer within a factor
// 2^KneeMargin of a capacity — occupancy is genuinely contested and only
// exact simulation resolves it; BufferKneeDistance is the dial callers use
// to pick (experiments' auto fidelity).

// KneeMargin is the knee-proximity threshold, in doublings of buffer size:
// a buffer within 2^KneeMargin of a cache-capacity knee is "at the knee"
// and should be simulated exactly rather than estimated.
const KneeMargin = 0.5

// bufferLevelFractions returns the estimated fraction of uniform-random
// accesses served by each level for a buffer of bufBytes homed per home.
// L2 is inclusive of L1 (its hit rate covers L1's); the LLC runs as an
// exclusive victim cache of L2, so their capacities add.
func bufferLevelFractions(hier *cache.Hierarchy, home cache.Home, bufBytes int64) [cache.Memory + 1]float64 {
	l1Lines, l2Lines := hier.PrivateLines(0)
	l1B := int64(l1Lines) * cache.LineBytes
	l2B := int64(l2Lines) * cache.LineBytes
	llcB := hier.EffectiveLLCLines(home) * cache.LineBytes

	h1 := cache.WorkingSetHitRate(bufBytes, l1B, 0)
	h2 := cache.WorkingSetHitRate(bufBytes, l2B, 0)
	h3 := cache.WorkingSetHitRate(bufBytes, l2B+llcB, 0)
	if h2 < h1 {
		h2 = h1
	}
	if h3 < h2 {
		h3 = h2
	}
	var frac [cache.Memory + 1]float64
	frac[cache.L1] = h1
	frac[cache.L2] = h2 - h1
	frac[cache.LLC] = h3 - h2
	frac[cache.Memory] = 1 - h3
	return frac
}

// BufferLatencyEstimate is the analytic counterpart of BufferLatency: the
// CHE level fractions weighted by the same per-level hit latencies the
// simulated loop charges. It costs microseconds instead of a warmed
// multi-million-access replay, and is accurate away from capacity knees
// (check BufferKneeDistance before trusting it near one).
func BufferLatencyEstimate(sys *topo.System, path *topo.Path, bufBytes int64) sim.Time {
	frac := bufferLevelFractions(sys.Hier, sys.HomeFor(path, 0), bufBytes)
	ns := 0.0
	for lvl := cache.L1; lvl <= cache.Memory; lvl++ {
		ns += frac[lvl] * path.HitLatency(lvl).Nanoseconds()
	}
	return sim.FromNanoseconds(ns)
}

// BufferKneeDistance reports how far bufBytes sits from the nearest
// capacity knee of the hierarchy as seen from path's home, in doublings:
// |log2(buffer / knee)| minimized over the L1, L2 and L2+effective-LLC
// capacities. A distance below KneeMargin means the buffer is close enough
// to a transition that the analytic model's sharp-corner approximation can
// misjudge the contested level's share.
func BufferKneeDistance(sys *topo.System, path *topo.Path, bufBytes int64) float64 {
	hier := sys.Hier
	home := sys.HomeFor(path, 0)
	l1Lines, l2Lines := hier.PrivateLines(0)
	eff := hier.EffectiveLLCLines(home)
	n := float64(bufBytes) / cache.LineBytes
	d := math.Inf(1)
	for _, knee := range []float64{float64(l1Lines), float64(l2Lines), float64(l2Lines) + float64(eff)} {
		if v := math.Abs(math.Log2(n / knee)); v < d {
			d = v
		}
	}
	return d
}
