package mlc

import (
	"context"
	"testing"
	"time"

	"cxlmem/internal/topo"
)

// coldBuffer measures one operating point with warm-state caching disabled —
// the reference cold path — restoring the previous cache configuration
// afterwards.
func coldBuffer(cfg topo.Config, device string, bufBytes int64, samples int, seed uint64) float64 {
	ConfigureWarmStates(-1)
	defer ConfigureWarmStates(DefaultWarmStateEntries)
	sys := topo.NewSystem(cfg)
	return BufferLatency(sys, sys.Path(device), bufBytes, samples, seed).Nanoseconds()
}

// warmPoint measures the same operating point through the warm-state cache
// on a fresh system.
func warmPoint(cfg topo.Config, device string, bufBytes int64, samples int, seed uint64) float64 {
	sys := topo.NewSystem(cfg)
	return BufferLatency(sys, sys.Path(device), bufBytes, samples, seed).Nanoseconds()
}

// TestWarmStateByteIdentical pins the warm-state cache's core contract for
// every fig5/ablation-llc operating point: the first (miss, memoizing) run
// and the second (hit, snapshot-restoring) run both produce exactly the
// cold-path value.
func TestWarmStateByteIdentical(t *testing.T) {
	noBreak := topo.DefaultConfig()
	noBreak.CXLBreaksSNCIsolation = false
	points := []struct {
		name   string
		cfg    topo.Config
		device string
		buf    int64
	}{
		// The fig5 rows; CXL-A at the experiments' real 32 MB buffer (it is
		// also ablation-llc's isolation-broken row — the shared key).
		{"fig5-ddr", topo.DefaultConfig(), "DDR5-L", 4 << 20},
		{"fig5-cxl-32mb", topo.DefaultConfig(), "CXL-A", 32 << 20},
		// ablation-llc's isolation-kept row.
		{"ablation-nobreak", noBreak, "CXL-A", 4 << 20},
	}
	const samples = 2000
	for i, p := range points {
		seed := uint64(9000 + i)
		cold := coldBuffer(p.cfg, p.device, p.buf, samples, seed)
		before := WarmStateStats()
		miss := warmPoint(p.cfg, p.device, p.buf, samples, seed)
		hit := warmPoint(p.cfg, p.device, p.buf, samples, seed)
		after := WarmStateStats()
		if miss != cold || hit != cold {
			t.Errorf("%s: cold %v, miss-run %v, hit-run %v — want all identical",
				p.name, cold, miss, hit)
		}
		if after.Hits-before.Hits < 1 {
			t.Errorf("%s: no warm-state hit recorded (hits %d -> %d)",
				p.name, before.Hits, after.Hits)
		}
	}
}

// TestWarmStateSharedKey pins that fig5's CXL-A point and ablation-llc's
// isolation-broken point memoize under one key: both build DefaultConfig
// systems and measure CXL-A with the same seed, so the second experiment
// restores the first one's warmup.
func TestWarmStateSharedKey(t *testing.T) {
	sysFig5 := topo.NewSystem(topo.DefaultConfig())
	ablCfg := topo.DefaultConfig()
	ablCfg.CXLBreaksSNCIsolation = true // ablation-llc's explicit broken row
	sysAbl := topo.NewSystem(ablCfg)
	const buf, seed = 2 << 20, uint64(9100)
	homeFig := sysFig5.HomeFor(sysFig5.Path("CXL-A"), 0)
	homeAbl := sysAbl.HomeFor(sysAbl.Path("CXL-A"), 0)
	k1 := warmKey(sysFig5.Hier.Config(), homeFig, buf/64, seed, WarmupExact)
	k2 := warmKey(sysAbl.Hier.Config(), homeAbl, buf/64, seed, WarmupExact)
	if k1 != k2 {
		t.Fatalf("fig5 and ablation-llc keys differ:\n%s\n%s", k1, k2)
	}

	before := WarmStateStats()
	a := BufferLatency(sysFig5, sysFig5.Path("CXL-A"), buf, 1000, seed).Nanoseconds()
	b := BufferLatency(sysAbl, sysAbl.Path("CXL-A"), buf, 1000, seed).Nanoseconds()
	after := WarmStateStats()
	if a != b {
		t.Errorf("shared-key measurements diverge: %v vs %v", a, b)
	}
	if after.Hits-before.Hits < 1 {
		t.Errorf("second experiment did not hit the shared key (hits %d -> %d)",
			before.Hits, after.Hits)
	}
}

// TestWarmStateEvictionPressure runs five distinct operating points through
// a four-entry cache: entries must evict, and every re-measurement — hit or
// recompute — must still equal its cold reference.
func TestWarmStateEvictionPressure(t *testing.T) {
	ConfigureWarmStates(4)
	defer ConfigureWarmStates(DefaultWarmStateEntries)
	const buf, samples = 256 << 10, 500
	cold := make([]float64, 5)
	for i := range cold {
		cold[i] = coldBuffer(topo.DefaultConfig(), "DDR5-L", buf, samples, uint64(9200+i))
		// coldBuffer resets the budget to the default; re-pin the pressure.
		ConfigureWarmStates(4)
	}
	before := WarmStateStats()
	for round := 0; round < 2; round++ {
		for i := range cold {
			got := warmPoint(topo.DefaultConfig(), "DDR5-L", buf, samples, uint64(9200+i))
			if got != cold[i] {
				t.Errorf("round %d point %d: %v, want cold %v", round, i, got, cold[i])
			}
		}
	}
	after := WarmStateStats()
	if after.Size > 4 {
		t.Errorf("cache size %d exceeds the 4-entry budget", after.Size)
	}
	if after.Evictions == before.Evictions {
		t.Error("five keys through a four-entry cache evicted nothing")
	}
}

// TestWarmStateCanceledNeverCached pins cancellation hygiene: a warmup whose
// context dies mid-stream unwinds as a panic carrying the context error and
// leaves no cache entry, and the next (live) measurement of the same point
// still produces the cold value.
func TestWarmStateCanceledNeverCached(t *testing.T) {
	// 8 MB buffer: the warmup spans multiple address chunks, so the
	// between-chunk context check must fire before it can complete.
	const buf, samples, seed = 8 << 20, 1000, uint64(9300)
	cold := coldBuffer(topo.DefaultConfig(), "DDR5-L", buf, samples, seed)

	baseline := WarmStateStats().Size
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys := topo.NewSystem(topo.DefaultConfig())
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("canceled warmup did not panic")
			} else if err, ok := r.(error); !ok || !canceled(err) {
				t.Errorf("canceled warmup panicked %v, want a context error", r)
			}
		}()
		BufferLatencyOpt(sys, sys.Path("DDR5-L"), buf, samples, seed, StreamOptions{Ctx: ctx})
	}()

	// The orphaned computation notices the cancellation at its next chunk
	// boundary and its entry is dropped, never retained.
	deadline := time.Now().Add(5 * time.Second)
	for WarmStateStats().InFlight > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if s := WarmStateStats(); s.InFlight > 0 {
		t.Fatalf("canceled warmup still in flight after 5s: %+v", s)
	}
	if s := WarmStateStats(); s.Size > baseline {
		t.Errorf("canceled warmup was retained: size %d > baseline %d", s.Size, baseline)
	}

	if got := warmPoint(topo.DefaultConfig(), "DDR5-L", buf, samples, seed); got != cold {
		t.Errorf("post-cancellation measurement %v, want cold %v", got, cold)
	}
}
