// Package mlc reimplements the measurement semantics of Intel Memory Latency
// Checker (MLC) against the simulated system (paper §3.2):
//
//   - idle latency: a pointer chase — each load's address depends on the
//     previous load's value, so accesses are fully serialized — over a buffer
//     larger than the total LLC, forcing every access to memory;
//   - loaded bandwidth: all cores issue sequential streams at a given
//     read:write ratio, measuring the delivered fraction of the device's
//     theoretical peak (the paper's "bandwidth efficiency" metric, Fig. 4a);
//   - buffer latency: average latency of random accesses within a buffer of
//     a chosen size, which exposes the SNC/LLC interaction of §4.3 (Fig. 5).
//
// The measurement loops are streamed: addresses are generated in batches and
// driven through cache.Hierarchy.ReadStream, which accumulates a per-level
// hit histogram; the average latency is computed once per level at the end.
// Because every access at a level contributes the same integer
// path.HitLatency, the histogram arithmetic is exactly the historical
// per-access sum.
package mlc

import (
	"math"

	"cxlmem/internal/cache"
	"cxlmem/internal/mem"
	"cxlmem/internal/sim"
	"cxlmem/internal/topo"
)

// batchLines is the streamed loops' address-batch size: large enough to
// amortize the per-batch call, small enough to stay in L1 of the host.
const batchLines = 4096

// streamTotal converts a per-level hit histogram into the total simulated
// latency — identical arithmetic to summing path.HitLatency per access,
// performed once per level.
func streamTotal(path *topo.Path, counts *cache.LevelCounts) sim.Time {
	var total sim.Time
	for lvl := cache.L1; lvl <= cache.Memory; lvl++ {
		total += sim.Time(counts[lvl]) * path.HitLatency(lvl)
	}
	return total
}

// IdleLatency measures the serialized (pointer-chase) load latency to the
// device behind path. The chase follows a shuffled single-cycle permutation
// (Sattolo's algorithm, deterministic from seed) over a buffer twice the
// LLC: each load's address is the pointer the previous load returned —
// MLC's shuffled-pointer buffer — so in steady state essentially every
// access misses the hierarchy and pays the full serial path latency.
func IdleLatency(sys *topo.System, path *topo.Path, steps int, seed uint64) sim.Time {
	if steps <= 0 {
		panic("mlc: non-positive step count")
	}
	hier := sys.Hier
	home := sys.HomeFor(path, 0)
	bufBytes := int64(2) * int64(hier.Config().Cores) * hier.Config().LLCSliceBytes
	lines := int(bufBytes / cache.LineBytes)

	// Build the chase: next[i] is the line the load of line i points at.
	// Sattolo's shuffle yields a single cycle covering the whole buffer, so
	// the chase cannot trap itself in a short cache-resident loop.
	rng := sim.NewRng(seed)
	next := make([]uint32, lines)
	for i := range next {
		next[i] = uint32(i)
	}
	for i := lines - 1; i > 0; i-- {
		j := rng.Intn(i)
		next[i], next[j] = next[j], next[i]
	}

	var counts cache.LevelCounts
	batch := make([]uint64, batchLines)
	idx := uint32(0)
	for remaining := steps; remaining > 0; {
		n := min(remaining, batchLines)
		b := batch[:n]
		for i := range b {
			b[i] = uint64(idx) * cache.LineBytes
			idx = next[idx]
		}
		hier.ReadStream(0, b, home, &counts)
		remaining -= n
	}
	return streamTotal(path, &counts) / sim.Time(steps)
}

// Warmup selects how BufferLatency brings the hierarchy to steady state
// before sampling.
type Warmup int

const (
	// WarmupExact replays the historical fixed warmup — six buffer passes'
	// worth of random touches — so results are byte-identical to the
	// pre-engine-rebuild goldens.
	WarmupExact Warmup = iota
	// WarmupConverged warms epoch by epoch (one buffer pass each) and stops
	// as soon as the LLC hit rate changes by less than WarmTolerance
	// between consecutive epochs, capped at WarmMaxPasses. Same steady
	// state, fewer simulated accesses when the working set settles early.
	WarmupConverged
)

const (
	// WarmTolerance is the epoch-over-epoch LLC hit-rate delta under which
	// WarmupConverged declares steady state.
	WarmTolerance = 0.01
	// WarmMaxPasses bounds WarmupConverged on working sets that never
	// settle (matching WarmupExact's fixed six passes).
	WarmMaxPasses = 6
)

// BufferLatency measures the average latency of random accesses within a
// buffer of bufBytes homed on path's device — the §4.3 experiment: a 32 MB
// buffer fits the socket-wide LLC when homed on CXL memory but overflows a
// single SNC node's slices when homed on local DDR. It uses WarmupExact.
func BufferLatency(sys *topo.System, path *topo.Path, bufBytes int64, samples int, seed uint64) sim.Time {
	return BufferLatencyWarm(sys, path, bufBytes, samples, seed, WarmupExact)
}

// BufferLatencyWarm is BufferLatency with an explicit warmup policy.
func BufferLatencyWarm(sys *topo.System, path *topo.Path, bufBytes int64, samples int, seed uint64, warm Warmup) sim.Time {
	if samples <= 0 || bufBytes < cache.LineBytes {
		panic("mlc: invalid buffer latency parameters")
	}
	hier := sys.Hier
	home := sys.HomeFor(path, 0)
	lines := bufBytes / cache.LineBytes
	rng := sim.NewRng(seed)

	batch := make([]uint64, batchLines)
	// fill draws the next n random line addresses from the measurement's
	// single RNG stream (same stream and order as the historical scalar
	// loop consumed).
	fill := func(n int) []uint64 {
		b := batch[:n]
		for i := range b {
			b[i] = uint64(rng.Int63n(lines)) * cache.LineBytes
		}
		return b
	}
	// pass streams one buffer's worth (or an arbitrary count) of random
	// touches, returning the pass's own level histogram.
	pass := func(accesses int) cache.LevelCounts {
		var c cache.LevelCounts
		for remaining := accesses; remaining > 0; {
			n := min(remaining, batchLines)
			hier.ReadStream(0, fill(n), home, &c)
			remaining -= n
		}
		return c
	}

	switch warm {
	case WarmupExact:
		pass(int(lines) * WarmMaxPasses)
	case WarmupConverged:
		prev := math.Inf(-1)
		for i := 0; i < WarmMaxPasses; i++ {
			c := pass(int(lines))
			hitRate := float64(c[cache.LLC]) / float64(lines)
			if math.Abs(hitRate-prev) < WarmTolerance {
				break
			}
			prev = hitRate
		}
	default:
		panic("mlc: unknown warmup mode")
	}

	counts := pass(samples)
	return streamTotal(path, &counts) / sim.Time(samples)
}

// BandwidthResult reports one loaded-bandwidth measurement.
type BandwidthResult struct {
	// AchievedGBs is the delivered bandwidth.
	AchievedGBs float64
	// Efficiency is AchievedGBs over the device's theoretical peak — the
	// y-axis of Fig. 4.
	Efficiency float64
}

// LoadedBandwidth measures the maximum sequential bandwidth at the given
// read:write mix: every core streams, offering far more demand than any
// device can serve, so the result is capacity at that mix.
func LoadedBandwidth(path *topo.Path, mix mem.MixPoint) BandwidthResult {
	dev := path.Device
	window := sim.Millisecond
	wf := mix.WriteFraction()
	// Offer 10× the theoretical peak so the device saturates.
	offered := dev.PeakGBs() * window.Nanoseconds() * 10
	served := dev.Serve(mem.Demand{
		ReadBytes:  offered * (1 - wf),
		WriteBytes: offered * wf,
	}, window)
	achieved := served.Total() / window.Nanoseconds()
	return BandwidthResult{
		AchievedGBs: achieved,
		Efficiency:  achieved / dev.PeakGBs(),
	}
}

// MixSweep measures loaded bandwidth at every Fig. 4a mix point.
func MixSweep(path *topo.Path) map[mem.MixPoint]BandwidthResult {
	out := make(map[mem.MixPoint]BandwidthResult, 4)
	for _, m := range mem.MixPoints() {
		out[m] = LoadedBandwidth(path, m)
	}
	return out
}
