// Package mlc reimplements the measurement semantics of Intel Memory Latency
// Checker (MLC) against the simulated system (paper §3.2):
//
//   - idle latency: a pointer chase — each load's address depends on the
//     previous load's value, so accesses are fully serialized — over a buffer
//     larger than the total LLC, forcing every access to memory;
//   - loaded bandwidth: all cores issue sequential streams at a given
//     read:write ratio, measuring the delivered fraction of the device's
//     theoretical peak (the paper's "bandwidth efficiency" metric, Fig. 4a);
//   - buffer latency: average latency of random accesses within a buffer of
//     a chosen size, which exposes the SNC/LLC interaction of §4.3 (Fig. 5).
package mlc

import (
	"cxlmem/internal/cache"
	"cxlmem/internal/mem"
	"cxlmem/internal/sim"
	"cxlmem/internal/topo"
)

// IdleLatency measures the serialized (pointer-chase) load latency to the
// device behind path. The chase walks a shuffled permutation over a buffer
// twice the LLC so that, in steady state, essentially every access misses
// the hierarchy and pays the full serial path latency.
func IdleLatency(sys *topo.System, path *topo.Path, steps int, seed uint64) sim.Time {
	if steps <= 0 {
		panic("mlc: non-positive step count")
	}
	hier := sys.Hier
	home := sys.HomeFor(path, 0)
	bufBytes := int64(2) * int64(hier.Config().Cores) * hier.Config().LLCSliceBytes
	lines := bufBytes / cache.LineBytes

	rng := sim.NewRng(seed)
	var total sim.Time
	// Random chase: the next address is a pseudo-random function of the
	// step, matching MLC's shuffled-pointer buffer initialization.
	addr := uint64(rng.Int63n(lines)) * cache.LineBytes
	for i := 0; i < steps; i++ {
		level := hier.Access(0, addr, home, false)
		total += path.HitLatency(level)
		addr = uint64(rng.Int63n(lines)) * cache.LineBytes
	}
	return total / sim.Time(steps)
}

// BufferLatency measures the average latency of random accesses within a
// buffer of bufBytes homed on path's device — the §4.3 experiment: a 32 MB
// buffer fits the socket-wide LLC when homed on CXL memory but overflows a
// single SNC node's slices when homed on local DDR.
func BufferLatency(sys *topo.System, path *topo.Path, bufBytes int64, samples int, seed uint64) sim.Time {
	if samples <= 0 || bufBytes < cache.LineBytes {
		panic("mlc: invalid buffer latency parameters")
	}
	hier := sys.Hier
	home := sys.HomeFor(path, 0)
	lines := bufBytes / cache.LineBytes
	rng := sim.NewRng(seed)

	// Warm the hierarchy: several passes' worth of random touches.
	warm := int(lines) * 6
	for i := 0; i < warm; i++ {
		hier.Access(0, uint64(rng.Int63n(lines))*cache.LineBytes, home, false)
	}
	var total sim.Time
	for i := 0; i < samples; i++ {
		level := hier.Access(0, uint64(rng.Int63n(lines))*cache.LineBytes, home, false)
		total += path.HitLatency(level)
	}
	return total / sim.Time(samples)
}

// BandwidthResult reports one loaded-bandwidth measurement.
type BandwidthResult struct {
	// AchievedGBs is the delivered bandwidth.
	AchievedGBs float64
	// Efficiency is AchievedGBs over the device's theoretical peak — the
	// y-axis of Fig. 4.
	Efficiency float64
}

// LoadedBandwidth measures the maximum sequential bandwidth at the given
// read:write mix: every core streams, offering far more demand than any
// device can serve, so the result is capacity at that mix.
func LoadedBandwidth(path *topo.Path, mix mem.MixPoint) BandwidthResult {
	dev := path.Device
	window := sim.Millisecond
	wf := mix.WriteFraction()
	// Offer 10× the theoretical peak so the device saturates.
	offered := dev.PeakGBs() * window.Nanoseconds() * 10
	served := dev.Serve(mem.Demand{
		ReadBytes:  offered * (1 - wf),
		WriteBytes: offered * wf,
	}, window)
	achieved := served.Total() / window.Nanoseconds()
	return BandwidthResult{
		AchievedGBs: achieved,
		Efficiency:  achieved / dev.PeakGBs(),
	}
}

// MixSweep measures loaded bandwidth at every Fig. 4a mix point.
func MixSweep(path *topo.Path) map[mem.MixPoint]BandwidthResult {
	out := make(map[mem.MixPoint]BandwidthResult, 4)
	for _, m := range mem.MixPoints() {
		out[m] = LoadedBandwidth(path, m)
	}
	return out
}
