// Package mlc reimplements the measurement semantics of Intel Memory Latency
// Checker (MLC) against the simulated system (paper §3.2):
//
//   - idle latency: a pointer chase — each load's address depends on the
//     previous load's value, so accesses are fully serialized — over a buffer
//     larger than the total LLC, forcing every access to memory;
//   - loaded bandwidth: all cores issue sequential streams at a given
//     read:write ratio, measuring the delivered fraction of the device's
//     theoretical peak (the paper's "bandwidth efficiency" metric, Fig. 4a);
//   - buffer latency: average latency of random accesses within a buffer of
//     a chosen size, which exposes the SNC/LLC interaction of §4.3 (Fig. 5).
//
// The measurement loops are streamed: addresses are generated in large
// chunks and driven through cache.Hierarchy.ReadStreamSharded, which
// partitions each chunk by set-index prefix, replays the shards (optionally
// across StreamOptions.Workers goroutines), and accumulates a per-level hit
// histogram; the average latency is computed once per level at the end.
// Sharding is byte-identical to the serial stream for every worker count
// (see internal/cache/stream.go), and because every access at a level
// contributes the same integer path.HitLatency, the histogram arithmetic is
// exactly the historical per-access sum.
//
// For far-from-knee operating points the analytic fast path (analytic.go)
// replaces simulation entirely; see DESIGN.md §12.
package mlc

import (
	"context"
	"math"

	"cxlmem/internal/cache"
	"cxlmem/internal/mem"
	"cxlmem/internal/sim"
	"cxlmem/internal/topo"
)

// chunkLines is the streamed loops' address-chunk size. Chunks are the unit
// the sharded stream engine partitions, so bigger is better — each shard's
// subsequence grows proportionally, and with it the host-cache locality of
// the shard replay — bounded here at 4 MB of addresses per chunk. Chunk
// boundaries never change results (TestReadStreamShardedChunkingInvariant).
const chunkLines = 512 << 10

// StreamOptions tunes how the measurement loops drive the cache hierarchy.
// The zero value reproduces the historical defaults. Every knob is
// throughput-only: measured values are byte-identical for any setting.
type StreamOptions struct {
	// Warm selects BufferLatency's warmup policy (WarmupExact default).
	Warm Warmup
	// Workers bounds the sharded stream engine's concurrent shard workers;
	// 0 uses every available CPU.
	Workers int
	// Chains is IdleLatency's independent pointer-chase chain count: the
	// buffer splits into Chains disjoint Sattolo cycles chased round-robin,
	// the loaded-latency shape real MLC measures with. 0 or 1 keeps the
	// single fully-dependent chase (the idle-latency contract).
	Chains int
	// Ctx bounds BufferLatency's warmup: it is checked between address
	// chunks, and a cancellation unwinds as a panic carrying Ctx's error
	// (the sweep engine's convention — experiments.recoverAsErr restores
	// it). A canceled warmup is never retained by the warm-state cache.
	// nil means uncancellable.
	Ctx context.Context
}

// context resolves Ctx, nil meaning uncancellable.
func (o StreamOptions) context() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// streamTotal converts a per-level hit histogram into the total simulated
// latency — identical arithmetic to summing path.HitLatency per access,
// performed once per level.
func streamTotal(path *topo.Path, counts *cache.LevelCounts) sim.Time {
	var total sim.Time
	for lvl := cache.L1; lvl <= cache.Memory; lvl++ {
		total += sim.Time(counts[lvl]) * path.HitLatency(lvl)
	}
	return total
}

// IdleLatency measures the serialized (pointer-chase) load latency to the
// device behind path. The chase follows a shuffled single-cycle permutation
// (Sattolo's algorithm, deterministic from seed) over a buffer twice the
// LLC: each load's address is the pointer the previous load returned —
// MLC's shuffled-pointer buffer — so in steady state essentially every
// access misses the hierarchy and pays the full serial path latency.
func IdleLatency(sys *topo.System, path *topo.Path, steps int, seed uint64) sim.Time {
	return IdleLatencyOpt(sys, path, steps, seed, StreamOptions{})
}

// IdleLatencyOpt is IdleLatency with explicit StreamOptions. With Chains > 1
// the buffer splits into Chains contiguous ranges, each shuffled into its own
// Sattolo cycle and chased round-robin — the concurrent-chain loaded-latency
// shape real MLC measures with. The chains touch disjoint lines, so the
// steady-state miss behaviour (every access past the LLC) is unchanged; what
// changes is that the address stream is known Chains steps ahead, which is
// what lets the sharded engine batch it.
func IdleLatencyOpt(sys *topo.System, path *topo.Path, steps int, seed uint64, o StreamOptions) sim.Time {
	if steps <= 0 {
		panic("mlc: non-positive step count")
	}
	hier := sys.Hier
	home := sys.HomeFor(path, 0)
	bufBytes := int64(2) * int64(hier.Config().Cores) * hier.Config().LLCSliceBytes
	lines := int(bufBytes / cache.LineBytes)
	chains := o.Chains
	if chains <= 0 {
		chains = 1
	}
	if chains > lines {
		chains = lines
	}

	// Build the chase: next[i] is the line the load of line i points at.
	// Each chain owns one contiguous range of the buffer shuffled into a
	// single cycle (Sattolo), so no chain can trap itself in a short
	// cache-resident loop. Chain 0 shuffles with the base RNG stream
	// directly: at Chains <= 1 the permutation — and so the measurement —
	// is bit-identical to the historical single-chain chase
	// (TestIdleLatencyChainsOneMatchesSerial).
	rng := sim.NewRng(seed)
	next := make([]uint32, lines)
	for i := range next {
		next[i] = uint32(i)
	}
	cursors := make([]uint32, chains)
	for c := 0; c < chains; c++ {
		base, end := c*lines/chains, (c+1)*lines/chains
		cr := rng
		if c > 0 {
			cr = rng.Split()
		}
		for i := end - base - 1; i > 0; i-- {
			j := cr.Intn(i)
			next[base+i], next[base+j] = next[base+j], next[base+i]
		}
		cursors[c] = uint32(base)
	}

	var counts cache.LevelCounts
	chunk := make([]uint64, min(steps, chunkLines))
	t := 0
	for remaining := steps; remaining > 0; {
		n := min(remaining, chunkLines)
		b := chunk[:n]
		for i := range b {
			c := t % chains
			idx := cursors[c]
			b[i] = uint64(idx) * cache.LineBytes
			cursors[c] = next[idx]
			t++
		}
		hier.ReadStreamSharded(0, b, home, &counts, o.Workers)
		remaining -= n
	}
	return streamTotal(path, &counts) / sim.Time(steps)
}

// Warmup selects how BufferLatency brings the hierarchy to steady state
// before sampling.
type Warmup int

const (
	// WarmupExact replays the historical fixed warmup — six buffer passes'
	// worth of random touches — so results are byte-identical to the
	// pre-engine-rebuild goldens.
	WarmupExact Warmup = iota
	// WarmupConverged warms epoch by epoch (one buffer pass each) and stops
	// as soon as the LLC hit rate changes by less than WarmTolerance
	// between consecutive epochs, capped at WarmMaxPasses. Same steady
	// state, fewer simulated accesses when the working set settles early.
	WarmupConverged
)

const (
	// WarmTolerance is the epoch-over-epoch LLC hit-rate delta under which
	// WarmupConverged declares steady state.
	WarmTolerance = 0.01
	// WarmMaxPasses bounds WarmupConverged on working sets that never
	// settle (matching WarmupExact's fixed six passes).
	WarmMaxPasses = 6
)

// BufferLatency measures the average latency of random accesses within a
// buffer of bufBytes homed on path's device — the §4.3 experiment: a 32 MB
// buffer fits the socket-wide LLC when homed on CXL memory but overflows a
// single SNC node's slices when homed on local DDR. It uses WarmupExact.
func BufferLatency(sys *topo.System, path *topo.Path, bufBytes int64, samples int, seed uint64) sim.Time {
	return BufferLatencyOpt(sys, path, bufBytes, samples, seed, StreamOptions{})
}

// BufferLatencyWarm is BufferLatency with an explicit warmup policy.
func BufferLatencyWarm(sys *topo.System, path *topo.Path, bufBytes int64, samples int, seed uint64, warm Warmup) sim.Time {
	return BufferLatencyOpt(sys, path, bufBytes, samples, seed, StreamOptions{Warm: warm})
}

// runWarmup brings hier to the buffer measurement's steady state, drawing
// the warmup stream from rng (which is left positioned at the start of the
// measurement stream). It is the single warmup implementation: the inline
// path and the warm-state cache's compute path both call it, so a restored
// snapshot is byte-identical to a cold warmup by construction. ctx is
// checked between address chunks; the only error returned is ctx's.
func runWarmup(ctx context.Context, hier *cache.Hierarchy, home cache.Home, lines int64, rng *sim.Rng, warm Warmup, workers int) error {
	chunk := make([]uint64, chunkLines)
	// pass streams one buffer's worth (or an arbitrary count) of random
	// touches, returning the pass's own level histogram.
	pass := func(accesses int) (cache.LevelCounts, error) {
		var c cache.LevelCounts
		for remaining := accesses; remaining > 0; {
			if err := ctx.Err(); err != nil {
				return c, err
			}
			n := min(remaining, chunkLines)
			b := chunk[:n]
			for i := range b {
				b[i] = uint64(rng.Int63n(lines)) * cache.LineBytes
			}
			hier.ReadStreamSharded(0, b, home, &c, workers)
			remaining -= n
		}
		return c, nil
	}

	switch warm {
	case WarmupExact:
		_, err := pass(int(lines) * WarmMaxPasses)
		return err
	case WarmupConverged:
		prev := math.Inf(-1)
		for i := 0; i < WarmMaxPasses; i++ {
			c, err := pass(int(lines))
			if err != nil {
				return err
			}
			hitRate := float64(c[cache.LLC]) / float64(lines)
			if math.Abs(hitRate-prev) < WarmTolerance {
				break
			}
			prev = hitRate
		}
		return nil
	default:
		panic("mlc: unknown warmup mode")
	}
}

// BufferLatencyOpt is BufferLatency with explicit StreamOptions. Random
// accesses are already independent of each other, so the whole warmup and
// measurement stream is generated ahead of the simulation in large chunks
// and driven through the sharded engine; Chains has no effect here. The
// warmup goes through the warm-state snapshot cache (warmstate.go) when the
// hierarchy is pristine: repeated operating points restore the memoized
// warmed state instead of re-simulating millions of warmup accesses.
func BufferLatencyOpt(sys *topo.System, path *topo.Path, bufBytes int64, samples int, seed uint64, o StreamOptions) sim.Time {
	if samples <= 0 || bufBytes < cache.LineBytes {
		panic("mlc: invalid buffer latency parameters")
	}
	hier := sys.Hier
	home := sys.HomeFor(path, 0)
	lines := bufBytes / cache.LineBytes

	// rng comes back positioned at the start of the measurement stream,
	// whether the warmup was simulated or restored from a snapshot.
	rng := warmBuffer(o.context(), hier, home, lines, seed, o)

	chunk := make([]uint64, chunkLines)
	var counts cache.LevelCounts
	for remaining := samples; remaining > 0; {
		n := min(remaining, chunkLines)
		b := chunk[:n]
		for i := range b {
			b[i] = uint64(rng.Int63n(lines)) * cache.LineBytes
		}
		hier.ReadStreamSharded(0, b, home, &counts, o.Workers)
		remaining -= n
	}
	return streamTotal(path, &counts) / sim.Time(samples)
}

// BandwidthResult reports one loaded-bandwidth measurement.
type BandwidthResult struct {
	// AchievedGBs is the delivered bandwidth.
	AchievedGBs float64
	// Efficiency is AchievedGBs over the device's theoretical peak — the
	// y-axis of Fig. 4.
	Efficiency float64
}

// LoadedBandwidth measures the maximum sequential bandwidth at the given
// read:write mix: every core streams, offering far more demand than any
// device can serve, so the result is capacity at that mix.
func LoadedBandwidth(path *topo.Path, mix mem.MixPoint) BandwidthResult {
	dev := path.Device
	window := sim.Millisecond
	wf := mix.WriteFraction()
	// Offer 10× the theoretical peak so the device saturates.
	offered := dev.PeakGBs() * window.Nanoseconds() * 10
	served := dev.Serve(mem.Demand{
		ReadBytes:  offered * (1 - wf),
		WriteBytes: offered * wf,
	}, window)
	achieved := served.Total() / window.Nanoseconds()
	return BandwidthResult{
		AchievedGBs: achieved,
		Efficiency:  achieved / dev.PeakGBs(),
	}
}

// MixSweep measures loaded bandwidth at every Fig. 4a mix point.
func MixSweep(path *topo.Path) map[mem.MixPoint]BandwidthResult {
	out := make(map[mem.MixPoint]BandwidthResult, 4)
	for _, m := range mem.MixPoints() {
		out[m] = LoadedBandwidth(path, m)
	}
	return out
}
