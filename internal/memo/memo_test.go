package memo

import (
	"math"
	"testing"

	"cxlmem/internal/mem"
	"cxlmem/internal/topo"
)

func TestInstrLatencyMedianRejectsOutliers(t *testing.T) {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	p := sys.Path("CXL-A")
	cfg := DefaultConfig()
	got := InstrLatency(p, mem.Load, cfg).Nanoseconds()
	want := p.ParallelLatency(mem.Load).Nanoseconds()
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("median latency %.1f ns deviates from ideal %.1f ns", got, want)
	}
}

func TestInstrLatencyDeterministic(t *testing.T) {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	p := sys.Path("DDR5-R")
	a := InstrLatency(p, mem.Store, DefaultConfig())
	b := InstrLatency(p, mem.Store, DefaultConfig())
	if a != b {
		t.Errorf("same-seed measurements differ: %v vs %v", a, b)
	}
}

func TestAllLatenciesShape(t *testing.T) {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	for _, p := range sys.Paths() {
		lat := AllLatencies(p, DefaultConfig())
		if len(lat) != 4 {
			t.Fatalf("%s: %d instruction types", p.Name, len(lat))
		}
		if lat[mem.Store] <= lat[mem.Load] {
			t.Errorf("%s: st should exceed ld", p.Name)
		}
		if lat[mem.NTStore] >= lat[mem.Store] {
			t.Errorf("%s: nt-st should beat st", p.Name)
		}
	}
}

func TestFig3MemoRelations(t *testing.T) {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	cfg := DefaultConfig()
	r := InstrLatency(sys.Path("DDR5-R"), mem.Load, cfg).Nanoseconds()
	a := InstrLatency(sys.Path("CXL-A"), mem.Load, cfg).Nanoseconds()
	b := InstrLatency(sys.Path("CXL-B"), mem.Load, cfg).Nanoseconds()
	c := InstrLatency(sys.Path("CXL-C"), mem.Load, cfg).Nanoseconds()
	if ratio := a / r; math.Abs(ratio-1.35) > 0.12 {
		t.Errorf("CXL-A/DDR5-R ld = %.2f, want ~1.35 (§4.1)", ratio)
	}
	if ratio := b / r; math.Abs(ratio-2.0) > 0.3 {
		t.Errorf("CXL-B/DDR5-R ld = %.2f, want ~2 (O2)", ratio)
	}
	if ratio := c / r; math.Abs(ratio-3.0) > 0.4 {
		t.Errorf("CXL-C/DDR5-R ld = %.2f, want ~3 (O2)", ratio)
	}
	// nt-st: CXL-A ~25% below DDR5-R.
	ntA := InstrLatency(sys.Path("CXL-A"), mem.NTStore, cfg).Nanoseconds()
	ntR := InstrLatency(sys.Path("DDR5-R"), mem.NTStore, cfg).Nanoseconds()
	if red := 1 - ntA/ntR; red < 0.12 || red > 0.38 {
		t.Errorf("nt-st reduction CXL-A vs DDR5-R = %.2f, want ~0.25", red)
	}
}

func TestInstrBandwidthMatchesEfficiencyTables(t *testing.T) {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	for _, p := range sys.ComparisonPaths() {
		bw := AllBandwidths(p)
		for _, ty := range mem.InstrTypes() {
			if math.Abs(bw[ty].Efficiency-p.Device.EffInstr(ty)) > 1e-12 {
				t.Errorf("%s %v efficiency mismatch", p.Name, ty)
			}
			want := p.Device.PeakGBs() * p.Device.EffInstr(ty)
			if math.Abs(bw[ty].AchievedGBs-want) > 1e-9 {
				t.Errorf("%s %v achieved mismatch", p.Name, ty)
			}
		}
	}
}

func TestInstrLatencyPanicsOnBadTrials(t *testing.T) {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	InstrLatency(sys.DDRLocal, mem.Load, Config{Trials: 0})
}
