package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheBoundedChurn is the bounded-cache acceptance check: a keyspace
// 10x the entry budget churns through the cache; residency never exceeds
// the budget, the frequently-revisited hot keys stay resident (their hit
// rate clears a pinned floor), and every returned value stays correct
// through eviction/recompute cycles.
func TestCacheBoundedChurn(t *testing.T) {
	const (
		budget   = 8
		keyspace = 80
		rounds   = 50
	)
	c := NewCacheWith(CacheConfig{MaxEntries: budget})
	computes := make(map[string]int)
	get := func(key string) {
		v, err := c.Do(key, func() (any, error) {
			computes[key]++
			return "v:" + key, nil
		})
		if err != nil || v.(string) != "v:"+key {
			t.Fatalf("Do(%q) = %v, %v", key, v, err)
		}
		if n := c.Len(); n > budget {
			t.Fatalf("cache size %d exceeds budget %d", n, budget)
		}
	}
	hot := []string{"hot-a", "hot-b", "hot-c", "hot-d"}
	cold := 0
	for r := 0; r < rounds; r++ {
		for _, h := range hot {
			get(h)
		}
		// Two fresh cold keys per round churn the tail.
		for i := 0; i < 2; i++ {
			get(fmt.Sprintf("cold-%d", cold%keyspace))
			cold++
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("churn produced no evictions")
	}
	if st.Size > budget {
		t.Errorf("final size %d exceeds budget %d", st.Size, budget)
	}
	// Hot keys were requested rounds times each; eviction must have kept
	// them resident nearly always. Floor: at most 3 recomputes per hot key
	// (hit rate >= 94%).
	for _, h := range hot {
		if computes[h] > 3 {
			t.Errorf("hot key %q recomputed %d times; eviction is not hotness-aware", h, computes[h])
		}
	}
}

// TestCacheEvictionPrefersCold pins the policy at minimal scale: with a
// budget of 2, a frequently-hit key survives the insertion of a new key and
// the one-shot key is the victim.
func TestCacheEvictionPrefersCold(t *testing.T) {
	c := NewCacheWith(CacheConfig{MaxEntries: 2})
	var aComputes atomic.Int64
	getA := func() {
		if _, err := c.Do("a", func() (any, error) { aComputes.Add(1); return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	getA()
	for i := 0; i < 5; i++ {
		getA() // heat key a
	}
	if _, err := c.Do("b", func() (any, error) { return 2, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("c", func() (any, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
	// b (cold, least frequent) must have been evicted, not a.
	getA()
	if aComputes.Load() != 1 {
		t.Errorf("hot key recomputed %d times; the cold key should have been evicted", aComputes.Load())
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

// TestCacheTTL expires entries through an injected clock.
func TestCacheTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	c := NewCacheWith(CacheConfig{TTL: time.Minute, Now: clock})
	calls := 0
	get := func() {
		if _, err := c.Do("k", func() (any, error) { calls++; return calls, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get()
	advance(30 * time.Second)
	get() // still fresh
	if calls != 1 {
		t.Fatalf("fresh entry recomputed (%d calls)", calls)
	}
	advance(31 * time.Second) // 61s after completion
	get()
	if calls != 2 {
		t.Fatalf("expired entry not recomputed (%d calls)", calls)
	}
	if st := c.Stats(); st.Expirations != 1 {
		t.Errorf("expirations = %d, want 1", st.Expirations)
	}
}

// TestCacheInvalidate covers single-key and predicate invalidation.
func TestCacheInvalidate(t *testing.T) {
	c := NewCache()
	calls := map[string]int{}
	get := func(key string) {
		if _, err := c.Do(key, func() (any, error) { calls[key]++; return key, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get("keep")
	get("drop-1")
	get("drop-2")
	if c.Invalidate("missing") {
		t.Error("Invalidate of absent key reported true")
	}
	if !c.Invalidate("drop-1") {
		t.Error("Invalidate of resident key reported false")
	}
	if n := c.InvalidateFunc(func(key string) bool { return key == "drop-2" }); n != 1 {
		t.Errorf("InvalidateFunc dropped %d, want 1", n)
	}
	get("keep")
	get("drop-1")
	get("drop-2")
	if calls["keep"] != 1 || calls["drop-1"] != 2 || calls["drop-2"] != 2 {
		t.Errorf("compute counts = %v, want keep:1 drop-1:2 drop-2:2", calls)
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", st.Invalidations)
	}
}

// TestCacheCancelNotRetained proves a canceled computation is not cached:
// the caller gets ctx.Err() immediately, the in-flight work's context fires
// once the last waiter leaves, and the next call recomputes successfully.
func TestCacheCancelNotRetained(t *testing.T) {
	c := NewCache()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	canceled := make(chan struct{})
	go func() {
		<-started
		cancel()
	}()
	_, err := c.DoCtx(ctx, "k", func(cctx context.Context) (any, error) {
		close(started)
		<-cctx.Done() // the refcount hitting zero must cancel us
		close(canceled)
		return nil, cctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned computation never saw cancellation")
	}
	// The canceled outcome must not be resident; a fresh call recomputes.
	v, err := c.Do("k", func() (any, error) { return "fresh", nil })
	if err != nil || v.(string) != "fresh" {
		t.Fatalf("recompute after cancel = %v, %v", v, err)
	}
}

// TestCacheSharedWaiterSurvivesCancel: when two callers share a key and one
// cancels, the computation keeps running for the survivor.
func TestCacheSharedWaiterSurvivesCancel(t *testing.T) {
	c := NewCache()
	inFlight := make(chan struct{})
	release := make(chan struct{})
	type res struct {
		v   any
		err error
	}
	second := make(chan res, 1)
	ctx1, cancel1 := context.WithCancel(context.Background())
	first := make(chan res, 1)
	go func() {
		v, err := c.DoCtx(ctx1, "k", func(cctx context.Context) (any, error) {
			close(inFlight)
			select {
			case <-release:
				return "done", nil
			case <-cctx.Done():
				return nil, cctx.Err()
			}
		})
		first <- res{v, err}
	}()
	<-inFlight
	go func() {
		v, err := c.DoCtx(context.Background(), "k", func(context.Context) (any, error) {
			t.Error("second caller started a duplicate computation")
			return nil, nil
		})
		second <- res{v, err}
	}()
	// Give the second caller a moment to join as a waiter, then cancel the
	// first: the computation must survive because a waiter remains.
	time.Sleep(20 * time.Millisecond)
	cancel1()
	r1 := <-first
	if !errors.Is(r1.err, context.Canceled) {
		t.Fatalf("canceled caller got %v, %v", r1.v, r1.err)
	}
	close(release)
	r2 := <-second
	if r2.err != nil || r2.v.(string) != "done" {
		t.Fatalf("surviving waiter got %v, %v", r2.v, r2.err)
	}
}

// TestCachePanicPropagatesUnretained: a panicking compute re-raises on the
// caller and leaves no poisoned entry behind.
func TestCachePanicPropagates(t *testing.T) {
	c := NewCache()
	got := func() (r any) {
		defer func() { r = recover() }()
		_, _ = c.Do("k", func() (any, error) { panic("boom") })
		return nil
	}()
	if got != "boom" {
		t.Fatalf("recovered %v, want boom", got)
	}
	if c.Len() != 0 {
		t.Fatalf("panicked entry retained (Len=%d)", c.Len())
	}
	v, err := c.Do("k", func() (any, error) { return "ok", nil })
	if err != nil || v.(string) != "ok" {
		t.Fatalf("recompute after panic = %v, %v", v, err)
	}
}

// TestCacheConcurrentChurn hammers a bounded cache from many goroutines
// (run under -race in CI): all results stay correct, the budget holds at
// quiescence and counters are consistent.
func TestCacheConcurrentChurn(t *testing.T) {
	const budget = 16
	c := NewCacheWith(CacheConfig{MaxEntries: budget})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i*13)%64)
				want := "v:" + key
				v, err := c.Do(key, func() (any, error) { return want, nil })
				if err != nil || v.(string) != want {
					t.Errorf("Do(%q) = %v, %v", key, v, err)
					return
				}
				if i%17 == 0 {
					c.Invalidate(key)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Size > budget {
		t.Errorf("size %d exceeds budget %d at quiescence", st.Size, budget)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight %d at quiescence", st.InFlight)
	}
	if st.Hits+st.Misses == 0 || st.Evictions == 0 {
		t.Errorf("implausible counters: %+v", st)
	}
}

// TestCacheConfigureShrinks: lowering the budget evicts down immediately.
func TestCacheConfigureShrinks(t *testing.T) {
	c := NewCache()
	for i := 0; i < 10; i++ {
		if _, err := c.Do(fmt.Sprintf("k%d", i), func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	c.Configure(CacheConfig{MaxEntries: 3})
	if n := c.Len(); n != 3 {
		t.Fatalf("Len after shrink = %d, want 3", n)
	}
	if st := c.Stats(); st.Evictions != 7 {
		t.Errorf("evictions = %d, want 7", st.Evictions)
	}
}

// TestCacheWaiterRetriesAfterCancel pins the no-inherited-cancellation
// guarantee: a waiter with a live context that joined a computation right
// as its other callers canceled it must not surface their context error —
// it recomputes on a fresh entry.
func TestCacheWaiterRetriesAfterCancel(t *testing.T) {
	c := NewCache()
	var calls atomic.Int64
	started := make(chan struct{})
	proceed := make(chan struct{})
	compute := func(cctx context.Context) (any, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-proceed
			return nil, cctx.Err() // canceled: caller A abandoned the key
		}
		return 42, nil
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	aErr := make(chan error, 1)
	go func() {
		_, err := c.DoCtx(ctxA, "k", compute)
		aErr <- err
	}()
	<-started
	cancelA()
	if err := <-aErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller A err = %v, want context.Canceled", err)
	}
	// Caller B joins while the canceled computation is still unwinding.
	bDone := make(chan struct{})
	var bVal any
	var bErr error
	go func() {
		defer close(bDone)
		bVal, bErr = c.DoCtx(context.Background(), "k", compute)
	}()
	// B joining the in-flight entry registers as a hit; wait for it before
	// letting the doomed computation publish its cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for c.Hits() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("caller B never joined the in-flight entry")
		}
	}
	close(proceed)
	<-bDone
	if bErr != nil || bVal != 42 {
		t.Fatalf("caller B got (%v, %v), want (42, nil)", bVal, bErr)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("compute ran %d times, want 2 (canceled + retry)", got)
	}
}
