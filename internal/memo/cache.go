// Bounded, hotness-aware memoization (DESIGN.md §11).
//
// Cache memoizes expensive measurement results by canonical key with
// single-flight semantics: concurrent callers of Do/DoCtx with the same key
// block on one computation and share its result, so repeated matrix cells —
// the same scenario appearing in matrix-apps and matrix-policy, or a re-run
// under a different worker count — are free after the first evaluation.
//
// Unlike the PR-5 prototype, a Cache can be *bounded*: every entry carries
// hit recency (its position on an LRU list) and a hit-frequency counter, and
// when a configured entry budget is exceeded the cache evicts cold-first —
// candidates are sampled from the recency tail and the least-frequently-hit
// one is dropped, so a hot key that momentarily slid down the list survives
// a churning scan of one-shot keys. Scanned-but-spared candidates have their
// frequency halved (classic LFU aging), so formerly-hot keys cannot pin a
// slot forever. Optional TTL expires completed entries, and explicit
// invalidation (Invalidate/InvalidateFunc) drops entries whose inputs
// changed — the experiment layer wires a platform-registry epoch bump to it.
//
// Cancellation: DoCtx computations receive a context that is canceled once
// every caller waiting on the key has abandoned it, so a timed-out request
// stops its in-flight work instead of leaking it. Context-canceled results
// and panics are never retained — the next caller recomputes — while any
// other error is cached like a value: a failing cell fails the same way on
// every revisit instead of recomputing.
//
// Keys must be canonical (the scenario engine uses Scenario.String plus an
// options fingerprint): two keys are the same cell if and only if the
// strings are equal. A Cache is safe for concurrent use; the zero value is
// not — use NewCache or NewCacheWith.
package memo

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"
)

// evictScan is how many recency-tail candidates one eviction inspects: the
// least-frequently-hit of the sample is dropped, the spared rest age.
const evictScan = 8

// CacheConfig bounds a Cache. The zero value — no entry budget, no TTL —
// reproduces the unbounded PR-5 semantics.
type CacheConfig struct {
	// MaxEntries caps the resident entries when positive; the cache evicts
	// cold-first (recency-tail sample, lowest frequency dropped) to stay at
	// the budget. 0 disables eviction. In-flight computations are never
	// evicted, so under heavy concurrency residency can transiently reach
	// max(MaxEntries, in-flight).
	MaxEntries int
	// TTL expires completed entries this long after their computation
	// finishes when positive; an expired entry is recomputed on next access.
	TTL time.Duration
	// Now overrides the TTL clock, for tests; nil uses time.Now.
	Now func() time.Time
}

// CacheStats is a point-in-time snapshot of a cache's counters — the raw
// material of the cxlserve /metrics endpoint.
type CacheStats struct {
	// Hits counts Do/DoCtx calls served from a computed or in-flight entry.
	Hits int64
	// Misses counts calls that started a fresh computation.
	Misses int64
	// Evictions counts entries dropped to keep the entry budget.
	Evictions int64
	// Expirations counts entries dropped because their TTL lapsed.
	Expirations int64
	// Invalidations counts entries dropped by Invalidate/InvalidateFunc.
	Invalidations int64
	// Size is the current resident entry count (computed + in-flight).
	Size int
	// InFlight is the number of computations currently running.
	InFlight int
}

// Cache is the bounded single-flight result cache. Use NewCache (unbounded)
// or NewCacheWith.
type Cache struct {
	mu      sync.Mutex
	cfg     CacheConfig
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used

	hits, misses, evictions, expirations, invalidations int64
	inflight                                            int
}

// cacheEntry is one key's state. Result fields (val, err, panicVal) are
// written once, before done is closed, and only read after <-done.
type cacheEntry struct {
	key  string
	elem *list.Element

	done     chan struct{} // closed when the computation finishes
	val      any
	err      error
	panicVal any
	computed bool
	cctx     context.Context // the computation's context (for claim's retry test)

	freq    int64     // hit-frequency counter, aged on eviction scans
	expiry  time.Time // zero = never expires
	waiters int       // callers currently blocked on this entry
	cancel  context.CancelFunc
}

// NewCache creates an unbounded result cache — the PR-5 semantics.
func NewCache() *Cache { return NewCacheWith(CacheConfig{}) }

// NewCacheWith creates a cache with the given bounds.
func NewCacheWith(cfg CacheConfig) *Cache {
	return &Cache{cfg: cfg, entries: make(map[string]*cacheEntry), lru: list.New()}
}

// Configure replaces the cache's bounds, evicting down to a newly lowered
// entry budget immediately. A changed TTL applies to computations finishing
// after the call; resident entries keep their stamped expiry.
func (c *Cache) Configure(cfg CacheConfig) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg = cfg
	c.evictLocked()
}

// now resolves the TTL clock.
func (c *Cache) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

// Do returns the memoized result for key, computing it with compute on the
// first call. Concurrent callers of the same key share one computation. A
// (non-context) error result is cached too: a failing cell fails the same
// way on every revisit instead of recomputing.
func (c *Cache) Do(key string, compute func() (any, error)) (any, error) {
	return c.DoCtx(context.Background(), key, func(context.Context) (any, error) { return compute() })
}

// DoCtx is Do with cancellation: ctx covers this caller's wait, and compute
// receives a context that is canceled once every waiter for the key has
// abandoned it (so orphaned work stops at its next cancellation check). When
// ctx ends first, DoCtx returns ctx.Err() immediately; the computation keeps
// running only while someone still wants it. Results that are context
// cancellations — and computations that panic (the panic is re-raised on
// every waiter) — are not retained, so one canceled request cannot poison
// the key for the next: a caller whose own ctx is still live never observes
// another caller's cancellation, it recomputes instead.
func (c *Cache) DoCtx(ctx context.Context, key string, compute func(ctx context.Context) (any, error)) (any, error) {
	for {
		v, err, retry := c.attempt(ctx, key, compute)
		if !retry {
			return v, err
		}
		// The entry this caller waited on was canceled out from under it
		// (its other waiters timed out, or it was invalidated mid-flight)
		// while this caller's ctx is still live: try again on a fresh entry.
	}
}

// attempt is one pass of DoCtx: serve a hit, join an in-flight entry, or
// start a computation. retry reports that the awaited computation was
// canceled while the caller's own ctx is still live.
func (c *Cache) attempt(ctx context.Context, key string, compute func(ctx context.Context) (any, error)) (v any, err error, retry bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok && e.computed && !e.expiry.IsZero() && !c.now().Before(e.expiry) {
		c.removeLocked(e)
		c.expirations++
		ok = false
	}
	if ok {
		c.hits++
		if e.computed {
			e.freq++
			c.lru.MoveToFront(e.elem)
			v, err := e.val, e.err
			c.mu.Unlock()
			return v, err, false
		}
		// In flight: join as a waiter.
		e.waiters++
		done := e.done
		c.mu.Unlock()
		select {
		case <-done:
			return c.claim(ctx, e)
		case <-ctx.Done():
			c.abandon(e)
			return nil, ctx.Err(), false
		}
	}
	// Miss: start the computation on its own goroutine under a context tied
	// to the waiter refcount, and wait like everyone else.
	c.misses++
	c.inflight++
	cctx, cancel := context.WithCancel(context.Background())
	e = &cacheEntry{key: key, done: make(chan struct{}), cancel: cancel, cctx: cctx, waiters: 1, freq: 1}
	c.entries[key] = e
	e.elem = c.lru.PushFront(e)
	c.evictLocked()
	c.mu.Unlock()
	go func() {
		defer func() {
			// A compute panic is captured here (finish has not run yet) and
			// re-raised on every waiter's goroutine by claim.
			if r := recover(); r != nil {
				c.finish(e, nil, nil, r)
			}
		}()
		v, err := compute(cctx)
		c.finish(e, v, err, nil)
	}()
	select {
	case <-e.done:
		return c.claim(ctx, e)
	case <-ctx.Done():
		c.abandon(e)
		return nil, ctx.Err(), false
	}
}

// claim reads a finished entry's result on behalf of one waiter, re-raising
// a computation panic on the waiter's goroutine. A computation that was
// canceled (all other waiters left, or mid-flight invalidation) while this
// waiter's own ctx is still live reports retry instead of surfacing someone
// else's cancellation.
func (c *Cache) claim(ctx context.Context, e *cacheEntry) (any, error, bool) {
	c.mu.Lock()
	e.waiters--
	if e.panicVal != nil {
		c.mu.Unlock()
		panic(e.panicVal)
	}
	if canceledErr(e.err) && e.cctx.Err() != nil && ctx.Err() == nil {
		c.mu.Unlock()
		return nil, nil, true
	}
	e.freq++
	v, err := e.val, e.err
	c.mu.Unlock()
	return v, err, false
}

// canceledErr reports whether err is a context cancellation.
func canceledErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// abandon drops one waiter; when the last waiter of an unfinished entry
// leaves, the computation's context is canceled so the work can stop.
func (c *Cache) abandon(e *cacheEntry) {
	c.mu.Lock()
	e.waiters--
	if e.waiters == 0 && !e.computed {
		e.cancel()
	}
	c.mu.Unlock()
}

// finish publishes a computation's outcome and decides retention: context
// cancellations and panics are dropped (next caller recomputes), anything
// else stays resident, TTL-stamped when configured. The entry may have been
// invalidated mid-flight, in which case a newer entry owns the key and this
// one is not re-inserted.
func (c *Cache) finish(e *cacheEntry, v any, err error, panicVal any) {
	c.mu.Lock()
	e.val, e.err, e.panicVal = v, err, panicVal
	e.computed = true
	c.inflight--
	e.cancel()
	if cur := c.entries[e.key]; cur == e {
		if panicVal != nil || canceledErr(err) {
			c.removeLocked(e)
		} else if c.cfg.TTL > 0 {
			e.expiry = c.now().Add(c.cfg.TTL)
		}
	}
	close(e.done)
	c.mu.Unlock()
}

// evictLocked enforces the entry budget: sample up to evictScan computed
// entries from the recency tail, evict the least-frequently-hit one and
// halve the frequency of the spared rest. In-flight entries are skipped —
// someone is waiting on them. Callers hold c.mu.
func (c *Cache) evictLocked() {
	if c.cfg.MaxEntries <= 0 {
		return
	}
	for len(c.entries) > c.cfg.MaxEntries {
		var victim *cacheEntry
		sample := make([]*cacheEntry, 0, evictScan)
		for el := c.lru.Back(); el != nil && len(sample) < evictScan; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			if !e.computed {
				continue
			}
			sample = append(sample, e)
			if victim == nil || e.freq < victim.freq {
				victim = e
			}
		}
		if victim == nil {
			return // everything resident is in flight; over-budget transiently
		}
		for _, e := range sample {
			if e != victim && e.freq > 1 {
				e.freq /= 2
			}
		}
		c.removeLocked(victim)
		c.evictions++
	}
}

// removeLocked unlinks an entry from the map and recency list; it is a no-op
// for an entry already superseded or removed. Callers hold c.mu.
func (c *Cache) removeLocked(e *cacheEntry) {
	if cur := c.entries[e.key]; cur == e {
		delete(c.entries, e.key)
	}
	c.lru.Remove(e.elem)
}

// Invalidate drops the entry for key, reporting whether one was resident.
// An in-flight computation is canceled and its result is not retained;
// current waiters still receive whatever it returns.
func (c *Cache) Invalidate(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	c.invalidateLocked(e)
	return true
}

// InvalidateFunc drops every resident entry whose key satisfies pred and
// returns how many were dropped — the hook a platform/registry epoch bump
// uses to invalidate dependent keys.
func (c *Cache) InvalidateFunc(pred func(key string) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var doomed []*cacheEntry
	for key, e := range c.entries {
		if pred(key) {
			doomed = append(doomed, e)
		}
	}
	for _, e := range doomed {
		c.invalidateLocked(e)
	}
	return len(doomed)
}

// invalidateLocked removes one entry, canceling it if still computing.
// Callers hold c.mu.
func (c *Cache) invalidateLocked(e *cacheEntry) {
	c.removeLocked(e)
	c.invalidations++
	if !e.computed {
		e.cancel()
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Expirations:   c.expirations,
		Invalidations: c.invalidations,
		Size:          len(c.entries),
		InFlight:      c.inflight,
	}
}

// Len reports the number of resident keys (computed or in flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Hits reports how many Do/DoCtx calls were served by an existing entry.
func (c *Cache) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}
