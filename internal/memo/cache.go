package memo

import "sync"

// Cache memoizes expensive measurement results by canonical key with
// single-flight semantics: concurrent callers of Do with the same key block
// on one computation and share its result, so repeated matrix cells — the
// same scenario appearing in matrix-apps and matrix-policy, or a re-run
// under a different worker count — are free after the first evaluation.
//
// Keys must be canonical (the scenario engine uses Scenario.String plus an
// options fingerprint): two keys are the same cell if and only if the
// strings are equal. A Cache is safe for concurrent use; the zero value is
// not — use NewCache.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    int64
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

// NewCache creates an empty result cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Do returns the memoized result for key, computing it with compute on the
// first call. An error result is cached too: a failing cell fails the same
// way on every revisit instead of recomputing.
func (c *Cache) Do(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.val, e.err = compute()
	})
	return e.val, e.err
}

// Len reports the number of distinct keys computed or in flight.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Hits reports how many Do calls were served from the cache.
func (c *Cache) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}
