// Package memo reimplements the paper's custom microbenchmark of the same
// name ("measuring efficiency of memory subsystems", §3.2) against the
// simulated system. Where Intel MLC serializes accesses, memo measures
// *random parallel* accesses per instruction type:
//
//	for each trial: clflush + mfence; rdtsc; 16 independent accesses
//	(ld / nt-ld / st / nt-st) to random addresses; fence; rdtsc.
//
// The per-access latency is the bracketed time divided by 16, and the
// reported value is the median over many trials (filtering TLB misses and
// OS noise). In the simulator the flush guarantees every access pays the
// memory path, and the measured quantity converges on the path's
// ParallelLatency; the trial/median machinery is retained so the
// measurement semantics match the paper's.
package memo

import (
	"sort"

	"cxlmem/internal/mem"
	"cxlmem/internal/sim"
	"cxlmem/internal/topo"
)

// BurstSize is the number of back-to-back instructions per trial (§4.1).
const BurstSize = 16

// Config parameterizes a measurement run.
type Config struct {
	// Trials is the number of repeated bursts; the paper uses 10,000.
	Trials int
	// JitterFraction models OS/TLB measurement noise as a relative
	// half-width on each trial; the median removes it, as in the paper.
	JitterFraction float64
	// Seed drives the jitter stream.
	Seed uint64
}

// DefaultConfig mirrors the paper's methodology.
func DefaultConfig() Config {
	return Config{Trials: 10000, JitterFraction: 0.05, Seed: 7}
}

// InstrLatency measures the median per-access latency of random parallel
// accesses of the given instruction type to the device behind path.
func InstrLatency(path *topo.Path, t mem.InstrType, cfg Config) sim.Time {
	if cfg.Trials <= 0 {
		panic("memo: non-positive trial count")
	}
	ideal := float64(path.ParallelLatency(t))
	rng := sim.NewRng(cfg.Seed)
	samples := make([]float64, cfg.Trials)
	for i := range samples {
		// Per-trial noise: mostly small symmetric jitter; occasionally a
		// large positive outlier (a TLB miss or an OS tick), which the
		// median is designed to reject.
		v := ideal * (1 + cfg.JitterFraction*(2*rng.Float64()-1))
		if rng.Float64() < 0.01 {
			v *= 1 + 4*rng.Float64()
		}
		samples[i] = v
	}
	sort.Float64s(samples)
	return sim.Time(samples[len(samples)/2])
}

// AllLatencies measures every instruction type for the path.
func AllLatencies(path *topo.Path, cfg Config) map[mem.InstrType]sim.Time {
	out := make(map[mem.InstrType]sim.Time, 4)
	for _, t := range mem.InstrTypes() {
		out[t] = InstrLatency(path, t, cfg)
	}
	return out
}

// BandwidthResult reports one single-instruction-stream bandwidth point.
type BandwidthResult struct {
	// AchievedGBs is the delivered bandwidth for a pure stream of the type.
	AchievedGBs float64
	// Efficiency is the fraction of the device's theoretical peak (Fig. 4b).
	Efficiency float64
}

// InstrBandwidth measures the maximum bandwidth of a pure stream of the
// given instruction type: all cores issue the instruction back to back and
// the controller's per-type efficiency bounds delivery.
func InstrBandwidth(path *topo.Path, t mem.InstrType) BandwidthResult {
	dev := path.Device
	eff := dev.EffInstr(t)
	return BandwidthResult{
		AchievedGBs: dev.PeakGBs() * eff,
		Efficiency:  eff,
	}
}

// AllBandwidths measures every instruction type for the path.
func AllBandwidths(path *topo.Path) map[mem.InstrType]BandwidthResult {
	out := make(map[mem.InstrType]BandwidthResult, 4)
	for _, t := range mem.InstrTypes() {
		out[t] = InstrBandwidth(path, t)
	}
	return out
}
