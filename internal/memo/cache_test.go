package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheMemoizes(t *testing.T) {
	c := NewCache()
	var calls atomic.Int64
	compute := func() (any, error) {
		calls.Add(1)
		return 42, nil
	}
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", compute)
		if err != nil || v.(int) != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times, want 1", calls.Load())
	}
	if c.Len() != 1 || c.Hits() != 2 {
		t.Errorf("Len=%d Hits=%d, want 1/2", c.Len(), c.Hits())
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache()
	var calls int
	want := errors.New("boom")
	for i := 0; i < 2; i++ {
		if _, err := c.Do("bad", func() (any, error) { calls++; return nil, want }); !errors.Is(err, want) {
			t.Fatalf("err = %v, want %v", err, want)
		}
	}
	if calls != 1 {
		t.Errorf("failing compute ran %d times, want 1", calls)
	}
}

// TestCacheSingleFlight hammers one key from many goroutines: exactly one
// computation, everyone sees its result (run under -race in CI).
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache()
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("shared", func() (any, error) {
				calls.Add(1)
				return "result", nil
			})
			if err != nil || v.(string) != "result" {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times, want 1", calls.Load())
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCacheDistinctKeys(t *testing.T) {
	c := NewCache()
	for _, k := range []string{"a", "b", "c"} {
		k := k
		v, err := c.Do(k, func() (any, error) { return k + "!", nil })
		if err != nil || v.(string) != k+"!" {
			t.Fatalf("Do(%q) = %v, %v", k, v, err)
		}
	}
	if c.Len() != 3 || c.Hits() != 0 {
		t.Errorf("Len=%d Hits=%d, want 3/0", c.Len(), c.Hits())
	}
}
