// Cache snapshots (DESIGN.md §14): serialize a cache's computed entries so
// a fresh process — a restarted replica, or a new member of a sharded
// serving fleet — boots with a warm cache instead of recomputing its hot
// set from scratch.
//
// The memo layer stores opaque `any` values, so serialization is delegated:
// Snapshot receives an encode function mapping (key, value) to bytes and
// Restore receives its inverse. The experiment layer wires these to the
// lossless results JSON wire form, which is what makes a restored dataset
// serve byte-identical responses with zero recompute.
//
// Only settled successes travel: in-flight computations, cached errors,
// panics and TTL-expired entries are skipped — a snapshot is a transcript
// of reusable results, not of failures. Entries are ordered most-recently
// -used first and carry their hit-frequency counter, so a restored cache
// inherits the donor's hotness ranking and a bounded restore keeps the
// hottest keys.
package memo

import "encoding/json"

// SnapshotEntry is one serialized cache entry: the canonical key, the
// encoded value, and the hotness metadata the eviction policy runs on.
type SnapshotEntry struct {
	// Key is the entry's canonical memoization key.
	Key string `json:"key"`
	// Freq is the entry's hit-frequency counter at snapshot time; Restore
	// clamps it to at least 1.
	Freq int64 `json:"freq,omitempty"`
	// Value is the encoded result, produced by the Snapshot caller's encode
	// function and handed back to Restore's decode.
	Value json.RawMessage `json:"value"`
}

// Snapshot serializes every settled, successful entry through encode,
// most-recently-used first. In-flight computations, cached errors and
// expired entries are excluded. The cache stays serviceable during the
// call: entries are collected under the lock, encoded outside it (cached
// values are immutable by the package contract).
func (c *Cache) Snapshot(encode func(key string, v any) ([]byte, error)) ([]SnapshotEntry, error) {
	type pending struct {
		key  string
		val  any
		freq int64
	}
	c.mu.Lock()
	collected := make([]pending, 0, len(c.entries))
	now := c.now()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if !e.computed || e.err != nil || e.panicVal != nil {
			continue
		}
		if !e.expiry.IsZero() && !now.Before(e.expiry) {
			continue
		}
		collected = append(collected, pending{key: e.key, val: e.val, freq: e.freq})
	}
	c.mu.Unlock()
	out := make([]SnapshotEntry, 0, len(collected))
	for _, p := range collected {
		data, err := encode(p.key, p.val)
		if err != nil {
			return nil, err
		}
		out = append(out, SnapshotEntry{Key: p.key, Freq: p.freq, Value: data})
	}
	return out, nil
}

// Restore inserts snapshot entries as computed values, decoding each
// through decode. Keys already resident (computed or in flight) are left
// untouched — live state always wins over a snapshot. Restored entries
// join the recency list in snapshot order (most-recently-used first), keep
// their clamped frequency, are TTL-stamped as if freshly computed, and
// count toward the entry budget: an over-budget restore evicts cold-first
// exactly like computed entries do. It returns how many entries were
// actually restored.
func (c *Cache) Restore(entries []SnapshotEntry, decode func(key string, data []byte) (any, error)) (int, error) {
	restored := 0
	for _, se := range entries {
		v, err := decode(se.Key, se.Value)
		if err != nil {
			return restored, err
		}
		c.mu.Lock()
		if _, exists := c.entries[se.Key]; exists {
			c.mu.Unlock()
			continue
		}
		done := make(chan struct{})
		close(done)
		e := &cacheEntry{
			key:      se.Key,
			done:     done,
			val:      v,
			computed: true,
			freq:     max64(se.Freq, 1),
			cancel:   func() {},
		}
		if c.cfg.TTL > 0 {
			e.expiry = c.now().Add(c.cfg.TTL)
		}
		c.entries[se.Key] = e
		// Entries arrive MRU-first, so appending preserves the donor's
		// recency order: the first restored entry ends up at the front.
		e.elem = c.lru.PushBack(e)
		c.evictLocked()
		// The entry may have been evicted immediately (budget smaller than
		// the snapshot); it still counted as restored — the budget decides
		// residency, Restore only offers.
		c.mu.Unlock()
		restored++
	}
	return restored, nil
}

// max64 returns the larger of two int64s.
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
