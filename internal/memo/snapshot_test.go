package memo

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"
)

// jsonCodec is the test codec: values are plain strings carried as JSON.
func encodeString(_ string, v any) ([]byte, error) { return json.Marshal(v.(string)) }

func decodeString(_ string, data []byte) (any, error) {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return s, nil
}

// TestSnapshotRoundTrip proves the core warm-start contract: a snapshot of
// computed entries restores into a fresh cache whose Do calls are all hits
// (zero recompute) returning the original values.
func TestSnapshotRoundTrip(t *testing.T) {
	src := NewCache()
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := src.Do(key, func() (any, error) { return "v" + key, nil }); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := src.Snapshot(encodeString)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d entries, want 5", len(snap))
	}

	dst := NewCache()
	n, err := dst.Restore(snap, decodeString)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("restored %d entries, want 5", n)
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		v, err := dst.Do(key, func() (any, error) {
			t.Errorf("restored key %s recomputed", key)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if v != "v"+key {
			t.Errorf("restored %s = %v, want v%s", key, v, key)
		}
	}
	if hits := dst.Hits(); hits != 5 {
		t.Errorf("restored cache served %d hits, want 5", hits)
	}
}

// TestSnapshotSkipsUnsettled pins what must NOT travel: cached errors,
// in-flight computations, and TTL-expired entries.
func TestSnapshotSkipsUnsettled(t *testing.T) {
	now := time.Now()
	c := NewCacheWith(CacheConfig{TTL: time.Minute, Now: func() time.Time { return now }})
	if _, err := c.Do("ok", func() (any, error) { return "good", nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("bad", func() (any, error) { return nil, errors.New("boom") }); err == nil {
		t.Fatal("error result not cached")
	}
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do("inflight", func() (any, error) {
		close(started)
		<-release
		return "late", nil
	})
	<-started
	defer close(release)

	snap, err := c.Snapshot(encodeString)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[0].Key != "ok" {
		t.Fatalf("snapshot = %+v, want only the settled success %q", snap, "ok")
	}

	// Advance past the TTL: the settled entry expires out of the snapshot.
	now = now.Add(2 * time.Minute)
	snap, err = c.Snapshot(encodeString)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 0 {
		t.Fatalf("snapshot of expired cache has %d entries, want 0", len(snap))
	}
}

// TestRestoreKeepsResident proves live state beats the snapshot: a key
// already computed in the target cache is not clobbered by a restore.
func TestRestoreKeepsResident(t *testing.T) {
	src := NewCache()
	if _, err := src.Do("k", func() (any, error) { return "stale", nil }); err != nil {
		t.Fatal(err)
	}
	snap, err := src.Snapshot(encodeString)
	if err != nil {
		t.Fatal(err)
	}

	dst := NewCache()
	if _, err := dst.Do("k", func() (any, error) { return "live", nil }); err != nil {
		t.Fatal(err)
	}
	n, err := dst.Restore(snap, decodeString)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("restore over a resident key reported %d restored, want 0", n)
	}
	v, _ := dst.Do("k", func() (any, error) { return nil, nil })
	if v != "live" {
		t.Errorf("resident value = %v, want live", v)
	}
}

// TestRestoreHonorsBudget squeezes the target cache below the snapshot size:
// the restore must not blow the entry budget, and the hottest (earliest,
// highest-frequency) entries must be the survivors.
func TestRestoreHonorsBudget(t *testing.T) {
	src := NewCache()
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := src.Do(key, func() (any, error) { return "v" + key, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Heat k0 so it tops both recency and frequency.
	for i := 0; i < 8; i++ {
		src.Do("k0", func() (any, error) { return nil, nil })
	}
	snap, err := src.Snapshot(encodeString)
	if err != nil {
		t.Fatal(err)
	}
	if snap[0].Key != "k0" {
		t.Fatalf("snapshot head = %s, want the MRU key k0", snap[0].Key)
	}

	dst := NewCacheWith(CacheConfig{MaxEntries: 4})
	if _, err := dst.Restore(snap, decodeString); err != nil {
		t.Fatal(err)
	}
	if got := dst.Len(); got > 4 {
		t.Errorf("restored cache holds %d entries, budget is 4", got)
	}
	v, err := dst.Do("k0", func() (any, error) { return "recomputed", nil })
	if err != nil {
		t.Fatal(err)
	}
	if v != "vk0" {
		t.Errorf("hot key k0 = %v after bounded restore, want the restored vk0", v)
	}
}

// TestRestoreDecodeError pins the failure contract: a decode error aborts
// the restore and reports how many entries made it in.
func TestRestoreDecodeError(t *testing.T) {
	c := NewCache()
	entries := []SnapshotEntry{
		{Key: "a", Value: json.RawMessage(`"va"`)},
		{Key: "b", Value: json.RawMessage(`not-json`)},
		{Key: "c", Value: json.RawMessage(`"vc"`)},
	}
	n, err := c.Restore(entries, decodeString)
	if err == nil {
		t.Fatal("restore of a corrupt entry succeeded")
	}
	if n != 1 {
		t.Errorf("restored %d entries before the corrupt one, want 1", n)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

// TestSnapshotRestoredEntriesServeConcurrently is the race check: restored
// entries must be indistinguishable from computed ones under concurrent
// DoCtx traffic.
func TestSnapshotRestoredEntriesServeConcurrently(t *testing.T) {
	src := NewCache()
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("k%d", i)
		src.Do(key, func() (any, error) { return "v" + key, nil })
	}
	snap, err := src.Snapshot(encodeString)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewCacheWith(CacheConfig{MaxEntries: 6})
	if _, err := dst.Restore(snap, decodeString); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (i+w)%8)
				v, err := dst.DoCtx(context.Background(), key, func(context.Context) (any, error) {
					return "v" + key, nil
				})
				if err != nil || v != "v"+key {
					t.Errorf("concurrent read of %s = %v, %v", key, v, err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
