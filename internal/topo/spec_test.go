package topo

import (
	"reflect"
	"strings"
	"testing"

	"cxlmem/internal/cache"
	"cxlmem/internal/coherence"
	"cxlmem/internal/link"
	"cxlmem/internal/mem"
)

// handAssembledTable1 reproduces the pre-refactor NewSystem body verbatim:
// the hand-written Table-1 constructor the Builder replaced. The pin test
// below proves the declarative path assembles the same machine
// field-for-field.
func handAssembledTable1(cfg Config) (hier *cache.Hierarchy, paths []*Path) {
	hcfg := cache.SPRHierConfig(cfg.SNCNodes)
	hcfg.CXLBreaksIsolation = cfg.CXLBreaksSNCIsolation

	remoteCoh := coherence.RemoteDirectory()
	if !cfg.CoherenceCongestion {
		remoteCoh.BurstPenalty = coherence.CXLHomeStructure().BurstPenalty
	}

	paths = []*Path{
		{
			Name:   "DDR5-L",
			Device: mem.DDR5Local(cfg.LocalDDRChannels),
			Links:  []*link.Link{link.Mesh()},
			Coh:    coherence.LocalCHA(),
		},
		{
			Name:         "DDR5-R",
			Device:       mem.DDR5Remote(),
			Links:        []*link.Link{link.Mesh(), link.UPI(), link.Mesh()},
			Coh:          remoteCoh,
			IsRemoteNUMA: true,
		},
	}
	for _, d := range mem.AllCXLDevices() {
		paths = append(paths, &Path{
			Name:   d.Name,
			Device: d,
			Links:  []*link.Link{link.Mesh(), link.CXLx8()},
			Coh:    coherence.CXLHomeStructure(),
			IsCXL:  true,
		})
	}
	return cache.NewHierarchy(hcfg), paths
}

// TestBuilderReproducesTable1 pins that the default profile, built through
// the declarative Spec/Builder path, is the hand-assembled Table-1 system
// field for field — for both the §5 application config and the §4
// microbenchmark config.
func TestBuilderReproducesTable1(t *testing.T) {
	for name, cfg := range map[string]Config{
		"default":    DefaultConfig(),
		"microbench": MicrobenchConfig(),
		"no-congest": {SNCNodes: 1, LocalDDRChannels: 8, CXLBreaksSNCIsolation: true, Seed: 1},
	} {
		t.Run(name, func(t *testing.T) {
			got := NewSystem(cfg)
			wantHier, wantPaths := handAssembledTable1(cfg)
			if !reflect.DeepEqual(got.Hier, wantHier) {
				t.Error("hierarchy diverges from the hand-assembled one")
			}
			if len(got.Paths()) != len(wantPaths) {
				t.Fatalf("%d paths, want %d", len(got.Paths()), len(wantPaths))
			}
			for i, want := range wantPaths {
				if !reflect.DeepEqual(got.Paths()[i], want) {
					t.Errorf("path %d (%s) diverges field-for-field:\ngot  %+v\nwant %+v",
						i, want.Name, got.Paths()[i], want)
				}
			}
			if got.Config() != cfg {
				t.Errorf("Config() = %+v, want %+v", got.Config(), cfg)
			}
			if got.DDRRemote == nil || got.DDRRemote.Name != "DDR5-R" {
				t.Error("DDR5-R should remain the canonical DDRRemote path")
			}
			if got.DefaultFarDevice() != "CXL-A" {
				t.Errorf("default far device = %q, want CXL-A", got.DefaultFarDevice())
			}
		})
	}
}

// TestBuilderValidation rejects each class of invalid spec with a precise
// error naming the offending field.
func TestBuilderValidation(t *testing.T) {
	mutate := func(f func(*Spec)) Spec {
		sp := Table1Spec()
		f(&sp)
		return sp
	}
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"zero sockets", mutate(func(s *Spec) { s.Sockets = 0 }), "sockets"},
		{"three sockets", mutate(func(s *Spec) { s.Sockets = 3 }), "sockets"},
		{"snc does not divide", mutate(func(s *Spec) { s.SNCNodes = 3 }), "divide"},
		{"zero snc", mutate(func(s *Spec) { s.SNCNodes = 0 }), "divide"},
		{"snc beyond packed home limit", mutate(func(s *Spec) { s.SNCNodes = 16 }), "packed cache-line home limit"},
		{"negative cores", mutate(func(s *Spec) { s.Cores = -4 }), "cores"},
		{"zero channels", mutate(func(s *Spec) { s.LocalDDRChannels = 0 }), "channel"},
		{"no devices", mutate(func(s *Spec) { s.Devices, s.DefaultFarDevice = nil, "" }), "no far-memory devices"},
		{"unnamed device", mutate(func(s *Spec) { s.Devices[1].Name = "" }), "no name"},
		{"reserved name", mutate(func(s *Spec) { s.Devices[1].Name = "DDR5-L" }), "reserved"},
		{"duplicate device", mutate(func(s *Spec) { s.Devices[2].Name = s.Devices[1].Name }), "duplicate device"},
		{"emulated on one socket", mutate(func(s *Spec) { s.Sockets = 1 }), "second socket"},
		{"bad device channels", mutate(func(s *Spec) { s.Devices[1].Channels = 0 }), "channels"},
		{"bad device efficiency", mutate(func(s *Spec) { s.Devices[1].Ctrl.MixEff[0] = 1.5 }), "efficiency"},
		{"bad link bandwidth", mutate(func(s *Spec) { s.Devices[1].Link.BandwidthPerDir = 0 }), "bandwidth"},
		{"missing default device", mutate(func(s *Spec) { s.DefaultFarDevice = "CXL-Z" }), "default far device"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Build(c.spec); err == nil {
				t.Fatal("expected a validation error")
			} else if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestHomeNodeLimitAtBuildTime pins the satellite contract: a topology
// whose SNC node index would overflow the packed cache-line home field is
// rejected with a validated error at Build time instead of panicking deep
// inside cache.packWord on the first routed access. SNC-8 is the edge that
// still fits (node 7 == cache.MaxHomeNode) and must keep building.
func TestHomeNodeLimitAtBuildTime(t *testing.T) {
	sp := Table1Spec()
	sp.SNCNodes = 16
	if _, err := Build(sp); err == nil {
		t.Fatal("SNC-16 spec must fail validation, not panic later in packWord")
	}
	sp.SNCNodes = cache.MaxHomeNode + 1
	s, err := Build(sp)
	if err != nil {
		t.Fatalf("SNC-%d should build (max node exactly at the packed limit): %v", sp.SNCNodes, err)
	}
	// Routing a line homed on the highest node must not panic.
	home := s.HomeFor(s.Path("CXL-A"), cache.MaxHomeNode)
	s.Hier.Access(s.Hier.Config().Cores-1, 0x1000, home, false)
}

// TestBuildPlatformsAllBuildable builds every registered platform and sanity
// checks the assembled systems: a local DDR pool, the declared devices in
// order, a resolvable default far device, and per-path serial latencies
// above the local baseline.
func TestBuildPlatformsAllBuildable(t *testing.T) {
	names := PlatformNames()
	if len(names) < 4 {
		t.Fatalf("expected >= 4 registered platforms, got %v", names)
	}
	if names[0] != DefaultPlatform {
		t.Errorf("default platform should lead the registry order, got %v", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			s, err := BuildPlatform(name)
			if err != nil {
				t.Fatal(err)
			}
			p, _ := PlatformByName(name)
			if len(s.Paths()) != len(p.Spec.Devices)+1 {
				t.Fatalf("%d paths for %d devices", len(s.Paths()), len(p.Spec.Devices))
			}
			if s.DDRLocal == nil || s.Paths()[0] != s.DDRLocal {
				t.Error("DDR5-L should lead the path order")
			}
			for i, d := range p.Spec.Devices {
				if got := s.Paths()[i+1].Name; got != d.Name {
					t.Errorf("path %d = %s, want %s", i+1, got, d.Name)
				}
			}
			far := s.Path(s.DefaultFarDevice())
			if far == s.DDRLocal {
				t.Error("default far device resolves to the local pool")
			}
			base := s.DDRLocal.SerialLatency(mem.Load)
			for _, pp := range s.ComparisonPaths() {
				if pp.SerialLatency(mem.Load) <= base {
					t.Errorf("%s serial load latency should exceed the local DDR baseline", pp.Name)
				}
			}
		})
	}
}

// TestPlatformRegistry covers the registry contract: lookups, unknown
// names, duplicate registration, and invalid profiles.
func TestPlatformRegistry(t *testing.T) {
	if _, err := PlatformByName("table1"); err != nil {
		t.Fatal(err)
	}
	if _, err := PlatformByName("nope"); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown platform error should list the registry, got %v", err)
	}
	expectPanic := func(name string, p Platform) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		RegisterPlatform(p)
	}
	expectPanic("duplicate", Platform{Name: "table1", Spec: Table1Spec()})
	expectPanic("uppercase", Platform{Name: "Table2", Spec: Table1Spec()})
	expectPanic("invalid spec", Platform{Name: "broken", Spec: Spec{Name: "broken"}})
	if len(AllPlatforms()) != len(PlatformNames()) {
		t.Error("AllPlatforms and PlatformNames disagree")
	}
	catalog := PlatformCatalog()
	for _, name := range PlatformNames() {
		if !strings.Contains(catalog, "| `"+name+"` |") {
			t.Errorf("catalog missing platform %s", name)
		}
	}
}

// TestBuildPlatformFreshSystems pins that repeated builds share no mutable
// state: warming one system's caches must not leak into another.
func TestBuildPlatformFreshSystems(t *testing.T) {
	a, err := BuildPlatform("snc-off")
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlatform("snc-off")
	if err != nil {
		t.Fatal(err)
	}
	home := a.HomeFor(a.Path("CXL-A"), 0)
	for addr := uint64(0); addr < 1<<16; addr += 64 {
		a.Hier.Access(0, addr, home, false)
	}
	if got := b.Hier.LLCMisses; got != 0 {
		t.Errorf("second system saw %d LLC misses without running anything", got)
	}
}
