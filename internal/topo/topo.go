// Package topo assembles the evaluated system of Table 1: a dual-socket
// Sapphire Rapids server with 8 local DDR5-4800 channels, one remote DDR5
// channel emulating CXL memory over UPI, and the three true CXL devices.
//
// Its central abstraction is the Path: the end-to-end route from a core to a
// memory device, composed of the host overhead, a coherence agent, a chain
// of links, the device controller and the DRAM itself. A Path answers the
// two latency questions the paper's microbenchmarks ask:
//
//   - SerialLatency: one dependent access (Intel MLC's pointer chase);
//   - ParallelLatency: the amortized per-access latency of a burst of
//     independent accesses (the memo microbenchmark), where full-duplex links
//     pipeline transfers and only per-access serialization and coherence
//     burst costs remain.
package topo

import (
	"fmt"

	"cxlmem/internal/cache"
	"cxlmem/internal/coherence"
	"cxlmem/internal/link"
	"cxlmem/internal/mem"
	"cxlmem/internal/sim"
)

// Core-side constants of the evaluated Xeon 6430 at 2.1 GHz.
const (
	// HostOverhead is the core-side cost of a demand miss: address
	// generation, L1/L2 lookup misses, CHA routing. Paid once per access.
	HostOverhead = 30 * sim.Nanosecond

	// EffectiveMLP is the effective memory-level parallelism a core
	// achieves on a burst of independent cacheable accesses (memo's 16
	// back-to-back instructions). Hardware has 16 fill buffers, but
	// TLB walks, fences and scheduling limit the realized overlap;
	// 4.8 reproduces the amortization ratios of §4.1 (76–79 % latency
	// reduction from parallelism).
	EffectiveMLP = 4.8

	// L1HitLatency, L2HitLatency, LLCHitLatency are load-to-use latencies
	// for cache hits.
	L1HitLatency  = 1500 * sim.Picosecond
	L2HitLatency  = 8 * sim.Nanosecond
	LLCHitLatency = 33 * sim.Nanosecond

	// CmdBytes is the size of a request packet; LineBytes of a data packet.
	CmdBytes  = 8
	LineBytes = mem.CacheLineBytes
)

// Path is the end-to-end route from a core to one memory device.
type Path struct {
	// Name matches the device name ("DDR5-L", "CXL-A", ...).
	Name string
	// Device is the memory device at the end of the path.
	Device *mem.Device
	// Links is the ordered chain of interconnects from core to device.
	Links []*link.Link
	// Coh is the coherence agent consulted for every access.
	Coh *coherence.Agent
	// IsCXL reports whether the path crosses a CXL link (true CXL memory);
	// remote-NUMA emulation and local DRAM report false.
	IsCXL bool
	// IsRemoteNUMA reports whether the path crosses UPI to the other socket.
	IsRemoteNUMA bool
}

// outbound returns the command-direction latency: links plus the controller
// ingress pipeline.
func (p *Path) outbound(payload int) sim.Time {
	t := sim.Time(0)
	for _, l := range p.Links {
		t += l.Traverse(payload)
	}
	return t + p.Device.Ctrl.PortLatency
}

// inbound returns the data-return latency: links plus the controller egress
// pipeline.
func (p *Path) inbound(payload int) sim.Time {
	t := sim.Time(0)
	for _, l := range p.Links {
		t += l.Traverse(payload)
	}
	return t + p.Device.Ctrl.PortLatency
}

// ackReturn is the completion message for posted writes: propagation only.
func (p *Path) ackReturn() sim.Time {
	t := sim.Time(0)
	for _, l := range p.Links {
		t += l.Propagation
	}
	return t
}

// SerialLatency returns the latency of one dependent access of the given
// instruction type — what Intel MLC measures for loads (§4.1's
// pointer-chasing) and what a fenced single store costs.
func (p *Path) SerialLatency(t mem.InstrType) sim.Time {
	dram := p.Device.Tech.AccessLatency
	switch t {
	case mem.Load, mem.NTLoad:
		// Round trip: command out, DRAM access, line back.
		return HostOverhead + p.Coh.SerialCost(false) +
			p.outbound(CmdBytes) + dram + p.inbound(LineBytes)
	case mem.Store:
		// Write-allocate: implicit read-for-ownership (full load round
		// trip with ownership coherence), then the dirty line drains back.
		rfo := HostOverhead + p.Coh.SerialCost(true) +
			p.outbound(CmdBytes) + dram + p.inbound(LineBytes)
		drain := p.outbound(LineBytes)
		return rfo + drain
	case mem.NTStore:
		// Address and data travel together in one traversal; no implicit
		// read. The device posts the write and returns a light completion.
		// Controllers accept posted writes into a buffer, so only half the
		// scheduling pipeline is exposed.
		oneWay := sim.Time(0)
		for _, l := range p.Links {
			oneWay += l.Traverse(CmdBytes + LineBytes)
		}
		oneWay += p.Device.Ctrl.PortLatency / 2
		return HostOverhead + p.Coh.SerialCost(true) + oneWay + p.ackReturn()
	default:
		panic(fmt.Sprintf("topo: unknown instruction type %v", t))
	}
}

// ParallelLatency returns the amortized per-access latency for a burst of
// independent accesses of the given type — what memo measures with its 16
// back-to-back instructions (§3.2). Full-duplex links overlap the transfers
// of different requests, so the serialized latency is divided by the
// effective MLP; what cannot be hidden is the per-access coherence cost,
// which congests on the UPI path but not on the CXL path (O3).
func (p *Path) ParallelLatency(t mem.InstrType) sim.Time {
	serial := p.SerialLatency(t)
	amortized := sim.Time(float64(serial) / EffectiveMLP)
	return amortized + p.Coh.BurstCost(t.IsWrite())
}

// LoadedParallelLatency scales the parallel latency by a queueing factor
// from mem.Served (>= 1), modeling the loaded-latency curve of §6.1.
func (p *Path) LoadedParallelLatency(t mem.InstrType, factor float64) sim.Time {
	if factor < 1 {
		factor = 1
	}
	return sim.Time(float64(p.ParallelLatency(t)) * factor)
}

// HitLatency returns the load-to-use latency for an access satisfied at the
// given cache level; Memory-level accesses defer to the path's own latency.
func (p *Path) HitLatency(level cache.Level) sim.Time {
	switch level {
	case cache.L1:
		return L1HitLatency
	case cache.L2:
		return L2HitLatency
	case cache.LLC:
		return LLCHitLatency
	case cache.Memory:
		return p.SerialLatency(mem.Load)
	default:
		panic(fmt.Sprintf("topo: unknown cache level %v", level))
	}
}

// Config selects the system variant to build.
type Config struct {
	// SNCNodes is 1 (SNC off) or 4 (SNC on, as in the paper's §5 setup).
	SNCNodes int
	// LocalDDRChannels is the number of local DDR5 channels visible to the
	// workload: 8 for the whole socket, 2 for a single SNC node (§5).
	LocalDDRChannels int
	// CXLBreaksSNCIsolation mirrors the measured LLC behaviour (O6);
	// disable for the ablation.
	CXLBreaksSNCIsolation bool
	// CoherenceCongestion keeps the remote directory's burst penalty;
	// disable for the O3 ablation.
	CoherenceCongestion bool
	// Seed drives any stochastic components layered on the system.
	Seed uint64
}

// DefaultConfig returns the paper's primary application setup: SNC mode on,
// two local DDR5 channels, one CXL device (§5: "we enable the SNC mode to
// use only two local DDR5 memory channels along with one CXL memory
// channel").
func DefaultConfig() Config {
	return Config{
		SNCNodes:              4,
		LocalDDRChannels:      2,
		CXLBreaksSNCIsolation: true,
		CoherenceCongestion:   true,
		Seed:                  1,
	}
}

// MicrobenchConfig returns the §4 characterization setup: SNC off, the full
// 8-channel local DDR5 pool as the baseline.
func MicrobenchConfig() Config {
	return Config{
		SNCNodes:              1,
		LocalDDRChannels:      8,
		CXLBreaksSNCIsolation: true,
		CoherenceCongestion:   true,
		Seed:                  1,
	}
}

// System is the assembled machine. Systems are produced by the Builder from
// a declarative Spec (spec.go); NewSystem remains as the legacy constructor
// for the paper's Table-1 machine under a Config.
type System struct {
	cfg        Config
	spec       Spec
	defaultFar string
	// paths holds every device path in the spec's presentation order,
	// DDR5-L first.
	paths []*Path
	// Hier is the cache hierarchy shared by all cores.
	Hier *cache.Hierarchy
	// DDRLocal is the socket-local DDR5 path (the baseline device).
	DDRLocal *Path
	// DDRRemote is the emulated-CXL path (remote NUMA over UPI); nil on
	// platforms without an emulated device.
	DDRRemote *Path
	// CXL holds the true CXL device paths by name.
	CXL map[string]*Path
}

// NewSystem builds the paper's Table-1 system for the configuration. It is
// Build(Table1Spec overridden by cfg) with the historical panic-on-bad-config
// contract — experiment drivers pass literal configs.
func NewSystem(cfg Config) *System {
	sp := Table1Spec()
	sp.SNCNodes = cfg.SNCNodes
	sp.LocalDDRChannels = cfg.LocalDDRChannels
	sp.CXLBreaksSNCIsolation = cfg.CXLBreaksSNCIsolation
	sp.CoherenceCongestion = cfg.CoherenceCongestion
	sp.Seed = cfg.Seed
	return MustBuild(sp)
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Spec returns the declarative spec the system was built from.
func (s *System) Spec() Spec { return s.spec }

// DefaultFarDevice returns the name of the far-memory device scenarios use
// when they do not name one — "CXL-A" on the Table-1 platform.
func (s *System) DefaultFarDevice() string { return s.defaultFar }

// Path returns the path with the given device name or panics — experiment
// code passes literal names.
func (s *System) Path(name string) *Path {
	for _, p := range s.paths {
		if p.Name == name {
			return p
		}
	}
	panic(fmt.Sprintf("topo: unknown device %q", name))
}

// Paths returns all device paths in the platform's presentation order
// (Table-1 order on the default platform), DDR5-L first.
func (s *System) Paths() []*Path { return s.paths }

// ComparisonPaths returns every far-memory device path — on the Table-1
// platform, the four devices Figure 3/4 compare (everything except the
// DDR5-L baseline).
func (s *System) ComparisonPaths() []*Path { return s.paths[1:] }

// HomeFor classifies a device path for LLC slice routing: local DDR stays in
// the accessor's node; remote NUMA and CXL memory break isolation (O6).
func (s *System) HomeFor(p *Path, node int) cache.Home {
	if p.IsCXL || p.IsRemoteNUMA {
		return cache.Home{Kind: cache.HomeRemote, Node: node}
	}
	return cache.Home{Kind: cache.HomeLocalDDR, Node: node}
}
