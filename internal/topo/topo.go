// Package topo assembles the evaluated system of Table 1: a dual-socket
// Sapphire Rapids server with 8 local DDR5-4800 channels, one remote DDR5
// channel emulating CXL memory over UPI, and the three true CXL devices.
//
// Its central abstraction is the Path: the end-to-end route from a core to a
// memory device, composed of the host overhead, a coherence agent, a chain
// of links, the device controller and the DRAM itself. A Path answers the
// two latency questions the paper's microbenchmarks ask:
//
//   - SerialLatency: one dependent access (Intel MLC's pointer chase);
//   - ParallelLatency: the amortized per-access latency of a burst of
//     independent accesses (the memo microbenchmark), where full-duplex links
//     pipeline transfers and only per-access serialization and coherence
//     burst costs remain.
package topo

import (
	"fmt"

	"cxlmem/internal/cache"
	"cxlmem/internal/coherence"
	"cxlmem/internal/link"
	"cxlmem/internal/mem"
	"cxlmem/internal/sim"
)

// Core-side constants of the evaluated Xeon 6430 at 2.1 GHz.
const (
	// HostOverhead is the core-side cost of a demand miss: address
	// generation, L1/L2 lookup misses, CHA routing. Paid once per access.
	HostOverhead = 30 * sim.Nanosecond

	// EffectiveMLP is the effective memory-level parallelism a core
	// achieves on a burst of independent cacheable accesses (memo's 16
	// back-to-back instructions). Hardware has 16 fill buffers, but
	// TLB walks, fences and scheduling limit the realized overlap;
	// 4.8 reproduces the amortization ratios of §4.1 (76–79 % latency
	// reduction from parallelism).
	EffectiveMLP = 4.8

	// L1HitLatency, L2HitLatency, LLCHitLatency are load-to-use latencies
	// for cache hits.
	L1HitLatency  = 1500 * sim.Picosecond
	L2HitLatency  = 8 * sim.Nanosecond
	LLCHitLatency = 33 * sim.Nanosecond

	// CmdBytes is the size of a request packet; LineBytes of a data packet.
	CmdBytes  = 8
	LineBytes = mem.CacheLineBytes
)

// Path is the end-to-end route from a core to one memory device.
type Path struct {
	// Name matches the device name ("DDR5-L", "CXL-A", ...).
	Name string
	// Device is the memory device at the end of the path.
	Device *mem.Device
	// Links is the ordered chain of interconnects from core to device.
	Links []*link.Link
	// Coh is the coherence agent consulted for every access.
	Coh *coherence.Agent
	// IsCXL reports whether the path crosses a CXL link (true CXL memory);
	// remote-NUMA emulation and local DRAM report false.
	IsCXL bool
	// IsRemoteNUMA reports whether the path crosses UPI to the other socket.
	IsRemoteNUMA bool
}

// outbound returns the command-direction latency: links plus the controller
// ingress pipeline.
func (p *Path) outbound(payload int) sim.Time {
	t := sim.Time(0)
	for _, l := range p.Links {
		t += l.Traverse(payload)
	}
	return t + p.Device.Ctrl.PortLatency
}

// inbound returns the data-return latency: links plus the controller egress
// pipeline.
func (p *Path) inbound(payload int) sim.Time {
	t := sim.Time(0)
	for _, l := range p.Links {
		t += l.Traverse(payload)
	}
	return t + p.Device.Ctrl.PortLatency
}

// ackReturn is the completion message for posted writes: propagation only.
func (p *Path) ackReturn() sim.Time {
	t := sim.Time(0)
	for _, l := range p.Links {
		t += l.Propagation
	}
	return t
}

// SerialLatency returns the latency of one dependent access of the given
// instruction type — what Intel MLC measures for loads (§4.1's
// pointer-chasing) and what a fenced single store costs.
func (p *Path) SerialLatency(t mem.InstrType) sim.Time {
	dram := p.Device.Tech.AccessLatency
	switch t {
	case mem.Load, mem.NTLoad:
		// Round trip: command out, DRAM access, line back.
		return HostOverhead + p.Coh.SerialCost(false) +
			p.outbound(CmdBytes) + dram + p.inbound(LineBytes)
	case mem.Store:
		// Write-allocate: implicit read-for-ownership (full load round
		// trip with ownership coherence), then the dirty line drains back.
		rfo := HostOverhead + p.Coh.SerialCost(true) +
			p.outbound(CmdBytes) + dram + p.inbound(LineBytes)
		drain := p.outbound(LineBytes)
		return rfo + drain
	case mem.NTStore:
		// Address and data travel together in one traversal; no implicit
		// read. The device posts the write and returns a light completion.
		// Controllers accept posted writes into a buffer, so only half the
		// scheduling pipeline is exposed.
		oneWay := sim.Time(0)
		for _, l := range p.Links {
			oneWay += l.Traverse(CmdBytes + LineBytes)
		}
		oneWay += p.Device.Ctrl.PortLatency / 2
		return HostOverhead + p.Coh.SerialCost(true) + oneWay + p.ackReturn()
	default:
		panic(fmt.Sprintf("topo: unknown instruction type %v", t))
	}
}

// ParallelLatency returns the amortized per-access latency for a burst of
// independent accesses of the given type — what memo measures with its 16
// back-to-back instructions (§3.2). Full-duplex links overlap the transfers
// of different requests, so the serialized latency is divided by the
// effective MLP; what cannot be hidden is the per-access coherence cost,
// which congests on the UPI path but not on the CXL path (O3).
func (p *Path) ParallelLatency(t mem.InstrType) sim.Time {
	serial := p.SerialLatency(t)
	amortized := sim.Time(float64(serial) / EffectiveMLP)
	return amortized + p.Coh.BurstCost(t.IsWrite())
}

// LoadedParallelLatency scales the parallel latency by a queueing factor
// from mem.Served (>= 1), modeling the loaded-latency curve of §6.1.
func (p *Path) LoadedParallelLatency(t mem.InstrType, factor float64) sim.Time {
	if factor < 1 {
		factor = 1
	}
	return sim.Time(float64(p.ParallelLatency(t)) * factor)
}

// HitLatency returns the load-to-use latency for an access satisfied at the
// given cache level; Memory-level accesses defer to the path's own latency.
func (p *Path) HitLatency(level cache.Level) sim.Time {
	switch level {
	case cache.L1:
		return L1HitLatency
	case cache.L2:
		return L2HitLatency
	case cache.LLC:
		return LLCHitLatency
	case cache.Memory:
		return p.SerialLatency(mem.Load)
	default:
		panic(fmt.Sprintf("topo: unknown cache level %v", level))
	}
}

// Config selects the system variant to build.
type Config struct {
	// SNCNodes is 1 (SNC off) or 4 (SNC on, as in the paper's §5 setup).
	SNCNodes int
	// LocalDDRChannels is the number of local DDR5 channels visible to the
	// workload: 8 for the whole socket, 2 for a single SNC node (§5).
	LocalDDRChannels int
	// CXLBreaksSNCIsolation mirrors the measured LLC behaviour (O6);
	// disable for the ablation.
	CXLBreaksSNCIsolation bool
	// CoherenceCongestion keeps the remote directory's burst penalty;
	// disable for the O3 ablation.
	CoherenceCongestion bool
	// Seed drives any stochastic components layered on the system.
	Seed uint64
}

// DefaultConfig returns the paper's primary application setup: SNC mode on,
// two local DDR5 channels, one CXL device (§5: "we enable the SNC mode to
// use only two local DDR5 memory channels along with one CXL memory
// channel").
func DefaultConfig() Config {
	return Config{
		SNCNodes:              4,
		LocalDDRChannels:      2,
		CXLBreaksSNCIsolation: true,
		CoherenceCongestion:   true,
		Seed:                  1,
	}
}

// MicrobenchConfig returns the §4 characterization setup: SNC off, the full
// 8-channel local DDR5 pool as the baseline.
func MicrobenchConfig() Config {
	return Config{
		SNCNodes:              1,
		LocalDDRChannels:      8,
		CXLBreaksSNCIsolation: true,
		CoherenceCongestion:   true,
		Seed:                  1,
	}
}

// System is the assembled machine.
type System struct {
	cfg Config
	// Hier is the cache hierarchy shared by all cores.
	Hier *cache.Hierarchy
	// DDRLocal is the socket-local DDR5 path (the baseline device).
	DDRLocal *Path
	// DDRRemote is the emulated-CXL path (remote NUMA over UPI).
	DDRRemote *Path
	// CXL holds the three true CXL device paths by name.
	CXL map[string]*Path
}

// NewSystem builds the system for the configuration.
func NewSystem(cfg Config) *System {
	if cfg.SNCNodes != 1 && cfg.SNCNodes != 4 {
		panic(fmt.Sprintf("topo: unsupported SNC node count %d", cfg.SNCNodes))
	}
	if cfg.LocalDDRChannels <= 0 {
		panic("topo: non-positive local DDR channel count")
	}
	hcfg := cache.SPRHierConfig(cfg.SNCNodes)
	hcfg.CXLBreaksIsolation = cfg.CXLBreaksSNCIsolation

	remoteCoh := coherence.RemoteDirectory()
	if !cfg.CoherenceCongestion {
		remoteCoh.BurstPenalty = coherence.CXLHomeStructure().BurstPenalty
	}

	s := &System{
		cfg:  cfg,
		Hier: cache.NewHierarchy(hcfg),
		DDRLocal: &Path{
			Name:   "DDR5-L",
			Device: mem.DDR5Local(cfg.LocalDDRChannels),
			Links:  []*link.Link{link.Mesh()},
			Coh:    coherence.LocalCHA(),
		},
		DDRRemote: &Path{
			Name:         "DDR5-R",
			Device:       mem.DDR5Remote(),
			Links:        []*link.Link{link.Mesh(), link.UPI(), link.Mesh()},
			Coh:          remoteCoh,
			IsRemoteNUMA: true,
		},
		CXL: make(map[string]*Path),
	}
	for _, d := range mem.AllCXLDevices() {
		s.CXL[d.Name] = &Path{
			Name:   d.Name,
			Device: d,
			Links:  []*link.Link{link.Mesh(), link.CXLx8()},
			Coh:    coherence.CXLHomeStructure(),
			IsCXL:  true,
		}
	}
	return s
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Path returns the path with the given device name or panics — experiment
// code passes literal names.
func (s *System) Path(name string) *Path {
	switch name {
	case "DDR5-L":
		return s.DDRLocal
	case "DDR5-R":
		return s.DDRRemote
	}
	if p, ok := s.CXL[name]; ok {
		return p
	}
	panic(fmt.Sprintf("topo: unknown device %q", name))
}

// Paths returns all device paths in Table-1 presentation order.
func (s *System) Paths() []*Path {
	return []*Path{s.DDRLocal, s.DDRRemote, s.CXL["CXL-A"], s.CXL["CXL-B"], s.CXL["CXL-C"]}
}

// ComparisonPaths returns the four devices Figure 3/4 compare (everything
// except the DDR5-L baseline).
func (s *System) ComparisonPaths() []*Path {
	return []*Path{s.DDRRemote, s.CXL["CXL-A"], s.CXL["CXL-B"], s.CXL["CXL-C"]}
}

// HomeFor classifies a device path for LLC slice routing: local DDR stays in
// the accessor's node; remote NUMA and CXL memory break isolation (O6).
func (s *System) HomeFor(p *Path, node int) cache.Home {
	if p.IsCXL || p.IsRemoteNUMA {
		return cache.Home{Kind: cache.HomeRemote, Node: node}
	}
	return cache.Home{Kind: cache.HomeLocalDDR, Node: node}
}
