package topo

import "testing"

// TestPlatformChangeNotification pins the cache-invalidation contract of
// the registry: a successful RegisterPlatform bumps the epoch and calls
// every OnPlatformChange hook with the new profile's name, outside the
// registry lock (the hook below reads the registry to prove it).
func TestPlatformChangeNotification(t *testing.T) {
	before := PlatformEpoch()
	var got []string
	OnPlatformChange(func(name string) {
		// Reading the registry from inside a hook must not deadlock.
		if _, err := PlatformByName(name); err != nil {
			t.Errorf("hook could not resolve just-registered %q: %v", name, err)
		}
		got = append(got, name)
	})
	RegisterPlatform(Platform{
		Name: "hook-probe",
		Desc: "registered by TestPlatformChangeNotification",
		Spec: Table1Spec(),
	})
	if PlatformEpoch() != before+1 {
		t.Errorf("epoch = %d after one registration, want %d", PlatformEpoch(), before+1)
	}
	if len(got) != 1 || got[0] != "hook-probe" {
		t.Errorf("hook calls = %v, want [hook-probe]", got)
	}

	// A failed registration (duplicate) must notify nothing.
	func() {
		defer func() { recover() }()
		RegisterPlatform(Platform{Name: "hook-probe", Spec: Table1Spec()})
	}()
	if PlatformEpoch() != before+1 {
		t.Error("failed registration bumped the epoch")
	}
	if len(got) != 1 {
		t.Errorf("failed registration ran hooks: %v", got)
	}
}
