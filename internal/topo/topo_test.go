package topo

import (
	"math"
	"testing"

	"cxlmem/internal/cache"
	"cxlmem/internal/mem"
)

func ratio(a, b float64) float64 { return a / b }

func TestNewSystemBuilds(t *testing.T) {
	s := NewSystem(MicrobenchConfig())
	if len(s.Paths()) != 5 {
		t.Fatalf("expected 5 paths, got %d", len(s.Paths()))
	}
	if len(s.ComparisonPaths()) != 4 {
		t.Fatalf("expected 4 comparison paths")
	}
	for _, p := range s.Paths() {
		if err := p.Device.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if s.Path("CXL-A") == nil || s.Path("DDR5-L") == nil || s.Path("DDR5-R") == nil {
		t.Error("Path lookup failed")
	}
}

func TestNewSystemPanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"bad snc":      {SNCNodes: 3, LocalDDRChannels: 2},
		"zero channel": {SNCNodes: 4, LocalDDRChannels: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewSystem(cfg)
		}()
	}
}

func TestPathUnknownPanics(t *testing.T) {
	s := NewSystem(MicrobenchConfig())
	defer func() {
		if recover() == nil {
			t.Error("unknown device should panic")
		}
	}()
	s.Path("CXL-Z")
}

// TestSerialLoadLatencyCalibration pins the MLC idle-latency landscape of
// Fig. 3: DDR5-L ~110 ns; DDR5-R ~1.6–1.8×; CXL-A ~2.4–2.7×;
// CXL-B ~3.6–4.0×; CXL-C ~5.3–6.0× (FPGA soft IP).
func TestSerialLoadLatencyCalibration(t *testing.T) {
	s := NewSystem(MicrobenchConfig())
	base := s.DDRLocal.SerialLatency(mem.Load).Nanoseconds()
	if base < 100 || base > 120 {
		t.Errorf("DDR5-L MLC latency = %.1f ns, want ~110", base)
	}
	cases := []struct {
		name   string
		lo, hi float64
	}{
		{"DDR5-R", 1.55, 1.85},
		{"CXL-A", 2.35, 2.75},
		{"CXL-B", 3.55, 4.05},
		{"CXL-C", 5.2, 6.1},
	}
	for _, c := range cases {
		r := ratio(s.Path(c.name).SerialLatency(mem.Load).Nanoseconds(), base)
		if r < c.lo || r > c.hi {
			t.Errorf("%s MLC latency ratio = %.2f, want [%v, %v]", c.name, r, c.lo, c.hi)
		}
	}
}

// TestO2ControllerDependence: CXL-C (DDR4-3200, faster DRAM than CXL-B's
// DDR4-2400) still has far higher load latency because of the FPGA soft IP.
func TestO2ControllerDependence(t *testing.T) {
	s := NewSystem(MicrobenchConfig())
	b := s.Path("CXL-B").SerialLatency(mem.Load)
	c := s.Path("CXL-C").SerialLatency(mem.Load)
	if float64(c) < 1.4*float64(b) {
		t.Errorf("CXL-C (%v) should be ≥1.4× CXL-B (%v) despite faster DRAM", c, b)
	}
	if s.Path("CXL-B").Device.Tech.AccessLatency <= s.Path("CXL-C").Device.Tech.AccessLatency {
		t.Error("precondition: CXL-B DRAM should be slower than CXL-C DRAM")
	}
}

// TestO1ParallelAmortization: memo's parallel accesses cut per-access latency
// by ~76 % for DDR5-R and ~79 % for CXL-A relative to MLC (§4.1).
func TestO1ParallelAmortization(t *testing.T) {
	s := NewSystem(MicrobenchConfig())
	for _, c := range []struct {
		name   string
		lo, hi float64 // expected reduction fraction
	}{
		{"DDR5-R", 0.73, 0.79},
		{"CXL-A", 0.77, 0.82},
	} {
		p := s.Path(c.name)
		serial := p.SerialLatency(mem.Load).Nanoseconds()
		par := p.ParallelLatency(mem.Load).Nanoseconds()
		red := 1 - par/serial
		if red < c.lo || red > c.hi {
			t.Errorf("%s parallel reduction = %.3f, want [%v, %v]", c.name, red, c.lo, c.hi)
		}
	}
}

// TestO3TrueCXLAmortizesBetter: CXL-A amortizes a larger share of its serial
// latency than DDR5-R because its coherence checks don't congest UPI, and
// memo ld for CXL-A lands ~1.35× DDR5-R (§4.1).
func TestO3TrueCXLAmortizesBetter(t *testing.T) {
	s := NewSystem(MicrobenchConfig())
	r := s.Path("DDR5-R")
	a := s.Path("CXL-A")
	redR := 1 - r.ParallelLatency(mem.Load).Nanoseconds()/r.SerialLatency(mem.Load).Nanoseconds()
	redA := 1 - a.ParallelLatency(mem.Load).Nanoseconds()/a.SerialLatency(mem.Load).Nanoseconds()
	if redA <= redR {
		t.Errorf("CXL-A reduction (%.3f) should exceed DDR5-R (%.3f)", redA, redR)
	}
	got := a.ParallelLatency(mem.Load).Nanoseconds() / r.ParallelLatency(mem.Load).Nanoseconds()
	if math.Abs(got-1.35) > 0.1 {
		t.Errorf("memo ld CXL-A / DDR5-R = %.2f, want ~1.35", got)
	}
}

// TestFig3MemoOrdering: memo ld latencies order DDR5-R < CXL-A < CXL-B <
// CXL-C, with CXL-B ~2× and CXL-C ~3× DDR5-R (§4.1 O2).
func TestFig3MemoOrdering(t *testing.T) {
	s := NewSystem(MicrobenchConfig())
	r := s.Path("DDR5-R").ParallelLatency(mem.Load).Nanoseconds()
	a := s.Path("CXL-A").ParallelLatency(mem.Load).Nanoseconds()
	b := s.Path("CXL-B").ParallelLatency(mem.Load).Nanoseconds()
	c := s.Path("CXL-C").ParallelLatency(mem.Load).Nanoseconds()
	if !(r < a && a < b && b < c) {
		t.Fatalf("memo ld ordering broken: R=%.0f A=%.0f B=%.0f C=%.0f", r, a, b, c)
	}
	if rb := b / r; math.Abs(rb-2.0) > 0.25 {
		t.Errorf("CXL-B/DDR5-R = %.2f, want ~2", rb)
	}
	if rc := c / r; math.Abs(rc-3.0) > 0.35 {
		t.Errorf("CXL-C/DDR5-R = %.2f, want ~3", rc)
	}
}

// TestNTLoadMatchesLoad: nt-ld latencies are similar to ld for every device
// because coherence still applies to cacheable regions (§4.1).
func TestNTLoadMatchesLoad(t *testing.T) {
	s := NewSystem(MicrobenchConfig())
	for _, p := range s.Paths() {
		ld := p.ParallelLatency(mem.Load).Nanoseconds()
		nt := p.ParallelLatency(mem.NTLoad).Nanoseconds()
		if math.Abs(ld-nt)/ld > 0.05 {
			t.Errorf("%s: nt-ld %.1f vs ld %.1f differ by >5%%", p.Name, nt, ld)
		}
	}
}

// TestStoreCosts: st exceeds ld everywhere (write-allocate RFO + drain), and
// the st penalty is relatively larger for the remote-NUMA path than for true
// CXL (§4.1).
func TestStoreCosts(t *testing.T) {
	s := NewSystem(MicrobenchConfig())
	for _, p := range s.Paths() {
		if p.SerialLatency(mem.Store) <= p.SerialLatency(mem.Load) {
			t.Errorf("%s: st should exceed ld", p.Name)
		}
	}
	// st to DDR5-R ≈ 2.2–2.4× ld from DDR5-L (§4.1 quotes 2.3×).
	r := s.Path("DDR5-R").SerialLatency(mem.Store).Nanoseconds()
	l := s.DDRLocal.SerialLatency(mem.Load).Nanoseconds()
	if rr := r / l; rr < 2.0 || rr > 2.6 {
		t.Errorf("st(DDR5-R)/ld(DDR5-L) = %.2f, want ~2.3", rr)
	}
	// Burst store penalty: remote coherence makes the parallel st penalty
	// grow more for DDR5-R than for CXL-A.
	rPen := s.Path("DDR5-R").ParallelLatency(mem.Store).Nanoseconds() /
		s.Path("DDR5-R").ParallelLatency(mem.Load).Nanoseconds()
	aPen := s.Path("CXL-A").ParallelLatency(mem.Store).Nanoseconds() /
		s.Path("CXL-A").ParallelLatency(mem.Load).Nanoseconds()
	if rPen <= aPen {
		t.Errorf("relative st penalty: DDR5-R %.2f should exceed CXL-A %.2f", rPen, aPen)
	}
}

// TestNTStoreAdvantage: nt-st is cheaper than st everywhere, and CXL-A's
// nt-st beats DDR5-R's by ~25 % (§4.1).
func TestNTStoreAdvantage(t *testing.T) {
	s := NewSystem(MicrobenchConfig())
	for _, p := range s.Paths() {
		if p.ParallelLatency(mem.NTStore) >= p.ParallelLatency(mem.Store) {
			t.Errorf("%s: nt-st should beat st", p.Name)
		}
	}
	a := s.Path("CXL-A").ParallelLatency(mem.NTStore).Nanoseconds()
	r := s.Path("DDR5-R").ParallelLatency(mem.NTStore).Nanoseconds()
	red := 1 - a/r
	if red < 0.15 || red > 0.35 {
		t.Errorf("nt-st CXL-A vs DDR5-R reduction = %.2f, want ~0.25", red)
	}
}

func TestCoherenceCongestionAblation(t *testing.T) {
	withCong := NewSystem(MicrobenchConfig())
	cfg := MicrobenchConfig()
	cfg.CoherenceCongestion = false
	without := NewSystem(cfg)
	a := withCong.Path("DDR5-R").ParallelLatency(mem.Load)
	b := without.Path("DDR5-R").ParallelLatency(mem.Load)
	if b >= a {
		t.Errorf("disabling congestion should reduce DDR5-R parallel latency: %v vs %v", b, a)
	}
	// CXL paths are unaffected.
	if withCong.Path("CXL-A").ParallelLatency(mem.Load) != without.Path("CXL-A").ParallelLatency(mem.Load) {
		t.Error("congestion ablation should not affect CXL paths")
	}
}

func TestLoadedParallelLatency(t *testing.T) {
	s := NewSystem(DefaultConfig())
	p := s.Path("CXL-A")
	base := p.ParallelLatency(mem.Load)
	if got := p.LoadedParallelLatency(mem.Load, 1); got != base {
		t.Errorf("factor 1 should return base latency")
	}
	if got := p.LoadedParallelLatency(mem.Load, 2); got != 2*base {
		t.Errorf("factor 2 = %v, want %v", got, 2*base)
	}
	if got := p.LoadedParallelLatency(mem.Load, 0.5); got != base {
		t.Errorf("factor < 1 should clamp to base")
	}
}

func TestHitLatencyLevels(t *testing.T) {
	s := NewSystem(DefaultConfig())
	p := s.Path("CXL-A")
	if p.HitLatency(cache.L1) != L1HitLatency ||
		p.HitLatency(cache.L2) != L2HitLatency ||
		p.HitLatency(cache.LLC) != LLCHitLatency {
		t.Error("cache hit latencies wrong")
	}
	if p.HitLatency(cache.Memory) != p.SerialLatency(mem.Load) {
		t.Error("memory-level latency should defer to the path")
	}
	// LLC hit beats every device's memory latency — the slack that lets CXL
	// win in Fig. 5's experiment.
	for _, pp := range s.Paths() {
		if LLCHitLatency >= pp.SerialLatency(mem.Load) {
			t.Errorf("%s: LLC hit (%v) should beat memory (%v)", pp.Name, LLCHitLatency, pp.SerialLatency(mem.Load))
		}
	}
}

func TestHomeFor(t *testing.T) {
	s := NewSystem(DefaultConfig())
	if h := s.HomeFor(s.DDRLocal, 2); h.Kind != cache.HomeLocalDDR || h.Node != 2 {
		t.Errorf("local home = %+v", h)
	}
	if h := s.HomeFor(s.Path("CXL-A"), 1); h.Kind != cache.HomeRemote || h.Node != 1 {
		t.Errorf("CXL home = %+v", h)
	}
	if h := s.HomeFor(s.DDRRemote, 0); h.Kind != cache.HomeRemote {
		t.Errorf("remote NUMA home = %+v", h)
	}
}

func TestDefaultConfigMatchesPaperSetup(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SNCNodes != 4 || cfg.LocalDDRChannels != 2 {
		t.Errorf("default config should be SNC mode with 2 DDR channels: %+v", cfg)
	}
	s := NewSystem(cfg)
	// §5: local DDR provides ~3.4× the ld bandwidth of CXL-A and ~2× its
	// st bandwidth in this setup.
	ddrLd := s.DDRLocal.Device.PeakGBs() * s.DDRLocal.Device.EffInstr(mem.Load)
	cxlLd := s.Path("CXL-A").Device.PeakGBs() * s.Path("CXL-A").Device.EffInstr(mem.Load)
	if r := ddrLd / cxlLd; math.Abs(r-3.4) > 0.5 {
		t.Errorf("DDR/CXL ld bandwidth ratio = %.2f, want ~3.4", r)
	}
	ddrSt := s.DDRLocal.Device.PeakGBs() * s.DDRLocal.Device.EffInstr(mem.Store)
	cxlSt := s.Path("CXL-A").Device.PeakGBs() * s.Path("CXL-A").Device.EffInstr(mem.Store)
	if r := ddrSt / cxlSt; math.Abs(r-2.0) > 0.5 {
		t.Errorf("DDR/CXL st bandwidth ratio = %.2f, want ~2", r)
	}
}
