// The platform registry: the single place the scenario engine, the matrix
// experiments and the cxlbench command discover buildable machines. It
// mirrors the workload registry (internal/workloads/registry.go):
// RegisterPlatform/PlatformByName/AllPlatforms panic-on-duplicate at init
// time, and PlatformCatalog renders the generated markdown table embedded in
// EXPERIMENTS.md.
package topo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Platform is one registered machine profile: a named, described Spec.
type Platform struct {
	// Name is the registry key, referenced by scenario specs as
	// platform=<name>. Must be non-empty lowercase.
	Name string
	// Desc is a one-line description for catalogs.
	Desc string
	// Spec is the buildable machine description.
	Spec Spec
}

// DefaultPlatform is the name of the paper's Table-1 machine — the profile
// every scenario runs on when no platform= key is given.
const DefaultPlatform = "table1"

var (
	platformMu    sync.RWMutex
	platforms     = map[string]Platform{}
	platformHooks []func(name string)
	platformEpoch atomic.Uint64
)

// RegisterPlatform adds a platform under its name. It panics on duplicates,
// invalid names or unbuildable specs — registration happens in init and a
// broken profile is a programming error, matching the workload registry.
// Each successful registration bumps the registry epoch and notifies the
// OnPlatformChange hooks, so dependent caches can invalidate.
func RegisterPlatform(p Platform) {
	if p.Name == "" || p.Name != strings.ToLower(p.Name) {
		panic(fmt.Sprintf("topo: invalid platform name %q (must be non-empty lowercase)", p.Name))
	}
	if err := p.Spec.Validate(); err != nil {
		panic(fmt.Sprintf("topo: platform %q does not validate: %v", p.Name, err))
	}
	platformMu.Lock()
	if _, dup := platforms[p.Name]; dup {
		platformMu.Unlock()
		panic("topo: duplicate platform " + p.Name)
	}
	platforms[p.Name] = p
	platformEpoch.Add(1)
	hooks := append([]func(name string){}, platformHooks...)
	platformMu.Unlock()
	// Hooks run outside the lock so they may read the registry.
	for _, fn := range hooks {
		fn(p.Name)
	}
}

// OnPlatformChange registers fn to run after every subsequent successful
// RegisterPlatform with the registered profile's name. The experiment layer
// uses it to invalidate memoized results that depend on the registry
// (DESIGN.md §11); hooks must be safe for concurrent use.
func OnPlatformChange(fn func(name string)) {
	platformMu.Lock()
	defer platformMu.Unlock()
	platformHooks = append(platformHooks, fn)
}

// PlatformEpoch counts registry mutations since process start. A consumer
// holding results derived from the registry can compare epochs to detect
// staleness without subscribing to OnPlatformChange.
func PlatformEpoch() uint64 { return platformEpoch.Load() }

// PlatformByName returns the registered platform with the given name.
func PlatformByName(name string) (Platform, error) {
	platformMu.RLock()
	defer platformMu.RUnlock()
	p, ok := platforms[name]
	if !ok {
		return Platform{}, fmt.Errorf("topo: unknown platform %q (registered: %s)",
			name, strings.Join(platformNamesLocked(), ", "))
	}
	return p, nil
}

// AllPlatforms returns every registered platform, the default profile first,
// then the rest sorted by name — the presentation order of every catalog and
// matrix.
func AllPlatforms() []Platform {
	platformMu.RLock()
	defer platformMu.RUnlock()
	out := make([]Platform, 0, len(platforms))
	for _, name := range platformNamesLocked() {
		out = append(out, platforms[name])
	}
	return out
}

// PlatformNames returns the registry keys in AllPlatforms order.
func PlatformNames() []string {
	platformMu.RLock()
	defer platformMu.RUnlock()
	return platformNamesLocked()
}

// platformNamesLocked lists the names, default first then sorted; callers
// hold platformMu.
func platformNamesLocked() []string {
	names := make([]string, 0, len(platforms))
	for name := range platforms {
		if name != DefaultPlatform {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if _, ok := platforms[DefaultPlatform]; ok {
		names = append([]string{DefaultPlatform}, names...)
	}
	return names
}

// BuildPlatform builds a fresh System for the named platform.
func BuildPlatform(name string) (*System, error) {
	p, err := PlatformByName(name)
	if err != nil {
		return nil, err
	}
	return Build(p.Spec)
}

// PlatformCatalog renders the registry as markdown table rows (one per
// platform: name, topology summary, devices, description) — the generated
// platform catalog embedded in EXPERIMENTS.md. Regenerate with
//
//	go run ./cmd/cxlbench -platform list
func PlatformCatalog() string {
	var b strings.Builder
	b.WriteString("| Platform | Topology | Far devices | Notes |\n")
	b.WriteString("|----------|----------|-------------|--------|\n")
	for _, p := range AllPlatforms() {
		sp := p.Spec
		snc := "SNC off"
		if sp.SNCNodes > 1 {
			snc = fmt.Sprintf("SNC%d", sp.SNCNodes)
		}
		topo := fmt.Sprintf("%d socket, %s, %d DDR5 ch", sp.Sockets, snc, sp.LocalDDRChannels)
		var devs []string
		for _, d := range sp.Devices {
			kind := d.Link.Name
			if d.Emulated {
				kind += " emu"
			}
			devs = append(devs, fmt.Sprintf("`%s` (%s, %s)", d.Name, d.Ctrl.Kind, kind))
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n", p.Name, topo, strings.Join(devs, ", "), p.Desc)
	}
	return b.String()
}
