// Built-in platform profiles. The paper's Table-1 machine is the default;
// the others explore the device-diversity axes the paper opens (O2: the
// controller dominates; §1: x8 vs x16 links; Fig. 4: ASIC vs FPGA
// efficiency) without touching any constructor code — each profile is a few
// lines of Spec data.
package topo

import (
	"cxlmem/internal/link"
	"cxlmem/internal/mem"
)

func init() {
	RegisterPlatform(Platform{
		Name: DefaultPlatform,
		Desc: "the paper's dual-socket SPR server: DDR5-R emulation + CXL-A/B/C (Table 1, §5 setup)",
		Spec: Table1Spec(),
	})
	RegisterPlatform(Platform{
		Name: "x16-quad",
		Desc: "bandwidth-expansion box: four x16 ASIC expanders behind the full 8-channel DDR5 pool",
		Spec: X16QuadSpec(),
	})
	RegisterPlatform(Platform{
		Name: "snc-off",
		Desc: "single-socket SNC-off box with one CXL-A-class x8 expander (no UPI, no emulation)",
		Spec: SNCOffSpec(),
	})
	RegisterPlatform(Platform{
		Name: "fpga-degraded",
		Desc: "worst-case device study: the Table-1 host with only a degraded soft-IP expander",
		Spec: FPGADegradedSpec(),
	})
}

// deviceSpecOf lifts a materialized mem.Device into spec form over the given
// link.
func deviceSpecOf(d *mem.Device, l *link.Link, emulated bool) DeviceSpec {
	return DeviceSpec{
		Name:          d.Name,
		Tech:          d.Tech,
		Channels:      d.Channels,
		Ctrl:          d.Ctrl,
		CapacityBytes: d.CapacityBytes,
		Link:          *l,
		Emulated:      emulated,
	}
}

// Table1Spec returns the paper's evaluated machine in declarative form, in
// its §5 application configuration (SNC on, two local DDR5 channels) — the
// same machine DefaultConfig selected from the hand-written constructor.
// NewSystem layers Config overrides (MicrobenchConfig, the ablations) on
// top of it.
func Table1Spec() Spec {
	devices := []DeviceSpec{deviceSpecOf(mem.DDR5Remote(), link.UPI(), true)}
	for _, d := range mem.AllCXLDevices() {
		devices = append(devices, deviceSpecOf(d, link.CXLx8(), false))
	}
	return Spec{
		Name:                  DefaultPlatform,
		Desc:                  "the paper's dual-socket SPR server (Table 1)",
		Sockets:               2,
		SNCNodes:              4,
		LocalDDRChannels:      2,
		Devices:               devices,
		DefaultFarDevice:      "CXL-A",
		CXLBreaksSNCIsolation: true,
		CoherenceCongestion:   true,
		Seed:                  1,
	}
}

// X16QuadSpec returns a multi-expander bandwidth-expansion platform: SNC
// off, the full 8-channel local DDR5 pool, and four identical
// second-generation ASIC expanders each on its own x16 link — the
// CXLRAMSim-style system-level exploration target where far memory is
// provisioned for aggregate bandwidth, not capacity emulation.
func X16QuadSpec() Spec {
	sp := Spec{
		Name:                  "x16-quad",
		Desc:                  "four x16 ASIC expanders, SNC off, 8 DDR5 channels",
		Sockets:               2,
		SNCNodes:              1,
		LocalDDRChannels:      8,
		DefaultFarDevice:      "CXL-X0",
		CXLBreaksSNCIsolation: true,
		CoherenceCongestion:   true,
		Seed:                  1,
	}
	for _, name := range []string{"CXL-X0", "CXL-X1", "CXL-X2", "CXL-X3"} {
		sp.Devices = append(sp.Devices, deviceSpecOf(mem.CXLExpander(name), link.CXLx16(), false))
	}
	return sp
}

// SNCOffSpec returns a single-socket SNC-off box: no second socket, so no
// UPI path and no remote-NUMA emulation — just the 8-channel DDR5 pool and
// one CXL-A-class expander on x8. The minimal genuine-CXL deployment the
// paper argues emulation misrepresents (O1–O3).
func SNCOffSpec() Spec {
	return Spec{
		Name:                  "snc-off",
		Desc:                  "single socket, SNC off, one CXL-A-class x8 expander",
		Sockets:               1,
		SNCNodes:              1,
		LocalDDRChannels:      8,
		Devices:               []DeviceSpec{deviceSpecOf(mem.CXLA(), link.CXLx8(), false)},
		DefaultFarDevice:      "CXL-A",
		CXLBreaksSNCIsolation: true,
		CoherenceCongestion:   true,
		Seed:                  1,
	}
}

// FPGADegradedSpec returns the Table-1 host with its only far memory a
// degraded soft-IP expander: the §5 SNC configuration, the DDR5-R emulation
// kept for reference, and a CXL-F device whose FPGA pipeline is slower than
// even CXL-C — the floor of the O2 controller-dependence axis.
func FPGADegradedSpec() Spec {
	return Spec{
		Name:             "fpga-degraded",
		Desc:             "Table-1 host, far memory only through a degraded FPGA expander",
		Sockets:          2,
		SNCNodes:         4,
		LocalDDRChannels: 2,
		Devices: []DeviceSpec{
			deviceSpecOf(mem.DDR5Remote(), link.UPI(), true),
			deviceSpecOf(mem.CXLFPGADegraded("CXL-F"), link.CXLx8(), false),
		},
		DefaultFarDevice:      "CXL-F",
		CXLBreaksSNCIsolation: true,
		CoherenceCongestion:   true,
		Seed:                  1,
	}
}
