// The declarative platform layer (DESIGN.md §9).
//
// A Spec describes a machine as data — socket count, SNC mode, local DDR
// channels, and a list of far-memory devices each carrying its own
// controller, link and DRAM parameters — and a Builder validates the spec
// and assembles the System the rest of the simulator runs on. The paper's
// Table-1 machine is just the default registered profile (Table1Spec);
// every other platform is the same few lines of data with different
// numbers, so "many machines × many workloads" needs no new constructor
// code.
package topo

import (
	"fmt"

	"cxlmem/internal/cache"
	"cxlmem/internal/coherence"
	"cxlmem/internal/link"
	"cxlmem/internal/mem"
)

// DeviceSpec describes one far-memory device of a platform: the DRAM behind
// it, the controller in front of it, and the link it is reached over.
type DeviceSpec struct {
	// Name identifies the device in specs and diagnostics ("CXL-A", ...).
	// Names must be unique within a platform and may not reuse the local
	// DDR pool's reserved name ("DDR5-L").
	Name string
	// Tech is the DRAM technology behind the controller.
	Tech mem.DRAMTech
	// Channels is the number of populated DRAM channels.
	Channels int
	// Ctrl is the controller profile (kind, port latency, Fig.-4-style
	// efficiency tables).
	Ctrl mem.Controller
	// CapacityBytes is the usable capacity.
	CapacityBytes int64
	// Link is the device-side interconnect: the CXL/PCIe link for a true
	// CXL device, or the inter-socket link (UPI) for an emulated device.
	Link link.Link
	// Emulated marks a remote-NUMA emulation of CXL memory: the device is
	// the other socket's DRAM, reached over the inter-socket link with
	// remote-directory coherence (mesh→Link→mesh). False means a true CXL
	// device (mesh→Link) resolved by the on-chip CXL home structure.
	Emulated bool
}

// device materializes the spec's mem.Device.
func (d DeviceSpec) device() *mem.Device {
	return &mem.Device{
		Name:          d.Name,
		Tech:          d.Tech,
		Channels:      d.Channels,
		Ctrl:          d.Ctrl,
		CapacityBytes: d.CapacityBytes,
	}
}

// Spec declaratively describes a whole platform. The zero value is not
// runnable — start from Table1Spec or a registered platform profile and
// override fields.
type Spec struct {
	// Name identifies the platform ("table1", "x16-quad", ...).
	Name string
	// Desc is a one-line description for catalogs.
	Desc string
	// Sockets is the CPU socket count (1 or 2). Emulated devices need the
	// second socket's DRAM, so they require Sockets == 2.
	Sockets int
	// Cores is the per-socket core count visible to the cache hierarchy;
	// 0 uses the evaluated Xeon 6430's 32 cores.
	Cores int
	// SNCNodes is the sub-NUMA cluster count (1 = SNC off). Cores must
	// divide evenly among nodes and the node index must fit the packed
	// cache-line home field (cache.MaxHomeNode).
	SNCNodes int
	// LocalDDRChannels is the number of socket-local DDR5-4800 channels
	// visible to the workload.
	LocalDDRChannels int
	// Devices lists the far-memory devices in presentation order.
	Devices []DeviceSpec
	// DefaultFarDevice names the device scenarios use when a spec names
	// none; empty selects the first non-emulated device (falling back to
	// the first device of any kind).
	DefaultFarDevice string
	// CXLBreaksSNCIsolation mirrors the measured LLC behaviour (O6);
	// disable for the ablation.
	CXLBreaksSNCIsolation bool
	// CoherenceCongestion keeps the remote directory's burst penalty on
	// emulated devices; disable for the O3 ablation.
	CoherenceCongestion bool
	// Seed drives any stochastic components layered on the system.
	Seed uint64
}

// config derives the legacy Config view of the spec.
func (sp Spec) config() Config {
	return Config{
		SNCNodes:              sp.SNCNodes,
		LocalDDRChannels:      sp.LocalDDRChannels,
		CXLBreaksSNCIsolation: sp.CXLBreaksSNCIsolation,
		CoherenceCongestion:   sp.CoherenceCongestion,
		Seed:                  sp.Seed,
	}
}

// defaultFar resolves the spec's default far device name. Validate has
// already established that Devices is non-empty and an explicit name exists.
func (sp Spec) defaultFar() string {
	if sp.DefaultFarDevice != "" {
		return sp.DefaultFarDevice
	}
	for _, d := range sp.Devices {
		if !d.Emulated {
			return d.Name
		}
	}
	return sp.Devices[0].Name
}

// Validate reports the first problem that would make the spec unbuildable,
// with enough context to fix the offending field. It is the home of every
// constraint the old hand-written constructor enforced by panicking (or, for
// the packed home-node limit, by a panic deep inside cache.packWord on the
// first routed access).
func (sp Spec) Validate() error {
	if sp.Sockets != 1 && sp.Sockets != 2 {
		return fmt.Errorf("topo: platform %q: %d sockets (want 1 or 2)", sp.Name, sp.Sockets)
	}
	cores := sp.Cores
	if cores == 0 {
		cores = cache.SPRHierConfig(1).Cores
	}
	if cores <= 0 {
		return fmt.Errorf("topo: platform %q: %d cores", sp.Name, sp.Cores)
	}
	if sp.SNCNodes <= 0 || cores%sp.SNCNodes != 0 {
		return fmt.Errorf("topo: platform %q: %d cores do not divide into %d SNC nodes",
			sp.Name, cores, sp.SNCNodes)
	}
	if sp.SNCNodes-1 > cache.MaxHomeNode {
		return fmt.Errorf("topo: platform %q: %d SNC nodes exceed the packed cache-line home limit (max node %d)",
			sp.Name, sp.SNCNodes, cache.MaxHomeNode)
	}
	if sp.LocalDDRChannels <= 0 {
		return fmt.Errorf("topo: platform %q: non-positive local DDR channel count %d",
			sp.Name, sp.LocalDDRChannels)
	}
	if len(sp.Devices) == 0 {
		return fmt.Errorf("topo: platform %q: no far-memory devices", sp.Name)
	}
	seen := make(map[string]bool, len(sp.Devices))
	for i, d := range sp.Devices {
		if d.Name == "" {
			return fmt.Errorf("topo: platform %q: device %d has no name", sp.Name, i)
		}
		if d.Name == "DDR5-L" {
			return fmt.Errorf("topo: platform %q: device name %q is reserved for the local DDR pool",
				sp.Name, d.Name)
		}
		if seen[d.Name] {
			return fmt.Errorf("topo: platform %q: duplicate device name %q", sp.Name, d.Name)
		}
		seen[d.Name] = true
		if d.Emulated && sp.Sockets < 2 {
			return fmt.Errorf("topo: platform %q: emulated device %q needs a second socket",
				sp.Name, d.Name)
		}
		if err := d.device().Validate(); err != nil {
			return fmt.Errorf("topo: platform %q: device %q: %w", sp.Name, d.Name, err)
		}
		l := d.Link
		if err := l.Validate(); err != nil {
			return fmt.Errorf("topo: platform %q: device %q: %w", sp.Name, d.Name, err)
		}
	}
	if sp.DefaultFarDevice != "" && !seen[sp.DefaultFarDevice] {
		return fmt.Errorf("topo: platform %q: default far device %q is not in the device list",
			sp.Name, sp.DefaultFarDevice)
	}
	return nil
}

// Builder assembles a System from a Spec. The zero Builder is not useful —
// construct one with NewBuilder so the spec travels with it.
type Builder struct {
	spec Spec
}

// NewBuilder returns a builder for the spec.
func NewBuilder(spec Spec) *Builder { return &Builder{spec: spec} }

// Build validates the spec and assembles the system. Every constraint is
// checked up front, so a returned System routes every access without
// tripping the packed-word limits deeper in the cache engine.
func (b *Builder) Build() (*System, error) {
	sp := b.spec
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	hcfg := cache.SPRHierConfig(sp.SNCNodes)
	if sp.Cores != 0 {
		hcfg.Cores = sp.Cores
	}
	hcfg.CXLBreaksIsolation = sp.CXLBreaksSNCIsolation

	s := &System{
		cfg:        sp.config(),
		spec:       sp,
		defaultFar: sp.defaultFar(),
		Hier:       cache.NewHierarchy(hcfg),
		DDRLocal: &Path{
			Name:   "DDR5-L",
			Device: mem.DDR5Local(sp.LocalDDRChannels),
			Links:  []*link.Link{link.Mesh()},
			Coh:    coherence.LocalCHA(),
		},
		CXL: make(map[string]*Path),
	}
	s.paths = append(s.paths, s.DDRLocal)
	for _, d := range sp.Devices {
		l := d.Link
		var p *Path
		if d.Emulated {
			coh := coherence.RemoteDirectory()
			if !sp.CoherenceCongestion {
				coh.BurstPenalty = coherence.CXLHomeStructure().BurstPenalty
			}
			p = &Path{
				Name:         d.Name,
				Device:       d.device(),
				Links:        []*link.Link{link.Mesh(), &l, link.Mesh()},
				Coh:          coh,
				IsRemoteNUMA: true,
			}
			if s.DDRRemote == nil {
				s.DDRRemote = p
			}
		} else {
			p = &Path{
				Name:   d.Name,
				Device: d.device(),
				Links:  []*link.Link{link.Mesh(), &l},
				Coh:    coherence.CXLHomeStructure(),
				IsCXL:  true,
			}
			s.CXL[d.Name] = p
		}
		s.paths = append(s.paths, p)
	}
	return s, nil
}

// Build is the one-shot form of NewBuilder(spec).Build().
func Build(spec Spec) (*System, error) { return NewBuilder(spec).Build() }

// MustBuild builds the spec and panics on validation errors — for
// code-defined specs whose invalidity is a programming error.
func MustBuild(spec Spec) *System {
	s, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return s
}
