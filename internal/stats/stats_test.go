package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"cxlmem/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPercentileBasics(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("Percentile(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingle(t *testing.T) {
	if got := Percentile([]float64{42}, 99); got != 42 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Errorf("Percentile mutated input: %v", vals)
	}
}

func TestPercentileSortedAgrees(t *testing.T) {
	r := sim.NewRng(5)
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = r.Float64() * 1000
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	for _, p := range []float64{0, 10, 50, 90, 99, 100} {
		if a, b := Percentile(vals, p), PercentileSorted(sorted, p); a != b {
			t.Errorf("p=%v: Percentile=%v PercentileSorted=%v", p, a, b)
		}
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { Percentile(nil, 50) },
		"negative": func() { Percentile([]float64{1}, -1) },
		"over100":  func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	r := sim.NewRng(6)
	f := func(seed uint32) bool {
		rr := sim.NewRng(uint64(seed))
		n := rr.Intn(100) + 2
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 100
		}
		// Percentile must be monotone non-decreasing in p and bounded by
		// min/max of the sample.
		prev := math.Inf(-1)
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for p := 0.0; p <= 100; p += 7 {
			cur := Percentile(vals, p)
			if cur < prev || cur < lo-1e-9 || cur > hi+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 100}); !almost(got, 10, 1e-9) {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean with non-positive value should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestCDF(t *testing.T) {
	points := CDF([]float64{4, 1, 3, 2}, 1)
	if len(points) != 4 {
		t.Fatalf("CDF returned %d points", len(points))
	}
	wantVals := []float64{1, 2, 3, 4}
	for i, p := range points {
		if p.Value != wantVals[i] {
			t.Errorf("point %d value = %v, want %v", i, p.Value, wantVals[i])
		}
		if wantFrac := float64(i+1) / 4; p.Fraction != wantFrac {
			t.Errorf("point %d fraction = %v, want %v", i, p.Fraction, wantFrac)
		}
	}
}

func TestCDFTruncation(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	points := CDF(vals, 0.99)
	if len(points) != 990 {
		t.Errorf("CDF truncated at %d points, want 990", len(points))
	}
	if points[len(points)-1].Fraction > 0.99 {
		t.Errorf("last fraction %v exceeds 0.99", points[len(points)-1].Fraction)
	}
	if CDF(nil, 1) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); !almost(got, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", got)
	}
	yNeg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yNeg); !almost(got, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson with constant series = %v, want 0", got)
	}
}

func TestPearsonRangeProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := sim.NewRng(uint64(seed) + 1)
		n := r.Intn(50) + 3
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()
			y[i] = r.Float64()
		}
		p := Pearson(x, y)
		return p >= -1-1e-9 && p <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearsonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestWelford(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range data {
		w.Add(v)
	}
	if w.N() != len(data) {
		t.Errorf("N = %d", w.N())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if !almost(w.Variance(), 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", w.Variance())
	}
	if !almost(w.StdDev(), 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", w.StdDev())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Error("empty Welford should report zeros")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Error("single-sample variance should be 0")
	}
}

func TestMovingAverage(t *testing.T) {
	m := NewMovingAverage(3)
	if m.Value() != 0 || m.N() != 0 {
		t.Error("empty moving average should be 0")
	}
	if got := m.Add(3); got != 3 {
		t.Errorf("after [3]: %v", got)
	}
	if got := m.Add(6); got != 4.5 {
		t.Errorf("after [3 6]: %v", got)
	}
	if got := m.Add(9); got != 6 {
		t.Errorf("after [3 6 9]: %v", got)
	}
	if got := m.Add(12); got != 9 { // window slides: [6 9 12]
		t.Errorf("after slide: %v, want 9", got)
	}
	if m.N() != 3 {
		t.Errorf("N = %d, want 3", m.N())
	}
}

func TestMovingAverageWindowOne(t *testing.T) {
	m := NewMovingAverage(1)
	m.Add(5)
	if got := m.Add(7); got != 7 {
		t.Errorf("window-1 average = %v, want 7", got)
	}
}

func TestMovingAveragePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMovingAverage(0) should panic")
		}
	}()
	NewMovingAverage(0)
}

func TestFitLinearRecoversKnownModel(t *testing.T) {
	// Y = 3 + 2*x1 - 0.5*x2, no noise: fit must recover exactly.
	r := sim.NewRng(101)
	var rows [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x1 := r.Float64() * 10
		x2 := r.Float64() * 100
		rows = append(rows, []float64{x1, x2})
		y = append(y, 3+2*x1-0.5*x2)
	}
	m, err := FitLinear(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.Intercept, 3, 1e-6) {
		t.Errorf("intercept = %v, want 3", m.Intercept)
	}
	if !almost(m.Coefficients[0], 2, 1e-6) || !almost(m.Coefficients[1], -0.5, 1e-6) {
		t.Errorf("coefficients = %v", m.Coefficients)
	}
	if r2 := m.R2(rows, y); !almost(r2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", r2)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	r := sim.NewRng(103)
	var rows [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		x := r.Float64() * 10
		rows = append(rows, []float64{x})
		y = append(y, 1+4*x+r.Normal(0, 0.1))
	}
	m, err := FitLinear(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.Coefficients[0], 4, 0.05) {
		t.Errorf("slope = %v, want ~4", m.Coefficients[0])
	}
	if r2 := m.R2(rows, y); r2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", r2)
	}
}

func TestFitLinearSingular(t *testing.T) {
	// Constant feature makes the system singular.
	rows := [][]float64{{1}, {1}, {1}}
	y := []float64{1, 2, 3}
	if _, err := FitLinear(rows, y); err == nil {
		t.Error("expected singular error for constant feature")
	}
}

func TestFitLinearValidation(t *testing.T) {
	if _, err := FitLinear(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
	if _, err := FitLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined fit should error")
	}
	if _, err := FitLinear([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should error")
	}
	if _, err := FitLinear([][]float64{{}, {}}, []float64{1, 2}); err == nil {
		t.Error("zero features should error")
	}
}

func TestPredictPanicsOnArity(t *testing.T) {
	m := &LinearModel{Intercept: 1, Coefficients: []float64{2}}
	defer func() {
		if recover() == nil {
			t.Error("Predict with wrong arity should panic")
		}
	}()
	m.Predict([]float64{1, 2})
}

func TestFitLinearPredictConsistencyProperty(t *testing.T) {
	// Property: for data generated by any linear model, the fit predicts the
	// training responses (noise-free => exactly, within tolerance).
	f := func(seed uint32) bool {
		r := sim.NewRng(uint64(seed) + 7)
		b0 := r.Float64()*10 - 5
		b1 := r.Float64()*10 - 5
		b2 := r.Float64()*10 - 5
		var rows [][]float64
		var y []float64
		for i := 0; i < 30; i++ {
			x1, x2 := r.Float64()*10, r.Float64()*10
			rows = append(rows, []float64{x1, x2})
			y = append(y, b0+b1*x1+b2*x2)
		}
		m, err := FitLinear(rows, y)
		if err != nil {
			return false
		}
		for i, row := range rows {
			if !almost(m.Predict(row), y[i], 1e-5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
