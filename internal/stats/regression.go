package stats

import (
	"errors"
	"fmt"
	"math"
)

// LinearModel is a fitted multiple linear regression
//
//	Y = β0 + β1·X1 + β2·X2 + … + βk·Xk
//
// exactly the estimator form the paper uses for Caption (§6.1, Eq. 1): the
// X_n are PMU counter values (L1 miss latency, DDR read latency, IPC) and Y
// is the estimated memory-subsystem performance.
type LinearModel struct {
	// Intercept is β0.
	Intercept float64
	// Coefficients holds β1..βk, one per feature.
	Coefficients []float64
}

// ErrSingular is returned when the normal-equation system is singular —
// typically because a feature is constant or two features are collinear in
// the training data.
var ErrSingular = errors.New("stats: singular regression system")

// FitLinear fits the model by ordinary least squares using the normal
// equations with Gaussian elimination and partial pivoting. rows[i] is the
// feature vector for observation i; y[i] is the response. All rows must have
// the same length k >= 1 and there must be at least k+1 observations.
func FitLinear(rows [][]float64, y []float64) (*LinearModel, error) {
	n := len(rows)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: FitLinear with %d rows and %d responses", n, len(y))
	}
	k := len(rows[0])
	if k == 0 {
		return nil, errors.New("stats: FitLinear with zero features")
	}
	for i, r := range rows {
		if len(r) != k {
			return nil, fmt.Errorf("stats: row %d has %d features, want %d", i, len(r), k)
		}
	}
	if n < k+1 {
		return nil, fmt.Errorf("stats: %d observations cannot identify %d parameters", n, k+1)
	}

	// Build the (k+1)x(k+1) normal equations A·β = b over the design matrix
	// with a leading column of ones for the intercept.
	dim := k + 1
	a := make([][]float64, dim)
	for i := range a {
		a[i] = make([]float64, dim+1) // augmented column holds b
	}
	feat := func(row []float64, j int) float64 {
		if j == 0 {
			return 1
		}
		return row[j-1]
	}
	for idx, row := range rows {
		for i := 0; i < dim; i++ {
			fi := feat(row, i)
			for j := 0; j < dim; j++ {
				a[i][j] += fi * feat(row, j)
			}
			a[i][dim] += fi * y[idx]
		}
	}

	beta, err := solveGaussian(a)
	if err != nil {
		return nil, err
	}
	return &LinearModel{Intercept: beta[0], Coefficients: beta[1:]}, nil
}

// solveGaussian solves the augmented system in place and returns the solution
// vector. a is dim rows of dim+1 columns.
func solveGaussian(a [][]float64) ([]float64, error) {
	dim := len(a)
	for col := 0; col < dim; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < dim; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		// Eliminate below.
		for r := col + 1; r < dim; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= dim; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	// Back substitution.
	beta := make([]float64, dim)
	for i := dim - 1; i >= 0; i-- {
		sum := a[i][dim]
		for j := i + 1; j < dim; j++ {
			sum -= a[i][j] * beta[j]
		}
		beta[i] = sum / a[i][i]
	}
	return beta, nil
}

// Predict evaluates the model at the feature vector x, which must have one
// value per coefficient.
func (m *LinearModel) Predict(x []float64) float64 {
	if len(x) != len(m.Coefficients) {
		panic(fmt.Sprintf("stats: Predict with %d features, model has %d", len(x), len(m.Coefficients)))
	}
	y := m.Intercept
	for i, c := range m.Coefficients {
		y += c * x[i]
	}
	return y
}

// R2 returns the coefficient of determination of the model over the given
// data — a fit-quality diagnostic used by the Caption calibration tests.
func (m *LinearModel) R2(rows [][]float64, y []float64) float64 {
	if len(rows) != len(y) || len(rows) == 0 {
		panic("stats: R2 with mismatched or empty data")
	}
	mean := Mean(y)
	var ssRes, ssTot float64
	for i, row := range rows {
		d := y[i] - m.Predict(row)
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
