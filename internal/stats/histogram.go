// Fixed-bucket histograms for the serving layer: cxlserve records
// per-endpoint request latencies into geometric buckets and serves p50/p99
// from /metrics without retaining raw samples. Quantiles interpolate within
// the winning bucket, so accuracy is bounded by the bucket growth factor
// (×2 for LatencyBounds: a quantile is within ~2× of the true value, which
// is what a load-shedding gate needs — the raw-sample Percentile helpers
// remain the precise tool for offline analysis).
package stats

import (
	"fmt"
	"sort"
)

// Histogram counts observations in fixed buckets with ascending upper
// bounds; values above the last bound land in an overflow bucket. It is not
// safe for concurrent use — callers that share one (the cxlserve metrics
// registry) guard it with their own lock.
type Histogram struct {
	bounds []float64 // ascending inclusive upper bounds
	counts []uint64  // len(bounds)+1; last = overflow
	count  uint64
	sum    float64
}

// NewHistogram creates a histogram over the given ascending upper bounds.
// It panics on an empty or unsorted bound list — layouts are compile-time
// decisions.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: NewHistogram with no bounds")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("stats: NewHistogram bounds not ascending: %v", bounds))
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// LatencyBounds is the request-latency layout used by cxlserve: geometric
// ×2 buckets from 10 µs to ~84 s (in seconds), spanning a cache-hit JSON
// response through a cold full-fidelity regeneration.
func LatencyBounds() []float64 {
	bounds := make([]float64, 24)
	v := 10e-6
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Quantile returns the q-th quantile (q in [0, 1]) estimated by linear
// interpolation inside the winning bucket; the overflow bucket reports the
// last bound. An empty histogram reports 0. It panics on q out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range [0,1]", q))
	}
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(h.counts)-1 {
			if i == len(h.counts)-1 {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}
