// Package stats implements the statistical primitives used throughout the
// cxlmem reproduction: percentiles and CDFs for tail-latency experiments,
// Pearson correlation and multiple linear regression for the Caption
// estimator (paper §6, Eq. 1), and streaming helpers (Welford accumulators,
// moving averages) for the telemetry sampler.
//
// Only the Go standard library is used.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (p in [0, 100]) of values using
// linear interpolation between closest ranks (the "linear" method used by
// numpy and most benchmarking tools). It does not modify values.
// Percentile panics if values is empty or p is out of range.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is Percentile for an already ascending-sorted slice,
// avoiding the copy and sort. The caller must guarantee the ordering.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: PercentileSorted of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean; it panics on an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		panic("stats: Mean of empty slice")
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// GeoMean returns the geometric mean of strictly positive values. The paper
// uses a geometric mean to combine Redis and DLRM throughput into one number
// (§6.2). It panics on an empty slice or non-positive input.
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		panic("stats: GeoMean of empty slice")
	}
	sumLog := 0.0
	for _, v := range values {
		if v <= 0 {
			panic("stats: GeoMean of non-positive value")
		}
		sumLog += math.Log(v)
	}
	return math.Exp(sumLog / float64(len(values)))
}

// CDFPoint is one step of an empirical cumulative distribution function.
type CDFPoint struct {
	Value    float64 // sample value
	Fraction float64 // fraction of samples <= Value, in (0, 1]
}

// CDF computes the empirical CDF of values, optionally truncated at the
// maxFraction quantile (the paper's Fig. 7 shows the distribution "up to the
// p99 latency", i.e. maxFraction = 0.99). Pass maxFraction = 1 for the whole
// distribution.
func CDF(values []float64, maxFraction float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i, v := range sorted {
		f := float64(i+1) / n
		if f > maxFraction {
			break
		}
		out = append(out, CDFPoint{Value: v, Fraction: f})
	}
	return out
}

// Pearson returns the Pearson correlation coefficient between x and y.
// The paper uses it to quantify synchrony between the Caption estimator's
// output and the measured throughput time series (§6.2, Fig. 12).
// It returns 0 when either series has zero variance, and panics when the
// series lengths differ or are empty.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	if len(x) == 0 {
		panic("stats: Pearson of empty series")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Welford accumulates a running mean and variance in a single pass with good
// numerical stability. The zero value is an empty accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 with fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// MovingAverage keeps the mean of the most recent Window observations.
// Caption feeds each counter through a 5-sample moving average before the
// estimator (paper §6.1, M2).
type MovingAverage struct {
	window int
	buf    []float64
	next   int
	filled bool
	sum    float64
}

// NewMovingAverage creates a window of the given size (must be positive).
func NewMovingAverage(window int) *MovingAverage {
	if window <= 0 {
		panic("stats: non-positive moving average window")
	}
	return &MovingAverage{window: window, buf: make([]float64, window)}
}

// Add inserts an observation and returns the current average.
func (m *MovingAverage) Add(x float64) float64 {
	if m.filled {
		m.sum -= m.buf[m.next]
	}
	m.buf[m.next] = x
	m.sum += x
	m.next++
	if m.next == m.window {
		m.next = 0
		m.filled = true
	}
	return m.Value()
}

// Value returns the mean of the observations currently in the window; 0 when
// no observations have been added.
func (m *MovingAverage) Value() float64 {
	n := m.window
	if !m.filled {
		n = m.next
	}
	if n == 0 {
		return 0
	}
	return m.sum / float64(n)
}

// N returns the number of samples currently in the window.
func (m *MovingAverage) N() int {
	if m.filled {
		return m.window
	}
	return m.next
}
