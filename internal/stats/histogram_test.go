package stats

import (
	"math"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.6, 3, 3, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	if want := 0.5 + 1.5 + 1.6 + 9 + 100; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", h.Sum(), want)
	}
	// Overflow values report the last bound.
	if got := h.Quantile(1); got != 8 {
		t.Errorf("Quantile(1) = %v, want 8 (overflow reports last bound)", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	vals := []float64{0.0001, 0.0002, 0.001, 0.002, 0.01, 0.05, 0.1, 0.5, 1, 2}
	for _, v := range vals {
		h.Observe(v)
	}
	prev := -1.0
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := h.Quantile(q)
		if got < prev {
			t.Errorf("Quantile(%v) = %v < previous %v (not monotone)", q, got, prev)
		}
		prev = got
	}
	// The median of the sample is ~10ms; the estimate must land within the
	// winning x2 bucket.
	if med := h.Quantile(0.5); med < 0.005 || med > 0.04 {
		t.Errorf("median estimate %v implausible for sample around 10ms", med)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram([]float64{1})
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("empty bounds", func() { NewHistogram(nil) })
	expectPanic("unsorted bounds", func() { NewHistogram([]float64{2, 1}) })
	expectPanic("bad quantile", func() { NewHistogram([]float64{1}).Quantile(1.5) })
}

func TestLatencyBounds(t *testing.T) {
	b := LatencyBounds()
	if len(b) != 24 || b[0] != 10e-6 {
		t.Fatalf("bounds = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if math.Abs(b[i]/b[i-1]-2) > 1e-9 {
			t.Fatalf("bounds not geometric x2 at %d: %v", i, b)
		}
	}
}
