// Package mem models the memory devices of the evaluated system: socket-local
// DDR5, remote-socket DDR5 (the NUMA emulation of CXL memory), and the three
// true CXL memory devices of Table 1 (CXL-A: ASIC + DDR5-4800, CXL-B: ASIC +
// 2×DDR4-2400, CXL-C: FPGA + DDR4-3200).
//
// Two things about a device are *calibrated* from the paper's measurements,
// because they are properties of proprietary controller silicon that cannot
// be derived from first principles: the DRAM/controller latency components
// and the bandwidth-efficiency tables of Figure 4 (fraction of theoretical
// peak bandwidth actually delivered, per instruction type and per read:write
// mix). Everything layered above — loaded latency, application throughput,
// page-allocation policy behaviour — emerges from the model.
package mem

import (
	"fmt"
	"math"

	"cxlmem/internal/sim"
)

// CacheLineBytes is the transfer granularity of every device access.
const CacheLineBytes = 64

// InstrType enumerates the memory access instruction types characterized by
// the paper's memo microbenchmark (§3.2).
type InstrType int

const (
	// Load is a temporal load (ld): allocates in the cache hierarchy.
	Load InstrType = iota
	// NTLoad is an AVX-512 non-temporal load (nt-ld): bypasses caches but,
	// for a cacheable region, still participates in coherence.
	NTLoad
	// Store is a temporal store (st): on a miss it triggers an implicit
	// read-for-ownership (cache write-allocate) before writing.
	Store
	// NTStore is a non-temporal store (nt-st): sends address and data in one
	// traversal, allocates no cache line, and performs no implicit read.
	NTStore

	numInstrTypes
)

// String returns the paper's abbreviation for the instruction type.
func (t InstrType) String() string {
	switch t {
	case Load:
		return "ld"
	case NTLoad:
		return "nt-ld"
	case Store:
		return "st"
	case NTStore:
		return "nt-st"
	default:
		return fmt.Sprintf("InstrType(%d)", int(t))
	}
}

// IsWrite reports whether the instruction moves data toward memory.
func (t InstrType) IsWrite() bool { return t == Store || t == NTStore }

// InstrTypes lists all instruction types in presentation order.
func InstrTypes() []InstrType { return []InstrType{Load, NTLoad, Store, NTStore} }

// DRAMTech describes a DRAM technology generation.
type DRAMTech struct {
	// Name is the JEDEC-style name, e.g. "DDR5-4800".
	Name string
	// PerChannelGBs is the theoretical peak bandwidth of one channel in
	// GB/s (bytes per nanosecond).
	PerChannelGBs float64
	// AccessLatency is the device-level random access latency (activate +
	// read + transfer for a closed-page random access).
	AccessLatency sim.Time
}

// Standard DRAM technologies of Table 1.
var (
	DDR54800 = DRAMTech{Name: "DDR5-4800", PerChannelGBs: 38.4, AccessLatency: 55 * sim.Nanosecond}
	DDR43200 = DRAMTech{Name: "DDR4-3200", PerChannelGBs: 25.6, AccessLatency: 60 * sim.Nanosecond}
	DDR42400 = DRAMTech{Name: "DDR4-2400", PerChannelGBs: 19.2, AccessLatency: 68 * sim.Nanosecond}
)

// IPKind distinguishes the controller implementation technologies of the
// three CXL devices (Table 1) and the host-side controllers.
type IPKind int

const (
	// HostMC is the CPU's own integrated memory controller.
	HostMC IPKind = iota
	// HardIP is an ASIC CXL controller (devices CXL-A and CXL-B).
	HardIP
	// SoftIP is an FPGA-based CXL controller (device CXL-C).
	SoftIP
)

// String names the controller kind as Table 1 does.
func (k IPKind) String() string {
	switch k {
	case HostMC:
		return "Host MC"
	case HardIP:
		return "Hard IP"
	case SoftIP:
		return "Soft IP"
	default:
		return fmt.Sprintf("IPKind(%d)", int(k))
	}
}

// MixPoint indexes the read:write ratios measured by Intel MLC (Fig. 4a).
type MixPoint int

const (
	AllRead MixPoint = iota // 100% reads
	RW31                    // 3 reads : 1 write
	RW21                    // 2 reads : 1 write
	RW11                    // 1 read : 1 write
	numMixPoints
)

// String returns the paper's label for the mix.
func (m MixPoint) String() string {
	switch m {
	case AllRead:
		return "All read"
	case RW31:
		return "3:1-RW"
	case RW21:
		return "2:1-RW"
	case RW11:
		return "1:1-RW"
	default:
		return fmt.Sprintf("MixPoint(%d)", int(m))
	}
}

// WriteFraction returns the fraction of accesses that are writes at the mix.
func (m MixPoint) WriteFraction() float64 {
	switch m {
	case AllRead:
		return 0
	case RW31:
		return 0.25
	case RW21:
		return 1.0 / 3.0
	case RW11:
		return 0.5
	default:
		panic("mem: invalid mix point")
	}
}

// MixPoints lists the MLC mixes in presentation order.
func MixPoints() []MixPoint { return []MixPoint{AllRead, RW31, RW21, RW11} }

// Controller captures the efficiency characteristics of a memory/CXL
// controller, calibrated to the paper's Figure 4 measurements.
type Controller struct {
	// Kind is the implementation technology.
	Kind IPKind
	// PortLatency is the one-way latency through the controller's protocol
	// and scheduling pipeline (per traversal; a round trip pays it twice).
	PortLatency sim.Time
	// MixEff is the delivered fraction of theoretical peak bandwidth for
	// each MLC read:write mix (Fig. 4a).
	MixEff [numMixPoints]float64
	// InstrEff is the delivered fraction of theoretical peak bandwidth for
	// single-instruction-type streams (Fig. 4b).
	InstrEff [numInstrTypes]float64
}

// Validate reports parameter errors.
func (c *Controller) Validate() error {
	if c.PortLatency < 0 {
		return fmt.Errorf("mem: controller with negative port latency")
	}
	for i, e := range c.MixEff {
		if e <= 0 || e > 1 {
			return fmt.Errorf("mem: mix efficiency[%v] = %v out of (0,1]", MixPoint(i), e)
		}
	}
	for i, e := range c.InstrEff {
		if e <= 0 || e > 1 {
			return fmt.Errorf("mem: instr efficiency[%v] = %v out of (0,1]", InstrType(i), e)
		}
	}
	return nil
}

// Device is one memory device reachable from the CPU.
type Device struct {
	// Name is the Table-1 identifier ("DDR5-L", "DDR5-R", "CXL-A", ...).
	Name string
	// Tech is the DRAM technology behind the controller.
	Tech DRAMTech
	// Channels is the number of populated DRAM channels.
	Channels int
	// Ctrl is the controller profile.
	Ctrl Controller
	// CapacityBytes is the usable capacity.
	CapacityBytes int64
}

// Validate reports configuration errors.
func (d *Device) Validate() error {
	if d.Channels <= 0 {
		return fmt.Errorf("mem: device %s has %d channels", d.Name, d.Channels)
	}
	if d.CapacityBytes <= 0 {
		return fmt.Errorf("mem: device %s has non-positive capacity", d.Name)
	}
	return d.Ctrl.Validate()
}

// PeakGBs returns the theoretical peak bandwidth in GB/s: channels ×
// per-channel DRAM bandwidth (the denominator of the paper's "bandwidth
// efficiency" metric).
func (d *Device) PeakGBs() float64 {
	return float64(d.Channels) * d.Tech.PerChannelGBs
}

// EffInstr returns the delivered fraction of peak for a pure stream of the
// given instruction type.
func (d *Device) EffInstr(t InstrType) float64 { return d.Ctrl.InstrEff[t] }

// EffMix returns the delivered fraction of peak for an MLC mix point.
func (d *Device) EffMix(m MixPoint) float64 { return d.Ctrl.MixEff[m] }

// EffWriteFraction interpolates the mix-efficiency table for an arbitrary
// write fraction in [0, 1]. Write fractions beyond 1:1 clamp to the 1:1
// value (MLC does not measure write-dominated mixes and neither does the
// paper).
func (d *Device) EffWriteFraction(wf float64) float64 {
	if wf <= 0 {
		return d.Ctrl.MixEff[AllRead]
	}
	points := MixPoints()
	for i := 0; i < len(points)-1; i++ {
		lo, hi := points[i], points[i+1]
		lw, hw := lo.WriteFraction(), hi.WriteFraction()
		if wf <= hw {
			frac := (wf - lw) / (hw - lw)
			return d.Ctrl.MixEff[lo]*(1-frac) + d.Ctrl.MixEff[hi]*frac
		}
	}
	return d.Ctrl.MixEff[RW11]
}

// EffectiveGBs returns the deliverable bandwidth in GB/s for a demand with
// the given write fraction.
func (d *Device) EffectiveGBs(writeFraction float64) float64 {
	return d.PeakGBs() * d.EffWriteFraction(writeFraction)
}

// queueK controls the steepness of the loaded-latency curve. Calibrated so a
// DDR device at ~95 % utilization runs at ~4× its unloaded latency (the
// 400–600 ns loaded-latency knee MLC measures on real DDR5), which places
// the DDR-vs-CXL offload break-even near 90 % utilization — the regime the
// paper's bandwidth-expansion findings (F4, Fig. 11a) live in.
const queueK = 0.17

// maxUtil caps utilization inside the queueing formula so the delay stays
// finite at saturation.
const maxUtil = 0.98

// QueueFactor returns the multiplicative latency inflation at utilization u
// (fraction of *effective* bandwidth in use). It is 1 at idle and grows as
// u/(1-u), the standard single-server queueing shape behind the paper's
// "contention and resulting queuing delay at the memory controller" (§6.1).
func QueueFactor(u float64) float64 {
	if u <= 0 {
		return 1
	}
	if u > maxUtil {
		u = maxUtil
	}
	return 1 + queueK*u*u/(1-u)
}

// Demand is the aggregate traffic offered to a device during one epoch.
type Demand struct {
	// ReadBytes and WriteBytes are the offered volumes.
	ReadBytes  float64
	WriteBytes float64
}

// Total returns the total offered bytes.
func (dm Demand) Total() float64 { return dm.ReadBytes + dm.WriteBytes }

// WriteFraction returns the write share of the offered traffic (0 when the
// demand is empty).
func (dm Demand) WriteFraction() float64 {
	t := dm.Total()
	if t == 0 {
		return 0
	}
	return dm.WriteBytes / t
}

// Served is the outcome of offering a Demand to a device for one epoch.
type Served struct {
	// ReadBytes and WriteBytes are the volumes actually transferred.
	ReadBytes  float64
	WriteBytes float64
	// Utilization is the fraction of the device's effective bandwidth
	// consumed during the epoch.
	Utilization float64
	// LatencyFactor is the queueing inflation to apply to unloaded access
	// latency during this epoch.
	LatencyFactor float64
}

// Total returns the total transferred bytes.
func (s Served) Total() float64 { return s.ReadBytes + s.WriteBytes }

// Serve resolves an epoch: the device transfers as much of the demand as its
// effective bandwidth allows (scaling reads and writes proportionally when
// oversubscribed) and reports utilization and the resulting latency factor.
func (d *Device) Serve(dm Demand, window sim.Time) Served {
	if window <= 0 {
		panic("mem: Serve with non-positive window")
	}
	total := dm.Total()
	if total <= 0 {
		return Served{LatencyFactor: 1}
	}
	capacity := d.EffectiveGBs(dm.WriteFraction()) * window.Nanoseconds()
	if capacity <= 0 {
		return Served{LatencyFactor: QueueFactor(1)}
	}
	scale := 1.0
	if total > capacity {
		scale = capacity / total
	}
	u := math.Min(total/capacity, 1)
	return Served{
		ReadBytes:     dm.ReadBytes * scale,
		WriteBytes:    dm.WriteBytes * scale,
		Utilization:   u,
		LatencyFactor: QueueFactor(u),
	}
}
