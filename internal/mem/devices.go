package mem

import "cxlmem/internal/sim"

// Standard device profiles, calibrated against Table 1 and Figure 4 of the
// paper. The efficiency tables encode the measured "bandwidth efficiency"
// values (fraction of theoretical maximum actually delivered); the latency
// fields encode controller pipeline costs consistent with Figure 3. See
// DESIGN.md §1 for the calibrated-vs-emergent split.

const gib = int64(1) << 30

// hostMixEff / hostInstrEff: socket-local DDR5 through the CPU's own memory
// controllers. The paper does not plot DDR5-L in Fig. 4 (it is the
// normalization baseline elsewhere); values follow well-known SPR behaviour:
// ~85 % of peak for streaming reads, lower for temporal stores because each
// one moves two lines (RFO read + writeback).
func hostController() Controller {
	return Controller{
		Kind:        HostMC,
		PortLatency: 6 * sim.Nanosecond,
		MixEff:      [numMixPoints]float64{0.85, 0.70, 0.65, 0.60},
		InstrEff:    [numInstrTypes]float64{0.85, 0.87, 0.35, 0.75},
	}
}

// DDR5Local returns the socket-local DDR5 pool with the given number of
// 4800 MT/s channels (8 for the whole socket, 2 per SNC node).
func DDR5Local(channels int) *Device {
	return &Device{
		Name:          "DDR5-L",
		Tech:          DDR54800,
		Channels:      channels,
		Ctrl:          hostController(),
		CapacityBytes: int64(channels) * 16 * gib,
	}
}

// DDR5Remote returns the emulated CXL memory: one DDR5-4800 channel on the
// remote socket, reached over UPI with remote-directory coherence.
// Efficiency values are Fig. 4 ("DDR5-R"): 70 % all-read, degrading steeply
// as the write share grows because every RFO pays the remote coherence
// round trip.
func DDR5Remote() *Device {
	return &Device{
		Name:     "DDR5-R",
		Tech:     DDR54800,
		Channels: 1,
		Ctrl: Controller{
			Kind:        HostMC,
			PortLatency: 6 * sim.Nanosecond,
			MixEff:      [numMixPoints]float64{0.70, 0.55, 0.40, 0.35},
			InstrEff:    [numInstrTypes]float64{0.70, 0.72, 0.182, 0.66},
		},
		CapacityBytes: 16 * gib,
	}
}

// CXLA returns device CXL-A: ASIC (hard IP) controller in front of one
// DDR5-4800 channel — the most balanced device, used for all application
// experiments (§5). Its controller delivers only 46 % of peak for pure reads
// but is unusually good at interleaved read/write traffic (Fig. 4a: 63 % at
// 2:1, 23 points above DDR5-R).
func CXLA() *Device {
	return &Device{
		Name:     "CXL-A",
		Tech:     DDR54800,
		Channels: 1,
		Ctrl: Controller{
			Kind:        HardIP,
			PortLatency: 50 * sim.Nanosecond,
			MixEff:      [numMixPoints]float64{0.46, 0.60, 0.63, 0.60},
			InstrEff:    [numInstrTypes]float64{0.46, 0.46, 0.317, 0.60},
		},
		CapacityBytes: 64 * gib,
	}
}

// CXLB returns device CXL-B: ASIC (hard IP) controller with two DDR4-2400
// channels. Its mature DDR4 controller edges out CXL-A for read-only and
// nt-st streams (Fig. 4b) despite higher latency.
func CXLB() *Device {
	return &Device{
		Name:     "CXL-B",
		Tech:     DDR42400,
		Channels: 2,
		Ctrl: Controller{
			Kind:        HardIP,
			PortLatency: 110 * sim.Nanosecond,
			MixEff:      [numMixPoints]float64{0.47, 0.50, 0.45, 0.45},
			InstrEff:    [numInstrTypes]float64{0.47, 0.47, 0.193, 0.66},
		},
		CapacityBytes: 128 * gib,
	}
}

// CXLC returns device CXL-C: FPGA (soft IP) controller with one DDR4-3200
// channel. The soft-logic protocol pipeline adds large latency and caps
// efficiency near 20 % (Fig. 3, Fig. 4).
func CXLC() *Device {
	return &Device{
		Name:     "CXL-C",
		Tech:     DDR43200,
		Channels: 1,
		Ctrl: Controller{
			Kind:        SoftIP,
			PortLatency: 215 * sim.Nanosecond,
			MixEff:      [numMixPoints]float64{0.20, 0.22, 0.24, 0.25},
			InstrEff:    [numInstrTypes]float64{0.21, 0.21, 0.178, 0.46},
		},
		CapacityBytes: 64 * gib,
	}
}

// AllCXLDevices returns fresh instances of the three CXL devices in Table-1
// order.
func AllCXLDevices() []*Device {
	return []*Device{CXLA(), CXLB(), CXLC()}
}

// CXLExpander returns a hypothetical second-generation ASIC expander for the
// multi-expander platform profiles: a CXL-A-class hard-IP controller with a
// shorter pipeline (the paper attributes CXL-A's 50 ns to early silicon) in
// front of one DDR5-4800 channel, and mix efficiencies a few points above
// CXL-A across the board — the trajectory Table 1's ASIC vendors advertise.
func CXLExpander(name string) *Device {
	return &Device{
		Name:     name,
		Tech:     DDR54800,
		Channels: 1,
		Ctrl: Controller{
			Kind:        HardIP,
			PortLatency: 40 * sim.Nanosecond,
			MixEff:      [numMixPoints]float64{0.55, 0.64, 0.66, 0.62},
			InstrEff:    [numInstrTypes]float64{0.55, 0.55, 0.34, 0.63},
		},
		CapacityBytes: 96 * gib,
	}
}

// CXLFPGADegraded returns a soft-IP device below even CXL-C: the same
// FPGA protocol pipeline with a slower clock (the "degraded FPGA" profile),
// stretching the port latency and shaving the delivered efficiency. It
// bounds the low end of the device-diversity axis the paper's O2 opens.
func CXLFPGADegraded(name string) *Device {
	return &Device{
		Name:     name,
		Tech:     DDR43200,
		Channels: 1,
		Ctrl: Controller{
			Kind:        SoftIP,
			PortLatency: 320 * sim.Nanosecond,
			MixEff:      [numMixPoints]float64{0.14, 0.16, 0.17, 0.18},
			InstrEff:    [numInstrTypes]float64{0.15, 0.15, 0.12, 0.33},
		},
		CapacityBytes: 64 * gib,
	}
}
