package mem

import (
	"math"
	"testing"
	"testing/quick"

	"cxlmem/internal/sim"
)

func TestInstrTypeStrings(t *testing.T) {
	want := map[InstrType]string{Load: "ld", NTLoad: "nt-ld", Store: "st", NTStore: "nt-st"}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(ty), ty.String(), s)
		}
	}
	if !Store.IsWrite() || !NTStore.IsWrite() || Load.IsWrite() || NTLoad.IsWrite() {
		t.Error("IsWrite misclassifies instruction types")
	}
	if len(InstrTypes()) != 4 {
		t.Error("InstrTypes should list 4 types")
	}
}

func TestMixPointWriteFractions(t *testing.T) {
	cases := map[MixPoint]float64{AllRead: 0, RW31: 0.25, RW21: 1.0 / 3.0, RW11: 0.5}
	for m, wf := range cases {
		if got := m.WriteFraction(); math.Abs(got-wf) > 1e-12 {
			t.Errorf("%v.WriteFraction() = %v, want %v", m, got, wf)
		}
	}
	if len(MixPoints()) != 4 {
		t.Error("MixPoints should list 4 mixes")
	}
}

func TestStandardDevicesValidate(t *testing.T) {
	devs := []*Device{DDR5Local(8), DDR5Local(2), DDR5Remote(), CXLA(), CXLB(), CXLC()}
	for _, d := range devs {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestPeakBandwidthMatchesTable1(t *testing.T) {
	cases := []struct {
		dev  *Device
		peak float64
	}{
		{DDR5Local(8), 307.2},
		{DDR5Local(2), 76.8},
		{DDR5Remote(), 38.4},
		{CXLA(), 38.4},
		{CXLB(), 38.4}, // 2 × 19.2
		{CXLC(), 25.6},
	}
	for _, c := range cases {
		if got := c.dev.PeakGBs(); math.Abs(got-c.peak) > 1e-9 {
			t.Errorf("%s peak = %v GB/s, want %v", c.dev.Name, got, c.peak)
		}
	}
}

// TestFig4aEfficiencies pins the calibrated all-read efficiencies to the
// values the paper reports in §4.2 (O4): 70 %, 46 %, 47 %, 20 %.
func TestFig4aEfficiencies(t *testing.T) {
	cases := []struct {
		dev  *Device
		want float64
	}{
		{DDR5Remote(), 0.70},
		{CXLA(), 0.46},
		{CXLB(), 0.47},
		{CXLC(), 0.20},
	}
	for _, c := range cases {
		if got := c.dev.EffMix(AllRead); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s all-read efficiency = %v, want %v", c.dev.Name, got, c.want)
		}
	}
}

// TestPaperEfficiencyRelations checks the relative claims of §4.2 that the
// application-level results depend on.
func TestPaperEfficiencyRelations(t *testing.T) {
	r, a, b, c := DDR5Remote(), CXLA(), CXLB(), CXLC()

	// O4: CXL-A beats DDR5-R by ~23 points at the 2:1 read:write mix.
	if diff := a.EffMix(RW21) - r.EffMix(RW21); math.Abs(diff-0.23) > 0.02 {
		t.Errorf("2:1 efficiency gap CXL-A minus DDR5-R = %v, want ~0.23", diff)
	}
	// Fig 4b: CXL-B edges CXL-A by ~1 point for ld and nt-ld.
	for _, ty := range []InstrType{Load, NTLoad} {
		if diff := b.EffInstr(ty) - a.EffInstr(ty); diff < 0.005 || diff > 0.03 {
			t.Errorf("%v: CXL-B minus CXL-A = %v, want ~0.01", ty, diff)
		}
	}
	// Fig 4b: CXL-C trails CXL-B by ~26 points for loads.
	if diff := b.EffInstr(Load) - c.EffInstr(Load); math.Abs(diff-0.26) > 0.02 {
		t.Errorf("ld: CXL-B minus CXL-C = %v, want ~0.26", diff)
	}
	// O5: st degradation vs ld is 74 % for DDR5-R, 31 % for CXL-A,
	// 59 % for CXL-B, 15 % for CXL-C.
	drops := []struct {
		dev  *Device
		want float64
	}{{r, 0.74}, {a, 0.31}, {b, 0.59}, {c, 0.15}}
	for _, d := range drops {
		got := 1 - d.dev.EffInstr(Store)/d.dev.EffInstr(Load)
		if math.Abs(got-d.want) > 0.03 {
			t.Errorf("%s st drop vs ld = %v, want ~%v", d.dev.Name, got, d.want)
		}
	}
	// O5: for st, CXL-A leads DDR5-R by ~12 points and CXL-B by ~1 point.
	if diff := a.EffInstr(Store) - r.EffInstr(Store); diff < 0.10 || diff > 0.16 {
		t.Errorf("st gap CXL-A minus DDR5-R = %v, want ~0.12", diff)
	}
	if diff := b.EffInstr(Store) - r.EffInstr(Store); diff < 0.005 || diff > 0.03 {
		t.Errorf("st gap CXL-B minus DDR5-R = %v, want ~0.01", diff)
	}
	// O5: the nt-st gap between DDR5-R and CXL-A shrinks to ~6 points and
	// CXL-B matches DDR5-R.
	if diff := r.EffInstr(NTStore) - a.EffInstr(NTStore); math.Abs(diff-0.06) > 0.02 {
		t.Errorf("nt-st gap DDR5-R minus CXL-A = %v, want ~0.06", diff)
	}
	if diff := math.Abs(b.EffInstr(NTStore) - r.EffInstr(NTStore)); diff > 0.01 {
		t.Errorf("nt-st CXL-B vs DDR5-R differ by %v, want ~0", diff)
	}
	// nt-ld: DDR5-R leads CXL-A by ~26 points.
	if diff := r.EffInstr(NTLoad) - a.EffInstr(NTLoad); math.Abs(diff-0.26) > 0.02 {
		t.Errorf("nt-ld gap DDR5-R minus CXL-A = %v, want ~0.26", diff)
	}
}

func TestEffWriteFractionInterpolates(t *testing.T) {
	d := CXLA()
	// Exact table points.
	for _, m := range MixPoints() {
		if got := d.EffWriteFraction(m.WriteFraction()); math.Abs(got-d.EffMix(m)) > 1e-9 {
			t.Errorf("wf=%v: %v, want table value %v", m.WriteFraction(), got, d.EffMix(m))
		}
	}
	// Midpoint between all-read (0.46) and 3:1 (0.60).
	if got := d.EffWriteFraction(0.125); math.Abs(got-0.53) > 1e-9 {
		t.Errorf("wf=0.125: %v, want 0.53", got)
	}
	// Clamps beyond 1:1 and below 0.
	if got := d.EffWriteFraction(0.9); got != d.EffMix(RW11) {
		t.Errorf("wf=0.9 should clamp to 1:1 value, got %v", got)
	}
	if got := d.EffWriteFraction(-0.1); got != d.EffMix(AllRead) {
		t.Errorf("wf=-0.1 should clamp to all-read value, got %v", got)
	}
}

func TestEffWriteFractionBoundsProperty(t *testing.T) {
	devs := []*Device{DDR5Local(8), DDR5Remote(), CXLA(), CXLB(), CXLC()}
	f := func(wfRaw uint16) bool {
		wf := float64(wfRaw%1001) / 1000
		for _, d := range devs {
			e := d.EffWriteFraction(wf)
			if e <= 0 || e > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueFactor(t *testing.T) {
	if QueueFactor(0) != 1 {
		t.Error("idle queue factor must be 1")
	}
	if QueueFactor(-1) != 1 {
		t.Error("negative utilization should clamp to 1")
	}
	prev := 1.0
	for u := 0.05; u <= 1.0; u += 0.05 {
		f := QueueFactor(u)
		if f < prev {
			t.Errorf("QueueFactor not monotone at u=%v: %v < %v", u, f, prev)
		}
		prev = f
	}
	// Saturated factor is finite and substantial.
	sat := QueueFactor(1)
	if sat < 3 || sat > 20 {
		t.Errorf("QueueFactor(1) = %v, want a finite multiple in [3,20]", sat)
	}
}

func TestServeUnderCapacity(t *testing.T) {
	d := CXLA() // 38.4 GB/s × 0.46 all-read = 17.664 GB/s effective
	window := sim.Millisecond
	dem := Demand{ReadBytes: 1e6} // 1 MB in 1 ms = 1 GB/s: far below capacity
	s := d.Serve(dem, window)
	if s.ReadBytes != dem.ReadBytes || s.WriteBytes != 0 {
		t.Errorf("under capacity, demand should be fully served: %+v", s)
	}
	wantU := 1.0 / (38.4 * 0.46)
	if math.Abs(s.Utilization-wantU) > 1e-6 {
		t.Errorf("utilization = %v, want %v", s.Utilization, wantU)
	}
	if s.LatencyFactor < 1 || s.LatencyFactor > 1.05 {
		t.Errorf("lightly loaded latency factor = %v", s.LatencyFactor)
	}
}

func TestServeOverCapacity(t *testing.T) {
	d := CXLA()
	window := sim.Millisecond
	// Effective all-read capacity over 1 ms: 17.664 GB/s × 1e6 ns = 17.664e6 B.
	capacity := d.EffectiveGBs(0) * window.Nanoseconds()
	dem := Demand{ReadBytes: 3 * capacity, WriteBytes: capacity}
	s := d.Serve(dem, window)
	// Proportional scaling preserves the read:write ratio.
	if math.Abs(s.ReadBytes/s.WriteBytes-3) > 1e-9 {
		t.Errorf("scaling broke the R:W ratio: %v", s.ReadBytes/s.WriteBytes)
	}
	// Total equals capacity at the demand's write fraction.
	wantTotal := d.EffectiveGBs(0.25) * window.Nanoseconds()
	if math.Abs(s.Total()-wantTotal) > 1 {
		t.Errorf("served total = %v, want %v", s.Total(), wantTotal)
	}
	if s.Utilization != 1 {
		t.Errorf("oversubscribed utilization = %v, want 1", s.Utilization)
	}
	if s.LatencyFactor <= 1.5 {
		t.Errorf("saturated latency factor = %v, want well above 1", s.LatencyFactor)
	}
}

func TestServeEmptyDemand(t *testing.T) {
	d := DDR5Local(8)
	s := d.Serve(Demand{}, sim.Millisecond)
	if s.Total() != 0 || s.Utilization != 0 || s.LatencyFactor != 1 {
		t.Errorf("empty demand: %+v", s)
	}
}

func TestServePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Serve with zero window should panic")
		}
	}()
	DDR5Local(8).Serve(Demand{ReadBytes: 1}, 0)
}

func TestServeConservationProperty(t *testing.T) {
	// Property: served never exceeds demand, never exceeds capacity, and
	// utilization is in [0, 1].
	devs := []*Device{DDR5Local(2), DDR5Remote(), CXLA(), CXLB(), CXLC()}
	f := func(r, w uint32, di uint8) bool {
		d := devs[int(di)%len(devs)]
		dem := Demand{ReadBytes: float64(r), WriteBytes: float64(w)}
		s := d.Serve(dem, sim.Millisecond)
		capacity := d.EffectiveGBs(dem.WriteFraction()) * sim.Millisecond.Nanoseconds()
		return s.ReadBytes <= dem.ReadBytes+1e-6 &&
			s.WriteBytes <= dem.WriteBytes+1e-6 &&
			s.Total() <= capacity+1e-3 &&
			s.Utilization >= 0 && s.Utilization <= 1 &&
			s.LatencyFactor >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestControllerValidateRejectsBadTables(t *testing.T) {
	c := hostController()
	c.MixEff[0] = 0
	if err := c.Validate(); err == nil {
		t.Error("zero efficiency should fail validation")
	}
	c = hostController()
	c.InstrEff[2] = 1.5
	if err := c.Validate(); err == nil {
		t.Error("efficiency > 1 should fail validation")
	}
	c = hostController()
	c.PortLatency = -1
	if err := c.Validate(); err == nil {
		t.Error("negative port latency should fail validation")
	}
}

func TestDeviceValidateRejectsBadConfig(t *testing.T) {
	d := CXLA()
	d.Channels = 0
	if err := d.Validate(); err == nil {
		t.Error("zero channels should fail validation")
	}
	d = CXLA()
	d.CapacityBytes = 0
	if err := d.Validate(); err == nil {
		t.Error("zero capacity should fail validation")
	}
}

func TestIPKindStrings(t *testing.T) {
	if HostMC.String() != "Host MC" || HardIP.String() != "Hard IP" || SoftIP.String() != "Soft IP" {
		t.Error("IPKind strings wrong")
	}
}
