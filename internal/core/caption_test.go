package core

import (
	"math"
	"testing"
	"testing/quick"

	"cxlmem/internal/sim"
	"cxlmem/internal/stats"
	"cxlmem/internal/telemetry"
)

func TestFitEstimatorRecoversLinearRelation(t *testing.T) {
	// Synthetic sweep: throughput = 5 - 0.02*L1lat - 0.01*DDRlat + 2*IPC.
	r := sim.NewRng(3)
	var samples []telemetry.Sample
	var y []float64
	for i := 0; i < 60; i++ {
		s := telemetry.Sample{
			L1MissLatencyNS:  30 + r.Float64()*70,
			DDRReadLatencyNS: 80 + r.Float64()*120,
			IPC:              0.3 + r.Float64(),
		}
		samples = append(samples, s)
		y = append(y, 5-0.02*s.L1MissLatencyNS-0.01*s.DDRReadLatencyNS+2*s.IPC)
	}
	est, err := FitEstimator(samples, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		if math.Abs(est.Estimate(s)-y[i]) > 1e-6 {
			t.Fatalf("estimate %d = %v, want %v", i, est.Estimate(s), y[i])
		}
	}
	if est.Model().R2(featureRows(samples), y) < 0.999 {
		t.Error("R2 should be ~1 for noise-free data")
	}
}

func featureRows(samples []telemetry.Sample) [][]float64 {
	rows := make([][]float64, len(samples))
	for i, s := range samples {
		rows[i] = s.Features()
	}
	return rows
}

func TestFitEstimatorValidation(t *testing.T) {
	if _, err := FitEstimator(make([]telemetry.Sample, 3), []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	// Constant features -> singular system.
	samples := make([]telemetry.Sample, 10)
	y := make([]float64, 10)
	if _, err := FitEstimator(samples, y); err == nil {
		t.Error("degenerate sweep should error")
	}
}

func TestDefaultTunerConfigValid(t *testing.T) {
	if err := DefaultTunerConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTunerConfigValidation(t *testing.T) {
	mod := func(f func(*TunerConfig)) TunerConfig {
		c := DefaultTunerConfig()
		f(&c)
		return c
	}
	bad := []TunerConfig{
		mod(func(c *TunerConfig) { c.MinRatio = 100; c.MaxRatio = 0 }),
		mod(func(c *TunerConfig) { c.InitialRatio = 150 }),
		mod(func(c *TunerConfig) { c.MinStepMagnitude = 0 }),
		mod(func(c *TunerConfig) { c.InitialStep = 0 }),
		mod(func(c *TunerConfig) { c.Deadband = -1 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestTunerContinuesWhileImproving(t *testing.T) {
	cfg := DefaultTunerConfig()
	cfg.InitialRatio = 50
	cfg.InitialStep = -9
	tn := NewTuner(cfg)
	r1 := tn.Advance(1.0) // first call applies the initial step
	if r1 != 41 {
		t.Fatalf("first ratio = %v, want 41", r1)
	}
	r2 := tn.Advance(1.1) // improved: keep going down
	if r2 != 32 {
		t.Fatalf("second ratio = %v, want 32", r2)
	}
	r3 := tn.Advance(1.2)
	if r3 != 23 {
		t.Fatalf("third ratio = %v, want 23", r3)
	}
}

func TestTunerReversesAndHalvesOnRegression(t *testing.T) {
	cfg := DefaultTunerConfig()
	cfg.InitialRatio = 50
	cfg.InitialStep = -20
	cfg.MinStepMagnitude = 5
	tn := NewTuner(cfg)
	tn.Advance(1.0)      // ratio 30
	r := tn.Advance(0.8) // regression: reverse -20 -> +10, ratio 40
	if r != 40 {
		t.Fatalf("reversed ratio = %v, want 40", r)
	}
	r = tn.Advance(0.7) // regress again: +10 -> -5, ratio 35
	if r != 35 {
		t.Fatalf("second reversal ratio = %v, want 35", r)
	}
}

func TestTunerMinimumStepMagnitude(t *testing.T) {
	cfg := DefaultTunerConfig()
	cfg.InitialRatio = 50
	cfg.InitialStep = -9
	cfg.MinStepMagnitude = 9
	tn := NewTuner(cfg)
	tn.Advance(1.0)
	// Regression would halve 9 -> 4.5; the floor keeps it at 9 (reversed).
	r := tn.Advance(0.5)
	if r != 50 {
		t.Fatalf("ratio after floored reversal = %v, want 50", r)
	}
}

func TestTunerRatioBounds(t *testing.T) {
	cfg := DefaultTunerConfig()
	cfg.InitialRatio = 5
	cfg.InitialStep = -9
	tn := NewTuner(cfg)
	r := tn.Advance(1.0)
	if r != 0 {
		t.Fatalf("ratio clamped = %v, want 0", r)
	}
	// Keep "improving": the tuner must not sit at the bound forever.
	r = tn.Advance(1.1)
	if r <= 0 {
		t.Fatalf("tuner parked at lower bound: %v", r)
	}
}

func TestTunerDeadband(t *testing.T) {
	cfg := DefaultTunerConfig()
	cfg.InitialRatio = 50
	cfg.InitialStep = -9
	cfg.Deadband = 0.01
	tn := NewTuner(cfg)
	tn.Advance(1.0)
	// A -0.5% change is inside the deadband: direction is kept.
	r := tn.Advance(0.995)
	if r != 32 {
		t.Fatalf("deadband ignored tiny regression? ratio = %v, want 32", r)
	}
}

func TestTunerLargeDropReversesAtFullMagnitude(t *testing.T) {
	cfg := DefaultTunerConfig()
	cfg.InitialRatio = 50
	cfg.InitialStep = -18
	cfg.MinStepMagnitude = 9
	cfg.LargeDropFraction = 0.5
	tn := NewTuner(cfg)
	tn.Advance(1.0)      // ratio 32
	r := tn.Advance(0.3) // 70% collapse: reverse at full 18, not halved 9
	if r != 50 {
		t.Fatalf("large-drop ratio = %v, want 50", r)
	}
}

// TestTunerConvergesOnUnimodalObjective drives the tuner against a synthetic
// unimodal throughput curve peaking at 35 % CXL: the steady-state ratios
// must oscillate near the peak.
func TestTunerConvergesOnUnimodalObjective(t *testing.T) {
	objective := func(ratio float64) float64 {
		d := ratio - 35
		return 100 - d*d/50
	}
	tn := NewTuner(DefaultTunerConfig())
	ratio := tn.Ratio()
	var tail []float64
	for i := 0; i < 60; i++ {
		state := objective(ratio)
		ratio = tn.Advance(state)
		if i >= 40 {
			tail = append(tail, ratio)
		}
	}
	mean := stats.Mean(tail)
	if mean < 20 || mean > 50 {
		t.Errorf("steady-state mean ratio = %v, want near 35", mean)
	}
	for _, r := range tail {
		if r < 35-2*9-1 || r > 35+2*9+1 {
			t.Errorf("tail ratio %v strayed beyond two steps from the optimum", r)
		}
	}
}

// TestTunerConvergenceProperty: for any unimodal objective with peak in
// [10, 90], the tuner's final 20 ratios stay within two minimum steps of the
// peak.
func TestTunerConvergenceProperty(t *testing.T) {
	f := func(peakRaw uint8, width uint8) bool {
		peak := 10 + float64(peakRaw%81)
		w := 20 + float64(width%80)
		objective := func(r float64) float64 {
			d := (r - peak) / w
			return 100 * (1 - d*d)
		}
		tn := NewTuner(DefaultTunerConfig())
		ratio := tn.Ratio()
		for i := 0; i < 80; i++ {
			ratio = tn.Advance(objective(ratio))
		}
		// After settling, ratios may oscillate around the peak by up to two
		// minimum steps (the tuner keeps probing by design).
		for i := 0; i < 20; i++ {
			ratio = tn.Advance(objective(ratio))
			if math.Abs(ratio-peak) > 2*9+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestControllerStepAppliesRatio(t *testing.T) {
	// Estimator: performance = IPC (identity on one counter), so rising IPC
	// means improvement.
	model := &stats.LinearModel{Intercept: 0, Coefficients: []float64{0, 0, 1}}
	est := NewEstimatorFromModel(model)
	var applied []float64
	ctl := NewController(est, DefaultTunerConfig(), func(p float64) error {
		applied = append(applied, p)
		return nil
	})
	ipc := 1.0
	for i := 0; i < 10; i++ {
		if _, _, err := ctl.Step(telemetry.Sample{IPC: ipc}); err != nil {
			t.Fatal(err)
		}
		ipc += 0.1
	}
	if len(applied) != 10 {
		t.Fatalf("setter called %d times, want 10", len(applied))
	}
	states, ratios := ctl.History()
	if len(states) != 10 || len(ratios) != 10 {
		t.Fatalf("history lengths %d/%d", len(states), len(ratios))
	}
	if ctl.Ratio() != applied[len(applied)-1] {
		t.Error("Ratio() disagrees with last applied value")
	}
}

func TestControllerSynchrony(t *testing.T) {
	model := &stats.LinearModel{Intercept: 0, Coefficients: []float64{0, 0, 1}}
	ctl := NewController(NewEstimatorFromModel(model), DefaultTunerConfig(), func(float64) error { return nil })
	var throughput []float64
	for i := 0; i < 20; i++ {
		v := 1 + float64(i)*0.05
		ctl.Step(telemetry.Sample{IPC: v})
		throughput = append(throughput, v)
	}
	// Model output is (a smoothed version of) the throughput: strongly
	// positive correlation.
	if p := ctl.Synchrony(throughput); p < 0.9 {
		t.Errorf("synchrony = %v, want > 0.9", p)
	}
}

func TestControllerPanics(t *testing.T) {
	model := &stats.LinearModel{Intercept: 0, Coefficients: []float64{0, 0, 1}}
	for name, fn := range map[string]func(){
		"nil estimator": func() { NewController(nil, DefaultTunerConfig(), func(float64) error { return nil }) },
		"nil setter":    func() { NewController(NewEstimatorFromModel(model), DefaultTunerConfig(), nil) },
		"nil model":     func() { NewEstimatorFromModel(nil) },
		"bad synchrony": func() {
			c := NewController(NewEstimatorFromModel(model), DefaultTunerConfig(), func(float64) error { return nil })
			c.Synchrony([]float64{1})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
