// Package core implements Caption, the paper's primary contribution (§6): a
// CXL-memory-aware dynamic page allocation policy that tunes the percentage
// of newly allocated pages placed on the CXL node to maximize the throughput
// of memory-bandwidth-intensive applications.
//
// Caption is three modules wired in a loop (Fig. 10):
//
//	(M1) Monitor   — samples PMU counters (Table 4) once per interval and
//	                 smooths each with a 5-sample moving average;
//	(M2) Estimator — a multiple linear regression Y = β0 + β1·X1 + …
//	                 (Eq. 1) mapping smoothed counters to an estimate of
//	                 memory-subsystem performance;
//	(M3) Tuner     — the greedy controller of Algorithm 1: keep stepping the
//	                 CXL ratio in the same direction while estimated
//	                 performance improves, reverse with half the step when it
//	                 regresses, never let the step collapse below a minimum
//	                 magnitude, and clamp the ratio to its bounds.
//
// The resulting ratio is applied through the weighted-interleave mempolicy
// (internal/numa), affecting only future allocations — exactly the semantics
// of the kernel patch the paper builds on.
package core

import (
	"fmt"
	"math"

	"cxlmem/internal/stats"
	"cxlmem/internal/telemetry"
)

// Estimator is Caption's M2: the linear model of Eq. 1 over the Table-4
// counters.
type Estimator struct {
	model *stats.LinearModel
}

// FitEstimator trains the estimator from a calibration sweep: one smoothed
// counter sample and one measured throughput per operating point. The paper
// derives the weights by running DLRM at various DDR:CXL ratios (§6.1 M2).
func FitEstimator(samples []telemetry.Sample, throughput []float64) (*Estimator, error) {
	if len(samples) != len(throughput) {
		return nil, fmt.Errorf("core: %d samples vs %d throughput points", len(samples), len(throughput))
	}
	rows := make([][]float64, len(samples))
	for i, s := range samples {
		rows[i] = s.Features()
	}
	m, err := stats.FitLinear(rows, throughput)
	if err != nil {
		return nil, fmt.Errorf("core: fitting estimator: %w", err)
	}
	return &Estimator{model: m}, nil
}

// NewEstimatorFromModel wraps an existing linear model (used by tests and by
// deployments that ship pre-fitted weights).
func NewEstimatorFromModel(m *stats.LinearModel) *Estimator {
	if m == nil {
		panic("core: nil model")
	}
	return &Estimator{model: m}
}

// Estimate returns the predicted memory-subsystem performance for the
// smoothed counter sample.
func (e *Estimator) Estimate(s telemetry.Sample) float64 {
	return e.model.Predict(s.Features())
}

// Model exposes the fitted coefficients (diagnostics, EXPERIMENTS.md).
func (e *Estimator) Model() *stats.LinearModel { return e.model }

// TunerConfig parameterizes Algorithm 1.
type TunerConfig struct {
	// InitialRatio is the starting CXL percentage.
	InitialRatio float64
	// InitialStep is the first step (percentage points; sign sets the
	// initial direction).
	InitialStep float64
	// MinStepMagnitude prevents the reversal halving from collapsing the
	// step toward zero; the paper uses 9 percentage points (§6.1 M3).
	MinStepMagnitude float64
	// MinRatio and MaxRatio bound the ratio (check_ratio_bound in Alg. 1).
	MinRatio, MaxRatio float64
	// Deadband treats relative performance changes smaller than this as
	// noise: the tuner keeps its direction rather than reversing
	// ("mechanisms to efficiently handle very small changes", §6.1).
	Deadband float64
	// LargeDropFraction triggers a full-magnitude reversal when performance
	// collapses by more than this relative fraction ("sudden large
	// changes", §6.1).
	LargeDropFraction float64
}

// DefaultTunerConfig returns the paper's settings: start at the OS default
// 50 % interleave, 9-point minimum step, ratio within [0, 100].
func DefaultTunerConfig() TunerConfig {
	return TunerConfig{
		InitialRatio:      50,
		InitialStep:       -9,
		MinStepMagnitude:  9,
		MinRatio:          0,
		MaxRatio:          100,
		Deadband:          0.005,
		LargeDropFraction: 0.5,
	}
}

// Validate reports configuration errors.
func (c TunerConfig) Validate() error {
	if c.MinRatio >= c.MaxRatio {
		return fmt.Errorf("core: ratio bounds [%v, %v] invalid", c.MinRatio, c.MaxRatio)
	}
	if c.InitialRatio < c.MinRatio || c.InitialRatio > c.MaxRatio {
		return fmt.Errorf("core: initial ratio %v outside bounds", c.InitialRatio)
	}
	if c.MinStepMagnitude <= 0 {
		return fmt.Errorf("core: minimum step must be positive")
	}
	if c.InitialStep == 0 {
		return fmt.Errorf("core: initial step must be non-zero")
	}
	if c.Deadband < 0 || c.LargeDropFraction <= 0 {
		return fmt.Errorf("core: negative deadband or non-positive drop threshold")
	}
	return nil
}

// Tuner is Caption's M3 (Algorithm 1). It is a pure controller: feed it the
// estimated state each interval and it returns the ratio to apply.
type Tuner struct {
	cfg       TunerConfig
	prevState float64
	prevStep  float64
	prevRatio float64
	started   bool
}

// NewTuner creates a tuner.
func NewTuner(cfg TunerConfig) *Tuner {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Tuner{
		cfg:       cfg,
		prevStep:  cfg.InitialStep,
		prevRatio: cfg.InitialRatio,
	}
}

// Ratio returns the currently applied CXL percentage.
func (t *Tuner) Ratio() float64 { return t.prevRatio }

// Advance runs one iteration of Algorithm 1 with the current estimated
// memory-subsystem performance and returns the next ratio.
func (t *Tuner) Advance(currState float64) float64 {
	if !t.started {
		// First observation: apply the initial step without judging a
		// previous period that does not exist.
		t.started = true
		t.prevState = currState
		t.prevRatio = t.clamp(t.prevRatio + t.prevStep)
		return t.prevRatio
	}

	currStep := t.prevStep
	switch {
	case t.isLargeDrop(currState):
		// Sudden collapse: reverse at full magnitude to escape quickly.
		currStep = -sign(t.prevStep) * math.Max(math.Abs(t.cfg.InitialStep), t.cfg.MinStepMagnitude)
	case t.isRegression(currState):
		// Algorithm 1 line 4: reverse and halve.
		currStep = t.prevStep * -0.5
	}
	// Enforce the minimum step magnitude so the search keeps probing
	// (§6.1: "the absolute value of the step variable has the minimum
	// limit (e.g., 9%)").
	if math.Abs(currStep) < t.cfg.MinStepMagnitude {
		currStep = sign(currStep) * t.cfg.MinStepMagnitude
	}

	ratio := t.clamp(t.prevRatio + currStep)
	// Parked at a bound with a step pushing outward: turn around and probe
	// inward immediately instead of sitting at the bound forever.
	if ratio == t.prevRatio && ratio == t.cfg.MinRatio && currStep < 0 {
		currStep = math.Abs(currStep)
		ratio = t.clamp(t.prevRatio + currStep)
	} else if ratio == t.prevRatio && ratio == t.cfg.MaxRatio && currStep > 0 {
		currStep = -math.Abs(currStep)
		ratio = t.clamp(t.prevRatio + currStep)
	}

	t.prevState = currState
	t.prevStep = currStep
	t.prevRatio = ratio
	return ratio
}

func (t *Tuner) isRegression(curr float64) bool {
	if t.prevState == 0 {
		return curr < 0
	}
	rel := (curr - t.prevState) / math.Abs(t.prevState)
	return rel < -t.cfg.Deadband
}

func (t *Tuner) isLargeDrop(curr float64) bool {
	if t.prevState <= 0 {
		return false
	}
	return curr < t.prevState*(1-t.cfg.LargeDropFraction)
}

func (t *Tuner) clamp(r float64) float64 {
	if r < t.cfg.MinRatio {
		return t.cfg.MinRatio
	}
	if r > t.cfg.MaxRatio {
		return t.cfg.MaxRatio
	}
	return r
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// RatioSetter applies a CXL percentage to the system; numa.Weighted's
// SetCXLPercent satisfies it via a small closure.
type RatioSetter func(percent float64) error

// Controller wires Monitor → Estimator → Tuner → mempolicy (Fig. 10).
type Controller struct {
	sampler   *telemetry.Sampler
	estimator *Estimator
	tuner     *Tuner
	set       RatioSetter

	// History records (model output, applied ratio) pairs for the Fig. 12
	// timelines and the Pearson synchrony metric.
	states []float64
	ratios []float64
}

// MonitorWindow is Caption's counter smoothing window (§6.1: "a moving
// average of the past 5 samples").
const MonitorWindow = 5

// NewController assembles a Caption instance.
func NewController(est *Estimator, cfg TunerConfig, set RatioSetter) *Controller {
	if est == nil || set == nil {
		panic("core: nil estimator or setter")
	}
	return &Controller{
		sampler:   telemetry.NewSampler(MonitorWindow),
		estimator: est,
		tuner:     NewTuner(cfg),
		set:       set,
	}
}

// Step runs one Caption interval with a fresh raw counter sample: smooth,
// estimate, tune, and apply the new ratio. It returns the estimated state
// and the applied ratio.
func (c *Controller) Step(raw telemetry.Sample) (state, ratio float64, err error) {
	smoothed := c.sampler.Add(raw)
	state = c.estimator.Estimate(smoothed)
	ratio = c.tuner.Advance(state)
	if err := c.set(ratio); err != nil {
		return state, ratio, fmt.Errorf("core: applying ratio %v: %w", ratio, err)
	}
	c.states = append(c.states, state)
	c.ratios = append(c.ratios, ratio)
	return state, ratio, nil
}

// Ratio returns the currently applied CXL percentage.
func (c *Controller) Ratio() float64 { return c.tuner.Ratio() }

// History returns copies of the recorded model outputs and ratios.
func (c *Controller) History() (states, ratios []float64) {
	return append([]float64(nil), c.states...), append([]float64(nil), c.ratios...)
}

// Synchrony computes the Pearson correlation between the model's output
// history and an externally measured throughput series of equal length —
// the validation metric of Fig. 12 ("Algorithm 1 depends on precisely
// determining only the direction of performance changes").
func (c *Controller) Synchrony(throughput []float64) float64 {
	if len(throughput) != len(c.states) || len(c.states) == 0 {
		panic(fmt.Sprintf("core: synchrony needs %d throughput points", len(c.states)))
	}
	return stats.Pearson(c.states, throughput)
}
