package cache

import (
	"testing"
	"testing/quick"

	"cxlmem/internal/sim"
)

func TestNewCacheGeometry(t *testing.T) {
	c := NewCache(48<<10, 12) // 48 KB, 12-way: 64 sets
	if c.Lines() != 768 {
		t.Errorf("lines = %d, want 768", c.Lines())
	}
	if c.SizeBytes() != 48<<10 {
		t.Errorf("size = %d", c.SizeBytes())
	}
}

func TestNewCachePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero ways": func() { NewCache(1024, 0) },
		"too small": func() { NewCache(64, 12) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLookupInsertBasics(t *testing.T) {
	c := NewCache(4096, 4)
	home := Home{Kind: HomeLocalDDR}
	if c.Lookup(0x1000, false) {
		t.Fatal("empty cache should miss")
	}
	c.Insert(0x1000, home, false)
	if !c.Lookup(0x1000, false) {
		t.Fatal("inserted line should hit")
	}
	// Same line, different byte offset.
	if !c.Lookup(0x1000+63, false) {
		t.Fatal("same-line offset should hit")
	}
	if c.Lookup(0x1000+64, false) {
		t.Fatal("next line should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewCache(LineBytes*4, 4) // single set, 4 ways
	home := Home{}
	addrs := []uint64{0, 64, 128, 192}
	for _, a := range addrs {
		c.Insert(a, home, false)
	}
	c.Lookup(0, false) // make addr 0 most recently used
	v, evicted := c.Insert(256, home, false)
	if !evicted {
		t.Fatal("full set insert should evict")
	}
	if v.Addr != 64 {
		t.Errorf("evicted %#x, want LRU line 0x40", v.Addr)
	}
	if !c.Lookup(0, false) {
		t.Error("MRU line should survive")
	}
}

func TestDirtyPropagation(t *testing.T) {
	c := NewCache(LineBytes*2, 2)
	c.Insert(0, Home{}, false)
	c.Lookup(0, true) // write hit marks dirty
	c.Insert(64, Home{}, false)
	v, evicted := c.Insert(128, Home{}, false)
	if !evicted || v.Addr != 0 || !v.Dirty {
		t.Errorf("expected dirty eviction of line 0, got %+v (evicted=%v)", v, evicted)
	}
}

func TestInvalidate(t *testing.T) {
	c := NewCache(4096, 4)
	c.Insert(0x40, Home{}, true)
	found, dirty := c.Invalidate(0x40)
	if !found || !dirty {
		t.Errorf("Invalidate = (%v, %v), want (true, true)", found, dirty)
	}
	if c.Lookup(0x40, false) {
		t.Error("invalidated line should miss")
	}
	found, _ = c.Invalidate(0x80)
	if found {
		t.Error("absent line should not be found")
	}
}

func TestFlushAndOccupancy(t *testing.T) {
	c := NewCache(4096, 4)
	for i := uint64(0); i < 32; i++ {
		c.Insert(i*64, Home{}, false)
	}
	if c.Occupancy() != 32 {
		t.Errorf("occupancy = %d, want 32", c.Occupancy())
	}
	c.Flush()
	if c.Occupancy() != 0 {
		t.Errorf("occupancy after flush = %d", c.Occupancy())
	}
}

func TestOccupancyNeverExceedsCapacityProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint16) bool {
		r := sim.NewRng(uint64(seed))
		c := NewCache(8192, 8)
		n := int(nRaw%2000) + 1
		for i := 0; i < n; i++ {
			c.Insert(uint64(r.Intn(1<<20))*64, Home{}, r.Float64() < 0.5)
		}
		return c.Occupancy() <= c.Lines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNoDuplicateLinesProperty(t *testing.T) {
	// Inserting the same address twice must not create duplicates: after
	// inserting k distinct addresses (all mapping into capacity), occupancy
	// equals k.
	c := NewCache(64*1024, 16)
	for rep := 0; rep < 3; rep++ {
		for i := uint64(0); i < 100; i++ {
			c.Insert(i*64, Home{}, false)
		}
	}
	if c.Occupancy() != 100 {
		t.Errorf("occupancy = %d, want 100 (duplicates created?)", c.Occupancy())
	}
}

func TestSPRHierConfig(t *testing.T) {
	cfg := SPRHierConfig(4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Cores != 32 || cfg.SNCNodes != 4 {
		t.Errorf("unexpected geometry: %+v", cfg)
	}
	totalLLC := int64(cfg.Cores) * cfg.LLCSliceBytes
	if totalLLC != 60<<20 {
		t.Errorf("total LLC = %d, want 60 MiB", totalLLC)
	}
}

func TestHierConfigValidate(t *testing.T) {
	cfg := SPRHierConfig(4)
	cfg.SNCNodes = 5 // 32 % 5 != 0
	if err := cfg.Validate(); err == nil {
		t.Error("non-dividing SNC nodes should fail")
	}
	cfg = SPRHierConfig(4)
	cfg.Cores = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero cores should fail")
	}
}

func TestHierarchyBasicFlow(t *testing.T) {
	h := NewHierarchy(SPRHierConfig(1))
	home := Home{Kind: HomeLocalDDR, Node: 0}
	// Cold access: memory. Second access: L1.
	if lvl := h.Access(0, 0x10000, home, false); lvl != Memory {
		t.Errorf("cold access level = %v, want memory", lvl)
	}
	if lvl := h.Access(0, 0x10000, home, false); lvl != L1 {
		t.Errorf("warm access level = %v, want L1", lvl)
	}
}

func TestHierarchyL2AndLLCHit(t *testing.T) {
	cfg := SPRHierConfig(1)
	h := NewHierarchy(cfg)
	home := Home{Kind: HomeLocalDDR, Node: 0}

	// Touch enough distinct lines to overflow L1 (48 KB = 768 lines) but fit
	// in L2 (2 MB): the first line should then hit in L2.
	for i := uint64(0); i < 4096; i++ {
		h.Access(0, i*64, home, false)
	}
	if lvl := h.Access(0, 0, home, false); lvl != L2 {
		t.Errorf("level = %v, want L2", lvl)
	}

	// Touch enough to overflow L2 (32768 lines): early lines spill into the
	// LLC and should hit there.
	for i := uint64(0); i < 100000; i++ {
		h.Access(1, i*64, home, false)
	}
	if lvl := h.Access(1, 64, home, false); lvl != LLC {
		t.Errorf("level = %v, want LLC", lvl)
	}
}

func TestEffectiveLLCBytes(t *testing.T) {
	h4 := NewHierarchy(SPRHierConfig(4))
	local := Home{Kind: HomeLocalDDR, Node: 0}
	remote := Home{Kind: HomeRemote, Node: 0}
	if got := h4.EffectiveLLCBytes(local); got != 15<<20 {
		t.Errorf("SNC local effective LLC = %d, want 15 MiB", got)
	}
	if got := h4.EffectiveLLCBytes(remote); got != 60<<20 {
		t.Errorf("SNC remote effective LLC = %d, want 60 MiB", got)
	}
	h1 := NewHierarchy(SPRHierConfig(1))
	if got := h1.EffectiveLLCBytes(local); got != 60<<20 {
		t.Errorf("non-SNC effective LLC = %d, want 60 MiB", got)
	}
	// Ablation: no isolation break.
	cfg := SPRHierConfig(4)
	cfg.CXLBreaksIsolation = false
	ha := NewHierarchy(cfg)
	if got := ha.EffectiveLLCBytes(remote); got != 15<<20 {
		t.Errorf("ablation effective LLC = %d, want 15 MiB", got)
	}
}

// TestSNCSliceRouting verifies Fig. 5's mechanism directly: victims of
// local-DDR lines stay in the node's slices; victims of CXL lines spread
// over all slices.
func TestSNCSliceRouting(t *testing.T) {
	cfg := SPRHierConfig(4)
	h := NewHierarchy(cfg)
	core := 0 // node 0 = slices 0..7

	// Stream far more local-DDR lines than L2 capacity so victims spill.
	local := Home{Kind: HomeLocalDDR, Node: 0}
	for i := uint64(0); i < 200000; i++ {
		h.Access(core, i*64, local, false)
	}
	occ := h.SliceOccupancy()
	for s := 8; s < 32; s++ {
		if occ[s] != 0 {
			t.Fatalf("local-DDR victim leaked into slice %d (occupancy %d)", s, occ[s])
		}
	}
	inNode := 0
	for s := 0; s < 8; s++ {
		inNode += occ[s]
	}
	if inNode == 0 {
		t.Fatal("no local-DDR victims reached node-0 slices")
	}

	// Now stream CXL-homed lines from the same core: all slices get victims.
	h2 := NewHierarchy(cfg)
	cxl := Home{Kind: HomeRemote, Node: 0}
	for i := uint64(0); i < 200000; i++ {
		h2.Access(core, 1<<40|i*64, cxl, false)
	}
	occ2 := h2.SliceOccupancy()
	for s := 0; s < 32; s++ {
		if occ2[s] == 0 {
			t.Fatalf("CXL victims missing from slice %d", s)
		}
	}
}

// TestSNCIsolationAblation verifies the CXLBreaksIsolation=false ablation
// confines CXL victims to the accessor's node.
func TestSNCIsolationAblation(t *testing.T) {
	cfg := SPRHierConfig(4)
	cfg.CXLBreaksIsolation = false
	h := NewHierarchy(cfg)
	cxl := Home{Kind: HomeRemote, Node: 0}
	for i := uint64(0); i < 200000; i++ {
		h.Access(0, i*64, cxl, false)
	}
	occ := h.SliceOccupancy()
	for s := 8; s < 32; s++ {
		if occ[s] != 0 {
			t.Fatalf("ablation leaked CXL victim into slice %d", s)
		}
	}
}

// TestFig5EffectiveCapacity reproduces the §4.3 experiment's mechanism: a
// 32 MB buffer fits in the socket-wide LLC (60 MB) when homed on CXL but not
// in one node's slices (15 MB) when homed on local DDR.
func TestFig5EffectiveCapacity(t *testing.T) {
	const bufBytes = 32 << 20
	lines := uint64(bufBytes / 64)
	run := func(home Home) float64 {
		h := NewHierarchy(SPRHierConfig(4))
		r := sim.NewRng(99)
		// Warm up, then measure.
		for i := 0; i < 3_000_000; i++ {
			h.Access(0, uint64(r.Intn(int(lines)))*64, home, false)
		}
		hits, misses := uint64(0), uint64(0)
		for i := 0; i < 1_000_000; i++ {
			lvl := h.Access(0, uint64(r.Intn(int(lines)))*64, home, false)
			if lvl == Memory {
				misses++
			} else {
				hits++
			}
		}
		return float64(misses) / float64(hits+misses)
	}
	missCXL := run(Home{Kind: HomeRemote, Node: 0})
	missDDR := run(Home{Kind: HomeLocalDDR, Node: 0})
	if missCXL > 0.15 {
		t.Errorf("CXL-homed 32MB buffer miss rate = %.2f, want < 0.15 (fits in 60MB LLC)", missCXL)
	}
	if missDDR < 0.35 {
		t.Errorf("DDR-homed 32MB buffer miss rate = %.2f, want > 0.35 (exceeds 15MB slices)", missDDR)
	}
}

func TestChZipfHitRateMonotone(t *testing.T) {
	prev := 0.0
	for _, c := range []int{100, 1000, 10000, 50000, 100000} {
		h := ZipfLRUHitRate(100000, 0.99, c)
		if h < prev {
			t.Errorf("hit rate not monotone in capacity at %d: %v < %v", c, h, prev)
		}
		prev = h
	}
	if got := ZipfLRUHitRate(1000, 1, 0); got != 0 {
		t.Errorf("zero capacity hit rate = %v", got)
	}
	if got := ZipfLRUHitRate(1000, 1, 1000); got != 1 {
		t.Errorf("full capacity hit rate = %v", got)
	}
}

func TestChZipfBeatsUniform(t *testing.T) {
	// A skewed distribution caches better than uniform for the same capacity.
	n, c := 1_000_000, 10_000
	zipf := ZipfLRUHitRate(n, 1.0, c)
	uni := UniformLRUHitRate(n, c)
	if zipf <= uni {
		t.Errorf("zipf hit rate %v should exceed uniform %v", zipf, uni)
	}
	if zipf < 0.3 {
		t.Errorf("zipf(1.0) with 1%% capacity should be substantial, got %v", zipf)
	}
}

// TestCheAgainstSimulation cross-checks Che's approximation against the real
// LRU cache simulator on a moderate configuration.
func TestCheAgainstSimulation(t *testing.T) {
	const n, capacity = 20000, 2000
	approx := ZipfLRUHitRate(n, 0.9, capacity)

	c := NewCache(int64(capacity*LineBytes), 16)
	r := sim.NewRng(7)
	z := sim.NewZipf(r, n, 0.9)
	// Warm.
	for i := 0; i < 200000; i++ {
		a := uint64(z.Next()) * 64
		if !c.Lookup(a, false) {
			c.Insert(a, Home{}, false)
		}
	}
	hits, total := 0, 0
	for i := 0; i < 500000; i++ {
		a := uint64(z.Next()) * 64
		total++
		if c.Lookup(a, false) {
			hits++
		} else {
			c.Insert(a, Home{}, false)
		}
	}
	simRate := float64(hits) / float64(total)
	if diff := simRate - approx; diff < -0.08 || diff > 0.08 {
		t.Errorf("Che approx %v vs simulated %v differ by %v", approx, simRate, diff)
	}
}

func TestUniformLRUHitRate(t *testing.T) {
	if got := UniformLRUHitRate(100, 50); got != 0.5 {
		t.Errorf("uniform hit rate = %v, want 0.5", got)
	}
	if got := UniformLRUHitRate(10, 100); got != 1 {
		t.Errorf("overprovisioned uniform = %v, want 1", got)
	}
	if got := UniformLRUHitRate(0, 10); got != 0 {
		t.Errorf("empty set = %v, want 0", got)
	}
}

func TestWorkingSetHitRate(t *testing.T) {
	// Working set fits: ~1.
	if got := WorkingSetHitRate(1<<20, 60<<20, 0.9); got < 0.99 {
		t.Errorf("fitting working set hit rate = %v", got)
	}
	// Working set 4x capacity, uniform: 0.25.
	if got := WorkingSetHitRate(4<<20, 1<<20, 0); got != 0.25 {
		t.Errorf("uniform 4x = %v, want 0.25", got)
	}
	// Non-positive working set: trivially cached.
	if got := WorkingSetHitRate(0, 1<<20, 1); got != 1 {
		t.Errorf("empty working set = %v, want 1", got)
	}
}

func TestSortedSliceShare(t *testing.T) {
	// Under capacity: everyone gets their demand.
	got := SortedSliceShare([]int64{10, 20}, 100)
	if got[0] != 10 || got[1] != 20 {
		t.Errorf("under capacity: %v", got)
	}
	// Over capacity: water-filling.
	got = SortedSliceShare([]int64{10, 100, 100}, 90)
	if got[0] != 10 || got[1] != 40 || got[2] != 40 {
		t.Errorf("water filling: %v", got)
	}
	var sum int64
	for _, v := range got {
		sum += v
	}
	if sum != 90 {
		t.Errorf("shares sum to %d, want 90", sum)
	}
}

func TestSortedSliceSharePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative demand should panic")
		}
	}()
	SortedSliceShare([]int64{-1}, 10)
}

func TestAccessPanicsOnBadCore(t *testing.T) {
	h := NewHierarchy(SPRHierConfig(1))
	defer func() {
		if recover() == nil {
			t.Error("out-of-range core should panic")
		}
	}()
	h.Access(99, 0, Home{}, false)
}

func TestNodeOf(t *testing.T) {
	h := NewHierarchy(SPRHierConfig(4))
	if h.NodeOf(0) != 0 || h.NodeOf(7) != 0 || h.NodeOf(8) != 1 || h.NodeOf(31) != 3 {
		t.Error("NodeOf mapping wrong")
	}
}

func TestLevelStrings(t *testing.T) {
	if L1.String() != "L1" || L2.String() != "L2" || LLC.String() != "LLC" || Memory.String() != "memory" {
		t.Error("level strings wrong")
	}
}
