//go:build linux

package cache

import (
	"syscall"
	"unsafe"
)

// adviseHugePages asks the kernel to back the slab arena with transparent
// huge pages. The simulation's random set probes touch megabytes of tag
// slab; on 4 KB pages every probe costs a dTLB miss and a page walk that the
// CPU cannot overlap, which — not the cache misses — dominates the streamed
// measurement loops. With 2 MB pages the whole arena needs a handful of TLB
// entries. Purely a hint: failure (or a kernel with THP disabled) is
// ignored and only costs speed.
func adviseHugePages(words []uint64) {
	if len(words) == 0 {
		return
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
	// Madvise requires page alignment; trim to the 4 KB-aligned interior.
	const page = 4096
	start := uintptr(unsafe.Pointer(&b[0]))
	off := 0
	if r := start % page; r != 0 {
		off = int(page - r)
	}
	if off >= len(b) {
		return
	}
	n := (len(b) - off) &^ (page - 1)
	if n == 0 {
		return
	}
	_ = syscall.Madvise(b[off:off+n], syscall.MADV_HUGEPAGE)
}
