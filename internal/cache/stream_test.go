package cache

import (
	"testing"

	"cxlmem/internal/sim"
)

// TestReadStreamMatchesAccess pins the fused kernel's core contract: for any
// address stream, ReadStream leaves the hierarchy in exactly the state a
// scalar Access loop would, and reports the same per-level counts — across
// homes, SNC modes, and hierarchies pre-seeded with dirty lines and
// cross-core state.
func TestReadStreamMatchesAccess(t *testing.T) {
	cases := []struct {
		name string
		snc  int
		home Home
	}{
		{"snc4-local", 4, Home{Kind: HomeLocalDDR, Node: 0}},
		{"snc4-remote", 4, Home{Kind: HomeRemote, Node: 1}},
		{"snc1-local", 1, Home{Kind: HomeLocalDDR, Node: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := SPRHierConfig(tc.snc)
			// Shrink the hierarchy so a short stream exercises every path
			// (L1/L2/LLC hits, misses, evictions, victim promotions).
			cfg.L1Bytes, cfg.L1Ways = 2<<10, 4
			cfg.L2Bytes, cfg.L2Ways = 16<<10, 8
			cfg.LLCSliceBytes, cfg.LLCWays = 8<<10, 8

			ha := NewHierarchy(cfg)
			hb := NewHierarchy(cfg)

			// Pre-seed both with identical cross-core traffic, including
			// writes (dirty lines) and a different home, through the scalar
			// path.
			seed := sim.NewRng(11)
			for i := 0; i < 2000; i++ {
				addr := uint64(seed.Intn(1<<14)) * LineBytes
				core := seed.Intn(4)
				write := seed.Intn(3) == 0
				other := Home{Kind: HomeRemote, Node: 0}
				ha.Access(core, addr, other, write)
				hb.Access(core, addr, other, write)
			}

			rng := sim.NewRng(7)
			addrs := make([]uint64, 5000)
			for i := range addrs {
				addrs[i] = uint64(rng.Intn(1<<14)) * LineBytes
			}

			var want LevelCounts
			for _, a := range addrs {
				want[ha.Access(2, a, tc.home, false)]++
			}
			var got LevelCounts
			hb.ReadStream(2, addrs, tc.home, &got)

			if got != want {
				t.Fatalf("level counts diverge: ReadStream %v vs Access %v", got, want)
			}
			if ha.LLCHits != hb.LLCHits || ha.LLCMisses != hb.LLCMisses {
				t.Fatalf("LLC counters diverge: %d/%d vs %d/%d",
					hb.LLCHits, hb.LLCMisses, ha.LLCHits, ha.LLCMisses)
			}
			occA, occB := ha.SliceOccupancy(), hb.SliceOccupancy()
			for i := range occA {
				if occA[i] != occB[i] {
					t.Fatalf("slice %d occupancy diverges: %d vs %d", i, occB[i], occA[i])
				}
			}
			// The post-state must be identical too: replay a fresh probe
			// stream through both and compare outcomes level by level.
			probe := sim.NewRng(13)
			for i := 0; i < 3000; i++ {
				a := uint64(probe.Intn(1<<14)) * LineBytes
				la := ha.Access(2, a, tc.home, false)
				lb := hb.Access(2, a, tc.home, false)
				if la != lb {
					t.Fatalf("post-state diverges at probe %d (addr %#x): %v vs %v", i, a, lb, la)
				}
			}
		})
	}
}

// TestReadStreamPanicsOnBadCore matches Access's contract.
func TestReadStreamPanicsOnBadCore(t *testing.T) {
	h := NewHierarchy(SPRHierConfig(1))
	defer func() {
		if recover() == nil {
			t.Error("out-of-range core should panic")
		}
	}()
	var c LevelCounts
	h.ReadStream(99, []uint64{0}, Home{}, &c)
}

// TestFingerprintConsistency drives a randomized op mix through one Cache and
// verifies the fingerprint sidecar stays a faithful mirror of the words —
// every resident line must remain findable, every absent line a miss.
func TestFingerprintConsistency(t *testing.T) {
	c := NewCache(8<<10, 8)
	rng := sim.NewRng(3)
	resident := map[uint64]bool{}
	const span = 1 << 12 // lines; small enough to force heavy conflicts
	for i := 0; i < 200000; i++ {
		line := uint64(rng.Intn(span))
		addr := line * LineBytes
		switch rng.Intn(4) {
		case 0:
			if v, ev := c.Insert(addr, Home{}, rng.Intn(2) == 0); ev {
				delete(resident, v.Addr/LineBytes)
			}
			resident[line] = true
		case 1:
			got := c.Lookup(addr, false)
			if got != resident[line] {
				t.Fatalf("op %d: Lookup(%#x) = %v, want %v", i, addr, got, resident[line])
			}
		case 2:
			found, _ := c.Invalidate(addr)
			if found != resident[line] {
				t.Fatalf("op %d: Invalidate(%#x) = %v, want %v", i, addr, found, resident[line])
			}
			delete(resident, line)
		case 3:
			found, _ := c.ProbeRemove(addr)
			if found != resident[line] {
				t.Fatalf("op %d: ProbeRemove(%#x) = %v, want %v", i, addr, found, resident[line])
			}
			delete(resident, line)
		}
	}
	if c.Occupancy() != len(resident) {
		t.Fatalf("occupancy %d, want %d", c.Occupancy(), len(resident))
	}
}

// TestPackWordNodeLimit pins the loud failure mode for nodes beyond the
// packed range.
func TestPackWordNodeLimit(t *testing.T) {
	c := NewCache(4096, 4)
	defer func() {
		if recover() == nil {
			t.Error("node beyond MaxHomeNode should panic")
		}
	}()
	c.Insert(0, Home{Kind: HomeRemote, Node: MaxHomeNode + 1}, false)
}

// TestNewCacheWaysLimit pins the loud failure mode for associativities the
// fingerprint sidecar cannot cover.
func TestNewCacheWaysLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ways beyond MaxWays should panic")
		}
	}()
	NewCache(LineBytes*32, MaxWays+1)
}
