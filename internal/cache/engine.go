package cache

import (
	"fmt"
	"math/bits"
)

// Packed tag-store engine.
//
// Each line slot is one 64-bit word instead of the historical 40-byte way
// struct:
//
//	bits 0–58   tag+1 (addr/LineBytes never exceeds 2^58, so +1 fits; a
//	            zero word means an empty slot and zeroed slabs start valid)
//	bit  59     dirty
//	bit  60     home kind (set = HomeRemote)
//	bits 61–63  home node
//
//	 63      61  60    59     58                                        0
//	[ node (3) ][kind][dirty][               tag+1 (59)                  ]
//
// The node field caps Home.Node at 7; the modeled SPR part has at most four
// SNC nodes, and packWord panics loudly if a caller ever exceeds the packed
// range rather than corrupting routing.
//
// Recency is a packed permutation: each set carries one 64-bit order word
// whose nibble j holds the physical slot at recency position j — position 0
// is the MRU line, position ways-1 the LRU victim. Lines never move between
// physical slots; every recency operation is a handful of branchless
// shift/mask instructions on the order word:
//
//   - a hit promotes its slot to position 0 by SWAR-locating the slot's
//     nibble and sliding the younger nibbles up one position (ordPromote);
//   - a fill overwrites the slot named by the LRU nibble and rotates it to
//     the front (the fill reads exactly one slot word — the displaced
//     victim — and writes one);
//   - a removal slides the older nibbles down and parks the freed slot at
//     the LRU position, keeping empty slots at the logical tail (ordRemove).
//
// The order word encodes the same total order the historical stamp-based LRU
// (and the circular-cursor engine that replaced it) maintained, so every
// lookup, fill and eviction decision is identical — the golden-table corpus
// and the randomized model-check against a reference list LRU
// (lru_model_test.go) prove it. Nibbles at positions >= ways are dead: they
// start above every live slot index and promotion scans take the lowest
// match, so stale values shifted into them can never shadow a live slot.
//
// Probing never scans the ways. Each set carries a sidecar fingerprint word
// holding a 4-bit hash nibble per physical slot (slot i at bits 4i..4i+3).
// A probe XORs the whole fingerprint word against the probed nibble
// replicated 16 times and extracts zero-nibble positions with the classic
// SWAR trick, so a definite miss costs one 8-byte sidecar load and a
// handful of ALU ops — the megabytes of tag words are read only to verify
// the (almost always correct) candidates. Because hits no longer move
// words, a hit writes nothing but the order word.

const (
	tagBits    = 59
	ptagMask   = uint64(1)<<tagBits - 1
	dirtyFlag  = uint64(1) << tagBits
	remoteFlag = uint64(1) << (tagBits + 1)
	nodeShift  = tagBits + 2
	// MaxHomeNode is the largest Home.Node the packed word can route.
	MaxHomeNode = 7

	// MaxWays is the largest associativity the engine supports: the per-set
	// fingerprint sidecar and the recency order word each hold one 4-bit
	// nibble per slot in a single 64-bit word. NewCache rejects anything
	// larger.
	MaxWays = 16

	// fibMul is the multiplicative hash shared by set indexing (high bits),
	// slice routing (low bits) and the fingerprint nibble (middle bits).
	fibMul = 0x9e3779b97f4a7c15

	// fpShift positions the fingerprint nibble within the line hash, away
	// from both the set-index bits (top) and the slice-route bits (bottom).
	fpShift = 28

	swarLow  = 0x1111111111111111
	swarHigh = 0x8888888888888888

	// identityOrder is a fresh set's recency permutation: slot j at position
	// j. Any permutation is valid for an all-empty set (inserts fill from
	// the LRU position), but the identity keeps the dead nibbles above every
	// live slot index until rotations retire them.
	identityOrder = uint64(0xfedcba9876543210)
)

// packWord encodes a line's tag, home and dirty bit into its slot word.
func packWord(ptag uint64, home Home, dirty bool) uint64 {
	if uint(home.Node) > MaxHomeNode {
		panic(fmt.Sprintf("cache: home node %d exceeds packed limit %d", home.Node, MaxHomeNode))
	}
	w := ptag | uint64(home.Node)<<nodeShift
	if dirty {
		w |= dirtyFlag
	}
	if home.Kind == HomeRemote {
		w |= remoteFlag
	}
	return w
}

// unpackHome reconstructs a line's Home from its word.
func unpackHome(w uint64) Home {
	kind := HomeLocalDDR
	if w&remoteFlag != 0 {
		kind = HomeRemote
	}
	return Home{Kind: kind, Node: int(w >> nodeShift)}
}

// nibbleOf extracts a line hash's fingerprint nibble.
func nibbleOf(hash uint64) uint64 { return hash >> fpShift & 15 }

// findIn returns the way holding ptag, or -1, by SWAR-matching a replicated
// fingerprint nibble (rep = nib*swarLow, hoisted by callers that probe
// several levels with one nibble) against the set's fingerprint word and
// verifying candidates against the words. Empty ways have fingerprint nibble
// 0 and word 0, so a nib-0 probe may visit empty candidates but the verify
// rejects them.
func findIn(set []uint64, fp, rep, ptag uint64) int {
	x := fp ^ rep
	// Bits 4i+3 flag ways whose nibble equals nib (the borrow of the SWAR
	// subtract can add false flags above a match; verification filters
	// both those and genuine nibble collisions).
	m := (x - swarLow) &^ x & swarHigh
	for m != 0 {
		i := bits.TrailingZeros64(m) >> 2
		if i >= len(set) {
			return -1
		}
		if set[i]&ptagMask == ptag {
			return i
		}
		m &= m - 1
	}
	return -1
}

// lowNibbles masks the low k nibbles of a packed word (k <= 16; k == 16
// yields all ones via Go's defined overflow of the shift).
func lowNibbles(k int) uint64 { return uint64(1)<<(4*uint(k)) - 1 }

// nibblePos returns the lowest position whose nibble equals val. The SWAR
// zero-detect has no false flags below the lowest true match (borrows only
// start at a matching nibble), so the result is exact whenever val is
// present — which the permutation invariant guarantees for live slots.
func nibblePos(word, val uint64) int {
	x := word ^ val*swarLow
	return bits.TrailingZeros64((x-swarLow)&^x&swarHigh) >> 2
}

// ordPromote moves slot p to recency position 0: nibbles younger than p's
// position slide up one, everything older is untouched. Branchless — the
// position comes from a SWAR scan, the splice from three masks.
func ordPromote(ord uint64, p int) uint64 {
	j := nibblePos(ord, uint64(p))
	return ord&^lowNibbles(j+1) | ord&lowNibbles(j)<<4 | uint64(p)
}

// ordFill rotates the LRU slot (position ways-1, extracted by the caller) to
// position 0. The nibble shifted past position ways-1 is dead by the layout
// contract.
func ordFill(ord uint64, p int) uint64 { return ord<<4 | uint64(p) }

// ordRemove parks slot p at the LRU position: nibbles older than p's
// position slide down one and p becomes position ways-1, keeping empty slots
// at the logical tail. lruShift is 4*(ways-1).
func ordRemove(ord uint64, p int, lruShift uint) uint64 {
	j := nibblePos(ord, uint64(p))
	low := lowNibbles(j)
	return (ord&low|ord>>4&^low)&^(15<<lruShift) | uint64(p)<<lruShift
}

// materialize allocates the tag slab and sidecars on first fill. Zero words
// are empty slots, so only the order words need an initialization pass.
func (c *Cache) materialize() {
	if c.words == nil {
		c.words = make([]uint64, c.setCount*c.ways)
		c.meta = make([]uint64, 2*c.setCount)
		for i := 1; i < len(c.meta); i += 2 {
			c.meta[i] = identityOrder
		}
	}
}

// set returns the slot words of the set holding the hashed line.
func (c *Cache) set(hash uint64) (set []uint64, s int) {
	s = int(hash >> c.shift)
	b := s * c.ways
	return c.words[b : b+c.ways], s
}

// fillSlot writes w as set s's new MRU line into the LRU slot named by the
// order word, returning the displaced word — zero if that slot was empty
// (empty slots sit at the logical tail), otherwise the evicted LRU line.
// Exactly one slot word is read and written. Raw-array form shared by the
// Cache methods and the fused stream loops.
func fillSlot(set, meta []uint64, s int, w, nib uint64, lruShift uint) (displaced uint64) {
	m := 2 * s
	ord := meta[m+1]
	p := int(ord >> lruShift & 15)
	displaced = set[p]
	set[p] = w
	meta[m] = meta[m]&^(15<<(4*uint(p))) | nib<<(4*uint(p))
	meta[m+1] = ordFill(ord, p)
	return displaced
}

// clearSlot deletes the line at physical slot p of set s, clearing its word
// and fingerprint nibble and parking the freed slot at the logical tail.
func clearSlot(set, meta []uint64, s, p int, lruShift uint) {
	m := 2 * s
	set[p] = 0
	meta[m] &^= 15 << (4 * uint(p))
	meta[m+1] = ordRemove(meta[m+1], p, lruShift)
}

// fill writes w as the set's new MRU line into the LRU slot, returning the
// displaced word (zero if the slot was empty).
func (c *Cache) fill(set []uint64, s int, w, nib uint64) (displaced uint64) {
	return fillSlot(set, c.meta, s, w, nib, c.lruShift)
}

// touch promotes the line at physical slot p to the MRU position. Only the
// order word changes — the line stays in its slot and the fingerprint
// sidecar is untouched.
func (c *Cache) touch(s, p int) {
	c.meta[2*s+1] = ordPromote(c.meta[2*s+1], p)
}

// removeSlot deletes the line at physical slot p, clearing its word and
// fingerprint nibble and parking the freed slot at the logical tail.
func (c *Cache) removeSlot(set []uint64, s, p int) {
	clearSlot(set, c.meta, s, p, c.lruShift)
}

// Lookup probes for addr. On a hit it promotes the line to the set's MRU
// position, applies the dirty bit for writes, and returns true.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	if c.words == nil {
		c.Misses++
		return false
	}
	line := addr / LineBytes
	hash := line * fibMul
	set, s := c.set(hash)
	i := findIn(set, c.meta[2*s], nibbleOf(hash)*swarLow, line+1)
	if i < 0 {
		c.Misses++
		return false
	}
	c.touch(s, i)
	if write {
		set[i] |= dirtyFlag
	}
	c.Hits++
	return true
}

// Insert fills addr into the cache, returning the displaced victim (if any).
// A line already present is promoted to MRU and its dirty bit merged.
func (c *Cache) Insert(addr uint64, home Home, dirty bool) (Victim, bool) {
	c.materialize()
	line := addr / LineBytes
	hash := line * fibMul
	set, s := c.set(hash)
	nib := nibbleOf(hash)
	ptag := line + 1

	if i := findIn(set, c.meta[2*s], nib*swarLow, ptag); i >= 0 {
		// Already present: promote, keep the original home, merge dirty.
		c.touch(s, i)
		if dirty {
			set[i] |= dirtyFlag
		}
		return Victim{}, false
	}
	displaced := c.fill(set, s, packWord(ptag, home, dirty), nib)
	if displaced == 0 {
		return Victim{}, false
	}
	c.Evictions++
	return Victim{
		Addr:  (displaced&ptagMask - 1) * LineBytes,
		Home:  unpackHome(displaced),
		Dirty: displaced&dirtyFlag != 0,
	}, true
}

// remove deletes addr from its set if present and reports whether it was
// found and whether it was dirty.
func (c *Cache) remove(addr uint64) (found, dirty bool) {
	if c.words == nil {
		return false, false
	}
	line := addr / LineBytes
	hash := line * fibMul
	set, s := c.set(hash)
	i := findIn(set, c.meta[2*s], nibbleOf(hash)*swarLow, line+1)
	if i < 0 {
		return false, false
	}
	w := set[i]
	c.removeSlot(set, s, i)
	return true, w&dirtyFlag != 0
}

// ProbeRemove is the LLC victim-cache operation: one combined probe that, on
// a hit, removes the line (it is being promoted back into a private cache)
// and reports its dirty bit. It updates Hits/Misses exactly as a Lookup
// followed by an Invalidate used to, but touches the set once.
func (c *Cache) ProbeRemove(addr uint64) (found, dirty bool) {
	found, dirty = c.remove(addr)
	if found {
		c.Hits++
	} else {
		c.Misses++
	}
	return found, dirty
}

// Invalidate removes addr if present, returning whether it was found and
// whether it was dirty. Unlike ProbeRemove it leaves the hit/miss counters
// alone (it models an explicit flush, not a demand access).
func (c *Cache) Invalidate(addr uint64) (found, dirty bool) {
	return c.remove(addr)
}

// Occupancy returns the number of valid lines (O(capacity); intended for
// tests and diagnostics).
func (c *Cache) Occupancy() int {
	n := 0
	for _, w := range c.words {
		if w != 0 {
			n++
		}
	}
	return n
}

// Flush invalidates every line (clflush of the whole cache, as memo does
// before each latency measurement). The order words keep their current
// permutation — any permutation is valid for an all-empty cache, since
// inserts always fill from the LRU position.
func (c *Cache) Flush() {
	clear(c.words)
	for i := 0; i < len(c.meta); i += 2 {
		c.meta[i] = 0
	}
}
