package cache

import (
	"fmt"
	"math/bits"
)

// Packed tag-store engine.
//
// Each line slot is one 64-bit word instead of the historical 40-byte way
// struct:
//
//	bits 0–58   tag+1 (addr/LineBytes never exceeds 2^58, so +1 fits; a
//	            zero word means an empty slot and zeroed slabs start valid)
//	bit  59     dirty
//	bit  60     home kind (set = HomeRemote)
//	bits 61–63  home node
//
//	 63      61  60    59     58                                        0
//	[ node (3) ][kind][dirty][               tag+1 (59)                  ]
//
// The node field caps Home.Node at 7; the modeled SPR part has at most four
// SNC nodes, and packWord panics loudly if a caller ever exceeds the packed
// range rather than corrupting routing.
//
// Recency replaces the old per-way LRU stamp + clock: each set is a circular
// buffer whose logical order starts at a per-set front cursor, most recently
// used first; empty slots (zero words) sit at the logical tail. A fill steps
// the cursor back and writes one slot — displacing exactly the logical-last
// (LRU) line when the set is full — so inserts and evictions read and write
// a single word instead of scanning stamps or shifting the set. A hit
// promotes its line to the cursor by walking only the lines logically ahead
// of it. Because the cursor order and the old stamp order are the same
// total order, every lookup, fill and eviction decision is identical to the
// old engine's — the golden-table tests prove it byte-for-byte.
//
// Probing never scans the ways. Each set carries a sidecar fingerprint word
// holding a 4-bit hash nibble per physical slot (slot i at bits 4i..4i+3).
// A probe XORs the whole fingerprint word against the probed nibble
// replicated 16 times and extracts zero-nibble positions with the classic
// SWAR trick, so a definite miss costs one 8-byte sidecar load and a
// handful of ALU ops — the megabytes of tag words are read only to verify
// the (almost always correct) candidates and to move lines on hits.

const (
	tagBits    = 59
	ptagMask   = uint64(1)<<tagBits - 1
	dirtyFlag  = uint64(1) << tagBits
	remoteFlag = uint64(1) << (tagBits + 1)
	nodeShift  = tagBits + 2
	// MaxHomeNode is the largest Home.Node the packed word can route.
	MaxHomeNode = 7

	// MaxWays is the largest associativity the engine supports: the per-set
	// fingerprint sidecar holds one 4-bit nibble per slot in a single
	// 64-bit word. NewCache rejects anything larger.
	MaxWays = 16

	// fibMul is the multiplicative hash shared by set indexing (high bits),
	// slice routing (low bits) and the fingerprint nibble (middle bits).
	fibMul = 0x9e3779b97f4a7c15

	// fpShift positions the fingerprint nibble within the line hash, away
	// from both the set-index bits (top) and the slice-route bits (bottom).
	fpShift = 28

	swarLow  = 0x1111111111111111
	swarHigh = 0x8888888888888888
)

// packWord encodes a line's tag, home and dirty bit into its slot word.
func packWord(ptag uint64, home Home, dirty bool) uint64 {
	if uint(home.Node) > MaxHomeNode {
		panic(fmt.Sprintf("cache: home node %d exceeds packed limit %d", home.Node, MaxHomeNode))
	}
	w := ptag | uint64(home.Node)<<nodeShift
	if dirty {
		w |= dirtyFlag
	}
	if home.Kind == HomeRemote {
		w |= remoteFlag
	}
	return w
}

// unpackHome reconstructs a line's Home from its word.
func unpackHome(w uint64) Home {
	kind := HomeLocalDDR
	if w&remoteFlag != 0 {
		kind = HomeRemote
	}
	return Home{Kind: kind, Node: int(w >> nodeShift)}
}

// nibbleOf extracts a line hash's fingerprint nibble.
func nibbleOf(hash uint64) uint64 { return hash >> fpShift & 15 }

// findIn returns the way holding ptag, or -1, by SWAR-matching nib against
// the set's fingerprint word and verifying candidates against the words.
// Empty ways have fingerprint nibble 0 and word 0, so a nib-0 probe may
// visit empty candidates but the verify rejects them.
func findIn(set []uint64, fp, nib, ptag uint64) int {
	x := fp ^ nib*swarLow
	// Bits 4i+3 flag ways whose nibble equals nib (the borrow of the SWAR
	// subtract can add false flags above a match; verification filters
	// both those and genuine nibble collisions).
	m := (x - swarLow) &^ x & swarHigh
	for m != 0 {
		i := bits.TrailingZeros64(m) >> 2
		if i >= len(set) {
			return -1
		}
		if set[i]&ptagMask == ptag {
			return i
		}
		m &= m - 1
	}
	return -1
}

// materialize allocates the tag slab and sidecars on first fill. Zero words
// are empty slots, so no initialization pass is needed.
func (c *Cache) materialize() {
	if c.words == nil {
		c.words = make([]uint64, c.setCount*c.ways)
		c.fps = make([]uint64, c.setCount)
		c.fronts = make([]uint8, c.setCount)
	}
}

// set returns the slot words of the set holding the hashed line.
func (c *Cache) set(hash uint64) (set []uint64, s int) {
	s = int(hash >> c.shift)
	b := s * c.ways
	return c.words[b : b+c.ways], s
}

// pushSlot writes w as the set's new MRU line by stepping the recency cursor
// back one slot, returning the displaced word — zero if that slot was empty,
// otherwise the logical-last (LRU) line. Exactly one slot word is read and
// written; the rest of the set is untouched.
func (c *Cache) pushSlot(set []uint64, s int, w, nib uint64) (displaced uint64) {
	f := int(c.fronts[s]) - 1
	if f < 0 {
		f = len(set) - 1
	}
	displaced = set[f]
	set[f] = w
	c.fps[s] = c.fps[s]&^(15<<(4*uint(f))) | nib<<(4*uint(f))
	c.fronts[s] = uint8(f)
	return displaced
}

// promoteAt moves the line at physical slot p to the logical front, walking
// the logically-ahead slots (and their fingerprint nibbles) one position
// back. Returns the promoted word; the cursor does not move.
func (c *Cache) promoteAt(set []uint64, s, p int, nib uint64) uint64 {
	fp := c.fps[s]
	front := int(c.fronts[s])
	w := set[p]
	for p != front {
		q := p - 1
		if q < 0 {
			q = len(set) - 1
		}
		set[p] = set[q]
		fp = fp&^(15<<(4*uint(p))) | fp>>(4*uint(q))&15<<(4*uint(p))
		p = q
	}
	set[front] = w
	c.fps[s] = fp&^(15<<(4*uint(front))) | nib<<(4*uint(front))
	return w
}

// removeSlot deletes the line at physical slot p, closing the gap by
// walking the logically-ahead slots back and advancing the cursor; empty
// slots stay at the logical tail.
func (c *Cache) removeSlot(set []uint64, s, p int) {
	fp := c.fps[s]
	front := int(c.fronts[s])
	for p != front {
		q := p - 1
		if q < 0 {
			q = len(set) - 1
		}
		set[p] = set[q]
		fp = fp&^(15<<(4*uint(p))) | fp>>(4*uint(q))&15<<(4*uint(p))
		p = q
	}
	set[front] = 0
	fp &^= 15 << (4 * uint(front))
	f := front + 1
	if f == len(set) {
		f = 0
	}
	c.fps[s] = fp
	c.fronts[s] = uint8(f)
}

// Lookup probes for addr. On a hit it promotes the line to the set's MRU
// position, applies the dirty bit for writes, and returns true.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	if c.words == nil {
		c.Misses++
		return false
	}
	line := addr / LineBytes
	hash := line * fibMul
	set, s := c.set(hash)
	nib := nibbleOf(hash)
	i := findIn(set, c.fps[s], nib, line+1)
	if i < 0 {
		c.Misses++
		return false
	}
	w := c.promoteAt(set, s, i, nib)
	if write {
		set[int(c.fronts[s])] = w | dirtyFlag
	}
	c.Hits++
	return true
}

// Insert fills addr into the cache, returning the displaced victim (if any).
// A line already present is promoted to MRU and its dirty bit merged.
func (c *Cache) Insert(addr uint64, home Home, dirty bool) (Victim, bool) {
	c.materialize()
	line := addr / LineBytes
	hash := line * fibMul
	set, s := c.set(hash)
	nib := nibbleOf(hash)
	ptag := line + 1

	if i := findIn(set, c.fps[s], nib, ptag); i >= 0 {
		// Already present: promote, keep the original home, merge dirty.
		w := c.promoteAt(set, s, i, nib)
		if dirty {
			set[int(c.fronts[s])] = w | dirtyFlag
		}
		return Victim{}, false
	}
	displaced := c.pushSlot(set, s, packWord(ptag, home, dirty), nib)
	if displaced == 0 {
		return Victim{}, false
	}
	c.Evictions++
	return Victim{
		Addr:  (displaced&ptagMask - 1) * LineBytes,
		Home:  unpackHome(displaced),
		Dirty: displaced&dirtyFlag != 0,
	}, true
}

// remove deletes addr from its set if present and reports whether it was
// found and whether it was dirty.
func (c *Cache) remove(addr uint64) (found, dirty bool) {
	if c.words == nil {
		return false, false
	}
	line := addr / LineBytes
	hash := line * fibMul
	set, s := c.set(hash)
	i := findIn(set, c.fps[s], nibbleOf(hash), line+1)
	if i < 0 {
		return false, false
	}
	w := set[i]
	c.removeSlot(set, s, i)
	return true, w&dirtyFlag != 0
}

// ProbeRemove is the LLC victim-cache operation: one combined probe that, on
// a hit, removes the line (it is being promoted back into a private cache)
// and reports its dirty bit. It updates Hits/Misses exactly as a Lookup
// followed by an Invalidate used to, but touches the set once.
func (c *Cache) ProbeRemove(addr uint64) (found, dirty bool) {
	found, dirty = c.remove(addr)
	if found {
		c.Hits++
	} else {
		c.Misses++
	}
	return found, dirty
}

// Invalidate removes addr if present, returning whether it was found and
// whether it was dirty. Unlike ProbeRemove it leaves the hit/miss counters
// alone (it models an explicit flush, not a demand access).
func (c *Cache) Invalidate(addr uint64) (found, dirty bool) {
	return c.remove(addr)
}

// Occupancy returns the number of valid lines (O(capacity); intended for
// tests and diagnostics).
func (c *Cache) Occupancy() int {
	n := 0
	for _, w := range c.words {
		if w != 0 {
			n++
		}
	}
	return n
}

// Flush invalidates every line (clflush of the whole cache, as memo does
// before each latency measurement). Cursor positions are irrelevant for an
// all-empty set, so they are left in place.
func (c *Cache) Flush() {
	clear(c.words)
	clear(c.fps)
}
