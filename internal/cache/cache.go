// Package cache implements the CPU cache hierarchy of the evaluated system:
// per-core L1 and L2 caches and a sliced, non-inclusive last-level cache that
// acts as a victim cache for L2 evictions (post-Skylake Intel organization,
// paper §4.3).
//
// The package models the one structural property the paper shows to be
// first-order for CXL memory performance: in sub-NUMA-clustering (SNC) mode,
// L2 victims of lines homed in the node's *local DDR* may only be placed in
// LLC slices of that node, while victims of lines homed in *remote or CXL
// memory* may be placed in any slice of the socket — so a core streaming
// from CXL memory sees a 2–4× larger effective LLC (observation O6,
// Fig. 5, Table 3).
//
// It also provides Che's approximation for LRU hit rates under zipfian
// popularity, used by the analytic application models where simulating every
// access would be wasteful.
package cache

import (
	"fmt"
)

// LineBytes is the cache line size.
const LineBytes = 64

// Level identifies where an access was satisfied.
type Level int

const (
	// L1 hit in the core's private L1 data cache.
	L1 Level = iota
	// L2 hit in the core's private L2 cache.
	L2
	// LLC hit in a last-level cache slice.
	LLC
	// Memory indicates a full miss served by a memory device.
	Memory
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	case Memory:
		return "memory"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// HomeKind classifies a line's backing device for LLC slice routing.
type HomeKind int

const (
	// HomeLocalDDR marks data homed in the SNC node's own DDR channels:
	// victims stay within the node's LLC slices.
	HomeLocalDDR HomeKind = iota
	// HomeRemote marks data homed in remote NUMA memory or a CXL device:
	// victims may be placed in any slice of the socket.
	HomeRemote
)

// Home describes where a line's data lives, for slice-routing purposes.
type Home struct {
	// Kind selects the routing class.
	Kind HomeKind
	// Node is the SNC node the page belongs to (the accessing node for CXL
	// pages); only consulted when routing is confined to one node.
	Node int
}

// way is one line slot in a set.
type way struct {
	tag   uint64
	home  Home
	valid bool
	dirty bool
	used  uint64 // LRU stamp
}

// Cache is a single set-associative, LRU write-back cache.
// It stores tags only — the simulation tracks placement, not data.
//
// The tag store is allocated lazily on the first lookup/insert: building a
// System is cheap for the many analytic experiments that never simulate an
// access, and the store is a single flat slab rather than one slice per set.
type Cache struct {
	slab     []way // flat setCount*ways tag store; nil until first touched
	setCount int
	ways     int
	shift    uint // 64 - log2(setCount), for Fibonacci set hashing
	clock    uint64

	// Hits and Misses count lookups.
	Hits, Misses uint64
	// Evictions counts valid lines displaced by fills.
	Evictions uint64
}

// NewCache builds a cache of sizeBytes capacity and the given associativity.
// sizeBytes must be a positive multiple of ways*LineBytes; the set count is
// rounded to a power of two (downward) for fast indexing.
func NewCache(sizeBytes int64, ways int) *Cache {
	if ways <= 0 {
		panic("cache: non-positive associativity")
	}
	lines := sizeBytes / LineBytes
	sets := lines / int64(ways)
	if sets <= 0 {
		panic(fmt.Sprintf("cache: size %d too small for %d ways", sizeBytes, ways))
	}
	// Round sets down to a power of two.
	p := int64(1)
	for p*2 <= sets {
		p *= 2
	}
	c := &Cache{setCount: int(p), ways: ways, shift: 64}
	for s := p; s > 1; s /= 2 {
		c.shift--
	}
	return c
}

// set returns the ways of set idx, materializing the tag store on first use.
func (c *Cache) set(idx uint64) []way {
	if c.slab == nil {
		c.slab = make([]way, c.setCount*c.ways)
	}
	base := int(idx) * c.ways
	return c.slab[base : base+c.ways]
}

// Lines returns the capacity in cache lines.
func (c *Cache) Lines() int { return c.setCount * c.ways }

// SizeBytes returns the modeled capacity in bytes.
func (c *Cache) SizeBytes() int64 { return int64(c.Lines()) * LineBytes }

func (c *Cache) setIndex(addr uint64) uint64 {
	line := addr / LineBytes
	// Fibonacci hashing: the *high* bits of the multiplicative hash index
	// the set. Slice routing (hierarchy.go) consumes the low bits of the
	// same product, so using high bits here keeps set placement
	// uncorrelated with slice placement — like the physical-address
	// hashing real LLCs use.
	if c.shift >= 64 {
		return 0
	}
	return (line * 0x9e3779b97f4a7c15) >> c.shift
}

// Lookup probes for addr. On a hit it refreshes LRU state, applies the dirty
// bit for writes, and returns true.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	set := c.set(c.setIndex(addr))
	tag := addr / LineBytes
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.clock++
			set[i].used = c.clock
			if write {
				set[i].dirty = true
			}
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Victim is a line displaced by an insertion.
type Victim struct {
	Addr  uint64
	Home  Home
	Dirty bool
}

// Insert fills addr into the cache, returning the displaced victim (if any).
func (c *Cache) Insert(addr uint64, home Home, dirty bool) (Victim, bool) {
	set := c.set(c.setIndex(addr))
	tag := addr / LineBytes
	c.clock++

	// Already present: refresh.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.clock
			if dirty {
				set[i].dirty = true
			}
			return Victim{}, false
		}
	}
	// Free way?
	for i := range set {
		if !set[i].valid {
			set[i] = way{tag: tag, home: home, valid: true, dirty: dirty, used: c.clock}
			return Victim{}, false
		}
	}
	// Evict LRU.
	lru := 0
	for i := 1; i < len(set); i++ {
		if set[i].used < set[lru].used {
			lru = i
		}
	}
	v := Victim{Addr: set[lru].tag * LineBytes, Home: set[lru].home, Dirty: set[lru].dirty}
	set[lru] = way{tag: tag, home: home, valid: true, dirty: dirty, used: c.clock}
	c.Evictions++
	return v, true
}

// Invalidate removes addr if present, returning whether it was found and
// whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (found, dirty bool) {
	if c.slab == nil {
		return false, false
	}
	set := c.set(c.setIndex(addr))
	tag := addr / LineBytes
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			d := set[i].dirty
			set[i] = way{}
			return true, d
		}
	}
	return false, false
}

// Occupancy returns the number of valid lines (O(capacity); intended for
// tests and diagnostics).
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.slab {
		if c.slab[i].valid {
			n++
		}
	}
	return n
}

// Flush invalidates every line (clflush of the whole cache, as memo does
// before each latency measurement).
func (c *Cache) Flush() {
	for i := range c.slab {
		c.slab[i] = way{}
	}
}
