// Package cache implements the CPU cache hierarchy of the evaluated system:
// per-core L1 and L2 caches and a sliced, non-inclusive last-level cache that
// acts as a victim cache for L2 evictions (post-Skylake Intel organization,
// paper §4.3).
//
// The package models the one structural property the paper shows to be
// first-order for CXL memory performance: in sub-NUMA-clustering (SNC) mode,
// L2 victims of lines homed in the node's *local DDR* may only be placed in
// LLC slices of that node, while victims of lines homed in *remote or CXL
// memory* may be placed in any slice of the socket — so a core streaming
// from CXL memory sees a 2–4× larger effective LLC (observation O6,
// Fig. 5, Table 3).
//
// Because the mlc measurement loops funnel millions of simulated accesses
// through this package, the tag stores are built for throughput: one packed
// 64-bit word per line, recency-ordered within each set (see engine.go for
// the layout and the equivalence argument with stamp-based LRU).
//
// It also provides Che's approximation for LRU hit rates under zipfian
// popularity, used by the analytic application models where simulating every
// access would be wasteful.
package cache

import (
	"fmt"
)

// LineBytes is the cache line size.
const LineBytes = 64

// Level identifies where an access was satisfied.
type Level int

const (
	// L1 hit in the core's private L1 data cache.
	L1 Level = iota
	// L2 hit in the core's private L2 cache.
	L2
	// LLC hit in a last-level cache slice.
	LLC
	// Memory indicates a full miss served by a memory device.
	Memory
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	case Memory:
		return "memory"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// LevelCounts is a per-Level histogram of satisfied accesses, indexed by
// Level. The streamed measurement loops accumulate one of these instead of
// converting every access into a latency immediately.
type LevelCounts [Memory + 1]uint64

// HomeKind classifies a line's backing device for LLC slice routing.
type HomeKind int

const (
	// HomeLocalDDR marks data homed in the SNC node's own DDR channels:
	// victims stay within the node's LLC slices.
	HomeLocalDDR HomeKind = iota
	// HomeRemote marks data homed in remote NUMA memory or a CXL device:
	// victims may be placed in any slice of the socket.
	HomeRemote
)

// Home describes where a line's data lives, for slice-routing purposes.
type Home struct {
	// Kind selects the routing class.
	Kind HomeKind
	// Node is the SNC node the page belongs to (the accessing node for CXL
	// pages); only consulted when routing is confined to one node.
	Node int
}

// Cache is a single set-associative, LRU write-back cache.
// It stores tags only — the simulation tracks placement, not data.
//
// The tag store is allocated lazily on the first fill: building a System is
// cheap for the many analytic experiments that never simulate an access.
// Storage is a single flat slab of packed tag words; engine.go holds the
// layout and the access operations.
type Cache struct {
	words []uint64 // packed tag words; nil until first fill
	// meta is the per-set sidecar: meta[2s] is set s's fingerprint word (one
	// 4-bit nibble per slot), meta[2s+1] its recency order word (nibble j =
	// slot at recency position j). The pair is interleaved so a probe and its
	// recency update touch one cache line, not two.
	meta     []uint64
	setCount int
	ways     int
	shift    uint // 64 - log2(setCount), for Fibonacci set hashing
	lruShift uint // 4*(ways-1): bit offset of the LRU nibble in an order word

	// Hits and Misses count lookups.
	Hits, Misses uint64
	// Evictions counts valid lines displaced by fills.
	Evictions uint64
}

// NewCache builds a cache of sizeBytes capacity and the given associativity.
// sizeBytes must be a positive multiple of ways*LineBytes; the set count is
// rounded to a power of two (downward) for fast indexing. Associativity is
// capped at MaxWays by the packed engine's per-set fingerprint word.
func NewCache(sizeBytes int64, ways int) *Cache {
	if ways <= 0 {
		panic("cache: non-positive associativity")
	}
	if ways > MaxWays {
		panic(fmt.Sprintf("cache: %d ways exceeds the engine's %d-slot fingerprint sidecar", ways, MaxWays))
	}
	lines := sizeBytes / LineBytes
	sets := lines / int64(ways)
	if sets <= 0 {
		panic(fmt.Sprintf("cache: size %d too small for %d ways", sizeBytes, ways))
	}
	// Round sets down to a power of two.
	p := int64(1)
	for p*2 <= sets {
		p *= 2
	}
	c := &Cache{setCount: int(p), ways: ways, shift: 64, lruShift: uint(4 * (ways - 1))}
	for s := p; s > 1; s /= 2 {
		c.shift--
	}
	return c
}

// Lines returns the capacity in cache lines.
func (c *Cache) Lines() int { return c.setCount * c.ways }

// SizeBytes returns the modeled capacity in bytes.
func (c *Cache) SizeBytes() int64 { return int64(c.Lines()) * LineBytes }

func (c *Cache) setIndex(addr uint64) uint64 {
	line := addr / LineBytes
	// Fibonacci hashing: the *high* bits of the multiplicative hash index
	// the set. Slice routing (hierarchy.go) consumes the low bits of the
	// same product, so using high bits here keeps set placement
	// uncorrelated with slice placement — like the physical-address
	// hashing real LLCs use.
	if c.shift >= 64 {
		return 0
	}
	return (line * 0x9e3779b97f4a7c15) >> c.shift
}

// Victim is a line displaced by an insertion.
type Victim struct {
	Addr  uint64
	Home  Home
	Dirty bool
}
