package cache

// Hierarchy state snapshots (DESIGN.md §15).
//
// A warmed hierarchy is expensive to produce — the buffer-latency warmup
// streams millions of simulated accesses — and cheap to describe: once every
// cache is carved from the shared arena, the arena's words plus the
// per-cache statistic counters ARE the complete simulated state. Capture
// copies them out; Restore copies them back into any hierarchy of the same
// configuration, leaving it byte-identical to the captured one (the
// warm-state cache in internal/mlc rides on this, and
// TestSnapshotRoundTrip/TestWarmStateByteIdentical pin it).

// Snapshot is a deep copy of a Hierarchy's complete simulated state: the
// packed tag words and sidecars of every cache plus all statistic counters.
// Snapshots are immutable once captured and safe to share across goroutines.
type Snapshot struct {
	cfg                HierConfig
	arena              []uint64
	counters           []uint64 // Hits, Misses, Evictions per cache, all() order
	llcHits, llcMisses uint64
}

// Config returns the configuration of the hierarchy the snapshot was
// captured from; Restore only accepts hierarchies configured identically.
func (s *Snapshot) Config() HierConfig { return s.cfg }

// Bytes reports the snapshot's approximate memory footprint, for sizing the
// warm-state cache bound.
func (s *Snapshot) Bytes() int64 {
	return int64(len(s.arena)+len(s.counters)) * 8
}

// Pristine reports whether the hierarchy has never simulated an access: no
// cache has a materialized tag store. A pristine hierarchy is guaranteed to
// Capture and Restore successfully, and restoring into one is equivalent to
// replaying the captured hierarchy's whole history into it.
func (h *Hierarchy) Pristine() bool {
	if h.arena != nil {
		return false
	}
	for _, c := range h.all() {
		if c.words != nil {
			return false
		}
	}
	return true
}

// Capture deep-copies the hierarchy's simulated state. It reports false —
// and copies nothing — when the state is not arena-complete (some cache
// materialized standalone before the hierarchy first streamed, so its slab
// lives outside the arena); callers fall back to recomputing.
func (h *Hierarchy) Capture() (*Snapshot, bool) {
	h.materializeAll()
	if !h.fresh {
		return nil, false
	}
	all := h.all()
	s := &Snapshot{
		cfg:       h.cfg,
		arena:     make([]uint64, len(h.arena)),
		counters:  make([]uint64, 0, 3*len(all)),
		llcHits:   h.LLCHits,
		llcMisses: h.LLCMisses,
	}
	copy(s.arena, h.arena)
	for _, c := range all {
		s.counters = append(s.counters, c.Hits, c.Misses, c.Evictions)
	}
	return s, true
}

// Restore overwrites the hierarchy's simulated state with the snapshot's,
// leaving it byte-identical to the hierarchy Capture saw. It reports false —
// and changes nothing — when the hierarchy cannot accept the snapshot: its
// configuration differs, or its slabs are not arena-complete. The arena
// carve is deterministic per configuration, so two fresh carves of equal
// configurations always have identical layouts.
func (h *Hierarchy) Restore(s *Snapshot) bool {
	if h.cfg != s.cfg {
		return false
	}
	h.materializeAll()
	if !h.fresh || len(h.arena) != len(s.arena) {
		return false
	}
	copy(h.arena, s.arena)
	h.LLCHits, h.LLCMisses = s.llcHits, s.llcMisses
	for i, c := range h.all() {
		c.Hits, c.Misses, c.Evictions = s.counters[3*i], s.counters[3*i+1], s.counters[3*i+2]
	}
	return true
}
