package cache

import (
	"testing"

	"cxlmem/internal/sim"
)

// shrunkConfig is the stream tests' small hierarchy: every path (hits,
// misses, evictions, victim promotions) fires within a few thousand
// accesses, and the set counts still leave shardable index bits.
func shrunkConfig(snc int) HierConfig {
	cfg := SPRHierConfig(snc)
	cfg.L1Bytes, cfg.L1Ways = 2<<10, 4
	cfg.L2Bytes, cfg.L2Ways = 16<<10, 8
	cfg.LLCSliceBytes, cfg.LLCWays = 8<<10, 8
	return cfg
}

// seedHierarchy replays identical cross-core traffic — writes (dirty lines)
// and a foreign home included — into a hierarchy through the scalar path.
func seedHierarchy(h *Hierarchy) {
	seed := sim.NewRng(11)
	for i := 0; i < 2000; i++ {
		addr := uint64(seed.Intn(1<<14)) * LineBytes
		core := seed.Intn(4)
		write := seed.Intn(3) == 0
		h.Access(core, addr, Home{Kind: HomeRemote, Node: 0}, write)
	}
}

// requireHierEqual compares two hierarchies' complete state: every cache's
// packed words, fingerprint sidecars, recency order words and statistic
// counters, plus the aggregate LLC counters. Byte-identity, not tolerance.
func requireHierEqual(t *testing.T, want, got *Hierarchy) {
	t.Helper()
	if want.LLCHits != got.LLCHits || want.LLCMisses != got.LLCMisses {
		t.Fatalf("LLC counters diverge: %d/%d, want %d/%d",
			got.LLCHits, got.LLCMisses, want.LLCHits, want.LLCMisses)
	}
	wa, ga := want.all(), got.all()
	for ci := range wa {
		w, g := wa[ci], ga[ci]
		if w.Hits != g.Hits || w.Misses != g.Misses || w.Evictions != g.Evictions {
			t.Fatalf("cache %d counters diverge: %d/%d/%d, want %d/%d/%d",
				ci, g.Hits, g.Misses, g.Evictions, w.Hits, w.Misses, w.Evictions)
		}
		for i := range w.words {
			if w.words[i] != g.words[i] {
				t.Fatalf("cache %d word %d diverges: %#x, want %#x", ci, i, g.words[i], w.words[i])
			}
		}
		for i := range w.meta {
			if w.meta[i] != g.meta[i] {
				t.Fatalf("cache %d sidecar word %d diverges: %#x, want %#x", ci, i, g.meta[i], w.meta[i])
			}
		}
	}
}

// TestReadStreamShardedMatchesSerial pins the sharded driver's contract: for
// any stream, home and worker count, ReadStreamSharded leaves the hierarchy
// bit-identical to the serial ReadStream and reports the same histogram —
// the determinism the exact-fidelity golden corpus rides on.
func TestReadStreamShardedMatchesSerial(t *testing.T) {
	cases := []struct {
		name string
		snc  int
		home Home
	}{
		{"snc4-local", 4, Home{Kind: HomeLocalDDR, Node: 0}},
		{"snc4-remote", 4, Home{Kind: HomeRemote, Node: 1}},
		{"snc1-local", 1, Home{Kind: HomeLocalDDR, Node: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := shrunkConfig(tc.snc)
			rng := sim.NewRng(7)
			addrs := make([]uint64, 40000)
			for i := range addrs {
				addrs[i] = uint64(rng.Intn(1<<14)) * LineBytes
			}

			ref := NewHierarchy(cfg)
			seedHierarchy(ref)
			var want LevelCounts
			ref.ReadStream(2, addrs, tc.home, &want)

			for _, workers := range []int{1, 3, 8} {
				h := NewHierarchy(cfg)
				seedHierarchy(h)
				var got LevelCounts
				h.ReadStreamSharded(2, addrs, tc.home, &got, workers)
				if got != want {
					t.Fatalf("workers=%d: histogram %v, want %v", workers, got, want)
				}
				requireHierEqual(t, ref, h)
			}
		})
	}
}

// TestReadStreamShardedSmallBatch pins the serial fallback: short streams
// skip the partition pass but still produce identical results.
func TestReadStreamShardedSmallBatch(t *testing.T) {
	cfg := shrunkConfig(4)
	rng := sim.NewRng(5)
	addrs := make([]uint64, minShardedLen/2)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1<<12)) * LineBytes
	}
	home := Home{Kind: HomeRemote, Node: 0}

	ref := NewHierarchy(cfg)
	var want LevelCounts
	ref.ReadStream(0, addrs, home, &want)

	h := NewHierarchy(cfg)
	var got LevelCounts
	h.ReadStreamSharded(0, addrs, home, &got, 4)
	if got != want {
		t.Fatalf("histogram %v, want %v", got, want)
	}
	requireHierEqual(t, ref, h)
}

// TestReadStreamShardedChunkingInvariant pins that splitting one stream into
// consecutive sharded calls composes: the warmup loops chunk multi-million
// access passes and must land in the same state as one call.
func TestReadStreamShardedChunkingInvariant(t *testing.T) {
	cfg := shrunkConfig(4)
	rng := sim.NewRng(9)
	addrs := make([]uint64, 30000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1<<14)) * LineBytes
	}
	home := Home{Kind: HomeRemote, Node: 1}

	ref := NewHierarchy(cfg)
	var want LevelCounts
	ref.ReadStreamSharded(0, addrs, home, &want, 2)

	h := NewHierarchy(cfg)
	var got LevelCounts
	for lo := 0; lo < len(addrs); lo += 7000 {
		hi := min(lo+7000, len(addrs))
		h.ReadStreamSharded(0, addrs[lo:hi], home, &got, 3)
	}
	if got != want {
		t.Fatalf("histogram %v, want %v", got, want)
	}
	requireHierEqual(t, ref, h)
}

// TestReadStreamShardedPanicsOnBadCore matches ReadStream's contract.
func TestReadStreamShardedPanicsOnBadCore(t *testing.T) {
	h := NewHierarchy(SPRHierConfig(1))
	defer func() {
		if recover() == nil {
			t.Error("out-of-range core should panic")
		}
	}()
	var c LevelCounts
	h.ReadStreamSharded(99, []uint64{0}, Home{}, &c, 2)
}

// TestEffectiveLLCLines pins the analytic tier's capacity model against the
// byte-based accessor across SNC modes and homes.
func TestEffectiveLLCLines(t *testing.T) {
	for _, snc := range []int{1, 4} {
		h := NewHierarchy(SPRHierConfig(snc))
		for _, home := range []Home{{Kind: HomeLocalDDR}, {Kind: HomeRemote}} {
			gotBytes := h.EffectiveLLCLines(home) * LineBytes
			if gotBytes != h.EffectiveLLCBytes(home) {
				t.Errorf("snc=%d home=%v: EffectiveLLCLines*64 = %d, EffectiveLLCBytes = %d",
					snc, home, gotBytes, h.EffectiveLLCBytes(home))
			}
		}
	}
}
