package cache

import (
	"testing"

	"cxlmem/internal/sim"
)

// streamCase replays one mixed stream — alternating cores and homes so the
// L1/L2/LLC fill, promote and spill paths all fire — through a hierarchy,
// optionally forcing the generic per-slice loop by discarding the kernel.
func streamCase(cfg HierConfig, forceGeneric bool) (*Hierarchy, LevelCounts) {
	h := NewHierarchy(cfg)
	if forceGeneric {
		h.materializeAll()
		h.kern = nil
	}
	rng := sim.NewRng(13)
	addrs := make([]uint64, 8000)
	var counts LevelCounts
	homes := []Home{
		{Kind: HomeLocalDDR, Node: 0},
		{Kind: HomeRemote, Node: 1},
		{Kind: HomeLocalDDR, Node: cfg.SNCNodes - 1},
	}
	for round := 0; round < 6; round++ {
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(1<<14)) * LineBytes
		}
		h.ReadStream(round%cfg.Cores, addrs, homes[round%len(homes)], &counts)
	}
	return h, counts
}

// TestStreamFusedMatchesGeneric holds the monomorphized kernel and the
// generic per-slice loop access-for-access equal: identical streams leave
// two hierarchies byte-identical whether or not the kernel dispatches.
func TestStreamFusedMatchesGeneric(t *testing.T) {
	cfg := shrunkConfig(4)
	fused, fusedCounts := streamCase(cfg, false)
	if fused.kern == nil {
		t.Fatal("uniform pow2 hierarchy did not build a kernel — the fused path is silently dead")
	}
	generic, genericCounts := streamCase(cfg, true)
	if generic.kern != nil {
		t.Fatal("forced-generic hierarchy still has a kernel")
	}
	if fusedCounts != genericCounts {
		t.Fatalf("histograms diverge: fused %v, generic %v", fusedCounts, genericCounts)
	}
	requireHierEqual(t, generic, fused)
}

// TestStreamFusedNonPow2Route pins the dispatch guard: a socket-wide route
// over a non-power-of-two slice count (24 cores) must take the generic loop
// even though the kernel exists, while confined (power-of-two) routes still
// fuse — and both agree with the all-generic run.
func TestStreamFusedNonPow2Route(t *testing.T) {
	cfg := shrunkConfig(3)
	cfg.Cores = 24 // 24 slices socket-wide (mask 0), 8 per node (mask 7)
	h, counts := streamCase(cfg, false)
	if h.kern == nil {
		t.Fatal("uniform-geometry 24-slice hierarchy should still build a kernel")
	}
	if rt := h.routeFor(Home{Kind: HomeRemote}); rt.mask != 0 {
		t.Fatalf("socket-wide route mask = %#x, want 0 (non-pow2 slice count)", rt.mask)
	}
	if rt := h.routeFor(Home{Kind: HomeLocalDDR, Node: 1}); rt.mask != 7 {
		t.Fatalf("confined route mask = %#x, want 7", rt.mask)
	}
	generic, genericCounts := streamCase(cfg, true)
	if counts != genericCounts {
		t.Fatalf("histograms diverge: mixed-dispatch %v, generic %v", counts, genericCounts)
	}
	requireHierEqual(t, generic, h)
}

// TestKernelSkipsMixedMaterialization pins the fallback: a cache that
// materialized standalone (scalar traffic before the first stream) leaves
// the arena incomplete, so no kernel is built and streams run generic —
// with results identical to the same history on an arena-carved twin.
func TestKernelSkipsMixedMaterialization(t *testing.T) {
	cfg := shrunkConfig(4)
	h := NewHierarchy(cfg)
	seedHierarchy(h) // Access materializes caches standalone
	rng := sim.NewRng(17)
	addrs := make([]uint64, 10000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1<<14)) * LineBytes
	}
	var counts LevelCounts
	h.ReadStream(2, addrs, Home{Kind: HomeRemote, Node: 0}, &counts)
	if h.kern != nil {
		t.Fatal("mixed standalone/arena hierarchy built a kernel")
	}

	// The same history through an arena-carved hierarchy (stream first, so
	// the kernel exists) must land in the same logical state: membership,
	// recency and counters are layout-independent.
	ref := NewHierarchy(cfg)
	ref.materializeAll()
	if ref.kern == nil {
		t.Fatal("fresh carve did not build a kernel")
	}
	seedHierarchy(ref)
	var refCounts LevelCounts
	ref.ReadStream(2, addrs, Home{Kind: HomeRemote, Node: 0}, &refCounts)
	if counts != refCounts {
		t.Fatalf("histograms diverge: mixed %v, arena %v", counts, refCounts)
	}
	requireHierEqual(t, ref, h)
}
