package cache

import "fmt"

// HierConfig sizes a Hierarchy. The defaults (see SPRHierConfig) follow the
// paper's Intel Xeon 6430 system: 32 cores in 4 chiplets, 60 MB LLC.
type HierConfig struct {
	// Cores is the number of cores, each with private L1/L2 and one LLC
	// slice (Intel allocates one slice per core).
	Cores int
	// SNCNodes is the number of sub-NUMA clusters (1 = SNC disabled).
	// Cores must divide evenly among nodes.
	SNCNodes int
	// L1Bytes/L1Ways size each core's L1 data cache.
	L1Bytes int64
	L1Ways  int
	// L2Bytes/L2Ways size each core's private L2.
	L2Bytes int64
	L2Ways  int
	// LLCSliceBytes/LLCWays size each LLC slice.
	LLCSliceBytes int64
	LLCWays       int
	// CXLBreaksIsolation selects whether remote/CXL-homed victims may use
	// every slice (true: the measured hardware behaviour, O6) or are
	// confined to the accessor's node (false: the ablation in DESIGN.md §6).
	CXLBreaksIsolation bool
}

// SPRHierConfig returns the hierarchy of the evaluated Xeon 6430: 32 cores,
// 48 KB L1D, 2 MB L2 per core, 60 MB LLC in 32 slices, with the given SNC
// node count (1 or 4).
func SPRHierConfig(sncNodes int) HierConfig {
	return HierConfig{
		Cores:              32,
		SNCNodes:           sncNodes,
		L1Bytes:            48 << 10,
		L1Ways:             12,
		L2Bytes:            2 << 20,
		L2Ways:             16,
		LLCSliceBytes:      (60 << 20) / 32,
		LLCWays:            15,
		CXLBreaksIsolation: true,
	}
}

// Validate reports configuration errors.
func (c HierConfig) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("cache: %d cores", c.Cores)
	}
	if c.SNCNodes <= 0 || c.Cores%c.SNCNodes != 0 {
		return fmt.Errorf("cache: %d cores do not divide into %d SNC nodes", c.Cores, c.SNCNodes)
	}
	return nil
}

// Hierarchy is the full multi-core cache system.
type Hierarchy struct {
	cfg    HierConfig
	l1     []*Cache // per core
	l2     []*Cache // per core
	slices []*Cache // per core (one slice each)

	// LLCHits/LLCMisses aggregate slice-level statistics.
	LLCHits, LLCMisses uint64

	arena []uint64 // slab arena shared by every cache; see materializeAll
	// fresh records that every cache was carved from the arena (no cache had
	// materialized standalone first), so the arena alone is the hierarchy's
	// complete line state. Capture/Restore (snapshot.go) require it.
	fresh bool

	// kern is the monomorphized LLC view for the fused stream loop, built by
	// materializeAll when the slab layout allows it (kernel.go); nil means
	// streamInto uses the generic per-slice loop. Read-only once built.
	kern *streamKernel

	// Reusable counting-sort scratch for ReadStreamSharded (stream.go).
	shardBuf []uint64
	shardOff []int32
}

// materializeAll backs every not-yet-materialized cache with a slab carved
// from one contiguous arena, madvised toward 2 MB pages. A simulated access
// touches two or three random sets across megabytes of slab; on 4 KB pages
// each touch costs a dTLB miss whose page walk serializes the whole stream,
// so pooling the slabs into a huge-page arena is worth more than any
// micro-optimization of the probe loops. Caches that already materialized
// standalone (via Cache.Insert) keep their slabs and their state.
func (h *Hierarchy) materializeAll() {
	if h.arena != nil {
		return
	}
	fresh := true // every cache carved from this arena (kernel + snapshot precondition)
	total := 0
	for _, c := range h.all() {
		if c.words == nil {
			total += c.setCount*c.ways + 2*c.setCount // words + fingerprints + orders
		} else {
			fresh = false
		}
	}
	h.fresh = fresh
	h.arena = make([]uint64, total)
	adviseHugePages(h.arena)
	off := 0
	carve := func(n int) []uint64 {
		s := h.arena[off : off+n : off+n]
		off += n
		return s
	}
	// Carve in two passes — all words, then all sidecars, each in all()
	// order — so that each slice-level array is contiguous across slices.
	// buildKernel relies on that slice-major layout for its flat LLC views.
	for _, c := range h.all() {
		if c.words != nil {
			continue
		}
		c.words = carve(c.setCount * c.ways)
	}
	for _, c := range h.all() {
		if c.meta == nil {
			c.meta = carve(2 * c.setCount)
			for i := 1; i < len(c.meta); i += 2 {
				c.meta[i] = identityOrder
			}
		}
	}
	if fresh {
		h.buildKernel()
	}
}

// all yields every cache in the hierarchy, LLC slices first (they are the
// hottest slabs, so they get the front of the arena).
func (h *Hierarchy) all() []*Cache {
	out := make([]*Cache, 0, 3*len(h.l1))
	out = append(out, h.slices...)
	out = append(out, h.l2...)
	out = append(out, h.l1...)
	return out
}

// NewHierarchy builds the hierarchy for the given configuration.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{cfg: cfg}
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, NewCache(cfg.L1Bytes, cfg.L1Ways))
		h.l2 = append(h.l2, NewCache(cfg.L2Bytes, cfg.L2Ways))
		h.slices = append(h.slices, NewCache(cfg.LLCSliceBytes, cfg.LLCWays))
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierConfig { return h.cfg }

// NodeOf returns the SNC node of a core.
func (h *Hierarchy) NodeOf(core int) int {
	perNode := h.cfg.Cores / h.cfg.SNCNodes
	return core / perNode
}

// sliceRoute is the hoisted slice-routing decision for one Home: the probe
// loops resolve it once per stream instead of once per access. slice() maps
// a line's hash into [base, base+count) — with a mask when count is a power
// of two (it always is on the modeled SPR part), a modulo otherwise.
type sliceRoute struct {
	base  int
	count uint64
	mask  uint64 // count-1 when count is a power of two, else 0
}

// routeFor resolves the SNC isolation rules of §4.3 for the given home.
func (h *Hierarchy) routeFor(home Home) sliceRoute {
	confined := false
	if h.cfg.SNCNodes > 1 {
		switch home.Kind {
		case HomeLocalDDR:
			confined = true
		case HomeRemote:
			confined = !h.cfg.CXLBreaksIsolation
		}
	}
	r := sliceRoute{count: uint64(h.cfg.Cores)}
	if confined {
		perNode := h.cfg.Cores / h.cfg.SNCNodes
		r.base = home.Node * perNode
		r.count = uint64(perNode)
	}
	if r.count&(r.count-1) == 0 {
		r.mask = r.count - 1
	}
	return r
}

// slice routes a line (addr/LineBytes) to its LLC slice index.
func (r sliceRoute) slice(line uint64) int {
	return r.sliceHash(line * 0x9e3779b97f4a7c15)
}

// sliceHash routes an already-hashed line, so callers that share the hash
// with the set-index computation multiply only once.
func (r sliceRoute) sliceHash(hash uint64) int {
	if r.mask != 0 {
		return r.base + int(hash&r.mask)
	}
	return r.base + int(hash%r.count)
}

// sliceFor routes an address with the given home to its LLC slice.
func (h *Hierarchy) sliceFor(addr uint64, home Home) int {
	return h.routeFor(home).slice(addr / LineBytes)
}

// EffectiveLLCBytes returns the LLC capacity visible to lines with the given
// home: the whole socket for remote/CXL lines when isolation is broken, a
// single node's slices otherwise.
func (h *Hierarchy) EffectiveLLCBytes(home Home) int64 {
	total := int64(h.cfg.Cores) * h.cfg.LLCSliceBytes
	if h.cfg.SNCNodes == 1 {
		return total
	}
	if home.Kind == HomeRemote && h.cfg.CXLBreaksIsolation {
		return total
	}
	return total / int64(h.cfg.SNCNodes)
}

// PrivateLines returns a core's L1 and L2 capacities in cache lines, from
// the built caches' actual geometry (set counts are rounded to powers of
// two, so this can differ from the configured byte sizes). The analytic
// fidelity tier (internal/mlc) sizes its level-fraction model from these.
func (h *Hierarchy) PrivateLines(core int) (l1Lines, l2Lines int) {
	if core < 0 || core >= h.cfg.Cores {
		panic(fmt.Sprintf("cache: core %d out of range", core))
	}
	return h.l1[core].Lines(), h.l2[core].Lines()
}

// EffectiveLLCLines is EffectiveLLCBytes in cache lines, measured from the
// built slices' actual geometry rather than the configured byte sizes.
func (h *Hierarchy) EffectiveLLCLines(home Home) int64 {
	total := int64(h.slices[0].Lines()) * int64(h.cfg.Cores)
	if h.cfg.SNCNodes == 1 {
		return total
	}
	if home.Kind == HomeRemote && h.cfg.CXLBreaksIsolation {
		return total
	}
	return total / int64(h.cfg.SNCNodes)
}

// Access performs one load or store by core to addr (a byte address) whose
// page is homed as given. It returns the level that satisfied the access.
//
// The flow models a non-inclusive hierarchy with the LLC as an L2 victim
// cache: fills from memory go to L1+L2; L2 victims are written to the routed
// LLC slice; LLC hits promote the line back into the core's L1/L2 and remove
// it from the LLC. The LLC step is a single combined probe-and-remove — a
// victim hit touches its set exactly once instead of the historical
// Lookup/Invalidate/Insert triple scan.
func (h *Hierarchy) Access(core int, addr uint64, home Home, write bool) Level {
	if core < 0 || core >= h.cfg.Cores {
		panic(fmt.Sprintf("cache: core %d out of range", core))
	}
	if h.l1[core].Lookup(addr, write) {
		return L1
	}
	if h.l2[core].Lookup(addr, write) {
		h.fillL1(core, addr, home, write)
		return L2
	}
	slice := h.slices[h.sliceFor(addr, home)]
	if found, dirty := slice.ProbeRemove(addr); found {
		// Victim-cache hit: promote to the core's private levels.
		h.LLCHits++
		h.fillPrivate(core, addr, home, write || dirty)
		return LLC
	}
	h.LLCMisses++
	h.fillPrivate(core, addr, home, write)
	return Memory
}

// homeBitsMask selects a word's home (kind + node) bits.
const homeBitsMask = remoteFlag | uint64(MaxHomeNode)<<nodeShift

// ReadStream performs one read access per address in addrs, all issued by
// core against pages homed the same way, and accumulates into counts the
// level that satisfied each access. It is behaviorally identical to calling
// Access(core, addr, home, false) per address (TestReadStreamMatchesAccess
// pins this), but the whole L1→L2→LLC probe/fill/spill chain is fused into
// one loop body working directly on the packed slabs:
//
//   - the line hash is computed once and shared by the set indices, the
//     slice route and the fingerprint nibble (they consume different bit
//     ranges of one product);
//   - every probe is a SWAR fingerprint match — no way scans;
//   - each probed set is touched exactly once per access, and a full miss
//     never reads the tag words at all;
//   - hit/miss counters accumulate in locals and flush once per call.
func (h *Hierarchy) ReadStream(core int, addrs []uint64, home Home, counts *LevelCounts) {
	if core < 0 || core >= h.cfg.Cores {
		panic(fmt.Sprintf("cache: core %d out of range", core))
	}
	h.materializeAll()
	st := newStreamCounters(len(h.slices))
	h.streamInto(core, addrs, h.routeFor(home), packWord(0, home, false), st)
	h.flushStream(core, st, counts)
}

// fillPrivate installs a line into the core's L1 and L2, spilling the L2
// victim into its routed LLC slice.
func (h *Hierarchy) fillPrivate(core int, addr uint64, home Home, dirty bool) {
	h.fillL1(core, addr, home, dirty)
	if v, ok := h.l2[core].Insert(addr, home, dirty); ok {
		// L2 victim spills to the LLC slice chosen by its own home.
		h.slices[h.sliceFor(v.Addr, v.Home)].Insert(v.Addr, v.Home, v.Dirty)
	}
}

func (h *Hierarchy) fillL1(core int, addr uint64, home Home, dirty bool) {
	// L1 victims are silently dropped: L2 is modeled as inclusive of L1.
	h.l1[core].Insert(addr, home, dirty)
}

// FlushAll empties every cache (the clflush+mfence preamble of memo).
func (h *Hierarchy) FlushAll() {
	for i := range h.l1 {
		h.l1[i].Flush()
		h.l2[i].Flush()
		h.slices[i].Flush()
	}
}

// SliceOccupancy returns the number of valid lines in each LLC slice
// (diagnostics for the SNC-isolation tests).
func (h *Hierarchy) SliceOccupancy() []int {
	out := make([]int, len(h.slices))
	for i, s := range h.slices {
		out[i] = s.Occupancy()
	}
	return out
}
