package cache

// Engine micro-benchmarks: the per-operation and per-access costs the mlc
// measurement loops are built from, so the packed tag engine has its own
// tracked baseline (like internal/numa's allocator benchmarks). Run with
//
//	go test ./internal/cache -run '^$' -bench . -benchmem

import (
	"testing"

	"cxlmem/internal/sim"
)

// BenchmarkCacheLookupHit measures a hot single-set hit (the L1 fast path).
func BenchmarkCacheLookupHit(b *testing.B) {
	c := NewCache(48<<10, 12)
	c.Insert(0x1000, Home{}, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(0x1000, false)
	}
}

// BenchmarkCacheLookupMiss measures a full-set scan that concludes a miss.
func BenchmarkCacheLookupMiss(b *testing.B) {
	c := NewCache(LineBytes*16, 16) // single full set
	for i := uint64(0); i < 16; i++ {
		c.Insert(i*LineBytes, Home{}, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(1<<30, false)
	}
}

// BenchmarkCacheInsertEvict measures the fused scan+shift insert with an
// eviction on every call (full set, always-new tags).
func BenchmarkCacheInsertEvict(b *testing.B) {
	c := NewCache(LineBytes*16, 16) // single set
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(uint64(i)*LineBytes, Home{}, false)
	}
}

// BenchmarkCacheProbeRemoveHit measures the combined LLC victim-cache
// operation: probe, hit, compact — plus the refill that keeps it hitting.
func BenchmarkCacheProbeRemoveHit(b *testing.B) {
	c := NewCache(LineBytes*16, 16)
	c.Insert(0, Home{}, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ProbeRemove(0)
		c.Insert(0, Home{}, false)
	}
}

// benchHierarchy streams n uniform random line addresses over bufLines
// through a fresh SNC-4 hierarchy and reports ns per simulated access.
func benchHierarchy(b *testing.B, home Home, bufLines int64) {
	h := NewHierarchy(SPRHierConfig(4))
	rng := sim.NewRng(7)
	batch := make([]uint64, 4096)
	var counts LevelCounts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = uint64(rng.Int63n(bufLines)) * LineBytes
		}
		h.ReadStream(0, batch, home, &counts)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(batch)), "ns/access")
}

// BenchmarkAccessL1L2Resident: the working set fits the private caches, so
// the stream exercises the L1/L2 hit paths.
func BenchmarkAccessL1L2Resident(b *testing.B) {
	benchHierarchy(b, Home{Kind: HomeLocalDDR}, 4096) // 256 KB buffer
}

// BenchmarkAccessLLCPromote: the working set overflows L2 but fits the
// socket LLC for a CXL home, so the stream is dominated by the LLC
// probe-remove-promote path.
func BenchmarkAccessLLCPromote(b *testing.B) {
	benchHierarchy(b, Home{Kind: HomeRemote}, 1<<18) // 16 MB buffer
}

// BenchmarkAccessMemoryMiss: a DDR-homed working set larger than the node's
// slices — the fig5 shape, heavy on full misses with victim spills.
func BenchmarkAccessMemoryMiss(b *testing.B) {
	benchHierarchy(b, Home{Kind: HomeLocalDDR}, 1<<19) // 32 MB buffer
}

// BenchmarkReadStreamFused pins the monomorphized stream kernel on the fig5
// shape (DDR-homed 32 MB working set, SNC-confined route): the kernel must
// exist and dispatch, so a silently dead fused path fails the benchmark
// instead of quietly regressing to the generic loop. CI runs this as a smoke
// test.
func BenchmarkReadStreamFused(b *testing.B) {
	h := NewHierarchy(SPRHierConfig(4))
	h.materializeAll()
	if h.kern == nil {
		b.Fatal("SPR hierarchy did not build a stream kernel")
	}
	if rt := h.routeFor(Home{Kind: HomeLocalDDR}); rt.mask == 0 {
		b.Fatal("confined SPR route is not a power of two — fused dispatch dead")
	}
	benchHierarchy(b, Home{Kind: HomeLocalDDR}, 1<<19)
}

// BenchmarkAccessScalar pins the scalar Access entry point on the miss-heavy
// shape, to keep the ReadStream fast path honest.
func BenchmarkAccessScalar(b *testing.B) {
	h := NewHierarchy(SPRHierConfig(4))
	home := Home{Kind: HomeLocalDDR}
	rng := sim.NewRng(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, uint64(rng.Int63n(1<<19))*LineBytes, home, false)
	}
}
