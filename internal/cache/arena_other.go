//go:build !linux

package cache

// adviseHugePages is a no-op where transparent huge pages are unavailable;
// the engine is merely slower on 4 KB TLB entries.
func adviseHugePages(words []uint64) {}
