package cache

import (
	"testing"

	"cxlmem/internal/sim"
)

// streamSeed replays identical mixed-home streamed traffic into a hierarchy.
// Streaming (not Access) so the slabs carve from the shared arena — the
// layout Capture requires, and the one every warmed hierarchy actually has.
func streamSeed(h *Hierarchy) {
	rng := sim.NewRng(11)
	addrs := make([]uint64, 20000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1<<14)) * LineBytes
	}
	var c LevelCounts
	h.ReadStream(2, addrs[:10000], Home{Kind: HomeRemote, Node: 0}, &c)
	h.ReadStream(1, addrs[10000:], Home{Kind: HomeLocalDDR, Node: 1}, &c)
}

// TestSnapshotRoundTrip pins the snapshot contract: restoring a capture into
// a fresh hierarchy — or back into one that has since diverged — leaves it
// byte-identical to the hierarchy at capture time.
func TestSnapshotRoundTrip(t *testing.T) {
	cfg := shrunkConfig(4)

	ref := NewHierarchy(cfg)
	if !ref.Pristine() {
		t.Fatal("new hierarchy not pristine")
	}
	streamSeed(ref)
	if ref.Pristine() {
		t.Fatal("seeded hierarchy still pristine")
	}
	snap, ok := ref.Capture()
	if !ok {
		t.Fatal("capture of arena-carved hierarchy failed")
	}
	if snap.Config() != cfg {
		t.Errorf("snapshot config = %+v, want %+v", snap.Config(), cfg)
	}
	if snap.Bytes() <= 0 {
		t.Errorf("snapshot bytes = %d", snap.Bytes())
	}

	// Restore into a pristine hierarchy.
	h := NewHierarchy(cfg)
	if !h.Restore(snap) {
		t.Fatal("restore into pristine hierarchy failed")
	}
	requireHierEqual(t, ref, h)

	// The restored hierarchy must evolve exactly like the original: snapshots
	// capture the complete state, including recency order.
	extra := sim.NewRng(23)
	for i := 0; i < 3000; i++ {
		addr := uint64(extra.Intn(1<<14)) * LineBytes
		ref.Access(1, addr, Home{Kind: HomeLocalDDR, Node: 0}, false)
		h.Access(1, addr, Home{Kind: HomeLocalDDR, Node: 0}, false)
	}
	requireHierEqual(t, ref, h)

	// Restore rewinds a diverged hierarchy back to the capture point.
	diverged := NewHierarchy(cfg)
	streamSeed(diverged)
	rng := sim.NewRng(31)
	for i := 0; i < 5000; i++ {
		diverged.Access(3, uint64(rng.Intn(1<<14))*LineBytes, Home{Kind: HomeRemote, Node: 1}, true)
	}
	if !diverged.Restore(snap) {
		t.Fatal("restore into diverged hierarchy failed")
	}
	want := NewHierarchy(cfg)
	streamSeed(want)
	requireHierEqual(t, want, diverged)
}

// TestSnapshotRefusesMismatch pins the failure modes: a config mismatch and
// a hierarchy whose slabs are not arena-complete both refuse, untouched.
func TestSnapshotRefusesMismatch(t *testing.T) {
	ref := NewHierarchy(shrunkConfig(4))
	streamSeed(ref)
	snap, ok := ref.Capture()
	if !ok {
		t.Fatal("capture failed")
	}

	other := NewHierarchy(shrunkConfig(1))
	if other.Restore(snap) {
		t.Error("restore accepted a mismatched configuration")
	}

	// A cache materialized standalone (direct Insert before the hierarchy
	// ever streamed) keeps its own slab: the arena is incomplete, so both
	// capture and restore must refuse.
	mixed := NewHierarchy(shrunkConfig(4))
	mixed.l2[0].Insert(4096, Home{}, false)
	if mixed.Pristine() {
		t.Fatal("standalone-materialized hierarchy reported pristine")
	}
	if _, ok := mixed.Capture(); ok {
		t.Error("capture accepted an arena-incomplete hierarchy")
	}
	if mixed.Restore(snap) {
		t.Error("restore accepted an arena-incomplete hierarchy")
	}
}
