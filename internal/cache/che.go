package cache

import (
	"math"
	"sort"
)

// Che's approximation for LRU caches under the independent reference model:
// an item with access probability p is in the cache with probability
// 1 - exp(-p*T), where the characteristic time T solves
//
//	sum_i (1 - exp(-p_i * T)) = C   (C = capacity in items).
//
// The analytic application models (DLRM embedding tables, Redis working
// sets) use this instead of simulating billions of accesses; the full
// Hierarchy simulator cross-checks it in tests.

// ZipfWeights returns normalized zipfian popularity weights for n items with
// exponent s, bucketed logarithmically so n can be very large. Each bucket
// covers ranks [lo, hi) with a representative per-item probability.
type zipfBucket struct {
	count int     // items in the bucket
	p     float64 // per-item access probability
}

func zipfBuckets(n int, s float64) []zipfBucket {
	if n <= 0 {
		panic("cache: zipfBuckets with non-positive n")
	}
	// Exact ranks for the head, geometric buckets for the tail.
	const exactHead = 1024
	var buckets []zipfBucket
	var norm float64
	addBucket := func(lo, hi int) { // ranks [lo, hi), 1-based
		mid := math.Sqrt(float64(lo) * float64(hi-1)) // geometric mid-rank
		w := math.Pow(mid, -s)
		buckets = append(buckets, zipfBucket{count: hi - lo, p: w})
		norm += w * float64(hi-lo)
	}
	rank := 1
	for rank <= n && rank <= exactHead {
		w := math.Pow(float64(rank), -s)
		buckets = append(buckets, zipfBucket{count: 1, p: w})
		norm += w
		rank++
	}
	for rank <= n {
		hi := rank + rank/8 + 1 // ~12% geometric growth
		if hi > n+1 {
			hi = n + 1
		}
		addBucket(rank, hi)
		rank = hi
	}
	for i := range buckets {
		buckets[i].p /= norm
	}
	return buckets
}

// ZipfLRUHitRate returns the aggregate hit probability of an LRU cache with
// capacityItems slots serving requests drawn zipf(s) over n equally sized
// items, per Che's approximation. It returns values in [0, 1]; a capacity of
// zero or below yields 0 and capacity >= n yields ~1.
func ZipfLRUHitRate(n int, s float64, capacityItems int) float64 {
	if capacityItems <= 0 || n <= 0 {
		return 0
	}
	if capacityItems >= n {
		return 1
	}
	buckets := zipfBuckets(n, s)
	occupancy := func(t float64) float64 {
		sum := 0.0
		for _, b := range buckets {
			sum += float64(b.count) * (1 - math.Exp(-b.p*t))
		}
		return sum
	}
	// Solve occupancy(T) = capacity by bisection on a bracketed range.
	lo, hi := 0.0, 1.0
	for occupancy(hi) < float64(capacityItems) && hi < 1e18 {
		hi *= 2
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if occupancy(mid) < float64(capacityItems) {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (lo + hi) / 2
	// Aggregate hit rate: sum_i p_i * (1 - exp(-p_i T)).
	hit := 0.0
	for _, b := range buckets {
		hit += float64(b.count) * b.p * (1 - math.Exp(-b.p*t))
	}
	if hit < 0 {
		return 0
	}
	if hit > 1 {
		return 1
	}
	return hit
}

// UniformLRUHitRate returns the hit rate of an LRU cache under uniform
// popularity: simply capacity/n clamped to [0, 1] (Che's approximation
// degenerates to this).
func UniformLRUHitRate(n int, capacityItems int) float64 {
	if n <= 0 || capacityItems <= 0 {
		return 0
	}
	r := float64(capacityItems) / float64(n)
	if r > 1 {
		return 1
	}
	return r
}

// WorkingSetHitRate estimates the hit rate for an application with the given
// working-set bytes running over a cache of capacityBytes with zipfian reuse
// skew s. It converts byte quantities to line-granularity items. This is the
// entry point used by the workload models.
func WorkingSetHitRate(workingSetBytes, capacityBytes int64, s float64) float64 {
	if workingSetBytes <= 0 {
		return 1
	}
	n := int(workingSetBytes / LineBytes)
	if n == 0 {
		n = 1
	}
	c := int(capacityBytes / LineBytes)
	if s <= 0 {
		return UniformLRUHitRate(n, c)
	}
	return ZipfLRUHitRate(n, s, c)
}

// SortedSliceShare is a helper for interference analysis: given per-actor
// LLC footprints (bytes) contending for a shared capacity, it returns each
// actor's share under proportional (fair) partitioning. Shares sum to the
// capacity when demand exceeds it, otherwise each actor gets its demand.
func SortedSliceShare(demands []int64, capacity int64) []int64 {
	out := make([]int64, len(demands))
	var total int64
	for _, d := range demands {
		if d < 0 {
			panic("cache: negative demand")
		}
		total += d
	}
	if total <= capacity {
		copy(out, demands)
		return out
	}
	// Water-filling: small demands are fully satisfied, the rest split the
	// remainder evenly.
	idx := make([]int, len(demands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return demands[idx[a]] < demands[idx[b]] })
	remaining := capacity
	left := len(demands)
	for _, i := range idx {
		fair := remaining / int64(left)
		d := demands[i]
		if d <= fair {
			out[i] = d
		} else {
			out[i] = fair
		}
		remaining -= out[i]
		left--
	}
	return out
}
