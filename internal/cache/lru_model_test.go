package cache

import (
	"testing"

	"cxlmem/internal/sim"
)

// Randomized model check of the packed order-word recency engine against a
// reference list-based LRU. The reference keeps each set as an explicit
// MRU→LRU slice and mirrors every operation; after each step the engine's
// decoded recency order, membership, victims and counters must match the
// model exactly, for every associativity the engine supports.

// modelLine is one resident line in the reference LRU.
type modelLine struct {
	addr  uint64
	home  Home
	dirty bool
}

// lruModel is the reference: per-set MRU→LRU lists with textbook LRU moves.
type lruModel struct {
	sets map[int][]modelLine
	ways int
}

func newLRUModel(ways int) *lruModel {
	return &lruModel{sets: map[int][]modelLine{}, ways: ways}
}

func (m *lruModel) find(s int, addr uint64) int {
	for i, l := range m.sets[s] {
		if l.addr == addr {
			return i
		}
	}
	return -1
}

func (m *lruModel) promote(s, i int) {
	set := m.sets[s]
	l := set[i]
	copy(set[1:i+1], set[:i])
	set[0] = l
}

func (m *lruModel) lookup(s int, addr uint64, write bool) bool {
	i := m.find(s, addr)
	if i < 0 {
		return false
	}
	m.promote(s, i)
	if write {
		m.sets[s][0].dirty = true
	}
	return true
}

func (m *lruModel) insert(s int, addr uint64, home Home, dirty bool) (Victim, bool) {
	if i := m.find(s, addr); i >= 0 {
		m.promote(s, i)
		if dirty {
			m.sets[s][0].dirty = true
		}
		return Victim{}, false
	}
	set := append([]modelLine{{addr: addr, home: home, dirty: dirty}}, m.sets[s]...)
	if len(set) > m.ways {
		v := set[m.ways]
		m.sets[s] = set[:m.ways]
		return Victim{Addr: v.addr, Home: v.home, Dirty: v.dirty}, true
	}
	m.sets[s] = set
	return Victim{}, false
}

func (m *lruModel) remove(s int, addr uint64) (found, dirty bool) {
	i := m.find(s, addr)
	if i < 0 {
		return false, false
	}
	set := m.sets[s]
	dirty = set[i].dirty
	m.sets[s] = append(set[:i], set[i+1:]...)
	return true, dirty
}

// engineOrder decodes cache set s's resident lines in recency order (MRU
// first) from the packed order word — the exact structure the model keeps.
func engineOrder(c *Cache, s int) []modelLine {
	if c.words == nil {
		return nil
	}
	var out []modelLine
	ord := c.meta[2*s+1]
	set := c.words[s*c.ways : (s+1)*c.ways]
	for j := 0; j < c.ways; j++ {
		p := int(ord >> (4 * uint(j)) & 15)
		if p >= c.ways || set[p] == 0 {
			continue
		}
		w := set[p]
		out = append(out, modelLine{
			addr:  (w&ptagMask - 1) * LineBytes,
			home:  unpackHome(w),
			dirty: w&dirtyFlag != 0,
		})
	}
	return out
}

// requireSameOrder compares the engine's decoded recency order against the
// model, set by set, and checks the permutation invariant: valid lines form
// a prefix of the recency order (no hole may precede a resident line).
func requireSameOrder(t *testing.T, c *Cache, m *lruModel, step int) {
	t.Helper()
	for s := 0; s < c.setCount; s++ {
		got := engineOrder(c, s)
		want := m.sets[s]
		if len(got) != len(want) {
			t.Fatalf("step %d set %d: %d resident, model has %d (got %v want %v)",
				step, s, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d set %d pos %d: %+v, model %+v", step, s, i, got[i], want[i])
			}
		}
		if c.words != nil {
			// Prefix invariant: every position past the resident count must
			// name an empty or dead slot.
			ord := c.meta[2*s+1]
			set := c.words[s*c.ways : (s+1)*c.ways]
			for j := len(want); j < c.ways; j++ {
				p := int(ord >> (4 * uint(j)) & 15)
				if p < c.ways && set[p] != 0 {
					t.Fatalf("step %d set %d: resident slot %d at position %d past the %d-line prefix",
						step, s, p, j, len(want))
				}
			}
		}
	}
}

// driveModel applies one decoded operation to both the engine and the model
// and fails on any observable divergence.
func driveModel(t *testing.T, c *Cache, m *lruModel, op int, addr uint64, step int) {
	t.Helper()
	s := int(c.setIndex(addr))
	switch op {
	case 0, 1: // read / write lookup
		write := op == 1
		want := m.lookup(s, addr, write)
		if got := c.Lookup(addr, write); got != want {
			t.Fatalf("step %d: Lookup(%#x, write=%v) = %v, model %v", step, addr, write, got, want)
		}
	case 2: // insert (mixed homes and dirty bits, derived from the address)
		home := Home{Kind: HomeKind(addr >> 6 & 1), Node: int(addr >> 7 & 3)}
		dirty := addr>>9&1 != 0
		wantV, wantOK := m.insert(s, addr, home, dirty)
		gotV, gotOK := c.Insert(addr, home, dirty)
		if gotOK != wantOK || gotV != wantV {
			t.Fatalf("step %d: Insert(%#x) = %+v,%v, model %+v,%v", step, addr, gotV, gotOK, wantV, wantOK)
		}
	case 3: // probe-remove
		wantF, wantD := m.remove(s, addr)
		gotF, gotD := c.ProbeRemove(addr)
		if gotF != wantF || gotD != wantD {
			t.Fatalf("step %d: ProbeRemove(%#x) = %v,%v, model %v,%v", step, addr, gotF, gotD, wantF, wantD)
		}
	}
}

// TestRecencyMatchesListLRU is the randomized model check: for every
// associativity the engine supports, a long random mix of lookups, inserts
// and removals must leave the packed engine in exactly the state of the
// reference list LRU after every single step.
func TestRecencyMatchesListLRU(t *testing.T) {
	for ways := 1; ways <= MaxWays; ways++ {
		const sets = 8
		c := NewCache(int64(sets*ways)*LineBytes, ways)
		m := newLRUModel(ways)
		rng := sim.NewRng(uint64(1000 + ways))
		// A small address space keeps the sets under constant pressure.
		space := uint64(sets * ways * 3)
		for step := 0; step < 20000; step++ {
			op := rng.Intn(4)
			addr := uint64(rng.Intn(int(space))) * LineBytes
			driveModel(t, c, m, op, addr, step)
			if step%64 == 0 || step > 19900 {
				requireSameOrder(t, c, m, step)
			}
		}
		requireSameOrder(t, c, m, 20000)
		want := 0
		for s := 0; s < sets; s++ {
			want += len(m.sets[s])
		}
		if got := c.Occupancy(); got != want {
			t.Fatalf("ways %d: occupancy %d, model %d", ways, got, want)
		}
	}
}

// FuzzRecency drives a single-set cache (every line collides) from
// fuzzer-chosen operation bytes and cross-checks the model after every step:
// the adversarial schedule the fuzzer searches for is exactly the
// mid-permutation removal/refill churn that broke naive order encodings.
func FuzzRecency(f *testing.F) {
	// Seed: 8 ways; fill beyond capacity, promote mid-order lines, remove a
	// mid-permutation line (ordRemove with interior position), then refill —
	// the path where a freed slot must surface as the next fill target.
	seed := []byte{8}
	for _, line := range []byte{1, 2, 3, 4, 5, 6, 7, 8, 9} {
		seed = append(seed, 0x80|line) // inserts
	}
	seed = append(seed, 0x04, 0x45)             // read 4, write 5: promote interior
	seed = append(seed, 0xc6, 0xc3)             // probe-remove 6 and 3 mid-permutation
	seed = append(seed, 0x8a, 0x8b, 0x8c, 0x8d) // refill through the freed slots
	f.Add(seed)
	f.Add([]byte{1, 0x81, 0x82, 0x01, 0xc1, 0x81})
	f.Add([]byte{16, 0x80, 0x81, 0xc0, 0x41, 0x82})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		ways := int(data[0])%MaxWays + 1
		// One set: lines/ways == 1, so every address collides and the order
		// word carries all the state.
		c := NewCache(int64(ways)*LineBytes, ways)
		m := newLRUModel(ways)
		for step, b := range data[1:] {
			op := int(b >> 6)
			addr := uint64(b&63) * LineBytes
			driveModel(t, c, m, op, addr, step)
			requireSameOrder(t, c, m, step)
		}
	})
}
