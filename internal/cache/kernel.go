package cache

// Monomorphized stream kernel (DESIGN.md §15).
//
// The generic streamInto loop re-resolves LLC slice geometry per access: it
// loads slices[si], then that Cache's words/fps/orders slice headers, shift,
// ways and lruShift — six dependent loads through a pointer that the
// compiler cannot hoist because si changes every iteration. But on every
// hierarchy the package actually builds, all slices share one geometry and
// materializeAll carves their slabs slice-major from one arena. buildKernel
// verifies those preconditions once, at materialize time, and captures flat
// slice-major views of the LLC slabs; streamFused is the specialization of
// the loop over those views — slice geometry lives in registers and an LLC
// set resolves with one multiply-add instead of the pointer chase.
//
// The kernel is built once, before any shard worker can observe it, and is
// read-only thereafter (the views alias the same arena the Cache structs
// mutate, so there is no state to keep coherent). Hierarchies that do not
// meet the preconditions — mixed standalone/arena materialization, nonuniform
// slice geometry, or a modulo slice route — simply keep kern == nil and run
// the generic loop; behaviour is identical either way.

// streamKernel is the flat, slice-major view of every LLC slice's slabs plus
// their (uniform) geometry. Slice si's set s lives at flat set index
// si*sets + s.
type streamKernel struct {
	words []uint64 // all slices' tag words, slice-major
	meta  []uint64 // all slices' sidecar pairs (fp, order), slice-major
	sets  int      // sets per slice
	ways  int
	shift uint // per-slice set hash shift
	lru   uint // 4*(ways-1)
}

// buildKernel installs the monomorphized kernel when the slab layout allows:
// every slice shares one geometry and the arena was carved fresh (slice
// slabs contiguous and slice-major, which materializeAll's three-pass carve
// guarantees). Called only from materializeAll on a fresh carve.
func (h *Hierarchy) buildKernel() {
	if len(h.slices) == 0 {
		return
	}
	s0 := h.slices[0]
	for _, sc := range h.slices {
		if sc.setCount != s0.setCount || sc.ways != s0.ways {
			return
		}
	}
	nS := len(h.slices)
	wordsTotal := 0
	for _, c := range h.all() {
		wordsTotal += c.setCount * c.ways
	}
	k := &streamKernel{
		words: h.arena[0 : nS*s0.setCount*s0.ways],
		meta:  h.arena[wordsTotal : wordsTotal+nS*2*s0.setCount],
		sets:  s0.setCount,
		ways:  s0.ways,
		shift: s0.shift,
		lru:   s0.lruShift,
	}
	// Cross-check the derived views against the per-slice slabs: the flat
	// layout assumption must match what the carve actually produced, or the
	// kernel would silently read the wrong sets. Any mismatch falls back to
	// the generic loop.
	for i, sc := range h.slices {
		if &k.words[i*k.sets*k.ways] != &sc.words[0] || &k.meta[i*2*k.sets] != &sc.meta[0] {
			return
		}
	}
	h.kern = k
}

// streamFused is streamInto specialized for the kernel's flat LLC views and
// a power-of-two (mask) slice route. The L1/L2 halves are identical to the
// generic loop; only the LLC set resolution differs. Keep the two loops in
// lockstep — TestStreamFusedMatchesGeneric holds them access-for-access
// equal.
func (h *Hierarchy) streamFused(core int, addrs []uint64, rt sliceRoute, homeBits uint64, st *streamCounters) {
	k := h.kern
	l1, l2 := h.l1[core], h.l2[core]
	l1w, l1m, l1ways, l1shift, l1lru := l1.words, l1.meta, l1.ways, l1.shift, l1.lruShift
	l2w, l2m, l2ways, l2shift, l2lru := l2.words, l2.meta, l2.ways, l2.shift, l2.lruShift
	llcW, llcM := k.words, k.meta
	llcSets, llcWays, llcShift, llcLru := k.sets, k.ways, k.shift, k.lru
	base, mask := rt.base, rt.mask
	var l1Hit, l1Miss, l1Evict, l2Hit, l2Miss, l2Evict uint64
	var nL1, nL2, nLLC, nMem uint64
	for _, addr := range addrs {
		line := addr / LineBytes
		ptag := line + 1
		hash := line * fibMul
		nib := nibbleOf(hash)
		rep := nib * swarLow

		// L1 probe.
		s1 := int(hash >> l1shift)
		b1 := s1 * l1ways
		set1 := l1w[b1 : b1+l1ways]
		if i := findIn(set1, l1m[2*s1], rep, ptag); i >= 0 {
			l1m[2*s1+1] = ordPromote(l1m[2*s1+1], i)
			l1Hit++
			nL1++
			continue
		}
		l1Miss++

		// L2 probe.
		s2 := int(hash >> l2shift)
		b2 := s2 * l2ways
		set2 := l2w[b2 : b2+l2ways]
		if i := findIn(set2, l2m[2*s2], rep, ptag); i >= 0 {
			l2m[2*s2+1] = ordPromote(l2m[2*s2+1], i)
			l2Hit++
			if fillSlot(set1, l1m, s1, ptag|homeBits, nib, l1lru) != 0 {
				l1Evict++
			}
			nL2++
			continue
		}
		l2Miss++

		// LLC probe against the flat slice-major slabs: one multiply-add
		// resolves the global set, no per-slice pointer chase.
		si := base + int(hash&mask)
		g3 := si*llcSets + int(hash>>llcShift)
		b3 := g3 * llcWays
		set3 := llcW[b3 : b3+llcWays]
		var dirtyBit uint64
		if i := findIn(set3, llcM[2*g3], rep, ptag); i >= 0 {
			dirtyBit = set3[i] & dirtyFlag
			clearSlot(set3, llcM, g3, i, llcLru)
			st.sliceHits[si]++
			nLLC++
		} else {
			st.sliceMisses[si]++
			nMem++
		}

		// Fill the private levels; spill the L2 victim to its routed slice.
		fill := ptag | homeBits | dirtyBit
		if fillSlot(set1, l1m, s1, fill, nib, l1lru) != 0 {
			l1Evict++
		}
		victim := fillSlot(set2, l2m, s2, fill, nib, l2lru)
		if victim == 0 {
			continue
		}
		l2Evict++
		vline := victim&ptagMask - 1
		vhash := vline * fibMul
		vnib := nibbleOf(vhash)
		vrep := vnib * swarLow
		var vi int
		if victim&homeBitsMask == homeBits {
			vi = base + int(vhash&mask)
		} else {
			vi = h.sliceFor(vline*LineBytes, unpackHome(victim))
		}
		vg := vi*llcSets + int(vhash>>llcShift)
		vb := vg * llcWays
		vset := llcW[vb : vb+llcWays]
		if vp := findIn(vset, llcM[2*vg], vrep, vline+1); vp >= 0 {
			llcM[2*vg+1] = ordPromote(llcM[2*vg+1], vp)
			vset[vp] |= victim & dirtyFlag
			continue
		}
		if fillSlot(vset, llcM, vg, victim, vnib, llcLru) != 0 {
			st.sliceEvicts[vi]++
		}
	}

	st.l1Hit += l1Hit
	st.l1Miss += l1Miss
	st.l1Evict += l1Evict
	st.l2Hit += l2Hit
	st.l2Miss += l2Miss
	st.l2Evict += l2Evict
	st.counts[L1] += nL1
	st.counts[L2] += nL2
	st.counts[LLC] += nLLC
	st.counts[Memory] += nMem
}
