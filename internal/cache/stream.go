package cache

import (
	"fmt"
	"runtime"
	"sync"
)

// Deterministic sharded streaming (DESIGN.md §12).
//
// Every level of the hierarchy indexes its sets from the *high* bits of the
// same Fibonacci line hash (hash >> shift), while slice routing consumes the
// low bits. So the top shardBits = 64 - max(shift) bits of the hash are a
// shared prefix of every set index the access can ever touch: its L1 set,
// its L2 set, its LLC set in whichever slice the low bits route it to — and,
// crucially, the LLC set of any L2 victim it displaces, because a victim of
// L2 set s carries the same set-index prefix as the access that evicted it.
//
// Partitioning a stream by that prefix therefore splits it into subsequences
// that touch disjoint sets at every level. Replaying each subsequence in its
// original order reproduces the serial state evolution of its sets exactly,
// for any interleaving of subsequences across workers — so the sharded
// driver below is byte-identical to the serial ReadStream by construction,
// not by tolerance. The per-cache statistic counters are the only shared
// state; they accumulate in shard-local streamCounters and merge serially.
//
// The same partition is also why sharding is profitable on a single CPU: a
// shard's sets are a contiguous 1/nShards slab region of every cache, so a
// shard-ordered replay works over a few hundred KB of resident tag state
// instead of striding randomly across megabytes of slabs.

const (
	// maxShardBits caps the shard fan-out (and the counting-sort bucket
	// arrays) regardless of how fine the smallest cache's set index is.
	maxShardBits = 10
	// minShardedLen is the stream length below which ReadStreamSharded
	// falls back to the serial loop: the partition pass only pays for
	// itself once shards hold more than a handful of accesses.
	minShardedLen = 2048
)

// streamCounters is one shard worker's private statistics sink: the fused
// loop's per-cache hit/miss/eviction tallies and the per-level histogram,
// kept local so workers never write shared counters. flushStream folds one
// into the hierarchy after the workers join.
type streamCounters struct {
	l1Hit, l1Miss, l1Evict uint64
	l2Hit, l2Miss, l2Evict uint64
	counts                 LevelCounts
	sliceHits              []uint64 // per LLC slice
	sliceMisses            []uint64
	sliceEvicts            []uint64
}

func newStreamCounters(slices int) *streamCounters {
	return &streamCounters{
		sliceHits:   make([]uint64, slices),
		sliceMisses: make([]uint64, slices),
		sliceEvicts: make([]uint64, slices),
	}
}

// streamInto is the fused L1→L2→LLC probe/fill/spill loop shared by
// ReadStream and the sharded driver. All statistics go to st; cache state
// (slabs, fingerprints, order words) is mutated directly. Callers guarantee
// the hierarchy is materialized and that concurrent calls touch disjoint
// sets. When the hierarchy carries a monomorphized kernel and the route is
// mask-based, the specialized loop (kernel.go) runs instead; the two are
// access-for-access identical (TestStreamFusedMatchesGeneric pins it).
func (h *Hierarchy) streamInto(core int, addrs []uint64, rt sliceRoute, homeBits uint64, st *streamCounters) {
	if h.kern != nil && rt.mask != 0 {
		h.streamFused(core, addrs, rt, homeBits, st)
		return
	}
	l1, l2 := h.l1[core], h.l2[core]
	slices := h.slices
	l1w, l1m, l1ways, l1shift, l1lru := l1.words, l1.meta, l1.ways, l1.shift, l1.lruShift
	l2w, l2m, l2ways, l2shift, l2lru := l2.words, l2.meta, l2.ways, l2.shift, l2.lruShift
	var l1Hit, l1Miss, l1Evict, l2Hit, l2Miss, l2Evict uint64
	var nL1, nL2, nLLC, nMem uint64
	for _, addr := range addrs {
		line := addr / LineBytes
		ptag := line + 1
		hash := line * fibMul
		nib := nibbleOf(hash)
		rep := nib * swarLow

		// L1 probe (hash>>64 is 0 in Go, so a single-set cache needs no
		// special case).
		s1 := int(hash >> l1shift)
		b1 := s1 * l1ways
		set1 := l1w[b1 : b1+l1ways]
		if i := findIn(set1, l1m[2*s1], rep, ptag); i >= 0 {
			l1m[2*s1+1] = ordPromote(l1m[2*s1+1], i)
			l1Hit++
			nL1++
			continue
		}
		l1Miss++

		// L2 probe.
		s2 := int(hash >> l2shift)
		b2 := s2 * l2ways
		set2 := l2w[b2 : b2+l2ways]
		if i := findIn(set2, l2m[2*s2], rep, ptag); i >= 0 {
			l2m[2*s2+1] = ordPromote(l2m[2*s2+1], i)
			l2Hit++
			// Fill L1; its victims drop silently (L2 is inclusive of L1).
			if fillSlot(set1, l1m, s1, ptag|homeBits, nib, l1lru) != 0 {
				l1Evict++
			}
			nL2++
			continue
		}
		l2Miss++

		// LLC probe: the combined probe-promote-evict step. A victim-cache
		// hit removes the line (it is promoted into L1/L2 below, carrying
		// its dirty bit); a miss fills from memory and never reads the
		// slice's tag words.
		si := rt.sliceHash(hash)
		sc := slices[si]
		s3 := int(hash >> sc.shift)
		b3 := s3 * sc.ways
		set3 := sc.words[b3 : b3+sc.ways]
		var dirtyBit uint64
		if i := findIn(set3, sc.meta[2*s3], rep, ptag); i >= 0 {
			dirtyBit = set3[i] & dirtyFlag
			clearSlot(set3, sc.meta, s3, i, sc.lruShift)
			st.sliceHits[si]++
			nLLC++
		} else {
			st.sliceMisses[si]++
			nMem++
		}

		// Fill the private levels; spill the L2 victim to its routed slice.
		fill := ptag | homeBits | dirtyBit
		if fillSlot(set1, l1m, s1, fill, nib, l1lru) != 0 {
			l1Evict++
		}
		victim := fillSlot(set2, l2m, s2, fill, nib, l2lru)
		if victim == 0 {
			continue
		}
		l2Evict++
		vline := victim&ptagMask - 1
		vhash := vline * fibMul
		vnib := nibbleOf(vhash)
		vrep := vnib * swarLow
		var vi int
		if victim&homeBitsMask == homeBits {
			// The common mlc case: the victim shares the stream's home, so
			// its routing is already resolved.
			vi = rt.sliceHash(vhash)
		} else {
			vi = h.sliceFor(vline*LineBytes, unpackHome(victim))
		}
		vc := slices[vi]
		vs := int(vhash >> vc.shift)
		vb := vs * vc.ways
		vset := vc.words[vb : vb+vc.ways]
		// Spill with full Insert semantics: another core's copy of the line
		// may already sit in the slice, in which case it is refreshed with
		// the dirty bits merged and the resident home preserved.
		if vp := findIn(vset, vc.meta[2*vs], vrep, vline+1); vp >= 0 {
			vc.meta[2*vs+1] = ordPromote(vc.meta[2*vs+1], vp)
			vset[vp] |= victim & dirtyFlag
			continue
		}
		if fillSlot(vset, vc.meta, vs, victim, vnib, vc.lruShift) != 0 {
			st.sliceEvicts[vi]++
		}
	}

	st.l1Hit += l1Hit
	st.l1Miss += l1Miss
	st.l1Evict += l1Evict
	st.l2Hit += l2Hit
	st.l2Miss += l2Miss
	st.l2Evict += l2Evict
	st.counts[L1] += nL1
	st.counts[L2] += nL2
	st.counts[LLC] += nLLC
	st.counts[Memory] += nMem
}

// flushStream folds one worker's counters into the hierarchy's per-cache
// statistics and the caller's histogram. Pure addition, so the merge order
// across workers cannot change the totals.
func (h *Hierarchy) flushStream(core int, st *streamCounters, counts *LevelCounts) {
	l1, l2 := h.l1[core], h.l2[core]
	l1.Hits += st.l1Hit
	l1.Misses += st.l1Miss
	l1.Evictions += st.l1Evict
	l2.Hits += st.l2Hit
	l2.Misses += st.l2Miss
	l2.Evictions += st.l2Evict
	for i, v := range st.sliceHits {
		if v != 0 {
			h.slices[i].Hits += v
			h.LLCHits += v
		}
	}
	for i, v := range st.sliceMisses {
		if v != 0 {
			h.slices[i].Misses += v
			h.LLCMisses += v
		}
	}
	for i, v := range st.sliceEvicts {
		if v != 0 {
			h.slices[i].Evictions += v
		}
	}
	for lvl, v := range st.counts {
		counts[lvl] += v
	}
}

// shardBits returns the width of the set-index prefix shared by every level
// a core's accesses can touch — the widest shard fan-out that still
// guarantees set-disjoint shards — or 0 when some cache has a single set
// (nothing to shard on).
func (h *Hierarchy) shardBits(core int) int {
	maxShift := h.l1[core].shift
	if s := h.l2[core].shift; s > maxShift {
		maxShift = s
	}
	if s := h.slices[0].shift; s > maxShift {
		maxShift = s
	}
	if maxShift >= 64 {
		return 0
	}
	b := 64 - int(maxShift)
	if b > maxShardBits {
		b = maxShardBits
	}
	return b
}

// ReadStreamSharded is ReadStream restructured around the set-index-prefix
// partition: the batch is counting-sorted into per-shard subsequences (kept
// in original order), each shard is replayed through the fused loop, and the
// shard-local counters merge serially afterwards. Results — cache state,
// statistics, the histogram — are byte-identical to ReadStream for every
// workers value (TestReadStreamShardedMatchesSerial pins it); workers only
// selects the concurrent fan-out (0 = GOMAXPROCS). Even at workers=1 the
// shard-ordered replay wins: each shard's tag state is a contiguous slab
// region that stays resident in the host cache.
//
// Like every Hierarchy method, it must not be called concurrently with any
// other access to the same hierarchy (it reuses per-hierarchy scratch).
func (h *Hierarchy) ReadStreamSharded(core int, addrs []uint64, home Home, counts *LevelCounts, workers int) {
	if core < 0 || core >= h.cfg.Cores {
		panic(fmt.Sprintf("cache: core %d out of range", core))
	}
	bits := h.shardBits(core)
	if bits == 0 || len(addrs) < minShardedLen {
		h.ReadStream(core, addrs, home, counts)
		return
	}
	h.materializeAll()
	nShards := 1 << bits
	shift := uint(64 - bits)

	// Stable counting sort by shard. The backward scatter fills each shard's
	// region from its end, so forward order within a shard is the original
	// stream order — the property the byte-identity argument rests on.
	if cap(h.shardBuf) < len(addrs) {
		h.shardBuf = make([]uint64, len(addrs))
	}
	buf := h.shardBuf[:len(addrs)]
	if cap(h.shardOff) < nShards {
		h.shardOff = make([]int32, nShards)
	}
	off := h.shardOff[:nShards]
	for i := range off {
		off[i] = 0
	}
	for _, a := range addrs {
		off[(a/LineBytes*fibMul)>>shift]++
	}
	sum := int32(0)
	for s, c := range off {
		sum += c
		off[s] = sum
	}
	for i := len(addrs) - 1; i >= 0; i-- {
		a := addrs[i]
		s := (a / LineBytes * fibMul) >> shift
		off[s]--
		buf[off[s]] = a
	}
	// off[s] is now shard s's start; shard s ends where shard s+1 starts.

	rt := h.routeFor(home)
	homeBits := packWord(0, home, false)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nShards {
		workers = nShards
	}
	runShards := func(st *streamCounters, w int) {
		for s := w; s < nShards; s += workers {
			lo := int(off[s])
			hi := len(buf)
			if s+1 < nShards {
				hi = int(off[s+1])
			}
			if lo < hi {
				h.streamInto(core, buf[lo:hi], rt, homeBits, st)
			}
		}
	}
	if workers == 1 {
		st := newStreamCounters(len(h.slices))
		runShards(st, 0)
		h.flushStream(core, st, counts)
		return
	}
	sts := make([]*streamCounters, workers)
	var wg sync.WaitGroup
	for w := range sts {
		sts[w] = newStreamCounters(len(h.slices))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runShards(sts[w], w)
		}(w)
	}
	wg.Wait()
	for _, st := range sts {
		h.flushStream(core, st, counts)
	}
}
