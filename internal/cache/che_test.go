package cache

import (
	"math"
	"testing"
)

// TestZipfBucketsNormalization: the bucketed weights are a probability
// distribution over exactly n items — counts sum to n, count-weighted
// probabilities sum to 1 — across head-only, boundary and bucketed sizes.
func TestZipfBucketsNormalization(t *testing.T) {
	for _, n := range []int{1, 7, 1024, 1025, 100_000, 5_000_000} {
		for _, s := range []float64{0.2, 0.8, 1.0, 1.3} {
			buckets := zipfBuckets(n, s)
			items := 0
			mass := 0.0
			for _, b := range buckets {
				if b.count <= 0 {
					t.Fatalf("n=%d s=%v: bucket with count %d", n, s, b.count)
				}
				if b.p <= 0 || math.IsNaN(b.p) || math.IsInf(b.p, 0) {
					t.Fatalf("n=%d s=%v: bucket with probability %v", n, s, b.p)
				}
				items += b.count
				mass += float64(b.count) * b.p
			}
			if items != n {
				t.Errorf("n=%d s=%v: buckets cover %d items", n, s, items)
			}
			if math.Abs(mass-1) > 1e-9 {
				t.Errorf("n=%d s=%v: probability mass %v, want 1", n, s, mass)
			}
		}
	}
}

// TestZipfBucketsMonotone: popularity never increases with rank — the head
// is exact and the geometric tail's representative weights keep falling.
func TestZipfBucketsMonotone(t *testing.T) {
	buckets := zipfBuckets(2_000_000, 0.9)
	for i := 1; i < len(buckets); i++ {
		if buckets[i].p > buckets[i-1].p {
			t.Fatalf("bucket %d probability %v exceeds bucket %d's %v",
				i, buckets[i].p, i-1, buckets[i-1].p)
		}
	}
}

// TestZipfLRUHitRateSolver exercises the characteristic-time bisection:
// bounds, degenerate capacities, monotonicity in capacity, and skew favoring
// the hit rate (a more skewed distribution concentrates mass on cached
// heads).
func TestZipfLRUHitRateSolver(t *testing.T) {
	const n = 100_000
	if got := ZipfLRUHitRate(n, 0.8, 0); got != 0 {
		t.Errorf("zero capacity hit rate = %v", got)
	}
	if got := ZipfLRUHitRate(n, 0.8, n); got != 1 {
		t.Errorf("capacity >= n hit rate = %v, want 1", got)
	}
	if got := ZipfLRUHitRate(0, 0.8, 10); got != 0 {
		t.Errorf("empty catalog hit rate = %v", got)
	}
	prev := -1.0
	for _, c := range []int{10, 100, 1000, 10_000, 50_000, 99_000} {
		h := ZipfLRUHitRate(n, 0.8, c)
		if h < 0 || h > 1 {
			t.Fatalf("capacity %d: hit rate %v out of [0,1]", c, h)
		}
		if h <= prev {
			t.Errorf("capacity %d: hit rate %v not increasing (prev %v)", c, h, prev)
		}
		prev = h
	}
	// The solver's T must actually satisfy occupancy ~= capacity: check via
	// the aggregate identity that a strongly skewed popularity beats uniform
	// at the same capacity.
	if skew, uni := ZipfLRUHitRate(n, 1.2, 1000), UniformLRUHitRate(n, 1000); skew <= uni {
		t.Errorf("zipf(1.2) hit rate %v should beat uniform %v at equal capacity", skew, uni)
	}
}

// TestZipfLRUHitRateConvergence pins solver convergence on an adversarially
// large catalog: the bracketed bisection must terminate at a finite T whose
// occupancy matches the requested capacity within the bucketing error.
func TestZipfLRUHitRateConvergence(t *testing.T) {
	const n, c = 50_000_000, 1_000_000
	h := ZipfLRUHitRate(n, 1.0, c)
	if h <= 0 || h >= 1 || math.IsNaN(h) {
		t.Fatalf("hit rate %v for capacity %d of %d", h, c, n)
	}
	// With s=1.0 and a 2% cache, well-known Che behavior: substantially
	// above the uniform 2% but far from 1.
	if uni := UniformLRUHitRate(n, c); h < 2*uni || h > 0.9 {
		t.Errorf("hit rate %v implausible (uniform baseline %v)", h, uni)
	}
}

// TestWorkingSetHitRateRouting: s <= 0 routes to the uniform model, s > 0 to
// the zipf solver, byte quantities convert at line granularity, and an empty
// working set always hits.
func TestWorkingSetHitRateRouting(t *testing.T) {
	if got := WorkingSetHitRate(0, 1<<20, 0.9); got != 1 {
		t.Errorf("empty working set = %v, want 1", got)
	}
	if got, want := WorkingSetHitRate(4<<20, 1<<20, 0), 0.25; got != want {
		t.Errorf("uniform 1MB/4MB = %v, want %v", got, want)
	}
	uni := WorkingSetHitRate(4<<20, 1<<20, 0)
	skew := WorkingSetHitRate(4<<20, 1<<20, 1.1)
	if skew <= uni {
		t.Errorf("skewed hit rate %v should beat uniform %v", skew, uni)
	}
	// Sub-line working set rounds up to one item.
	if got := WorkingSetHitRate(1, LineBytes, 0); got != 1 {
		t.Errorf("one-line working set in a one-line cache = %v, want 1", got)
	}
}
