// Package telemetry models the PMU counter sampling Caption relies on
// (paper §6.1, Table 4). On the real system the counters come from Intel PCM
// (pcm-latency, pcm); here the workload simulators compute the same three
// metrics from first principles each epoch:
//
//   - L1 miss latency (ns)   — the average time to resolve an L1 miss, which
//     simultaneously captures cache friendliness and queueing at the memory
//     controllers;
//   - DDR read latency (ns)  — the loaded latency of the local DDR devices;
//   - IPC                    — instructions per cycle, an aggregate measure
//     of how well the memory subsystem feeds the cores.
//
// The Sampler applies Caption's smoothing: counters are sampled on a fixed
// interval and fed through a 5-sample moving average before estimation.
package telemetry

import (
	"fmt"

	"cxlmem/internal/stats"
)

// Sample is one observation of the Table-4 counters, plus bookkeeping fields
// used by the experiments (not fed to the estimator).
type Sample struct {
	// L1MissLatencyNS is the average L1 miss resolution latency.
	L1MissLatencyNS float64
	// DDRReadLatencyNS is the loaded read latency of local DDR.
	DDRReadLatencyNS float64
	// IPC is instructions per cycle.
	IPC float64

	// SystemBandwidthGBs is the total consumed memory bandwidth (Fig. 11a);
	// informational, not an estimator feature.
	SystemBandwidthGBs float64
	// CXLPercent is the page-allocation ratio in effect when the sample was
	// taken; informational.
	CXLPercent float64
}

// Features returns the estimator input vector in Table-4 order.
func (s Sample) Features() []float64 {
	return []float64{s.L1MissLatencyNS, s.DDRReadLatencyNS, s.IPC}
}

// FeatureNames returns the Table-4 metric names, aligned with Features.
func FeatureNames() []string {
	return []string{"L1 miss latency", "DDR read latency", "IPC"}
}

// Source produces counter samples; the workload simulators implement it.
type Source interface {
	// Counters returns the current counter values.
	Counters() Sample
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() Sample

// Counters implements Source.
func (f SourceFunc) Counters() Sample { return f() }

// Sampler smooths a counter stream with per-field moving averages, matching
// Caption's "moving average of the past 5 samples for each counter" (§6.1).
type Sampler struct {
	l1, ddr, ipc, bw *stats.MovingAverage
	last             Sample
	n                int
}

// NewSampler creates a sampler with the given smoothing window.
func NewSampler(window int) *Sampler {
	if window <= 0 {
		panic(fmt.Sprintf("telemetry: non-positive window %d", window))
	}
	return &Sampler{
		l1:  stats.NewMovingAverage(window),
		ddr: stats.NewMovingAverage(window),
		ipc: stats.NewMovingAverage(window),
		bw:  stats.NewMovingAverage(window),
	}
}

// Add incorporates a raw sample and returns the smoothed view.
func (s *Sampler) Add(raw Sample) Sample {
	s.n++
	s.last = raw
	return Sample{
		L1MissLatencyNS:    s.l1.Add(raw.L1MissLatencyNS),
		DDRReadLatencyNS:   s.ddr.Add(raw.DDRReadLatencyNS),
		IPC:                s.ipc.Add(raw.IPC),
		SystemBandwidthGBs: s.bw.Add(raw.SystemBandwidthGBs),
		CXLPercent:         raw.CXLPercent,
	}
}

// Smoothed returns the current smoothed sample without adding a new one.
func (s *Sampler) Smoothed() Sample {
	return Sample{
		L1MissLatencyNS:    s.l1.Value(),
		DDRReadLatencyNS:   s.ddr.Value(),
		IPC:                s.ipc.Value(),
		SystemBandwidthGBs: s.bw.Value(),
		CXLPercent:         s.last.CXLPercent,
	}
}

// N returns the number of raw samples observed.
func (s *Sampler) N() int { return s.n }
