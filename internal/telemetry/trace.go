package telemetry

import (
	"sync"

	"cxlmem/internal/sim"
)

// SimTrace is a process-wide sink for discrete-event scheduler traces: a
// swappable sim.TraceRing every event-driven workload taps into, so cxlserve
// can expose the most recent simulation activity over /v1/trace and count
// event traffic in /metrics without plumbing a ring through every layer.
//
// Multiple simulations may feed the ring concurrently (sweep workers run
// cells in parallel); the ring itself is mutex-protected, and per-run
// determinism is untouched because each run's own dataset never reads the
// shared ring back.
type SimTrace struct {
	mu   sync.RWMutex
	ring *sim.TraceRing
}

// NewSimTrace returns a sink retaining the most recent capacity events.
func NewSimTrace(capacity int) *SimTrace {
	return &SimTrace{ring: sim.NewTraceRing(capacity)}
}

// Sim is the process-wide trace sink. Event-driven experiment drivers attach
// Sim.Tap() to their schedulers; cxlserve reads it.
var Sim = NewSimTrace(4096)

// Tap returns the tap to attach to a scheduler. The tap stays valid across
// Configure: it resolves the current ring on every observation.
func (t *SimTrace) Tap() sim.Tap {
	return sim.TapFunc(func(te sim.TraceEvent) {
		t.mu.RLock()
		ring := t.ring
		t.mu.RUnlock()
		ring.Observe(te)
	})
}

// Snapshot returns the retained events oldest-first.
func (t *SimTrace) Snapshot() []sim.TraceEvent {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ring.Snapshot()
}

// Totals returns cumulative per-phase counts since the last Configure/Reset.
func (t *SimTrace) Totals() sim.TraceCounts {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ring.Totals()
}

// Len returns the number of retained events.
func (t *SimTrace) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ring.Len()
}

// Cap returns the ring capacity.
func (t *SimTrace) Cap() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ring.Cap()
}

// Configure replaces the ring with a fresh one of the given capacity,
// discarding retained events and totals (cxlserve's -trace-cap flag).
func (t *SimTrace) Configure(capacity int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = sim.NewTraceRing(capacity)
}

// Reset discards retained events and totals, keeping the capacity.
func (t *SimTrace) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring.Reset()
}
