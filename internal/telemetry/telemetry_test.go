package telemetry

import (
	"math"
	"testing"
)

func TestFeaturesOrder(t *testing.T) {
	s := Sample{L1MissLatencyNS: 1, DDRReadLatencyNS: 2, IPC: 3}
	f := s.Features()
	if len(f) != 3 || f[0] != 1 || f[1] != 2 || f[2] != 3 {
		t.Errorf("Features = %v", f)
	}
	if len(FeatureNames()) != len(f) {
		t.Error("feature names misaligned with features")
	}
}

func TestSamplerSmoothing(t *testing.T) {
	s := NewSampler(5)
	var out Sample
	for i := 1; i <= 5; i++ {
		out = s.Add(Sample{L1MissLatencyNS: float64(i) * 10, IPC: 1})
	}
	// Mean of 10..50 = 30.
	if math.Abs(out.L1MissLatencyNS-30) > 1e-9 {
		t.Errorf("smoothed L1 = %v, want 30", out.L1MissLatencyNS)
	}
	if out.IPC != 1 {
		t.Errorf("smoothed IPC = %v", out.IPC)
	}
	// A spike moves the average by only 1/window of its weight.
	out = s.Add(Sample{L1MissLatencyNS: 1000, IPC: 1})
	if out.L1MissLatencyNS > 250 {
		t.Errorf("spike insufficiently damped: %v", out.L1MissLatencyNS)
	}
	if s.N() != 6 {
		t.Errorf("N = %d", s.N())
	}
}

func TestSamplerSmoothedWithoutAdd(t *testing.T) {
	s := NewSampler(3)
	if got := s.Smoothed(); got.L1MissLatencyNS != 0 || got.IPC != 0 {
		t.Errorf("empty smoothed = %+v", got)
	}
	s.Add(Sample{DDRReadLatencyNS: 100, CXLPercent: 25})
	got := s.Smoothed()
	if got.DDRReadLatencyNS != 100 {
		t.Errorf("smoothed DDR latency = %v", got.DDRReadLatencyNS)
	}
	if got.CXLPercent != 25 {
		t.Errorf("CXLPercent should pass through, got %v", got.CXLPercent)
	}
}

func TestSamplerPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSampler(0)
}

func TestSourceFunc(t *testing.T) {
	var src Source = SourceFunc(func() Sample { return Sample{IPC: 2} })
	if src.Counters().IPC != 2 {
		t.Error("SourceFunc adapter broken")
	}
}
