package coherence

import (
	"testing"

	"cxlmem/internal/sim"
)

func TestStandardAgentsValidate(t *testing.T) {
	for _, a := range []*Agent{LocalCHA(), RemoteDirectory(), CXLHomeStructure()} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []*Agent{
		{Name: "neg-serial", SerialCheck: -1, WriteMultiplier: 1},
		{Name: "neg-burst", BurstPenalty: -1, WriteMultiplier: 1},
		{Name: "small-mult", WriteMultiplier: 0.5},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("%s should fail validation", a.Name)
		}
	}
}

// TestO3RemoteDirectoryCosts captures observation O3's structure: the remote
// directory (NUMA emulation) is slower to check serially AND congests under
// bursts, while the on-chip CXL home structure is cheap on both axes.
func TestO3RemoteDirectoryCosts(t *testing.T) {
	remote, cxl, local := RemoteDirectory(), CXLHomeStructure(), LocalCHA()

	if remote.SerialCost(false) <= cxl.SerialCost(false) {
		t.Error("remote serial check should exceed CXL home structure")
	}
	if remote.BurstCost(false) <= 10*cxl.BurstCost(false) {
		t.Error("remote burst penalty should dominate CXL burst penalty")
	}
	if cxl.SerialCost(false) >= local.SerialCost(false) {
		t.Error("CXL home structure should be at most as expensive as a local CHA check")
	}
}

func TestWriteMultiplierApplies(t *testing.T) {
	a := RemoteDirectory()
	if a.SerialCost(true) <= a.SerialCost(false) {
		t.Error("RFO coherence should cost more than a read check")
	}
	if a.BurstCost(true) <= a.BurstCost(false) {
		t.Error("RFO burst cost should exceed read burst cost")
	}
	want := sim.Time(float64(a.SerialCheck) * a.WriteMultiplier)
	if got := a.SerialCost(true); got != want {
		t.Errorf("SerialCost(write) = %v, want %v", got, want)
	}
}
