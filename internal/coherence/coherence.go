// Package coherence models the cache-coherence agents on the access paths to
// the different memory devices — the mechanism behind the paper's central
// finding that "CXL memory ≠ remote NUMA memory" (observations O1–O3).
//
// Accesses to memory on a *remote socket* (the NUMA emulation of CXL memory)
// must check the remote CPU's caches through a directory reached over UPI;
// under a burst of parallel accesses those checks congest the UPI link and
// inflate per-access latency. A *true CXL device* has no CPU cores or caches
// behind it, so the host CPU resolves coherence in a dedicated on-chip
// structure with near-constant cost and no inter-chip traffic.
package coherence

import (
	"fmt"

	"cxlmem/internal/sim"
)

// Agent is a coherence resolution point on a memory access path.
type Agent struct {
	// Name identifies the agent in diagnostics.
	Name string
	// SerialCheck is the latency added to a single serialized access
	// (a dependent pointer-chase load) by the coherence check.
	SerialCheck sim.Time
	// BurstPenalty is the additional per-access cost under a burst of
	// parallel independent accesses. For the remote directory this models
	// the congestion of coherence traffic on the inter-chip interconnect
	// (paper §4.1, O3); for on-chip agents it is negligible.
	BurstPenalty sim.Time
	// WriteMultiplier scales the coherence cost for ownership-acquiring
	// stores (RFO), which require a second round of the protocol.
	WriteMultiplier float64
}

// Validate reports an error for meaningless parameters.
func (a *Agent) Validate() error {
	if a.SerialCheck < 0 || a.BurstPenalty < 0 {
		return fmt.Errorf("coherence agent %s: negative latency", a.Name)
	}
	if a.WriteMultiplier < 1 {
		return fmt.Errorf("coherence agent %s: write multiplier %v < 1", a.Name, a.WriteMultiplier)
	}
	return nil
}

// SerialCost returns the coherence contribution to one serialized access.
// write selects the ownership-acquiring variant.
func (a *Agent) SerialCost(write bool) sim.Time {
	if write {
		return sim.Time(float64(a.SerialCheck) * a.WriteMultiplier)
	}
	return a.SerialCheck
}

// BurstCost returns the additional per-access coherence cost when the access
// is part of a parallel burst (the memo measurement pattern and any
// bandwidth-bound workload).
func (a *Agent) BurstCost(write bool) sim.Time {
	if write {
		return sim.Time(float64(a.BurstPenalty) * a.WriteMultiplier)
	}
	return a.BurstPenalty
}

// LocalCHA returns the caching/home agent used for socket-local DRAM: the
// request is hashed to an on-die CHA slice; the snoop filter lookup is cheap
// and scales with core count but never crosses a chip boundary.
func LocalCHA() *Agent {
	return &Agent{
		Name:            "local CHA",
		SerialCheck:     10 * sim.Nanosecond,
		BurstPenalty:    300 * sim.Picosecond,
		WriteMultiplier: 1.2,
	}
}

// RemoteDirectory returns the agent for DRAM on the *other* socket — the
// NUMA-based CXL emulation. Every access pays a directory check on the
// remote CPU; bursts congest the UPI coherence channel (O3). The burst
// penalty of ~5.5 ns/access reproduces the paper's finding that parallel
// access amortizes emulated-CXL latency less (76 % reduction) than true-CXL
// latency (79 %).
func RemoteDirectory() *Agent {
	return &Agent{
		Name:            "remote directory",
		SerialCheck:     30 * sim.Nanosecond,
		BurstPenalty:    5500 * sim.Picosecond,
		WriteMultiplier: 2.0,
	}
}

// CXLHomeStructure returns the on-chip structure SPR uses to resolve
// coherence for true CXL memory. The device has no caches, so the host can
// answer the check locally with a small, congestion-free lookup (O3).
func CXLHomeStructure() *Agent {
	return &Agent{
		Name:            "CXL home structure",
		SerialCheck:     8 * sim.Nanosecond,
		BurstPenalty:    300 * sim.Picosecond,
		WriteMultiplier: 1.1,
	}
}
