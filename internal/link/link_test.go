package link

import (
	"testing"
	"testing/quick"

	"cxlmem/internal/sim"
)

func TestStandardLinksValidate(t *testing.T) {
	for _, l := range []*Link{UPI(), CXLx8(), Mesh()} {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if !l.FullDuplex {
			t.Errorf("%s should be full duplex", l.Name)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	l := &Link{Name: "bad", Propagation: -1, BandwidthPerDir: 1}
	if err := l.Validate(); err == nil {
		t.Error("negative propagation should fail")
	}
	l = &Link{Name: "bad", Propagation: 1, BandwidthPerDir: 0}
	if err := l.Validate(); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestTraverse(t *testing.T) {
	l := CXLx8() // 40 ns propagation, 32 GB/s per direction
	// 64 bytes at 32 B/ns = 2 ns serialization.
	want := 42 * sim.Nanosecond
	if got := l.Traverse(64); got != want {
		t.Errorf("Traverse(64) = %v, want %v", got, want)
	}
	if got := l.Traverse(0); got != 40*sim.Nanosecond {
		t.Errorf("Traverse(0) = %v, want pure propagation", got)
	}
}

func TestRoundTripFullVsHalfDuplex(t *testing.T) {
	full := CXLx8()
	half := *full
	half.FullDuplex = false
	if full.RoundTrip(8, 64) >= half.RoundTrip(8, 64) {
		t.Error("half duplex round trip should exceed full duplex")
	}
}

func TestSlotIsSerializationOnly(t *testing.T) {
	l := UPI() // 62.4 GB/s per direction
	slot := l.Slot(64)
	// 64/62.4 ≈ 1.0256 ns
	if ns := slot.Nanoseconds(); ns < 1.0 || ns > 1.1 {
		t.Errorf("UPI 64B slot = %v ns, want ~1.03", ns)
	}
	if l.Slot(0) != 0 {
		t.Error("zero payload slot should be 0")
	}
}

// TestO1FullDuplexAdvantage captures observation O1: for a pipelined stream,
// the per-request cost (Slot) is far below the serialized round trip.
func TestO1FullDuplexAdvantage(t *testing.T) {
	for _, l := range []*Link{UPI(), CXLx8()} {
		rt := l.RoundTrip(8, 64)
		slot := l.Slot(64)
		if slot*10 > rt {
			t.Errorf("%s: slot %v not ≪ round trip %v", l.Name, slot, rt)
		}
	}
}

func TestSlotScalesLinearly(t *testing.T) {
	l := CXLx8()
	f := func(nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		a := l.Slot(64 * n)
		b := sim.Time(n) * l.Slot(64)
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		return diff <= sim.Time(n) // rounding tolerance of 1 ps per chunk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
