// Package link models the point-to-point interconnects of the evaluated
// system: the inter-socket UPI link used by the NUMA emulation of CXL memory,
// the CXL/PCIe 5.0 link to true CXL devices, and the on-die mesh.
//
// The paper's observation O1 hinges on one structural property — all of these
// links are full duplex, so a stream of independent requests can overlap
// command (outbound) and data (inbound) transfers — while a serialized
// pointer chase pays the full round trip on every access. The Link type
// exposes both views: Traverse for one direction of a serialized access and
// Slot for the per-request occupancy under pipelined, parallel access.
package link

import (
	"fmt"

	"cxlmem/internal/sim"
)

// Link is a full-duplex point-to-point interconnect.
type Link struct {
	// Name identifies the link in diagnostics ("UPI", "CXL x8", "mesh").
	Name string
	// Propagation is the one-way traversal latency, including the physical
	// layer, link layer and transaction layer of the protocol stack.
	Propagation sim.Time
	// BandwidthPerDir is the usable bandwidth of each direction in bytes
	// per nanosecond (numerically equal to GB/s).
	BandwidthPerDir float64
	// FullDuplex reports whether the two directions transfer concurrently.
	// Every link in the evaluated system is full duplex; the flag exists so
	// ablation experiments can model a hypothetical half-duplex interconnect.
	FullDuplex bool
}

// Validate reports a descriptive error for physically meaningless parameters.
func (l *Link) Validate() error {
	if l.Propagation < 0 {
		return fmt.Errorf("link %s: negative propagation %v", l.Name, l.Propagation)
	}
	if l.BandwidthPerDir <= 0 {
		return fmt.Errorf("link %s: non-positive bandwidth %v", l.Name, l.BandwidthPerDir)
	}
	return nil
}

// Traverse returns the latency for moving payload bytes across one direction
// of the link as part of a serialized (dependent) access: propagation plus
// serialization of the payload.
func (l *Link) Traverse(payloadBytes int) sim.Time {
	return l.Propagation + l.serialization(payloadBytes)
}

// RoundTrip returns the latency of a command out / data back exchange for a
// serialized access. On a full-duplex link the two directions do not contend
// with each other, but a dependent access still pays both traversals end to
// end. On a half-duplex link an additional turnaround is charged.
func (l *Link) RoundTrip(cmdBytes, dataBytes int) sim.Time {
	t := l.Traverse(cmdBytes) + l.Traverse(dataBytes)
	if !l.FullDuplex {
		t += l.Propagation / 2 // bus turnaround penalty
	}
	return t
}

// Slot returns the steady-state per-request occupancy of the link for a
// pipelined stream of independent requests moving payloadBytes in one
// direction. This is what bounds bandwidth, not latency.
func (l *Link) Slot(payloadBytes int) sim.Time {
	return l.serialization(payloadBytes)
}

func (l *Link) serialization(payloadBytes int) sim.Time {
	if payloadBytes <= 0 {
		return 0
	}
	ns := float64(payloadBytes) / l.BandwidthPerDir
	return sim.FromNanoseconds(ns)
}

// UPI returns the inter-socket UPI link of the dual-socket SPR system.
// ~20 ns per traversal and roughly 62 GB/s usable per direction for the
// 3-link x24 configuration (the emulated-CXL experiments traverse it for
// every access to the remote socket's DRAM).
func UPI() *Link {
	return &Link{
		Name:            "UPI",
		Propagation:     20 * sim.Nanosecond,
		BandwidthPerDir: 62.4,
		FullDuplex:      true,
	}
}

// CXLx8 returns a CXL 1.1 link over PCIe 5.0 x8 — the configuration of the
// paper's CXL memory devices: 32 GB/s raw per direction and ~40 ns port
// latency per traversal through the Flex Bus PHY + CXL link/transaction
// layers (paper §1 cites ~40 ns for the PCIe 5.0 stack).
func CXLx8() *Link {
	return &Link{
		Name:            "CXL x8",
		Propagation:     40 * sim.Nanosecond,
		BandwidthPerDir: 32,
		FullDuplex:      true,
	}
}

// CXLx16 returns a CXL 1.1 link over PCIe 5.0 x16 — the wide-link
// configuration of multi-expander platforms: double the x8 lane count, so
// 64 GB/s raw per direction, through the same Flex Bus PHY + CXL stack
// (lane count does not change the protocol-layer propagation).
func CXLx16() *Link {
	return &Link{
		Name:            "CXL x16",
		Propagation:     40 * sim.Nanosecond,
		BandwidthPerDir: 64,
		FullDuplex:      true,
	}
}

// Mesh returns the on-die mesh segment between a core's CHA and a memory
// controller or the CXL root port: a couple of nanoseconds and effectively
// unconstrained bandwidth at the granularity we model.
func Mesh() *Link {
	return &Link{
		Name:            "mesh",
		Propagation:     2 * sim.Nanosecond,
		BandwidthPerDir: 400,
		FullDuplex:      true,
	}
}
