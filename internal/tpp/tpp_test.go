package tpp

import (
	"testing"

	"cxlmem/internal/numa"
	"cxlmem/internal/sim"
)

func newSpace(cxlPercent float64, pages int) *numa.Space {
	nodes := []*numa.Node{{ID: 0, Name: "DDR5-L"}, {ID: 1, Name: "CXL-A"}}
	s := numa.NewSpace(nodes, numa.NewDDRCXLSplit(cxlPercent))
	s.Alloc(pages)
	return s
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.TargetDDRFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("bad fraction should fail")
	}
	bad = DefaultConfig()
	bad.PromoteBatch = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero batch should fail")
	}
	bad = DefaultConfig()
	bad.CXLNode = bad.DDRNode
	if err := bad.Validate(); err == nil {
		t.Error("same nodes should fail")
	}
}

func TestPromotionMovesHotPagesTowardTarget(t *testing.T) {
	// Start with 100% of pages on CXL, like the paper's TPP experiment.
	space := newSpace(100, 1000)
	e := NewEngine(DefaultConfig(), space)

	// Make the first 500 pages hot.
	for p := 0; p < 500; p++ {
		for k := 0; k < 4; k++ {
			e.RecordAccess(uint64(p) * numa.PageBytes)
		}
	}
	var total int
	for i := 0; i < 20; i++ {
		migs := e.Scan()
		total += len(migs)
		for _, m := range migs {
			if m.From != 1 || m.To != 0 {
				t.Fatalf("unexpected migration direction: %+v", m)
			}
		}
		// Re-touch hot pages between scans (heat decays).
		for p := 0; p < 500; p++ {
			for k := 0; k < 4; k++ {
				e.RecordAccess(uint64(p) * numa.PageBytes)
			}
		}
	}
	if total == 0 {
		t.Fatal("no promotions happened")
	}
	if e.Promotions != int64(total) {
		t.Errorf("promotion counter = %d, want %d", e.Promotions, total)
	}
	if space.Fraction(0) == 0 {
		t.Error("DDR fraction did not grow")
	}
	// Batch limit respected per scan.
	if total > 20*DefaultConfig().PromoteBatch {
		t.Errorf("promoted %d pages, exceeds batch limits", total)
	}
}

func TestPromotionStopsAtTarget(t *testing.T) {
	space := newSpace(100, 400)
	cfg := DefaultConfig()
	cfg.PromoteBatch = 1000
	cfg.HotThreshold = 1
	e := NewEngine(cfg, space)
	for round := 0; round < 50; round++ {
		for p := 0; p < 400; p++ {
			e.RecordAccess(uint64(p) * numa.PageBytes)
			e.RecordAccess(uint64(p) * numa.PageBytes)
		}
		e.Scan()
	}
	frac := space.Fraction(0)
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("steady-state DDR fraction = %v, want ~0.75", frac)
	}
}

func TestDemotionUnderPressure(t *testing.T) {
	// Start with everything on DDR: TPP must demote cold pages to CXL.
	space := newSpace(0, 1000)
	cfg := DefaultConfig()
	e := NewEngine(cfg, space)
	var demoted int
	for i := 0; i < 20; i++ {
		migs := e.Scan()
		for _, m := range migs {
			if m.From != 0 || m.To != 1 {
				t.Fatalf("unexpected direction: %+v", m)
			}
			demoted++
		}
	}
	if demoted == 0 {
		t.Fatal("no demotions under DDR pressure")
	}
	if frac := space.Fraction(0); frac < 0.74 || frac > 0.8 {
		t.Errorf("DDR fraction after demotion = %v, want ~0.75", frac)
	}
	if e.Demotions != int64(demoted) {
		t.Errorf("demotion counter mismatch")
	}
}

func TestHotPagesNotDemoted(t *testing.T) {
	space := newSpace(0, 100)
	cfg := DefaultConfig()
	cfg.DemoteBatch = 100
	e := NewEngine(cfg, space)
	// Heat every page well above cold threshold.
	for p := 0; p < 100; p++ {
		for k := 0; k < 8; k++ {
			e.RecordAccess(uint64(p) * numa.PageBytes)
		}
	}
	migs := e.Scan()
	if len(migs) != 0 {
		t.Errorf("hot pages were demoted: %d migrations", len(migs))
	}
}

func TestPingPongDamperHalvesHeat(t *testing.T) {
	space := newSpace(100, 10)
	cfg := DefaultConfig()
	cfg.HotThreshold = 2
	e := NewEngine(cfg, space)
	for k := 0; k < 8; k++ {
		e.RecordAccess(0)
	}
	if e.Heat(0) != 8 {
		t.Fatalf("heat = %d, want 8", e.Heat(0))
	}
	migs := e.Scan()
	if len(migs) == 0 {
		t.Fatal("hot page should be promoted")
	}
	// Damper halves on migration, decay halves again: 8 -> 4 -> 2.
	if e.Heat(0) != 2 {
		t.Errorf("heat after damped migration + decay = %d, want 2", e.Heat(0))
	}
}

func TestHeatDecay(t *testing.T) {
	space := newSpace(50, 10)
	e := NewEngine(DefaultConfig(), space)
	e.RecordAccess(0)
	e.RecordAccess(0)
	e.Scan()
	if e.Heat(0) != 1 {
		t.Errorf("heat after decay = %d, want 1", e.Heat(0))
	}
	if e.Heat(99999) != 0 {
		t.Error("unknown page heat should be 0")
	}
}

func TestRecordAccessGrowsHeatSlice(t *testing.T) {
	space := newSpace(50, 1)
	e := NewEngine(DefaultConfig(), space)
	e.RecordAccess(1000 * numa.PageBytes) // far beyond current pages
	if e.Heat(1000) != 1 {
		t.Error("heat slice did not grow")
	}
}

func TestStallPenalty(t *testing.T) {
	m := DefaultCostModel()
	if p := m.StallPenalty(0, sim.Millisecond, 10); p != 0 {
		t.Errorf("zero migrations penalty = %v", p)
	}
	small := m.StallPenalty(10, 100*sim.Millisecond, 10)
	large := m.StallPenalty(1000, 100*sim.Millisecond, 10)
	if large <= small {
		t.Errorf("penalty should grow with migrations: %v vs %v", small, large)
	}
	// Penalty bounded by the window.
	huge := m.StallPenalty(1_000_000, sim.Millisecond, 1)
	if huge > sim.Millisecond {
		t.Errorf("penalty %v exceeds window", huge)
	}
	if p := m.StallPenalty(10, 0, 10); p != 0 {
		t.Errorf("zero window penalty = %v", p)
	}
}

func TestNewEnginePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.PromoteBatch = -1
	NewEngine(cfg, newSpace(50, 10))
}
