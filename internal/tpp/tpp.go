// Package tpp implements a model of Transparent Page Placement (TPP), the
// CXL-aware tiered-memory migration policy the paper evaluates against
// static interleaving (§5.1, Fig. 7). The publicly released TPP patch set
// offers an enhanced migration policy: hot pages on the CXL node are
// promoted to DDR, cold DDR pages are demoted under pressure.
//
// The paper's finding F2 is that for µs-scale latency-sensitive applications
// TPP's *mechanism* hurts: each migration (1) occupies both memory
// controllers with a 4 KB copy, blocking demand reads, and (2) spends CPU
// time on page-table updates and TLB shootdowns. This package models both
// costs explicitly so the Redis experiment can reproduce the latency CDF of
// Fig. 7.
package tpp

import (
	"fmt"
	"sort"

	"cxlmem/internal/numa"
	"cxlmem/internal/sim"
)

// Config parameterizes the policy.
type Config struct {
	// DDRNode and CXLNode are the node IDs of the fast and slow tiers.
	DDRNode, CXLNode int
	// TargetDDRFraction is the share of pages TPP steers toward DDR
	// (the paper sets 75 % DDR / 25 % CXL from the bandwidth ratio).
	TargetDDRFraction float64
	// PromoteBatch bounds pages promoted per scan; the kernel moves pages
	// in small batches to bound stalls.
	PromoteBatch int
	// DemoteBatch bounds pages demoted per scan under DDR pressure.
	DemoteBatch int
	// HotThreshold is the access count within a scan interval above which
	// a CXL page is promotion-eligible (NUMA-hint-fault style sampling).
	HotThreshold uint32
	// ColdThreshold is the access count at or below which a DDR page is
	// demotion-eligible.
	ColdThreshold uint32
	// PingPongDamper halves a page's recorded heat after it migrates, so a
	// recently moved page needs sustained access to move again (TPP's
	// ping-pong mitigation).
	PingPongDamper bool
}

// DefaultConfig mirrors the paper's setup: 25 % of pages on CXL in steady
// state, small batches, ping-pong damping on.
func DefaultConfig() Config {
	return Config{
		DDRNode:           0,
		CXLNode:           1,
		TargetDDRFraction: 0.75,
		PromoteBatch:      64,
		DemoteBatch:       64,
		HotThreshold:      2,
		ColdThreshold:     0,
		PingPongDamper:    true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TargetDDRFraction < 0 || c.TargetDDRFraction > 1 {
		return fmt.Errorf("tpp: target DDR fraction %v out of [0,1]", c.TargetDDRFraction)
	}
	if c.PromoteBatch <= 0 || c.DemoteBatch <= 0 {
		return fmt.Errorf("tpp: batches must be positive")
	}
	if c.DDRNode == c.CXLNode {
		return fmt.Errorf("tpp: DDR and CXL nodes must differ")
	}
	return nil
}

// Migration describes one page move.
type Migration struct {
	Page     int
	From, To int
}

// CostModel converts migrations into the two penalties of F2.
type CostModel struct {
	// PTEUpdate is the CPU cost per migrated page: unmapping, copying the
	// PTE, TLB shootdown IPIs.
	PTEUpdate sim.Time
	// CopyBytes is the payload per page (read from source + write to
	// destination devices).
	CopyBytes int
}

// DefaultCostModel returns costs typical of a loaded system: ~20 µs of CPU
// per promoted page (hint fault, rmap walk, TLB shootdown IPIs and
// migrate_pages contention) plus the 4 KB copy. Lightly loaded kernels
// migrate faster, but the paper's measurement is taken under full load.
func DefaultCostModel() CostModel {
	return CostModel{PTEUpdate: 20 * sim.Microsecond, CopyBytes: numa.PageBytes}
}

// SyncCost returns the latency charged to the operation that triggers a
// promotion via a NUMA hint fault: the faulting thread performs the PTE
// dance and the page copy synchronously before its access can proceed —
// mechanism (1)+(2) of §5.1 concentrated on one unlucky request.
func (m CostModel) SyncCost(copyBandwidthGBs float64) sim.Time {
	if copyBandwidthGBs <= 0 {
		return m.PTEUpdate
	}
	return m.PTEUpdate + sim.FromNanoseconds(float64(m.CopyBytes)/copyBandwidthGBs)
}

// Engine runs the policy over an address space.
type Engine struct {
	cfg   Config
	space *numa.Space
	heat  []uint32

	// cxlBuf and ddrBuf are scratch page lists reused across scans so the
	// steady-state scan loop stays allocation-free.
	cxlBuf, ddrBuf []int

	// Promotions and Demotions count migrations performed so far.
	Promotions, Demotions int64
}

// NewEngine creates an engine over the space.
func NewEngine(cfg Config, space *numa.Space) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Engine{cfg: cfg, space: space, heat: make([]uint32, space.Pages())}
}

// RecordAccess notes one access to the page holding addr (the model's
// equivalent of NUMA hint faults / PEBS sampling).
func (e *Engine) RecordAccess(addr uint64) {
	page := int(addr / numa.PageBytes)
	e.ensure(page)
	if e.heat[page] < 1<<31 {
		e.heat[page]++
	}
}

func (e *Engine) ensure(page int) {
	for len(e.heat) <= page {
		e.heat = append(e.heat, 0)
	}
}

// Scan runs one policy interval. Promotion is hotness-driven: every CXL page
// whose heat crossed the threshold is promotion-eligible (in the kernel this
// happens via NUMA hint faults on the *accessing* thread). Room on DDR is
// made either from the deficit to the target fraction or by demoting cold
// DDR pages — the swap churn behind TPP's ping-pong behaviour. Demotion then
// trims DDR back to the target using only cold pages. Heat decays after each
// scan. The returned migrations have already been applied to the space;
// promotions appear before demotions in the slice.
func (e *Engine) Scan() []Migration {
	e.ensure(e.space.Pages() - 1)
	var migrations []Migration

	// Promotion candidates: hottest CXL pages over threshold. Equal heat is
	// ordered by page index so candidate choice never depends on the
	// space's internal index order.
	e.cxlBuf = e.space.AppendPagesOnNode(e.cxlBuf[:0], e.cfg.CXLNode)
	cxlPages := e.cxlBuf
	sort.Slice(cxlPages, func(a, b int) bool {
		ha, hb := e.heat[cxlPages[a]], e.heat[cxlPages[b]]
		if ha != hb {
			return ha > hb
		}
		return cxlPages[a] < cxlPages[b]
	})
	var hot []int
	for _, p := range cxlPages {
		if len(hot) == e.cfg.PromoteBatch || e.heat[p] < e.cfg.HotThreshold {
			break
		}
		hot = append(hot, p)
	}

	// Demotion candidates: coldest DDR pages, same deterministic tie rule.
	e.ddrBuf = e.space.AppendPagesOnNode(e.ddrBuf[:0], e.cfg.DDRNode)
	ddrPages := e.ddrBuf
	sort.Slice(ddrPages, func(a, b int) bool {
		ha, hb := e.heat[ddrPages[a]], e.heat[ddrPages[b]]
		if ha != hb {
			return ha < hb
		}
		return ddrPages[a] < ddrPages[b]
	})
	var cold []int
	for _, p := range ddrPages {
		if len(cold) == e.cfg.DemoteBatch || e.heat[p] > e.cfg.ColdThreshold {
			break
		}
		cold = append(cold, p)
	}

	// Room for promotions: the deficit to the DDR target plus whatever cold
	// pages can be swapped out. Without cold pages, promotion never pushes
	// DDR beyond the target.
	need := int(e.cfg.TargetDDRFraction*float64(e.space.Pages())) -
		int(e.space.PagesOn(e.cfg.DDRNode))
	if need < 0 {
		need = 0
	}
	promote := len(hot)
	if room := need + len(cold); promote > room {
		promote = room
	}
	for _, p := range hot[:promote] {
		e.space.Move(p, e.cfg.DDRNode)
		migrations = append(migrations, Migration{Page: p, From: e.cfg.CXLNode, To: e.cfg.DDRNode})
		e.Promotions++
		if e.cfg.PingPongDamper {
			e.heat[p] /= 2
		}
	}

	// Demotion: trim back to the target with cold pages only.
	over := int(float64(e.space.PagesOn(e.cfg.DDRNode)) -
		e.cfg.TargetDDRFraction*float64(e.space.Pages()))
	if over > len(cold) {
		over = len(cold)
	}
	for _, p := range cold {
		if over <= 0 {
			break
		}
		e.space.Move(p, e.cfg.CXLNode)
		migrations = append(migrations, Migration{Page: p, From: e.cfg.DDRNode, To: e.cfg.CXLNode})
		e.Demotions++
		over--
		if e.cfg.PingPongDamper {
			e.heat[p] /= 2
		}
	}

	// Exponential heat decay between scans.
	for i := range e.heat {
		e.heat[i] /= 2
	}
	return migrations
}

// Heat exposes a page's current heat (diagnostics and tests).
func (e *Engine) Heat(page int) uint32 {
	if page >= len(e.heat) {
		return 0
	}
	return e.heat[page]
}

// StallPenalty returns the demand-read latency penalty from a batch of
// migrations running concurrently with the application over a window: the
// copies occupy the memory controllers ((1) in §5.1) and the PTE updates
// consume CPU ((2)). The penalty is the expected extra latency a demand
// access experiences, assuming migrations are spread over the window.
func (m CostModel) StallPenalty(migrations int, window sim.Time, copyBandwidthGBs float64) sim.Time {
	if migrations == 0 || window <= 0 {
		return 0
	}
	// Time the controllers spend copying instead of serving demand reads.
	copyTime := sim.FromNanoseconds(float64(migrations*m.CopyBytes) / copyBandwidthGBs)
	cpuTime := sim.Time(migrations) * m.PTEUpdate
	busy := copyTime + cpuTime
	if busy > window {
		busy = window
	}
	// Expected extra wait for a random arrival: fraction of window busy ×
	// half the mean busy burst. Bursts are batch-sized copies.
	frac := float64(busy) / float64(window)
	return sim.Time(frac * float64(busy) / 2)
}
