package cluster

// Ring property tests over the golden key corpus: every registered
// experiment's dataset key plus every matrix cell's scenario key, under the
// options the CI sweep actually uses. Balance and minimal reshuffle are the
// two properties that make key-ownership sharding worth running.

import (
	"fmt"
	"testing"

	"cxlmem/internal/experiments"
)

// corpusKeys builds the golden routing corpus: one canonical key per
// registered experiment and one per matrix scenario cell.
func corpusKeys(t *testing.T) []string {
	t.Helper()
	o := experiments.DefaultOptions()
	o.Quick = true
	var keys []string
	for _, e := range experiments.All() {
		k, err := experiments.DatasetKey(e.ID, o)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	for _, sc := range experiments.AllMatrixScenarios() {
		keys = append(keys, experiments.ScenarioKey(o, sc))
	}
	if len(keys) < 60 {
		t.Fatalf("golden corpus has only %d keys; expected the full experiment + matrix set", len(keys))
	}
	return keys
}

// testPeers builds a ring over n synthetic replica addresses.
func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://10.0.0.%d:8375", i+1)
	}
	return peers
}

// TestRingBalance pins the balance bound from ISSUE 9: over the golden key
// corpus on a three-replica ring, no shard may hold more than twice the
// mean load.
func TestRingBalance(t *testing.T) {
	keys := corpusKeys(t)
	peers := testPeers(3)
	r, err := NewRing("", peers)
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]int{}
	for _, k := range keys {
		load[r.Owner(k)]++
	}
	mean := float64(len(keys)) / float64(len(peers))
	for _, p := range peers {
		t.Logf("%s: %d keys (mean %.1f)", p, load[p], mean)
		if float64(load[p]) > 2*mean {
			t.Errorf("shard %s holds %d keys, more than 2x the mean %.1f", p, load[p], mean)
		}
		if load[p] == 0 {
			t.Errorf("shard %s owns no keys at all", p)
		}
	}
}

// TestRingMinimalReshuffleOnAdd pins the rendezvous growth property: adding
// a replica moves only the keys the newcomer now wins — every other
// assignment is untouched.
func TestRingMinimalReshuffleOnAdd(t *testing.T) {
	keys := corpusKeys(t)
	before, err := NewRing("", testPeers(3))
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing("", testPeers(4))
	if err != nil {
		t.Fatal(err)
	}
	newcomer := "http://10.0.0.4:8375"
	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		if is != newcomer {
			t.Errorf("key %q moved %s -> %s on add; only moves to the new peer are allowed", k, was, is)
		}
		moved++
	}
	if moved == 0 {
		t.Error("a fourth replica stole no keys; the ring is not spreading load to newcomers")
	}
	if max := len(keys) * 2 / 3; moved > max {
		t.Errorf("adding one replica moved %d of %d keys; want a minimal reshuffle (<= %d)", moved, len(keys), max)
	}
}

// TestRingMinimalReshuffleOnRemove pins the shrink property: removing a
// replica moves only the keys it owned.
func TestRingMinimalReshuffleOnRemove(t *testing.T) {
	keys := corpusKeys(t)
	peers := testPeers(3)
	before, err := NewRing("", peers)
	if err != nil {
		t.Fatal(err)
	}
	gone := peers[1]
	after, err := NewRing("", []string{peers[0], peers[2]})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was == gone {
			if is == gone {
				t.Fatalf("removed peer %s still owns %q", gone, k)
			}
			continue
		}
		if was != is {
			t.Errorf("key %q moved %s -> %s although %s never owned it", k, was, is, gone)
		}
	}
}

// TestRingDeterministicAcrossMembers pins the zero-coordination contract:
// every member, and a client-side ring over the same addresses, computes the
// same owner for every key regardless of which address is "self".
func TestRingDeterministicAcrossMembers(t *testing.T) {
	keys := corpusKeys(t)
	peers := testPeers(3)
	rings := []*Ring{}
	for _, self := range append([]string{""}, peers...) {
		r, err := NewRing(self, peers)
		if err != nil {
			t.Fatal(err)
		}
		rings = append(rings, r)
	}
	for _, k := range keys {
		want := rings[0].Owner(k)
		for i, r := range rings[1:] {
			if got := r.Owner(k); got != want {
				t.Fatalf("member %d disagrees on %q: %s vs %s", i, k, got, want)
			}
		}
	}
}

// TestNewRing pins construction semantics: trimming, dedupe, self-insertion,
// the empty-ring error, and Owns for the member / client / singleton shapes.
func TestNewRing(t *testing.T) {
	r, err := NewRing(" http://a:1 ", []string{"http://b:1", "http://a:1", "", "  http://b:1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Peers(); len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:1" {
		t.Fatalf("peers = %v, want deduped sorted pair", got)
	}
	if r.Self() != "http://a:1" {
		t.Errorf("self = %q", r.Self())
	}
	if _, err := NewRing("", []string{"  ", ""}); err == nil {
		t.Error("empty ring constructed without error")
	}
	solo, err := NewRing("http://a:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !solo.Owns("anything") {
		t.Error("single-member ring must own every key")
	}
	client, err := NewRing("", []string{"http://a:1", "http://b:1"})
	if err != nil {
		t.Fatal(err)
	}
	if client.Owns("anything") {
		t.Error("client-side ring must own nothing")
	}
	member, err := NewRing("http://a:1", []string{"http://b:1"})
	if err != nil {
		t.Fatal(err)
	}
	owned, probes := 0, 64
	for i := 0; i < probes; i++ {
		k := fmt.Sprintf("probe-key-%d", i)
		if member.Owns(k) {
			owned++
		}
		if member.Owns(k) == (member.Owner(k) != member.Self()) {
			t.Errorf("Owns(%q) disagrees with Owner", k)
		}
	}
	if owned == 0 || owned == probes {
		t.Errorf("member owns %d of %d probe keys; two-member split should be partial", owned, probes)
	}
}
