// Coordinator fan-out (DESIGN.md §14): shard a list of scenario cells
// across cxlserve replicas over the existing /v1/scenario API and merge the
// per-cell results into one dataset byte-identical to local serial
// execution.
//
// Each cell is routed to the replica that owns its canonical memo key, so
// the fleet's bounded caches stay dedicated to disjoint key ranges and a
// repeated matrix run is served entirely from warm shards. Workers claim
// cells from a shared index — the PR 1 sweep-engine pattern — and write
// results into index-addressed slots, so the merge order is the input
// order regardless of which replica answered first.

package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cxlmem/internal/experiments"
	"cxlmem/internal/results"
	"cxlmem/internal/workloads"
)

// maxErrorBody bounds how much of a replica's error response the
// coordinator echoes into its own error message.
const maxErrorBody = 512

// Coordinator dispatches scenario cells across a replica ring. The zero
// value is not usable — set Ring (a client-side ring over the replica base
// URLs is enough).
type Coordinator struct {
	// Ring routes each cell to the replica owning its canonical key.
	Ring *Ring
	// Client is the HTTP client used for cell fetches; nil uses a default
	// with a 5-minute per-request timeout (full-fidelity matrix cells are
	// slow on cold replicas).
	Client *http.Client
	// Workers bounds concurrent in-flight fetches; 0 uses four per replica.
	Workers int
}

// client resolves the HTTP client.
func (co *Coordinator) client() *http.Client {
	if co.Client != nil {
		return co.Client
	}
	return &http.Client{Timeout: 5 * time.Minute}
}

// workers resolves the fan-out width for n cells.
func (co *Coordinator) workers(n int) int {
	w := co.Workers
	if w <= 0 {
		w = 4 * len(co.Ring.Peers())
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// cellQuery pins every fingerprint-relevant option knob onto the query
// string, so the remote cell key — and therefore its bytes — cannot depend
// on the replica's own base flags. The platform parameter is sent even when
// empty: presence pins the default Table-1 machine over a replica's
// -platform base.
func cellQuery(o experiments.Options, spec string) url.Values {
	q := url.Values{}
	q.Set("spec", spec)
	q.Set("format", "json")
	q.Set("quick", strconv.FormatBool(o.Quick))
	q.Set("fastwarm", strconv.FormatBool(o.FastWarmup))
	q.Set("seed", strconv.FormatUint(o.Seed, 10))
	q.Set("platform", o.Platform)
	return q
}

// fetchCell fetches one evaluated scenario cell from a replica and parses
// it back into its ordered metric list through the lossless wire form.
func (co *Coordinator) fetchCell(ctx context.Context, base string, o experiments.Options, sc workloads.Scenario) (workloads.Metrics, error) {
	spec := sc.String()
	target := strings.TrimSuffix(base, "/") + "/v1/scenario?" + cellQuery(o, spec).Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return workloads.Metrics{}, fmt.Errorf("cluster: cell %q: %w", spec, err)
	}
	resp, err := co.client().Do(req)
	if err != nil {
		return workloads.Metrics{}, fmt.Errorf("cluster: cell %q via %s: %w", spec, base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return workloads.Metrics{}, fmt.Errorf("cluster: cell %q via %s: reading response: %w", spec, base, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(body))
		if len(msg) > maxErrorBody {
			msg = msg[:maxErrorBody] + "..."
		}
		return workloads.Metrics{}, fmt.Errorf("cluster: cell %q via %s: %s: %s", spec, base, resp.Status, msg)
	}
	d, err := results.ParseJSON(body)
	if err != nil {
		return workloads.Metrics{}, fmt.Errorf("cluster: cell %q via %s: %w", spec, base, err)
	}
	m, err := workloads.MetricsFromDataset(d)
	if err != nil {
		return workloads.Metrics{}, fmt.Errorf("cluster: cell %q via %s: %w", spec, base, err)
	}
	return m, nil
}

// ScenarioCells evaluates every scenario on the fleet — each cell on the
// replica owning its canonical key — and returns the metrics in input
// order. Workers claim cells from a shared index; the first failure cancels
// the remaining fetches and is returned.
func (co *Coordinator) ScenarioCells(ctx context.Context, o experiments.Options, scs []workloads.Scenario) ([]workloads.Metrics, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]workloads.Metrics, len(scs))
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < co.workers(len(scs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(scs) {
					return
				}
				owner := co.Ring.Owner(experiments.ScenarioKey(o, scs[i]))
				m, err := co.fetchCell(ctx, owner, o, scs[i])
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
						cancel()
					}
					errMu.Unlock()
					return
				}
				out[i] = m
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// ScenarioDataset is the distributed ScenarioDataset: it fans the cells out
// across the fleet and assembles the merged dataset through the same row
// construction as local execution — byte-identical output, property-tested
// in the serve suite.
func (co *Coordinator) ScenarioDataset(ctx context.Context, o experiments.Options, id, title string, scs []workloads.Scenario) (*results.Dataset, error) {
	cells, err := co.ScenarioCells(ctx, o, scs)
	if err != nil {
		return nil, err
	}
	return experiments.ScenarioDatasetFromCells(o, id, title, scs, cells), nil
}

// ScenarioResult is the distributed ScenarioResult: one cell evaluated on
// its owning replica, assembled into the single-cell dataset form.
func (co *Coordinator) ScenarioResult(ctx context.Context, o experiments.Options, sc workloads.Scenario) (*results.Dataset, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	m, err := co.fetchCell(ctx, co.Ring.Owner(experiments.ScenarioKey(o, sc)), o, sc)
	if err != nil {
		return nil, err
	}
	return experiments.ScenarioResultFromCell(o, sc, m), nil
}
