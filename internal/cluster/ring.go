// Package cluster is the horizontal scale-out layer (DESIGN.md §14): a
// rendezvous-hash ring that assigns every canonical memo key to exactly one
// cxlserve replica, and a coordinator that fans scenario cells out across
// the ring over the existing HTTP API and merges the results byte-identical
// to local serial execution.
//
// The invariant the whole layer rides on is the one PR 3/5 established:
// every cell and dataset is a pure function of its canonical memo key
// (spec + options fingerprint, never the worker count). That makes the key
// the unit of distribution — a replica that owns a key range keeps its
// bounded cache dedicated to that range instead of holding one more copy of
// the fleet-wide hot set, and any replica can recompute any key with
// byte-identical results, so routing is a performance decision, never a
// correctness one.
//
// Rendezvous (highest-random-weight) hashing was chosen over a virtual-node
// consistent-hash circle because the peer sets here are small (single-digit
// replica counts): O(peers) per lookup is free at this scale, the balance
// is as good as the hash, and the minimal-reshuffle property is exact —
// removing a peer only moves the keys that peer owned, adding one only
// steals the keys it now wins (both pinned by tests).
package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Ring is an immutable rendezvous-hash ring over replica addresses. The
// zero value is not usable — build one with NewRing. Methods are safe for
// concurrent use (the ring never mutates after construction).
type Ring struct {
	self  string
	peers []string
}

// NewRing builds a ring over the given peer addresses. self is this
// replica's own advertised address and is added to the peer set if absent;
// a client-side ring (a coordinator that only routes, never owns) may pass
// an empty self with a non-empty peer list. Addresses are trimmed and
// deduplicated; at least one must remain.
func NewRing(self string, peers []string) (*Ring, error) {
	seen := make(map[string]bool, len(peers)+1)
	var all []string
	add := func(p string) {
		p = strings.TrimSpace(p)
		if p == "" || seen[p] {
			return
		}
		seen[p] = true
		all = append(all, p)
	}
	self = strings.TrimSpace(self)
	add(self)
	for _, p := range peers {
		add(p)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	sort.Strings(all)
	return &Ring{self: self, peers: all}, nil
}

// Self returns this replica's advertised address, empty for a client-side
// ring.
func (r *Ring) Self() string { return r.self }

// Peers returns the full member list in sorted order, as a copy.
func (r *Ring) Peers() []string {
	out := make([]string, len(r.peers))
	copy(out, r.peers)
	return out
}

// Owner returns the peer that owns the given canonical key: the rendezvous
// winner — the peer maximizing hash(peer, key), ties broken toward the
// lexicographically smaller address so every member computes the same
// answer with no coordination.
func (r *Ring) Owner(key string) string {
	best := r.peers[0]
	bestScore := rendezvousScore(best, key)
	for _, p := range r.peers[1:] {
		if s := rendezvousScore(p, key); s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// Owns reports whether this replica owns the key. A single-member ring owns
// everything; a client-side ring (empty self) owns nothing.
func (r *Ring) Owns(key string) bool {
	if len(r.peers) == 1 {
		return r.peers[0] == r.self
	}
	return r.self != "" && r.Owner(key) == r.self
}

// NormalizeAddr canonicalizes one replica address for ring membership:
// whitespace is trimmed, a missing scheme defaults to http, and a trailing
// slash is dropped — so "host:8375", "http://host:8375" and
// "http://host:8375/" name the same member. Rendezvous scores hash the
// address text, so members must agree on the canonical spelling.
func NormalizeAddr(addr string) (string, error) {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return "", fmt.Errorf("cluster: empty replica address")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/"), nil
}

// NormalizeAddrs maps NormalizeAddr over a peer list.
func NormalizeAddrs(addrs []string) ([]string, error) {
	out := make([]string, 0, len(addrs))
	for _, a := range addrs {
		n, err := NormalizeAddr(a)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// ParsePeerList parses a comma-separated replica list — the -peers and
// -remote flag syntax — into normalized addresses; empty items are skipped.
func ParsePeerList(s string) ([]string, error) {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if strings.TrimSpace(item) == "" {
			continue
		}
		n, err := NormalizeAddr(item)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: peer list %q names no replicas", s)
	}
	return out, nil
}

// rendezvousScore hashes one (peer, key) pair: 64-bit FNV-1a over
// peer + NUL + key (the NUL separator keeps ("ab","c") and ("a","bc")
// distinct), finished with a 64-bit avalanche mixer. The mixer is load-
// bearing: raw FNV-1a barely diffuses its trailing bytes, so the canonical
// keys here — long shared prefixes, short differing tails — would produce
// correlated scores and one peer would win entire key families.
func rendezvousScore(peer, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(peer); i++ {
		h ^= uint64(peer[i])
		h *= prime64
	}
	h *= prime64 // NUL separator: FNV-1a of byte 0 is a bare multiply
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
