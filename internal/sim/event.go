// The discrete-event core (DESIGN.md §13): Event/Actor interfaces and the
// time-ordered event queue behind the Scheduler. The fixed-epoch Runner
// (epoch.go) stays the right tool for fluid, throughput-oriented models;
// the event queue is for dynamic scenarios — migration timelines, bursty
// arrivals, multi-tenant contention — where *when* things happen is the
// result, not a discretization artifact.
package sim

// Event is one unit of scheduled work. Implementations are plain data the
// receiving Actor interprets; the engine only asks for a Kind label so
// tracing taps can classify events without reflection.
type Event interface {
	// Kind names the event type for tracing ("arrival", "scan", ...).
	Kind() string
}

// Actor handles events addressed to it. Actors are single-threaded by
// construction: a Scheduler dispatches exactly one event at a time, so
// handlers may mutate shared simulation state without locks.
type Actor interface {
	// Name identifies the actor in traces.
	Name() string
	// Handle processes one event. It may schedule follow-up events on s;
	// scheduling into the past panics.
	Handle(s *Scheduler, ev Event)
}

// EventFunc is a convenience Event: a bare kind label with no payload.
// Self-rescheduling actors (tickers, scan loops) share one EventFunc value
// across every occurrence, keeping the steady-state schedule allocation-free.
type EventFunc string

// Kind implements Event.
func (e EventFunc) Kind() string { return string(e) }

// scheduled is one queued event occurrence: the dispatch time, the FIFO
// tie-break sequence number, and the (actor, event) pair.
type scheduled struct {
	at    Time
	seq   uint64
	actor Actor
	ev    Event
}

// eventQueue is a binary min-heap of scheduled events ordered by (at, seq):
// earliest dispatch time first, and FIFO — enqueue order — among events
// scheduled for the same instant. The seq tie-break is what makes the
// dispatch order (and therefore every trace and dataset) deterministic.
type eventQueue []scheduled

// less orders the heap by time, then by enqueue sequence.
func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

// push adds an event occurrence and restores the heap invariant.
func (q *eventQueue) push(it scheduled) {
	*q = append(*q, it)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the earliest occurrence. It panics on an empty
// queue; callers check len first.
func (q *eventQueue) pop() scheduled {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = scheduled{} // release actor/event references
	*q = h[:last]
	h = *q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}
