package sim

import "math"

// Rng is a small, fast, deterministic pseudo-random number generator based on
// SplitMix64. It is not safe for concurrent use; simulations that need
// parallel streams should derive one Rng per goroutine with Split.
//
// SplitMix64 passes BigCrush, has a 2^64 period, and — critically for this
// project — is trivially reproducible across Go versions, unlike math/rand's
// unspecified global source.
type Rng struct {
	state uint64
}

// NewRng returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRng(seed uint64) *Rng {
	return &Rng{state: seed}
}

// Split derives an independent generator from r's stream. The derived stream
// is decorrelated from the parent by the SplitMix64 output function.
func (r *Rng) Split() *Rng {
	return NewRng(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next value in the stream.
func (r *Rng) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// State returns the generator's internal state, for checkpointing: NewRng of
// a saved State resumes the stream exactly where it left off (NewRng seeds
// the state directly). The warm-state snapshot cache (internal/mlc) relies
// on this to restore a measurement loop mid-stream.
func (r *Rng) State() uint64 { return r.state }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// Power-of-two bounds take a mask fast path; u % n == u & (n-1) for those n,
// so the value stream is identical — the mask just skips the hardware divide
// in the address-generation hot loops, whose bounds (line counts of
// power-of-two buffers) are almost always powers of two.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	if n&(n-1) == 0 {
		return int(r.Uint64() & uint64(n-1))
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
// Power-of-two bounds take the same mask fast path as Intn.
func (r *Rng) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	if n&(n-1) == 0 {
		return int64(r.Uint64() & uint64(n-1))
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rng) Float64() float64 {
	// 53 high bits -> uniform double in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
// Used for open-loop (Poisson) arrival processes in the latency benchmarks.
func (r *Rng) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value via the Box–Muller transform.
func (r *Rng) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *Rng) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws from a bounded zipfian distribution over [0, n) with skew s > 0
// using rejection-inversion (Hörmann). A Zipf value is created once and
// reused; construction is O(1) and each draw is O(1) expected.
type Zipf struct {
	rng              *Rng
	n                float64
	s                float64
	oneMinusS        float64
	oneOverOneMinusS float64
	hx0              float64
	hxm              float64
	hDenom           float64
}

// NewZipf builds a zipfian sampler over {0, 1, ..., n-1} with exponent s.
// s must be > 0 and != 1 is handled exactly; s == 1 is nudged slightly to
// keep the closed forms finite (standard practice).
func NewZipf(rng *Rng, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	if s <= 0 {
		panic("sim: Zipf with non-positive skew")
	}
	if s == 1 {
		s = 1.0000001
	}
	z := &Zipf{rng: rng, n: float64(n), s: s}
	z.oneMinusS = 1 - s
	z.oneOverOneMinusS = 1 / z.oneMinusS
	z.hx0 = z.h(0.5) - 1
	z.hxm = z.h(z.n + 0.5)
	z.hDenom = z.hx0 - z.hxm
	return z
}

// h is the integral of the zipf density, used by rejection-inversion.
func (z *Zipf) h(x float64) float64 {
	return math.Pow(x, z.oneMinusS) * z.oneOverOneMinusS
}

func (z *Zipf) hInv(x float64) float64 {
	return math.Pow(x*z.oneMinusS, z.oneOverOneMinusS)
}

// Next draws the next zipfian value in [0, n).
func (z *Zipf) Next() int {
	for {
		u := z.hx0 - z.rng.Float64()*z.hDenom
		x := z.hInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > z.n {
			k = z.n
		}
		// Acceptance test (simplified Hörmann; exact for s>0 over bounded n).
		if k-x <= 0.5 || z.h(k+0.5)-math.Pow(k, -z.s) >= u {
			return int(k) - 1
		}
	}
}
