package sim

import "fmt"

// SchedulerStats counts event traffic through a Scheduler. All counters are
// cumulative since construction.
type SchedulerStats struct {
	// Enqueued is the number of Schedule/After calls accepted.
	Enqueued uint64
	// Dispatched is the number of events delivered to actors.
	Dispatched uint64
	// Completed is the number of actor handlers that returned.
	Completed uint64
}

// Scheduler is a deterministic discrete-event executor: a clock, a
// time-ordered event queue, a seeded random stream, and a set of tracing
// taps. Execution is strictly single-threaded — Step pops the earliest
// (time, FIFO) event, advances the clock to its timestamp, and hands it to
// its actor — so two schedulers built with the same seed and fed the same
// actor logic produce identical event orders, identical traces, and
// identical downstream datasets regardless of how many OS threads or sweep
// workers surround them. That property is what lets event-driven workloads
// honor the repo-wide serial-vs-parallel byte-identity contract.
//
// A Scheduler is not safe for concurrent use.
type Scheduler struct {
	clock Clock
	queue eventQueue
	seq   uint64
	rng   *Rng
	taps  []Tap
	stats SchedulerStats
}

// NewScheduler returns a scheduler at time zero whose Rng is seeded with
// seed. Same seed ⇒ identical random stream ⇒ identical run.
func NewScheduler(seed uint64) *Scheduler {
	return &Scheduler{rng: NewRng(seed)}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.clock.Now() }

// Rng returns the scheduler's seeded random stream. Actors draw from it
// during Handle; because dispatch order is deterministic, so is every draw.
func (s *Scheduler) Rng() *Rng { return s.rng }

// Pending returns the number of queued, not-yet-dispatched events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Stats returns cumulative event counters.
func (s *Scheduler) Stats() SchedulerStats { return s.stats }

// Tap registers a tracing tap. Taps observe every enqueue, dispatch and
// completion in execution order; registration order is preserved.
func (s *Scheduler) Tap(t Tap) {
	if t != nil {
		s.taps = append(s.taps, t)
	}
}

// Schedule enqueues ev for actor at absolute time at. Scheduling into the
// past panics — simulated time never flows backwards. Scheduling at the
// current instant is allowed and dispatches after all earlier-enqueued
// events for that instant (FIFO tie-break).
func (s *Scheduler) Schedule(at Time, actor Actor, ev Event) {
	if at < s.clock.Now() {
		panic(fmt.Sprintf("sim: event %q scheduled at %v, before now %v", ev.Kind(), at, s.clock.Now()))
	}
	if actor == nil {
		panic("sim: event scheduled with nil actor")
	}
	it := scheduled{at: at, seq: s.seq, actor: actor, ev: ev}
	s.seq++
	s.queue.push(it)
	s.stats.Enqueued++
	s.emit(PhaseEnqueue, it)
}

// After enqueues ev for actor d past the current time. Negative d panics.
func (s *Scheduler) After(d Time, actor Actor, ev Event) {
	if d < 0 {
		panic(fmt.Sprintf("sim: event %q scheduled %v in the past", ev.Kind(), -d))
	}
	s.Schedule(s.clock.Now()+d, actor, ev)
}

// Step dispatches the earliest pending event: the clock advances to its
// timestamp, the actor's Handle runs to completion, and taps observe the
// dispatch and completion. Step reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	it := s.queue.pop()
	s.clock.AdvanceTo(it.at)
	s.stats.Dispatched++
	s.emit(PhaseDispatch, it)
	it.actor.Handle(s, it.ev)
	s.stats.Completed++
	s.emit(PhaseComplete, it)
	return true
}

// RunUntil dispatches every event scheduled at or before deadline, then
// advances the clock to deadline. Events an actor schedules during the run
// are honored if they also fall within the deadline.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	s.clock.AdvanceTo(deadline)
}

// Run dispatches events until the queue is empty. Actors that always
// reschedule themselves make this an infinite loop; bounded simulations
// should prefer RunUntil.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// emit fans one trace event out to every registered tap.
func (s *Scheduler) emit(phase Phase, it scheduled) {
	if len(s.taps) == 0 {
		return
	}
	te := TraceEvent{
		Phase: phase,
		Seq:   it.seq,
		At:    it.at,
		Now:   s.clock.Now(),
		Actor: it.actor.Name(),
		Kind:  it.ev.Kind(),
	}
	for _, t := range s.taps {
		t.Observe(te)
	}
}
