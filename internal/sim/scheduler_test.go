package sim

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

// recorder collects every trace event in order.
type recorder struct {
	events []TraceEvent
}

func (r *recorder) Observe(te TraceEvent) { r.events = append(r.events, te) }

// nopActor ignores every event.
type nopActor struct{ name string }

func (a *nopActor) Name() string                 { return a.name }
func (a *nopActor) Handle(_ *Scheduler, _ Event) {}

// TestQueuePopsInTimeOrder is the heap-ordering property: however events are
// pushed, pops come out in non-decreasing time order, FIFO among ties.
func TestQueuePopsInTimeOrder(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		rng := NewRng(seed)
		count := int(n%200) + 1
		var q eventQueue
		for i := 0; i < count; i++ {
			// Coarse times force plenty of exact ties.
			at := Time(rng.Intn(16)) * Millisecond
			q.push(scheduled{at: at, seq: uint64(i)})
		}
		prevAt := Time(-1)
		prevSeq := uint64(0)
		for len(q) > 0 {
			it := q.pop()
			if it.at < prevAt {
				return false
			}
			if it.at == prevAt && it.seq <= prevSeq {
				return false // FIFO violated among equal times
			}
			prevAt, prevSeq = it.at, it.seq
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// chainActor schedules follow-up events with random gaps until a budget of
// dispatches is exhausted, exercising enqueue-during-dispatch.
type chainActor struct {
	name    string
	budget  int
	handled []string
}

func (a *chainActor) Name() string { return a.name }

func (a *chainActor) Handle(s *Scheduler, ev Event) {
	a.handled = append(a.handled, fmt.Sprintf("%s@%d", ev.Kind(), s.Now()))
	if a.budget <= 0 {
		return
	}
	a.budget--
	fanout := 1 + s.Rng().Intn(2)
	for i := 0; i < fanout; i++ {
		gap := Time(s.Rng().Intn(5)) * Microsecond
		s.After(gap, a, EventFunc(fmt.Sprintf("chain-%d", i)))
	}
}

// runChained executes a randomized self-extending simulation and returns the
// full trace plus the actor's handling log.
func runChained(seed uint64) ([]TraceEvent, []string) {
	s := NewScheduler(seed)
	rec := &recorder{}
	s.Tap(rec)
	a := &chainActor{name: "chain", budget: 50}
	s.Schedule(0, a, EventFunc("start"))
	s.Run()
	return rec.events, a.handled
}

// TestSchedulerDeterminism: the same seed must yield an identical trace and
// handling order across 100 fresh runs (the PR's determinism contract), and
// a different seed must diverge.
func TestSchedulerDeterminism(t *testing.T) {
	baseTrace, baseLog := runChained(7)
	if len(baseTrace) == 0 {
		t.Fatal("trace is empty")
	}
	for i := 0; i < 100; i++ {
		tr, lg := runChained(7)
		if !reflect.DeepEqual(tr, baseTrace) {
			t.Fatalf("run %d: trace diverged from first run", i)
		}
		if !reflect.DeepEqual(lg, baseLog) {
			t.Fatalf("run %d: handling order diverged from first run", i)
		}
	}
	otherTrace, _ := runChained(8)
	if reflect.DeepEqual(otherTrace, baseTrace) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestSchedulerFIFOTies: events scheduled for the same instant dispatch in
// enqueue order.
func TestSchedulerFIFOTies(t *testing.T) {
	s := NewScheduler(1)
	var order []string
	a := &nopActor{name: "a"}
	s.Tap(TapFunc(func(te TraceEvent) {
		if te.Phase == PhaseDispatch {
			order = append(order, te.Kind)
		}
	}))
	at := 3 * Microsecond
	for i := 0; i < 8; i++ {
		s.Schedule(at, a, EventFunc(fmt.Sprintf("e%d", i)))
	}
	s.Run()
	for i, kind := range order {
		if want := fmt.Sprintf("e%d", i); kind != want {
			t.Fatalf("dispatch %d: got %q, want %q", i, kind, want)
		}
	}
	if len(order) != 8 {
		t.Fatalf("dispatched %d events, want 8", len(order))
	}
}

// TestSchedulerPhases: each dispatched event produces enqueue → dispatch →
// complete with consistent Seq/At, and Now is monotone.
func TestSchedulerPhases(t *testing.T) {
	trace, _ := runChained(3)
	seen := map[uint64][]Phase{}
	var prevNow Time
	for _, te := range trace {
		if te.Now < prevNow {
			t.Fatalf("trace Now went backwards: %v after %v", te.Now, prevNow)
		}
		prevNow = te.Now
		seen[te.Seq] = append(seen[te.Seq], te.Phase)
		if te.Phase != PhaseEnqueue && te.Now != te.At {
			t.Fatalf("seq %d phase %v: Now %v != At %v", te.Seq, te.Phase, te.Now, te.At)
		}
	}
	for seq, phases := range seen {
		want := []Phase{PhaseEnqueue, PhaseDispatch, PhaseComplete}
		if !reflect.DeepEqual(phases, want) {
			t.Fatalf("seq %d: phases %v, want %v", seq, phases, want)
		}
	}
}

// TestSchedulePastPanics: scheduling before Now is a programming error.
func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler(1)
	a := &nopActor{name: "a"}
	s.Schedule(Microsecond, a, EventFunc("tick"))
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	s.Schedule(0, a, EventFunc("late"))
}

// TestAfterNegativePanics: After with a negative delay panics.
func TestAfterNegativePanics(t *testing.T) {
	s := NewScheduler(1)
	defer func() {
		if recover() == nil {
			t.Fatal("After with negative delay did not panic")
		}
	}()
	s.After(-Nanosecond, &nopActor{name: "a"}, EventFunc("x"))
}

// TestRunUntil: events at or before the deadline dispatch, later ones stay
// queued, and the clock lands exactly on the deadline.
func TestRunUntil(t *testing.T) {
	s := NewScheduler(1)
	a := &nopActor{name: "a"}
	s.Schedule(1*Millisecond, a, EventFunc("in1"))
	s.Schedule(2*Millisecond, a, EventFunc("in2"))
	s.Schedule(3*Millisecond, a, EventFunc("out"))
	s.RunUntil(2 * Millisecond)
	if got := s.Stats().Dispatched; got != 2 {
		t.Fatalf("dispatched %d events, want 2", got)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d events, want 1", s.Pending())
	}
	if s.Now() != 2*Millisecond {
		t.Fatalf("clock at %v, want 2ms", s.Now())
	}
}

// TestSchedulerStats: counters agree with the trace.
func TestSchedulerStats(t *testing.T) {
	trace, _ := runChained(11)
	var counts TraceCounts
	for _, te := range trace {
		switch te.Phase {
		case PhaseEnqueue:
			counts.Enqueued++
		case PhaseDispatch:
			counts.Dispatched++
		case PhaseComplete:
			counts.Completed++
		}
	}
	if counts.Enqueued != counts.Dispatched || counts.Dispatched != counts.Completed {
		t.Fatalf("unbalanced phases in a drained run: %+v", counts)
	}
}

// TestTraceRing: retention, wraparound, totals and snapshot order.
func TestTraceRing(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		r.Observe(TraceEvent{Phase: PhaseDispatch, Seq: uint64(i)})
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("Len/Cap = %d/%d, want 4/4", r.Len(), r.Cap())
	}
	snap := r.Snapshot()
	for i, te := range snap {
		if want := uint64(6 + i); te.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest-first)", i, te.Seq, want)
		}
	}
	if got := r.Totals(); got.Dispatched != 10 {
		t.Fatalf("Totals().Dispatched = %d, want 10", got.Dispatched)
	}
	r.Reset()
	if r.Len() != 0 || r.Totals() != (TraceCounts{}) {
		t.Fatal("Reset did not clear the ring")
	}
}

// TestTraceRingAsTap: a ring attached as a tap captures the scheduler's
// stream with matching totals.
func TestTraceRingAsTap(t *testing.T) {
	s := NewScheduler(5)
	ring := NewTraceRing(1024)
	s.Tap(ring)
	a := &chainActor{name: "chain", budget: 10}
	s.Schedule(0, a, EventFunc("start"))
	s.Run()
	stats := s.Stats()
	totals := ring.Totals()
	if totals.Enqueued != stats.Enqueued || totals.Dispatched != stats.Dispatched || totals.Completed != stats.Completed {
		t.Fatalf("ring totals %+v disagree with scheduler stats %+v", totals, stats)
	}
	if ring.Len() == 0 {
		t.Fatal("ring captured no events")
	}
}
