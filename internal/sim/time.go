// Package sim provides the primitive building blocks shared by every part of
// the cxlmem simulator: a picosecond-resolution simulated clock, a fast
// deterministic random number generator, and a fixed-step epoch runner used by
// the fluid (throughput-oriented) workload models.
//
// Everything in this package is deterministic: two runs with the same seed and
// parameters produce bit-identical results, which is what makes the
// paper-reproduction experiments stable enough to assert on in tests.
package sim

import (
	"fmt"
	"time"
)

// Time is a point or duration on the simulated clock, in picoseconds.
//
// Picoseconds (not nanoseconds) are used so that sub-nanosecond quantities —
// link slot occupancies, per-byte transfer times on a 32 GB/s PCIe link — stay
// exact integers and the simulation remains deterministic across platforms.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns t as a float64 count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a float64 count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t as a float64 count of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t as a float64 count of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromNanoseconds converts a float64 nanosecond quantity to a Time, rounding
// to the nearest picosecond.
func FromNanoseconds(ns float64) Time {
	if ns < 0 {
		return Time(ns*float64(Nanosecond) - 0.5)
	}
	return Time(ns*float64(Nanosecond) + 0.5)
}

// FromSeconds converts a float64 second quantity to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromDuration converts a standard library duration to a simulated Time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) * Nanosecond }

// String renders the time with an adaptive unit, e.g. "113.2ns" or "4.50ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.1fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.2fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Clock is a monotonically advancing simulated clock.
//
// The zero value is a clock at time zero, ready to use.
type Clock struct {
	now Time
}

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: simulated time never flows backwards.
func (c *Clock) Advance(d Time) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative duration %v", d))
	}
	c.now += d
	return c.now
}

// AdvanceTo moves the clock to t if t is in the future; it is a no-op when t
// is in the past (useful when merging per-core local clocks).
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to zero. Only intended for reusing a simulation
// harness between independent runs.
func (c *Clock) Reset() { c.now = 0 }
