package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		in   Time
		ns   float64
		us   float64
		ms   float64
		sec  float64
		name string
	}{
		{Nanosecond, 1, 0.001, 1e-6, 1e-9, "1ns"},
		{Microsecond, 1000, 1, 0.001, 1e-6, "1us"},
		{Millisecond, 1e6, 1000, 1, 0.001, "1ms"},
		{Second, 1e9, 1e6, 1000, 1, "1s"},
	}
	for _, c := range cases {
		if got := c.in.Nanoseconds(); got != c.ns {
			t.Errorf("%s: Nanoseconds = %v, want %v", c.name, got, c.ns)
		}
		if got := c.in.Microseconds(); got != c.us {
			t.Errorf("%s: Microseconds = %v, want %v", c.name, got, c.us)
		}
		if got := c.in.Milliseconds(); got != c.ms {
			t.Errorf("%s: Milliseconds = %v, want %v", c.name, got, c.ms)
		}
		if got := c.in.Seconds(); got != c.sec {
			t.Errorf("%s: Seconds = %v, want %v", c.name, got, c.sec)
		}
	}
}

func TestFromNanoseconds(t *testing.T) {
	if got := FromNanoseconds(1.5); got != 1500*Picosecond {
		t.Errorf("FromNanoseconds(1.5) = %v, want 1500ps", got)
	}
	if got := FromNanoseconds(-2); got != -2*Nanosecond {
		t.Errorf("FromNanoseconds(-2) = %v, want -2ns", got)
	}
}

func TestFromNanosecondsRoundTrip(t *testing.T) {
	f := func(ns uint32) bool {
		v := float64(ns)
		return FromNanoseconds(v).Nanoseconds() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromDuration(t *testing.T) {
	if got := FromDuration(3 * time.Microsecond); got != 3*Microsecond {
		t.Errorf("FromDuration(3us) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500 * Picosecond:       "500ps",
		1500 * Picosecond:      "1.5ns",
		2 * Microsecond:        "2.00us",
		3 * Millisecond:        "3.00ms",
		2 * Second:             "2.000s",
		-1500 * Picosecond:     "-1.5ns",
		110*Nanosecond + 200:   "110.2ns",
		4*Millisecond + 500000: "4.00ms",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock should start at 0, got %v", c.Now())
	}
	c.Advance(5 * Nanosecond)
	c.Advance(7 * Nanosecond)
	if c.Now() != 12*Nanosecond {
		t.Errorf("clock = %v, want 12ns", c.Now())
	}
	c.AdvanceTo(10 * Nanosecond) // in the past: no-op
	if c.Now() != 12*Nanosecond {
		t.Errorf("AdvanceTo past moved clock to %v", c.Now())
	}
	c.AdvanceTo(20 * Nanosecond)
	if c.Now() != 20*Nanosecond {
		t.Errorf("AdvanceTo future = %v, want 20ns", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Reset clock = %v, want 0", c.Now())
	}
}

func TestClockNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Advance(-1) should panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestRngDeterminism(t *testing.T) {
	a, b := NewRng(42), NewRng(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
	c := NewRng(43)
	same := 0
	a = NewRng(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d equal values in 1000 draws", same)
	}
}

func TestRngFloat64Range(t *testing.T) {
	r := NewRng(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRngIntnBounds(t *testing.T) {
	r := NewRng(9)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRngIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRng(1).Intn(0)
}

func TestRngExpMean(t *testing.T) {
	r := NewRng(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	mean := sum / n
	if math.Abs(mean-100) > 2 {
		t.Errorf("Exp(100) sample mean = %v, want ~100", mean)
	}
}

func TestRngNormalMoments(t *testing.T) {
	r := NewRng(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance = %v, want ~4", variance)
	}
}

func TestRngPerm(t *testing.T) {
	r := NewRng(17)
	p := r.Perm(100)
	seen := make(map[int]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate value %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatalf("Perm covered %d values, want 100", len(seen))
	}
}

func TestRngSplitIndependence(t *testing.T) {
	parent := NewRng(21)
	child := parent.Split()
	equal := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Errorf("split streams matched %d/1000 times", equal)
	}
}

func TestZipfBounds(t *testing.T) {
	r := NewRng(23)
	z := NewZipf(r, 1000, 0.99)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRng(29)
	z := NewZipf(r, 10000, 1.0)
	const n = 200000
	counts := make([]int, 10000)
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate rank 99 by roughly the zipf ratio.
	if counts[0] < counts[99]*20 {
		t.Errorf("zipf skew too flat: rank0=%d rank99=%d", counts[0], counts[99])
	}
	// The head (top 1%) should capture a large share of draws at s=1.
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	if frac := float64(head) / n; frac < 0.4 {
		t.Errorf("top-1%% of keys got %.2f of draws, want >= 0.40", frac)
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRng(31)
	for _, fn := range []func(){
		func() { NewZipf(r, 0, 1) },
		func() { NewZipf(r, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRunnerSteps(t *testing.T) {
	r := NewRunner(Millisecond)
	var indices []int
	var starts []Time
	for i := 0; i < 3; i++ {
		e := r.Step(func(e Epoch) {
			indices = append(indices, e.Index)
			starts = append(starts, e.Start)
		})
		if e.End() != e.Start+Millisecond {
			t.Errorf("epoch end = %v, want start+1ms", e.End())
		}
	}
	if r.Now() != 3*Millisecond {
		t.Errorf("runner time = %v, want 3ms", r.Now())
	}
	for i, idx := range indices {
		if idx != i {
			t.Errorf("epoch %d had index %d", i, idx)
		}
		if starts[i] != Time(i)*Millisecond {
			t.Errorf("epoch %d start = %v", i, starts[i])
		}
	}
}

func TestRunnerRunFor(t *testing.T) {
	r := NewRunner(Millisecond)
	n := 0
	r.RunFor(10*Millisecond, func(Epoch) { n++ })
	if n != 10 {
		t.Errorf("RunFor(10ms) ran %d epochs, want 10", n)
	}
}

func TestRunnerRunPredicate(t *testing.T) {
	r := NewRunner(Millisecond)
	n := 0
	r.Run(func() bool { return n < 5 }, func(Epoch) { n++ })
	if n != 5 {
		t.Errorf("Run executed %d epochs, want 5", n)
	}
}

func TestRunnerBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRunner(0) should panic")
		}
	}()
	NewRunner(0)
}
