package sim

import "sync"

// Phase classifies a trace event within an event's lifecycle.
type Phase uint8

// Event lifecycle phases, in the order a single event passes through them.
const (
	// PhaseEnqueue fires when Schedule/After accepts an event.
	PhaseEnqueue Phase = iota
	// PhaseDispatch fires when Step pops the event and advances the clock,
	// immediately before the actor's handler runs.
	PhaseDispatch
	// PhaseComplete fires after the actor's handler returns.
	PhaseComplete
)

// String returns the lowercase phase label used in traces and metrics.
func (p Phase) String() string {
	switch p {
	case PhaseEnqueue:
		return "enqueue"
	case PhaseDispatch:
		return "dispatch"
	case PhaseComplete:
		return "complete"
	default:
		return "unknown"
	}
}

// TraceEvent is one observation from a Scheduler tap.
type TraceEvent struct {
	// Phase is where in its lifecycle the event was observed.
	Phase Phase
	// Seq is the event's FIFO sequence number (unique per scheduled
	// occurrence, shared across its enqueue/dispatch/complete records).
	Seq uint64
	// At is the simulated time the event was scheduled for.
	At Time
	// Now is the simulated time of the observation itself: enqueue time for
	// PhaseEnqueue, dispatch time (== At) for the other phases.
	Now Time
	// Actor is the receiving actor's Name.
	Actor string
	// Kind is the event's Kind label.
	Kind string
}

// Tap observes scheduler trace events. Observe is called synchronously on
// the simulation goroutine; implementations that share state with other
// goroutines (like TraceRing) must do their own locking.
type Tap interface {
	// Observe receives one trace event.
	Observe(TraceEvent)
}

// TapFunc adapts a function to the Tap interface.
type TapFunc func(TraceEvent)

// Observe implements Tap.
func (f TapFunc) Observe(te TraceEvent) { f(te) }

// TraceCounts are cumulative per-phase totals from a TraceRing.
type TraceCounts struct {
	// Enqueued counts PhaseEnqueue observations.
	Enqueued uint64
	// Dispatched counts PhaseDispatch observations.
	Dispatched uint64
	// Completed counts PhaseComplete observations.
	Completed uint64
}

// TraceRing is a fixed-capacity, mutex-protected ring buffer of trace
// events plus cumulative per-phase totals. It retains the most recent Cap
// events; older ones are overwritten. It is safe for concurrent use, so a
// single ring can absorb a simulation's tap stream while HTTP handlers
// snapshot it (the /v1/trace + /metrics path in cxlserve).
type TraceRing struct {
	mu     sync.Mutex
	buf    []TraceEvent
	next   int
	filled bool
	counts TraceCounts
}

// NewTraceRing returns a ring retaining the most recent capacity events.
// Capacity is clamped to at least 1.
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]TraceEvent, capacity)}
}

// Observe implements Tap: the event is appended, overwriting the oldest
// retained event once the ring is full.
func (r *TraceRing) Observe(te TraceEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = te
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.filled = true
	}
	switch te.Phase {
	case PhaseEnqueue:
		r.counts.Enqueued++
	case PhaseDispatch:
		r.counts.Dispatched++
	case PhaseComplete:
		r.counts.Completed++
	}
}

// Cap returns the ring's capacity.
func (r *TraceRing) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Len returns the number of events currently retained.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.buf)
	}
	return r.next
}

// Totals returns cumulative per-phase counts (not bounded by capacity).
func (r *TraceRing) Totals() TraceCounts {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts
}

// Snapshot returns the retained events oldest-first as a fresh slice.
func (r *TraceRing) Snapshot() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		out := make([]TraceEvent, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Reset discards retained events and zeroes the totals.
func (r *TraceRing) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next = 0
	r.filled = false
	r.counts = TraceCounts{}
	for i := range r.buf {
		r.buf[i] = TraceEvent{}
	}
}
