package sim

// Epoch describes one fixed step of a fluid simulation. Throughput-oriented
// workload models (DLRM, SPEC surrogates, DSB) advance in epochs: within an
// epoch each actor declares a bandwidth demand, the memory devices resolve
// contention, and the actors book progress.
type Epoch struct {
	// Index is the zero-based epoch number.
	Index int
	// Start is the simulated time at the beginning of the epoch.
	Start Time
	// Length is the epoch duration.
	Length Time
}

// End returns the simulated time at the end of the epoch.
func (e Epoch) End() Time { return e.Start + e.Length }

// Runner drives a fluid simulation in fixed-length epochs.
type Runner struct {
	clock  Clock
	length Time
	index  int
}

// NewRunner creates a runner with the given epoch length. Typical workloads
// use 1 ms — long enough to amortize model overhead, short enough to resolve
// the 1 s Caption sampling interval with plenty of sub-samples.
func NewRunner(length Time) *Runner {
	if length <= 0 {
		panic("sim: non-positive epoch length")
	}
	return &Runner{length: length}
}

// Now returns the current simulated time.
func (r *Runner) Now() Time { return r.clock.Now() }

// Step runs one epoch by invoking fn with the epoch descriptor, then advances
// the clock. It returns the completed epoch.
func (r *Runner) Step(fn func(Epoch)) Epoch {
	e := Epoch{Index: r.index, Start: r.clock.Now(), Length: r.length}
	if fn != nil {
		fn(e)
	}
	r.clock.Advance(r.length)
	r.index++
	return e
}

// Run executes epochs until the predicate returns false. The predicate is
// evaluated before each epoch; fn is invoked for each executed epoch.
func (r *Runner) Run(keepGoing func() bool, fn func(Epoch)) {
	for keepGoing() {
		r.Step(fn)
	}
}

// RunFor executes epochs until the simulated clock has advanced by at least d
// from the point of call.
func (r *Runner) RunFor(d Time, fn func(Epoch)) {
	deadline := r.clock.Now() + d
	for r.clock.Now() < deadline {
		r.Step(fn)
	}
}
