package numa

import "testing"

// BenchmarkSpaceAlloc measures the end-to-end hot path of every workload
// build: bulk-placing pages through a weighted-interleave policy.
func BenchmarkSpaceAlloc(b *testing.B) {
	const pages = 100_000
	b.SetBytes(pages * PageBytes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSpace(twoNodes(), NewDDRCXLSplit(25))
		s.Alloc(pages)
	}
}

// BenchmarkSpaceAllocSequential is the same allocation forced through the
// page-at-a-time Policy interface — the pre-bulk baseline.
func BenchmarkSpaceAllocSequential(b *testing.B) {
	const pages = 100_000
	b.SetBytes(pages * PageBytes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSpace(twoNodes(), seqOnly{NewDDRCXLSplit(25)})
		s.Alloc(pages)
	}
}

// seqOnly hides the bulk interfaces of a policy.
type seqOnly struct{ p Policy }

func (s seqOnly) Next() int { return s.p.Next() }

// BenchmarkWeightedNextN measures the closed-form batch accounting alone.
func BenchmarkWeightedNextN(b *testing.B) {
	w := NewDDRCXLSplit(37)
	counts := make([]int64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.NextN(100_000, counts)
	}
}

// BenchmarkWeightedNext measures the page-at-a-time path for comparison.
func BenchmarkWeightedNext(b *testing.B) {
	w := NewDDRCXLSplit(37)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next()
	}
}

// BenchmarkPagesOnNode measures the indexed per-node page listing under a
// migration-heavy access pattern.
func BenchmarkPagesOnNode(b *testing.B) {
	s := NewSpace(twoNodes(), NewDDRCXLSplit(25))
	s.Alloc(100_000)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.AppendPagesOnNode(buf[:0], 1)
		s.Move(buf[i%len(buf)], i%2)
	}
}
