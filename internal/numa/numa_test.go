package numa

import (
	"math"
	"testing"
	"testing/quick"
)

func twoNodes() []*Node {
	return []*Node{
		{ID: 0, Name: "DDR5-L"},
		{ID: 1, Name: "CXL-A"},
	}
}

func TestMembind(t *testing.T) {
	s := NewSpace(twoNodes(), &Membind{Node: 1})
	s.Alloc(100)
	if s.PagesOn(1) != 100 || s.PagesOn(0) != 0 {
		t.Errorf("membind placed pages on wrong node: DDR=%d CXL=%d", s.PagesOn(0), s.PagesOn(1))
	}
	if s.Fraction(1) != 1 {
		t.Errorf("fraction = %v", s.Fraction(1))
	}
}

func TestPreferredSpillsOver(t *testing.T) {
	nodes := []*Node{
		{ID: 0, Name: "DDR5-L", CapacityPages: 10},
		{ID: 1, Name: "CXL-A"},
	}
	p := NewPreferred(nodes)
	s := NewSpace(nodes, p)
	s.Alloc(25)
	if s.PagesOn(0) != 10 {
		t.Errorf("preferred node got %d pages, want 10", s.PagesOn(0))
	}
	if s.PagesOn(1) != 15 {
		t.Errorf("fallback node got %d pages, want 15", s.PagesOn(1))
	}
}

func TestPreferredOvercommitsLastNode(t *testing.T) {
	nodes := []*Node{
		{ID: 0, Name: "a", CapacityPages: 1},
		{ID: 1, Name: "b", CapacityPages: 1},
	}
	p := NewPreferred(nodes)
	s := NewSpace(nodes, p)
	s.Alloc(5)
	if s.PagesOn(0) != 1 || s.PagesOn(1) != 4 {
		t.Errorf("overcommit distribution: %d/%d", s.PagesOn(0), s.PagesOn(1))
	}
}

func TestWeightedExactSplit(t *testing.T) {
	for _, pct := range []float64{0, 25, 50, 63, 75, 100} {
		w := NewDDRCXLSplit(pct)
		s := NewSpace(twoNodes(), w)
		s.Alloc(10000)
		got := s.Fraction(1) * 100
		if math.Abs(got-pct) > 0.5 {
			t.Errorf("cxl=%v%%: realized %v%%", pct, got)
		}
	}
}

func TestWeightedSmoothness(t *testing.T) {
	// The deterministic scheduler must not bunch allocations: for a 50:50
	// split, any window of 10 pages holds 5±1 per node.
	w := NewDDRCXLSplit(50)
	s := NewSpace(twoNodes(), w)
	s.Alloc(1000)
	for start := 0; start+10 <= 1000; start += 10 {
		cxl := 0
		for i := start; i < start+10; i++ {
			if s.NodeOfPage(i) == 1 {
				cxl++
			}
		}
		if cxl < 4 || cxl > 6 {
			t.Fatalf("window at %d has %d CXL pages, want 5±1", start, cxl)
		}
	}
}

func TestWeightedRuntimeChangeAffectsOnlyNewPages(t *testing.T) {
	w := NewDDRCXLSplit(0)
	s := NewSpace(twoNodes(), w)
	s.Alloc(100)
	if err := w.SetCXLPercent(100); err != nil {
		t.Fatal(err)
	}
	s.Alloc(100)
	if s.PagesOn(1) != 100 {
		t.Errorf("new pages on CXL = %d, want 100", s.PagesOn(1))
	}
	for i := 0; i < 100; i++ {
		if s.NodeOfPage(i) != 0 {
			t.Fatalf("old page %d moved", i)
		}
	}
}

func TestWeightedCXLPercent(t *testing.T) {
	w := NewDDRCXLSplit(37)
	if got := w.CXLPercent(); math.Abs(got-37) > 1e-9 {
		t.Errorf("CXLPercent = %v", got)
	}
	// Clamping.
	if err := w.SetCXLPercent(150); err != nil {
		t.Fatal(err)
	}
	if got := w.CXLPercent(); got != 100 {
		t.Errorf("clamped CXLPercent = %v", got)
	}
	if err := w.SetCXLPercent(-5); err != nil {
		t.Fatal(err)
	}
	if got := w.CXLPercent(); got != 0 {
		t.Errorf("clamped CXLPercent = %v", got)
	}
}

func TestWeightedValidation(t *testing.T) {
	if err := NewWeighted([]float64{1}).SetWeights(nil); err == nil {
		t.Error("empty weights should error")
	}
	if err := NewWeighted([]float64{1}).SetWeights([]float64{-1, 2}); err == nil {
		t.Error("negative weight should error")
	}
	if err := NewWeighted([]float64{1}).SetWeights([]float64{0, 0}); err == nil {
		t.Error("zero-sum weights should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewDDRCXLSplit(120) should panic")
		}
	}()
	NewDDRCXLSplit(120)
}

func TestWeightedSplitProperty(t *testing.T) {
	// Property: for any percentage, the realized split over 1000 pages is
	// within 1 page-percent of the requested split.
	f := func(pRaw uint8) bool {
		pct := float64(pRaw % 101)
		w := NewDDRCXLSplit(pct)
		s := NewSpace(twoNodes(), w)
		s.Alloc(1000)
		return math.Abs(s.Fraction(1)*100-pct) <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpaceAddressMapping(t *testing.T) {
	s := NewSpace(twoNodes(), &Membind{Node: 1})
	s.Alloc(4)
	if s.Pages() != 4 || s.Bytes() != 4*PageBytes {
		t.Errorf("pages=%d bytes=%d", s.Pages(), s.Bytes())
	}
	if s.NodeOfAddr(0) != 1 || s.NodeOfAddr(3*PageBytes+17) != 1 {
		t.Error("address mapping wrong")
	}
}

func TestSpaceMove(t *testing.T) {
	s := NewSpace(twoNodes(), &Membind{Node: 1})
	s.Alloc(10)
	s.Move(3, 0)
	if s.NodeOfPage(3) != 0 {
		t.Error("page did not move")
	}
	if s.PagesOn(0) != 1 || s.PagesOn(1) != 9 {
		t.Errorf("counts after move: %d/%d", s.PagesOn(0), s.PagesOn(1))
	}
	// Moving to the same node is a no-op.
	s.Move(3, 0)
	if s.PagesOn(0) != 1 {
		t.Error("same-node move changed counts")
	}
}

func TestSpaceMoveCountInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSpace(twoNodes(), NewDDRCXLSplit(50))
		s.Alloc(64)
		for _, op := range ops {
			page := int(op) % 64
			to := int(op>>8) % 2
			s.Move(page, to)
		}
		return s.PagesOn(0)+s.PagesOn(1) == 64 &&
			math.Abs(s.Fraction(0)+s.Fraction(1)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPagesOnNode(t *testing.T) {
	s := NewSpace(twoNodes(), NewDDRCXLSplit(50))
	s.Alloc(10)
	ddr := s.PagesOnNode(0)
	cxl := s.PagesOnNode(1)
	if len(ddr)+len(cxl) != 10 {
		t.Errorf("page lists cover %d pages", len(ddr)+len(cxl))
	}
	for _, p := range cxl {
		if s.NodeOfPage(p) != 1 {
			t.Errorf("page %d misclassified", p)
		}
	}
}

func TestSpaceValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"no nodes":    func() { NewSpace(nil, &Membind{}) },
		"sparse ids":  func() { NewSpace([]*Node{{ID: 5}}, &Membind{}) },
		"nil policy":  func() { NewSpace(twoNodes(), nil) },
		"neg alloc":   func() { s := NewSpace(twoNodes(), &Membind{}); s.Alloc(-1) },
		"bad move":    func() { s := NewSpace(twoNodes(), &Membind{}); s.Alloc(1); s.Move(0, 7) },
		"bad policy":  func() { s := NewSpace(twoNodes(), &Membind{Node: 9}); s.Alloc(1) },
		"set nil pol": func() { s := NewSpace(twoNodes(), &Membind{}); s.SetPolicy(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFractionEmptySpace(t *testing.T) {
	s := NewSpace(twoNodes(), &Membind{})
	if s.Fraction(0) != 0 {
		t.Error("empty space fraction should be 0")
	}
}
