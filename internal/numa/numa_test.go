package numa

import (
	"math"
	"testing"
	"testing/quick"
)

func twoNodes() []*Node {
	return []*Node{
		{ID: 0, Name: "DDR5-L"},
		{ID: 1, Name: "CXL-A"},
	}
}

func TestMembind(t *testing.T) {
	s := NewSpace(twoNodes(), &Membind{Node: 1})
	s.Alloc(100)
	if s.PagesOn(1) != 100 || s.PagesOn(0) != 0 {
		t.Errorf("membind placed pages on wrong node: DDR=%d CXL=%d", s.PagesOn(0), s.PagesOn(1))
	}
	if s.Fraction(1) != 1 {
		t.Errorf("fraction = %v", s.Fraction(1))
	}
}

func TestPreferredSpillsOver(t *testing.T) {
	nodes := []*Node{
		{ID: 0, Name: "DDR5-L", CapacityPages: 10},
		{ID: 1, Name: "CXL-A"},
	}
	p := NewPreferred(nodes)
	s := NewSpace(nodes, p)
	s.Alloc(25)
	if s.PagesOn(0) != 10 {
		t.Errorf("preferred node got %d pages, want 10", s.PagesOn(0))
	}
	if s.PagesOn(1) != 15 {
		t.Errorf("fallback node got %d pages, want 15", s.PagesOn(1))
	}
}

func TestPreferredOvercommitsLastNode(t *testing.T) {
	nodes := []*Node{
		{ID: 0, Name: "a", CapacityPages: 1},
		{ID: 1, Name: "b", CapacityPages: 1},
	}
	p := NewPreferred(nodes)
	s := NewSpace(nodes, p)
	s.Alloc(5)
	if s.PagesOn(0) != 1 || s.PagesOn(1) != 4 {
		t.Errorf("overcommit distribution: %d/%d", s.PagesOn(0), s.PagesOn(1))
	}
}

func TestWeightedExactSplit(t *testing.T) {
	for _, pct := range []float64{0, 25, 50, 63, 75, 100} {
		w := NewDDRCXLSplit(pct)
		s := NewSpace(twoNodes(), w)
		s.Alloc(10000)
		got := s.Fraction(1) * 100
		if math.Abs(got-pct) > 0.5 {
			t.Errorf("cxl=%v%%: realized %v%%", pct, got)
		}
	}
}

func TestWeightedSmoothness(t *testing.T) {
	// The deterministic scheduler must not bunch allocations: for a 50:50
	// split, any window of 10 pages holds 5±1 per node.
	w := NewDDRCXLSplit(50)
	s := NewSpace(twoNodes(), w)
	s.Alloc(1000)
	for start := 0; start+10 <= 1000; start += 10 {
		cxl := 0
		for i := start; i < start+10; i++ {
			if s.NodeOfPage(i) == 1 {
				cxl++
			}
		}
		if cxl < 4 || cxl > 6 {
			t.Fatalf("window at %d has %d CXL pages, want 5±1", start, cxl)
		}
	}
}

func TestWeightedRuntimeChangeAffectsOnlyNewPages(t *testing.T) {
	w := NewDDRCXLSplit(0)
	s := NewSpace(twoNodes(), w)
	s.Alloc(100)
	if err := w.SetCXLPercent(100); err != nil {
		t.Fatal(err)
	}
	s.Alloc(100)
	if s.PagesOn(1) != 100 {
		t.Errorf("new pages on CXL = %d, want 100", s.PagesOn(1))
	}
	for i := 0; i < 100; i++ {
		if s.NodeOfPage(i) != 0 {
			t.Fatalf("old page %d moved", i)
		}
	}
}

func TestWeightedCXLPercent(t *testing.T) {
	w := NewDDRCXLSplit(37)
	if got := w.CXLPercent(); math.Abs(got-37) > 1e-9 {
		t.Errorf("CXLPercent = %v", got)
	}
	// Clamping.
	if err := w.SetCXLPercent(150); err != nil {
		t.Fatal(err)
	}
	if got := w.CXLPercent(); got != 100 {
		t.Errorf("clamped CXLPercent = %v", got)
	}
	if err := w.SetCXLPercent(-5); err != nil {
		t.Fatal(err)
	}
	if got := w.CXLPercent(); got != 0 {
		t.Errorf("clamped CXLPercent = %v", got)
	}
}

func TestWeightedValidation(t *testing.T) {
	if err := NewWeighted([]float64{1}).SetWeights(nil); err == nil {
		t.Error("empty weights should error")
	}
	if err := NewWeighted([]float64{1}).SetWeights([]float64{-1, 2}); err == nil {
		t.Error("negative weight should error")
	}
	if err := NewWeighted([]float64{1}).SetWeights([]float64{0, 0}); err == nil {
		t.Error("zero-sum weights should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewDDRCXLSplit(120) should panic")
		}
	}()
	NewDDRCXLSplit(120)
}

func TestWeightedSplitProperty(t *testing.T) {
	// Property: for any percentage, the realized split over 1000 pages is
	// within 1 page-percent of the requested split.
	f := func(pRaw uint8) bool {
		pct := float64(pRaw % 101)
		w := NewDDRCXLSplit(pct)
		s := NewSpace(twoNodes(), w)
		s.Alloc(1000)
		return math.Abs(s.Fraction(1)*100-pct) <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpaceAddressMapping(t *testing.T) {
	s := NewSpace(twoNodes(), &Membind{Node: 1})
	s.Alloc(4)
	if s.Pages() != 4 || s.Bytes() != 4*PageBytes {
		t.Errorf("pages=%d bytes=%d", s.Pages(), s.Bytes())
	}
	if s.NodeOfAddr(0) != 1 || s.NodeOfAddr(3*PageBytes+17) != 1 {
		t.Error("address mapping wrong")
	}
}

func TestSpaceMove(t *testing.T) {
	s := NewSpace(twoNodes(), &Membind{Node: 1})
	s.Alloc(10)
	s.Move(3, 0)
	if s.NodeOfPage(3) != 0 {
		t.Error("page did not move")
	}
	if s.PagesOn(0) != 1 || s.PagesOn(1) != 9 {
		t.Errorf("counts after move: %d/%d", s.PagesOn(0), s.PagesOn(1))
	}
	// Moving to the same node is a no-op.
	s.Move(3, 0)
	if s.PagesOn(0) != 1 {
		t.Error("same-node move changed counts")
	}
}

func TestSpaceMoveCountInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSpace(twoNodes(), NewDDRCXLSplit(50))
		s.Alloc(64)
		for _, op := range ops {
			page := int(op) % 64
			to := int(op>>8) % 2
			s.Move(page, to)
		}
		return s.PagesOn(0)+s.PagesOn(1) == 64 &&
			math.Abs(s.Fraction(0)+s.Fraction(1)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPagesOnNode(t *testing.T) {
	s := NewSpace(twoNodes(), NewDDRCXLSplit(50))
	s.Alloc(10)
	ddr := s.PagesOnNode(0)
	cxl := s.PagesOnNode(1)
	if len(ddr)+len(cxl) != 10 {
		t.Errorf("page lists cover %d pages", len(ddr)+len(cxl))
	}
	for _, p := range cxl {
		if s.NodeOfPage(p) != 1 {
			t.Errorf("page %d misclassified", p)
		}
	}
}

func TestSpaceValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"no nodes":    func() { NewSpace(nil, &Membind{}) },
		"sparse ids":  func() { NewSpace([]*Node{{ID: 5}}, &Membind{}) },
		"nil policy":  func() { NewSpace(twoNodes(), nil) },
		"neg alloc":   func() { s := NewSpace(twoNodes(), &Membind{}); s.Alloc(-1) },
		"bad move":    func() { s := NewSpace(twoNodes(), &Membind{}); s.Alloc(1); s.Move(0, 7) },
		"bad policy":  func() { s := NewSpace(twoNodes(), &Membind{Node: 9}); s.Alloc(1) },
		"set nil pol": func() { s := NewSpace(twoNodes(), &Membind{}); s.SetPolicy(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFractionEmptySpace(t *testing.T) {
	s := NewSpace(twoNodes(), &Membind{})
	if s.Fraction(0) != 0 {
		t.Error("empty space fraction should be 0")
	}
}

// refWeighted mirrors a Weighted policy step by step through the public
// page-at-a-time interface; the bulk paths must reproduce it exactly.
func refCounts(w *Weighted, nodes, n int) []int64 {
	counts := make([]int64, nodes)
	for i := 0; i < n; i++ {
		counts[w.Next()]++
	}
	return counts
}

func TestWeightedTieBreakDeterminism(t *testing.T) {
	// Documented tie rule: equal credits go to the lowest node ID, so equal
	// weights degrade to plain round-robin starting at node 0.
	w := NewWeighted([]float64{1, 1, 1})
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	for i, wi := range want {
		if got := w.Next(); got != wi {
			t.Fatalf("step %d: got node %d, want %d", i, got, wi)
		}
	}
	// 2:1 from a fresh policy follows the documented smooth prefix.
	w = NewWeighted([]float64{2, 1})
	want = []int{0, 1, 0, 0, 1, 0}
	for i, wi := range want {
		if got := w.Next(); got != wi {
			t.Fatalf("2:1 step %d: got node %d, want %d", i, got, wi)
		}
	}
}

func TestWeightedNextNMatchesNext(t *testing.T) {
	// Property: NextN(n) produces exactly the per-node counts of n
	// sequential Next() calls, from any reachable state, for random weight
	// vectors — the closed form and the scheduler are the same algorithm.
	rng := newTestRng(42)
	for trial := 0; trial < 300; trial++ {
		nodes := 1 + int(rng.next()%6)
		weights := make([]float64, nodes)
		sum := 0.0
		for i := range weights {
			if rng.next()%5 == 0 {
				weights[i] = 0 // zero-weight nodes must never be chosen
			} else {
				weights[i] = float64(1 + rng.next()%1000)
			}
			sum += weights[i]
		}
		if sum == 0 {
			weights[0] = 3
		}
		a := NewWeighted(weights)
		b := NewWeighted(weights)
		// Random warm-up so the batch starts from a mid-schedule state.
		for i := uint64(0); i < rng.next()%50; i++ {
			a.Next()
			b.Next()
		}
		for batch := 0; batch < 4; batch++ {
			n := int(rng.next() % 5000)
			got := make([]int64, nodes)
			a.NextN(n, got)
			want := refCounts(b, nodes, n)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d weights %v batch %d n=%d: NextN=%v, sequential=%v",
						trial, weights, batch, n, got, want)
				}
			}
		}
		// The two schedulers must also land in the same state: their next
		// picks agree.
		for i := 0; i < 20; i++ {
			if ga, gb := a.Next(), b.Next(); ga != gb {
				t.Fatalf("trial %d: post-batch divergence %d vs %d", trial, ga, gb)
			}
		}
	}
}

func TestWeightedPlaceNMatchesNext(t *testing.T) {
	rng := newTestRng(7)
	for trial := 0; trial < 100; trial++ {
		nodes := 1 + int(rng.next()%5)
		weights := make([]float64, nodes)
		for i := range weights {
			weights[i] = float64(rng.next() % 100)
		}
		weights[int(rng.next()%uint64(nodes))] += 1 // ensure positive sum
		a := NewWeighted(weights)
		b := NewWeighted(weights)
		n := int(rng.next() % 2000)
		dst := make([]uint8, n)
		counts := make([]int64, nodes)
		a.PlaceN(dst, counts)
		var placed [8]int64
		for i, id := range dst {
			if want := b.Next(); int(id) != want {
				t.Fatalf("trial %d page %d: PlaceN chose %d, Next chose %d", trial, i, id, want)
			}
			placed[id]++
		}
		for i := range counts {
			if counts[i] != placed[i] {
				t.Fatalf("trial %d: counts %v disagree with placements %v", trial, counts, placed[:nodes])
			}
		}
	}
}

func TestWeightedRuntimeWeightChangeKeepsPhase(t *testing.T) {
	// SetWeights with the same node count preserves credits: the bulk and
	// sequential schedulers must still agree across the change.
	a := NewWeighted([]float64{3, 1})
	b := NewWeighted([]float64{3, 1})
	ca := make([]int64, 2)
	a.NextN(17, ca)
	refCounts(b, 2, 17)
	if err := a.SetWeights([]float64{1, 5}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetWeights([]float64{1, 5}); err != nil {
		t.Fatal(err)
	}
	got := make([]int64, 2)
	a.NextN(1000, got)
	want := refCounts(b, 2, 1000)
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("post-SetWeights counts %v != %v", got, want)
	}
}

func TestSpaceAllocBulkMatchesSequential(t *testing.T) {
	// Space.Alloc's bulk fill must place the identical per-page sequence a
	// page-at-a-time policy would, for all three built-in policies.
	type mk func() (Policy, Policy)
	cases := map[string]mk{
		"weighted": func() (Policy, Policy) { return NewDDRCXLSplit(37), NewDDRCXLSplit(37) },
		"membind":  func() (Policy, Policy) { return &Membind{Node: 1}, &Membind{Node: 1} },
		"preferred": func() (Policy, Policy) {
			n := []*Node{{ID: 0, Name: "a", CapacityPages: 100}, {ID: 1, Name: "b"}}
			return NewPreferred(n), NewPreferred(n)
		},
	}
	for name, make2 := range cases {
		bulkPol, seqPol := make2()
		bulk := NewSpace(twoNodes(), bulkPol)
		for _, n := range []int{1, 7, 250, 0, 64} {
			bulk.Alloc(n)
		}
		for i := 0; i < bulk.Pages(); i++ {
			if got, want := bulk.NodeOfPage(i), seqPol.Next(); got != want {
				t.Fatalf("%s: page %d on node %d, sequential policy says %d", name, i, got, want)
			}
		}
	}
}

func TestSpaceIndexStaysConsistentUnderMoves(t *testing.T) {
	s := NewSpace(twoNodes(), NewDDRCXLSplit(50))
	s.Alloc(200)
	_ = s.PagesOnNode(0) // force the index
	rng := newTestRng(3)
	for i := 0; i < 500; i++ {
		s.Move(int(rng.next()%200), int(rng.next()%2))
	}
	s.Alloc(50) // index must absorb post-build allocations too
	for node := 0; node < 2; node++ {
		pages := s.PagesOnNode(node)
		if int64(len(pages)) != s.PagesOn(node) {
			t.Fatalf("node %d: index has %d pages, counts say %d", node, len(pages), s.PagesOn(node))
		}
		for _, p := range pages {
			if s.NodeOfPage(p) != node {
				t.Fatalf("node %d: page %d misindexed", node, p)
			}
		}
	}
}

// testRng is a tiny local SplitMix64 so the tests don't depend on sim.
type testRng struct{ s uint64 }

func newTestRng(seed uint64) *testRng { return &testRng{s: seed} }

func (r *testRng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
