// Package numa models the OS view of the evaluated system's memory: NUMA
// nodes backed by memory devices, a paged address space, and the allocation
// policies the paper drives through numactl and the N:M weighted-interleave
// mempolicy patch (§5): membind, preferred, and weighted interleave with a
// runtime-adjustable percentage of pages allocated to CXL memory — the knob
// Caption turns.
//
// Allocation is the hot path of every experiment regeneration, so the
// policies expose a bulk interface alongside the page-at-a-time one (see
// DESIGN.md §4): BulkPolicy.NextN answers "how many of the next n pages land
// on each node" in closed form, and Placer.PlaceN materializes the exact
// per-page sequence with a single lock acquisition and no per-page
// interface dispatch. Space.Alloc uses the bulk path whenever the policy
// supports it.
package numa

import (
	"fmt"
	"sync"
)

// PageBytes is the OS page size.
const PageBytes = 4096

// Node is one NUMA node: a name and the device it is backed by. The zero
// node in every experiment is local DDR; CXL memory appears as a CPU-less
// node, exactly as the real kernel exposes it.
type Node struct {
	// ID is the node number used by policies.
	ID int
	// Name matches the backing device ("DDR5-L", "CXL-A", ...).
	Name string
	// CapacityPages bounds allocation; 0 means unbounded.
	CapacityPages int64
}

// Policy chooses the node for each newly allocated page.
type Policy interface {
	// Next returns the node ID for the next page allocation.
	Next() int
}

// BulkPolicy is a Policy that can account for a batch of allocations in one
// call. NextN advances the policy by exactly n steps and adds the number of
// pages each node received to counts (indexed by node ID); the result is
// identical to n sequential Next calls, but a policy may compute it in
// closed form — Weighted does so in O(nodes²·log n) with a single lock
// acquisition instead of O(n·nodes) with n lock acquisitions.
type BulkPolicy interface {
	Policy
	// NextN performs n allocation steps at once. counts must have at least
	// as many entries as the policy has nodes; per-node totals are added in
	// place.
	NextN(n int, counts []int64)
}

// Placer is an optional extension of BulkPolicy for policies whose exact
// per-page placement order matters (weighted interleave spreads pages
// smoothly; a block fill would change which addresses land on CXL). PlaceN
// writes the node ID of each of the next len(dst) pages into dst — the same
// sequence len(dst) Next calls would produce — and adds per-node totals to
// counts.
type Placer interface {
	Policy
	// PlaceN materializes the next len(dst) placements.
	PlaceN(dst []uint8, counts []int64)
}

// Membind always allocates from a single node (numactl --membind).
type Membind struct {
	// Node is the target node ID.
	Node int
}

// Next implements Policy.
func (m *Membind) Next() int { return m.Node }

// NextN implements BulkPolicy.
func (m *Membind) NextN(n int, counts []int64) {
	if n < 0 {
		panic("numa: negative bulk allocation")
	}
	counts[m.Node] += int64(n)
}

// PlaceN implements Placer.
func (m *Membind) PlaceN(dst []uint8, counts []int64) {
	id := uint8(m.Node)
	for i := range dst {
		dst[i] = id
	}
	counts[m.Node] += int64(len(dst))
}

// Preferred allocates from the preferred node until its capacity is
// exhausted, then falls back through the remaining order (numactl
// --preferred).
type Preferred struct {
	// Order lists node IDs from most to least preferred.
	Order []int
	// Remaining tracks per-node free pages, indexed by node ID.
	Remaining map[int]int64
}

// NewPreferred builds a preferred policy over the given nodes in order.
func NewPreferred(nodes []*Node) *Preferred {
	p := &Preferred{Remaining: make(map[int]int64)}
	for _, n := range nodes {
		p.Order = append(p.Order, n.ID)
		cap := n.CapacityPages
		if cap == 0 {
			cap = 1 << 62
		}
		p.Remaining[n.ID] = cap
	}
	return p
}

// Next implements Policy.
func (p *Preferred) Next() int {
	for _, id := range p.Order {
		if p.Remaining[id] > 0 {
			p.Remaining[id]--
			return id
		}
	}
	// Everything full: overcommit the last node, like the kernel falling
	// back to reclaim on the final candidate.
	return p.Order[len(p.Order)-1]
}

// NextN implements BulkPolicy: the preferred fill order is deterministic, so
// n steps drain the order front to back in one pass.
func (p *Preferred) NextN(n int, counts []int64) {
	if n < 0 {
		panic("numa: negative bulk allocation")
	}
	left := int64(n)
	for _, id := range p.Order {
		if left == 0 {
			return
		}
		take := p.Remaining[id]
		if take > left {
			take = left
		}
		if take > 0 {
			p.Remaining[id] -= take
			counts[id] += take
			left -= take
		}
	}
	if left > 0 { // overcommit the last candidate
		counts[p.Order[len(p.Order)-1]] += left
	}
}

// PlaceN implements Placer: the sequence is the same front-to-back drain.
func (p *Preferred) PlaceN(dst []uint8, counts []int64) {
	i := 0
	for _, id := range p.Order {
		if i == len(dst) {
			return
		}
		take := p.Remaining[id]
		if take > int64(len(dst)-i) {
			take = int64(len(dst) - i)
		}
		for k := int64(0); k < take; k++ {
			dst[i] = uint8(id)
			i++
		}
		p.Remaining[id] -= take
		counts[id] += take
	}
	if i < len(dst) {
		last := p.Order[len(p.Order)-1]
		counts[last] += int64(len(dst) - i)
		for ; i < len(dst); i++ {
			dst[i] = uint8(last)
		}
	}
}

// weightScale is the fixed-point resolution of Weighted: weights are stored
// as integer shares summing to weightScale, so scheduling is exact integer
// arithmetic (reproducible and closed-form computable). Requested weights
// are honored to within 1/weightScale of their normalized value.
const weightScale = 1 << 16

// Weighted implements the N:M weighted-interleave mempolicy (the kernel
// patch the paper uses to place, e.g., 25 % of pages on the CXL node). It is
// safe for concurrent use and the weights can be changed at runtime: changes
// affect only future allocations, exactly like the real mempolicy — this is
// the interface Caption's tuner drives.
//
// Scheduling is deterministic smooth weighted interleave with an exact
// closed form (the sequentialized Sainte-Laguë divisor method): node i's
// k-th page is scheduled at time ((k−½)·S − c_i)/w_i — S the fixed-point
// scale, w_i the node's integer share, c_i its credit — and every step picks
// the earliest pending time. Ties are broken toward the lowest node ID, and
// zero-weight nodes are never chosen. Over any window the realized split
// tracks the weights to within one page per node; equal weights degrade to
// plain round-robin starting at node 0. Next() and NextN(n) are the same
// schedule: folding a batch into the credits shifts every node's pending
// times by the same constant, so NextN(a+b) ≡ NextN(a);NextN(b) ≡ a+b
// single steps, exactly.
type Weighted struct {
	mu      sync.Mutex
	weights []int64   // fixed-point shares, sum == weightScale
	credit  []int64   // same fixed-point units
	norm    []float64 // normalized requested weights, for reporting
}

// NewWeighted creates a weighted-interleave policy over len(weights) nodes.
// Weights are relative; they must be non-negative with a positive sum.
func NewWeighted(weights []float64) *Weighted {
	w := &Weighted{}
	if err := w.SetWeights(weights); err != nil {
		panic(err)
	}
	return w
}

// NewDDRCXLSplit builds the common two-node policy with the given percentage
// of pages on the CXL node (node 1); the remainder goes to DDR (node 0).
func NewDDRCXLSplit(cxlPercent float64) *Weighted {
	if cxlPercent < 0 || cxlPercent > 100 {
		panic(fmt.Sprintf("numa: CXL percent %v out of [0,100]", cxlPercent))
	}
	return NewWeighted([]float64{100 - cxlPercent, cxlPercent})
}

// SetWeights atomically replaces the weights (future allocations only).
// Credits — and with them the smooth phase of the schedule — carry over when
// the node count is unchanged, as in the kernel mempolicy.
func (w *Weighted) SetWeights(weights []float64) error {
	if len(weights) == 0 {
		return fmt.Errorf("numa: empty weights")
	}
	sum := 0.0
	for i, v := range weights {
		if v < 0 {
			return fmt.Errorf("numa: negative weight %v at node %d", v, i)
		}
		sum += v
	}
	if sum <= 0 {
		return fmt.Errorf("numa: weights sum to zero")
	}
	norm := make([]float64, len(weights))
	for i, v := range weights {
		norm[i] = v / sum
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.norm = norm
	w.weights = quantize(norm, w.weights)
	if len(w.credit) != len(weights) {
		w.credit = make([]int64, len(weights))
	}
	return nil
}

// quantize converts normalized weights into integer shares summing to
// weightScale using largest-remainder rounding (ties toward the lowest node
// ID). A node keeps a zero share only if its requested weight rounds below
// half a share; every positive requested weight of at least 1/weightScale of
// the total is representable.
func quantize(norm []float64, reuse []int64) []int64 {
	out := reuse
	if len(out) != len(norm) {
		out = make([]int64, len(norm))
	}
	total := int64(0)
	rem := make([]float64, len(norm))
	for i, v := range norm {
		exact := v * weightScale
		fl := int64(exact)
		out[i] = fl
		rem[i] = exact - float64(fl)
		total += fl
	}
	for total < weightScale {
		best := -1
		for i, r := range rem {
			if norm[i] > 0 && (best < 0 || r > rem[best]) {
				best = i
			}
		}
		out[best]++
		rem[best] = -1
		total++
	}
	return out
}

// SetCXLPercent adjusts a two-node policy's CXL share (node 1).
func (w *Weighted) SetCXLPercent(p float64) error {
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	return w.SetWeights([]float64{100 - p, p})
}

// CXLPercent reports the current CXL share of a two-node policy.
func (w *Weighted) CXLPercent() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.norm) < 2 {
		return 0
	}
	return w.norm[1] * 100
}

// step performs one scheduling step: the node whose next pending time
// (weightScale − 2·credit)/(2·weight) is smallest wins, ties to the lowest
// node ID; then every credit grows by its weight and the winner is charged
// one whole share. Identical to NextN(1). Caller holds w.mu.
func (w *Weighted) step() int {
	best := -1
	var bestNum, bestW int64
	for i, wt := range w.weights {
		if wt == 0 {
			continue
		}
		num := weightScale - 2*w.credit[i]
		// x_i < x_best  ⟺  num_i·w_best < num_best·w_i (weights positive).
		if best < 0 || num*bestW < bestNum*wt {
			best, bestNum, bestW = i, num, wt
		}
	}
	for i, wt := range w.weights {
		w.credit[i] += wt
	}
	w.credit[best] -= weightScale
	return best
}

// Next implements Policy with deterministic earliest-deadline scheduling:
// over any window of allocations the realized split tracks the weights
// exactly (a smooth weighted round-robin rather than a random draw). Ties
// break to the lowest node ID.
func (w *Weighted) Next() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.step()
}

// maxBulk bounds one closed-form batch so every intermediate product fits
// int64 with weightScale-sized operands: rank() multiplies a
// (2·maxBulk·weightScale)-sized numerator by a weight.
const maxBulk = 1 << 28

// NextN implements BulkPolicy in closed form. The smooth-WRR schedule is the
// sequentialized Sainte-Laguë (Webster) divisor method: node i receives its
// k-th page at "time" ((k−½)·S − c_i)/w_i (S = weightScale, c_i the credit
// when the batch starts), and the n steps pick the n smallest such times,
// ties toward the lowest node ID. Counting how many of the n smallest times
// belong to each node is a rank selection over per-node arithmetic
// progressions — O(nodes²·log n) integer work and one lock acquisition,
// instead of n locked scans. The per-node counts and the credit update are
// bit-identical to n sequential Next calls (see TestWeightedNextNMatchesNext).
func (w *Weighted) NextN(n int, counts []int64) {
	if n < 0 {
		panic("numa: negative bulk allocation")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for n > maxBulk {
		w.bulkCounts(maxBulk, counts)
		n -= maxBulk
	}
	if n > 0 {
		w.bulkCounts(n, counts)
	}
}

// bulkCounts advances the schedule by n <= maxBulk steps. Caller holds w.mu.
// Every node's rank is computed against the batch's starting credits; the
// credit fold happens only once all counts are known.
func (w *Weighted) bulkCounts(n int, counts []int64) {
	var local [8]int64
	per := local[:0]
	if len(w.weights) > len(local) {
		per = make([]int64, 0, len(w.weights))
	}
	total := int64(0)
	for i := range w.weights {
		if w.weights[i] == 0 {
			per = append(per, 0)
			continue
		}
		// Binary search the largest k whose global rank is within n.
		lo, hi := int64(0), int64(n) // rank(lo) <= n < rank(hi+1) invariant
		for lo < hi {
			k := (lo + hi + 1) / 2
			if w.rank(i, k) <= int64(n) {
				lo = k
			} else {
				hi = k - 1
			}
		}
		per = append(per, lo)
		total += lo
	}
	if total != int64(n) {
		panic(fmt.Sprintf("numa: bulk schedule accounted %d of %d pages (weights=%v credits=%v)", total, n, w.weights, w.credit))
	}
	for i, k := range per {
		counts[i] += k
		w.credit[i] += int64(n)*w.weights[i] - k*weightScale
	}
}

// rank returns the 1-based position of node i's k-th allocation in the
// global schedule: the number of (node, seat) pairs scheduled no later than
// it. Node i's k-th seat has priority time ((2k−1)·S − 2c_i)/(2w_i); a pair
// of node j ranks earlier on a strictly smaller time, with exact ties going
// to the lower node ID. All comparisons are cross-multiplied integers.
func (w *Weighted) rank(i int, k int64) int64 {
	wi := w.weights[i]
	b := (2*k - 1) * weightScale // priority numerator of (i, k), times 2w_i...
	bi := b - 2*w.credit[i]      // ...shifted by node i's credit
	r := k
	for j, wj := range w.weights {
		if j == i || wj == 0 {
			continue
		}
		// Seats l of node j with ((2l−1)S − 2c_j)·w_i  ≤/<  bi·w_j.
		num := bi*wj + (weightScale+2*w.credit[j])*wi
		den := 2 * weightScale * wi
		if j > i {
			num-- // strict: ties rank after node i
		}
		if l := floorDiv(num, den); l > 0 {
			r += l
		}
	}
	return r
}

// floorDiv returns floor(a/b) for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// PlaceN implements Placer: the exact smooth-WRR sequence, materialized with
// one lock acquisition and a tight integer loop (the two-node DDR:CXL case —
// every application experiment — runs branch-light and inlined).
func (w *Weighted) PlaceN(dst []uint8, counts []int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.weights) == 2 {
		w0, w1 := w.weights[0], w.weights[1]
		c0, c1 := w.credit[0], w.credit[1]
		var n1 int64
		switch {
		case w1 == 0:
			for i := range dst {
				dst[i] = 0
			}
		case w0 == 0:
			for i := range dst {
				dst[i] = 1
			}
			n1 = int64(len(dst))
		default:
			for i := range dst {
				// Node 1 wins on a strictly earlier pending time; ties go
				// to node 0 (same rule as step, specialized to two nodes).
				if (weightScale-2*c1)*w0 < (weightScale-2*c0)*w1 {
					dst[i] = 1
					c0 += w0
					c1 += w1 - weightScale
					n1++
				} else {
					dst[i] = 0
					c0 += w0 - weightScale
					c1 += w1
				}
			}
		}
		w.credit[0], w.credit[1] = c0, c1
		counts[0] += int64(len(dst)) - n1
		counts[1] += n1
		return
	}
	for i := range dst {
		id := w.step()
		dst[i] = uint8(id)
		counts[id]++
	}
}

// Space is a paged address space with per-page node placement.
type Space struct {
	nodes  []*Node
	policy Policy
	pages  []uint8 // node ID per page
	counts []int64 // pages per node

	// byNode holds per-node page indices, built lazily on the first call
	// that needs them (migration policies) and maintained incrementally
	// afterwards; pos is each page's position within its node's list.
	byNode [][]int32
	pos    []int32
}

// NewSpace creates an empty address space over the given nodes with the
// given allocation policy.
func NewSpace(nodes []*Node, policy Policy) *Space {
	if len(nodes) == 0 || len(nodes) > 256 {
		panic("numa: need between 1 and 256 nodes")
	}
	for i, n := range nodes {
		if n.ID != i {
			panic(fmt.Sprintf("numa: node %d has ID %d; IDs must be dense", i, n.ID))
		}
	}
	if policy == nil {
		panic("numa: nil policy")
	}
	return &Space{nodes: nodes, policy: policy, counts: make([]int64, len(nodes))}
}

// Nodes returns the node set.
func (s *Space) Nodes() []*Node { return s.nodes }

// SetPolicy replaces the allocation policy for future allocations.
func (s *Space) SetPolicy(p Policy) {
	if p == nil {
		panic("numa: nil policy")
	}
	s.policy = p
}

// Alloc extends the space by n pages placed per the policy and returns the
// index of the first new page. The page store is grown once; placement takes
// the policy's bulk path when available (Placer, then BulkPolicy) and falls
// back to per-page Next calls otherwise.
func (s *Space) Alloc(n int) int {
	if n < 0 {
		panic("numa: negative allocation")
	}
	first := len(s.pages)
	if cap(s.pages) < first+n {
		// One allocation for the batch, with doubling headroom so
		// incremental callers keep append's amortized O(1) growth.
		newCap := first + n
		if doubled := 2 * cap(s.pages); doubled > newCap {
			newCap = doubled
		}
		grown := make([]uint8, first, newCap)
		copy(grown, s.pages)
		s.pages = grown
	}
	s.pages = s.pages[: first+n : cap(s.pages)]
	dst := s.pages[first:]

	switch p := s.policy.(type) {
	case Placer:
		p.PlaceN(dst, s.counts)
		// Keep the sequential path's invariant: a misbehaving policy gets
		// a named panic here, not a far-away index corruption.
		for _, id := range dst {
			if int(id) >= len(s.nodes) {
				panic(fmt.Sprintf("numa: policy placed invalid node %d", id))
			}
		}
	case BulkPolicy:
		// Totals-only policy: materialize in ascending node order.
		batch := make([]int64, len(s.nodes))
		p.NextN(n, batch)
		i := 0
		for id, c := range batch {
			if c < 0 || c > int64(n-i) {
				panic(fmt.Sprintf("numa: policy returned invalid count %d for node %d", c, id))
			}
			s.counts[id] += c
			for ; c > 0; c-- {
				dst[i] = uint8(id)
				i++
			}
		}
		if i != n {
			panic(fmt.Sprintf("numa: policy accounted %d of %d pages", i, n))
		}
	default:
		for i := range dst {
			id := s.policy.Next()
			if id < 0 || id >= len(s.nodes) {
				panic(fmt.Sprintf("numa: policy returned invalid node %d", id))
			}
			dst[i] = uint8(id)
			s.counts[id]++
		}
	}
	if s.byNode != nil {
		s.indexPages(first)
	}
	return first
}

// Pages returns the number of allocated pages.
func (s *Space) Pages() int { return len(s.pages) }

// Bytes returns the allocated bytes.
func (s *Space) Bytes() int64 { return int64(len(s.pages)) * PageBytes }

// NodeOfPage returns the node holding page i.
func (s *Space) NodeOfPage(i int) int {
	return int(s.pages[i])
}

// NodeOfAddr returns the node holding the byte address (addresses start at 0).
func (s *Space) NodeOfAddr(addr uint64) int {
	return s.NodeOfPage(int(addr / PageBytes))
}

// Fraction returns the fraction of pages on the given node (0 when empty).
func (s *Space) Fraction(node int) float64 {
	if len(s.pages) == 0 {
		return 0
	}
	return float64(s.counts[node]) / float64(len(s.pages))
}

// PagesOn returns the number of pages on the given node.
func (s *Space) PagesOn(node int) int64 { return s.counts[node] }

// Move migrates page i to the given node (the mechanism under TPP).
func (s *Space) Move(i, to int) {
	if to < 0 || to >= len(s.nodes) {
		panic(fmt.Sprintf("numa: move to invalid node %d", to))
	}
	from := int(s.pages[i])
	if from == to {
		return
	}
	s.pages[i] = uint8(to)
	s.counts[from]--
	s.counts[to]++
	if s.byNode != nil {
		// Swap-remove from the old node's list, append to the new one.
		list := s.byNode[from]
		p := s.pos[i]
		last := list[len(list)-1]
		list[p] = last
		s.pos[last] = p
		s.byNode[from] = list[:len(list)-1]
		s.pos[i] = int32(len(s.byNode[to]))
		s.byNode[to] = append(s.byNode[to], int32(i))
	}
}

// buildIndex constructs the per-node page lists from scratch.
func (s *Space) buildIndex() {
	s.byNode = make([][]int32, len(s.nodes))
	for id, c := range s.counts {
		s.byNode[id] = make([]int32, 0, c)
	}
	s.pos = make([]int32, 0, cap(s.pages))
	s.indexPages(0)
}

// indexPages appends pages [from, len) to the per-node lists.
func (s *Space) indexPages(from int) {
	for i := from; i < len(s.pages); i++ {
		id := s.pages[i]
		s.pos = append(s.pos, int32(len(s.byNode[id])))
		s.byNode[id] = append(s.byNode[id], int32(i))
	}
}

// AppendPagesOnNode appends the index of every page on the given node to dst
// and returns it — O(pages on node) from the maintained per-node index (the
// first call pays a one-time O(pages) index build). The order is arbitrary
// but deterministic. Migration policies pass a reused buffer to stay
// allocation-free across scans.
func (s *Space) AppendPagesOnNode(dst []int, node int) []int {
	if s.byNode == nil {
		s.buildIndex()
	}
	list := s.byNode[node]
	if need := len(dst) + len(list); cap(dst) < need {
		grown := make([]int, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for _, p := range list {
		dst = append(dst, int(p))
	}
	return dst
}

// PagesOnNode returns the indices of every page on the given node.
func (s *Space) PagesOnNode(node int) []int {
	return s.AppendPagesOnNode(nil, node)
}
