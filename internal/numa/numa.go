// Package numa models the OS view of the evaluated system's memory: NUMA
// nodes backed by memory devices, a paged address space, and the allocation
// policies the paper drives through numactl and the N:M weighted-interleave
// mempolicy patch (§5): membind, preferred, and weighted interleave with a
// runtime-adjustable percentage of pages allocated to CXL memory — the knob
// Caption turns.
package numa

import (
	"fmt"
	"sync"
)

// PageBytes is the OS page size.
const PageBytes = 4096

// Node is one NUMA node: a name and the device it is backed by. The zero
// node in every experiment is local DDR; CXL memory appears as a CPU-less
// node, exactly as the real kernel exposes it.
type Node struct {
	// ID is the node number used by policies.
	ID int
	// Name matches the backing device ("DDR5-L", "CXL-A", ...).
	Name string
	// CapacityPages bounds allocation; 0 means unbounded.
	CapacityPages int64
}

// Policy chooses the node for each newly allocated page.
type Policy interface {
	// Next returns the node ID for the next page allocation.
	Next() int
}

// Membind always allocates from a single node (numactl --membind).
type Membind struct {
	// Node is the target node ID.
	Node int
}

// Next implements Policy.
func (m *Membind) Next() int { return m.Node }

// Preferred allocates from the preferred node until its capacity is
// exhausted, then falls back through the remaining order (numactl
// --preferred).
type Preferred struct {
	// Order lists node IDs from most to least preferred.
	Order []int
	// Remaining tracks per-node free pages, indexed by node ID.
	Remaining map[int]int64
}

// NewPreferred builds a preferred policy over the given nodes in order.
func NewPreferred(nodes []*Node) *Preferred {
	p := &Preferred{Remaining: make(map[int]int64)}
	for _, n := range nodes {
		p.Order = append(p.Order, n.ID)
		cap := n.CapacityPages
		if cap == 0 {
			cap = 1 << 62
		}
		p.Remaining[n.ID] = cap
	}
	return p
}

// Next implements Policy.
func (p *Preferred) Next() int {
	for _, id := range p.Order {
		if p.Remaining[id] > 0 {
			p.Remaining[id]--
			return id
		}
	}
	// Everything full: overcommit the last node, like the kernel falling
	// back to reclaim on the final candidate.
	return p.Order[len(p.Order)-1]
}

// Weighted implements the N:M weighted-interleave mempolicy (the kernel
// patch the paper uses to place, e.g., 25 % of pages on the CXL node). It is
// safe for concurrent use and the weights can be changed at runtime: changes
// affect only future allocations, exactly like the real mempolicy — this is
// the interface Caption's tuner drives.
type Weighted struct {
	mu      sync.Mutex
	weights []float64
	credit  []float64
}

// NewWeighted creates a weighted-interleave policy over len(weights) nodes.
// Weights are relative; they must be non-negative with a positive sum.
func NewWeighted(weights []float64) *Weighted {
	w := &Weighted{}
	if err := w.SetWeights(weights); err != nil {
		panic(err)
	}
	return w
}

// NewDDRCXLSplit builds the common two-node policy with the given percentage
// of pages on the CXL node (node 1); the remainder goes to DDR (node 0).
func NewDDRCXLSplit(cxlPercent float64) *Weighted {
	if cxlPercent < 0 || cxlPercent > 100 {
		panic(fmt.Sprintf("numa: CXL percent %v out of [0,100]", cxlPercent))
	}
	return NewWeighted([]float64{100 - cxlPercent, cxlPercent})
}

// SetWeights atomically replaces the weights (future allocations only).
func (w *Weighted) SetWeights(weights []float64) error {
	if len(weights) == 0 {
		return fmt.Errorf("numa: empty weights")
	}
	sum := 0.0
	for i, v := range weights {
		if v < 0 {
			return fmt.Errorf("numa: negative weight %v at node %d", v, i)
		}
		sum += v
	}
	if sum <= 0 {
		return fmt.Errorf("numa: weights sum to zero")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.weights = make([]float64, len(weights))
	for i, v := range weights {
		w.weights[i] = v / sum
	}
	if len(w.credit) != len(weights) {
		w.credit = make([]float64, len(weights))
	}
	return nil
}

// SetCXLPercent adjusts a two-node policy's CXL share (node 1).
func (w *Weighted) SetCXLPercent(p float64) error {
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	return w.SetWeights([]float64{100 - p, p})
}

// CXLPercent reports the current CXL share of a two-node policy.
func (w *Weighted) CXLPercent() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.weights) < 2 {
		return 0
	}
	return w.weights[1] * 100
}

// Next implements Policy with deterministic largest-credit scheduling: over
// any window of allocations the realized split tracks the weights exactly
// (a smooth weighted round-robin rather than a random draw).
func (w *Weighted) Next() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	best := -1
	for i := range w.weights {
		w.credit[i] += w.weights[i]
		if w.weights[i] > 0 && (best < 0 || w.credit[i] > w.credit[best]) {
			best = i
		}
	}
	w.credit[best]--
	return best
}

// Space is a paged address space with per-page node placement.
type Space struct {
	nodes  []*Node
	policy Policy
	pages  []uint8 // node ID per page
	counts []int64 // pages per node
}

// NewSpace creates an empty address space over the given nodes with the
// given allocation policy.
func NewSpace(nodes []*Node, policy Policy) *Space {
	if len(nodes) == 0 || len(nodes) > 256 {
		panic("numa: need between 1 and 256 nodes")
	}
	for i, n := range nodes {
		if n.ID != i {
			panic(fmt.Sprintf("numa: node %d has ID %d; IDs must be dense", i, n.ID))
		}
	}
	if policy == nil {
		panic("numa: nil policy")
	}
	return &Space{nodes: nodes, policy: policy, counts: make([]int64, len(nodes))}
}

// Nodes returns the node set.
func (s *Space) Nodes() []*Node { return s.nodes }

// SetPolicy replaces the allocation policy for future allocations.
func (s *Space) SetPolicy(p Policy) {
	if p == nil {
		panic("numa: nil policy")
	}
	s.policy = p
}

// Alloc extends the space by n pages placed per the policy and returns the
// index of the first new page.
func (s *Space) Alloc(n int) int {
	if n < 0 {
		panic("numa: negative allocation")
	}
	first := len(s.pages)
	for i := 0; i < n; i++ {
		id := s.policy.Next()
		if id < 0 || id >= len(s.nodes) {
			panic(fmt.Sprintf("numa: policy returned invalid node %d", id))
		}
		s.pages = append(s.pages, uint8(id))
		s.counts[id]++
	}
	return first
}

// Pages returns the number of allocated pages.
func (s *Space) Pages() int { return len(s.pages) }

// Bytes returns the allocated bytes.
func (s *Space) Bytes() int64 { return int64(len(s.pages)) * PageBytes }

// NodeOfPage returns the node holding page i.
func (s *Space) NodeOfPage(i int) int {
	return int(s.pages[i])
}

// NodeOfAddr returns the node holding the byte address (addresses start at 0).
func (s *Space) NodeOfAddr(addr uint64) int {
	return s.NodeOfPage(int(addr / PageBytes))
}

// Fraction returns the fraction of pages on the given node (0 when empty).
func (s *Space) Fraction(node int) float64 {
	if len(s.pages) == 0 {
		return 0
	}
	return float64(s.counts[node]) / float64(len(s.pages))
}

// PagesOn returns the number of pages on the given node.
func (s *Space) PagesOn(node int) int64 { return s.counts[node] }

// Move migrates page i to the given node (the mechanism under TPP).
func (s *Space) Move(i, to int) {
	if to < 0 || to >= len(s.nodes) {
		panic(fmt.Sprintf("numa: move to invalid node %d", to))
	}
	from := int(s.pages[i])
	if from == to {
		return
	}
	s.pages[i] = uint8(to)
	s.counts[from]--
	s.counts[to]++
}

// PagesOnNode returns the indices of every page on the given node —
// O(pages); used by migration policies, not hot paths.
func (s *Space) PagesOnNode(node int) []int {
	var out []int
	for i, p := range s.pages {
		if int(p) == node {
			out = append(out, i)
		}
	}
	return out
}
