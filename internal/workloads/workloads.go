// Package workloads unifies the paper's seven application models (DLRM,
// DeathStarBench, fio, the fluid bandwidth solver, the Redis kvstore,
// SPECrate surrogates, and YCSB) behind one composable interface.
//
// Historically each model under internal/workloads/* exposed its own
// bespoke entry point and only the hard-coded experiment drivers could run
// it. This package turns every model into a Workload: a named, describable
// unit with variants, a default Config, and a uniform Run signature that
// returns ordered Metrics. New scenarios become data — a one-line spec
// string (see Scenario) — instead of code, matching the uniform workload
// front-ends of CXL-DMSim and CXLRAMSim.
//
// The layering rule: this parent package may import the per-model
// subpackages (internal/workloads/dlrm, .../ycsb, ...), never the other way
// around, so the models stay import-cycle-free and usable on their own.
// Adapters live in adapters.go; the registry in registry.go; the scenario
// spec language in scenario.go.
package workloads

import (
	"fmt"

	"cxlmem/internal/results"
	"cxlmem/internal/topo"
)

// Env is the execution environment handed to every workload run: the
// simulated system plus the cross-cutting run options the experiment layer
// already understands.
type Env struct {
	// Sys is the simulated system the workload runs on.
	Sys *topo.System
	// Platform is the registered platform profile Sys was built from
	// (topo.DefaultPlatform for the paper's Table-1 machine).
	Platform string
	// Quick reduces sample counts the same way experiments.Options.Quick
	// does; adapters scale their operation counts through ScaleOps.
	Quick bool
	// FastWarmup selects convergence-based cache warmup for workloads that
	// simulate cache state (plumbed from PR 2's mlc.WarmupConverged; the
	// current seven models are analytic or trace-driven and ignore it, but
	// the knob rides along so cache-simulating workloads inherit it).
	FastWarmup bool
	// Seed perturbs the stochastic components; 0 keeps each workload's
	// calibrated default.
	Seed uint64
}

// NewEnv builds an environment over the paper's §5 application setup — the
// default platform profile.
func NewEnv() *Env {
	return &Env{Sys: topo.NewSystem(topo.DefaultConfig()), Platform: topo.DefaultPlatform}
}

// NewEnvOn builds an environment over the named platform profile; an empty
// name selects the default platform.
func NewEnvOn(platform string) (*Env, error) {
	if platform == "" || platform == topo.DefaultPlatform {
		return NewEnv(), nil
	}
	sys, err := topo.BuildPlatform(platform)
	if err != nil {
		return nil, err
	}
	return &Env{Sys: sys, Platform: platform}, nil
}

// ForPlatform returns an environment on the named platform carrying e's run
// options: e itself when the name is empty or already e's platform,
// otherwise a copy whose system is built fresh from the profile.
func (e *Env) ForPlatform(platform string) (*Env, error) {
	if platform == "" || platform == e.Platform {
		return e, nil
	}
	sys, err := topo.BuildPlatform(platform)
	if err != nil {
		return nil, err
	}
	ne := *e
	ne.Sys = sys
	ne.Platform = platform
	return &ne, nil
}

// ScaleOps reduces an operation count in quick mode, mirroring
// experiments.Options.scale so matrix cells stay cheap under the golden
// corpus and CI.
func (e *Env) ScaleOps(n int) int {
	if e != nil && e.Quick {
		n /= 10
		if n < 100 {
			n = 100
		}
	}
	return n
}

// seed resolves the effective seed: the config's if set, else the env's,
// else the workload's calibrated fallback.
func (e *Env) seed(cfg Config, fallback uint64) uint64 {
	if cfg.Seed != 0 {
		return cfg.Seed
	}
	if e != nil && e.Seed != 0 {
		return e.Seed
	}
	return fallback
}

// Config is the generic knob set shared by every workload. A workload's
// DefaultConfig fills the knobs it honors; Scenario overrides map onto the
// same fields. Zero values mean "use the workload default".
type Config struct {
	// Variant selects a workload-specific mode: a YCSB letter, a DSB
	// request type, a fio block size, a SPEC mix, a DLRM SNC scenario.
	Variant string
	// Device names the CXL device backing the scenario's far memory.
	Device string
	// CXLPercent is the share of pages (or the tier placement, for DSB)
	// steered to the CXL device, 0..100 — the paper's weighted-interleave
	// knob.
	CXLPercent float64
	// SizeBytes overrides the workload's working-set size; 0 keeps the
	// calibrated default.
	SizeBytes int64
	// TargetQPS is the offered load for latency-oriented workloads.
	TargetQPS float64
	// Threads is the compute parallelism for throughput-oriented workloads
	// (DLRM threads, SPEC instances, fluid MLP streams).
	Threads int
	// Ops is the operation/sample count before quick-mode scaling.
	Ops int
	// Seed perturbs the stochastic components; 0 keeps the default.
	Seed uint64
}

// Metric is one named measurement of a workload run.
type Metric struct {
	// Name identifies the measurement ("p99_us", "max_qps", ...).
	Name string
	// Value is the measurement in Unit.
	Value float64
	// Unit is the human-readable unit ("us", "qps", "GB/s", ...).
	Unit string
}

// Metrics is an ordered list of measurements. Order is part of the
// contract: the first metric is the workload's primary figure of merit and
// tables render metrics in insertion order, keeping golden files stable.
type Metrics struct {
	// Items holds the measurements in insertion order.
	Items []Metric
}

// Add appends one measurement.
func (m *Metrics) Add(name string, value float64, unit string) {
	m.Items = append(m.Items, Metric{Name: name, Value: value, Unit: unit})
}

// Primary returns the first (headline) metric, or a zero Metric when empty.
func (m Metrics) Primary() Metric {
	if len(m.Items) == 0 {
		return Metric{}
	}
	return m.Items[0]
}

// Dataset converts the ordered metrics into a typed results.Dataset — one
// row per metric in insertion order, values kept at full precision. This is
// the structured form the emitter layer (results: text/json/csv) and the
// cxlserve scenario endpoint render from; callers stamp provenance on the
// returned dataset.
func (m Metrics) Dataset(id, title string) *results.Dataset {
	d := results.New(id, title,
		results.Column{Name: "Metric"}, results.Column{Name: "Value"}, results.Column{Name: "Unit"})
	for _, it := range m.Items {
		d.AddRow(results.Str(it.Name), results.Num(it.Value, 2), results.Str(it.Unit))
	}
	return d
}

// MetricsFromDataset inverts Metrics.Dataset: it recovers the ordered
// metric list from a per-metric dataset (the /v1/scenario wire form). The
// JSON emitter is lossless, so a round trip through a remote replica
// preserves every value bit-for-bit — the property the cluster
// coordinator's byte-identical merge relies on.
func MetricsFromDataset(d *results.Dataset) (Metrics, error) {
	var m Metrics
	for i, row := range d.Rows {
		if len(row) != 3 {
			return Metrics{}, fmt.Errorf("workloads: dataset %q row %d has %d cells, want 3 (Metric, Value, Unit)", d.ID, i, len(row))
		}
		v, ok := row[1].Value()
		if !ok {
			return Metrics{}, fmt.Errorf("workloads: dataset %q row %d value cell is not numeric", d.ID, i)
		}
		m.Add(row[0].Str, v, row[2].Str)
	}
	return m, nil
}

// Get looks a measurement up by name.
func (m Metrics) Get(name string) (float64, bool) {
	for _, it := range m.Items {
		if it.Name == name {
			return it.Value, true
		}
	}
	return 0, false
}

// Workload is one runnable application model.
type Workload interface {
	// Name is the registry key ("ycsb", "dlrm", ...).
	Name() string
	// Desc is a one-line description with the paper anchor.
	Desc() string
	// Variants lists the accepted Config.Variant values, canonical name
	// first; aliases are resolved by the workload's Run.
	Variants() []string
	// DefaultConfig returns a runnable calibrated configuration.
	DefaultConfig() Config
	// Run executes the workload under env with the given configuration and
	// returns its metrics. Implementations must be deterministic for a
	// fixed (env, cfg) and safe for concurrent use with distinct envs.
	Run(env *Env, cfg Config) (Metrics, error)
}

// errUnknownVariant formats the shared unknown-variant failure.
func errUnknownVariant(workload, variant string, accepted []string) error {
	return fmt.Errorf("workloads: %s has no variant %q (accepted: %v)", workload, variant, accepted)
}
