package fio

import (
	"testing"

	"cxlmem/internal/topo"
)

func TestHitRateCalibration(t *testing.T) {
	cfg := DefaultConfig()
	// Paper quotes 76% at 8 KB and 65% at 128 KB.
	if h := cfg.hitRate(8 << 10); h < 0.74 || h > 0.78 {
		t.Errorf("hit(8K) = %v, want ~0.76", h)
	}
	if h := cfg.hitRate(128 << 10); h < 0.63 || h > 0.67 {
		t.Errorf("hit(128K) = %v, want ~0.65", h)
	}
	// Monotone non-increasing with a floor.
	prev := 1.0
	for _, b := range BlockSizes() {
		h := cfg.hitRate(b)
		if h > prev {
			t.Errorf("hit rate rose at %d", b)
		}
		prev = h
	}
}

// TestFig8Shape: the CXL p99 penalty is a few percent at 4–8 KB, shrinks in
// the storage-dominated middle, and grows again at 256 KB+.
func TestFig8Shape(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := DefaultConfig()
	var ddr, cxl []Result
	for _, b := range BlockSizes() {
		ddr = append(ddr, Run(sys, sys.DDRLocal, cfg, b, 40000))
		cxl = append(cxl, Run(sys, sys.Path("CXL-A"), cfg, b, 40000))
	}
	inc := make([]float64, len(ddr))
	for i := range ddr {
		inc[i] = (float64(cxl[i].P99)/float64(ddr[i].P99) - 1) * 100
		if inc[i] < 0 {
			t.Errorf("block %d: CXL p99 below DDR (%.2f%%)", ddr[i].BlockBytes, inc[i])
		}
	}
	// 4K and 8K: low-single-digit percent increases.
	if inc[0] < 0.5 || inc[0] > 8 {
		t.Errorf("4K increase = %.1f%%, want low single digits", inc[0])
	}
	// Middle (32–64K) lower than the small-block peak.
	if inc[3] >= inc[1] {
		t.Errorf("32K increase %.1f%% should be below 8K %.1f%% (storage dominates)", inc[3], inc[1])
	}
	// Large blocks: renewed rise from CXL write-bandwidth pressure.
	if inc[len(inc)-1] <= inc[3] {
		t.Errorf("512K increase %.1f%% should exceed 32K %.1f%%", inc[len(inc)-1], inc[3])
	}
}

func TestP99GrowsWithBlockSize(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := DefaultConfig()
	prev := 0.0
	for _, b := range []int{4 << 10, 64 << 10, 512 << 10} {
		r := Run(sys, sys.DDRLocal, cfg, b, 20000)
		if v := r.P99.Microseconds(); v <= prev {
			t.Errorf("p99 should grow with block size: %v at %d", v, b)
		} else {
			prev = v
		}
	}
}

func TestDeterminism(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	a := Run(sys, sys.DDRLocal, DefaultConfig(), 8<<10, 5000)
	b := Run(sys, sys.DDRLocal, DefaultConfig(), 8<<10, 5000)
	if a.P99 != b.P99 {
		t.Error("same-seed runs diverged")
	}
}

func TestRunPanics(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	for name, fn := range map[string]func(){
		"block": func() { Run(sys, sys.DDRLocal, DefaultConfig(), 1024, 10) },
		"ios":   func() { Run(sys, sys.DDRLocal, DefaultConfig(), 4096, 0) },
		"cfg":   func() { Run(sys, sys.DDRLocal, Config{}, 4096, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
