// Package fio models the FIO storage-benchmark experiment of §5.1 (Fig. 8):
// random reads with a zipfian offset distribution through the Linux page
// cache, with the 4 GB page cache placed on either DDR or CXL memory.
//
// The latency anatomy per I/O:
//
//   - kernel path: syscall, page-cache lookup, file-system and block-layer
//     work — dominant for small blocks;
//   - hit path: copy the block out of page-cache memory (device-dependent);
//   - miss path: storage access (DDIO injects the data into the LLC, so the
//     memory device is mostly bypassed), plus — for large blocks — page-cache
//     fill traffic that drains from the LLC into the cache's memory device,
//     where CXL's limited write bandwidth begins to bite.
//
// This reproduces the paper's shape: ~3 % p99 increase at 4 KB, ~4.5 % at
// 8 KB, a shrinking gap through the mid sizes as storage latency dominates,
// and a renewed rise beyond 128 KB.
package fio

import (
	"fmt"
	"sort"

	"cxlmem/internal/mem"
	"cxlmem/internal/sim"
	"cxlmem/internal/stats"
	"cxlmem/internal/topo"
)

// Config parameterizes the experiment.
type Config struct {
	// PageCacheBytes is the page cache size (paper: 4 GB).
	PageCacheBytes int64
	// FileBytes is the file set size.
	FileBytes int64
	// StorageLatency is the storage device's access latency.
	StorageLatency sim.Time
	// StorageGBs is the storage device's streaming bandwidth.
	StorageGBs float64
	// KernelBase is the fixed kernel cost per I/O.
	KernelBase sim.Time
	// KernelPerPage is the kernel cost per 4 KB page of the block.
	KernelPerPage sim.Time
	// KernelMemAccesses is the number of page-cache-metadata memory
	// accesses per I/O (radix tree, struct page) hitting the cache memory.
	KernelMemAccesses int
	// Seed drives the I/O generator.
	Seed uint64
}

// DefaultConfig mirrors the paper's setup: 4 GB page cache, zipfian access
// over a larger file set, NVMe-class storage.
func DefaultConfig() Config {
	return Config{
		PageCacheBytes:    4 << 30,
		FileBytes:         16 << 30,
		StorageLatency:    80 * sim.Microsecond,
		StorageGBs:        3.0,
		KernelBase:        12 * sim.Microsecond,
		KernelPerPage:     800 * sim.Nanosecond,
		KernelMemAccesses: 24,
		Seed:              17,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PageCacheBytes <= 0 || c.FileBytes <= 0 || c.StorageGBs <= 0 {
		return fmt.Errorf("fio: invalid config %+v", c)
	}
	return nil
}

// BlockSizes returns the swept block sizes of Fig. 8.
func BlockSizes() []int {
	return []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}
}

// BlockSizeByName resolves a scenario-spec block name ("4k" .. "512k") to
// its byte count; only the Fig. 8 sweep sizes are accepted.
func BlockSizeByName(name string) (int, error) {
	for _, b := range BlockSizes() {
		if name == fmt.Sprintf("%dk", b>>10) {
			return b, nil
		}
	}
	return 0, fmt.Errorf("fio: unknown block size %q (want 4k, 8k, ... 512k)", name)
}

// hitRate models the page-cache hit probability per I/O as a function of
// block size: small blocks enjoy the zipfian hot set; larger blocks span
// extents whose tails fall out of the cache. Calibrated to the paper's
// quoted points (76 % at 8 KB, 65 % at 128 KB).
func (c Config) hitRate(blockBytes int) float64 {
	base := 0.79 // 4 KB
	// -2.75 points per block-size doubling beyond 4 KB.
	steps := 0.0
	for b := 4 << 10; b < blockBytes; b *= 2 {
		steps++
	}
	h := base - 0.0275*steps
	if h < 0.4 {
		h = 0.4
	}
	return h
}

// Result is one Fig. 8 data point.
type Result struct {
	BlockBytes int
	P99        sim.Time
	HitRate    float64
}

// Run measures the latency distribution of ios random reads of blockBytes
// with the page cache on the device behind cachePath.
func Run(sys *topo.System, cachePath *topo.Path, cfg Config, blockBytes, ios int) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if blockBytes < 4096 || ios <= 0 {
		panic("fio: invalid block size or I/O count")
	}
	rng := sim.NewRng(cfg.Seed)
	pages := blockBytes / 4096
	h := cfg.hitRate(blockBytes)

	// Copy bandwidth out of the page cache: a single-core streaming read
	// bounded by the device's amortized per-line latency.
	copyGBs := 64.0 / cachePath.ParallelLatency(mem.Load).Nanoseconds() * topo.EffectiveMLP / 4.8
	// Page-cache fill writeback for large blocks: DDIO injects into the
	// LLC; beyond 128 KB the fills overflow and drain to the cache memory
	// at its store bandwidth.
	fillGBs := cachePath.Device.PeakGBs() * cachePath.Device.EffInstr(mem.Store)

	kernel := cfg.KernelBase + sim.Time(pages)*cfg.KernelPerPage +
		sim.Time(cfg.KernelMemAccesses)*cachePath.SerialLatency(mem.Load)

	lats := make([]float64, 0, ios)
	for i := 0; i < ios; i++ {
		var t sim.Time
		// Kernel cost with modest variability.
		t = sim.Time(float64(kernel) * (0.85 + 0.3*rng.Float64()))
		if rng.Float64() < h {
			// Hit: copy the block out of page-cache memory.
			t += sim.FromNanoseconds(float64(blockBytes) / copyGBs)
		} else {
			// Miss: storage access + transfer; DDIO targets the LLC.
			t += cfg.StorageLatency + sim.FromNanoseconds(float64(blockBytes)/cfg.StorageGBs)
			if blockBytes >= 128<<10 {
				// Large fills spill from the LLC into the cache memory.
				t += sim.FromNanoseconds(float64(blockBytes) / fillGBs)
			}
		}
		lats = append(lats, t.Nanoseconds())
	}
	sort.Float64s(lats)
	return Result{
		BlockBytes: blockBytes,
		P99:        sim.FromNanoseconds(stats.PercentileSorted(lats, 99)),
		HitRate:    h,
	}
}
