package workloads

import (
	"strings"
	"testing"
)

// allModels are the registered workloads: the seven per-model subpackages
// plus the event-driven tpp-timeline, in sorted registry order.
var allModels = []string{"dlrm", "dsb", "fio", "fluid", "kvstore", "spec", "tpp-timeline", "ycsb"}

// TestAllModelsRegistered asserts every model has a registered adapter and
// the registry views agree with each other.
func TestAllModelsRegistered(t *testing.T) {
	names := Names()
	if len(names) != len(allModels) {
		t.Fatalf("registry has %d workloads %v, want the models %v", len(names), names, allModels)
	}
	for i, want := range allModels {
		if names[i] != want {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], want)
		}
	}
	for _, w := range All() {
		got, err := Get(w.Name())
		if err != nil || got.Name() != w.Name() {
			t.Errorf("Get(%q) = %v, %v", w.Name(), got, err)
		}
		if w.Desc() == "" || len(w.Variants()) == 0 {
			t.Errorf("%s: empty description or variant list", w.Name())
		}
	}
	if _, err := Get("nosuchworkload"); err == nil {
		t.Error("Get of unknown workload should error")
	}
}

// TestDefaultsRunnable runs every registered workload with its unmodified
// DefaultConfig in a quick environment: no error, at least one metric, a
// positive primary value, and the default variant listed in Variants.
func TestDefaultsRunnable(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			cfg := w.DefaultConfig()
			found := false
			for _, v := range w.Variants() {
				if v == cfg.Variant {
					found = true
				}
			}
			if !found {
				t.Errorf("default variant %q not in Variants %v", cfg.Variant, w.Variants())
			}
			env := NewEnv()
			env.Quick = true
			m, err := w.Run(env, cfg)
			if err != nil {
				t.Fatalf("default config does not run: %v", err)
			}
			if len(m.Items) == 0 {
				t.Fatal("run returned no metrics")
			}
			if p := m.Primary(); p.Name == "" || p.Value <= 0 {
				t.Errorf("primary metric %+v not positive", p)
			}
		})
	}
}

// TestRunsDeterministic pins the determinism contract: two runs with equal
// (env, cfg) produce identical metrics.
func TestRunsDeterministic(t *testing.T) {
	for _, w := range All() {
		env := NewEnv()
		env.Quick = true
		a, err1 := w.Run(env, w.DefaultConfig())
		env2 := NewEnv()
		env2.Quick = true
		b, err2 := w.Run(env2, w.DefaultConfig())
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", w.Name(), err1, err2)
		}
		if len(a.Items) != len(b.Items) {
			t.Fatalf("%s: metric counts differ", w.Name())
		}
		for i := range a.Items {
			if a.Items[i] != b.Items[i] {
				t.Errorf("%s: metric %d differs: %+v vs %+v", w.Name(), i, a.Items[i], b.Items[i])
			}
		}
	}
}

// TestUnknownVariantRejected asserts adapters reject a bogus variant with a
// helpful error instead of panicking.
func TestUnknownVariantRejected(t *testing.T) {
	for _, w := range All() {
		cfg := w.DefaultConfig()
		cfg.Variant = "nosuchvariant"
		if _, err := w.Run(NewEnv(), cfg); err == nil || !strings.Contains(err.Error(), "variant") {
			t.Errorf("%s: want unknown-variant error, got %v", w.Name(), err)
		}
	}
}

// TestUnknownDeviceRejected asserts adapters reject a bogus device name.
func TestUnknownDeviceRejected(t *testing.T) {
	for _, w := range All() {
		cfg := w.DefaultConfig()
		cfg.Device = "CXL-Z"
		env := NewEnv()
		env.Quick = true
		if _, err := w.Run(env, cfg); err == nil {
			t.Errorf("%s: unknown device accepted", w.Name())
		}
	}
}

// TestCatalog sanity-checks the generated EXPERIMENTS.md catalog rows.
func TestCatalog(t *testing.T) {
	cat := Catalog()
	for _, name := range allModels {
		if !strings.Contains(cat, "| `"+name+"` |") {
			t.Errorf("catalog missing row for %s:\n%s", name, cat)
		}
	}
}
