// Package spec models the SPECrate CPU2017 benchmarks the paper selects for
// their memory intensity (§3.3): fotonik3d, mcf, roms and cactuBSSN — the
// four highest-MPKI members of the suite — run as multiple instances
// (SPECrate style), alone or in mixes.
//
// Each benchmark is a surrogate profile: misses per kilo-instruction, base
// CPI, memory-level parallelism, store share and an LLC footprint. The
// throughput model couples the classic CPI decomposition
//
//	CPI = CPI_base + MPKI/1000 × missLatency(cycles) / MLP
//
// with the device bandwidth/queueing model: instance throughput sets miss
// traffic, miss traffic sets device utilization, utilization sets loaded
// latency, loaded latency sets CPI. The fixed point reproduces the paper's
// observation that naïve 50 % interleaving can *lose* to DDR-only while a
// tuned interior ratio wins (F4, Fig. 13).
package spec

import (
	"fmt"
	"strings"

	"cxlmem/internal/cache"
	"cxlmem/internal/mem"
	"cxlmem/internal/telemetry"
	"cxlmem/internal/topo"
	"cxlmem/internal/workloads/fluid"
)

// CoreGHz is the evaluated CPU's clock (Table 1: 2.1 GHz).
const CoreGHz = 2.1

// Profile is one benchmark surrogate.
type Profile struct {
	// Name is the SPEC benchmark name.
	Name string
	// MPKI is L2 misses per kilo-instruction reaching the LLC.
	MPKI float64
	// BaseCPI is cycles per instruction with a perfect memory subsystem.
	BaseCPI float64
	// MLP is the average overlap of outstanding misses.
	MLP float64
	// WriteFraction is the store share of miss traffic.
	WriteFraction float64
	// HotBytes/HotFraction/ColdBytes describe the LLC footprint, as in the
	// DLRM model.
	HotBytes    int64
	ColdBytes   int64
	HotFraction float64
}

// The four highest-MPKI benchmarks of SPECrate CPU2017 (§3.3).
var (
	Fotonik3d = Profile{Name: "fotonik3d", MPKI: 60, BaseCPI: 0.6, MLP: 12,
		WriteFraction: 0.30, HotBytes: 24 << 20, ColdBytes: 1200 << 20, HotFraction: 0.3}
	Mcf = Profile{Name: "mcf", MPKI: 45, BaseCPI: 0.5, MLP: 10,
		WriteFraction: 0.20, HotBytes: 28 << 20, ColdBytes: 2000 << 20, HotFraction: 0.4}
	Roms = Profile{Name: "roms", MPKI: 30, BaseCPI: 0.7, MLP: 11,
		WriteFraction: 0.35, HotBytes: 40 << 20, ColdBytes: 800 << 20, HotFraction: 0.5}
	CactuBSSN = Profile{Name: "cactuBSSN", MPKI: 40, BaseCPI: 0.8, MLP: 12,
		WriteFraction: 0.30, HotBytes: 48 << 20, ColdBytes: 600 << 20, HotFraction: 0.4}
)

// Profiles returns the evaluated benchmarks in paper order.
func Profiles() []Profile { return []Profile{Fotonik3d, Mcf, Roms, CactuBSSN} }

// ByName looks up a profile.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("spec: unknown benchmark %q", name)
}

// hitRate mirrors the DLRM footprint model (fluid.FootprintHitRate).
func (p Profile) hitRate(capacityBytes int64) float64 {
	return fluid.FootprintHitRate(capacityBytes, p.HotBytes, p.ColdBytes, p.HotFraction)
}

// MixByName resolves the mix names used by scenario specs: an individual
// benchmark name (matched case-insensitively, since spec strings normalize
// to lower case) runs instances of that benchmark alone; "mix" runs all
// four paper benchmarks together, instances split evenly.
func MixByName(name string, instances int) ([]Member, error) {
	if instances <= 0 {
		return nil, fmt.Errorf("spec: non-positive instance count %d", instances)
	}
	if strings.EqualFold(name, "mix") {
		ps := Profiles()
		// Split exactly: the first (instances mod members) benchmarks take
		// one extra so the total equals the request; with fewer instances
		// than benchmarks, the tail members drop out of the mix.
		per, extra := instances/len(ps), instances%len(ps)
		var members []Member
		for i, p := range ps {
			n := per
			if i < extra {
				n++
			}
			if n > 0 {
				members = append(members, Member{Profile: p, Instances: n})
			}
		}
		return members, nil
	}
	for _, p := range Profiles() {
		if strings.EqualFold(p.Name, name) {
			return []Member{{Profile: p, Instances: instances}}, nil
		}
	}
	return nil, fmt.Errorf("spec: unknown benchmark %q", name)
}

// Member is one workload of a mix.
type Member struct {
	Profile   Profile
	Instances int
}

// Result is one SPEC operating point.
type Result struct {
	// GIPS is the aggregate instruction throughput (giga-instructions/s) —
	// the SPECrate-style metric everything is normalized against.
	GIPS float64
	// PerMember breaks GIPS down by mix member.
	PerMember []float64
	// Sample is the Table-4 counter view for Caption.
	Sample telemetry.Sample
}

// Run computes the steady state of a mix with cxlPercent of pages on the
// named CXL device. Instances share the LLC (the footprint each sees is the
// node partition divided among members) and both memory devices.
func Run(sys *topo.System, members []Member, cxlName string, cxlPercent float64) Result {
	if len(members) == 0 {
		panic("spec: empty mix")
	}
	if cxlPercent < 0 || cxlPercent > 100 {
		panic(fmt.Sprintf("spec: ratio %v out of range", cxlPercent))
	}
	ddr := sys.DDRLocal
	cxl := sys.Path(cxlName)
	f := cxlPercent / 100

	// LLC visibility: DDR-homed data is confined to the node partition,
	// CXL-homed data sees the socket (O6); co-runners split capacity.
	nMembers := int64(len(members))
	ddrLLC := sys.Hier.EffectiveLLCBytes(cache.Home{Kind: cache.HomeLocalDDR}) / nMembers
	cxlLLC := sys.Hier.EffectiveLLCBytes(cache.Home{Kind: cache.HomeRemote}) / nMembers

	ddrSerial := ddr.SerialLatency(mem.Load).Nanoseconds()
	cxlSerial := cxl.SerialLatency(mem.Load).Nanoseconds()

	qfD, qfC := 1.0, 1.0
	rates := make([]float64, len(members)) // miss G/s per member
	lats := make([]float64, len(members))
	gips := make([]float64, len(members))
	var uD, uC float64
	for it := 0; it < 60; it++ {
		var demD, demC float64
		var wfD, wfC, volD, volC float64
		for i, m := range members {
			p := m.Profile
			hD := p.hitRate(ddrLLC)
			hC := p.hitRate(cxlLLC)
			lat := (1-f)*(hD*fluid.LLCHitLatencyNS+(1-hD)*ddrSerial*qfD) +
				f*(hC*fluid.LLCHitLatencyNS+(1-hC)*cxlSerial*qfC)
			lats[i] = lat
			cpi := p.BaseCPI + p.MPKI/1000*lat*CoreGHz/p.MLP
			perCoreGIPS := CoreGHz / cpi
			g := perCoreGIPS * float64(m.Instances)
			gips[i] = g
			accesses := g * p.MPKI / 1000 // G accesses/s into the LLC
			rates[i] = accesses
			missD := accesses * (1 - f) * (1 - hD) * 64
			missC := accesses * f * (1 - hC) * 64
			demD += missD
			demC += missC
			volD += missD
			volC += missC
			wfD += missD * p.WriteFraction
			wfC += missC * p.WriteFraction
		}
		wfDavg, wfCavg := 0.0, 0.0
		if volD > 0 {
			wfDavg = wfD / volD
		}
		if volC > 0 {
			wfCavg = wfC / volC
		}
		capD := ddr.Device.EffectiveGBs(wfDavg)
		capC := cxl.Device.EffectiveGBs(wfCavg)
		uD = clamp01(demD / capD)
		uC = 0.0
		if f > 0 {
			uC = clamp01(demC / capC)
		}
		// Damped queue-factor update.
		qfD = 0.5*qfD + 0.5*mem.QueueFactor(uD)
		qfC = 0.5*qfC + 0.5*mem.QueueFactor(uC)
	}

	var total, totalRate, latAcc float64
	for i := range members {
		total += gips[i]
		totalRate += rates[i]
		latAcc += rates[i] * lats[i]
	}
	avgLat := 0.0
	if totalRate > 0 {
		avgLat = latAcc / totalRate
	}
	var bw float64
	for i, m := range members {
		p := m.Profile
		hD := p.hitRate(ddrLLC)
		hC := p.hitRate(cxlLLC)
		bw += rates[i] * ((1-f)*(1-hD) + f*(1-hC)) * 64
	}
	cores := 0
	for _, m := range members {
		cores += m.Instances
	}
	return Result{
		GIPS:      total,
		PerMember: append([]float64(nil), gips...),
		Sample: telemetry.Sample{
			L1MissLatencyNS:    avgLat,
			DDRReadLatencyNS:   ddrSerial * qfD,
			IPC:                total / (float64(cores) * CoreGHz),
			SystemBandwidthGBs: bw,
			CXLPercent:         cxlPercent,
		},
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// BestRatio scans ratios for the mix and returns the best percentage.
func BestRatio(sys *topo.System, members []Member, cxlName string, step float64) (best, gips float64) {
	if step <= 0 {
		panic("spec: non-positive step")
	}
	for r := 0.0; r <= 100; r += step {
		res := Run(sys, members, cxlName, r)
		if res.GIPS > gips {
			gips = res.GIPS
			best = r
		}
	}
	return best, gips
}
