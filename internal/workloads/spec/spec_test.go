package spec

import (
	"testing"

	"cxlmem/internal/mem"
	"cxlmem/internal/topo"
)

func mix16(p Profile) []Member { return []Member{{Profile: p, Instances: 16}} }

func TestProfilesLookup(t *testing.T) {
	if len(Profiles()) != 4 {
		t.Fatal("expected 4 profiles")
	}
	if _, err := ByName("mcf"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("perlbench"); err == nil {
		t.Error("low-MPKI benchmark should be unknown")
	}
}

func TestHitRateMonotone(t *testing.T) {
	for _, p := range Profiles() {
		prev := -1.0
		for _, c := range []int64{0, 15 << 20, 60 << 20, 1 << 30, 1 << 40} {
			h := p.hitRate(c)
			if h < prev || h < 0 || h > 1 {
				t.Errorf("%s: hit rate not monotone/bounded at %d: %v", p.Name, c, h)
			}
			prev = h
		}
	}
}

// TestF4NaiveFiftyFiftyHarmful: the OS default 50 % interleave loses to
// DDR-only for every benchmark (paper finding F4) ...
func TestF4NaiveFiftyFiftyHarmful(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	for _, p := range Profiles() {
		g0 := Run(sys, mix16(p), "CXL-A", 0).GIPS
		g50 := Run(sys, mix16(p), "CXL-A", 50).GIPS
		if g50 >= g0 {
			t.Errorf("%s: 50:50 (%.2f) should lose to DDR-only (%.2f)", p.Name, g50, g0)
		}
	}
}

// TestInteriorOptimum: ... while a tuned interior ratio beats both static
// policies (the Fig. 13 structure).
func TestInteriorOptimum(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	for _, p := range Profiles() {
		g0 := Run(sys, mix16(p), "CXL-A", 0).GIPS
		g50 := Run(sys, mix16(p), "CXL-A", 50).GIPS
		best, gBest := BestRatio(sys, mix16(p), "CXL-A", 2)
		bestStatic := g0
		if g50 > bestStatic {
			bestStatic = g50
		}
		if gBest < bestStatic {
			t.Errorf("%s: tuned ratio should beat static policies", p.Name)
		}
		if best <= 0 || best >= 50 {
			t.Errorf("%s: optimal ratio %v%% should be interior (0, 50)", p.Name, best)
		}
	}
}

func TestMixesGainFromTuning(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	mixes := [][]Member{
		{{Profile: Roms, Instances: 8}, {Profile: Mcf, Instances: 8}},
		{{Profile: Roms, Instances: 8}, {Profile: CactuBSSN, Instances: 8}},
	}
	for _, m := range mixes {
		g0 := Run(sys, m, "CXL-A", 0).GIPS
		best, gBest := BestRatio(sys, m, "CXL-A", 2)
		if gBest <= g0 {
			t.Errorf("mix %s+%s: tuning should beat DDR-only", m[0].Profile.Name, m[1].Profile.Name)
		}
		if best == 0 {
			t.Errorf("mix optimum at 0%% CXL")
		}
	}
}

func TestSampleTracksRatio(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	r := Run(sys, mix16(Fotonik3d), "CXL-A", 30)
	if r.Sample.CXLPercent != 30 {
		t.Errorf("sample ratio = %v", r.Sample.CXLPercent)
	}
	if r.Sample.IPC <= 0 || r.Sample.L1MissLatencyNS <= 0 || r.Sample.SystemBandwidthGBs <= 0 {
		t.Errorf("sample fields empty: %+v", r.Sample)
	}
	// IPC must be below 1/BaseCPI (memory stalls only slow things down).
	if r.Sample.IPC >= 1/Fotonik3d.BaseCPI {
		t.Errorf("IPC %v exceeds the no-stall bound", r.Sample.IPC)
	}
}

func TestSaturationBehaviour(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	// DDR-only fotonik3d runs the DDR device hot: its loaded DDR read
	// latency should be well above idle.
	r := Run(sys, mix16(Fotonik3d), "CXL-A", 0)
	idle := sys.DDRLocal.SerialLatency(mem.Load).Nanoseconds()
	if r.Sample.DDRReadLatencyNS < idle*1.5 {
		t.Errorf("DDR loaded latency %.0f should be ≥1.5× idle %.0f", r.Sample.DDRReadLatencyNS, idle)
	}
}

func TestRunPanics(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	for name, fn := range map[string]func(){
		"empty mix": func() { Run(sys, nil, "CXL-A", 0) },
		"bad ratio": func() { Run(sys, mix16(Mcf), "CXL-A", 101) },
		"bad step":  func() { BestRatio(sys, mix16(Mcf), "CXL-A", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPerMemberBreakdown(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	m := []Member{{Profile: Roms, Instances: 8}, {Profile: Mcf, Instances: 8}}
	r := Run(sys, m, "CXL-A", 25)
	if len(r.PerMember) != 2 {
		t.Fatalf("per-member entries = %d", len(r.PerMember))
	}
	sum := r.PerMember[0] + r.PerMember[1]
	if diff := sum - r.GIPS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("member GIPS sum %v != total %v", sum, r.GIPS)
	}
}
