// Package tpptimeline replays TPP promotion/demotion decisions as scheduled
// events on the internal/sim discrete-event engine — the first workload to
// use time, rather than steady state, as its primary axis.
//
// The model: an address space starts with FarPercent of its pages on the CXL
// tier. An open-loop arrival process (Poisson, modulated by an on/off burst
// phase) drives zipfian page accesses through an M/G/1 service loop while a
// TPP scan actor periodically promotes hot far pages and demotes cold local
// pages (internal/tpp, paper §5.1/Fig. 7 mechanism costs: synchronous
// hint-fault promotion charged to the unlucky access, demotion charged as a
// controller-occupancy stall on the window). An epoch actor snapshots the
// timeline — per-epoch local/far residency, migration throughput, and access
// latency percentiles — into the time-series the tpp-timeline experiment
// renders.
//
// Everything runs on one sim.Scheduler, so the run is deterministic by
// construction: same Config + seed ⇒ identical event order ⇒ identical
// timeline at any sweep-worker setting.
package tpptimeline

import (
	"fmt"
	"sort"

	"cxlmem/internal/mem"
	"cxlmem/internal/numa"
	"cxlmem/internal/sim"
	"cxlmem/internal/stats"
	"cxlmem/internal/topo"
	"cxlmem/internal/tpp"
)

// Config parameterizes one timeline run.
type Config struct {
	// Pages is the size of the address space in 4 KB pages.
	Pages int
	// FarPercent is the share of pages initially placed on the CXL tier
	// (100 = everything starts far, the Fig. 7 cold-start).
	FarPercent float64
	// ZipfSkew is the access-popularity skew (s of a bounded zipfian).
	ZipfSkew float64
	// BaseQPS is the offered load during the off phase.
	BaseQPS float64
	// BurstQPS is the offered load during the on phase.
	BurstQPS float64
	// OnTime and OffTime are the burst phase durations.
	OnTime, OffTime sim.Time
	// Epoch is the timeline sampling interval; Epochs is how many to run.
	Epoch  sim.Time
	Epochs int
	// ScanEvery is the TPP scan interval.
	ScanEvery sim.Time
	// CPUPerAccess is the compute cost per access.
	CPUPerAccess sim.Time
	// AccessHops is the number of dependent pointer hops per access, each
	// paying the serialized path latency of the page's tier.
	AccessHops int
	// Seed drives the scheduler's random stream.
	Seed uint64
	// Policy is the TPP policy configuration.
	Policy tpp.Config
}

// DefaultConfig returns a calibrated bursty timeline: a cold start with
// every page far, a 40 % duty-cycle burst between 50 k and 300 k QPS, and a
// one-second horizon sampled every 5 ms.
func DefaultConfig() Config {
	return Config{
		Pages:        8192,
		FarPercent:   100,
		ZipfSkew:     0.99,
		BaseQPS:      50_000,
		BurstQPS:     300_000,
		OnTime:       20 * sim.Millisecond,
		OffTime:      30 * sim.Millisecond,
		Epoch:        5 * sim.Millisecond,
		Epochs:       200,
		ScanEvery:    10 * sim.Millisecond,
		CPUPerAccess: 2 * sim.Microsecond,
		AccessHops:   4,
		Seed:         41,
		Policy:       tpp.DefaultConfig(),
	}
}

// Quick returns a shrunken copy for quick mode: a quarter of the pages over
// a 150 ms horizon, enough for the promotion ramp to be visible while
// keeping the golden corpus cheap.
func (c Config) Quick() Config {
	c.Pages = 2048
	c.Epochs = 30
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Pages <= 0:
		return fmt.Errorf("tpptimeline: non-positive page count %d", c.Pages)
	case c.FarPercent < 0 || c.FarPercent > 100:
		return fmt.Errorf("tpptimeline: far percent %v out of [0,100]", c.FarPercent)
	case c.ZipfSkew <= 0:
		return fmt.Errorf("tpptimeline: non-positive zipf skew %v", c.ZipfSkew)
	case c.BaseQPS <= 0 || c.BurstQPS <= 0:
		return fmt.Errorf("tpptimeline: non-positive offered load")
	case c.OnTime <= 0 || c.OffTime <= 0:
		return fmt.Errorf("tpptimeline: non-positive phase duration")
	case c.Epoch <= 0 || c.Epochs <= 0:
		return fmt.Errorf("tpptimeline: non-positive epoch grid")
	case c.ScanEvery <= 0:
		return fmt.Errorf("tpptimeline: non-positive scan interval")
	case c.CPUPerAccess < 0 || c.AccessHops < 0:
		return fmt.Errorf("tpptimeline: negative access cost")
	}
	return c.Policy.Validate()
}

// EpochStat is one sample of the timeline.
type EpochStat struct {
	// Index is the epoch number, starting at 0.
	Index int
	// Start is the epoch's start time.
	Start sim.Time
	// LocalPages and FarPages are the tier residency at the epoch's end.
	LocalPages, FarPages int64
	// Promotions and Demotions count migrations within the epoch.
	Promotions, Demotions int64
	// Accesses counts arrivals served within the epoch.
	Accesses int64
	// MigrationsPerSec is the epoch's migration throughput.
	MigrationsPerSec float64
	// P99 and Mean summarize access latency within the epoch, in
	// microseconds (0 when the epoch saw no accesses).
	P99, Mean float64
}

// Result is the complete timeline of one run.
type Result struct {
	// Epochs holds one sample per configured epoch, in order.
	Epochs []EpochStat
	// Promotions, Demotions and Accesses are run totals.
	Promotions, Demotions, Accesses int64
	// FinalFarFraction is the far-tier residency at the end of the run.
	FinalFarFraction float64
	// Events is the scheduler's final event counters.
	Events sim.SchedulerStats
}

// state is the shared simulation state all actors mutate. Actors run
// strictly one at a time on the scheduler, so no locking is needed.
type state struct {
	cfg    Config
	space  *numa.Space
	engine *tpp.Engine
	zipf   *sim.Zipf
	paths  [2]*topo.Path
	// hopCost is the per-access memory cost by tier, precomputed.
	hopCost [2]sim.Time

	// M/G/1 server state.
	serverFree sim.Time
	// burst is true during the on phase.
	burst bool
	// TPP mechanism costs (kvstore.RunWithTPP's accounting): promotions are
	// charged synchronously to upcoming accesses, demotions as a stall
	// penalty on every access in the window.
	syncCost    sim.Time
	pendingSync int
	penalty     sim.Time

	// Per-epoch accumulators, reset at each boundary.
	epochLats               []float64
	epochPromos, epochDemos int64
	epochAccesses           int64

	// Run totals and the timeline.
	totalAccesses int64
	timeline      []EpochStat
}

// rate returns the current offered load.
func (st *state) rate() float64 {
	if st.burst {
		return st.cfg.BurstQPS
	}
	return st.cfg.BaseQPS
}

// loadActor serves arrivals: one event per access, open loop.
type loadActor struct{ st *state }

// Name implements sim.Actor.
func (a *loadActor) Name() string { return "load" }

// Handle serves one arrival and schedules the next.
func (a *loadActor) Handle(s *sim.Scheduler, _ sim.Event) {
	st := a.st
	arrival := s.Now()
	page := st.zipf.Next()
	node := st.space.NodeOfPage(page)
	st.engine.RecordAccess(uint64(page) * numa.PageBytes)
	svc := st.cfg.CPUPerAccess + st.hopCost[node] + st.penalty
	if st.pendingSync > 0 {
		svc += st.syncCost
		st.pendingSync--
	}
	start := arrival
	if st.serverFree > start {
		start = st.serverFree
	}
	done := start + svc
	st.serverFree = done
	st.epochLats = append(st.epochLats, (done - arrival).Nanoseconds())
	st.epochAccesses++
	st.totalAccesses++
	s.After(sim.FromNanoseconds(s.Rng().Exp(1e9/st.rate())), a, evArrival)
}

// phaseActor toggles the on/off burst phase.
type phaseActor struct{ st *state }

// Name implements sim.Actor.
func (a *phaseActor) Name() string { return "phase" }

// Handle flips the phase and schedules the next flip.
func (a *phaseActor) Handle(s *sim.Scheduler, _ sim.Event) {
	st := a.st
	st.burst = !st.burst
	d := st.cfg.OffTime
	if st.burst {
		d = st.cfg.OnTime
	}
	s.After(d, a, evPhase)
}

// scanActor runs the TPP policy every ScanEvery.
type scanActor struct{ st *state }

// Name implements sim.Actor.
func (a *scanActor) Name() string { return "tpp-scan" }

// Handle runs one scan, converts its migrations into mechanism costs, and
// schedules the next scan.
func (a *scanActor) Handle(s *sim.Scheduler, _ sim.Event) {
	st := a.st
	migs := st.engine.Scan()
	promos := 0
	for _, m := range migs {
		if m.To == st.cfg.Policy.DDRNode {
			promos++
		}
	}
	demos := len(migs) - promos
	st.epochPromos += int64(promos)
	st.epochDemos += int64(demos)
	st.pendingSync += promos
	copyBW := st.paths[1].Device.EffectiveGBs(0.5)
	st.penalty = tpp.DefaultCostModel().StallPenalty(demos, st.cfg.ScanEvery, copyBW)
	s.After(st.cfg.ScanEvery, a, evScan)
}

// epochActor snapshots the timeline at each epoch boundary.
type epochActor struct{ st *state }

// Name implements sim.Actor.
func (a *epochActor) Name() string { return "epoch" }

// Handle closes the epoch ending now and schedules the next boundary.
func (a *epochActor) Handle(s *sim.Scheduler, _ sim.Event) {
	st := a.st
	idx := len(st.timeline)
	start := sim.Time(idx) * st.cfg.Epoch
	es := EpochStat{
		Index:      idx,
		Start:      start,
		LocalPages: st.space.PagesOn(st.cfg.Policy.DDRNode),
		FarPages:   st.space.PagesOn(st.cfg.Policy.CXLNode),
		Promotions: st.epochPromos,
		Demotions:  st.epochDemos,
		Accesses:   st.epochAccesses,
		MigrationsPerSec: float64(st.epochPromos+st.epochDemos) /
			st.cfg.Epoch.Seconds(),
	}
	if len(st.epochLats) > 0 {
		sort.Float64s(st.epochLats)
		es.P99 = stats.PercentileSorted(st.epochLats, 99) / 1e3
		es.Mean = stats.Mean(st.epochLats) / 1e3
	}
	st.timeline = append(st.timeline, es)
	st.epochLats = st.epochLats[:0]
	st.epochPromos, st.epochDemos, st.epochAccesses = 0, 0, 0
	if len(st.timeline) < st.cfg.Epochs {
		s.After(st.cfg.Epoch, a, evEpoch)
	}
}

// Shared stateless event values: the steady-state schedule allocates no
// event objects.
const (
	evArrival = sim.EventFunc("arrival")
	evPhase   = sim.EventFunc("phase-flip")
	evScan    = sim.EventFunc("tpp-scan")
	evEpoch   = sim.EventFunc("epoch")
)

// Run executes the timeline on sys with the far tier on the named CXL
// device. Any taps are attached to the scheduler before the first event, so
// they observe the complete trace. Run panics on an invalid config or an
// unknown device (the workloads adapter validates both first).
func Run(sys *topo.System, cfg Config, cxlName string, taps ...sim.Tap) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nodes := []*numa.Node{
		{ID: cfg.Policy.DDRNode, Name: "DDR5-L"},
		{ID: cfg.Policy.CXLNode, Name: cxlName},
	}
	space := numa.NewSpace(nodes, numa.NewDDRCXLSplit(cfg.FarPercent))
	space.Alloc(cfg.Pages)
	st := &state{
		cfg:    cfg,
		space:  space,
		engine: tpp.NewEngine(cfg.Policy, space),
		paths:  [2]*topo.Path{sys.DDRLocal, sys.Path(cxlName)},
	}
	for node, p := range st.paths {
		st.hopCost[node] = sim.Time(cfg.AccessHops) * p.SerialLatency(mem.Load)
	}
	st.syncCost = tpp.DefaultCostModel().SyncCost(st.paths[1].Device.EffectiveGBs(0.5))

	s := sim.NewScheduler(cfg.Seed)
	for _, t := range taps {
		s.Tap(t)
	}
	st.zipf = sim.NewZipf(s.Rng().Split(), cfg.Pages, cfg.ZipfSkew)

	load := &loadActor{st: st}
	s.After(sim.FromNanoseconds(s.Rng().Exp(1e9/st.rate())), load, evArrival)
	s.Schedule(cfg.OffTime, &phaseActor{st: st}, evPhase)
	s.Schedule(cfg.ScanEvery, &scanActor{st: st}, evScan)
	s.Schedule(cfg.Epoch, &epochActor{st: st}, evEpoch)
	s.RunUntil(sim.Time(cfg.Epochs) * cfg.Epoch)

	var promos, demos int64
	for _, es := range st.timeline {
		promos += es.Promotions
		demos += es.Demotions
	}
	return Result{
		Epochs:           st.timeline,
		Promotions:       promos,
		Demotions:        demos,
		Accesses:         st.totalAccesses,
		FinalFarFraction: space.Fraction(cfg.Policy.CXLNode),
		Events:           s.Stats(),
	}
}
