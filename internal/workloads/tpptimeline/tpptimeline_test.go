package tpptimeline

import (
	"reflect"
	"testing"

	"cxlmem/internal/sim"
	"cxlmem/internal/topo"
)

// quickCfg returns the cheap test configuration.
func quickCfg() Config { return DefaultConfig().Quick() }

// TestRunShape: the timeline has exactly Epochs samples on the configured
// grid, totals agree with the per-epoch sums, and the cold start promotes
// pages off the far tier.
func TestRunShape(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := quickCfg()
	res := Run(sys, cfg, sys.DefaultFarDevice())
	if len(res.Epochs) != cfg.Epochs {
		t.Fatalf("timeline has %d epochs, want %d", len(res.Epochs), cfg.Epochs)
	}
	var accesses int64
	for i, es := range res.Epochs {
		if es.Index != i || es.Start != sim.Time(i)*cfg.Epoch {
			t.Fatalf("epoch %d has index %d start %v", i, es.Index, es.Start)
		}
		if es.LocalPages+es.FarPages != int64(cfg.Pages) {
			t.Fatalf("epoch %d residency %d+%d != %d pages", i, es.LocalPages, es.FarPages, cfg.Pages)
		}
		accesses += es.Accesses
	}
	if accesses != res.Accesses || accesses == 0 {
		t.Fatalf("epoch accesses sum %d, run total %d", accesses, res.Accesses)
	}
	if res.Promotions == 0 {
		t.Fatal("cold start produced no promotions")
	}
	first, last := res.Epochs[0], res.Epochs[len(res.Epochs)-1]
	if last.FarPages >= first.FarPages {
		t.Fatalf("far residency did not fall: %d -> %d", first.FarPages, last.FarPages)
	}
	if res.Events.Dispatched == 0 || res.Events.Dispatched != res.Events.Completed {
		t.Fatalf("unbalanced event counters: %+v", res.Events)
	}
}

// TestRunDeterministic: same config + seed ⇒ deeply identical Result,
// including the full trace when a ring is attached.
func TestRunDeterministic(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := quickCfg()
	ringA := sim.NewTraceRing(512)
	ringB := sim.NewTraceRing(512)
	a := Run(sys, cfg, sys.DefaultFarDevice(), ringA)
	b := Run(sys, cfg, sys.DefaultFarDevice(), ringB)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical runs produced different results")
	}
	if !reflect.DeepEqual(ringA.Snapshot(), ringB.Snapshot()) {
		t.Fatal("two identical runs produced different traces")
	}
	cfg.Seed++
	c := Run(sys, cfg, sys.DefaultFarDevice())
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical results")
	}
}

// TestFarResidencyMonotoneInTarget is the tpp-timeline monotonicity
// property: granting the local tier a larger share (more local capacity,
// less far) must never *increase* steady-state far-page residency.
func TestFarResidencyMonotoneInTarget(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	prev := 2.0
	for _, target := range []float64{0.25, 0.5, 0.75, 0.9} {
		cfg := quickCfg()
		cfg.Policy.TargetDDRFraction = target
		res := Run(sys, cfg, sys.DefaultFarDevice())
		if res.FinalFarFraction > prev {
			t.Fatalf("target %.2f: far residency %.3f exceeds %.3f at smaller local share",
				target, res.FinalFarFraction, prev)
		}
		prev = res.FinalFarFraction
	}
}

// TestInvalidConfigPanics: Run refuses invalid configurations loudly.
func TestInvalidConfigPanics(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := quickCfg()
	cfg.Pages = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Run(sys, cfg, sys.DefaultFarDevice())
}
