// The tpp-timeline adapter: the first event-driven workload, running on the
// internal/sim discrete-event scheduler instead of a closed-form model. It
// lives in its own file because it also introduces the EventDriven marker
// that keeps time-series workloads out of the steady-state matrix
// experiments.
package workloads

import (
	"cxlmem/internal/numa"
	"cxlmem/internal/sim"
	"cxlmem/internal/telemetry"
	"cxlmem/internal/workloads/tpptimeline"
)

func init() {
	Register(timelineWorkload{})
}

// EventDriven marks workloads that execute on the discrete-event scheduler
// and emit time series rather than steady-state scalars. The matrix
// experiments (matrix-apps, matrix-platform) skip event-driven workloads —
// their primary output is a timeline, not a single figure of merit — which
// keeps the pre-existing matrix goldens invariant as event-driven workloads
// join the registry.
type EventDriven interface {
	Workload
	// EventDriven is the marker method; it carries no behavior.
	EventDriven()
}

// IsEventDriven reports whether w runs on the discrete-event engine.
func IsEventDriven(w Workload) bool {
	_, ok := w.(EventDriven)
	return ok
}

// timelineEpochCap bounds the epoch count a spec can request, so a fuzzed or
// hostile ops= knob cannot schedule an unbounded simulation.
const timelineEpochCap = 5000

// timelineWorkload replays TPP promotion/demotion decisions as scheduled
// events over a bursty arrival process (ISSUE 8's event-driven proof).
type timelineWorkload struct{}

// Name implements Workload.
func (timelineWorkload) Name() string { return "tpp-timeline" }

// Desc implements Workload.
func (timelineWorkload) Desc() string {
	return "event-driven TPP migration timeline under bursty open-loop load (Fig. 7 mechanism, over time)"
}

// Variants implements Workload: bursty keeps the on/off phase modulation,
// steady holds the offered load flat at the base rate.
func (timelineWorkload) Variants() []string { return []string{"bursty", "steady"} }

// DefaultConfig implements Workload. CXLPercent is the *initial* far-tier
// share (the Fig. 7 cold start puts everything far), TargetQPS the base
// rate, and Ops the epoch count on the 5 ms sampling grid.
func (timelineWorkload) DefaultConfig() Config {
	return Config{Variant: "bursty", Device: "CXL-A", CXLPercent: 100, TargetQPS: 50_000, Ops: 200}
}

// EventDriven implements the EventDriven marker.
func (timelineWorkload) EventDriven() {}

// timelineConfigFor maps the generic knobs onto tpptimeline.Config: size
// resizes the page space, qps sets the base rate (bursts run at 6x base),
// ops is the epoch count, and the policy percent is the initial placement.
func timelineConfigFor(env *Env, cfg Config) (tpptimeline.Config, error) {
	tc := tpptimeline.DefaultConfig()
	if env != nil && env.Quick {
		tc = tc.Quick()
	}
	switch cfg.Variant {
	case "bursty":
		// Keep the default burst modulation.
	case "steady":
		tc.BurstQPS = tc.BaseQPS
	default:
		return tpptimeline.Config{}, errUnknownVariant("tpp-timeline", cfg.Variant, timelineWorkload{}.Variants())
	}
	tc.FarPercent = cfg.CXLPercent
	if cfg.SizeBytes > 0 {
		pages := int(cfg.SizeBytes / numa.PageBytes)
		if pages < 64 {
			pages = 64
		}
		tc.Pages = pages
	}
	if cfg.TargetQPS > 0 {
		tc.BaseQPS = cfg.TargetQPS
		tc.BurstQPS = 6 * cfg.TargetQPS
		if cfg.Variant == "steady" {
			tc.BurstQPS = cfg.TargetQPS
		}
	}
	if cfg.Ops > 0 {
		tc.Epochs = cfg.Ops
		if tc.Epochs > timelineEpochCap {
			tc.Epochs = timelineEpochCap
		}
		// Quick mode stays quick even when a spec asks for a long horizon.
		if env != nil && env.Quick && tc.Epochs > 200 {
			tc.Epochs = 200
		}
	}
	tc.Seed = env.seed(cfg, tc.Seed)
	return tc, nil
}

// RunTimeline executes the tpp-timeline model under env with cfg's knob
// overrides, returning the full time series. The process-wide telemetry
// trace sink observes the run (feeding cxlserve's /v1/trace and /metrics);
// extra taps are attached after it. The experiments driver calls this
// directly for the timeline dataset; the Workload adapter reduces the same
// result to summary metrics.
func RunTimeline(env *Env, cfg Config, taps ...sim.Tap) (tpptimeline.Result, error) {
	tc, err := timelineConfigFor(env, cfg)
	if err != nil {
		return tpptimeline.Result{}, err
	}
	if _, err := devicePath(env, cfg.Device); err != nil {
		return tpptimeline.Result{}, err
	}
	if err := tc.Validate(); err != nil {
		return tpptimeline.Result{}, err
	}
	all := append([]sim.Tap{telemetry.Sim.Tap()}, taps...)
	return tpptimeline.Run(env.Sys, tc, cfg.Device, all...), nil
}

// Run implements Workload: the timeline reduced to steady-state summary
// metrics over the last quarter of the epochs (the post-ramp regime).
func (w timelineWorkload) Run(env *Env, cfg Config) (Metrics, error) {
	res, err := RunTimeline(env, cfg)
	if err != nil {
		return Metrics{}, err
	}
	tail := res.Epochs[len(res.Epochs)*3/4:]
	var p99, mean, migs float64
	var n int
	for _, es := range tail {
		if es.Accesses == 0 {
			continue
		}
		p99 += es.P99
		mean += es.Mean
		migs += es.MigrationsPerSec
		n++
	}
	if n > 0 {
		p99 /= float64(n)
		mean /= float64(n)
		migs /= float64(n)
	}
	var m Metrics
	m.Add("p99_us", p99, "us")
	m.Add("mean_us", mean, "us")
	m.Add("migr_per_sec", migs, "1/s")
	m.Add("promotions", float64(res.Promotions), "pages")
	m.Add("demotions", float64(res.Demotions), "pages")
	m.Add("final_far_frac", res.FinalFarFraction, "frac")
	return m, nil
}

// ensure the adapter satisfies both interfaces at compile time.
var (
	_ Workload    = timelineWorkload{}
	_ EventDriven = timelineWorkload{}
)
