// Package dlrm models the embedding-reduction stage of deep-learning
// recommendation inference (the MERCI setup of §3.3): each query gathers
// tens of embedding vectors from large tables and sums them — a
// bandwidth-bound, read-dominated access stream with strong popularity
// locality (a hot subset of vectors receives most lookups).
//
// The locality is what makes the paper's SNC/LLC findings first-order for
// DLRM (Table 3): the hot working set (~48 MB here) fits the socket-wide
// 60 MB LLC that CXL-homed data may use, but not the 15 MB slice partition
// that local-DDR data is confined to in SNC mode. Combined with the
// bandwidth model this reproduces the Fig. 9a thread sweep, the ~63 %-CXL
// optimum, and the Fig. 11 counter correlations.
package dlrm

import (
	"fmt"

	"cxlmem/internal/cache"
	"cxlmem/internal/mem"
	"cxlmem/internal/telemetry"
	"cxlmem/internal/topo"
	"cxlmem/internal/workloads/fluid"
)

// Config describes the embedding workload.
type Config struct {
	// HotBytes is the hot region of the embedding tables; HotFraction of
	// accesses land there.
	HotBytes int64
	// ColdBytes is the cold remainder of the tables.
	ColdBytes int64
	// HotFraction is the share of accesses to the hot region.
	HotFraction float64
	// LinesPerQuery is the number of cache lines gathered per inference
	// query (lookups × vector lines).
	LinesPerQuery int
	// ThreadMLP is the per-thread memory-level parallelism of the gather
	// loop (index computation serializes part of the stream).
	ThreadMLP float64
	// WriteFraction is the small share of traffic writing partial sums.
	WriteFraction float64
}

// DefaultConfig is calibrated so that (a) DDR-only throughput saturates past
// ~20 threads, (b) the throughput-maximizing allocation puts a substantial
// interior share (~50–65 %) of pages on CXL-A, and (c) Table 3's SNC
// scenarios land near the paper's ratios (0.947 alone, 0.504 contended).
func DefaultConfig() Config {
	return Config{
		HotBytes:      40 << 20,
		ColdBytes:     472 << 20,
		HotFraction:   0.75,
		LinesPerQuery: 160, // 80 lookups × 128-byte vectors
		ThreadMLP:     8,
		WriteFraction: 0.05,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.HotBytes <= 0 || c.ColdBytes < 0 || c.LinesPerQuery <= 0 {
		return fmt.Errorf("dlrm: invalid sizes %+v", c)
	}
	if c.HotFraction < 0 || c.HotFraction > 1 {
		return fmt.Errorf("dlrm: hot fraction %v out of [0,1]", c.HotFraction)
	}
	if c.ThreadMLP <= 0 {
		return fmt.Errorf("dlrm: non-positive MLP")
	}
	return nil
}

// hitRate returns the LLC hit probability of the access stream given an
// effective LLC capacity (the shared fluid.FootprintHitRate model).
func (c Config) hitRate(capacityBytes int64) float64 {
	return fluid.FootprintHitRate(capacityBytes, c.HotBytes, c.ColdBytes, c.HotFraction)
}

// WithTableBytes returns a copy of the config resized so the embedding
// tables total totalBytes: the hot region keeps its size (and the hot
// fraction its meaning) while the cold remainder absorbs the change. Tables
// smaller than the hot region shrink the hot region itself.
func (c Config) WithTableBytes(totalBytes int64) Config {
	if totalBytes <= 0 {
		return c
	}
	if totalBytes <= c.HotBytes {
		c.HotBytes = totalBytes
		c.ColdBytes = 0
		return c
	}
	c.ColdBytes = totalBytes - c.HotBytes
	return c
}

// ScenarioByName resolves the Table-3 scenario names used by scenario specs
// ("alone", "contended", "nosnc").
func ScenarioByName(name string) (Scenario, error) {
	switch name {
	case "alone":
		return SNCAlone, nil
	case "contended":
		return SNCContended, nil
	case "nosnc":
		return NoSNC, nil
	default:
		return 0, fmt.Errorf("dlrm: unknown scenario %q (want alone, contended or nosnc)", name)
	}
}

// Scenario selects the LLC visibility of the run (Table 3).
type Scenario int

const (
	// SNCAlone: the workload runs in one SNC node with the other three
	// idle — CXL data sees the whole 60 MB LLC, DDR data one node's 15 MB.
	SNCAlone Scenario = iota
	// SNCContended: all four SNC nodes run memory-intensive work; the CXL
	// data's socket-wide LLC share collapses toward a single node's worth
	// (Table 3, "4 SNC nodes").
	SNCContended
	// NoSNC: SNC disabled; both classes see the full LLC.
	NoSNC
)

// Result is one DLRM operating point.
type Result struct {
	// QueriesPerSec is the inference throughput.
	QueriesPerSec float64
	// Eq is the underlying bandwidth equilibrium.
	Eq fluid.Equilibrium
	// Sample is the PMU counter view for Caption (Table 4).
	Sample telemetry.Sample
}

// Run computes the steady-state throughput with cxlPercent of pages on the
// named CXL device and the given thread count.
func Run(sys *topo.System, cfg Config, cxlName string, cxlPercent float64, threads int, sc Scenario) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if threads <= 0 {
		panic("dlrm: non-positive thread count")
	}
	if cxlPercent < 0 || cxlPercent > 100 {
		panic(fmt.Sprintf("dlrm: CXL percent %v out of range", cxlPercent))
	}
	ddr := sys.DDRLocal
	cxl := sys.Path(cxlName)

	ddrLLC, cxlLLC := effectiveLLC(sys, sc)
	f := cxlPercent / 100
	classes := []fluid.Class{
		{Path: ddr, Weight: 1 - f, HitRate: cfg.hitRate(ddrLLC), WriteFraction: cfg.WriteFraction},
		{Path: cxl, Weight: f, HitRate: cfg.hitRate(cxlLLC), WriteFraction: cfg.WriteFraction},
	}
	eq := fluid.Solve(classes, func(avgLatNS float64) float64 {
		return float64(threads) * cfg.ThreadMLP / avgLatNS
	}, 60)

	qps := eq.AccessRateGps * 1e9 / float64(cfg.LinesPerQuery)
	return Result{
		QueriesPerSec: qps,
		Eq:            eq,
		Sample:        sampleFrom(eq, ddr, cxlPercent),
	}
}

// effectiveLLC returns the (DDR, CXL) effective LLC capacities per scenario.
func effectiveLLC(sys *topo.System, sc Scenario) (int64, int64) {
	h := sys.Hier
	node := h.EffectiveLLCBytes(cache.Home{Kind: cache.HomeLocalDDR, Node: 0})
	all := h.EffectiveLLCBytes(cache.Home{Kind: cache.HomeRemote, Node: 0})
	switch sc {
	case SNCAlone:
		return node, all
	case SNCContended:
		// The other three nodes' working sets evict the CXL lines from
		// their slices; the CXL data keeps its own node's slices plus a
		// minor share of the contended ones.
		contended := node + (all-node)/8
		return node, contended
	case NoSNC:
		return all, all
	default:
		panic(fmt.Sprintf("dlrm: unknown scenario %d", sc))
	}
}

// sampleFrom derives the Table-4 counters from an equilibrium.
func sampleFrom(eq fluid.Equilibrium, ddr *topo.Path, cxlPercent float64) telemetry.Sample {
	// L1 miss latency: the embedding stream misses L1 essentially always,
	// so the average access latency is the L1 miss latency.
	l1 := eq.AvgLatencyNS
	ddrLat := ddr.LoadedParallelLatency(mem.Load, eq.PerClass[0].QueueFactor).Nanoseconds()
	// IPC: a gather loop retires a handful of instructions per line; CPI is
	// dominated by exposed memory latency over the thread's MLP window.
	const instrPerAccess = 8.0
	const cyclesPerNS = 2.1
	cpi := (eq.AvgLatencyNS / 3) * cyclesPerNS / instrPerAccess
	ipc := 1 / cpi
	return telemetry.Sample{
		L1MissLatencyNS:    l1,
		DDRReadLatencyNS:   ddrLat,
		IPC:                ipc,
		SystemBandwidthGBs: eq.TotalBandwidthGBs,
		CXLPercent:         cxlPercent,
	}
}

// SweepRatios runs the given allocation ratios (percent CXL) at a fixed
// thread count — the Fig. 9a series and the Fig. 11/12a staircases.
func SweepRatios(sys *topo.System, cfg Config, cxlName string, ratios []float64, threads int, sc Scenario) []Result {
	out := make([]Result, len(ratios))
	for i, r := range ratios {
		out[i] = Run(sys, cfg, cxlName, r, threads, sc)
	}
	return out
}

// BestRatio scans CXL percentages 0..100 in steps and returns the
// throughput-maximizing one.
func BestRatio(sys *topo.System, cfg Config, cxlName string, threads int, sc Scenario, step float64) (best float64, qps float64) {
	if step <= 0 {
		panic("dlrm: non-positive step")
	}
	for r := 0.0; r <= 100; r += step {
		res := Run(sys, cfg, cxlName, r, threads, sc)
		if res.QueriesPerSec > qps {
			qps = res.QueriesPerSec
			best = r
		}
	}
	return best, qps
}
