package dlrm

import (
	"testing"

	"cxlmem/internal/topo"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.HotFraction = 2
	if err := bad.Validate(); err == nil {
		t.Error("bad hot fraction should fail")
	}
	bad = DefaultConfig()
	bad.ThreadMLP = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MLP should fail")
	}
}

func TestHitRatePiecewise(t *testing.T) {
	cfg := DefaultConfig() // hot 40MB @ 0.75, cold 472MB @ 0.25
	// 15 MB cache: 0.75 × 15/40 ≈ 0.281.
	if h := cfg.hitRate(15 << 20); h < 0.26 || h > 0.30 {
		t.Errorf("hit(15MB) = %v, want ~0.28", h)
	}
	// 60 MB: hot fully cached + a sliver of cold ≈ 0.76.
	if h := cfg.hitRate(60 << 20); h < 0.74 || h > 0.78 {
		t.Errorf("hit(60MB) = %v, want ~0.76", h)
	}
	// Everything cached.
	if h := cfg.hitRate(1 << 40); h < 0.999 {
		t.Errorf("hit(1TB) = %v, want ~1", h)
	}
	if h := cfg.hitRate(0); h != 0 {
		t.Errorf("hit(0) = %v", h)
	}
}

// TestFig9aSaturationAndOptimum: DDR-only throughput saturates past ~20
// threads; at 32 threads a ~63% CXL allocation maximizes throughput with a
// gain near the paper's 88%.
func TestFig9aSaturationAndOptimum(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := DefaultConfig()

	// Saturation: going 20 -> 32 threads at DDR 100% gains little.
	q20 := Run(sys, cfg, "CXL-A", 0, 20, SNCAlone).QueriesPerSec
	q32 := Run(sys, cfg, "CXL-A", 0, 32, SNCAlone).QueriesPerSec
	if q32 > q20*1.25 {
		t.Errorf("DDR-only 32t/20t = %.2f, want saturation (< 1.25)", q32/q20)
	}
	// Scaling region: 4 -> 16 threads grows markedly.
	q4 := Run(sys, cfg, "CXL-A", 0, 4, SNCAlone).QueriesPerSec
	q16 := Run(sys, cfg, "CXL-A", 0, 16, SNCAlone).QueriesPerSec
	if q16 < q4*2.5 {
		t.Errorf("4->16 thread scaling = %.2f, want >= 2.5", q16/q4)
	}

	// The paper measures the optimum at 63 % with an 88 % gain; our model
	// places it at ~48 % with ~72 % — same interior-optimum shape (see
	// EXPERIMENTS.md for the deviation discussion).
	best, bestQPS := BestRatio(sys, cfg, "CXL-A", 32, SNCAlone, 1)
	if best < 40 || best > 75 {
		t.Errorf("optimal CXL share = %v%%, want interior (paper ~63%%)", best)
	}
	gain := bestQPS/q32 - 1
	if gain < 0.4 || gain > 1.3 {
		t.Errorf("best-vs-DDR100 gain = %.2f, paper ~0.88", gain)
	}
}

// TestTable3Scenarios reproduces Table 3's structure: CXL 100% is nearly as
// fast as DDR 100% when one SNC node runs alone (LLC isolation broken in
// CXL's favor), but collapses to ~0.5 when all four nodes contend.
func TestTable3Scenarios(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := DefaultConfig()
	const threads = 8

	ddrAlone := Run(sys, cfg, "CXL-A", 0, threads, SNCAlone).QueriesPerSec
	cxlAlone := Run(sys, cfg, "CXL-A", 100, threads, SNCAlone).QueriesPerSec
	cxlContended := Run(sys, cfg, "CXL-A", 100, threads, SNCContended).QueriesPerSec

	alone := cxlAlone / ddrAlone
	if alone < 0.85 || alone > 1.05 {
		t.Errorf("1-node CXL100/DDR100 = %.3f, paper 0.947", alone)
	}
	contended := cxlContended / ddrAlone
	if contended < 0.35 || contended > 0.70 {
		t.Errorf("4-node CXL100/DDR100 = %.3f, paper 0.504", contended)
	}
	if contended >= alone {
		t.Error("contention should hurt the CXL run")
	}
}

// TestFig11Correlations: as the CXL share sweeps up, consumed bandwidth
// first rises then falls (11a) and throughput correlates inversely with L1
// miss latency (11b).
func TestFig11Correlations(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := DefaultConfig()
	ratios := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	results := SweepRatios(sys, cfg, "CXL-A", ratios, 24, SNCAlone)

	// Throughput and bandwidth both peak somewhere strictly inside.
	bestQ, bestI := 0.0, 0
	for i, r := range results {
		if r.QueriesPerSec > bestQ {
			bestQ, bestI = r.QueriesPerSec, i
		}
	}
	if bestI == 0 || bestI == len(results)-1 {
		t.Errorf("throughput peak at boundary ratio %v", ratios[bestI])
	}
	// Inverse relation with L1 miss latency: the max-throughput point has
	// lower L1 miss latency than the extremes.
	if results[bestI].Sample.L1MissLatencyNS >= results[len(results)-1].Sample.L1MissLatencyNS {
		t.Error("peak throughput should have lower L1 miss latency than CXL 100%")
	}
	// Higher-IPC points are higher-throughput points (same direction).
	if results[bestI].Sample.IPC <= results[len(results)-1].Sample.IPC {
		t.Error("peak throughput should have higher IPC than CXL 100%")
	}
}

func TestSampleFieldsPopulated(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	r := Run(sys, DefaultConfig(), "CXL-A", 40, 16, SNCAlone)
	s := r.Sample
	if s.L1MissLatencyNS <= 0 || s.DDRReadLatencyNS <= 0 || s.IPC <= 0 || s.SystemBandwidthGBs <= 0 {
		t.Errorf("sample has empty fields: %+v", s)
	}
	if s.CXLPercent != 40 {
		t.Errorf("sample CXL percent = %v", s.CXLPercent)
	}
}

func TestRunPanics(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	for name, fn := range map[string]func(){
		"threads": func() { Run(sys, DefaultConfig(), "CXL-A", 0, 0, SNCAlone) },
		"ratio":   func() { Run(sys, DefaultConfig(), "CXL-A", 150, 8, SNCAlone) },
		"step":    func() { BestRatio(sys, DefaultConfig(), "CXL-A", 8, SNCAlone, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
