// Random valid scenario generation for the fuzzer corpus (ISSUE 8's
// scenario fuzzer): specs drawn across the whole workload x platform matrix,
// every one of which must parse, round-trip canonically and run without
// panicking. Lives in the package proper (not a _test file) so the
// experiments package's memo-key fuzz test can reuse the generator.
package workloads

import (
	"fmt"

	"cxlmem/internal/sim"
	"cxlmem/internal/topo"
)

// fuzzPolicies are the policy= spellings RandomScenario draws from; the
// weighted and percent forms also exercise the numeric parsers.
var fuzzPolicies = []string{
	"ddr", "cxl", "interleave", "cxl:0", "cxl:25", "cxl:63", "cxl:100",
	"weighted:85,15", "weighted:25,75", "weighted:1,1", "weighted:0,4",
}

// fuzzSizes are size= literals covering every suffix and a raw byte count.
var fuzzSizes = []string{"4096", "64K", "512K", "16M", "64M", "256M", "1G", "4G"}

// RandomScenario draws one valid scenario spec: a registered workload, an
// optionally overridden variant, and a random subset of the knob keys, each
// with a value every workload accepts. The result always parses, because the
// fuzzer's contract is to explore the valid-spec space (invalid specs get
// their own deterministic rejection tests); rng drives every choice, so a
// seeded corpus is reproducible.
func RandomScenario(rng *sim.Rng) Scenario {
	names := Names()
	w, err := Get(names[rng.Intn(len(names))])
	if err != nil {
		panic(err) // unreachable: the name came from the registry
	}
	sc := Scenario{Workload: w.Name()}
	if rng.Intn(2) == 0 {
		variants := w.Variants()
		sc.Variant = variants[rng.Intn(len(variants))]
	}
	if rng.Intn(2) == 0 {
		p, err := ParsePolicy(fuzzPolicies[rng.Intn(len(fuzzPolicies))])
		if err != nil {
			panic(err) // unreachable: the literals are valid
		}
		sc.Policy = p
	}
	if rng.Intn(3) == 0 {
		n, err := ParseBytes(fuzzSizes[rng.Intn(len(fuzzSizes))])
		if err != nil {
			panic(err) // unreachable: the literals are valid
		}
		sc.SizeBytes = n
	}
	if rng.Intn(3) == 0 {
		sc.TargetQPS = float64(1+rng.Intn(400)) * 250
	}
	if rng.Intn(3) == 0 {
		sc.Threads = 1 + rng.Intn(64)
	}
	if rng.Intn(3) == 0 {
		sc.Ops = 100 + rng.Intn(40_000)
	}
	if rng.Intn(3) == 0 {
		sc.Seed = 1 + rng.Uint64()%1_000_000
	}
	if rng.Intn(2) == 0 {
		// Cross the platform axis; the cell then runs against the platform's
		// default far device, which is valid on every profile. A device= key
		// is only drawn on the default platform, where the Table-1 names
		// resolve.
		platforms := topo.PlatformNames()
		sc.Platform = platforms[rng.Intn(len(platforms))]
	} else if rng.Intn(3) == 0 {
		devices := []string{"CXL-A", "CXL-B", "CXL-C", "DDR5-R"}
		sc.Device = devices[rng.Intn(len(devices))]
	}
	return sc
}

// RandomScenarioSpec renders a RandomScenario with cosmetic (case and
// whitespace) noise that must not survive canonicalization — exercising the
// parser's normalization on top of the generator's structural choices.
func RandomScenarioSpec(rng *sim.Rng) string {
	sc := RandomScenario(rng)
	spec := sc.String()
	switch rng.Intn(3) {
	case 0:
		return spec
	case 1:
		return " " + spec
	default:
		// Uppercase the head; ParseScenario lowercases it. Knob values keep
		// their case (device names are case-sensitive).
		head := sc.Workload
		if sc.Variant != "" {
			head += ":" + sc.Variant
		}
		rest := spec[len(head):]
		upper := make([]byte, len(head))
		for i := 0; i < len(head); i++ {
			c := head[i]
			if 'a' <= c && c <= 'z' && rng.Intn(2) == 0 {
				c -= 'a' - 'A'
			}
			upper[i] = c
		}
		return string(upper) + rest
	}
}

// mustParse round-trips a generated spec; the fuzz corpus helpers share it.
func mustParse(spec string) (Scenario, error) {
	sc, err := ParseScenario(spec)
	if err != nil {
		return Scenario{}, fmt.Errorf("workloads: generated spec %q does not parse: %w", spec, err)
	}
	return sc, nil
}
