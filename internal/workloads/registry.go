// The workload registry: the single place experiment drivers, the scenario
// engine and the cxlbench command discover runnable application models.
package workloads

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

var (
	registryMu sync.RWMutex
	registry   = map[string]Workload{}
)

// Register adds a workload under its Name. It panics on duplicates or empty
// names — registration happens in init and a collision is a programming
// error, matching the experiments registry.
func Register(w Workload) {
	name := w.Name()
	if name == "" || name != strings.ToLower(name) {
		panic(fmt.Sprintf("workloads: invalid registry name %q (must be non-empty lowercase)", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("workloads: duplicate workload " + name)
	}
	registry[name] = w
}

// Get returns the registered workload with the given name.
func Get(name string) (Workload, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return w, nil
}

// All returns every registered workload sorted by name.
func All() []Workload {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Names returns the sorted registry keys.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Catalog renders the registry as markdown table rows (one per workload:
// name, variants, default knobs, description) — the generated scenario
// catalog embedded in EXPERIMENTS.md. Regenerate with
//
//	go run ./cmd/cxlbench -scenario list
func Catalog() string {
	var b strings.Builder
	b.WriteString("| Workload | Variants | Default knobs | Models |\n")
	b.WriteString("|----------|----------|---------------|--------|\n")
	for _, w := range All() {
		cfg := w.DefaultConfig()
		knobs := []string{fmt.Sprintf("cxl=%g%%", cfg.CXLPercent)}
		if cfg.SizeBytes > 0 {
			knobs = append(knobs, "size="+FormatBytes(cfg.SizeBytes))
		}
		if cfg.TargetQPS > 0 {
			knobs = append(knobs, fmt.Sprintf("qps=%g", cfg.TargetQPS))
		}
		if cfg.Threads > 0 {
			knobs = append(knobs, fmt.Sprintf("threads=%d", cfg.Threads))
		}
		if cfg.Ops > 0 {
			knobs = append(knobs, fmt.Sprintf("ops=%d", cfg.Ops))
		}
		fmt.Fprintf(&b, "| `%s` | %s | `%s` | %s |\n",
			w.Name(), strings.Join(w.Variants(), ", "), strings.Join(knobs, " "), w.Desc())
	}
	return b.String()
}
