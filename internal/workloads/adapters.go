// Adapters: one Workload implementation per model subpackage, registered at
// init. They live here (not in the subpackages) so the models never import
// their parent — see the package comment's layering rule.
package workloads

import (
	"fmt"
	"strings"

	"cxlmem/internal/cache"
	"cxlmem/internal/topo"
	"cxlmem/internal/workloads/dlrm"
	"cxlmem/internal/workloads/dsb"
	"cxlmem/internal/workloads/fio"
	"cxlmem/internal/workloads/fluid"
	"cxlmem/internal/workloads/kvstore"
	"cxlmem/internal/workloads/spec"
	"cxlmem/internal/workloads/ycsb"
)

func init() {
	Register(kvstoreWorkload{})
	Register(ycsbWorkload{})
	Register(dlrmWorkload{})
	Register(dsbWorkload{})
	Register(fioWorkload{})
	Register(specWorkload{})
	Register(fluidWorkload{})
}

// devicePath resolves cfg.Device against the environment's system without
// panicking on unknown names.
func devicePath(env *Env, name string) (*topo.Path, error) {
	for _, p := range env.Sys.Paths() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown device %q", name)
}

// kvConfigFor builds the kvstore config shared by the kvstore and ycsb
// adapters: quick mode shrinks the default keyspace exactly like the fig6a
// driver; an explicit size overrides both.
func kvConfigFor(env *Env, cfg Config) kvstore.Config {
	kc := kvstore.DefaultConfig()
	if env.Quick {
		kc.Keys = 100_000
	}
	if cfg.SizeBytes > 0 {
		kc = kc.WithHeapBytes(cfg.SizeBytes)
	}
	kc.Seed = env.seed(cfg, kc.Seed)
	return kc
}

// kvstoreWorkload models Redis open-loop latency (§5.1, Fig. 6a/7).
type kvstoreWorkload struct{}

// Name implements Workload.
func (kvstoreWorkload) Name() string { return "kvstore" }

// Desc implements Workload.
func (kvstoreWorkload) Desc() string {
	return "Redis under open-loop YCSB-A load: p50/p99 latency and utilization (Fig. 6a)"
}

// Variants implements Workload: the key distribution of the op stream.
func (kvstoreWorkload) Variants() []string { return []string{"uniform", "zipfian"} }

// DefaultConfig implements Workload.
func (kvstoreWorkload) DefaultConfig() Config {
	return Config{Variant: "uniform", Device: "CXL-A", CXLPercent: 50, TargetQPS: 45000, Ops: 40000}
}

// Run implements Workload.
func (w kvstoreWorkload) Run(env *Env, cfg Config) (Metrics, error) {
	var dist ycsb.Distribution
	switch cfg.Variant {
	case "uniform":
		dist = ycsb.Uniform
	case "zipfian":
		dist = ycsb.Zipfian
	default:
		return Metrics{}, errUnknownVariant(w.Name(), cfg.Variant, w.Variants())
	}
	if _, err := devicePath(env, cfg.Device); err != nil {
		return Metrics{}, err
	}
	s := kvstore.New(env.Sys, kvConfigFor(env, cfg), cfg.Device, cfg.CXLPercent)
	res := s.RunOpenLoop(ycsb.WorkloadA, dist, cfg.TargetQPS, env.ScaleOps(cfg.Ops))
	var m Metrics
	m.Add("p99_us", res.P99.Microseconds(), "us")
	m.Add("p50_us", res.P50.Microseconds(), "us")
	m.Add("mean_us", res.Mean.Microseconds(), "us")
	m.Add("utilization", res.Utilization, "frac")
	return m, nil
}

// ycsbWorkload models Redis maximum sustainable throughput across the YCSB
// core workload mixes (§5.2, Fig. 9b).
type ycsbWorkload struct{}

// Name implements Workload.
func (ycsbWorkload) Name() string { return "ycsb" }

// Desc implements Workload.
func (ycsbWorkload) Desc() string {
	return "Redis max sustainable QPS for a YCSB core workload mix (Fig. 9b)"
}

// Variants implements Workload: the YCSB letters; descriptive aliases
// (readmostly=b, readonly=c, updateheavy=a, readlatest=d, rmw=f) resolve to
// the same mixes.
func (ycsbWorkload) Variants() []string {
	return []string{"a", "b", "c", "d", "f", "updateheavy", "readmostly", "readonly", "readlatest", "rmw"}
}

// DefaultConfig implements Workload.
func (ycsbWorkload) DefaultConfig() Config {
	return Config{Variant: "a", Device: "CXL-A", CXLPercent: 50, Ops: 20000}
}

// Run implements Workload.
func (w ycsbWorkload) Run(env *Env, cfg Config) (Metrics, error) {
	mix, err := ycsb.WorkloadByAlias(cfg.Variant)
	if err != nil {
		return Metrics{}, errUnknownVariant(w.Name(), cfg.Variant, w.Variants())
	}
	if _, err := devicePath(env, cfg.Device); err != nil {
		return Metrics{}, err
	}
	kc := kvConfigFor(env, cfg)
	samples := env.ScaleOps(cfg.Ops)
	qps := kvstore.New(env.Sys, kc, cfg.Device, cfg.CXLPercent).MaxQPS(mix, ycsb.Uniform, samples)
	base := kvstore.New(env.Sys, kc, cfg.Device, 0).MaxQPS(mix, ycsb.Uniform, samples)
	var m Metrics
	m.Add("max_qps", qps, "qps")
	m.Add("vs_ddr", qps/base, "x")
	return m, nil
}

// dlrmWorkload models DLRM embedding-reduction throughput (§5.2, Fig. 9a,
// Table 3).
type dlrmWorkload struct{}

// Name implements Workload.
func (dlrmWorkload) Name() string { return "dlrm" }

// Desc implements Workload.
func (dlrmWorkload) Desc() string {
	return "DLRM embedding-reduction throughput under an SNC scenario (Fig. 9a, Table 3)"
}

// Variants implements Workload: the Table-3 SNC scenarios.
func (dlrmWorkload) Variants() []string { return []string{"alone", "contended", "nosnc"} }

// DefaultConfig implements Workload.
func (dlrmWorkload) DefaultConfig() Config {
	return Config{Variant: "alone", Device: "CXL-A", CXLPercent: 63, Threads: 32}
}

// Run implements Workload.
func (w dlrmWorkload) Run(env *Env, cfg Config) (Metrics, error) {
	sc, err := dlrm.ScenarioByName(cfg.Variant)
	if err != nil {
		return Metrics{}, errUnknownVariant(w.Name(), cfg.Variant, w.Variants())
	}
	if _, err := devicePath(env, cfg.Device); err != nil {
		return Metrics{}, err
	}
	dc := dlrm.DefaultConfig().WithTableBytes(cfg.SizeBytes)
	res := dlrm.Run(env.Sys, dc, cfg.Device, cfg.CXLPercent, cfg.Threads, sc)
	var m Metrics
	m.Add("mqps", res.QueriesPerSec/1e6, "Mq/s")
	m.Add("system_bw", res.Eq.TotalBandwidthGBs, "GB/s")
	m.Add("l1_miss_ns", res.Sample.L1MissLatencyNS, "ns")
	return m, nil
}

// dsbWorkload models the DeathStarBench three-tier pipeline (§5.1, Fig. 6b–d).
type dsbWorkload struct{}

// Name implements Workload.
func (dsbWorkload) Name() string { return "dsb" }

// Desc implements Workload.
func (dsbWorkload) Desc() string {
	return "DeathStarBench request pipeline p99 with the caching tier on DDR or CXL (Fig. 6b-d)"
}

// Variants implements Workload: the evaluated request types.
func (dsbWorkload) Variants() []string { return []string{"mixed", "compose", "readuser"} }

// DefaultConfig implements Workload. The caching tier moves to CXL for any
// positive CXLPercent — the paper evaluates only the all-or-nothing tier
// placement (Table 2).
func (dsbWorkload) DefaultConfig() Config {
	return Config{Variant: "mixed", Device: "CXL-A", CXLPercent: 100, TargetQPS: 8000, Ops: 20000}
}

// Run implements Workload.
func (w dsbWorkload) Run(env *Env, cfg Config) (Metrics, error) {
	dw, err := dsb.WorkloadByName(cfg.Variant)
	if err != nil {
		return Metrics{}, errUnknownVariant(w.Name(), cfg.Variant, w.Variants())
	}
	if _, err := devicePath(env, cfg.Device); err != nil {
		return Metrics{}, err
	}
	onCXL := cfg.CXLPercent > 0
	res := dsb.Run(env.Sys, dw, cfg.Device, onCXL, cfg.TargetQPS, env.ScaleOps(cfg.Ops), env.seed(cfg, 23))
	var m Metrics
	m.Add("p99_ms", res.P99.Milliseconds(), "ms")
	m.Add("p50_ms", res.P50.Milliseconds(), "ms")
	sat := 0.0
	if res.Saturated {
		sat = 1
	}
	m.Add("saturated", sat, "bool")
	return m, nil
}

// fioWorkload models FIO random reads through a page cache on DDR or CXL
// memory (§5.1, Fig. 8).
type fioWorkload struct{}

// Name implements Workload.
func (fioWorkload) Name() string { return "fio" }

// Desc implements Workload.
func (fioWorkload) Desc() string {
	return "FIO random-read p99 with the page cache on DDR or CXL memory (Fig. 8)"
}

// Variants implements Workload: the Fig. 8 block sizes.
func (fioWorkload) Variants() []string {
	var out []string
	for _, b := range fio.BlockSizes() {
		out = append(out, fmt.Sprintf("%dk", b>>10))
	}
	return out
}

// DefaultConfig implements Workload. The page cache moves to CXL for any
// positive CXLPercent; SizeBytes resizes the page cache.
func (fioWorkload) DefaultConfig() Config {
	return Config{Variant: "4k", Device: "CXL-A", CXLPercent: 100, Ops: 40000}
}

// Run implements Workload.
func (w fioWorkload) Run(env *Env, cfg Config) (Metrics, error) {
	block, err := fio.BlockSizeByName(cfg.Variant)
	if err != nil {
		return Metrics{}, errUnknownVariant(w.Name(), cfg.Variant, w.Variants())
	}
	path := env.Sys.DDRLocal
	if cfg.CXLPercent > 0 {
		if path, err = devicePath(env, cfg.Device); err != nil {
			return Metrics{}, err
		}
	}
	fc := fio.DefaultConfig()
	if cfg.SizeBytes > 0 {
		fc.PageCacheBytes = cfg.SizeBytes
	}
	fc.Seed = env.seed(cfg, fc.Seed)
	res := fio.Run(env.Sys, path, fc, block, env.ScaleOps(cfg.Ops))
	var m Metrics
	m.Add("p99_us", res.P99.Microseconds(), "us")
	m.Add("hit_rate", res.HitRate, "frac")
	return m, nil
}

// specWorkload models SPECrate CPU2017 mixes (§5.2, Fig. 13).
type specWorkload struct{}

// Name implements Workload.
func (specWorkload) Name() string { return "spec" }

// Desc implements Workload.
func (specWorkload) Desc() string {
	return "SPECrate CPU2017 surrogate throughput for a benchmark or the 4-way mix (Fig. 13)"
}

// Variants implements Workload: individual benchmarks or the 4-way mix.
// Names are lowercased to match the spec language's normalization.
func (specWorkload) Variants() []string {
	out := []string{"mix"}
	for _, p := range spec.Profiles() {
		out = append(out, strings.ToLower(p.Name))
	}
	return out
}

// DefaultConfig implements Workload. Threads is the total instance count,
// split evenly across the mix members.
func (specWorkload) DefaultConfig() Config {
	return Config{Variant: "mix", Device: "CXL-A", CXLPercent: 50, Threads: 8}
}

// Run implements Workload.
func (w specWorkload) Run(env *Env, cfg Config) (Metrics, error) {
	members, err := spec.MixByName(cfg.Variant, cfg.Threads)
	if err != nil {
		return Metrics{}, errUnknownVariant(w.Name(), cfg.Variant, w.Variants())
	}
	if _, err := devicePath(env, cfg.Device); err != nil {
		return Metrics{}, err
	}
	res := spec.Run(env.Sys, members, cfg.Device, cfg.CXLPercent)
	base := spec.Run(env.Sys, members, cfg.Device, 0)
	var m Metrics
	m.Add("gips", res.GIPS, "Gi/s")
	m.Add("vs_ddr", res.GIPS/base.GIPS, "x")
	m.Add("system_bw", res.Sample.SystemBandwidthGBs, "GB/s")
	return m, nil
}

// fluidWorkload exposes the bandwidth-equilibrium solver directly as a
// streaming microbenchmark: a footprint-based access stream split across
// DDR and a CXL device, reporting the converged operating point (§6,
// Fig. 11a's throughput/bandwidth feedback).
type fluidWorkload struct{}

// fluidHotFraction and fluidMLP fix the stream shape: half the accesses hit
// a hot eighth of the working set; each thread sustains 8 outstanding
// misses, like the DLRM gather loop.
const (
	fluidHotFraction = 0.5
	fluidMLP         = 8.0
)

// Name implements Workload.
func (fluidWorkload) Name() string { return "fluid" }

// Desc implements Workload.
func (fluidWorkload) Desc() string {
	return "raw bandwidth-equilibrium stream split across DDR and CXL (Fig. 11a feedback loop)"
}

// Variants implements Workload.
func (fluidWorkload) Variants() []string { return []string{"stream"} }

// DefaultConfig implements Workload. SizeBytes is the streamed working set.
func (fluidWorkload) DefaultConfig() Config {
	return Config{Variant: "stream", Device: "CXL-A", CXLPercent: 50, SizeBytes: 256 << 20, Threads: 16}
}

// Run implements Workload.
func (w fluidWorkload) Run(env *Env, cfg Config) (Metrics, error) {
	if cfg.Variant != "stream" {
		return Metrics{}, errUnknownVariant(w.Name(), cfg.Variant, w.Variants())
	}
	cxl, err := devicePath(env, cfg.Device)
	if err != nil {
		return Metrics{}, err
	}
	hot := cfg.SizeBytes / 8
	cold := cfg.SizeBytes - hot
	ddrLLC := env.Sys.Hier.EffectiveLLCBytes(cache.Home{Kind: cache.HomeLocalDDR})
	cxlLLC := env.Sys.Hier.EffectiveLLCBytes(cache.Home{Kind: cache.HomeRemote})
	f := cfg.CXLPercent / 100
	classes := []fluid.Class{
		{Path: env.Sys.DDRLocal, Weight: 1 - f, HitRate: fluid.FootprintHitRate(ddrLLC, hot, cold, fluidHotFraction)},
		{Path: cxl, Weight: f, HitRate: fluid.FootprintHitRate(cxlLLC, hot, cold, fluidHotFraction)},
	}
	eq := fluid.Solve(classes, func(avgLatNS float64) float64 {
		return float64(cfg.Threads) * fluidMLP / avgLatNS
	}, 60)
	var m Metrics
	m.Add("system_bw", eq.TotalBandwidthGBs, "GB/s")
	m.Add("access_rate", eq.AccessRateGps, "Ga/s")
	m.Add("avg_lat_ns", eq.AvgLatencyNS, "ns")
	return m, nil
}

// ensure the adapters satisfy the interface at compile time.
var (
	_ Workload = kvstoreWorkload{}
	_ Workload = ycsbWorkload{}
	_ Workload = dlrmWorkload{}
	_ Workload = dsbWorkload{}
	_ Workload = fioWorkload{}
	_ Workload = specWorkload{}
	_ Workload = fluidWorkload{}
)
