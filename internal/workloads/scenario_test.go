package workloads

import (
	"reflect"
	"testing"
)

func TestParseScenarioValid(t *testing.T) {
	cases := []struct {
		in   string
		want Scenario
	}{
		{"ycsb", Scenario{Workload: "ycsb"}},
		{"ycsb:readmostly", Scenario{Workload: "ycsb", Variant: "readmostly"}},
		{
			"ycsb:readmostly/policy=weighted:85,15/size=4G",
			Scenario{
				Workload: "ycsb", Variant: "readmostly",
				Policy:    Policy{Spec: "weighted:85,15", CXLPercent: 15, Set: true},
				SizeBytes: 4 << 30,
			},
		},
		{
			"dlrm/policy=cxl:63/threads=32",
			Scenario{
				Workload: "dlrm",
				Policy:   Policy{Spec: "cxl:63", CXLPercent: 63, Set: true},
				Threads:  32,
			},
		},
		{
			"fio:64k/policy=cxl/qps=5000/ops=1234/seed=9/device=CXL-B",
			Scenario{
				Workload: "fio", Variant: "64k",
				Policy:    Policy{Spec: "cxl", CXLPercent: 100, Set: true},
				TargetQPS: 5000, Ops: 1234, Seed: 9, Device: "CXL-B",
			},
		},
		{"KVSTORE:UNIFORM/policy=DDR", // case-insensitive head and policy
			Scenario{Workload: "kvstore", Variant: "uniform", Policy: Policy{Spec: "ddr", Set: true}}},
		{"fluid/platform=x16-quad", Scenario{Workload: "fluid", Platform: "x16-quad"}},
		{"dlrm/platform=TABLE1", // platform names normalize to lowercase
			Scenario{Workload: "dlrm", Platform: "table1"}},
	}
	for _, c := range cases {
		got, err := ParseScenario(c.in)
		if err != nil {
			t.Errorf("ParseScenario(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseScenario(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseScenarioInvalid(t *testing.T) {
	cases := []string{
		"",                           // empty
		"  ",                         // blank
		"nosuchworkload",             // unregistered
		"ycsb/policy",                // not key=value
		"ycsb/policy=",               // empty value
		"ycsb/policy=weighted:85",    // one weight
		"ycsb/policy=weighted:0,0",   // zero weights
		"ycsb/policy=weighted:-1,2",  // negative weight
		"ycsb/policy=cxl:150",        // percent out of range
		"ycsb/policy=nearfar",        // unknown policy
		"ycsb/size=4X",               // bad suffix
		"ycsb/size=-4G",              // negative size
		"ycsb/qps=0",                 // non-positive qps
		"ycsb/qps=nan",               // NaN defeats range checks + memo key
		"ycsb/qps=+inf",              // infinite load
		"fluid/policy=cxl:nan",       // NaN percent
		"ycsb/policy=weighted:inf,1", // infinite weight
		"ycsb/threads=-3",            // negative threads
		"ycsb/ops=0",                 // non-positive ops
		"ycsb/seed=abc",              // non-numeric seed
		"ycsb/flavor=mild",           // unknown key
		"/policy=ddr",                // no workload
		"ycsb/platform=atari2600",    // unregistered platform
	}
	for _, in := range cases {
		if _, err := ParseScenario(in); err == nil {
			t.Errorf("ParseScenario(%q) accepted, want error", in)
		}
	}
}

// TestScenarioStringRoundTrip pins the canonical-form contract both ways:
// parse→String is canonical and String→parse is the identity.
func TestScenarioStringRoundTrip(t *testing.T) {
	cases := []struct{ in, canonical string }{
		{"ycsb", "ycsb"},
		{"ycsb:readmostly/policy=weighted:85,15/size=4G", "ycsb:readmostly/policy=weighted:85,15/size=4G"},
		{"dlrm/threads=32/policy=cxl:63", "dlrm/policy=cxl:63/threads=32"}, // keys reorder canonically
		{"fio:4k/size=4096", "fio:4k/size=4K"},                             // size canonicalizes to suffix form
		{"kvstore/qps=45000/ops=1000/seed=3/device=CXL-C", "kvstore/qps=45000/ops=1000/seed=3/device=CXL-C"},
		{"spec:mix/policy=interleave", "spec:mix/policy=interleave"},
		{"kvstore/platform=snc-off/policy=cxl", "kvstore/policy=cxl/platform=snc-off"}, // platform renders last
	}
	for _, c := range cases {
		sc, err := ParseScenario(c.in)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", c.in, err)
		}
		if got := sc.String(); got != c.canonical {
			t.Errorf("String(%q) = %q, want %q", c.in, got, c.canonical)
		}
		back, err := ParseScenario(sc.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", sc.String(), err)
		}
		if !reflect.DeepEqual(back, sc) {
			t.Errorf("round trip of %q: %+v != %+v", c.in, back, sc)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"4096", 4096}, {"64K", 64 << 10}, {"512m", 512 << 20}, {"4G", 4 << 30}, {"1T", 1 << 40},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if back, err := ParseBytes(FormatBytes(c.want)); err != nil || back != c.want {
			t.Errorf("FormatBytes round trip of %d failed: %d, %v", c.want, back, err)
		}
	}
}

// TestScenarioApply checks overrides land on the right Config fields and
// zero-valued spec fields leave the defaults alone.
func TestScenarioApply(t *testing.T) {
	def := Config{Variant: "a", Device: "CXL-A", CXLPercent: 50, TargetQPS: 1000, Threads: 8, Ops: 500}
	sc, err := ParseScenario("ycsb:readonly/policy=weighted:85,15/size=1G/seed=7")
	if err != nil {
		t.Fatal(err)
	}
	got := sc.Apply(def)
	if got.Variant != "readonly" || got.CXLPercent != 15 || got.SizeBytes != 1<<30 || got.Seed != 7 {
		t.Errorf("overrides not applied: %+v", got)
	}
	if got.TargetQPS != 1000 || got.Threads != 8 || got.Ops != 500 || got.Device != "CXL-A" {
		t.Errorf("defaults clobbered: %+v", got)
	}
}

// TestScenarioRunOnPlatform exercises the platform= path end to end: a cell
// without a device= key runs against the platform's default far device, an
// explicit device from another platform fails cleanly, and an explicit
// device belonging to the platform is honored.
func TestScenarioRunOnPlatform(t *testing.T) {
	env := NewEnv()
	env.Quick = true
	run := func(spec string) (Metrics, error) {
		sc, err := ParseScenario(spec)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", spec, err)
		}
		return sc.Run(env)
	}
	m, err := run("kvstore/platform=x16-quad")
	if err != nil {
		t.Fatalf("default-device run on x16-quad: %v", err)
	}
	if len(m.Items) == 0 {
		t.Fatal("no metrics")
	}
	if _, err := run("kvstore/platform=x16-quad/device=CXL-A"); err == nil {
		t.Error("CXL-A does not exist on x16-quad; expected an error")
	}
	if _, err := run("kvstore/platform=x16-quad/device=CXL-X3"); err != nil {
		t.Errorf("explicit x16-quad device: %v", err)
	}
	if env.Platform != "table1" || env.Sys.DefaultFarDevice() != "CXL-A" {
		t.Error("platform runs must not mutate the caller's environment")
	}
}

// TestEnvForPlatform pins the copy-vs-identity contract and that run options
// travel to the platform copy.
func TestEnvForPlatform(t *testing.T) {
	env := NewEnv()
	env.Quick = true
	env.Seed = 7
	same, err := env.ForPlatform("")
	if err != nil || same != env {
		t.Errorf("empty platform should return the same env, got %v, %v", same, err)
	}
	same, err = env.ForPlatform(env.Platform)
	if err != nil || same != env {
		t.Errorf("identical platform should return the same env, got %v, %v", same, err)
	}
	other, err := env.ForPlatform("fpga-degraded")
	if err != nil {
		t.Fatal(err)
	}
	if other == env || other.Sys == env.Sys {
		t.Error("different platform should build a fresh system")
	}
	if !other.Quick || other.Seed != 7 || other.Platform != "fpga-degraded" {
		t.Errorf("run options lost in the copy: %+v", other)
	}
	if other.Sys.DefaultFarDevice() != "CXL-F" {
		t.Errorf("fpga-degraded default far device = %q", other.Sys.DefaultFarDevice())
	}
	if _, err := env.ForPlatform("nope"); err == nil {
		t.Error("unknown platform should error")
	}
}
