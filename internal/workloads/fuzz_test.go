package workloads

import (
	"reflect"
	"strings"
	"testing"

	"cxlmem/internal/sim"
)

// roundTrip asserts the canonical-form contract on one parsed scenario:
// String must re-parse to an identical Scenario with an identical canonical
// string (String is the memo key — a fixpoint or cells silently fork).
func roundTrip(t *testing.T, sc Scenario) {
	t.Helper()
	canon := sc.String()
	re, err := ParseScenario(canon)
	if err != nil {
		t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
	}
	if re.String() != canon {
		t.Fatalf("canonical form is not a fixpoint: %q -> %q", canon, re.String())
	}
	if !reflect.DeepEqual(re, sc) {
		t.Fatalf("round trip of %q changed the scenario: %+v vs %+v", canon, re, sc)
	}
}

// TestScenarioFuzzCorpus is the CI-bounded fuzzer corpus: ~200 random valid
// specs across the workload x platform matrix. Every spec must parse,
// canonicalize to a fixpoint, and a strided subset must run end to end in a
// quick environment without a panic or an error.
func TestScenarioFuzzCorpus(t *testing.T) {
	rng := sim.NewRng(2026)
	env := NewEnv()
	env.Quick = true
	for i := 0; i < 200; i++ {
		spec := RandomScenarioSpec(rng)
		sc, err := mustParse(spec)
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, sc)
		// Running every cell would dominate CI; a fixed stride keeps the
		// executed subset deterministic and cheap while still crossing
		// workloads, platforms and knob mixes.
		if i%20 != 0 {
			continue
		}
		if _, err := sc.Run(env); err != nil {
			t.Errorf("generated scenario %q does not run: %v", sc, err)
		}
	}
}

// TestRandomScenarioCoverage: over a seeded corpus the generator must visit
// every registered workload and every knob key at least once — otherwise the
// fuzzer silently stops guarding part of the matrix.
func TestRandomScenarioCoverage(t *testing.T) {
	rng := sim.NewRng(7)
	workloadsSeen := map[string]bool{}
	var variant, policy, size, qps, threads, ops, seed, device, platform bool
	for i := 0; i < 2000; i++ {
		sc := RandomScenario(rng)
		workloadsSeen[sc.Workload] = true
		variant = variant || sc.Variant != ""
		policy = policy || sc.Policy.Set
		size = size || sc.SizeBytes > 0
		qps = qps || sc.TargetQPS > 0
		threads = threads || sc.Threads > 0
		ops = ops || sc.Ops > 0
		seed = seed || sc.Seed != 0
		device = device || sc.Device != ""
		platform = platform || sc.Platform != ""
	}
	for _, name := range Names() {
		if !workloadsSeen[name] {
			t.Errorf("generator never drew workload %s", name)
		}
	}
	for name, hit := range map[string]bool{
		"variant": variant, "policy": policy, "size": size, "qps": qps,
		"threads": threads, "ops": ops, "seed": seed, "device": device, "platform": platform,
	} {
		if !hit {
			t.Errorf("generator never set %s", name)
		}
	}
}

// FuzzParseScenario is the native fuzz target: any input that parses must
// canonicalize to a re-parseable fixpoint, and no input may panic. CI runs a
// bounded -fuzztime pass; local `go test -fuzz FuzzParseScenario` digs
// deeper.
func FuzzParseScenario(f *testing.F) {
	rng := sim.NewRng(99)
	for i := 0; i < 32; i++ {
		f.Add(RandomScenarioSpec(rng))
	}
	f.Add("kvstore/policy=weighted:85,15/size=4G")
	f.Add("tpp-timeline:steady/qps=80000/ops=120")
	f.Add("fluid/platform=x16-quad")
	f.Add("ycsb:rmw/policy=cxl:63/seed=7")
	f.Add("dlrm/policy=weighted:0,4")
	f.Add("fio:64k/device=CXL-B")
	f.Add("")
	f.Add("///")
	f.Add("kvstore/policy=")
	f.Add("kvstore/qps=NaN")
	f.Add("kvstore/size=-1G")
	f.Fuzz(func(t *testing.T, spec string) {
		sc, err := ParseScenario(spec)
		if err != nil {
			return // invalid inputs must only error, never panic
		}
		canon := sc.String()
		re, err := ParseScenario(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, spec, err)
		}
		if re.String() != canon {
			t.Fatalf("canonical form is not a fixpoint: %q -> %q -> %q", spec, canon, re.String())
		}
	})
}

// TestFuzzSeedsRejectedCleanly pins the error path of the hand-written
// invalid seeds: they must produce errors mentioning the failing part.
func TestFuzzSeedsRejectedCleanly(t *testing.T) {
	for _, bad := range []string{"", "///", "kvstore/policy=", "kvstore/qps=NaN", "kvstore/size=-1G", "nosuch/policy=ddr"} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("spec %q should not parse", bad)
		} else if !strings.Contains(err.Error(), "workloads:") {
			t.Errorf("spec %q: error %v lacks package context", bad, err)
		}
	}
}
