package dsb

import (
	"testing"

	"cxlmem/internal/topo"
)

func TestSpecsCoverTable2(t *testing.T) {
	for _, w := range Workloads() {
		spec := w.Spec()
		if spec[Frontend].WorkingSetMB != 83 || spec[Logic].WorkingSetMB != 208 || spec[Caching].WorkingSetMB != 628 {
			t.Errorf("%v: working sets diverge from Table 2", w)
		}
		for tier := Frontend; tier < numTiers; tier++ {
			if spec[tier].Servers <= 0 || spec[tier].BaseService <= 0 {
				t.Errorf("%v/%v: invalid spec", w, tier)
			}
		}
	}
}

// TestF3MarginalImpact: for compose posts and read user timelines, placing
// the caching tier entirely on CXL changes p99 by only a few percent at
// moderate load (paper Fig. 6b/6c).
func TestF3MarginalImpact(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cases := []struct {
		w   Workload
		qps float64
	}{
		{ComposePosts, 3000},
		{ReadUserTimelines, 20000},
	}
	for _, c := range cases {
		ddr := Run(sys, c.w, "CXL-A", false, c.qps, 15000, 1)
		cxl := Run(sys, c.w, "CXL-A", true, c.qps, 15000, 1)
		ratio := float64(cxl.P99) / float64(ddr.P99)
		if ratio > 1.15 {
			t.Errorf("%v: CXL/DDR p99 = %.2f, want ~1 (ms-scale app)", c.w, ratio)
		}
		if ratio < 0.9 {
			t.Errorf("%v: CXL unexpectedly faster at moderate load: %.2f", c.w, ratio)
		}
	}
}

// TestMixedCXLWindow: the bandwidth-hungry mixed workload flips — CXL
// placement beats DDR placement in the mid-QPS window (paper: 5–11 kQPS).
func TestMixedCXLWindow(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	ddr := Run(sys, Mixed, "CXL-A", false, 9500, 15000, 2)
	cxl := Run(sys, Mixed, "CXL-A", true, 9500, 15000, 2)
	if cxl.P99 >= ddr.P99 {
		t.Errorf("mixed at 9.5k: CXL p99 %v should beat DDR p99 %v", cxl.P99, ddr.P99)
	}
	// At low QPS the ordering reverts (slightly) to DDR.
	ddrLo := Run(sys, Mixed, "CXL-A", false, 2000, 15000, 2)
	cxlLo := Run(sys, Mixed, "CXL-A", true, 2000, 15000, 2)
	if float64(cxlLo.P99) < float64(ddrLo.P99)*0.98 {
		t.Errorf("mixed at 2k: CXL p99 %v should not beat DDR p99 %v", cxlLo.P99, ddrLo.P99)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	lo := Run(sys, ComposePosts, "CXL-A", false, 1000, 10000, 3)
	hi := Run(sys, ComposePosts, "CXL-A", false, 5200, 10000, 3)
	if hi.P99 <= lo.P99 {
		t.Errorf("p99 should grow toward saturation: %v vs %v", lo.P99, hi.P99)
	}
	if lo.P50 > lo.P99 {
		t.Error("p50 exceeds p99")
	}
}

func TestDeterminism(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	a := Run(sys, ReadUserTimelines, "CXL-A", true, 10000, 5000, 7)
	b := Run(sys, ReadUserTimelines, "CXL-A", true, 10000, 5000, 7)
	if a.P99 != b.P99 || a.P50 != b.P50 {
		t.Error("same-seed runs diverged")
	}
}

func TestRunPanics(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	for name, fn := range map[string]func(){
		"qps":  func() { Run(sys, Mixed, "CXL-A", false, 0, 10, 1) },
		"reqs": func() { Run(sys, Mixed, "CXL-A", false, 100, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStrings(t *testing.T) {
	if ComposePosts.String() != "compose posts" || Mixed.String() != "mixed workloads" {
		t.Error("workload strings wrong")
	}
	if Caching.String() != "Caching & Storage" {
		t.Error("tier strings wrong")
	}
}
