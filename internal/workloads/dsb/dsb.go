// Package dsb models the DeathStarBench social-network microservice suite
// (§3.3, Table 2, Fig. 6b–d): a three-tier request pipeline of
//
//	frontend (nginx, 83 MB, compute-bound)  →
//	logic    (ML inference & business logic, 208 MB, compute-bound)  →
//	caching & storage (memcached/mongodb, 628 MB, memory-bound)
//
// The paper places 100 % of the caching & storage tier's pages on either DDR
// or CXL memory while keeping the latency-critical frontend/logic tiers on
// DDR, and finds (F3) that ms-scale applications barely notice CXL's longer
// latency — and that the bandwidth-hungry "mixed" workload actually *wins*
// with CXL in its 5–11 kQPS window because the caching traffic stops
// competing with the other tiers for DDR bandwidth.
package dsb

import (
	"fmt"
	"sort"

	"cxlmem/internal/mem"
	"cxlmem/internal/sim"
	"cxlmem/internal/stats"
	"cxlmem/internal/topo"
)

// Tier identifies a pipeline stage.
type Tier int

const (
	// Frontend is the nginx/web tier.
	Frontend Tier = iota
	// Logic is the business-logic / ML tier.
	Logic
	// Caching is the caching & storage tier.
	Caching
	numTiers
)

// String names the tier as in Table 2.
func (t Tier) String() string {
	switch t {
	case Frontend:
		return "Frontend"
	case Logic:
		return "Logic"
	case Caching:
		return "Caching & Storage"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// TierSpec is the Table-2 description of one component.
type TierSpec struct {
	// WorkingSetMB is the component's footprint (Table 2).
	WorkingSetMB int
	// Servers is the worker parallelism of the tier.
	Servers int
	// BaseService is the tier's compute service time per request.
	BaseService sim.Time
	// MemAccesses is the number of serialized memory accesses per request
	// that hit the tier's working set beyond the caches.
	MemAccesses int
	// BytesPerReq is the tier's streaming memory traffic per request
	// (feeds the bandwidth-contention model).
	BytesPerReq int64
}

// Workload selects one of the evaluated request types.
type Workload int

const (
	// ComposePosts writes new posts (Fig. 6b).
	ComposePosts Workload = iota
	// ReadUserTimelines reads user timelines (Fig. 6c).
	ReadUserTimelines
	// Mixed is 10% compose / 30% read-user / 60% read-home (Fig. 6d) — the
	// bandwidth-intensive one (~32 GB/s at saturation).
	Mixed
)

// String names the workload.
func (w Workload) String() string {
	switch w {
	case ComposePosts:
		return "compose posts"
	case ReadUserTimelines:
		return "read user timelines"
	case Mixed:
		return "mixed workloads"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// Workloads returns the three evaluated workloads in Fig. 6 order.
func Workloads() []Workload { return []Workload{ComposePosts, ReadUserTimelines, Mixed} }

// WorkloadByName resolves the scenario-spec names: "compose" (Fig. 6b),
// "readuser" (Fig. 6c) and "mixed" (Fig. 6d).
func WorkloadByName(name string) (Workload, error) {
	switch name {
	case "compose":
		return ComposePosts, nil
	case "readuser":
		return ReadUserTimelines, nil
	case "mixed":
		return Mixed, nil
	default:
		return 0, fmt.Errorf("dsb: unknown workload %q (want compose, readuser or mixed)", name)
	}
}

// Spec returns the per-tier parameters of a workload. Working sets follow
// Table 2; service times and per-request traffic are calibrated to the
// paper's saturation points (compose ~5 kQPS at 7 GB/s, read ~40 kQPS at
// 10 GB/s, mixed ~12 kQPS at 32 GB/s).
func (w Workload) Spec() [numTiers]TierSpec {
	switch w {
	case ComposePosts:
		return [numTiers]TierSpec{
			Frontend: {WorkingSetMB: 83, Servers: 8, BaseService: 400 * sim.Microsecond, MemAccesses: 600, BytesPerReq: 140 << 10},
			Logic:    {WorkingSetMB: 208, Servers: 16, BaseService: 2500 * sim.Microsecond, MemAccesses: 2500, BytesPerReq: 420 << 10},
			Caching:  {WorkingSetMB: 628, Servers: 8, BaseService: 800 * sim.Microsecond, MemAccesses: 3000, BytesPerReq: 840 << 10},
		}
	case ReadUserTimelines:
		return [numTiers]TierSpec{
			Frontend: {WorkingSetMB: 83, Servers: 8, BaseService: 150 * sim.Microsecond, MemAccesses: 300, BytesPerReq: 25 << 10},
			Logic:    {WorkingSetMB: 208, Servers: 16, BaseService: 350 * sim.Microsecond, MemAccesses: 900, BytesPerReq: 75 << 10},
			Caching:  {WorkingSetMB: 628, Servers: 8, BaseService: 150 * sim.Microsecond, MemAccesses: 600, BytesPerReq: 150 << 10},
		}
	case Mixed:
		// The 10/30/60 mix hammers the caching tier with streaming reads
		// (home timelines) while the logic tier stays latency-critical:
		// large per-request traffic, modest dependent-access counts in the
		// caching path (storage access is asynchronous).
		return [numTiers]TierSpec{
			Frontend: {WorkingSetMB: 83, Servers: 8, BaseService: 250 * sim.Microsecond, MemAccesses: 1500, BytesPerReq: 500 << 10},
			Logic:    {WorkingSetMB: 208, Servers: 16, BaseService: 1100 * sim.Microsecond, MemAccesses: 4000, BytesPerReq: 2200 << 10},
			Caching:  {WorkingSetMB: 628, Servers: 8, BaseService: 450 * sim.Microsecond, MemAccesses: 800, BytesPerReq: 1500 << 10},
		}
	default:
		panic(fmt.Sprintf("dsb: unknown workload %d", w))
	}
}

// Result summarizes one operating point.
type Result struct {
	// TargetQPS is the offered load.
	TargetQPS float64
	// P99 and P50 are end-to-end latency percentiles.
	P99, P50 sim.Time
	// Saturated reports whether any tier's servers were overloaded
	// (offered load beyond capacity).
	Saturated bool
}

// Run simulates the workload at targetQPS for the given number of requests,
// with the caching tier's pages on CXL memory (cachingOnCXL) or on DDR.
// Frontend and logic always live on DDR (§5.1: instruction-fetch-bound
// components must stay on low-latency memory).
func Run(sys *topo.System, w Workload, cxlName string, cachingOnCXL bool, targetQPS float64, requests int, seed uint64) Result {
	if targetQPS <= 0 || requests <= 0 {
		panic("dsb: invalid run parameters")
	}
	spec := w.Spec()
	ddr := sys.DDRLocal
	cxl := sys.Path(cxlName)

	// Bandwidth contention: aggregate per-device demand at the target QPS
	// sets loaded-latency factors for each tier's memory component.
	// Microservice traffic is bursty; the burst factor converts the mean
	// rate into the effective short-term rate the controllers see.
	const burstFactor = 1.4
	var ddrBytes, cxlBytes float64
	for t := Frontend; t < numTiers; t++ {
		bytes := float64(spec[t].BytesPerReq) * targetQPS * burstFactor
		if t == Caching && cachingOnCXL {
			cxlBytes += bytes
		} else {
			ddrBytes += bytes
		}
	}
	window := sim.Second
	servedDDR := ddr.Device.Serve(mem.Demand{ReadBytes: ddrBytes * 0.8, WriteBytes: ddrBytes * 0.2}, window)
	servedCXL := cxl.Device.Serve(mem.Demand{ReadBytes: cxlBytes * 0.8, WriteBytes: cxlBytes * 0.2}, window)

	// Per-tier service times: compute + memory component at loaded latency.
	var svc [numTiers]sim.Time
	for t := Frontend; t < numTiers; t++ {
		path, factor := ddr, servedDDR.LatencyFactor
		if t == Caching && cachingOnCXL {
			path, factor = cxl, servedCXL.LatencyFactor
		}
		svc[t] = spec[t].BaseService +
			sim.Time(spec[t].MemAccesses)*path.LoadedParallelLatency(mem.Load, factor)
	}

	// Event simulation: Poisson arrivals through three multi-server stages.
	rng := sim.NewRng(seed)
	free := make([][]sim.Time, numTiers)
	for t := range free {
		free[t] = make([]sim.Time, spec[t].Servers)
	}
	pickServer := func(t Tier, ready sim.Time) (int, sim.Time) {
		best := 0
		for i, f := range free[t] {
			if f < free[t][best] {
				best = i
			}
		}
		start := ready
		if free[t][best] > start {
			start = free[t][best]
		}
		return best, start
	}
	interarrival := 1e9 / targetQPS
	arrival := sim.Time(0)
	lats := make([]float64, 0, requests)
	saturated := false
	for i := 0; i < requests; i++ {
		arrival += sim.FromNanoseconds(rng.Exp(interarrival))
		ready := arrival
		for t := Frontend; t < numTiers; t++ {
			srv, start := pickServer(t, ready)
			// Service-time variability: exponential tail on 30% of the work.
			s := sim.Time(float64(svc[t]) * (0.7 + 0.3*rng.Exp(1)))
			done := start + s
			free[t][srv] = done
			ready = done
		}
		lat := (ready - arrival).Nanoseconds()
		lats = append(lats, lat)
		if lat > 200*float64(sim.Millisecond)/float64(sim.Nanosecond) {
			saturated = true
		}
	}
	sort.Float64s(lats)
	return Result{
		TargetQPS: targetQPS,
		P99:       sim.FromNanoseconds(stats.PercentileSorted(lats, 99)),
		P50:       sim.FromNanoseconds(stats.PercentileSorted(lats, 50)),
		Saturated: saturated,
	}
}
