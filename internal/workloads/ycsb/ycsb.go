// Package ycsb generates Yahoo! Cloud Serving Benchmark operation streams
// (Cooper et al., SoCC'10) for the Redis experiments of §5. It implements
// the standard core workloads A–F with uniform, zipfian and latest key
// distributions. The paper uses a uniform distribution "ensuring maximum
// stress on the memory subsystem, unless we explicitly specify" otherwise.
package ycsb

import (
	"fmt"
	"strings"

	"cxlmem/internal/sim"
)

// OpType is a YCSB operation kind.
type OpType int

const (
	// Read fetches a record.
	Read OpType = iota
	// Update overwrites a record's value.
	Update
	// Insert appends a new record.
	Insert
	// ReadModifyWrite reads then updates a record (workload F).
	ReadModifyWrite
)

// String names the operation.
func (t OpType) String() string {
	switch t {
	case Read:
		return "read"
	case Update:
		return "update"
	case Insert:
		return "insert"
	case ReadModifyWrite:
		return "rmw"
	default:
		return fmt.Sprintf("OpType(%d)", int(t))
	}
}

// Op is one generated operation.
type Op struct {
	Type OpType
	Key  int
}

// Distribution selects how keys are drawn.
type Distribution int

const (
	// Uniform draws keys uniformly (the paper's default).
	Uniform Distribution = iota
	// Zipfian draws keys zipf(0.99), the YCSB default skew.
	Zipfian
	// Latest favors recently inserted keys (workload D).
	Latest
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	case Latest:
		return "latest"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ZipfTheta is the YCSB default zipfian skew.
const ZipfTheta = 0.99

// Workload is a YCSB operation mix.
type Workload struct {
	// Name is the YCSB letter ("A".."F").
	Name string
	// ReadP, UpdateP, InsertP, RMWP are the operation proportions; they
	// must sum to 1.
	ReadP, UpdateP, InsertP, RMWP float64
	// DefaultDist is the workload's standard key distribution.
	DefaultDist Distribution
}

// Validate reports mix errors.
func (w Workload) Validate() error {
	sum := w.ReadP + w.UpdateP + w.InsertP + w.RMWP
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("ycsb: workload %s proportions sum to %v", w.Name, sum)
	}
	return nil
}

// The standard core workloads. E (scans) is omitted: the paper evaluates
// A, B, C, D and F (Fig. 9b).
var (
	WorkloadA = Workload{Name: "A", ReadP: 0.5, UpdateP: 0.5, DefaultDist: Zipfian}
	WorkloadB = Workload{Name: "B", ReadP: 0.95, UpdateP: 0.05, DefaultDist: Zipfian}
	WorkloadC = Workload{Name: "C", ReadP: 1.0, DefaultDist: Zipfian}
	WorkloadD = Workload{Name: "D", ReadP: 0.95, InsertP: 0.05, DefaultDist: Latest}
	WorkloadF = Workload{Name: "F", ReadP: 0.5, RMWP: 0.5, DefaultDist: Zipfian}
)

// Workloads returns the evaluated workloads in Fig. 9b order.
func Workloads() []Workload {
	return []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadF}
}

// WorkloadByName finds a workload by letter.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// Aliases maps the descriptive scenario-spec names onto the YCSB letters:
// updateheavy=A, readmostly=B, readonly=C, readlatest=D, rmw=F.
func Aliases() map[string]string {
	return map[string]string{
		"updateheavy": "A",
		"readmostly":  "B",
		"readonly":    "C",
		"readlatest":  "D",
		"rmw":         "F",
	}
}

// WorkloadByAlias resolves a workload by letter (either case) or by the
// descriptive aliases of Aliases.
func WorkloadByAlias(name string) (Workload, error) {
	if canonical, ok := Aliases()[strings.ToLower(name)]; ok {
		name = canonical
	}
	return WorkloadByName(strings.ToUpper(name))
}

// WriteFraction returns the fraction of operations that write (updates,
// inserts, and the write half of RMW count as writes).
func (w Workload) WriteFraction() float64 {
	return w.UpdateP + w.InsertP + w.RMWP
}

// Generator produces an operation stream.
type Generator struct {
	w        Workload
	dist     Distribution
	keys     int
	inserted int
	rng      *sim.Rng
	zipf     *sim.Zipf
}

// NewGenerator creates a generator over a keyspace of the given size. dist
// overrides the workload's default distribution (the paper forces Uniform
// for its latency experiments); pass w.DefaultDist to keep the standard.
func NewGenerator(w Workload, keys int, dist Distribution, seed uint64) *Generator {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	if keys <= 0 {
		panic("ycsb: non-positive keyspace")
	}
	rng := sim.NewRng(seed)
	g := &Generator{w: w, dist: dist, keys: keys, inserted: keys, rng: rng}
	if dist == Zipfian || dist == Latest {
		g.zipf = sim.NewZipf(rng, keys, ZipfTheta)
	}
	return g
}

// Keys returns the current keyspace size (grows with inserts).
func (g *Generator) Keys() int { return g.inserted }

// Next returns the next operation.
func (g *Generator) Next() Op {
	op := g.pickType()
	if op == Insert {
		key := g.inserted
		g.inserted++
		return Op{Type: Insert, Key: key}
	}
	return Op{Type: op, Key: g.pickKey()}
}

func (g *Generator) pickType() OpType {
	u := g.rng.Float64()
	switch {
	case u < g.w.ReadP:
		return Read
	case u < g.w.ReadP+g.w.UpdateP:
		return Update
	case u < g.w.ReadP+g.w.UpdateP+g.w.InsertP:
		return Insert
	default:
		return ReadModifyWrite
	}
}

func (g *Generator) pickKey() int {
	switch g.dist {
	case Uniform:
		return g.rng.Intn(g.inserted)
	case Zipfian:
		return g.zipf.Next() % g.inserted
	case Latest:
		// Latest: rank 0 is the most recent insert.
		off := g.zipf.Next() % g.inserted
		return g.inserted - 1 - off
	default:
		panic(fmt.Sprintf("ycsb: unknown distribution %v", g.dist))
	}
}
