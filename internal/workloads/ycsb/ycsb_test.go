package ycsb

import (
	"testing"
	"testing/quick"
)

func TestStandardWorkloadsValid(t *testing.T) {
	for _, w := range Workloads() {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
	if len(Workloads()) != 5 {
		t.Error("expected workloads A, B, C, D, F")
	}
}

func TestWorkloadByName(t *testing.T) {
	w, err := WorkloadByName("A")
	if err != nil || w.Name != "A" {
		t.Errorf("lookup A failed: %v", err)
	}
	if _, err := WorkloadByName("E"); err == nil {
		t.Error("workload E should be unknown (scans not modeled)")
	}
}

func TestWriteFractions(t *testing.T) {
	cases := map[string]float64{"A": 0.5, "B": 0.05, "C": 0, "D": 0.05, "F": 0.5}
	for name, want := range cases {
		w, _ := WorkloadByName(name)
		if got := w.WriteFraction(); got != want {
			t.Errorf("%s write fraction = %v, want %v", name, got, want)
		}
	}
}

func TestMixProportions(t *testing.T) {
	g := NewGenerator(WorkloadA, 10000, Uniform, 1)
	counts := map[OpType]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next().Type]++
	}
	rf := float64(counts[Read]) / n
	uf := float64(counts[Update]) / n
	if rf < 0.48 || rf > 0.52 || uf < 0.48 || uf > 0.52 {
		t.Errorf("workload A mix off: read=%v update=%v", rf, uf)
	}
}

func TestKeysInRange(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Zipfian, Latest} {
		g := NewGenerator(WorkloadC, 5000, dist, 2)
		for i := 0; i < 50000; i++ {
			op := g.Next()
			if op.Key < 0 || op.Key >= g.Keys() {
				t.Fatalf("%v: key %d out of range [0, %d)", dist, op.Key, g.Keys())
			}
		}
	}
}

func TestInsertGrowsKeyspace(t *testing.T) {
	g := NewGenerator(WorkloadD, 1000, Latest, 3)
	before := g.Keys()
	inserts := 0
	for i := 0; i < 20000; i++ {
		if g.Next().Type == Insert {
			inserts++
		}
	}
	if g.Keys() != before+inserts {
		t.Errorf("keyspace grew by %d, want %d", g.Keys()-before, inserts)
	}
	if inserts == 0 {
		t.Error("workload D generated no inserts")
	}
}

func TestZipfianSkewsHead(t *testing.T) {
	g := NewGenerator(WorkloadC, 100000, Zipfian, 4)
	head := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Next().Key < 1000 {
			head++
		}
	}
	if frac := float64(head) / n; frac < 0.3 {
		t.Errorf("zipfian head fraction = %v, want substantial", frac)
	}
}

func TestLatestFavorsRecent(t *testing.T) {
	g := NewGenerator(WorkloadD, 100000, Latest, 5)
	recent := 0
	const n = 50000
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Type == Read && op.Key > g.Keys()-1000 {
			recent++
		}
	}
	if frac := float64(recent) / n; frac < 0.25 {
		t.Errorf("latest distribution read recent keys only %v of the time", frac)
	}
}

func TestUniformCoversKeyspaceProperty(t *testing.T) {
	f := func(seed uint32) bool {
		g := NewGenerator(WorkloadC, 100, Uniform, uint64(seed))
		seen := map[int]bool{}
		for i := 0; i < 5000; i++ {
			seen[g.Next().Key] = true
		}
		return len(seen) > 95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero keys": func() { NewGenerator(WorkloadA, 0, Uniform, 1) },
		"bad mix":   func() { NewGenerator(Workload{Name: "X", ReadP: 0.3}, 10, Uniform, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStrings(t *testing.T) {
	if Read.String() != "read" || ReadModifyWrite.String() != "rmw" {
		t.Error("op type strings wrong")
	}
	if Uniform.String() != "uniform" || Latest.String() != "latest" {
		t.Error("distribution strings wrong")
	}
}
