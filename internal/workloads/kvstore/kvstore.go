// Package kvstore models Redis under YCSB load on the simulated system
// (paper §3.3, §5.1, §5.2): a single-threaded, in-memory key-value store
// whose µs-scale operations make it highly sensitive to memory access
// latency (finding F1).
//
// Each operation costs CPU time plus a memory component: a chain of
// *dependent* pointer hops through the dict entry and object headers (paying
// the serialized path latency of whichever device holds the key's pages)
// and a value transfer (overlapped, paying the parallel per-line latency).
// Updates additionally write the value back with temporal stores.
//
// Latency experiments run an open-loop (Poisson) arrival process against the
// single service thread — an M/G/1 queue — and report percentiles over the
// completed operations; throughput experiments report the maximum
// sustainable QPS, the reciprocal of the mean service time.
package kvstore

import (
	"fmt"
	"sort"

	"cxlmem/internal/mem"
	"cxlmem/internal/numa"
	"cxlmem/internal/sim"
	"cxlmem/internal/stats"
	"cxlmem/internal/topo"
	"cxlmem/internal/tpp"
	"cxlmem/internal/workloads/ycsb"
)

// recordOverheadBytes is the per-record metadata beyond the value: dict
// entry, robj and sds headers.
const recordOverheadBytes = 128

// Config sizes the store and its per-operation costs.
type Config struct {
	// Keys is the number of records.
	Keys int
	// ValueBytes is the value size per record.
	ValueBytes int
	// CPUPerOp is the compute cost per operation: parsing, dispatching,
	// protocol handling.
	CPUPerOp sim.Time
	// DictHops is the number of dependent pointer dereferences per lookup
	// (hash bucket -> entry -> robj -> sds header chain).
	DictHops int
	// Seed drives the generators.
	Seed uint64
}

// DefaultConfig returns a Redis-like configuration calibrated so the maximum
// sustainable QPS and the DDR-vs-CXL sensitivity match §5's measurements
// (~30 % throughput loss at CXL 100 % for YCSB-A).
func DefaultConfig() Config {
	return Config{
		Keys:       2_000_000,
		ValueBytes: 2048,
		CPUPerOp:   6 * sim.Microsecond,
		DictHops:   6,
		Seed:       11,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Keys <= 0 || c.ValueBytes <= 0 || c.DictHops < 0 || c.CPUPerOp < 0 {
		return fmt.Errorf("kvstore: invalid config %+v", c)
	}
	return nil
}

// WithHeapBytes returns a copy of the config with the key count resized so
// the store's heap (value + per-record metadata, the same accounting New
// uses) totals approximately heapBytes. At least one key is kept.
func (c Config) WithHeapBytes(heapBytes int64) Config {
	if heapBytes <= 0 {
		return c
	}
	keys := heapBytes / int64(c.ValueBytes+recordOverheadBytes)
	if keys < 1 {
		keys = 1
	}
	c.Keys = int(keys)
	return c
}

// Store is one Redis instance whose heap pages are spread across DDR and a
// CXL device by a NUMA policy.
type Store struct {
	cfg   Config
	sys   *topo.System
	space *numa.Space
	paths []*topo.Path // indexed by node ID: 0 = DDR, 1 = CXL
	rng   *sim.Rng

	bytesPerKey int
	pagesPerKey int

	// Per-node operation cost tables, precomputed at construction: path
	// latencies are pure functions of the (immutable) topology, and
	// ServiceTime is the hottest per-op code in every latency and
	// throughput experiment.
	dictWalk  [2]sim.Time // CPUPerOp + DictHops dependent loads
	readCost  [2]sim.Time // value transfer, loads
	writeCost [2]sim.Time // value write-back, temporal stores
}

// New builds a store with cxlPercent of its pages interleaved onto the named
// CXL device (0 = all DDR, 100 = all CXL), matching the paper's use of the
// weighted-interleave mempolicy.
func New(sys *topo.System, cfg Config, cxlName string, cxlPercent float64) *Store {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nodes := []*numa.Node{
		{ID: 0, Name: "DDR5-L"},
		{ID: 1, Name: cxlName},
	}
	space := numa.NewSpace(nodes, numa.NewDDRCXLSplit(cxlPercent))
	s := &Store{
		cfg:   cfg,
		sys:   sys,
		space: space,
		paths: []*topo.Path{sys.DDRLocal, sys.Path(cxlName)},
		rng:   sim.NewRng(cfg.Seed),
	}
	// Record = dict entry + object header + value, rounded to lines.
	s.bytesPerKey = cfg.ValueBytes + recordOverheadBytes
	s.pagesPerKey = (s.bytesPerKey + numa.PageBytes - 1) / numa.PageBytes
	if s.pagesPerKey == 0 {
		s.pagesPerKey = 1
	}
	space.Alloc(cfg.Keys * s.pagesPerKey)
	valueLines := sim.Time((cfg.ValueBytes + mem.CacheLineBytes - 1) / mem.CacheLineBytes)
	for node, p := range s.paths {
		s.dictWalk[node] = cfg.CPUPerOp + sim.Time(cfg.DictHops)*p.SerialLatency(mem.Load)
		s.readCost[node] = valueLines * p.ParallelLatency(mem.Load)
		s.writeCost[node] = valueLines * p.ParallelLatency(mem.Store)
	}
	return s
}

// Space exposes the store's address space (TPP experiments drive it).
func (s *Store) Space() *numa.Space { return s.space }

// pageOfKey maps a key to its first heap page.
func (s *Store) pageOfKey(key int) int {
	return (key % s.cfg.Keys) * s.pagesPerKey
}

// ServiceTime computes the full service time of one operation from the
// per-node cost tables: a dependent dict walk plus the value transfer.
func (s *Store) ServiceTime(op ycsb.Op) sim.Time {
	node := s.space.NodeOfPage(s.pageOfKey(op.Key))
	t := s.dictWalk[node]
	switch op.Type {
	case ycsb.Read:
		t += s.readCost[node]
	case ycsb.Update, ycsb.Insert:
		t += s.writeCost[node]
	case ycsb.ReadModifyWrite:
		t += s.readCost[node] + s.writeCost[node]
	}
	return t
}

// LatencyResult summarizes an open-loop run.
type LatencyResult struct {
	// TargetQPS is the offered load.
	TargetQPS float64
	// P50, P99 are latency percentiles over completed operations.
	P50, P99 sim.Time
	// Mean is the mean latency.
	Mean sim.Time
	// Utilization is the service thread's busy fraction.
	Utilization float64
	// Latencies holds the raw per-op latencies in nanoseconds (for CDFs).
	Latencies []float64
}

// RunOpenLoop offers ops operations at targetQPS with Poisson arrivals and
// returns the latency distribution (M/G/1 through the single Redis thread).
func (s *Store) RunOpenLoop(w ycsb.Workload, dist ycsb.Distribution, targetQPS float64, ops int) LatencyResult {
	if targetQPS <= 0 || ops <= 0 {
		panic("kvstore: invalid open-loop parameters")
	}
	gen := ycsb.NewGenerator(w, s.cfg.Keys, dist, s.cfg.Seed+1)
	interarrival := 1e9 / targetQPS // ns

	var clock sim.Clock
	var serverFree sim.Time
	var busy sim.Time
	lats := make([]float64, 0, ops)
	arrival := sim.Time(0)
	for i := 0; i < ops; i++ {
		arrival += sim.FromNanoseconds(s.rng.Exp(interarrival))
		op := gen.Next()
		svc := s.ServiceTime(op)
		start := arrival
		if serverFree > start {
			start = serverFree
		}
		done := start + svc
		serverFree = done
		busy += svc
		clock.AdvanceTo(done)
		lats = append(lats, (done - arrival).Nanoseconds())
	}
	return s.summarize(targetQPS, lats, busy, clock.Now())
}

func (s *Store) summarize(qps float64, lats []float64, busy, elapsed sim.Time) LatencyResult {
	sort.Float64s(lats)
	util := 0.0
	if elapsed > 0 {
		util = float64(busy) / float64(elapsed)
		if util > 1 {
			util = 1
		}
	}
	return LatencyResult{
		TargetQPS:   qps,
		P50:         sim.FromNanoseconds(stats.PercentileSorted(lats, 50)),
		P99:         sim.FromNanoseconds(stats.PercentileSorted(lats, 99)),
		Mean:        sim.FromNanoseconds(stats.Mean(lats)),
		Utilization: util,
		Latencies:   lats,
	}
}

// MaxQPS estimates the maximum sustainable throughput: the reciprocal of the
// mean service time of the single-threaded store under the workload.
func (s *Store) MaxQPS(w ycsb.Workload, dist ycsb.Distribution, samples int) float64 {
	if samples <= 0 {
		panic("kvstore: non-positive sample count")
	}
	gen := ycsb.NewGenerator(w, s.cfg.Keys, dist, s.cfg.Seed+2)
	var total sim.Time
	for i := 0; i < samples; i++ {
		total += s.ServiceTime(gen.Next())
	}
	mean := float64(total) / float64(samples) // ps
	return 1e12 / mean
}

// TPPResult compares TPP-managed placement against a static interleave.
type TPPResult struct {
	// TPP and Static are the latency distributions (ns) of the two runs.
	TPP, Static LatencyResult
	// Migrations counts TPP page moves during the measured window.
	Migrations int64
}

// RunWithTPP reproduces the Fig. 7 experiment: the store starts with 100 %
// of pages on CXL; TPP migrates pages toward its 75 % DDR target. Once the
// warm migration completes, latency is measured while TPP keeps scanning
// (and, with skewed access, keeps migrating), charging each window the
// migration stall penalty of §5.1. The baseline statically interleaves 25 %
// of pages to CXL and never migrates.
func RunWithTPP(sys *topo.System, cfg Config, cxlName string, targetQPS float64, ops int) TPPResult {
	// Static baseline: 25 % of (random) pages on CXL, uniform keys — the
	// paper's default distribution.
	static := New(sys, cfg, cxlName, 25)
	staticRes := static.RunOpenLoop(ycsb.WorkloadA, ycsb.Uniform, targetQPS, ops)

	// TPP run. The paper starts with 100 % of pages on CXL, lets TPP
	// migrate until 25 % remain there, and measures only afterwards; we
	// start the measured phase from that post-warm state directly.
	store := New(sys, cfg, cxlName, 100)
	warmRng := sim.NewRng(cfg.Seed + 4)
	for _, p := range warmRng.Perm(store.space.Pages())[:store.space.Pages()*3/4] {
		store.space.Move(p, 0)
	}
	engine := tpp.NewEngine(tpp.DefaultConfig(), store.space)
	cost := tpp.DefaultCostModel()
	gen := ycsb.NewGenerator(ycsb.WorkloadA, cfg.Keys, ycsb.Uniform, cfg.Seed+3)

	// Measured phase: open-loop. Promotions are NUMA hint faults — the
	// unlucky operation that touches the sampled page performs the
	// migration synchronously (SyncCost); demotions run in the background
	// and are charged as a controller-occupancy penalty on the window.
	scanWindow := 100 * sim.Millisecond
	copyBW := sys.Path(cxlName).Device.EffectiveGBs(0.5)
	syncCost := cost.SyncCost(copyBW)
	interarrival := 1e9 / targetQPS
	var serverFree, busy sim.Time
	var clock sim.Clock
	arrival := sim.Time(0)
	nextScan := scanWindow
	var penalty sim.Time
	var pendingSync int
	var migrations int64
	lats := make([]float64, 0, ops)
	for i := 0; i < ops; i++ {
		arrival += sim.FromNanoseconds(store.rng.Exp(interarrival))
		for arrival >= nextScan {
			migs := engine.Scan()
			migrations += int64(len(migs))
			promotions := 0
			for _, m := range migs {
				if m.To == 0 {
					promotions++
				}
			}
			pendingSync += promotions
			penalty = cost.StallPenalty(len(migs)-promotions, scanWindow, copyBW)
			nextScan += scanWindow
		}
		op := gen.Next()
		engine.RecordAccess(uint64(store.pageOfKey(op.Key)) * numa.PageBytes)
		svc := store.ServiceTime(op) + penalty
		if pendingSync > 0 {
			svc += syncCost
			pendingSync--
		}
		start := arrival
		if serverFree > start {
			start = serverFree
		}
		done := start + svc
		serverFree = done
		busy += svc
		clock.AdvanceTo(done)
		lats = append(lats, (done - arrival).Nanoseconds())
	}
	return TPPResult{
		TPP:        store.summarize(targetQPS, lats, busy, clock.Now()),
		Static:     staticRes,
		Migrations: migrations,
	}
}
