package kvstore

import (
	"testing"

	"cxlmem/internal/topo"
	"cxlmem/internal/workloads/ycsb"
)

func testConfig() Config {
	c := DefaultConfig()
	c.Keys = 100_000 // smaller keyspace keeps tests fast
	return c
}

func TestServiceTimeDeviceSensitivity(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	ddr := New(sys, testConfig(), "CXL-A", 0)
	cxl := New(sys, testConfig(), "CXL-A", 100)
	op := ycsb.Op{Type: ycsb.Read, Key: 42}
	sd := ddr.ServiceTime(op)
	sc := cxl.ServiceTime(op)
	if sc <= sd {
		t.Fatalf("CXL service %v should exceed DDR %v", sc, sd)
	}
	// The gap is meaningful but bounded: CPU time dominates (µs-scale app).
	if ratio := float64(sc) / float64(sd); ratio < 1.1 || ratio > 2.0 {
		t.Errorf("service ratio = %.2f, want within (1.1, 2.0)", ratio)
	}
}

func TestUpdateCostsMoreThanRead(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	s := New(sys, testConfig(), "CXL-A", 100)
	read := s.ServiceTime(ycsb.Op{Type: ycsb.Read, Key: 1})
	upd := s.ServiceTime(ycsb.Op{Type: ycsb.Update, Key: 1})
	rmw := s.ServiceTime(ycsb.Op{Type: ycsb.ReadModifyWrite, Key: 1})
	if upd <= read {
		t.Error("update should cost more than read (temporal stores)")
	}
	if rmw <= upd {
		t.Error("rmw should cost more than update (read + write)")
	}
}

// TestFig6aShape: p99 grows with both the CXL page share and the target QPS,
// and explodes near saturation for CXL 100% while DDR 100% stays stable.
func TestFig6aShape(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := testConfig()
	const ops = 30000

	p99 := func(pct float64, qps float64) float64 {
		s := New(sys, cfg, "CXL-A", pct)
		return s.RunOpenLoop(ycsb.WorkloadA, ycsb.Uniform, qps, ops).P99.Microseconds()
	}

	// Monotone in CXL share at a high load point.
	at85k := []float64{p99(0, 85000), p99(25, 85000), p99(50, 85000), p99(75, 85000), p99(100, 85000)}
	for i := 1; i < len(at85k); i++ {
		if at85k[i] < at85k[i-1]*0.95 {
			t.Errorf("p99 at 85k not monotone in CXL share: %v", at85k)
			break
		}
	}
	// CXL 100% should hurt much more at 85k than DDR 100%.
	if at85k[4] < 1.4*at85k[0] {
		t.Errorf("CXL100 p99 %.1fus should be well above DDR100 %.1fus at 85kQPS", at85k[4], at85k[0])
	}
	// At modest load the gap is small (paper: ~10% at 25k).
	lo0, lo100 := p99(0, 25000), p99(100, 25000)
	if lo100 > 1.8*lo0 {
		t.Errorf("low-load p99 gap too large: DDR %.1fus vs CXL %.1fus", lo0, lo100)
	}
}

func TestMaxQPSMatchesPaperRatios(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := testConfig()
	base := New(sys, cfg, "CXL-A", 0).MaxQPS(ycsb.WorkloadA, ycsb.Uniform, 20000)
	full := New(sys, cfg, "CXL-A", 100).MaxQPS(ycsb.WorkloadA, ycsb.Uniform, 20000)
	// §5.2: CXL 100% gives ~30% lower throughput than DDR 100% for YCSB-A.
	drop := 1 - full/base
	if drop < 0.18 || drop > 0.40 {
		t.Errorf("YCSB-A max-QPS drop at CXL100 = %.2f, want ~0.30", drop)
	}
	// Intermediate ratios land in between and in order (Fig. 9b).
	prev := base
	for _, pct := range []float64{25, 50, 75} {
		q := New(sys, cfg, "CXL-A", pct).MaxQPS(ycsb.WorkloadA, ycsb.Uniform, 20000)
		if q >= prev {
			t.Errorf("max QPS should fall with CXL share: %.0f at %v%% vs %.0f before", q, pct, prev)
		}
		prev = q
	}
	if base < 80_000 || base > 200_000 {
		t.Errorf("DDR-100%% max QPS = %.0f, want a Redis-like 80k-200k", base)
	}
}

func TestReadOnlyWorkloadLessSensitive(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := testConfig()
	dropFor := func(w ycsb.Workload) float64 {
		base := New(sys, cfg, "CXL-A", 0).MaxQPS(w, ycsb.Uniform, 20000)
		full := New(sys, cfg, "CXL-A", 100).MaxQPS(w, ycsb.Uniform, 20000)
		return 1 - full/base
	}
	// Workload C (read-only) avoids store latency; drop should be smaller
	// than A's (Fig. 9b shows A/F hurt most).
	if dC, dA := dropFor(ycsb.WorkloadC), dropFor(ycsb.WorkloadA); dC >= dA {
		t.Errorf("read-only drop %.3f should be below 50/50 drop %.3f", dC, dA)
	}
}

// TestFig7TPPWorseThanStatic: TPP's ongoing migrations inflate the latency
// distribution relative to a static 25% interleave (finding F2).
func TestFig7TPPWorseThanStatic(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := testConfig()
	cfg.Keys = 50_000
	res := RunWithTPP(sys, cfg, "CXL-A", 40000, 20000)
	if res.Migrations == 0 {
		t.Fatal("TPP performed no migrations during the measured window")
	}
	if res.TPP.P99 <= res.Static.P99 {
		t.Errorf("TPP p99 %v should exceed static p99 %v", res.TPP.P99, res.Static.P99)
	}
	// Paper reports +174%; accept a broad band around "substantially worse".
	ratio := float64(res.TPP.P99) / float64(res.Static.P99)
	if ratio < 1.3 {
		t.Errorf("TPP/static p99 ratio = %.2f, want >= 1.3", ratio)
	}
}

func TestRunOpenLoopUtilization(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	s := New(sys, testConfig(), "CXL-A", 0)
	light := s.RunOpenLoop(ycsb.WorkloadA, ycsb.Uniform, 10000, 5000)
	if light.Utilization > 0.3 {
		t.Errorf("light-load utilization = %v", light.Utilization)
	}
	if light.P50 > light.P99 {
		t.Error("p50 should not exceed p99")
	}
	if len(light.Latencies) != 5000 {
		t.Errorf("latency samples = %d", len(light.Latencies))
	}
}

func TestPanics(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	s := New(sys, testConfig(), "CXL-A", 50)
	for name, fn := range map[string]func(){
		"bad cfg":     func() { New(sys, Config{}, "CXL-A", 0) },
		"bad qps":     func() { s.RunOpenLoop(ycsb.WorkloadA, ycsb.Uniform, 0, 10) },
		"bad ops":     func() { s.RunOpenLoop(ycsb.WorkloadA, ycsb.Uniform, 100, 0) },
		"bad samples": func() { s.MaxQPS(ycsb.WorkloadA, ycsb.Uniform, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
