// The scenario spec language: one-line strings selecting a workload,
// variant and knob overrides, e.g.
//
//	ycsb:readmostly/policy=weighted:85,15/size=4G
//	dlrm/policy=cxl:63/threads=32
//	fio:64k/policy=cxl
//	fluid/platform=x16-quad
//
// Grammar: workload[:variant][/key=value]... with keys policy, size, qps,
// threads, ops, seed, device, platform. ParseScenario and Scenario.String
// round-trip, and String is the canonical form used as the memoization key
// for matrix cells.
package workloads

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"cxlmem/internal/topo"
)

// parseFinite parses a float and rejects NaN/Inf: strconv accepts them, but
// a NaN knob defeats every range check (NaN < 0 is false) and — because
// String() omits fields via > 0 comparisons — would collide with the
// default cell's memoization key.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("workloads: non-finite value %q", s)
	}
	return v, nil
}

// Policy is the page-placement part of a scenario spec — the paper's
// numactl/weighted-interleave knob as text.
type Policy struct {
	// Spec is the canonical policy text: "ddr", "cxl", "interleave",
	// "weighted:D,C" (DDR weight, CXL weight) or "cxl:P" (percent). Empty
	// means the workload default.
	Spec string
	// CXLPercent is the derived share of pages on CXL memory, 0..100.
	CXLPercent float64
	// Set reports whether the scenario named a policy at all.
	Set bool
}

// ParsePolicy parses the policy=... value of a scenario spec.
func ParsePolicy(s string) (Policy, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch {
	case s == "ddr":
		return Policy{Spec: "ddr", CXLPercent: 0, Set: true}, nil
	case s == "cxl":
		return Policy{Spec: "cxl", CXLPercent: 100, Set: true}, nil
	case s == "interleave":
		return Policy{Spec: "interleave", CXLPercent: 50, Set: true}, nil
	case strings.HasPrefix(s, "cxl:"):
		p, err := parseFinite(s[len("cxl:"):])
		if err != nil || p < 0 || p > 100 {
			return Policy{}, fmt.Errorf("workloads: bad policy %q (want cxl:<0..100>)", s)
		}
		return Policy{Spec: fmt.Sprintf("cxl:%g", p), CXLPercent: p, Set: true}, nil
	case strings.HasPrefix(s, "weighted:"):
		parts := strings.Split(s[len("weighted:"):], ",")
		if len(parts) != 2 {
			return Policy{}, fmt.Errorf("workloads: bad policy %q (want weighted:<ddr>,<cxl>)", s)
		}
		ddr, err1 := parseFinite(strings.TrimSpace(parts[0]))
		cxl, err2 := parseFinite(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil || ddr < 0 || cxl < 0 || ddr+cxl <= 0 {
			return Policy{}, fmt.Errorf("workloads: bad policy weights %q", s)
		}
		return Policy{
			Spec:       fmt.Sprintf("weighted:%g,%g", ddr, cxl),
			CXLPercent: cxl / (ddr + cxl) * 100,
			Set:        true,
		}, nil
	default:
		return Policy{}, fmt.Errorf("workloads: unknown policy %q (want ddr, cxl, interleave, cxl:<pct> or weighted:<ddr>,<cxl>)", s)
	}
}

// Scenario is one parsed cell spec: a workload, an optional variant, and
// knob overrides applied on top of the workload's DefaultConfig.
type Scenario struct {
	// Workload is the registry name.
	Workload string
	// Variant overrides Config.Variant when non-empty.
	Variant string
	// Policy overrides Config.CXLPercent when Policy.Set.
	Policy Policy
	// SizeBytes overrides Config.SizeBytes when positive.
	SizeBytes int64
	// TargetQPS overrides Config.TargetQPS when positive.
	TargetQPS float64
	// Threads overrides Config.Threads when positive.
	Threads int
	// Ops overrides Config.Ops when positive.
	Ops int
	// Seed overrides Config.Seed when non-zero.
	Seed uint64
	// Device overrides Config.Device when non-empty.
	Device string
	// Platform selects the registered platform profile the cell runs on;
	// empty keeps the environment's platform (the Table-1 default).
	Platform string
}

// ParseScenario parses a spec string and checks the workload exists in the
// registry. Variants and aliases are validated later, by the workload's Run.
func ParseScenario(spec string) (Scenario, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Scenario{}, fmt.Errorf("workloads: empty scenario spec")
	}
	segs := strings.Split(spec, "/")
	head := strings.ToLower(strings.TrimSpace(segs[0]))
	var sc Scenario
	if name, variant, ok := strings.Cut(head, ":"); ok {
		sc.Workload, sc.Variant = name, variant
	} else {
		sc.Workload = head
	}
	if sc.Workload == "" {
		return Scenario{}, fmt.Errorf("workloads: spec %q names no workload", spec)
	}
	if _, err := Get(sc.Workload); err != nil {
		return Scenario{}, err
	}
	for _, seg := range segs[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(seg), "=")
		if !ok || val == "" {
			return Scenario{}, fmt.Errorf("workloads: spec segment %q is not key=value", seg)
		}
		var err error
		switch strings.ToLower(key) {
		case "policy":
			sc.Policy, err = ParsePolicy(val)
		case "size":
			sc.SizeBytes, err = ParseBytes(val)
		case "qps":
			sc.TargetQPS, err = parseFinite(val)
			if err == nil && sc.TargetQPS <= 0 {
				err = fmt.Errorf("workloads: qps must be positive, got %q", val)
			}
		case "threads":
			sc.Threads, err = strconv.Atoi(val)
			if err == nil && sc.Threads <= 0 {
				err = fmt.Errorf("workloads: threads must be positive, got %q", val)
			}
		case "ops":
			sc.Ops, err = strconv.Atoi(val)
			if err == nil && sc.Ops <= 0 {
				err = fmt.Errorf("workloads: ops must be positive, got %q", val)
			}
		case "seed":
			sc.Seed, err = strconv.ParseUint(val, 10, 64)
		case "device":
			sc.Device = val
		case "platform":
			sc.Platform = strings.ToLower(val)
			if _, perr := topo.PlatformByName(sc.Platform); perr != nil {
				err = perr
			}
		default:
			err = fmt.Errorf("workloads: unknown spec key %q (want policy, size, qps, threads, ops, seed, device or platform)", key)
		}
		if err != nil {
			return Scenario{}, err
		}
	}
	return sc, nil
}

// String renders the canonical spec: the head, then the overridden keys in
// the fixed order policy, size, qps, threads, ops, seed, device, platform.
// It round-trips through ParseScenario and serves as the memoization key.
func (s Scenario) String() string {
	var b strings.Builder
	b.WriteString(s.Workload)
	if s.Variant != "" {
		b.WriteByte(':')
		b.WriteString(s.Variant)
	}
	if s.Policy.Set {
		b.WriteString("/policy=")
		b.WriteString(s.Policy.Spec)
	}
	if s.SizeBytes > 0 {
		b.WriteString("/size=")
		b.WriteString(FormatBytes(s.SizeBytes))
	}
	if s.TargetQPS > 0 {
		fmt.Fprintf(&b, "/qps=%g", s.TargetQPS)
	}
	if s.Threads > 0 {
		fmt.Fprintf(&b, "/threads=%d", s.Threads)
	}
	if s.Ops > 0 {
		fmt.Fprintf(&b, "/ops=%d", s.Ops)
	}
	if s.Seed != 0 {
		fmt.Fprintf(&b, "/seed=%d", s.Seed)
	}
	if s.Device != "" {
		b.WriteString("/device=")
		b.WriteString(s.Device)
	}
	if s.Platform != "" {
		b.WriteString("/platform=")
		b.WriteString(s.Platform)
	}
	return b.String()
}

// Apply overlays the scenario's overrides onto a workload's default config.
func (s Scenario) Apply(cfg Config) Config {
	if s.Variant != "" {
		cfg.Variant = s.Variant
	}
	if s.Policy.Set {
		cfg.CXLPercent = s.Policy.CXLPercent
	}
	if s.SizeBytes > 0 {
		cfg.SizeBytes = s.SizeBytes
	}
	if s.TargetQPS > 0 {
		cfg.TargetQPS = s.TargetQPS
	}
	if s.Threads > 0 {
		cfg.Threads = s.Threads
	}
	if s.Ops > 0 {
		cfg.Ops = s.Ops
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.Device != "" {
		cfg.Device = s.Device
	}
	return cfg
}

// Run resolves the scenario's workload and platform, applies its overrides,
// and runs it. A platform= key rebuilds the environment's system from the
// named profile; when the scenario names no device, the platform's default
// far device backs the run ("CXL-A" on the Table-1 default), so every
// workload's calibrated config is runnable on every platform.
func (s Scenario) Run(env *Env) (Metrics, error) {
	w, err := Get(s.Workload)
	if err != nil {
		return Metrics{}, err
	}
	env, err = env.ForPlatform(s.Platform)
	if err != nil {
		return Metrics{}, err
	}
	cfg := s.Apply(w.DefaultConfig())
	if s.Device == "" {
		if d := env.Sys.DefaultFarDevice(); d != "" {
			cfg.Device = d
		}
	}
	return w.Run(env, cfg)
}

// ParseBytes parses a size literal: plain bytes or a K/M/G/T binary suffix
// ("4096", "64K", "512M", "4G").
func ParseBytes(s string) (int64, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	case strings.HasSuffix(s, "T"):
		mult, s = 1<<40, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("workloads: bad size %q (want e.g. 4096, 64K, 512M, 4G)", s)
	}
	return n * mult, nil
}

// FormatBytes renders a byte count with the largest binary suffix that
// divides it evenly — the inverse of ParseBytes for suffix-friendly values.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<40 && n%(1<<40) == 0:
		return fmt.Sprintf("%dT", n>>40)
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}
