// Package fluid provides the shared bandwidth-equilibrium solver used by the
// throughput-oriented workload models (DLRM embedding reduction, SPECrate
// surrogates, DSB contention analysis).
//
// The model: an application's memory accesses split across placement classes
// (pages on DDR vs. pages on a CXL device). Each class has an LLC hit rate;
// misses consume device bandwidth. The achievable access rate is limited
// both by the threads (finite memory-level parallelism against the average
// access latency) and by each device's effective bandwidth; loaded devices
// inflate latency through the queueing factor, which in turn throttles the
// threads. Solve iterates this loop to a fixed point — exactly the feedback
// the paper exploits in §6 (Fig. 11a: throughput rises with consumed
// bandwidth until queueing delay at the controller turns it around).
package fluid

import (
	"fmt"

	"cxlmem/internal/mem"
	"cxlmem/internal/topo"
)

// Class is one page-placement class of an application.
type Class struct {
	// Path is the device behind the class's pages.
	Path *topo.Path
	// Weight is the fraction of accesses hitting this class (sums to 1
	// across classes).
	Weight float64
	// HitRate is the LLC hit probability for this class's lines.
	HitRate float64
	// WriteFraction is the share of this class's memory traffic that is
	// writes (affects the device's delivered bandwidth).
	WriteFraction float64
}

// ClassState is the per-class equilibrium outcome.
type ClassState struct {
	// Utilization of the device's effective bandwidth in [0, 1].
	Utilization float64
	// QueueFactor is the latency inflation (>= 1).
	QueueFactor float64
	// LatencyNS is the average access latency for the class, including LLC
	// hits.
	LatencyNS float64
	// BandwidthGBs is the class's consumed device bandwidth.
	BandwidthGBs float64
}

// Equilibrium is the converged operating point.
type Equilibrium struct {
	// AccessRateGps is the total access rate in giga-accesses per second.
	AccessRateGps float64
	// AvgLatencyNS is the weighted average access latency.
	AvgLatencyNS float64
	// TotalBandwidthGBs is the total consumed memory bandwidth (the
	// "system bandwidth" of Fig. 11a).
	TotalBandwidthGBs float64
	// PerClass holds per-class detail aligned with the input slice.
	PerClass []ClassState
}

// RateFn maps the current average access latency (ns) to the access rate
// (giga-accesses/s) the compute side can sustain — typically
// threads × MLP / latency.
type RateFn func(avgLatencyNS float64) float64

// LLCHitLatencyNS is the average latency of an LLC hit as seen by the
// access stream (topo.LLCHitLatency).
const LLCHitLatencyNS = 33.0

// FootprintHitRate is the shared LLC hit-rate model of the footprint-based
// workloads (DLRM embeddings, SPEC surrogates): an LRU cache preferentially
// retains the hot region — its items have far higher reuse probability —
// then spills into the cold remainder. hotFraction of accesses target the
// hot region of hotBytes; the rest target coldBytes.
func FootprintHitRate(capacityBytes, hotBytes, coldBytes int64, hotFraction float64) float64 {
	hot := hotFraction * capf(capacityBytes, hotBytes)
	var cold float64
	if rem := capacityBytes - hotBytes; rem > 0 && coldBytes > 0 {
		cold = (1 - hotFraction) * capf(rem, coldBytes)
	}
	return hot + cold
}

// capf is the capped capacity fraction have/want clamped to [0, 1].
func capf(have, want int64) float64 {
	if want <= 0 {
		return 1
	}
	f := float64(have) / float64(want)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Solve iterates the latency/bandwidth feedback loop to a fixed point.
// classes must have positive total weight; iters of ~50 is plenty (the
// damped iteration converges geometrically).
func Solve(classes []Class, rate RateFn, iters int) Equilibrium {
	if len(classes) == 0 {
		panic("fluid: no classes")
	}
	totalW := 0.0
	for i, c := range classes {
		if c.Weight < 0 || c.HitRate < 0 || c.HitRate > 1 {
			panic(fmt.Sprintf("fluid: class %d invalid (weight %v, hit %v)", i, c.Weight, c.HitRate))
		}
		totalW += c.Weight
	}
	if totalW <= 0 {
		panic("fluid: zero total weight")
	}
	if iters <= 0 {
		iters = 50
	}

	qf := make([]float64, len(classes))
	for i := range qf {
		qf[i] = 1
	}
	var eq Equilibrium
	r := 0.0
	for it := 0; it < iters; it++ {
		// Average *serialized* access latency under current queue factors.
		// Parallelism is the rate function's business (threads × MLP / lat);
		// using amortized latencies here would double-count the overlap.
		avg := 0.0
		lat := make([]float64, len(classes))
		for i, c := range classes {
			miss := 1 - c.HitRate
			l := c.HitRate*LLCHitLatencyNS +
				miss*c.Path.SerialLatency(mem.Load).Nanoseconds()*qf[i]
			lat[i] = l
			avg += c.Weight / totalW * l
		}
		// Thread-limited rate.
		rT := rate(avg)
		// Bandwidth-limited rate: each class's miss traffic must fit its
		// device.
		rB := rT
		for _, c := range classes {
			miss := 1 - c.HitRate
			if c.Weight*miss <= 0 {
				continue
			}
			cap := c.Path.Device.EffectiveGBs(c.WriteFraction)
			// bytes/s at rate r: r(G/s) × w × miss × 64 → GB/s numerically.
			limit := cap / (c.Weight / totalW * miss * float64(mem.CacheLineBytes))
			if limit < rB {
				rB = limit
			}
		}
		next := rB
		// Damped update keeps the iteration stable near saturation.
		r = 0.6*r + 0.4*next
		// Update utilizations and queue factors at the new rate.
		eq.PerClass = eq.PerClass[:0]
		eq.TotalBandwidthGBs = 0
		for i, c := range classes {
			miss := 1 - c.HitRate
			bw := r * (c.Weight / totalW) * miss * float64(mem.CacheLineBytes)
			cap := c.Path.Device.EffectiveGBs(c.WriteFraction)
			u := 0.0
			if cap > 0 {
				u = bw / cap
				if u > 1 {
					u = 1
				}
			}
			qf[i] = mem.QueueFactor(u)
			eq.PerClass = append(eq.PerClass, ClassState{
				Utilization:  u,
				QueueFactor:  qf[i],
				LatencyNS:    lat[i],
				BandwidthGBs: bw,
			})
			eq.TotalBandwidthGBs += bw
		}
		eq.AccessRateGps = r
		eq.AvgLatencyNS = avg
	}
	// Final consistency pass: recompute latencies with the converged queue
	// factors so the reported snapshot matches the final rate (the damped
	// iteration can leave a stale latency from the penultimate step).
	avg := 0.0
	for i, c := range classes {
		miss := 1 - c.HitRate
		l := c.HitRate*LLCHitLatencyNS +
			miss*c.Path.SerialLatency(mem.Load).Nanoseconds()*qf[i]
		eq.PerClass[i].LatencyNS = l
		avg += c.Weight / totalW * l
	}
	eq.AvgLatencyNS = avg
	return eq
}
