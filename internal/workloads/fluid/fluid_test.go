package fluid

import (
	"testing"

	"cxlmem/internal/topo"
)

func TestSolveThreadLimited(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	classes := []Class{{Path: sys.DDRLocal, Weight: 1, HitRate: 0.9}}
	// Tiny rate: far below bandwidth limits.
	eq := Solve(classes, func(lat float64) float64 { return 0.01 }, 50)
	if eq.AccessRateGps < 0.009 || eq.AccessRateGps > 0.011 {
		t.Errorf("thread-limited rate = %v, want ~0.01", eq.AccessRateGps)
	}
	if eq.PerClass[0].Utilization > 0.1 {
		t.Errorf("utilization = %v, want light", eq.PerClass[0].Utilization)
	}
	if eq.PerClass[0].QueueFactor > 1.01 {
		t.Errorf("queue factor = %v, want ~1", eq.PerClass[0].QueueFactor)
	}
}

func TestSolveBandwidthLimited(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	// No LLC hits: every access consumes device bandwidth.
	classes := []Class{{Path: sys.DDRLocal, Weight: 1, HitRate: 0}}
	eq := Solve(classes, func(lat float64) float64 { return 1000 }, 80)
	// 2-channel DDR5 at 85% read efficiency: 65.28 GB/s -> ~1.02 G lines/s.
	cap := sys.DDRLocal.Device.EffectiveGBs(0)
	want := cap / 64
	if eq.AccessRateGps < want*0.95 || eq.AccessRateGps > want*1.05 {
		t.Errorf("bandwidth-limited rate = %v G/s, want ~%v", eq.AccessRateGps, want)
	}
	if eq.PerClass[0].Utilization < 0.9 {
		t.Errorf("utilization = %v, want saturated", eq.PerClass[0].Utilization)
	}
	if eq.TotalBandwidthGBs > cap*1.01 {
		t.Errorf("consumed bandwidth %v exceeds capacity %v", eq.TotalBandwidthGBs, cap)
	}
}

func TestSolveHitRateShieldsBandwidth(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	rate := func(lat float64) float64 { return 1000 }
	miss := Solve([]Class{{Path: sys.DDRLocal, Weight: 1, HitRate: 0}}, rate, 60)
	hit := Solve([]Class{{Path: sys.DDRLocal, Weight: 1, HitRate: 0.9}}, rate, 60)
	// With 90% hits, only 10% of accesses use bandwidth: rate ~10x higher.
	if hit.AccessRateGps < 5*miss.AccessRateGps {
		t.Errorf("hit-shielded rate %v should dwarf miss rate %v", hit.AccessRateGps, miss.AccessRateGps)
	}
}

func TestSolveTwoClassBottleneck(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	// 80% of traffic to a weak CXL-C device: it must be the bottleneck.
	classes := []Class{
		{Path: sys.DDRLocal, Weight: 0.2, HitRate: 0},
		{Path: sys.Path("CXL-C"), Weight: 0.8, HitRate: 0},
	}
	eq := Solve(classes, func(lat float64) float64 { return 1000 }, 80)
	if eq.PerClass[1].Utilization < 0.9 {
		t.Errorf("CXL-C should saturate, utilization %v", eq.PerClass[1].Utilization)
	}
	if eq.PerClass[0].Utilization > 0.5 {
		t.Errorf("DDR should be underutilized, got %v", eq.PerClass[0].Utilization)
	}
}

func TestSolveLatencyIncludesQueueing(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	classes := []Class{{Path: sys.DDRLocal, Weight: 1, HitRate: 0}}
	light := Solve(classes, func(lat float64) float64 { return 0.05 }, 60)
	heavy := Solve(classes, func(lat float64) float64 { return 1000 }, 60)
	if heavy.AvgLatencyNS <= light.AvgLatencyNS {
		t.Errorf("loaded latency %v should exceed unloaded %v", heavy.AvgLatencyNS, light.AvgLatencyNS)
	}
}

func TestSolvePanics(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	for name, fn := range map[string]func(){
		"no classes": func() { Solve(nil, func(float64) float64 { return 1 }, 10) },
		"bad hit": func() {
			Solve([]Class{{Path: sys.DDRLocal, Weight: 1, HitRate: 2}}, func(float64) float64 { return 1 }, 10)
		},
		"zero wt": func() {
			Solve([]Class{{Path: sys.DDRLocal, Weight: 0, HitRate: 0}}, func(float64) float64 { return 1 }, 10)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
