package cxlmem

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates its experiment (reduced sample counts, same
// code paths) and reports how long a full regeneration takes; run with
//
//	go test -bench=. -benchmem
//
// To see the regenerated rows, run `go test -bench=BenchmarkFig3 -v` or use
// the cxlbench command.

import (
	"testing"

	"cxlmem/internal/experiments"
	"cxlmem/internal/results"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.DefaultOptions()
	opts.Quick = true
	var tbl *results.Dataset
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = e.Run(opts)
	}
	b.StopTimer()
	if tbl == nil || len(tbl.Rows) == 0 {
		b.Fatalf("%s produced no rows", id)
	}
	if testing.Verbose() {
		b.Log("\n" + tbl.Render())
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4a(b *testing.B)  { benchExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B)  { benchExperiment(b, "fig4b") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6a(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { benchExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B)  { benchExperiment(b, "fig6c") }
func BenchmarkFig6d(b *testing.B)  { benchExperiment(b, "fig6d") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9a(b *testing.B)  { benchExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)  { benchExperiment(b, "fig9b") }
func BenchmarkFig11a(b *testing.B) { benchExperiment(b, "fig11a") }
func BenchmarkFig11b(b *testing.B) { benchExperiment(b, "fig11b") }
func BenchmarkFig12a(b *testing.B) { benchExperiment(b, "fig12a") }
func BenchmarkFig12b(b *testing.B) { benchExperiment(b, "fig12b") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }

func BenchmarkTppTimeline(b *testing.B) { benchExperiment(b, "tpp-timeline") }

func BenchmarkAblationLLC(b *testing.B)       { benchExperiment(b, "ablation-llc") }
func BenchmarkAblationCoherence(b *testing.B) { benchExperiment(b, "ablation-coherence") }
func BenchmarkAblationEstimator(b *testing.B) { benchExperiment(b, "ablation-estimator") }
