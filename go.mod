module cxlmem

go 1.22
