package cxlmem

import (
	"strings"
	"testing"

	"cxlmem/internal/telemetry"
	"cxlmem/internal/topo"
	"cxlmem/internal/workloads/dlrm"
)

func TestNewSystems(t *testing.T) {
	app := NewSystem()
	if app.Config().SNCNodes != 4 || app.Config().LocalDDRChannels != 2 {
		t.Error("NewSystem should match the paper's §5 setup")
	}
	micro := NewMicrobenchSystem()
	if micro.Config().SNCNodes != 1 || micro.Config().LocalDDRChannels != 8 {
		t.Error("NewMicrobenchSystem should match the §4 setup")
	}
}

func TestExperimentsListed(t *testing.T) {
	infos := Experiments()
	if len(infos) != 29 {
		t.Errorf("expected 29 experiments, got %d", len(infos))
	}
	for _, info := range infos {
		if info.ID == "" || info.Desc == "" {
			t.Errorf("incomplete info: %+v", info)
		}
	}
}

func TestScenarioFacade(t *testing.T) {
	if got := len(ScenarioWorkloads()); got != 8 {
		t.Errorf("expected 8 scenario workloads, got %d", got)
	}
	out, err := RunScenario("fluid/policy=interleave/size=64M", RunConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "system_bw") {
		t.Errorf("scenario rendering missing primary metric:\n%s", out)
	}
	if _, err := RunScenario("nope", RunConfig{}); err == nil {
		t.Error("unknown scenario workload should error")
	}
	if _, err := RunScenario("ycsb/flavor=mild", RunConfig{}); err == nil {
		t.Error("bad spec key should error")
	}
	if !strings.Contains(ScenarioCatalog(), "| `ycsb` |") {
		t.Error("catalog missing ycsb row")
	}
}

func TestPlatformFacade(t *testing.T) {
	infos := Platforms()
	if len(infos) < 4 {
		t.Fatalf("expected >= 4 platforms, got %d", len(infos))
	}
	if infos[0].Name != "table1" || len(infos[0].Devices) != 4 {
		t.Errorf("default platform should lead with its 4 devices: %+v", infos[0])
	}
	sys, err := NewPlatformSystem("x16-quad")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Paths()); got != 5 {
		t.Errorf("x16-quad has %d paths, want 5", got)
	}
	if _, err := NewPlatformSystem("nope"); err == nil {
		t.Error("unknown platform should error")
	}
	if !strings.Contains(PlatformCatalog(), "| `x16-quad` |") {
		t.Error("catalog missing x16-quad row")
	}
	out, err := RunScenario("fluid", RunConfig{Quick: true, Platform: "snc-off"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "system_bw") {
		t.Errorf("platformed scenario rendering missing primary metric:\n%s", out)
	}
	if _, err := RunScenario("fluid", RunConfig{Platform: "nope"}); err == nil {
		t.Error("unknown RunConfig platform should error")
	}
	// Platform names normalize like the platform= spec key does.
	if _, err := RunScenario("fluid", RunConfig{Quick: true, Platform: "SNC-OFF"}); err != nil {
		t.Errorf("uppercase platform name should normalize: %v", err)
	}
	// A bad platform must surface as an error from the matrix experiments,
	// not as a panic inside their code-defined-cells-cannot-fail drivers.
	if _, err := RunExperimentCfg("matrix-apps", RunConfig{Quick: true, Platform: "nope"}); err == nil {
		t.Error("unknown platform should fail matrix experiments cleanly")
	}
}

func TestRunExperiment(t *testing.T) {
	out, err := RunExperimentQuick("table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CXL-A") {
		t.Error("table1 output missing CXL-A")
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestCaptionFacade(t *testing.T) {
	sys := topo.NewSystem(topo.DefaultConfig())
	cfg := dlrm.DefaultConfig()
	var sweep []telemetry.Sample
	var thr []float64
	base := dlrm.Run(sys, cfg, "CXL-A", 0, 24, dlrm.SNCAlone).QueriesPerSec
	for r := 0.0; r <= 100; r += 10 {
		res := dlrm.Run(sys, cfg, "CXL-A", r, 24, dlrm.SNCAlone)
		sweep = append(sweep, res.Sample)
		thr = append(thr, res.QueriesPerSec/base)
	}

	policy := NewPolicy(50)
	caption, err := NewCaption(sweep, thr, policy)
	if err != nil {
		t.Fatal(err)
	}
	ratio := caption.Ratio()
	for i := 0; i < 30; i++ {
		res := dlrm.Run(sys, cfg, "CXL-A", ratio, 32, dlrm.SNCAlone)
		_, next, err := caption.Observe(res.Sample)
		if err != nil {
			t.Fatal(err)
		}
		ratio = next
	}
	// The policy must track the controller.
	if policy.CXLPercent() != caption.Ratio() {
		t.Errorf("policy %v%% != controller %v%%", policy.CXLPercent(), caption.Ratio())
	}
	// Tuned DLRM should comfortably beat DDR-only (interior optimum ~48%).
	res := dlrm.Run(sys, cfg, "CXL-A", caption.Ratio(), 32, dlrm.SNCAlone)
	ddr := dlrm.Run(sys, cfg, "CXL-A", 0, 32, dlrm.SNCAlone)
	if res.QueriesPerSec < 1.2*ddr.QueriesPerSec {
		t.Errorf("caption-tuned throughput %.2fM should beat DDR-only %.2fM by >20%%",
			res.QueriesPerSec/1e6, ddr.QueriesPerSec/1e6)
	}
	states, ratios := caption.History()
	if len(states) != 30 || len(ratios) != 30 {
		t.Errorf("history lengths %d/%d", len(states), len(ratios))
	}
}

func TestNewCaptionValidation(t *testing.T) {
	if _, err := NewCaption(nil, nil, nil); err == nil {
		t.Error("nil policy should error")
	}
	if _, err := NewCaption(make([]telemetry.Sample, 2), []float64{1, 2}, NewPolicy(50)); err == nil {
		t.Error("degenerate sweep should error")
	}
}
