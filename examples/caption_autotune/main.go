// Caption autotune: the paper's core contribution (§6). The controller
// monitors PMU counters, estimates memory-subsystem performance with a
// linear model fitted on a DLRM sweep, and greedily tunes the fraction of
// new pages allocated to CXL memory (Algorithm 1).
package main

import (
	"fmt"
	"log"

	"cxlmem"
	"cxlmem/internal/telemetry"
	"cxlmem/internal/workloads/dlrm"
	"cxlmem/internal/workloads/spec"
)

func main() {
	sys := cxlmem.NewSystem()

	// (M2) Fit the estimator from a DLRM calibration sweep.
	var sweep []telemetry.Sample
	var thr []float64
	cfg := dlrm.DefaultConfig()
	base := dlrm.Run(sys, cfg, "CXL-A", 0, 24, dlrm.SNCAlone).QueriesPerSec
	for r := 0.0; r <= 100; r += 5 {
		res := dlrm.Run(sys, cfg, "CXL-A", r, 24, dlrm.SNCAlone)
		sweep = append(sweep, res.Sample)
		thr = append(thr, res.QueriesPerSec/base)
	}

	// Drive the weighted-interleave mempolicy with a Caption controller.
	policy := cxlmem.NewPolicy(50) // OS default: even interleave
	caption, err := cxlmem.NewCaption(sweep, thr, policy)
	if err != nil {
		log.Fatal(err)
	}

	// Tune a SPECrate mix of mcf and roms (a Fig. 13 case).
	mix := []spec.Member{
		{Profile: spec.Mcf, Instances: 8},
		{Profile: spec.Roms, Instances: 8},
	}
	gips0 := spec.Run(sys, mix, "CXL-A", 0).GIPS
	gips50 := spec.Run(sys, mix, "CXL-A", 50).GIPS

	fmt.Println("Caption tuning mcf+roms (normalized to DDR-only):")
	ratio := caption.Ratio()
	var last float64
	for i := 0; i < 40; i++ {
		res := spec.Run(sys, mix, "CXL-A", ratio)
		last = res.GIPS / gips0
		_, next, err := caption.Observe(res.Sample)
		if err != nil {
			log.Fatal(err)
		}
		if i%5 == 0 || i == 39 {
			fmt.Printf("  interval %2d: ratio %3.0f%%  throughput %.3f\n", i, ratio, last)
		}
		ratio = next
	}
	fmt.Printf("\nstatic DDR-only     : 1.000\n")
	fmt.Printf("static 50:50        : %.3f  (naive interleaving loses — F4)\n", gips50/gips0)
	fmt.Printf("Caption (converged) : %.3f at ~%.0f%% CXL\n", last, ratio)
	fmt.Println("\nthe policy's page split is applied through the weighted-interleave")
	fmt.Printf("mempolicy: next allocations would go %.0f%% to CXL\n", policy.CXLPercent())
}
