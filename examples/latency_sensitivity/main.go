// Latency sensitivity: the paper's cautionary result (§5.1, Fig. 6a/7).
// µs-scale applications (Redis) pay for every page on CXL memory, and an
// intelligent migration policy (TPP) makes the tail *worse* than a static
// split because migrations stall the event loop.
package main

import (
	"fmt"

	"cxlmem"
	"cxlmem/internal/workloads/kvstore"
	"cxlmem/internal/workloads/ycsb"
)

func main() {
	sys := cxlmem.NewSystem()
	cfg := kvstore.DefaultConfig()
	cfg.Keys = 200_000

	fmt.Println("Redis + YCSB-A (uniform keys): p99 latency vs CXL page share")
	fmt.Printf("%10s", "QPS")
	ratios := []float64{0, 25, 50, 75, 100}
	for _, r := range ratios {
		fmt.Printf("  %8.0f%%", r)
	}
	fmt.Println()
	for _, qps := range []float64{25000, 45000, 65000, 85000} {
		fmt.Printf("%10.0f", qps)
		for _, r := range ratios {
			s := kvstore.New(sys, cfg, "CXL-A", r)
			res := s.RunOpenLoop(ycsb.WorkloadA, ycsb.Uniform, qps, 30000)
			fmt.Printf("  %7.1fus", res.P99.Microseconds())
		}
		fmt.Println()
	}

	fmt.Println("\nTPP vs static 25% interleave (Fig. 7):")
	cfg.Keys = 50_000
	res := kvstore.RunWithTPP(sys, cfg, "CXL-A", 40000, 40000)
	fmt.Printf("  static 25%%: p99 = %7.1f us\n", res.Static.P99.Microseconds())
	fmt.Printf("  TPP       : p99 = %7.1f us  (%d migrations during the run)\n",
		res.TPP.P99.Microseconds(), res.Migrations)
	fmt.Printf("  TPP is %.2fx worse — migration stalls dominate (finding F2)\n",
		float64(res.TPP.P99)/float64(res.Static.P99))
}
