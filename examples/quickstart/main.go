// Quickstart: build the simulated CXL-ready system, compare device
// latencies, and regenerate one of the paper's figures.
package main

import (
	"fmt"
	"log"

	"cxlmem"
	"cxlmem/internal/mem"
)

func main() {
	// The paper's §5 setup: SNC mode, 2 local DDR5 channels, CXL devices.
	sys := cxlmem.NewSystem()

	fmt.Println("Serialized (pointer-chase) load latency per device:")
	for _, p := range sys.Paths() {
		fmt.Printf("  %-8s %6.1f ns (%s, %s)\n",
			p.Name, p.SerialLatency(mem.Load).Nanoseconds(),
			p.Device.Ctrl.Kind, p.Device.Tech.Name)
	}

	fmt.Println("\nKey asymmetry (O3): parallel access amortizes true CXL memory")
	fmt.Println("better than NUMA-emulated CXL memory:")
	for _, name := range []string{"DDR5-R", "CXL-A"} {
		p := sys.Path(name)
		serial := p.SerialLatency(mem.Load).Nanoseconds()
		parallel := p.ParallelLatency(mem.Load).Nanoseconds()
		fmt.Printf("  %-8s serial %6.1f ns -> parallel %5.1f ns (-%.0f%%)\n",
			name, serial, parallel, (1-parallel/serial)*100)
	}

	fmt.Println("\nRegenerating Fig. 4a (bandwidth efficiency):")
	out, err := cxlmem.RunExperiment("fig4a")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	// Beyond the fixed figures, any cell of the workload x policy x size
	// matrix is one spec string away (see examples/scenario_matrix).
	fmt.Println("\nOne scenario cell (ycsb:readmostly at a 85:15 DDR:CXL split):")
	out, err = cxlmem.RunScenario("ycsb:readmostly/policy=weighted:85,15", cxlmem.RunConfig{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
