// Scenario matrix: the unified workload engine. Every application model of
// the paper registers behind one interface, so arbitrary cells of the
// {workload x interleaving policy x working-set size} cross product are a
// one-line spec string away — no experiment code required.
package main

import (
	"fmt"
	"log"
	"strings"

	"cxlmem"
)

func main() {
	fmt.Println("Registered workloads:")
	for _, w := range cxlmem.ScenarioWorkloads() {
		fmt.Printf("  %-8s %s\n           variants: %s\n", w.Name, w.Desc, strings.Join(w.Variants, ", "))
	}

	cfg := cxlmem.RunConfig{Quick: true}

	// Single cells: spec strings compose workload:variant with knob
	// overrides (policy, size, qps, threads, ops, seed, device).
	fmt.Println("\nHand-picked cells:")
	for _, spec := range []string{
		"ycsb:readmostly/policy=weighted:85,15/size=4G",
		"dlrm/policy=cxl:63/threads=32",
		"kvstore/policy=cxl/qps=65000",
		"fio:256k/policy=cxl",
		"spec:mix/policy=interleave",
	} {
		out, err := cxlmem.RunScenario(spec, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	}

	// The same spec again is free: matrix cells are memoized per process.
	if _, err := cxlmem.RunScenario("dlrm/policy=cxl:63/threads=32", cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n(re-running a cell hits the memo cache — no recomputation)")

	// The full cross product dispatches through the parallel sweep engine;
	// see also: cxlbench -scenario all, and the matrix-apps /
	// matrix-policy / matrix-size experiment IDs.
	out, err := cxlmem.RunScenarioMatrix(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(out)
}
