// Results export: the structured-results path end to end. Every experiment
// and scenario run is a typed cxlmem.Dataset — numeric cells, unit-carrying
// columns, provenance — and rendering is a pluggable emitter (text, json,
// csv). This example regenerates one figure and one scenario cell through
// the facade, writes the lossless JSON wire form to a file, reads it back
// with ParseDatasetJSON, and prints the csv view — the same forms the
// cxlserve daemon serves over HTTP.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cxlmem"
)

func main() {
	cfg := cxlmem.RunConfig{Quick: true}

	// A figure as a typed dataset: cells are numbers, not strings.
	fig, err := cxlmem.RunDataset("fig4a", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d columns x %d rows, provenance quick=%t\n",
		fig.ID, len(fig.Columns), len(fig.Rows), fig.Prov.Quick)

	// Emit the lossless JSON wire form to a file.
	out, err := cxlmem.Emit(fig, "json")
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "cxlmem-results")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, fig.ID+".json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(out))

	// The wire form round-trips: parse it back and re-render as text.
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	back, err := cxlmem.ParseDatasetJSON(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nround-tripped text rendering:")
	fmt.Print(back.Render())

	// Scenario cells produce the same structured form — one row per metric,
	// the canonical spec in the provenance — and any emitter applies.
	cell, err := cxlmem.RunScenarioDataset("dlrm/policy=cxl:63/threads=32", cfg)
	if err != nil {
		log.Fatal(err)
	}
	csv, err := cxlmem.Emit(cell, "csv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscenario %s as csv:\n%s", cell.Prov.Scenario, csv)
	fmt.Printf("\navailable formats: %v\n", cxlmem.Formats())
}
