// Bandwidth expander: the paper's headline positive result (§5.2, Fig. 9a).
// A bandwidth-bound DLRM embedding-reduction workload gains throughput by
// pushing an interior fraction of its pages to CXL memory — the basis for
// the Caption policy.
package main

import (
	"fmt"

	"cxlmem"
	"cxlmem/internal/workloads/dlrm"
)

func main() {
	sys := cxlmem.NewSystem()
	cfg := dlrm.DefaultConfig()

	fmt.Println("DLRM embedding reduction, 32 threads, pages split DDR:CXL-A")
	fmt.Printf("%8s  %14s  %16s  %14s\n", "CXL %", "M queries/s", "System BW GB/s", "L1 miss ns")
	base := dlrm.Run(sys, cfg, "CXL-A", 0, 32, dlrm.SNCAlone)
	for _, r := range []float64{0, 17, 38, 50, 63, 83, 100} {
		res := dlrm.Run(sys, cfg, "CXL-A", r, 32, dlrm.SNCAlone)
		fmt.Printf("%7.0f%%  %14.2f  %16.1f  %14.1f\n",
			r, res.QueriesPerSec/1e6, res.Eq.TotalBandwidthGBs, res.Sample.L1MissLatencyNS)
	}

	best, qps := dlrm.BestRatio(sys, cfg, "CXL-A", 32, dlrm.SNCAlone, 1)
	fmt.Printf("\noptimum: %.0f%% of pages on CXL -> +%.0f%% over DDR-only\n",
		best, (qps/base.QueriesPerSec-1)*100)
	fmt.Println("(paper: 63% and +88%; naively interleaving 50% can LOSE for other")
	fmt.Println(" workloads — run the fig13 experiment to see Caption fix that)")

	// The SNC/LLC interaction of Table 3: the same workload, one node vs
	// four contending nodes.
	alone := dlrm.Run(sys, cfg, "CXL-A", 100, 8, dlrm.SNCAlone)
	contended := dlrm.Run(sys, cfg, "CXL-A", 100, 8, dlrm.SNCContended)
	ddr := dlrm.Run(sys, cfg, "CXL-A", 0, 8, dlrm.SNCAlone)
	fmt.Printf("\nTable 3 (CXL 100%% normalized to DDR 100%%):\n")
	fmt.Printf("  1 SNC node : %.3f   (paper 0.947)\n", alone.QueriesPerSec/ddr.QueriesPerSec)
	fmt.Printf("  4 SNC nodes: %.3f   (paper 0.504)\n", contended.QueriesPerSec/ddr.QueriesPerSec)
}
