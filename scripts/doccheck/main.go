// Command doccheck fails when exported identifiers in the given packages
// lack doc comments — the CI docs job runs it over internal/workloads and
// internal/experiments so the registry and scenario engine stay fully
// documented.
//
// Usage:
//
//	go run ./scripts/doccheck ./internal/workloads/... ./internal/experiments
//
// Checked: package clauses, exported top-level types, functions, methods,
// constants and variables. Grouped const/var blocks need one comment on the
// group or on each exported name.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-pattern>...")
		os.Exit(2)
	}
	dirs, err := resolveDirs(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	var missing []string
	for _, dir := range dirs {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers lack doc comments:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		os.Exit(1)
	}
}

// resolveDirs expands go-style package patterns into directories via go list.
func resolveDirs(patterns []string) ([]string, error) {
	args := append([]string{"list", "-f", "{{.Dir}}"}, patterns...)
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v", patterns, err)
	}
	var dirs []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			dirs = append(dirs, line)
		}
	}
	return dirs, nil
}

// checkDir parses one package directory (tests excluded) and reports
// exported identifiers without doc comments as "file:line: name".
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", filepath.Base(p.Filename), p.Line, name))
	}
	for _, pkg := range pkgs {
		pkgDocumented := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				pkgDocumented = true
			}
		}
		if !pkgDocumented {
			missing = append(missing, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for fname, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), funcName(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
			_ = fname
		}
	}
	return missing, nil
}

// funcName renders "Recv.Method" or "Func" for a declaration.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// checkGenDecl walks a const/var/type block. A doc comment on the block
// covers every spec; otherwise each exported spec needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return
	}
	blockDocumented := d.Doc != nil
	for _, s := range d.Specs {
		switch spec := s.(type) {
		case *ast.TypeSpec:
			if spec.Name.IsExported() && !blockDocumented && spec.Doc == nil {
				report(spec.Pos(), spec.Name.Name)
			}
		case *ast.ValueSpec:
			if blockDocumented || spec.Doc != nil || spec.Comment != nil {
				continue
			}
			for _, n := range spec.Names {
				if n.IsExported() {
					report(n.Pos(), n.Name)
				}
			}
		}
	}
}
