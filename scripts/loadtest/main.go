// Command loadtest is the sustained-load harness for cxlserve: it fires a
// configurable number of concurrent mixed queries (/v1/run and /v1/scenario
// across several experiments, formats and scenario cells) at a running
// daemon and reports the outcome — status-class counts, shed rate, and
// p50/p90/p99/max latency.
//
// It doubles as a CI gate: with -fail-5xx it exits non-zero on any 5xx
// response, and -max-p99 bounds the 99th-percentile latency. Transport
// errors (connection refused, harness-side timeout) always fail the run —
// an overloaded cxlserve must shed with 429/503, never hang or drop
// connections.
//
// Usage:
//
//	cxlserve -quick -max-inflight 16 -max-queue 256 &
//	go run ./scripts/loadtest -url http://localhost:8080 -n 512 -c 64
//	go run ./scripts/loadtest -n 200 -c 200 -max-p99 30s -fail-5xx   # CI smoke
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cxlmem/internal/stats"
)

// defaultMix exercises both compute endpoints, repeated cache hits, every
// emitter, matrix experiments, and distinct scenario cells.
const defaultMix = "/v1/run?id=table2," +
	"/v1/run?id=fig4a&format=text," +
	"/v1/run?id=fig4a&format=csv," +
	"/v1/run?id=matrix-size," +
	"/v1/run?id=table3," +
	"/v1/scenario?spec=fluid/policy=interleave/size=64M," +
	"/v1/scenario?spec=kvstore/policy=cxl," +
	"/v1/scenario?spec=dlrm/policy=cxl:63"

// result is one request's outcome, written to an index-addressed slot so
// workers never contend.
type result struct {
	status  int // 0 = transport error
	latency time.Duration
	err     error
}

func main() {
	url := flag.String("url", "http://localhost:8080", "cxlserve base URL")
	n := flag.Int("n", 512, "total requests")
	c := flag.Int("c", 64, "concurrent workers")
	mix := flag.String("mix", defaultMix, "comma-separated request paths, cycled per request")
	reqTimeout := flag.Duration("req-timeout", 2*time.Minute, "per-request client timeout (a hang fails the run)")
	maxP99 := flag.Duration("max-p99", 0, "fail if p99 latency exceeds this (0 = no gate)")
	fail5xx := flag.Bool("fail-5xx", false, "fail on any 5xx response")
	flag.Parse()

	paths := strings.Split(*mix, ",")
	if *n <= 0 || *c <= 0 || len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "loadtest: -n, -c and -mix must be positive/non-empty")
		os.Exit(2)
	}
	client := &http.Client{Timeout: *reqTimeout}

	results := make([]result, *n)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				t0 := time.Now()
				resp, err := client.Get(*url + paths[i%len(paths)])
				if err != nil {
					results[i] = result{err: err, latency: time.Since(t0)}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				results[i] = result{status: resp.StatusCode, latency: time.Since(t0)}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	var ok2xx, client4xx, server5xx, shed, transport int
	latencies := make([]float64, 0, *n)
	for i, r := range results {
		latencies = append(latencies, r.latency.Seconds())
		switch {
		case r.err != nil:
			transport++
			if transport <= 3 {
				fmt.Fprintf(os.Stderr, "loadtest: %s: %v\n", paths[i%len(paths)], r.err)
			}
		case r.status == http.StatusTooManyRequests || r.status == http.StatusServiceUnavailable:
			shed++
		case r.status >= 500:
			server5xx++
		case r.status >= 400:
			client4xx++
		default:
			ok2xx++
		}
	}
	p50 := time.Duration(stats.Percentile(latencies, 50) * float64(time.Second))
	p90 := time.Duration(stats.Percentile(latencies, 90) * float64(time.Second))
	p99 := time.Duration(stats.Percentile(latencies, 99) * float64(time.Second))
	max := time.Duration(stats.Percentile(latencies, 100) * float64(time.Second))

	fmt.Printf("loadtest: %d requests, %d workers, %.1fs wall (%.1f req/s)\n",
		*n, *c, wall.Seconds(), float64(*n)/wall.Seconds())
	fmt.Printf("  2xx=%d shed(429/503)=%d other-4xx=%d 5xx=%d transport-err=%d\n",
		ok2xx, shed, client4xx, server5xx, transport)
	fmt.Printf("  latency p50=%s p90=%s p99=%s max=%s\n",
		p50.Round(time.Millisecond), p90.Round(time.Millisecond),
		p99.Round(time.Millisecond), max.Round(time.Millisecond))

	failed := false
	if transport > 0 {
		fmt.Fprintf(os.Stderr, "loadtest: FAIL: %d transport errors (server hung or dropped connections)\n", transport)
		failed = true
	}
	if *fail5xx && server5xx > 0 {
		fmt.Fprintf(os.Stderr, "loadtest: FAIL: %d 5xx responses\n", server5xx)
		failed = true
	}
	if *maxP99 > 0 && p99 > *maxP99 {
		fmt.Fprintf(os.Stderr, "loadtest: FAIL: p99 %s exceeds gate %s\n", p99, *maxP99)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
