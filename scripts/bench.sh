#!/usr/bin/env sh
# bench.sh — record the per-experiment regeneration cost as a perf trajectory.
#
# Runs every repository-level experiment benchmark once (quick mode, the same
# code paths as full runs) and writes BENCH_<N>.json at the repo root mapping
# experiment ID -> ns per regeneration (each entry is that experiment's wall
# time at -benchtime=1x), plus a "_total_ns" sum and "_wall_ns" for the whole
# bench run:
#
#   scripts/bench.sh          # writes BENCH_1.json
#   scripts/bench.sh 7        # writes BENCH_7.json (e.g. numbered by PR)
#   scripts/bench.sh compare  # diff the two newest BENCH_*.json, flag >25%
#                             # regressions (exit 1 if any)
#
# Entries are single-shot (-benchtime=1x). Sub-10 ms experiments jitter by
# integer factors run to run, so those entries are re-run twice more and
# recorded best-of-3 — the minimum is the stable statistic for a
# deterministic workload. compare additionally only *fails* on a >25%
# regression when the new time is also above a 5 ms noise floor (the gate
# exists for the second-scale hot paths like fig5/ablation-llc). Noisy
# small entries are still printed, marked "noise floor".
#
# Future PRs compare their BENCH_<N>.json against the committed history to
# spot regressions on the hot paths.
set -eu

cd "$(dirname "$0")/.."

# compare mode: pit the two newest BENCH_*.json against each other.
if [ "${1:-}" = "compare" ]; then
	files=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -2)
	count=$(printf '%s\n' $files | wc -l)
	if [ "$count" -lt 2 ]; then
		echo "bench.sh compare: need at least two BENCH_*.json files" >&2
		exit 2
	fi
	old=$(printf '%s\n' $files | head -1)
	new=$(printf '%s\n' $files | tail -1)
	echo "comparing $old -> $new (flagging >25% regressions)"
	awk -v oldf="$old" -v newf="$new" '
	function parse(file, arr,    line, key, val) {
		while ((getline line < file) > 0) {
			if (line !~ /":/) continue
			key = line; sub(/^[ \t]*"/, "", key); sub(/".*$/, "", key)
			val = line; sub(/^[^:]*:[ \t]*/, "", val); sub(/[,} \t]*$/, "", val)
			if (key ~ /^_/) continue  # summary keys, not experiments
			arr[key] = val + 0
		}
		close(file)
	}
	BEGIN {
		floor = 5000000  # 5 ms: below this, single-shot timings are noise
		parse(oldf, a); parse(newf, b)
		bad = 0
		for (k in b) {
			# An ID absent from the baseline is a freshly added experiment,
			# not a regression: report it so it is visible, never fail on it.
			if (!(k in a) || a[k] <= 0) {
				printf "%-22s new in %s  (%.0f ns)\n", k, newf, b[k]
				continue
			}
			r = b[k] / a[k]
			gated = (r > 1.25 && b[k] >= floor)
			mark = gated ? "  << REGRESSION" : (r > 1.25 ? "  (noise floor)" : "")
			if (r > 1.25 || r < 0.8)
				printf "%-22s %14.0f -> %14.0f ns  (%.2fx)%s\n", k, a[k], b[k], r, mark
			if (gated) bad++
		}
		for (k in a) if (!(k in b)) printf "%-22s dropped from %s\n", k, newf
		if (bad) { printf "%d experiment(s) regressed >25%%\n", bad; exit 1 }
		print "no experiment regressed >25%"
	}'
	exit $?
fi

n="${1:-1}"
out="BENCH_${n}.json"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT INT TERM

# Phase 1: one full pass. Emit "Name ns" pairs (benchmark name with the
# Benchmark prefix and GOMAXPROCS suffix stripped) in run order.
start_ns=$(date +%s%N)
go test -run '^$' -bench '^Benchmark(Table|Fig|Tpp|Ablation)' -benchtime=1x . |
	awk '/^Benchmark/ {
		name = $1
		sub(/^Benchmark/, "", name)
		sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
		print name, $3
	}' >"$raw"

if ! [ -s "$raw" ]; then
	echo "bench.sh: no benchmark output" >&2
	exit 1
fi

# Phase 2: entries under 10 ms are re-run twice more and recorded best-of-3.
# A single -benchtime=1x shot of a sub-10 ms experiment jitters by integer
# factors (scheduler + cache effects dwarf the work); the minimum of three is
# the stable statistic for a deterministic workload. Second-scale entries
# are left single-shot — re-running them would triple bench time for noise
# that is already proportionally small.
fast=$(awk '$2 + 0 < 10000000 { printf "%s%s", sep, $1; sep = "|" }' "$raw")
if [ -n "$fast" ]; then
	for _ in 1 2; do
		go test -run '^$' -bench "^Benchmark(${fast})\$" -benchtime=1x . |
			awk '/^Benchmark/ {
				name = $1
				sub(/^Benchmark/, "", name)
				sub(/-[0-9]+$/, "", name)
				print name, $3
			}' >>"$raw"
	done
fi

awk -v start="$start_ns" '
	{
		if (!($1 in best)) order[++count] = $1
		# Keep the value textual so 32-bit awk %d limits cannot truncate
		# slow entries; compare numerically for the minimum.
		if (!($1 in best) || $2 + 0 < best[$1] + 0) best[$1] = $2
	}
	END {
		"date +%s%N" | getline end
		print "{"
		for (i = 1; i <= count; i++) {
			name = order[i]
			if (name ~ /^Ablation/) {
				id = "ablation-" tolower(substr(name, 9))
			} else if (name == "TppTimeline") {
				id = "tpp-timeline"
			} else {
				id = tolower(name)
			}
			print "  \"" id "\": " best[name] ","
			total += best[name]
		}
		printf "  \"_total_ns\": %.0f,\n", total
		printf "  \"_wall_ns\": %.0f\n", end - start
		print "}"
	}' "$raw" >"$out"

echo "wrote $out"
