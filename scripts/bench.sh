#!/usr/bin/env sh
# bench.sh — record the per-experiment regeneration cost as a perf trajectory.
#
# Runs every repository-level experiment benchmark once (quick mode, the same
# code paths as full runs) and writes BENCH_<N>.json at the repo root mapping
# experiment ID -> ns per regeneration (each entry is that experiment's wall
# time at -benchtime=1x), plus a "_total_ns" sum and "_wall_ns" for the whole
# bench run:
#
#   scripts/bench.sh          # writes BENCH_1.json
#   scripts/bench.sh 7        # writes BENCH_7.json (e.g. numbered by PR)
#   scripts/bench.sh compare  # diff the two newest BENCH_*.json, flag >25%
#                             # regressions (exit 1 if any)
#
# Entries are single-shot (-benchtime=1x). Sub-10 ms experiments jitter by
# integer factors run to run, so those entries are re-run twice more and
# recorded best-of-3 — the minimum is the stable statistic for a
# deterministic workload. The two second-scale hot IDs (fig5, ablation-llc)
# are also best-of-3: their re-runs share one process, so runs 2 and 3 hit
# the warm-state snapshot cache and the recorded minimum is the steady-state
# regeneration cost cxlserve pays once warm (the cold bootstrap shot is
# still phase 1's time). compare additionally only *fails* on a >25%
# regression when the new time is also above a 5 ms noise floor. Noisy
# small entries are still printed, marked "noise floor".
#
#   scripts/bench.sh profile  # CPU-profile the two hot IDs, print top-10
#
# Future PRs compare their BENCH_<N>.json against the committed history to
# spot regressions on the hot paths.
set -eu

cd "$(dirname "$0")/.."

# compare mode: pit the two newest BENCH_*.json against each other.
if [ "${1:-}" = "compare" ]; then
	files=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -2)
	count=$(printf '%s\n' $files | wc -l)
	if [ "$count" -lt 2 ]; then
		echo "bench.sh compare: need at least two BENCH_*.json files" >&2
		exit 2
	fi
	old=$(printf '%s\n' $files | head -1)
	new=$(printf '%s\n' $files | tail -1)
	echo "comparing $old -> $new (flagging >25% regressions)"
	awk -v oldf="$old" -v newf="$new" '
	function parse(file, arr,    line, key, val) {
		while ((getline line < file) > 0) {
			if (line !~ /":/) continue
			key = line; sub(/^[ \t]*"/, "", key); sub(/".*$/, "", key)
			val = line; sub(/^[^:]*:[ \t]*/, "", val); sub(/[,} \t]*$/, "", val)
			if (key ~ /^_/) continue  # summary keys, not experiments
			arr[key] = val + 0
		}
		close(file)
	}
	BEGIN {
		floor = 5000000  # 5 ms: below this, single-shot timings are noise
		parse(oldf, a); parse(newf, b)
		bad = 0
		for (k in b) {
			# An ID absent from the baseline is a freshly added experiment,
			# not a regression: report it so it is visible, never fail on it.
			if (!(k in a) || a[k] <= 0) {
				printf "%-22s new in %s  (%.0f ns)\n", k, newf, b[k]
				continue
			}
			r = b[k] / a[k]
			gated = (r > 1.25 && b[k] >= floor)
			mark = gated ? "  << REGRESSION" : (r > 1.25 ? "  (noise floor)" : "")
			if (r > 1.25 || r < 0.8)
				printf "%-22s %14.0f -> %14.0f ns  (%.2fx)%s\n", k, a[k], b[k], r, mark
			if (gated) bad++
		}
		for (k in a) if (!(k in b)) printf "%-22s dropped from %s\n", k, newf
		if (bad) { printf "%d experiment(s) regressed >25%%\n", bad; exit 1 }
		print "no experiment regressed >25%"
	}'
	exit $?
fi

# profile mode: per-ID CPU profiles of the two second-scale hot experiments,
# each in its own process so the profile captures the cold regeneration path
# (warm-state restores would otherwise hide the simulation hot loop). Prints
# the top-10 functions by flat time; profiles and the test binary are kept
# for interactive `go tool pprof` follow-up.
if [ "${1:-}" = "profile" ]; then
	dir="${TMPDIR:-/tmp}/cxlmem-bench-profiles"
	mkdir -p "$dir"
	go test -c -o "$dir/cxlmem.test" .
	for name in Fig5 AblationLLC; do
		case "$name" in
		Fig5) id=fig5 ;;
		AblationLLC) id=ablation-llc ;;
		esac
		echo "== $id =="
		"$dir/cxlmem.test" -test.run '^$' -test.bench "^Benchmark${name}\$" \
			-test.benchtime=1x -test.cpuprofile "$dir/$id.pprof"
		go tool pprof -top -nodecount=10 "$dir/cxlmem.test" "$dir/$id.pprof"
		echo
	done
	echo "profiles kept in $dir (go tool pprof $dir/cxlmem.test $dir/<id>.pprof)"
	exit 0
fi

n="${1:-1}"
out="BENCH_${n}.json"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT INT TERM

# Phase 1: one full pass. Emit "Name ns" pairs (benchmark name with the
# Benchmark prefix and GOMAXPROCS suffix stripped) in run order.
start_ns=$(date +%s%N)
go test -run '^$' -bench '^Benchmark(Table|Fig|Tpp|Ablation)' -benchtime=1x . |
	awk '/^Benchmark/ {
		name = $1
		sub(/^Benchmark/, "", name)
		sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
		print name, $3
	}' >"$raw"

if ! [ -s "$raw" ]; then
	echo "bench.sh: no benchmark output" >&2
	exit 1
fi

# Phase 2: re-run twice more and record best-of-3 for two classes of entry.
# Entries under 10 ms jitter by integer factors on a single -benchtime=1x
# shot (scheduler + cache effects dwarf the work); the minimum of three is
# the stable statistic for a deterministic workload. The two second-scale
# hot IDs (Fig5, AblationLLC) join them for a different reason: every
# regeneration after the first restores the warmed hierarchy from the
# warm-state snapshot cache instead of re-simulating warmup, so their
# steady-state cost only appears on repeat runs within one process. Both
# re-runs share a single process via -count=2 (count runs back to back, so
# runs 2 and 3 of the hot IDs hit the cache) and the minimum records the
# per-regeneration cost a warm cxlserve pays. Other second-scale entries
# stay single-shot — re-running them would stretch bench time for noise
# that is already proportionally small.
fast=$(awk '$2 + 0 < 10000000 || $1 == "Fig5" || $1 == "AblationLLC" \
	{ printf "%s%s", sep, $1; sep = "|" }' "$raw")
if [ -n "$fast" ]; then
	go test -run '^$' -bench "^Benchmark(${fast})\$" -benchtime=1x -count=2 . |
		awk '/^Benchmark/ {
			name = $1
			sub(/^Benchmark/, "", name)
			sub(/-[0-9]+$/, "", name)
			print name, $3
		}' >>"$raw"
fi

awk -v start="$start_ns" '
	{
		if (!($1 in best)) order[++count] = $1
		# Keep the value textual so 32-bit awk %d limits cannot truncate
		# slow entries; compare numerically for the minimum.
		if (!($1 in best) || $2 + 0 < best[$1] + 0) best[$1] = $2
	}
	END {
		"date +%s%N" | getline end
		print "{"
		for (i = 1; i <= count; i++) {
			name = order[i]
			if (name ~ /^Ablation/) {
				id = "ablation-" tolower(substr(name, 9))
			} else if (name == "TppTimeline") {
				id = "tpp-timeline"
			} else {
				id = tolower(name)
			}
			print "  \"" id "\": " best[name] ","
			total += best[name]
		}
		printf "  \"_total_ns\": %.0f,\n", total
		printf "  \"_wall_ns\": %.0f\n", end - start
		print "}"
	}' "$raw" >"$out"

echo "wrote $out"
