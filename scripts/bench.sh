#!/usr/bin/env sh
# bench.sh — record the per-experiment regeneration cost as a perf trajectory.
#
# Runs every repository-level experiment benchmark once (quick mode, the same
# code paths as full runs) and writes BENCH_<N>.json at the repo root mapping
# experiment ID -> ns per regeneration:
#
#   scripts/bench.sh        # writes BENCH_1.json
#   scripts/bench.sh 7      # writes BENCH_7.json (e.g. numbered by PR)
#
# Future PRs compare their BENCH_<N>.json against the committed history to
# spot regressions on the hot paths.
set -eu

n="${1:-1}"
cd "$(dirname "$0")/.."
out="BENCH_${n}.json"

go test -run '^$' -bench '^Benchmark(Table|Fig|Ablation)' -benchtime=1x . |
	awk '
	/^Benchmark/ {
		name = $1
		sub(/^Benchmark/, "", name)
		sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
		if (name ~ /^Ablation/) {
			rest = substr(name, 9)
			id = "ablation-" tolower(rest)
		} else {
			id = tolower(name)
		}
		# $3 is already an integer literal; keep it textual so 32-bit awk
		# %d limits cannot truncate slow entries.
		ns[++count] = "  \"" id "\": " $3
	}
	END {
		if (count == 0) {
			print "bench.sh: no benchmark output" > "/dev/stderr"
			exit 1
		}
		print "{"
		for (i = 1; i <= count; i++) print ns[i] (i < count ? "," : "")
		print "}"
	}' >"$out"

echo "wrote $out"
