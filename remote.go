// Remote scenario dispatch: the coordinator half of the horizontal
// scale-out layer (DESIGN.md §14), exposed on the facade for cxlbench
// -remote. Cells are sharded across a cxlserve replica fleet by canonical
// key and the merged dataset is byte-identical to local serial execution.
package cxlmem

import (
	"context"

	"cxlmem/internal/cluster"
	"cxlmem/internal/experiments"
	"cxlmem/internal/results"
	"cxlmem/internal/workloads"
)

// remoteCoordinator builds a client-side coordinator over the given replica
// addresses ("host:8375" and "http://host:8375" spellings both accepted).
func remoteCoordinator(peers []string) (*cluster.Coordinator, error) {
	normalized, err := cluster.NormalizeAddrs(peers)
	if err != nil {
		return nil, err
	}
	ring, err := cluster.NewRing("", normalized)
	if err != nil {
		return nil, err
	}
	return &cluster.Coordinator{Ring: ring}, nil
}

// RunRemoteScenarioMatrixDataset evaluates the full scenario cross product
// on a cxlserve replica fleet: each cell runs on the replica owning its
// canonical key, and the merged dataset is byte-identical to
// RunScenarioMatrixDataset computed locally.
func RunRemoteScenarioMatrixDataset(peers []string, cfg RunConfig) (*Dataset, error) {
	co, err := remoteCoordinator(peers)
	if err != nil {
		return nil, err
	}
	return co.ScenarioDataset(context.Background(), cfg.options(), "matrix-all",
		"full scenario matrix: workload x policy x size", experiments.AllMatrixScenarios())
}

// RunRemoteScenarioMatrixIn is RunRemoteScenarioMatrixDataset rendered in
// the named format ("text", "json", "csv"; empty means text).
func RunRemoteScenarioMatrixIn(peers []string, cfg RunConfig, format string) (string, error) {
	d, err := RunRemoteScenarioMatrixDataset(peers, cfg)
	if err != nil {
		return "", err
	}
	return results.Emit(d, format)
}

// RunRemoteScenarioDataset evaluates one scenario spec on the replica that
// owns its canonical key, byte-identical to RunScenarioDataset.
func RunRemoteScenarioDataset(spec string, peers []string, cfg RunConfig) (*Dataset, error) {
	sc, err := workloads.ParseScenario(spec)
	if err != nil {
		return nil, err
	}
	co, err := remoteCoordinator(peers)
	if err != nil {
		return nil, err
	}
	return co.ScenarioResult(context.Background(), cfg.options(), sc)
}

// RunRemoteScenarioIn is RunRemoteScenarioDataset rendered in the named
// format.
func RunRemoteScenarioIn(spec string, peers []string, cfg RunConfig, format string) (string, error) {
	d, err := RunRemoteScenarioDataset(spec, peers, cfg)
	if err != nil {
		return "", err
	}
	return results.Emit(d, format)
}
