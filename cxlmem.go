// Package cxlmem reproduces "Demystifying CXL Memory with Genuine CXL-Ready
// Systems and Devices" (MICRO 2023) as a calibrated memory-subsystem
// simulator plus the paper's Caption dynamic page-allocation policy.
//
// This root package is the public facade used by the examples and the
// command-line tools: it builds simulated systems, runs the paper's
// experiments by ID, evaluates one-line scenario specs against the unified
// workload registry, and wires Caption controllers to workloads. The
// building blocks live under internal/ (see DESIGN.md for the map).
//
// Quick start:
//
//	sys := cxlmem.NewSystem()                   // paper §5 setup: SNC on, 2 DDR ch + CXL
//	out, err := cxlmem.RunExperiment("fig3")    // regenerate a figure
//	fmt.Print(out)
//	out, err = cxlmem.RunScenario("ycsb:readmostly/policy=weighted:85,15", cxlmem.RunConfig{})
package cxlmem

import (
	"fmt"
	"strings"

	"cxlmem/internal/core"
	"cxlmem/internal/experiments"
	"cxlmem/internal/numa"
	"cxlmem/internal/results"
	"cxlmem/internal/telemetry"
	"cxlmem/internal/topo"
	"cxlmem/internal/workloads"
)

// Dataset is the typed, structured result of an experiment or scenario run:
// unit-carrying columns over numeric/string cells plus notes and provenance
// (see internal/results and DESIGN.md §10). Render it with Emit, or call its
// Render method for the default text form.
type Dataset = results.Dataset

// Formats lists the registered result emitters, default first ("text",
// "json", "csv") — the values accepted by Emit, cxlbench -format and the
// cxlserve format= query parameter.
func Formats() []string { return results.Formats() }

// Emit renders a dataset in the named format; the empty format selects text.
func Emit(d *Dataset, format string) (string, error) { return results.Emit(d, format) }

// ParseDatasetJSON decodes a dataset from its JSON wire form — the inverse
// of Emit(d, "json"), for consumers reading cxlserve responses or exported
// files back into typed form.
func ParseDatasetJSON(data []byte) (*Dataset, error) { return results.ParseJSON(data) }

// System is the simulated dual-socket SPR server with its memory devices.
type System = topo.System

// NewSystem builds the paper's application setup (§5): SNC mode on, two
// local DDR5 channels, the three CXL devices attached.
func NewSystem() *System {
	return topo.NewSystem(topo.DefaultConfig())
}

// NewMicrobenchSystem builds the §4 characterization setup: SNC off, the
// full 8-channel DDR5 pool as baseline.
func NewMicrobenchSystem() *System {
	return topo.NewSystem(topo.MicrobenchConfig())
}

// NewPlatformSystem builds a fresh system from a registered platform
// profile ("table1", "x16-quad", "snc-off", "fpga-degraded", ...).
func NewPlatformSystem(name string) (*System, error) {
	return topo.BuildPlatform(name)
}

// PlatformInfo describes one registered platform profile.
type PlatformInfo struct {
	// Name is the registry key accepted by RunConfig.Platform and the
	// platform= scenario spec key.
	Name string
	// Desc is a one-line description.
	Desc string
	// Devices lists the platform's far-memory device names in presentation
	// order (the accepted device= values beyond DDR5-L).
	Devices []string
}

// Platforms lists every registered platform profile, the default first.
func Platforms() []PlatformInfo {
	var out []PlatformInfo
	for _, p := range topo.AllPlatforms() {
		info := PlatformInfo{Name: p.Name, Desc: p.Desc}
		for _, d := range p.Spec.Devices {
			info.Devices = append(info.Devices, d.Name)
		}
		out = append(out, info)
	}
	return out
}

// PlatformCatalog renders the platform registry as the markdown catalog
// embedded in EXPERIMENTS.md.
func PlatformCatalog() string { return topo.PlatformCatalog() }

// ExperimentInfo describes one reproducible table or figure.
type ExperimentInfo struct {
	// ID is the identifier accepted by RunExperiment ("fig3", "table1", ...).
	ID string
	// Desc is a one-line description.
	Desc string
}

// Experiments lists every reproducible table and figure.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Desc: e.Desc})
	}
	return out
}

// RunConfig tunes an experiment regeneration.
type RunConfig struct {
	// Quick reduces sample counts (used by benchmarks).
	Quick bool
	// Parallel is the worker count for independent sweep points; 0 uses
	// every available CPU. The rendered table is byte-identical for any
	// worker count.
	Parallel int
	// Seed perturbs the stochastic components; 0 keeps the default.
	Seed uint64
	// FastWarmup switches the cache-simulating measurements to
	// convergence-based warmup: much faster regeneration for fig5 and
	// ablation-llc, at the cost of last-digit shifts versus the pinned
	// exact-warmup tables.
	FastWarmup bool
	// Platform selects the registered platform profile scenario runs use
	// by default (a spec's own platform= key wins); empty keeps the
	// Table-1 default. The paper's fixed figures always run on Table 1.
	Platform string
	// Fidelity selects the measurement tier of the cache-simulating
	// experiments (fig5, ablation-llc): "exact" (default) replays every
	// operating point through the cache simulator, "fast" uses the CHE
	// analytic estimate everywhere, and "auto" estimates off-knee points
	// and simulates only near a capacity knee. Experiments without a
	// simulated hot path ignore it.
	Fidelity string
}

// RunExperiment regenerates the table or figure with the given ID at full
// fidelity and returns its text rendering.
func RunExperiment(id string) (string, error) {
	return RunExperimentCfg(id, RunConfig{})
}

// RunExperimentQuick runs a reduced-sample variant (used by benchmarks).
func RunExperimentQuick(id string) (string, error) {
	return RunExperimentCfg(id, RunConfig{Quick: true})
}

// options converts a RunConfig into the experiment layer's option set.
func (cfg RunConfig) options() experiments.Options {
	opts := experiments.DefaultOptions()
	opts.Quick = cfg.Quick
	opts.Parallel = cfg.Parallel
	opts.FastWarmup = cfg.FastWarmup
	// Platform names are lowercase in the registry; normalize here so the
	// flag/API accepts the same spellings as the platform= spec key (and the
	// memo cell key never forks on case).
	opts.Platform = strings.ToLower(cfg.Platform)
	// Lowercase the fidelity the same way; a bad name is rejected by the
	// experiment layer's Validate with a descriptive error.
	opts.Fidelity = experiments.Fidelity(strings.ToLower(cfg.Fidelity))
	if cfg.Seed != 0 {
		opts.Seed = cfg.Seed
	}
	return opts
}

// RunExperimentCfg regenerates one experiment under the given configuration
// and returns its text rendering (byte-identical to the historical tables).
func RunExperimentCfg(id string, cfg RunConfig) (string, error) {
	return RunExperimentIn(id, cfg, "")
}

// RunExperimentIn regenerates one experiment and renders it in the named
// format ("text", "json", "csv"; empty means text).
func RunExperimentIn(id string, cfg RunConfig, format string) (string, error) {
	d, err := RunDataset(id, cfg)
	if err != nil {
		return "", err
	}
	return results.Emit(d, format)
}

// RunDataset regenerates one experiment as a typed dataset, memoized
// process-wide: repeated calls for the same (id, options) — including
// re-emitting one run in several formats — evaluate the experiment once.
// The returned dataset is shared; treat it as immutable.
func RunDataset(id string, cfg RunConfig) (*Dataset, error) {
	return experiments.RunDataset(id, cfg.options())
}

// ScenarioInfo describes one registered workload of the scenario engine.
type ScenarioInfo struct {
	// Name is the spec head accepted by RunScenario ("ycsb", "dlrm", ...).
	Name string
	// Desc is a one-line description.
	Desc string
	// Variants lists the accepted variant names.
	Variants []string
}

// ScenarioWorkloads lists every workload the scenario engine can run.
func ScenarioWorkloads() []ScenarioInfo {
	var out []ScenarioInfo
	for _, w := range workloads.All() {
		out = append(out, ScenarioInfo{Name: w.Name(), Desc: w.Desc(), Variants: w.Variants()})
	}
	return out
}

// ScenarioCatalog renders the registry as the markdown catalog embedded in
// EXPERIMENTS.md.
func ScenarioCatalog() string { return workloads.Catalog() }

// RunScenario evaluates one scenario spec (see internal/workloads: e.g.
// "ycsb:readmostly/policy=weighted:85,15/size=4G") and returns its text
// rendering — one row per metric. Results are memoized per process, so
// re-evaluating a cell is free.
func RunScenario(spec string, cfg RunConfig) (string, error) {
	return RunScenarioIn(spec, cfg, "")
}

// RunScenarioIn evaluates one scenario spec and renders it in the named
// format ("text", "json", "csv"; empty means text).
func RunScenarioIn(spec string, cfg RunConfig, format string) (string, error) {
	d, err := RunScenarioDataset(spec, cfg)
	if err != nil {
		return "", err
	}
	return results.Emit(d, format)
}

// RunScenarioDataset evaluates one scenario spec as a typed dataset: the
// cell's full metric list, one row per metric, with the canonical spec in
// the provenance. The cell value is memoized process-wide.
func RunScenarioDataset(spec string, cfg RunConfig) (*Dataset, error) {
	sc, err := workloads.ParseScenario(spec)
	if err != nil {
		return nil, err
	}
	return experiments.ScenarioResult(cfg.options(), sc)
}

// RunScenarioMatrix evaluates the full scenario cross product — the union
// of the matrix-apps, matrix-policy, matrix-size and matrix-platform cells —
// through the parallel sweep engine and returns one combined text table.
func RunScenarioMatrix(cfg RunConfig) (string, error) {
	return RunScenarioMatrixIn(cfg, "")
}

// RunScenarioMatrixIn is RunScenarioMatrix rendered in the named format.
func RunScenarioMatrixIn(cfg RunConfig, format string) (string, error) {
	d, err := RunScenarioMatrixDataset(cfg)
	if err != nil {
		return "", err
	}
	return results.Emit(d, format)
}

// RunScenarioMatrixDataset evaluates the full scenario cross product as one
// typed dataset, one row per cell.
func RunScenarioMatrixDataset(cfg RunConfig) (*Dataset, error) {
	return experiments.ScenarioDataset(cfg.options(), "matrix-all",
		"full scenario matrix: workload x policy x size", experiments.AllMatrixScenarios())
}

// Policy is a two-node (DDR, CXL) weighted-interleave allocation policy —
// the knob Caption tunes. It satisfies numa.Policy.
type Policy = numa.Weighted

// NewPolicy creates a policy placing cxlPercent of new pages on CXL memory.
func NewPolicy(cxlPercent float64) *Policy {
	return numa.NewDDRCXLSplit(cxlPercent)
}

// Caption is a configured instance of the paper's dynamic page-allocation
// controller driving a Policy.
type Caption struct {
	ctl    *core.Controller
	policy *Policy
}

// Sample is one observation of the Table-4 PMU counters.
type Sample = telemetry.Sample

// NewCaption assembles a Caption controller. The estimator is fitted from a
// calibration sweep: counter samples with the measured throughput at each
// operating point (the paper uses a DLRM ratio sweep, §6.1 M2). The
// returned controller updates policy on every Observe call.
func NewCaption(sweep []Sample, throughput []float64, policy *Policy) (*Caption, error) {
	if policy == nil {
		return nil, fmt.Errorf("cxlmem: nil policy")
	}
	est, err := core.FitEstimator(sweep, throughput)
	if err != nil {
		return nil, err
	}
	ctl := core.NewController(est, core.DefaultTunerConfig(), policy.SetCXLPercent)
	return &Caption{ctl: ctl, policy: policy}, nil
}

// Observe feeds one sampling interval's raw counters into the controller;
// the policy's CXL percentage is retuned as a side effect. It returns the
// estimated memory-subsystem performance and the newly applied ratio.
func (c *Caption) Observe(raw Sample) (state, ratio float64, err error) {
	return c.ctl.Step(raw)
}

// Ratio returns the percentage of new pages currently steered to CXL.
func (c *Caption) Ratio() float64 { return c.ctl.Ratio() }

// History returns the controller's recorded (model output, ratio) series.
func (c *Caption) History() (states, ratios []float64) { return c.ctl.History() }
