// Command cxlserve is the structured-results query daemon: it serves every
// registered experiment and any scenario spec over HTTP, rendered by the
// pluggable emitters (json by default, text and csv on request). Results are
// memoized process-wide in bounded, hotness-aware caches with single-flight
// semantics, so concurrent clients asking for the same table share one
// evaluation and repeats are served from the cache.
//
// The daemon is production-hardened (DESIGN.md §11): requests carry a
// deadline that cancels in-flight sweep work, an admission gate sheds load
// beyond the in-flight budget with 429/503 + Retry-After, /metrics exposes
// cache and latency counters, /healthz answers liveness probes, and SIGINT/
// SIGTERM drain gracefully — queued work is shed, in-flight requests finish.
//
// Usage:
//
//	cxlserve                          # listen on :8080, full fidelity
//	cxlserve -addr :9000 -quick       # reduced sample counts (staging/CI)
//	cxlserve -parallel 4              # bound each run's sweep worker pool
//	cxlserve -max-inflight 8 -max-queue 64 -timeout 30s -cache-entries 512
//
// Endpoints:
//
//	GET /v1/experiments                         registry + formats + platforms
//	GET /v1/run?id=fig5&format=json             one experiment
//	GET /v1/run?id=matrix-apps&format=csv       matrices too
//	GET /v1/scenario?spec=dlrm/policy=cxl:63    one scenario cell
//	GET /v1/trace?limit=100                     discrete-event trace ring
//	GET /metrics                                cache/admission/latency counters
//	GET /healthz                                liveness (503 while draining)
//
// Requests may override platform=, quick=, fastwarm= and seed=, and lower
// (never raise) the deadline with timeout=; the sweep worker count stays a
// server flag so clients cannot oversubscribe the host.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cxlmem/internal/experiments"
	"cxlmem/internal/memo"
	"cxlmem/internal/serve"
	"cxlmem/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quick := flag.Bool("quick", false, "default to reduced sample counts (requests may override with quick=)")
	parallel := flag.Int("parallel", 0, "sweep worker count per run (0 = all CPUs)")
	seed := flag.Uint64("seed", 0, "default experiment seed (0 = calibrated default)")
	fastwarm := flag.Bool("fastwarm", false, "default to convergence-based cache warmup")
	platform := flag.String("platform", "", "default platform profile for scenario cells")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request evaluation deadline (0 = none; requests may lower it with timeout=)")
	maxInflight := flag.Int("max-inflight", 4*runtime.GOMAXPROCS(0), "max concurrently admitted compute requests (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 64, "requests allowed to wait for an admission slot before shedding 429")
	cacheEntries := flag.Int("cache-entries", 1024, "entry budget per memo cache, evicted cold-first (0 = unbounded)")
	cacheTTL := flag.Duration("cache-ttl", 0, "expire cached results this long after computation (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (bypasses admission control; trusted networks only)")
	traceCap := flag.Int("trace-cap", 4096, "events retained in the discrete-event trace ring served by /v1/trace")
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Quick = *quick
	opts.Parallel = *parallel
	opts.FastWarmup = *fastwarm
	opts.Platform = *platform
	if *seed != 0 {
		opts.Seed = *seed
	}
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "cxlserve:", err)
		os.Exit(1)
	}
	experiments.ConfigureCaches(memo.CacheConfig{MaxEntries: *cacheEntries, TTL: *cacheTTL})
	telemetry.Sim.Configure(*traceCap)

	s := serve.NewServer(serve.Config{
		Base:        opts,
		Timeout:     *timeout,
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		EnablePprof: *pprofFlag,
	})
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Printf("cxlserve: listening on %s (quick=%t parallel=%d max-inflight=%d timeout=%s cache-entries=%d)",
			*addr, *quick, *parallel, *maxInflight, *timeout, *cacheEntries)
		done <- srv.ListenAndServe()
	}()

	select {
	case err := <-done:
		// The listener failed before any signal (bad address, port in use).
		fmt.Fprintln(os.Stderr, "cxlserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop routing (healthz 503), shed queued work, then let
	// in-flight requests finish under the drain deadline.
	log.Printf("cxlserve: signal received, draining (up to %s)", *drainTimeout)
	s.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "cxlserve: drain incomplete:", err)
		os.Exit(1)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cxlserve:", err)
		os.Exit(1)
	}
	log.Print("cxlserve: drained, bye")
}
