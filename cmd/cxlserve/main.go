// Command cxlserve is the structured-results query daemon: it serves every
// registered experiment and any scenario spec over HTTP, rendered by the
// pluggable emitters (json by default, text and csv on request). Results are
// memoized process-wide with single-flight semantics, so concurrent clients
// asking for the same table share one evaluation and repeats are served from
// the cache.
//
// Usage:
//
//	cxlserve                          # listen on :8080, full fidelity
//	cxlserve -addr :9000 -quick       # reduced sample counts (staging/CI)
//	cxlserve -parallel 4              # bound each run's sweep worker pool
//
// Endpoints:
//
//	GET /v1/experiments                         registry + formats + platforms
//	GET /v1/run?id=fig5&format=json             one experiment
//	GET /v1/run?id=matrix-apps&format=csv       matrices too
//	GET /v1/scenario?spec=dlrm/policy=cxl:63    one scenario cell
//
// Requests may override platform=, quick=, fastwarm= and seed=; the sweep
// worker count stays a server flag so clients cannot oversubscribe the host.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"cxlmem/internal/experiments"
	"cxlmem/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quick := flag.Bool("quick", false, "default to reduced sample counts (requests may override with quick=)")
	parallel := flag.Int("parallel", 0, "sweep worker count per run (0 = all CPUs)")
	seed := flag.Uint64("seed", 0, "default experiment seed (0 = calibrated default)")
	fastwarm := flag.Bool("fastwarm", false, "default to convergence-based cache warmup")
	platform := flag.String("platform", "", "default platform profile for scenario cells")
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Quick = *quick
	opts.Parallel = *parallel
	opts.FastWarmup = *fastwarm
	opts.Platform = *platform
	if *seed != 0 {
		opts.Seed = *seed
	}
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "cxlserve:", err)
		os.Exit(1)
	}

	log.Printf("cxlserve: listening on %s (quick=%t parallel=%d)", *addr, *quick, *parallel)
	if err := http.ListenAndServe(*addr, serve.Handler(opts)); err != nil {
		fmt.Fprintln(os.Stderr, "cxlserve:", err)
		os.Exit(1)
	}
}
