// Command cxlserve is the structured-results query daemon: it serves every
// registered experiment and any scenario spec over HTTP, rendered by the
// pluggable emitters (json by default, text and csv on request). Results are
// memoized process-wide in bounded, hotness-aware caches with single-flight
// semantics, so concurrent clients asking for the same table share one
// evaluation and repeats are served from the cache.
//
// The daemon is production-hardened (DESIGN.md §11): requests carry a
// deadline that cancels in-flight sweep work, an admission gate sheds load
// beyond the in-flight budget with 429/503 + Retry-After, /metrics exposes
// cache and latency counters, /healthz answers liveness probes, and SIGINT/
// SIGTERM drain gracefully — queued work is shed, in-flight requests finish.
//
// Usage:
//
//	cxlserve                          # listen on :8080, full fidelity
//	cxlserve -addr :9000 -quick       # reduced sample counts (staging/CI)
//	cxlserve -parallel 4              # bound each run's sweep worker pool
//	cxlserve -max-inflight 8 -max-queue 64 -timeout 30s -cache-entries 512
//
// Horizontal scale-out (DESIGN.md §14): -peers forms a cache-sharding ring —
// each compute request is served by the replica owning its canonical memo
// key, everything else proxies one hop — and -snapshot-load/-snapshot-save
// warm-start the dataset cache across restarts:
//
//	cxlserve -addr :8375 -peers http://hostA:8375,http://hostB:8375
//	cxlserve -snapshot-load warm.json -snapshot-save warm.json -snapshot-interval 5m
//
// Endpoints:
//
//	GET /v1/experiments                         registry + formats + platforms
//	GET /v1/run?id=fig5&format=json             one experiment
//	GET /v1/run?id=matrix-apps&format=csv       matrices too
//	GET /v1/scenario?spec=dlrm/policy=cxl:63    one scenario cell
//	GET /v1/snapshot                            dataset-cache warm-start snapshot
//	GET /v1/trace?limit=100                     discrete-event trace ring
//	GET /metrics                                cache/admission/latency counters
//	GET /healthz                                liveness (503 while draining)
//
// Requests may override platform=, quick=, fastwarm= and seed=, and lower
// (never raise) the deadline with timeout=; the sweep worker count stays a
// server flag so clients cannot oversubscribe the host.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cxlmem/internal/cluster"
	"cxlmem/internal/experiments"
	"cxlmem/internal/memo"
	"cxlmem/internal/serve"
	"cxlmem/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quick := flag.Bool("quick", false, "default to reduced sample counts (requests may override with quick=)")
	parallel := flag.Int("parallel", 0, "sweep worker count per run (0 = all CPUs)")
	seed := flag.Uint64("seed", 0, "default experiment seed (0 = calibrated default)")
	fastwarm := flag.Bool("fastwarm", false, "default to convergence-based cache warmup")
	platform := flag.String("platform", "", "default platform profile for scenario cells")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request evaluation deadline (0 = none; requests may lower it with timeout=)")
	maxInflight := flag.Int("max-inflight", 4*runtime.GOMAXPROCS(0), "max concurrently admitted compute requests (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 64, "requests allowed to wait for an admission slot before shedding 429")
	cacheEntries := flag.Int("cache-entries", 1024, "entry budget per memo cache, evicted cold-first (0 = unbounded)")
	cacheTTL := flag.Duration("cache-ttl", 0, "expire cached results this long after computation (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (bypasses admission control; trusted networks only)")
	traceCap := flag.Int("trace-cap", 4096, "events retained in the discrete-event trace ring served by /v1/trace")
	peers := flag.String("peers", "", "comma-separated replica URLs forming the cache-sharding ring; compute requests proxy one hop to the key's owner")
	selfAddr := flag.String("self", "", "this replica's advertised URL in the -peers ring (default: derived from -addr on 127.0.0.1)")
	snapshotLoad := flag.String("snapshot-load", "", "warm-start: restore the dataset cache from this snapshot file at boot (a missing file starts cold)")
	snapshotSave := flag.String("snapshot-save", "", "write a dataset-cache snapshot here at shutdown (and every -snapshot-interval)")
	snapshotInterval := flag.Duration("snapshot-interval", 0, "also snapshot periodically while serving (0 = only at shutdown; needs -snapshot-save)")
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Quick = *quick
	opts.Parallel = *parallel
	opts.FastWarmup = *fastwarm
	opts.Platform = *platform
	if *seed != 0 {
		opts.Seed = *seed
	}
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "cxlserve:", err)
		os.Exit(1)
	}
	experiments.ConfigureCaches(memo.CacheConfig{MaxEntries: *cacheEntries, TTL: *cacheTTL})
	telemetry.Sim.Configure(*traceCap)

	// Warm start: restore the dataset cache before the listener opens so the
	// first request already hits. A missing file is a cold boot, not an
	// error (first run, or the snapshot was never written); a file that
	// exists but does not parse is fatal — serving with a silently ignored
	// snapshot would defeat the restart story the flag exists for.
	restored := 0
	if *snapshotLoad != "" {
		data, err := os.ReadFile(*snapshotLoad)
		switch {
		case errors.Is(err, os.ErrNotExist):
			log.Printf("cxlserve: snapshot %s absent, starting cold", *snapshotLoad)
		case err != nil:
			fmt.Fprintln(os.Stderr, "cxlserve:", err)
			os.Exit(1)
		default:
			restored, err = experiments.ImportDatasetCache(data)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cxlserve:", err)
				os.Exit(1)
			}
			log.Printf("cxlserve: warm start: restored %d dataset entries from %s", restored, *snapshotLoad)
		}
	}

	var ring *cluster.Ring
	if *peers != "" {
		var err error
		ring, err = buildRing(*selfAddr, *addr, *peers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cxlserve:", err)
			os.Exit(1)
		}
		log.Printf("cxlserve: sharding ring: self=%s peers=%v", ring.Self(), ring.Peers())
	}

	s := serve.NewServer(serve.Config{
		Base:             opts,
		Timeout:          *timeout,
		MaxInflight:      *maxInflight,
		MaxQueue:         *maxQueue,
		EnablePprof:      *pprofFlag,
		Ring:             ring,
		SnapshotRestored: restored,
	})
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *snapshotSave != "" && *snapshotInterval > 0 {
		go func() {
			tick := time.NewTicker(*snapshotInterval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := saveSnapshot(*snapshotSave); err != nil {
						log.Printf("cxlserve: periodic snapshot: %v", err)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	done := make(chan error, 1)
	go func() {
		log.Printf("cxlserve: listening on %s (quick=%t parallel=%d max-inflight=%d timeout=%s cache-entries=%d)",
			*addr, *quick, *parallel, *maxInflight, *timeout, *cacheEntries)
		done <- srv.ListenAndServe()
	}()

	select {
	case err := <-done:
		// The listener failed before any signal (bad address, port in use).
		fmt.Fprintln(os.Stderr, "cxlserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop routing (healthz 503), shed queued work, then let
	// in-flight requests finish under the drain deadline.
	log.Printf("cxlserve: signal received, draining (up to %s)", *drainTimeout)
	s.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "cxlserve: drain incomplete:", err)
		os.Exit(1)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cxlserve:", err)
		os.Exit(1)
	}
	// Final snapshot after the drain: every in-flight computation has
	// settled into the cache, so the next boot restores the freshest state.
	if *snapshotSave != "" {
		if err := saveSnapshot(*snapshotSave); err != nil {
			fmt.Fprintln(os.Stderr, "cxlserve: final snapshot:", err)
			os.Exit(1)
		}
		log.Printf("cxlserve: snapshot saved to %s", *snapshotSave)
	}
	log.Print("cxlserve: drained, bye")
}

// saveSnapshot writes the dataset-cache snapshot atomically (temp file +
// rename) so a crash mid-write never leaves a truncated snapshot for the
// next boot to choke on.
func saveSnapshot(path string) error {
	data, err := experiments.ExportDatasetCache()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// buildRing assembles the sharding ring from the -self/-addr/-peers flags:
// the advertised self URL defaults to the listen port on 127.0.0.1, and all
// addresses are normalized so flag spellings cannot split the membership.
func buildRing(self, addr, peers string) (*cluster.Ring, error) {
	if self == "" {
		host, port, err := net.SplitHostPort(addr)
		if err != nil {
			return nil, fmt.Errorf("deriving -self from -addr %q: %w", addr, err)
		}
		if host == "" {
			host = "127.0.0.1"
		}
		self = "http://" + net.JoinHostPort(host, port)
	}
	selfURL, err := cluster.NormalizeAddr(self)
	if err != nil {
		return nil, err
	}
	peerList, err := cluster.ParsePeerList(peers)
	if err != nil {
		return nil, err
	}
	return cluster.NewRing(selfURL, peerList)
}
