// Command mlc mimics Intel Memory Latency Checker against the simulated
// system: idle (pointer-chase) latency and loaded bandwidth per device.
//
// Usage:
//
//	mlc                 # idle latency + all-read bandwidth for every device
//	mlc -mix 2:1        # bandwidth at a specific read:write mix
//	mlc -buffer 32M     # SNC buffer-latency experiment (§4.3)
package main

import (
	"flag"
	"fmt"
	"os"

	"cxlmem/internal/mem"
	"cxlmem/internal/mlc"
	"cxlmem/internal/topo"
)

func main() {
	mixFlag := flag.String("mix", "all", "read:write mix: all, 3:1, 2:1, 1:1")
	buffer := flag.Bool("buffer", false, "run the 32MB SNC buffer-latency experiment")
	fastwarm := flag.Bool("fastwarm", false, "convergence-based warmup for -buffer (faster, approximate)")
	flag.Parse()

	if *buffer {
		runBuffer(*fastwarm)
		return
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlc:", err)
		os.Exit(2)
	}

	fmt.Printf("%-8s  %14s  %16s  %10s\n", "Device", "Idle lat (ns)", "Bandwidth (GB/s)", "Efficiency")
	for _, name := range []string{"DDR5-L", "DDR5-R", "CXL-A", "CXL-B", "CXL-C"} {
		sys := topo.NewSystem(topo.MicrobenchConfig())
		p := sys.Path(name)
		idle := mlc.IdleLatency(sys, p, 20000, 1)
		bw := mlc.LoadedBandwidth(p, mix)
		fmt.Printf("%-8s  %14.1f  %16.1f  %9.1f%%\n",
			name, idle.Nanoseconds(), bw.AchievedGBs, bw.Efficiency*100)
	}
}

func parseMix(s string) (mem.MixPoint, error) {
	switch s {
	case "all":
		return mem.AllRead, nil
	case "3:1":
		return mem.RW31, nil
	case "2:1":
		return mem.RW21, nil
	case "1:1":
		return mem.RW11, nil
	default:
		return 0, fmt.Errorf("unknown mix %q", s)
	}
}

func runBuffer(fastwarm bool) {
	const buf = 32 << 20
	warm := mlc.WarmupExact
	if fastwarm {
		warm = mlc.WarmupConverged
	}
	for _, name := range []string{"DDR5-L", "CXL-A"} {
		sys := topo.NewSystem(topo.DefaultConfig()) // SNC on
		lat := mlc.BufferLatencyWarm(sys, sys.Path(name), buf, 200000, 3, warm)
		fmt.Printf("%-8s  32MB random buffer: %.1f ns avg\n", name, lat.Nanoseconds())
	}
	fmt.Println("(paper §4.3: DDR5-L 76.8 ns vs CXL-A 41 ns — O6)")
}
