// Command memo runs the paper's custom microbenchmark against the simulated
// system: per-instruction-type latency (16 random parallel accesses, median
// of many trials) and bandwidth for every device.
package main

import (
	"fmt"

	"cxlmem/internal/mem"
	"cxlmem/internal/memo"
	"cxlmem/internal/topo"
)

func main() {
	sys := topo.NewSystem(topo.MicrobenchConfig())
	cfg := memo.DefaultConfig()

	fmt.Println("Per-access latency of 16 random parallel accesses (ns, median of 10k trials)")
	fmt.Printf("%-8s  %8s  %8s  %8s  %8s\n", "Device", "ld", "nt-ld", "st", "nt-st")
	for _, p := range sys.Paths() {
		lat := memo.AllLatencies(p, cfg)
		fmt.Printf("%-8s  %8.1f  %8.1f  %8.1f  %8.1f\n", p.Name,
			lat[mem.Load].Nanoseconds(), lat[mem.NTLoad].Nanoseconds(),
			lat[mem.Store].Nanoseconds(), lat[mem.NTStore].Nanoseconds())
	}

	fmt.Println()
	fmt.Println("Bandwidth efficiency per instruction type (fraction of theoretical peak)")
	fmt.Printf("%-8s  %8s  %8s  %8s  %8s\n", "Device", "ld", "nt-ld", "st", "nt-st")
	for _, p := range sys.ComparisonPaths() {
		bw := memo.AllBandwidths(p)
		fmt.Printf("%-8s  %7.1f%%  %7.1f%%  %7.1f%%  %7.1f%%\n", p.Name,
			bw[mem.Load].Efficiency*100, bw[mem.NTLoad].Efficiency*100,
			bw[mem.Store].Efficiency*100, bw[mem.NTStore].Efficiency*100)
	}
}
