// Command cxlbench regenerates the paper's tables and figures from the
// simulated system.
//
// Usage:
//
//	cxlbench -list            # show available experiment IDs
//	cxlbench -run fig3        # regenerate one table/figure
//	cxlbench -run all         # regenerate everything
//	cxlbench -run fig13 -quick # reduced sample counts
package main

import (
	"flag"
	"fmt"
	"os"

	"cxlmem"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment ID to run, or 'all'")
	quick := flag.Bool("quick", false, "reduced sample counts")
	flag.Parse()

	switch {
	case *list:
		for _, e := range cxlmem.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
	case *run == "all":
		for _, e := range cxlmem.Experiments() {
			if err := emit(e.ID, *quick); err != nil {
				fail(err)
			}
			fmt.Println()
		}
	case *run != "":
		if err := emit(*run, *quick); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func emit(id string, quick bool) error {
	var out string
	var err error
	if quick {
		out, err = cxlmem.RunExperimentQuick(id)
	} else {
		out, err = cxlmem.RunExperiment(id)
	}
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cxlbench:", err)
	os.Exit(1)
}
