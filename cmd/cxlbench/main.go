// Command cxlbench regenerates the paper's tables and figures from the
// simulated system.
//
// Usage:
//
//	cxlbench -list                    # show available experiment IDs
//	cxlbench -run fig3                # regenerate one table/figure
//	cxlbench -run all                 # regenerate everything, concurrently
//	cxlbench -run fig13 -quick        # reduced sample counts
//	cxlbench -run all -parallel 4     # bound the sweep worker pool
//	cxlbench -run fig5 -fastwarm      # convergence-based cache warmup
//	cxlbench -run fig5 -fidelity auto # analytic estimate off-knee, exact at the knee
//	cxlbench -run fig13 -cpuprofile p # write a pprof CPU profile
//
// Beyond the paper's fixed figures, -scenario evaluates arbitrary cells of
// the workload x policy x size matrix from one-line specs (see
// internal/workloads and the README cheat sheet):
//
//	cxlbench -scenario 'ycsb:readmostly/policy=weighted:85,15/size=4G'
//	cxlbench -scenario all            # the full matrix cross product
//	cxlbench -scenario list           # registered workloads + their knobs
//
// The machine side of a cell is a registered platform profile. -platform
// selects the default platform for -scenario runs (a spec's own platform=
// key wins), and -platform list shows the registry:
//
//	cxlbench -platform list
//	cxlbench -platform x16-quad -scenario 'dlrm/policy=interleave'
//	cxlbench -scenario 'kvstore/platform=fpga-degraded'
//
// Every result is a typed dataset rendered by a pluggable emitter; -format
// selects the rendering for -run and -scenario alike (see also the cxlserve
// daemon, which serves the same datasets over HTTP):
//
//	cxlbench -run fig5 -format json   # machine-readable, full precision
//	cxlbench -run matrix-apps -format csv
//	cxlbench -scenario 'dlrm/policy=cxl:63' -format json
//
// With -remote, scenario cells are not computed locally: they are sharded
// across a cxlserve replica fleet by canonical cell key (the coordinator
// fan-out of DESIGN.md §14) and merged byte-identically to local execution,
// so a warm fleet answers the full matrix without local compute:
//
//	cxlbench -scenario all -remote host1:8375,host2:8375
//	cxlbench -scenario 'dlrm/policy=cxl:63' -remote host1:8375,host2:8375
//
// A single experiment fans its independent operating points across
// -parallel workers (default: all CPUs). -run all spends the same budget one
// level up: whole experiments run concurrently on -parallel workers, each
// sweeping serially, so total concurrency never exceeds the requested
// worker count. Output is byte-identical for every -parallel value: results
// are ordered by operating point, and tables print in registry order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"cxlmem"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment ID to run, or 'all'")
	scenario := flag.String("scenario", "", "scenario spec to evaluate, 'all' for the full matrix, or 'list'")
	platform := flag.String("platform", "", "platform profile for -scenario runs, or 'list'")
	quick := flag.Bool("quick", false, "reduced sample counts")
	parallel := flag.Int("parallel", 0, "sweep worker count (0 = all CPUs)")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 = default)")
	fastwarm := flag.Bool("fastwarm", false, "convergence-based cache warmup (faster; last-digit shifts on fig5/ablation-llc)")
	fidelity := flag.String("fidelity", "", "measurement tier for fig5/ablation-llc: exact (default), auto, fast")
	format := flag.String("format", "", "output format for -run/-scenario: text (default), json, csv")
	remote := flag.String("remote", "", "comma-separated cxlserve replica URLs: dispatch -scenario cells across the fleet instead of computing locally")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	if *remote != "" && (*scenario == "" || *scenario == "list") {
		fail(fmt.Errorf("-remote dispatches scenario cells; pair it with -scenario SPEC or -scenario all"))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := cxlmem.RunConfig{Quick: *quick, Parallel: *parallel, Seed: *seed, FastWarmup: *fastwarm, Fidelity: *fidelity}
	if *platform != "" && *platform != "list" {
		cfg.Platform = *platform
	}
	switch {
	case *platform == "list":
		for _, p := range cxlmem.Platforms() {
			fmt.Printf("%-14s %s\n               devices: %s\n", p.Name, p.Desc, strings.Join(p.Devices, ", "))
		}
		fmt.Println("\ncatalog (EXPERIMENTS.md form):")
		fmt.Print(cxlmem.PlatformCatalog())
	case *list:
		for _, e := range cxlmem.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
	case *run == "all":
		if err := runAll(cfg, *format); err != nil {
			pprof.StopCPUProfile()
			fail(err)
		}
	case *run != "":
		out, err := cxlmem.RunExperimentIn(*run, cfg, *format)
		if err != nil {
			pprof.StopCPUProfile()
			fail(err)
		}
		fmt.Print(out)
	case *scenario == "list":
		for _, s := range cxlmem.ScenarioWorkloads() {
			fmt.Printf("%-8s %s\n         variants: %s\n", s.Name, s.Desc, strings.Join(s.Variants, ", "))
		}
		fmt.Println("\ncatalog (EXPERIMENTS.md form):")
		fmt.Print(cxlmem.ScenarioCatalog())
	case *scenario == "all":
		out, err := runMatrix(cfg, *format, *remote)
		if err != nil {
			pprof.StopCPUProfile()
			fail(err)
		}
		fmt.Print(out)
	case *scenario != "":
		out, err := runScenario(*scenario, cfg, *format, *remote)
		if err != nil {
			pprof.StopCPUProfile()
			fail(err)
		}
		fmt.Print(out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runAll regenerates every experiment through a bounded worker pool and
// prints the renderings in registry order as they complete. The -parallel
// budget moves to the experiment level: each experiment sweeps serially so
// the two pools cannot multiply.
func runAll(cfg cxlmem.RunConfig, format string) error {
	infos := cxlmem.Experiments()
	type result struct {
		out  string
		err  error
		done chan struct{}
	}
	results := make([]result, len(infos))
	for i := range results {
		results[i].done = make(chan struct{})
	}

	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(infos) {
		workers = len(infos)
	}
	cfg.Parallel = 1
	var next int
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		go func() {
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(infos) {
					return
				}
				results[i].out, results[i].err = cxlmem.RunExperimentIn(infos[i].ID, cfg, format)
				close(results[i].done)
			}
		}()
	}
	for i := range infos {
		<-results[i].done
		if results[i].err != nil {
			return results[i].err
		}
		fmt.Print(results[i].out)
		fmt.Println()
	}
	return nil
}

// runMatrix evaluates the full matrix locally, or — with -remote — sharded
// across a cxlserve fleet by canonical cell key. The output is
// byte-identical either way; remote dispatch only changes where the cells
// compute and whose caches warm up.
func runMatrix(cfg cxlmem.RunConfig, format, remote string) (string, error) {
	if remote == "" {
		return cxlmem.RunScenarioMatrixIn(cfg, format)
	}
	return cxlmem.RunRemoteScenarioMatrixIn(splitPeers(remote), cfg, format)
}

// runScenario evaluates one cell locally or on the replica owning its key.
func runScenario(spec string, cfg cxlmem.RunConfig, format, remote string) (string, error) {
	if remote == "" {
		return cxlmem.RunScenarioIn(spec, cfg, format)
	}
	return cxlmem.RunRemoteScenarioIn(spec, splitPeers(remote), cfg, format)
}

// splitPeers splits the -remote flag's comma-separated replica list; the
// facade normalizes schemes and rejects an empty result.
func splitPeers(remote string) []string {
	var peers []string
	for _, p := range strings.Split(remote, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cxlbench:", err)
	os.Exit(1)
}
