// Command caption demonstrates the paper's dynamic page-allocation policy
// end to end: it fits the estimator from a DLRM calibration sweep, then
// autotunes the DDR:CXL page split for a chosen workload, printing the
// controller's trajectory.
//
// Usage:
//
//	caption                 # tune a roms+mcf SPECrate mix (the paper's SPEC-Mix)
//	caption -workload dlrm  # tune DLRM embedding reduction
package main

import (
	"flag"
	"fmt"
	"os"

	"cxlmem"
	"cxlmem/internal/telemetry"
	"cxlmem/internal/topo"
	"cxlmem/internal/workloads/dlrm"
	"cxlmem/internal/workloads/spec"
)

func main() {
	workload := flag.String("workload", "spec-mix", "workload to tune: spec-mix or dlrm")
	intervals := flag.Int("intervals", 40, "tuning intervals to run")
	flag.Parse()

	sys := topo.NewSystem(topo.DefaultConfig())

	// Calibration sweep (§6.1 M2): DLRM at 24 threads across ratios.
	var sweep []telemetry.Sample
	var thr []float64
	cfg := dlrm.DefaultConfig()
	base := dlrm.Run(sys, cfg, "CXL-A", 0, 24, dlrm.SNCAlone).QueriesPerSec
	for r := 0.0; r <= 100; r += 5 {
		res := dlrm.Run(sys, cfg, "CXL-A", r, 24, dlrm.SNCAlone)
		sweep = append(sweep, res.Sample)
		thr = append(thr, res.QueriesPerSec/base)
	}

	policy := cxlmem.NewPolicy(50)
	caption, err := cxlmem.NewCaption(sweep, thr, policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caption:", err)
		os.Exit(1)
	}

	eval := makeEval(sys, *workload)
	if eval == nil {
		fmt.Fprintf(os.Stderr, "caption: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	fmt.Printf("%-9s  %7s  %16s  %12s\n", "Interval", "CXL %", "Norm. throughput", "Model output")
	ratio := caption.Ratio()
	for i := 0; i < *intervals; i++ {
		m, s := eval(ratio)
		state, next, err := caption.Observe(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "caption:", err)
			os.Exit(1)
		}
		fmt.Printf("%-9d  %6.0f%%  %16.3f  %12.3f\n", i, ratio, m, state)
		ratio = next
	}
	fmt.Printf("\nconverged near %.0f%% of pages on CXL memory\n", ratio)
}

// makeEval returns a closure evaluating the workload's steady state at a
// ratio, normalized to its DDR-only throughput.
func makeEval(sys *topo.System, workload string) func(float64) (float64, telemetry.Sample) {
	switch workload {
	case "spec-mix":
		mix := []spec.Member{
			{Profile: spec.Roms, Instances: 8},
			{Profile: spec.Mcf, Instances: 8},
		}
		base := spec.Run(sys, mix, "CXL-A", 0).GIPS
		return func(r float64) (float64, telemetry.Sample) {
			res := spec.Run(sys, mix, "CXL-A", r)
			return res.GIPS / base, res.Sample
		}
	case "dlrm":
		cfg := dlrm.DefaultConfig()
		base := dlrm.Run(sys, cfg, "CXL-A", 0, 32, dlrm.SNCAlone).QueriesPerSec
		return func(r float64) (float64, telemetry.Sample) {
			res := dlrm.Run(sys, cfg, "CXL-A", r, 32, dlrm.SNCAlone)
			return res.QueriesPerSec / base, res.Sample
		}
	default:
		return nil
	}
}
